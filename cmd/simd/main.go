// Command simd serves the simulator as a service: POST /v1/simulate
// answers one (workload, memory config) point and POST /v1/sweep a grid,
// both content-addressed against the result cache with cross-request
// single-flight dedup, so a fleet of clients asking the same question
// costs one simulation.
//
// The daemon is built to stay up under abuse: admission control sheds
// load with 429 + Retry-After past -workers + -queue-limit, per-client
// token buckets (-rate/-burst) stop one client starving the rest,
// per-request deadlines (-deadline, capped by -max-deadline) propagate
// as context cancellation into the simulation loop, panics are isolated
// per request, and SIGINT/SIGTERM drains gracefully: the listener closes
// immediately, in-flight requests get -drain to finish, and past that
// they are canceled and unwound. With -degrade, saturated arrivals get
// the analytic closed-form estimate (flagged degraded in the response)
// instead of a 429 — the service-level analogue of the paper's
// quality-degradation ladder.
//
// Usage:
//
//	simd -addr 127.0.0.1:8080
//	simd -addr :0 -workers 4 -queue-limit 8 -rate 50 -degrade
//	simd -cache-dir /var/cache/simd -debug-addr 127.0.0.1:9090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "host:port to serve the simulation API on (\":0\" picks a free port, announced on stderr)")
		debugAddr      = flag.String("debug-addr", "", "serve /metrics, /metrics.json, expvar and pprof on this host:port (e.g. 127.0.0.1:0)")
		workers        = flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
		queueLimit     = flag.Int("queue-limit", 0, "admitted requests beyond the running ones before shedding (0 = 4x workers)")
		rate           = flag.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited; clients keyed by X-Client-ID, else remote host)")
		burst          = flag.Int("burst", 0, "per-client burst size (0 = 2x rate, minimum 1)")
		deadline       = flag.Duration("deadline", 60*time.Second, "default per-request deadline when the client sets none")
		maxDeadline    = flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines (X-Sim-Deadline header or ?deadline=)")
		drain          = flag.Duration("drain", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM: in-flight requests get this long before being canceled")
		cacheDir       = flag.String("cache-dir", "", "persist simulated points to a content-addressed on-disk cache under this directory (versioned; survives restarts)")
		degrade        = flag.Bool("degrade", false, "serve analytic estimates (flagged degraded) when the queue is saturated, instead of shedding with 429")
		maxSweepPoints = flag.Int("max-sweep-points", 1024, "largest grid one sweep request may expand to")
		fidelity       = flag.String("fidelity", "exact", "default fidelity tier for requests without a \"fidelity\" field: exact, fast, or auto (estimated answers carry \"estimated\":true)")
		shardName      = flag.String("shard-name", "", "stamp responses with this fleet-member name (X-Sim-Shard header) when serving behind simrouter")
	)
	flag.Parse()

	if err := debugserver.ValidateAddr(*addr); err != nil {
		usageError("-addr %q: %v", *addr, err)
	}
	if *debugAddr != "" {
		if err := debugserver.ValidateAddr(*debugAddr); err != nil {
			usageError("-debug-addr %q: %v", *debugAddr, err)
		}
	}
	if *workers < 0 || *queueLimit < 0 || *burst < 0 || *maxSweepPoints < 1 {
		usageError("-workers, -queue-limit and -burst must be >= 0 and -max-sweep-points >= 1")
	}
	if *rate < 0 {
		usageError("-rate must be >= 0 (0 = unlimited), got %v", *rate)
	}
	tier, err := core.ParseFidelity(*fidelity)
	if err != nil {
		usageError("-fidelity: %v", err)
	}
	if tier == core.FidelityAuto && core.EnabledEnvelope() == nil {
		fmt.Fprintln(os.Stderr, "simd: warning: no calibration envelope available; auto fidelity will simulate every point")
	}
	if *deadline <= 0 || *maxDeadline <= 0 || *drain <= 0 {
		usageError("-deadline, -max-deadline and -drain must be positive")
	}

	// The daemon always runs instrumented: unlike the batch CLIs there is
	// no byte-identical-output contract on a long-lived service, and the
	// queue/shed/latency metrics are the operator's only view inside it.
	reg := metrics.NewRegistry()
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)

	cache := core.NewSimCache()
	if *cacheDir != "" {
		var err error
		if cache, err = core.NewDiskSimCache(*cacheDir); err != nil {
			fatal(err)
		}
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		QueueLimit:      *queueLimit,
		MaxSweepPoints:  *maxSweepPoints,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		RateLimit:       *rate,
		RateBurst:       *burst,
		Degrade:         *degrade,
		Fidelity:        tier,
		Cache:           cache,
		Metrics:         reg,
		ShardName:       *shardName,
	})

	var dbg *debugserver.Server
	if *debugAddr != "" {
		var err error
		if dbg, err = debugserver.Start(*debugAddr, reg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simd: debug: listening on %s\n", dbg.Addr())
	}
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	// The resolved address (":0" picks a port) goes to stderr so tooling —
	// and the CI soak gate — can find the service.
	fmt.Fprintf(os.Stderr, "simd: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "simd: received %s, draining (deadline %s)\n", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Drain(ctx)
	// The debug surface drains on the same deadline so an in-flight
	// metrics scrape finishes; it has no long-running work of its own.
	if derr := dbg.Shutdown(ctx); err == nil {
		err = derr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "simd: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

// usageError reports a flag-validation failure and exits with the usage
// status (2), matching the flag package's own error handling.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simd: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
