// Command sweep runs the simulator over a cross product of frame formats,
// channel counts and clock frequencies and emits one CSV row per point —
// the raw data behind the paper's figures, ready for external plotting.
//
// Points are independent, so the cross product runs on a worker pool
// (-jobs, default one per CPU) with the output order identical to the
// serial sweep.
//
// Usage:
//
//	sweep                              # full paper cross product
//	sweep -formats 1080p30,1080p60 -channels 2,4 -freqs 400,533
//	sweep -jobs 1                      # serial (e.g. when profiling)
//	sweep -fidelity auto               # calibrated analytic fast path,
//	                                   # verdict-identical to exact
//	sweep -calibrate > envelope.json   # measure the analytic error bounds
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analytic"
	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
)

func main() {
	var (
		formats    = flag.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels   = flag.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs      = flag.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction   = flag.Float64("fraction", 0.1, "frame fraction to simulate")
		policyName = flag.String("policy", "", "controller scheduling policy: "+strings.Join(controller.PolicyNames(), ", ")+" (empty = open-page)")
		deviceName = flag.String("device", "", "DRAM datasheet: "+strings.Join(dram.DeviceNames(), ", ")+" (empty = paper)")
		jobs       = flag.Int("jobs", 0, "concurrent sweep points (0 = one per CPU, 1 = serial)")
		serial     = flag.Bool("serial", false, "run the sweep serially (same output; shorthand for -jobs 1)")
		checkRun   = flag.Bool("check", false, "verify every point's DRAM commands against the device timing constraints (slower; violations are fatal)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "", "persist simulated points to a content-addressed on-disk cache under this directory (versioned; later sweeps reuse them)")
		noCache    = flag.Bool("no-cache", false, "simulate every point (disables the result cache; output is byte-identical either way)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /metrics.json, expvar and pprof on this host:port for the run's duration (e.g. 127.0.0.1:0)")
		summaryOut = flag.String("summary-out", "", "write a schema-versioned end-of-run summary JSON (manifest + metrics snapshot) to this file")
		progress   = flag.Bool("progress", false, "print periodic progress lines (points done, cache-hit rate, ETA) to stderr; stdout is unchanged")
		fidelity   = flag.String("fidelity", "exact", "exact = cycle-accurate simulation; fast = closed-form analytic estimate for every point (no verdict guarantee); auto = analytic where the calibration envelope proves the verdict, cycle-accurate fallback elsewhere (verdict-identical to exact)")
		calibrate  = flag.Bool("calibrate", false, "run analytic-vs-exact calibration over the grid and write the error-envelope JSON to stdout instead of sweeping")
		envelope   = flag.String("envelope", "", "calibration envelope JSON for -fidelity auto (default: the envelope embedded at build time)")
	)
	flag.Parse()

	if *jobs < 0 {
		usageError("-jobs must be >= 0 (0 = one per CPU), got %d", *jobs)
	}
	if *serial && *jobs > 1 {
		usageError("-serial conflicts with -jobs %d: a serial sweep runs one point at a time", *jobs)
	}
	if !(*fraction > 0) || *fraction > 1 {
		usageError("-fraction must be in (0,1], got %v", *fraction)
	}
	if *noCache && *cacheDir != "" {
		usageError("-no-cache conflicts with -cache-dir %q: the on-disk cache cannot be both used and disabled", *cacheDir)
	}
	if *debugAddr != "" {
		if err := debugserver.ValidateAddr(*debugAddr); err != nil {
			usageError("-debug-addr %q: %v", *debugAddr, err)
		}
	}
	if err := probe.CheckWritable(*summaryOut); err != nil {
		usageError("-summary-out not writable: %v", err)
	}
	if *progress && *serial {
		usageError("-progress conflicts with -serial: the serial path is the profiling/CI determinism mode and stays free of background reporting")
	}
	tier, err := core.ParseFidelity(*fidelity)
	if err != nil {
		usageError("-fidelity: %v", err)
	}
	policy, err := controller.ParsePolicy(*policyName)
	if err != nil {
		usageError("-policy: %v", err)
	}
	if _, err := dram.Device(*deviceName); err != nil {
		usageError("-device: %v", err)
	}
	if tier != core.FidelityExact && *checkRun {
		usageError("-check conflicts with -fidelity %s: the protocol checker needs the cycle-accurate command stream", tier)
	}
	if *calibrate {
		switch {
		case tier != core.FidelityExact:
			usageError("-calibrate conflicts with -fidelity %s: calibration measures the analytic model against exact simulation", tier)
		case *checkRun:
			usageError("-calibrate conflicts with -check")
		case *envelope != "":
			usageError("-calibrate conflicts with -envelope: calibration produces an envelope, it does not consume one")
		case *summaryOut != "":
			usageError("-calibrate conflicts with -summary-out: stdout carries the envelope JSON, not sweep rows")
		case policy != controller.OpenPage || *deviceName != "":
			usageError("-calibrate conflicts with -policy/-device: calibration measures the paper baseline the auto tier serves")
		}
	}
	if *envelope != "" && tier != core.FidelityAuto {
		usageError("-envelope only applies to -fidelity auto (got %s)", tier)
	}
	if *envelope != "" {
		data, err := os.ReadFile(*envelope)
		if err != nil {
			fatal(err)
		}
		env, err := analytic.DecodeEnvelope(data)
		if err != nil {
			fatal(err)
		}
		core.EnableEnvelope(env)
		defer core.EnableEnvelope(nil)
	}
	if tier == core.FidelityAuto && core.EnabledEnvelope() == nil {
		fmt.Fprintln(os.Stderr, "sweep: warning: no calibration envelope available; -fidelity auto will simulate every point")
	}

	// The metrics registry exists only when some surface consumes it; with
	// every flag off the instrumented layers keep their nil-check fast
	// paths and the run is byte-identical to an uninstrumented one.
	var reg *metrics.Registry
	if *debugAddr != "" || *summaryOut != "" || *progress {
		reg = metrics.NewRegistry()
		core.EnableMetrics(reg)
		defer core.EnableMetrics(nil)
	}
	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		// Graceful shutdown at exit: an in-flight scrape of the final
		// metrics finishes instead of being cut off mid-body.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		// The resolved address (":0" picks a port) goes to stderr so live
		// tooling — and the CI smoke test — can find the endpoints.
		fmt.Fprintf(os.Stderr, "sweep: debug: listening on %s\n", srv.Addr())
	}
	start := time.Now()

	// SIGINT/SIGTERM cancels the sweep between points: workers stop
	// claiming new indices, the run exits promptly with a clear message,
	// and the deferred cleanups (profiles, debug server) still run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Content-addressed result cache: in-process dedup always (duplicate
	// grid points simulate once), plus the optional on-disk store that
	// persists points across invocations. Checked points bypass it
	// automatically, and the stderr summary keeps stdout byte-identical.
	var cache *core.SimCache
	if !*noCache {
		var err error
		if *cacheDir != "" {
			if cache, err = core.NewDiskSimCache(*cacheDir); err != nil {
				fatal(err)
			}
		} else {
			cache = core.NewSimCache()
		}
		core.EnableCache(cache)
		defer core.DisableCache()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	formatList := strings.Split(*formats, ",")
	workloads := make([]core.Workload, len(formatList))
	for i, format := range formatList {
		w, err := core.WorkloadFor(strings.TrimSpace(format))
		if err != nil {
			fatal(err)
		}
		w.SampleFraction = *fraction
		workloads[i] = w
	}

	type point struct {
		w  core.Workload
		ch int
		f  int
	}
	var grid []point
	for _, w := range workloads {
		for _, ch := range chList {
			for _, f := range freqList {
				grid = append(grid, point{w, ch, f})
			}
		}
	}
	njobs := *jobs
	if njobs == 0 {
		njobs = core.DefaultJobs()
	}
	if *serial {
		njobs = 1
	}
	var prog *core.Progress
	if *progress {
		prog = core.StartProgress(os.Stderr, time.Second)
	}
	if *calibrate {
		env, err := core.Calibrate(ctx, core.CalibrateOptions{
			Formats:        trimmed(formatList),
			Channels:       chList,
			FreqsMHz:       freqList,
			SampleFraction: *fraction,
			Jobs:           njobs,
		})
		prog.Stop()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatal(fmt.Errorf("interrupted before completion; no envelope written"))
			}
			fatal(err)
		}
		buf, err := env.Encode()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(buf)
		fmt.Fprintf(os.Stderr, "sweep: calibrate: %d points, worst |err| %.4f%% of access time, fraction %v\n",
			env.Points, env.WorstAbsErr*100, *fraction)
		if cache != nil {
			fmt.Fprintln(os.Stderr, "sweep: cache:", cache.Stats())
		}
		return
	}
	results, err := core.RunIndexedContext(ctx, njobs, len(grid), func(i int) (core.Result, error) {
		p := grid[i]
		mc := core.PaperMemory(p.ch, units.Frequency(p.f)*units.MHz)
		mc.Policy = policy
		mc.Device = *deviceName
		var set *check.Set
		if *checkRun {
			var err error
			if set, err = core.AttachChecker(&mc); err != nil {
				return core.Result{}, err
			}
		}
		res, err := core.SimulateAuto(p.w, mc, tier)
		if err != nil {
			return core.Result{}, err
		}
		if set != nil {
			if err := set.Err(); err != nil {
				for _, v := range set.Violations() {
					fmt.Fprintf(os.Stderr, "sweep: check: %s/%dch/%dMHz: %s\n",
						res.Format.Name, p.ch, p.f, v)
				}
				return core.Result{}, fmt.Errorf("%s/%dch/%dMHz: %w", res.Format.Name, p.ch, p.f, err)
			}
		}
		return res, nil
	})
	prog.Stop()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted before completion; no output written"))
		}
		fatal(err)
	}
	if *checkRun {
		fmt.Fprintf(os.Stderr, "sweep: check: all %d points verified against the device timing constraints\n", len(grid))
	}

	fmt.Println("format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw,estimated")
	for i, res := range results {
		fmt.Printf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f,%t\n",
			res.Format.Name, grid[i].ch, grid[i].f,
			res.FrameBytes,
			res.RequiredBandwidth.GBps(),
			res.AccessTime.Milliseconds(),
			res.FramePeriod.Milliseconds(),
			res.Verdict,
			res.Efficiency,
			res.TotalPower.Milliwatts(),
			res.InterfacePower.Milliwatts(),
			res.Estimated)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, "sweep: cache:", cache.Stats())
	}
	if *summaryOut != "" {
		var totalCycles int64
		for _, res := range results {
			totalCycles += res.SimulatedCycles
		}
		man := probe.NewManifest("sweep")
		man.SampleFraction = *fraction
		man.Config = map[string]any{
			"formats": *formats, "channels": *channels, "freqs": *freqs,
			"policy": policy.String(), "device": *deviceName,
			"points": len(grid), "jobs": njobs,
		}
		man.Finish(totalCycles, time.Since(start))
		man.AddOutput("summary", *summaryOut)
		if err := probe.NewSummary(man, reg.Snapshot()).Write(*summaryOut); err != nil {
			fatal(fmt.Errorf("writing summary: %w", err))
		}
		fmt.Fprintf(os.Stderr, "sweep: summary: wrote %s\n", *summaryOut)
	}
}

func trimmed(parts []string) []string {
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// usageError reports a flag-validation failure and exits with the usage
// status (2), matching the flag package's own error handling.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
