// Command sweep runs the simulator over a cross product of frame formats,
// channel counts and clock frequencies and emits one CSV row per point —
// the raw data behind the paper's figures, ready for external plotting.
//
// Usage:
//
//	sweep                              # full paper cross product
//	sweep -formats 1080p30,1080p60 -channels 2,4 -freqs 400,533
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	var (
		formats  = flag.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels = flag.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs    = flag.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction = flag.Float64("fraction", 0.1, "frame fraction to simulate")
	)
	flag.Parse()

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}

	fmt.Println("format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw")
	for _, format := range strings.Split(*formats, ",") {
		w, err := core.WorkloadFor(strings.TrimSpace(format))
		if err != nil {
			fatal(err)
		}
		w.SampleFraction = *fraction
		for _, ch := range chList {
			for _, f := range freqList {
				res, err := core.Simulate(w, core.PaperMemory(ch, units.Frequency(f)*units.MHz))
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f\n",
					res.Format.Name, ch, f,
					res.FrameBytes,
					res.RequiredBandwidth.GBps(),
					res.AccessTime.Milliseconds(),
					res.FramePeriod.Milliseconds(),
					res.Verdict,
					res.Efficiency,
					res.TotalPower.Milliwatts(),
					res.InterfacePower.Milliwatts())
			}
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
