// Command sweep runs the simulator over a cross product of frame formats,
// channel counts and clock frequencies and emits one CSV row per point —
// the raw data behind the paper's figures, ready for external plotting.
//
// Points are independent, so the cross product runs on a worker pool
// (-jobs, default one per CPU) with the output order identical to the
// serial sweep.
//
// Usage:
//
//	sweep                              # full paper cross product
//	sweep -formats 1080p30,1080p60 -channels 2,4 -freqs 400,533
//	sweep -jobs 1                      # serial (e.g. when profiling)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	var (
		formats    = flag.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels   = flag.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs      = flag.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction   = flag.Float64("fraction", 0.1, "frame fraction to simulate")
		jobs       = flag.Int("jobs", 0, "concurrent sweep points (0 = one per CPU, 1 = serial)")
		serial     = flag.Bool("serial", false, "run the sweep serially (same output; shorthand for -jobs 1)")
		checkRun   = flag.Bool("check", false, "verify every point's DRAM commands against the device timing constraints (slower; violations are fatal)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "", "persist simulated points to a content-addressed on-disk cache under this directory (versioned; later sweeps reuse them)")
		noCache    = flag.Bool("no-cache", false, "simulate every point (disables the result cache; output is byte-identical either way)")
	)
	flag.Parse()

	if *jobs < 0 {
		usageError("-jobs must be >= 0 (0 = one per CPU), got %d", *jobs)
	}
	if *serial && *jobs > 1 {
		usageError("-serial conflicts with -jobs %d: a serial sweep runs one point at a time", *jobs)
	}
	if !(*fraction > 0) || *fraction > 1 {
		usageError("-fraction must be in (0,1], got %v", *fraction)
	}
	if *noCache && *cacheDir != "" {
		usageError("-no-cache conflicts with -cache-dir %q: the on-disk cache cannot be both used and disabled", *cacheDir)
	}

	// Content-addressed result cache: in-process dedup always (duplicate
	// grid points simulate once), plus the optional on-disk store that
	// persists points across invocations. Checked points bypass it
	// automatically, and the stderr summary keeps stdout byte-identical.
	var cache *core.SimCache
	if !*noCache {
		var err error
		if *cacheDir != "" {
			if cache, err = core.NewDiskSimCache(*cacheDir); err != nil {
				fatal(err)
			}
		} else {
			cache = core.NewSimCache()
		}
		core.EnableCache(cache)
		defer core.DisableCache()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	formatList := strings.Split(*formats, ",")
	workloads := make([]core.Workload, len(formatList))
	for i, format := range formatList {
		w, err := core.WorkloadFor(strings.TrimSpace(format))
		if err != nil {
			fatal(err)
		}
		w.SampleFraction = *fraction
		workloads[i] = w
	}

	type point struct {
		w  core.Workload
		ch int
		f  int
	}
	var grid []point
	for _, w := range workloads {
		for _, ch := range chList {
			for _, f := range freqList {
				grid = append(grid, point{w, ch, f})
			}
		}
	}
	njobs := *jobs
	if njobs == 0 {
		njobs = core.DefaultJobs()
	}
	if *serial {
		njobs = 1
	}
	results, err := core.RunIndexed(njobs, len(grid), func(i int) (core.Result, error) {
		p := grid[i]
		mc := core.PaperMemory(p.ch, units.Frequency(p.f)*units.MHz)
		var set *check.Set
		if *checkRun {
			var err error
			if set, err = core.AttachChecker(&mc); err != nil {
				return core.Result{}, err
			}
		}
		res, err := core.Simulate(p.w, mc)
		if err != nil {
			return core.Result{}, err
		}
		if set != nil {
			if err := set.Err(); err != nil {
				for _, v := range set.Violations() {
					fmt.Fprintf(os.Stderr, "sweep: check: %s/%dch/%dMHz: %s\n",
						res.Format.Name, p.ch, p.f, v)
				}
				return core.Result{}, fmt.Errorf("%s/%dch/%dMHz: %w", res.Format.Name, p.ch, p.f, err)
			}
		}
		return res, nil
	})
	if err != nil {
		fatal(err)
	}
	if *checkRun {
		fmt.Fprintf(os.Stderr, "sweep: check: all %d points verified against the device timing constraints\n", len(grid))
	}

	fmt.Println("format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw")
	for i, res := range results {
		fmt.Printf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f\n",
			res.Format.Name, grid[i].ch, grid[i].f,
			res.FrameBytes,
			res.RequiredBandwidth.GBps(),
			res.AccessTime.Milliseconds(),
			res.FramePeriod.Milliseconds(),
			res.Verdict,
			res.Efficiency,
			res.TotalPower.Milliwatts(),
			res.InterfacePower.Milliwatts())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, "sweep: cache:", cache.Stats())
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// usageError reports a flag-validation failure and exits with the usage
// status (2), matching the flag package's own error handling.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
