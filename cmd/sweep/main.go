// Command sweep runs the simulator over a cross product of frame formats,
// channel counts and clock frequencies and emits one CSV row per point —
// the raw data behind the paper's figures, ready for external plotting.
//
// Points are independent, so the cross product runs on a worker pool
// (-jobs, default one per CPU) with the output order identical to the
// serial sweep.
//
// Usage:
//
//	sweep                              # full paper cross product
//	sweep -formats 1080p30,1080p60 -channels 2,4 -freqs 400,533
//	sweep -jobs 1                      # serial (e.g. when profiling)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	var (
		formats    = flag.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels   = flag.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs      = flag.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction   = flag.Float64("fraction", 0.1, "frame fraction to simulate")
		jobs       = flag.Int("jobs", 0, "concurrent sweep points (0 = one per CPU, 1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	formatList := strings.Split(*formats, ",")
	workloads := make([]core.Workload, len(formatList))
	for i, format := range formatList {
		w, err := core.WorkloadFor(strings.TrimSpace(format))
		if err != nil {
			fatal(err)
		}
		w.SampleFraction = *fraction
		workloads[i] = w
	}

	type point struct {
		w  core.Workload
		ch int
		f  int
	}
	var grid []point
	for _, w := range workloads {
		for _, ch := range chList {
			for _, f := range freqList {
				grid = append(grid, point{w, ch, f})
			}
		}
	}
	njobs := *jobs
	if njobs == 0 {
		njobs = core.DefaultJobs()
	}
	results, err := core.RunIndexed(njobs, len(grid), func(i int) (core.Result, error) {
		p := grid[i]
		return core.Simulate(p.w, core.PaperMemory(p.ch, units.Frequency(p.f)*units.MHz))
	})
	if err != nil {
		fatal(err)
	}

	fmt.Println("format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw")
	for i, res := range results {
		fmt.Printf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f\n",
			res.Format.Name, grid[i].ch, grid[i].f,
			res.FrameBytes,
			res.RequiredBandwidth.GBps(),
			res.AccessTime.Milliseconds(),
			res.FramePeriod.Milliseconds(),
			res.Verdict,
			res.Efficiency,
			res.TotalPower.Milliwatts(),
			res.InterfacePower.Milliwatts())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
