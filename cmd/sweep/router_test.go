package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/shard"
)

// csvFromService posts a sweep to a service handler URL and renders the
// JSON answer as sweep CSV — the drop-in-substitution contract: header,
// then every point through server.CSVRow.
func csvFromService(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sw server.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service sweep: status %d", resp.StatusCode)
	}
	var b strings.Builder
	b.WriteString(server.CSVHeader)
	b.WriteByte('\n')
	for _, p := range sw.Points {
		b.WriteString(p.CSVRow())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRouterSweepMatchesCLI pins the scale-out substitution contract end
// to end: the same grid answered by (a) the re-exec'd sweep CLI, (b) a
// single simd-equivalent service, and (c) a 3-shard fleet behind the
// router merges to byte-identical CSV — at the exact tier and at
// -fidelity auto.
func TestRouterSweepMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec simulation in -short mode")
	}
	for _, tier := range []string{"exact", "auto"} {
		t.Run(tier, func(t *testing.T) {
			args := []string{"-formats", "720p30", "-channels", "1,2", "-freqs", "200,266", "-fraction", "0.02", "-fidelity", tier}
			cli, cliErr, code := runSweep(t, args...)
			if code != 0 {
				t.Fatalf("sweep CLI exited %d:\n%s", code, cliErr)
			}

			body := `{"fidelity":"` + tier + `","formats":["720p30"],"channels":[1,2],"freqs_mhz":[200,266],"fraction":0.02}`

			single := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
			defer single.Close()
			if got := csvFromService(t, single.URL, body); got != cli {
				t.Errorf("single service CSV differs from CLI\nservice:\n%s\ncli:\n%s", got, cli)
			}

			shards := map[string]string{}
			for _, name := range []string{"s1", "s2", "s3"} {
				ts := httptest.NewServer(server.New(server.Config{
					Workers: 2, ShardName: name, Metrics: metrics.NewRegistry(),
				}).Handler())
				defer ts.Close()
				shards[name] = ts.URL
			}
			rt, err := shard.NewRouter(shard.RouterConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			routed := httptest.NewServer(rt.Handler())
			defer routed.Close()
			if got := csvFromService(t, routed.URL, body); got != cli {
				t.Errorf("router-merged CSV differs from CLI\nrouter:\n%s\ncli:\n%s", got, cli)
			}
		})
	}
}
