package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/probe"
)

// TestMain doubles as a re-exec shim: with SWEEP_RUN_MAIN=1 the test
// binary becomes the sweep command itself, so the tests below exercise the
// real main() — flag parsing, validation exits, stdout/stderr split —
// without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEP_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSweep re-execs the test binary as the sweep command and returns its
// separated streams and exit code.
func runSweep(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SWEEP_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// TestStdoutByteIdentical pins the observability contract: a run with
// -progress, -debug-addr and -summary-out produces byte-identical stdout
// to a plain run, with every added surface on stderr or in files.
func TestStdoutByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec simulation in -short mode")
	}
	grid := []string{"-formats", "720p30", "-channels", "1,2", "-freqs", "200,266", "-fraction", "0.02"}
	plain, plainErr, code := runSweep(t, grid...)
	if code != 0 {
		t.Fatalf("plain run exited %d:\n%s", code, plainErr)
	}

	sum := filepath.Join(t.TempDir(), "summary.json")
	instr, instrErr, code := runSweep(t, append(grid,
		"-progress", "-debug-addr", "127.0.0.1:0", "-summary-out", sum)...)
	if code != 0 {
		t.Fatalf("instrumented run exited %d:\n%s", code, instrErr)
	}

	if plain != instr {
		t.Errorf("stdout differs with observability enabled:\nplain:\n%s\ninstrumented:\n%s", plain, instr)
	}
	for _, want := range []string{"sweep: debug: listening on", "sweep: summary: wrote", "done in"} {
		if !strings.Contains(instrErr, want) {
			t.Errorf("instrumented stderr missing %q:\n%s", want, instrErr)
		}
	}

	s, err := probe.ReadSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Tool != "sweep" {
		t.Errorf("summary tool = %q, want sweep", s.Run.Tool)
	}
	e, ok := s.Metrics.Find("runindexed_points_completed_total")
	if !ok || int64(e.Value) != 4 {
		t.Errorf("summary completed points = %+v ok=%v, want 4", e, ok)
	}
}

// TestFlagValidationExits pins the usage-error contract: malformed
// observability flags exit 2 (the flag package's usage status) with the
// offending flag named on stderr, before any simulation starts.
func TestFlagValidationExits(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir", "summary.json")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"debug-addr no port", []string{"-debug-addr", "nonsense"}, "-debug-addr"},
		{"debug-addr bad port", []string{"-debug-addr", ":70000"}, "-debug-addr"},
		{"summary-out unwritable", []string{"-summary-out", missing}, "-summary-out"},
		{"progress vs serial", []string{"-progress", "-serial"}, "-progress conflicts with -serial"},
		{"negative jobs", []string{"-jobs", "-1"}, "-jobs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runSweep(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
			if stdout != "" {
				t.Errorf("usage error wrote to stdout: %q", stdout)
			}
		})
	}
}
