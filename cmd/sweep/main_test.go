package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,4,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("expected error for bad element")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("expected error for empty list")
	}
}
