package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"repro/internal/controller"
	"strings"
	"testing"
)

func TestDumpSummaryReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame.trace")

	// Redirect stdout to capture the dump.
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	dumpErr := dumpTrace("720p30", 2, 0.001, false)
	os.Stdout = old
	f.Close()
	if dumpErr != nil {
		t.Fatal(dumpErr)
	}

	if err := summarize(path); err != nil {
		t.Fatal(err)
	}
	if err := replay(path, 2, 400, 100000, "", "", true, controller.OpenPage, ""); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := summarize(filepath.Join(dir, "missing")); err == nil {
		t.Error("expected error for missing file")
	}
	if err := replay(path, 0, 400, 100000, "", "", false, controller.OpenPage, ""); err == nil {
		t.Error("expected error for zero channels")
	}
	if err := dumpTrace("nope", 2, 0.001, false); err == nil {
		t.Error("expected error for unknown format")
	}

	// Binary dump round-trips through the auto-detecting loader.
	binPath := filepath.Join(dir, "frame.bin")
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = fb
	dumpErr = dumpTrace("720p30", 2, 0.001, true)
	os.Stdout = old
	fb.Close()
	if dumpErr != nil {
		t.Fatal(dumpErr)
	}
	binReqs, err := loadTrace(binPath)
	if err != nil {
		t.Fatal(err)
	}
	txtReqs, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(binReqs) != len(txtReqs) {
		t.Errorf("binary trace has %d requests, text %d", len(binReqs), len(txtReqs))
	}

	// Replay with observability outputs writes a Chrome trace, a metrics
	// file and a manifest next to them.
	traceOut := filepath.Join(dir, "replay.trace.json")
	metricsOut := filepath.Join(dir, "replay.metrics.csv")
	if err := replay(path, 2, 400, 10000, traceOut, metricsOut, false, controller.FRFCFS, "lpddr4"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("replay trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("replay trace has no traceEvents")
	}
	csv, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "channel,epoch") {
		t.Error("replay metrics file lacks the CSV header")
	}
	if _, err := os.Stat(metricsOut + ".manifest.json"); err != nil {
		t.Errorf("replay manifest missing: %v", err)
	}
}
