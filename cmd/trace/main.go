// Command trace works with memory transaction traces: dump the recording
// load model's stream for inspection, summarize a trace file, or replay one
// through a memory configuration.
//
// Usage:
//
//	trace -dump -format 720p30 -channels 2 -fraction 0.001 > frame.trace
//	trace -summary frame.trace
//	trace -run frame.trace -channels 2 -freq 400
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/probe"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "emit the load model's transaction trace to stdout")
		binary   = flag.Bool("binary", false, "use the compact binary format for -dump")
		run      = flag.String("run", "", "replay the given trace file through a memory configuration")
		summary  = flag.String("summary", "", "summarize the given trace file")
		format   = flag.String("format", "720p30", "frame format for -dump")
		channels = flag.Int("channels", 2, "channel count")
		freqMHz  = flag.Float64("freq", 400, "clock in MHz")
		fraction = flag.Float64("fraction", 0.001, "frame fraction for -dump")

		probeWindow = flag.Int64("probe-window", 100000, "time-series epoch length in DRAM cycles (for -metrics-out)")
		traceOut    = flag.String("trace-out", "", "with -run: write a Chrome/Perfetto trace-event JSON of the replay")
		metricsOut  = flag.String("metrics-out", "", "with -run: write windowed time-series metrics (.json = JSON, else CSV)")
		checkRun    = flag.Bool("check", false, "with -run: verify every DRAM command against the device timing constraints (violations are fatal)")
		policyName  = flag.String("policy", "", "with -run: controller scheduling policy, one of "+strings.Join(controller.PolicyNames(), ", ")+" (empty = open-page)")
		deviceName  = flag.String("device", "", "with -run: DRAM datasheet, one of "+strings.Join(dram.DeviceNames(), ", ")+" (empty = paper)")
	)
	flag.Parse()

	policy, err := controller.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: -policy: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if _, err := dram.Device(*deviceName); err != nil {
		fmt.Fprintf(os.Stderr, "trace: -device: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *probeWindow <= 0 {
		fmt.Fprintf(os.Stderr, "trace: -probe-window must be positive, got %d\n", *probeWindow)
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *dump:
		if err := dumpTrace(*format, *channels, *fraction, *binary); err != nil {
			fatal(err)
		}
	case *summary != "":
		if err := summarize(*summary); err != nil {
			fatal(err)
		}
	case *run != "":
		if err := replay(*run, *channels, *freqMHz, *probeWindow, *traceOut, *metricsOut, *checkRun, policy, *deviceName); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}

func dumpTrace(format string, channels int, fraction float64, binary bool) error {
	prof, err := video.ProfileFor(format)
	if err != nil {
		return err
	}
	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		return err
	}
	gen, err := load.New(l, channels, dram.DefaultGeometry(), load.Config{})
	if err != nil {
		return err
	}
	src, err := gen.Frame(fraction)
	if err != nil {
		return err
	}
	reqs := trace.Record(src)
	if binary {
		return trace.WriteBinary(os.Stdout, reqs)
	}
	fmt.Printf("# %s recording, %d channels, fraction %g: %d transactions\n",
		format, channels, fraction, len(reqs))
	return trace.Write(os.Stdout, reqs)
}

func summarize(path string) error {
	reqs, err := loadTrace(path)
	if err != nil {
		return err
	}
	s := trace.Summarize(reqs)
	fmt.Printf("transactions: %d (%d reads, %d writes)\n", s.Transactions, s.Reads, s.Writes)
	fmt.Printf("payload:      %d bytes read, %d bytes written\n", s.BytesRead, s.BytesWritten)
	fmt.Printf("address span: [%d, %d)\n", s.MinAddr, s.MaxAddr)
	return nil
}

func replay(path string, channels int, freqMHz float64, probeWindow int64, traceOut, metricsOut string, checkRun bool, policy controller.PagePolicy, deviceName string) error {
	reqs, err := loadTrace(path)
	if err != nil {
		return err
	}
	obs, err := probe.NewObserver(channels, probeWindow, traceOut, metricsOut)
	if err != nil {
		return err
	}
	cfg := memsys.PaperConfig(channels, units.Frequency(freqMHz)*units.MHz)
	cfg.Policy = policy
	if dev, err := dram.Device(deviceName); err == nil && dev.Name != dram.PaperDevice {
		cfg.Geometry = dev.Geometry
		cfg.Timing = dev.Timing
	}
	if obs.Enabled() {
		cfg.NewProbe = obs.Channel
	}
	var set *check.Set
	if checkRun {
		speed, err := dram.Resolve(cfg.Geometry, cfg.Timing, cfg.Freq)
		if err != nil {
			return err
		}
		set = check.New(check.Options{
			Speed:           speed,
			Policy:          cfg.Policy,
			RefreshPostpone: cfg.RefreshPostpone,
		})
		prev := cfg.NewProbe
		cfg.NewProbe = func(ch int) probe.Sink {
			if prev == nil {
				return set.Channel(ch)
			}
			return probe.Multi(prev(ch), set.Channel(ch))
		}
	}
	sys, err := memsys.New(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sys.Run(memsys.NewSliceSource(reqs))
	if err != nil {
		return err
	}
	if set != nil {
		if err := set.Err(); err != nil {
			for _, v := range set.Violations() {
				fmt.Fprintln(os.Stderr, "trace: check:", v)
			}
			return err
		}
		fmt.Println("check:       every DRAM command satisfied the device timing constraints")
	}
	fmt.Printf("replayed %d transactions (%d bursts) on %d ch @ %g MHz\n",
		res.Transactions, res.Bursts, channels, freqMHz)
	fmt.Printf("makespan:    %v (%d cycles)\n", res.Time, res.Cycles)
	fmt.Printf("bandwidth:   %.3f GB/s payload (%.1f%% bus utilization)\n",
		res.Bandwidth().GBps(), res.BusUtilization()*100)
	fmt.Printf("activity:    %s\n", res.Totals())
	if obs.Enabled() {
		man := probe.NewManifest("trace")
		man.Channels = channels
		man.FreqMHz = freqMHz
		man.SampleFraction = 1
		man.Config = map[string]any{"probe_window": probeWindow}
		man.Workload = map[string]any{
			"trace_file": path, "transactions": res.Transactions, "bursts": res.Bursts,
		}
		man.Finish(res.Cycles, time.Since(start))
		if err := obs.WriteOutputs(&man); err != nil {
			return err
		}
		fmt.Printf("observability: wrote %v\n", man.Outputs)
	}
	return nil
}

// loadTrace reads a trace file in either format (binary detected by magic).
func loadTrace(path string) ([]memsys.Request, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 8 && string(data[:8]) == "mcmtrc01" {
		return trace.ReadBinary(bytes.NewReader(data))
	}
	return trace.Read(bytes.NewReader(data))
}
