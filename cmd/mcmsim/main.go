// Command mcmsim simulates one frame of the video-recording use case on a
// multi-channel memory configuration and reports access time, real-time
// verdict, bandwidth and power, reproducing a single data point of the
// paper's figures.
//
// Usage:
//
//	mcmsim -format 1080p30 -channels 4 -freq 400
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"strings"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
)

func main() {
	var (
		format   = flag.String("format", "720p30", "frame format: 720p30, 720p60, 1080p30, 1080p60, 2160p30, 2160p60")
		channels = flag.Int("channels", 1, "memory channel count (1, 2, 4, 8)")
		freqMHz  = flag.Float64("freq", 400, "interface clock in MHz (200-533 for the paper device; other -device entries carry their own range)")
		mux      = flag.String("mux", "rbc", "address multiplexing: rbc or brc")
		page     = flag.String("page", "open", "scheduling policy: "+strings.Join(controller.PolicyNames(), ", "))
		device   = flag.String("device", "", "DRAM datasheet: "+strings.Join(dram.DeviceNames(), ", ")+" (empty = paper)")
		noPD     = flag.Bool("no-powerdown", false, "disable aggressive power-down")
		fraction = flag.Float64("fraction", 1.0, "fraction of the frame traffic to simulate (extrapolated)")
		perChan  = flag.Bool("per-channel", false, "print per-channel power breakdown")
		stages   = flag.Bool("stages", false, "attribute access time and energy per pipeline stage")
		latency  = flag.Bool("latency", false, "print the per-burst latency histogram")
		wbuf     = flag.Int("write-buffer", 0, "posted-write buffer depth (0 = paper baseline)")
		queue    = flag.Int("queue", 0, "FR-FCFS reorder window depth (0 = in-order baseline)")
		refPost  = flag.Int("refresh-postpone", 0, "max postponed refreshes (0 = immediate)")
		preIdle  = flag.Bool("precharge-idle", false, "precharge all banks before power-down")

		probeWindow = flag.Int64("probe-window", 100000, "time-series epoch length in DRAM cycles (for -metrics-out)")
		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON of the run to this file")
		metricsOut  = flag.String("metrics-out", "", "write windowed time-series metrics to this file (.json = JSON, else CSV)")
		checkRun    = flag.Bool("check", false, "verify every DRAM command against the device timing constraints (slower; violations are fatal)")

		faultSeed    = flag.Uint64("fault-seed", 1, "fault plan PRNG seed (same seed = byte-identical QoS report)")
		faultDrop    = flag.Int("fault-drop-channel", -1, "channel to fail permanently (-1 = no dropout)")
		faultDropAt  = flag.Int64("fault-drop-cycle", 0, "dispatch cycle of the dropout (0 = mid first frame slot)")
		faultDerate  = flag.Int64("fault-derate-cycle", 0, "cycle of the thermal derate doubling refresh rate (0 = off)")
		faultReadErr = flag.Float64("fault-read-error-rate", 0, "per-read probability of a transient ECC error (0 = off)")
		faultStall   = flag.Float64("fault-stall-rate", 0, "per-request probability of a controller stall (0 = off)")
		faultStallMx = flag.Int64("fault-stall-max", 0, "max stall length in cycles (0 = default)")
		faultFrames  = flag.Int("fault-frames", 8, "frame slots to run in degraded mode (with any -fault-* active)")
		serial       = flag.Bool("serial", false, "force single-goroutine simulation (results are identical; CI determinism gate)")
		qosOut       = flag.String("qos-out", "", "write the deterministic QoS report to this file")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		fidelity = flag.String("fidelity", "exact", "exact = cycle-accurate simulation; fast = closed-form analytic estimate (no verdict guarantee); auto = analytic when the calibration envelope proves the verdict, cycle-accurate fallback otherwise")

		cacheDir = flag.String("cache-dir", "", "serve the point from a content-addressed on-disk cache under this directory when present, storing it otherwise")
		noCache  = flag.Bool("no-cache", false, "simulate even when a cache would hit (output is byte-identical either way)")

		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /metrics.json, expvar and pprof on this host:port for the run's duration (e.g. 127.0.0.1:0)")
		summaryOut = flag.String("summary-out", "", "write a schema-versioned end-of-run summary JSON (manifest + metrics snapshot) to this file")
	)
	flag.Parse()

	if *probeWindow <= 0 {
		usageError("-probe-window must be positive, got %d", *probeWindow)
	}
	if *noCache && *cacheDir != "" {
		usageError("-no-cache conflicts with -cache-dir %q: the on-disk cache cannot be both used and disabled", *cacheDir)
	}
	if *debugAddr != "" {
		if err := debugserver.ValidateAddr(*debugAddr); err != nil {
			usageError("-debug-addr %q: %v", *debugAddr, err)
		}
	}
	if err := probe.CheckWritable(*summaryOut); err != nil {
		usageError("-summary-out not writable: %v", err)
	}
	tier, err := core.ParseFidelity(*fidelity)
	if err != nil {
		usageError("-fidelity: %v", err)
	}
	if tier != core.FidelityExact {
		// The analytic tiers produce no command stream, no per-burst
		// events and no per-frame payloads; every surface that consumes
		// those needs the cycle-accurate simulator.
		switch {
		case *checkRun:
			usageError("-check conflicts with -fidelity %s: the protocol checker needs the cycle-accurate command stream", tier)
		case *latency:
			usageError("-latency conflicts with -fidelity %s: the estimate has no per-burst latencies", tier)
		case *stages:
			usageError("-stages conflicts with -fidelity %s: stage attribution re-runs the simulator", tier)
		case *perChan:
			usageError("-per-channel conflicts with -fidelity %s: the estimate has no per-channel breakdown", tier)
		case *traceOut != "" || *metricsOut != "":
			usageError("-trace-out/-metrics-out conflict with -fidelity %s: estimates emit no event stream", tier)
		case *faultDrop >= 0 || *faultDerate != 0 || *faultReadErr != 0 || *faultStall != 0:
			usageError("fault injection conflicts with -fidelity %s: degraded-mode runs are always cycle-accurate", tier)
		}
	}

	// The registry exists only when some surface consumes it; otherwise the
	// instrumented layers keep their nil-check fast paths. Enabled before
	// the cache is built so its counters register.
	var reg *metrics.Registry
	if *debugAddr != "" || *summaryOut != "" {
		reg = metrics.NewRegistry()
		core.EnableMetrics(reg)
		defer core.EnableMetrics(nil)
	}
	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mcmsim: debug: listening on %s\n", srv.Addr())
	}
	runStart := time.Now()

	if *cacheDir != "" {
		// Observed runs (-latency, -trace-out, -metrics-out, -check,
		// -fault-*) bypass the cache on their own; only the plain
		// access-time/power run is served content-addressed.
		cache, err := core.NewDiskSimCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		core.EnableCache(cache)
		defer func() { fmt.Fprintln(os.Stderr, "mcmsim: cache:", cache.Stats()) }()
	}
	for _, out := range []string{*traceOut, *metricsOut, *qosOut} {
		if err := probe.CheckWritable(out); err != nil {
			fatal(fmt.Errorf("output not writable: %w", err))
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	w, err := core.WorkloadFor(*format)
	if err != nil {
		fatal(err)
	}
	w.SampleFraction = *fraction
	w.RecordLatency = *latency

	mc := core.PaperMemory(*channels, units.Frequency(*freqMHz)*units.MHz)
	switch *mux {
	case "rbc":
		mc.Mux = mapping.RBC
	case "brc":
		mc.Mux = mapping.BRC
	default:
		usageError("unknown multiplexing %q (want rbc or brc)", *mux)
	}
	if mc.Policy, err = controller.ParsePolicy(*page); err != nil {
		usageError("-page: %v", err)
	}
	if _, err := dram.Device(*device); err != nil {
		usageError("-device: %v", err)
	}
	mc.Device = *device
	mc.DisablePowerDown = *noPD
	mc.WriteBufferDepth = *wbuf
	mc.QueueDepth = *queue
	mc.RefreshPostpone = *refPost
	mc.PrechargeOnIdle = *preIdle

	mc.Serial = *serial

	obs, err := probe.NewObserver(*channels, *probeWindow, *traceOut, *metricsOut)
	if err != nil {
		fatal(err)
	}
	if obs.Enabled() {
		mc.NewProbe = obs.Channel
	}
	if *traceOut != "" {
		// Run-level phase spans ride along in the Chrome trace on their own
		// wall-clock track next to the DRAM-cycle channel tracks.
		spans := probe.NewSpans()
		core.EnableSpans(spans)
		defer core.EnableSpans(nil)
		obs.SetSpans(spans)
	}

	var checker *check.Set
	if *checkRun {
		if checker, err = core.AttachChecker(&mc); err != nil {
			fatal(err)
		}
	}

	plan := fault.Plan{
		Seed:           *faultSeed,
		DerateAtCycle:  *faultDerate,
		ReadErrorRate:  *faultReadErr,
		StallRate:      *faultStall,
		StallMaxCycles: *faultStallMx,
	}
	if *faultDrop >= 0 {
		plan.DropChannel = *faultDrop
		plan.DropAtCycle = *faultDropAt
		if plan.DropAtCycle == 0 {
			// Default: halfway through the first (sampled) frame slot.
			period := w.Profile.Format.FramePeriod().Cycles(mc.Freq)
			plan.DropAtCycle = int64(float64(period)**fraction) / 2
		}
	}
	if plan.Enabled() {
		mc.Faults = &plan
		cycles := runDegraded(w, mc, obs, *faultFrames, *fraction, *probeWindow, *qosOut)
		reportCheck(checker)
		writeSummary(reg, *summaryOut, *fraction, *channels, *freqMHz, cycles, time.Since(runStart))
		return
	}

	start := time.Now()
	res, err := core.SimulateAuto(w, mc, tier)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if obs.Enabled() {
		man := probe.NewManifest("mcmsim")
		man.Channels = res.Channels
		man.FreqMHz = float64(res.Freq) / float64(units.MHz)
		man.SampleFraction = *fraction
		man.Config = map[string]any{
			"mux": mc.Mux.String(), "page_policy": mc.Policy.String(),
			"device":    deviceName(mc.Device),
			"powerdown": !mc.DisablePowerDown, "write_buffer": mc.WriteBufferDepth,
			"queue_depth": mc.QueueDepth, "refresh_postpone": mc.RefreshPostpone,
			"precharge_on_idle": mc.PrechargeOnIdle, "probe_window": *probeWindow,
		}
		man.Workload = map[string]any{
			"format": res.Format.Name, "level": res.Level.Number,
			"frame_bytes": res.FrameBytes,
		}
		man.Finish(res.SimulatedCycles, wall)
		if err := obs.WriteOutputs(&man); err != nil {
			fatal(err)
		}
		fmt.Printf("observability: wrote %v\n", man.Outputs)
	}

	fmt.Printf("workload:   %s (H.264 level %s), %d B/frame (%.2f GB/s required)\n",
		res.Format, res.Level.Number, res.FrameBytes, res.RequiredBandwidth.GBps())
	fmt.Printf("memory:     %d channel(s) @ %v, %s, %s, %s, power-down %v\n",
		res.Channels, res.Freq, mc.Mux, mc.Policy, deviceName(mc.Device), !mc.DisablePowerDown)
	fmt.Printf("access:     %v per frame (budget %v)  ->  %s\n",
		res.AccessTime, res.FramePeriod, res.Verdict)
	if res.Estimated {
		fmt.Printf("fidelity:   analytic estimate (%s tier; error-bounded closed form, not simulated)\n", tier)
	}
	fmt.Printf("bandwidth:  %.2f GB/s achieved of %.2f GB/s peak (efficiency %.3f)\n",
		res.AchievedBandwidth.GBps(), res.PeakBandwidth.GBps(), res.Efficiency)
	if res.Estimated {
		fmt.Printf("power:      %.1f mW total (interface split not computed)\n",
			res.TotalPower.Milliwatts())
	} else {
		fmt.Printf("power:      %.1f mW total (interface %.1f mW)\n",
			res.TotalPower.Milliwatts(), res.InterfacePower.Milliwatts())
		fmt.Printf("activity:   %s\n", res.Totals)
	}
	if *perChan {
		for i, b := range res.PerChannel {
			fmt.Printf("  channel %d: %.2f mW (bg %.3f mJ, act %.3f mJ, rw %.3f mJ, ref %.3f mJ, io %.3f mJ)\n",
				i, b.AveragePower().Milliwatts(),
				b.Background.Millijoules(), b.Activate.Millijoules(),
				b.ReadWrite.Millijoules(), b.Refresh.Millijoules(), b.Interface.Millijoules())
		}
	}
	if *latency && res.Latency != nil {
		fmt.Printf("latency:    %s cycles (p50<=%d p99<=%d)\n",
			res.Latency, res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	}
	if *stages {
		sres, err := core.SimulateStages(w, mc)
		if err != nil {
			fatal(err)
		}
		fmt.Println("per-stage attribution:")
		for _, s := range sres {
			fmt.Printf("  %-22s %10d B  %10.3f ms  %8.3f mJ  eff %.2f\n",
				s.Name, s.Bytes, s.Time.Milliseconds(), s.Energy.Millijoules(), s.Efficiency)
		}
	}
	reportCheck(checker)
	writeSummary(reg, *summaryOut, *fraction, *channels, *freqMHz, res.SimulatedCycles, time.Since(runStart))
}

// writeSummary emits the schema-versioned end-of-run summary (manifest plus
// the full metrics snapshot) when -summary-out is set. Confirmation goes to
// stderr so stdout stays byte-identical.
func writeSummary(reg *metrics.Registry, out string, fraction float64, channels int, freqMHz float64, cycles int64, wall time.Duration) {
	if out == "" {
		return
	}
	man := probe.NewManifest("mcmsim")
	man.Channels = channels
	man.FreqMHz = freqMHz
	man.SampleFraction = fraction
	man.Finish(cycles, wall)
	man.AddOutput("summary", out)
	if err := probe.NewSummary(man, reg.Snapshot()).Write(out); err != nil {
		fatal(fmt.Errorf("writing summary: %w", err))
	}
	fmt.Fprintf(os.Stderr, "mcmsim: summary: wrote %s\n", out)
}

// reportCheck prints the invariant checker's outcome; any violation of the
// device timing constraints is fatal with the full violation list on
// stderr. A nil set (checking disabled) is a no-op.
func reportCheck(set *check.Set) {
	if set == nil {
		return
	}
	if err := set.Err(); err != nil {
		for _, v := range set.Violations() {
			fmt.Fprintln(os.Stderr, "mcmsim: check:", v)
		}
		if n := set.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "mcmsim: check: %d further violations dropped\n", n)
		}
		fatal(err)
	}
	fmt.Println("check:      every DRAM command satisfied the device timing constraints")
}

// deviceName spells the -device selection for reports; the empty string
// is the paper baseline.
func deviceName(device string) string {
	d, err := dram.Device(device)
	if err != nil {
		return device
	}
	return d.Name
}

// usageError reports a flag-validation failure and exits with the usage
// status (2), matching the flag package's own error handling.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcmsim: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// runDegraded executes the fault-injected degraded-mode run and prints its
// QoS report plus the per-frame timeline. It returns the simulated cycle
// count for the run summary.
func runDegraded(w core.Workload, mc core.MemoryConfig, obs *probe.Observer, frames int, fraction float64, probeWindow int64, qosOut string) int64 {
	start := time.Now()
	res, err := core.SimulateDegraded(w, mc, frames)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if obs.Enabled() {
		man := probe.NewManifest("mcmsim")
		man.Channels = res.Channels
		man.FreqMHz = float64(res.Freq) / float64(units.MHz)
		man.SampleFraction = fraction
		man.Config = map[string]any{
			"mux": mc.Mux.String(), "page_policy": mc.Policy.String(),
			"device":    deviceName(mc.Device),
			"powerdown": !mc.DisablePowerDown, "probe_window": probeWindow,
			"serial": mc.Serial, "fault_plan": fmt.Sprintf("%+v", *mc.Faults),
		}
		man.Workload = map[string]any{
			"format": res.Format.Name, "level": res.Level.Number,
			"frame_bytes": res.FrameBytes, "frames": frames,
		}
		man.Finish(res.SimulatedCycles, wall)
		if err := obs.WriteOutputs(&man); err != nil {
			fatal(err)
		}
		fmt.Printf("observability: wrote %v\n", man.Outputs)
	}

	fmt.Printf("workload:   %s (H.264 level %s), %d B/frame, %d frame slot(s)\n",
		res.Format, res.Level.Number, res.FrameBytes, frames)
	fmt.Printf("memory:     %d channel(s) @ %v, fault plan %+v\n", res.Channels, res.Freq, *mc.Faults)
	fmt.Printf("verdict:    %s (final level %d, final format %s)\n", res.Verdict, res.FinalLevel, res.FinalFormat.Name)
	fmt.Printf("power:      %.1f mW total (interface %.1f mW)\n",
		res.TotalPower.Milliwatts(), res.InterfacePower.Milliwatts())
	fmt.Println("frames:")
	for _, fr := range res.PerFrame {
		status := "ok"
		switch {
		case fr.Dropped:
			status = "dropped"
		case fr.Missed:
			status = "MISS"
		case fr.Late:
			status = "late"
		}
		completed := "-"
		if !fr.Dropped {
			completed = fmt.Sprintf("%d", fr.Completed)
		}
		fmt.Printf("  frame %2d  level %d  deadline %10d  completed %10s  %s\n",
			fr.Frame, fr.Level, fr.Deadline, completed, status)
	}
	report := res.QoS.Report()
	fmt.Print(report)
	if qosOut != "" {
		if err := os.WriteFile(qosOut, []byte(report), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("qos report: wrote %s\n", qosOut)
	}
	return res.SimulatedCycles
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcmsim:", err)
	os.Exit(1)
}
