// Command simrouter fronts a fleet of simd shards with a consistent-hash
// ring over the simulation cache keys: POST /v1/simulate forwards each
// point to the shard that owns its key (so every shard's cache stays hot
// for ITS slice of the keyspace and no result is computed twice anywhere
// in the fleet), and POST /v1/sweep fans the grid out as ONE batched
// sub-request per shard, merging the answers into a body byte-identical
// to what a single daemon — or the sweep CLI — would produce.
//
// A shard that fails a request or its background health poll is skipped
// by the failover walk: the request retries on the ring successor with
// jittered backoff, so killing a shard mid-sweep costs latency, never a
// wrong answer. 429 (backpressure) and 504 (the client's own deadline)
// are passed through, not retried. ?warm=1 on a sweep primes the fleet's
// caches without shipping result bodies back.
//
// Shards are named: placement follows the NAME, so a shard can move to a
// new address without reshuffling the keyspace, and every response says
// which shard answered (X-Sim-Shard; per-shard counts on merged sweeps).
//
// Usage:
//
//	simrouter -shard s1=http://127.0.0.1:8081 -shard s2=http://127.0.0.1:8082
//	simrouter -addr :0 -shard a=http://10.0.0.1:8080 -retries 3 -debug-addr 127.0.0.1:9091
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/debugserver"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// shardFlags collects repeated -shard name=url definitions.
type shardFlags map[string]string

func (f shardFlags) String() string {
	parts := make([]string, 0, len(f))
	for name, url := range f {
		parts = append(parts, name+"="+url)
	}
	return strings.Join(parts, ",")
}

func (f shardFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	if _, dup := f[name]; dup {
		return fmt.Errorf("shard %q defined twice", name)
	}
	f[name] = url
	return nil
}

func main() {
	shards := shardFlags{}
	flag.Var(shards, "shard", "fleet member as name=url (repeatable; the name is the ring identity)")
	var (
		addr           = flag.String("addr", "127.0.0.1:8090", "host:port to serve the routed API on (\":0\" picks a free port, announced on stderr)")
		debugAddr      = flag.String("debug-addr", "", "serve /metrics, /metrics.json, expvar and pprof on this host:port")
		vnodes         = flag.Int("vnodes", shard.DefaultVNodes, "virtual nodes per shard on the placement ring")
		retries        = flag.Int("retries", 2, "ring successors to fail over to when a shard errors")
		retryBackoff   = flag.Duration("retry-backoff", 25*time.Millisecond, "base jittered delay between failover attempts")
		healthInterval = flag.Duration("health-interval", time.Second, "period of the background per-shard /healthz poll")
		shardTimeout   = flag.Duration("shard-timeout", 10*time.Minute, "cap on one proxied shard request")
		maxSweepPoints = flag.Int("max-sweep-points", 4096, "largest grid one routed sweep may expand to")
		drain          = flag.Duration("drain", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	if err := debugserver.ValidateAddr(*addr); err != nil {
		usageError("-addr %q: %v", *addr, err)
	}
	if *debugAddr != "" {
		if err := debugserver.ValidateAddr(*debugAddr); err != nil {
			usageError("-debug-addr %q: %v", *debugAddr, err)
		}
	}
	if len(shards) == 0 {
		usageError("at least one -shard name=url is required")
	}
	if *vnodes < 1 || *retries < 0 || *maxSweepPoints < 1 {
		usageError("-vnodes and -max-sweep-points must be >= 1, -retries >= 0")
	}
	if *retryBackoff <= 0 || *healthInterval <= 0 || *shardTimeout <= 0 || *drain <= 0 {
		usageError("-retry-backoff, -health-interval, -shard-timeout and -drain must be positive")
	}

	reg := metrics.NewRegistry()
	rt, err := shard.NewRouter(shard.RouterConfig{
		Shards:         shards,
		VNodes:         *vnodes,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		HealthInterval: *healthInterval,
		ShardTimeout:   *shardTimeout,
		MaxSweepPoints: *maxSweepPoints,
		Metrics:        reg,
	})
	if err != nil {
		fatal(err)
	}

	var dbg *debugserver.Server
	if *debugAddr != "" {
		if dbg, err = debugserver.Start(*debugAddr, reg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simrouter: debug: listening on %s\n", dbg.Addr())
	}
	if err := rt.Start(*addr); err != nil {
		fatal(err)
	}
	// Same stderr announce contract as simd, so the CI gate and tooling
	// can scrape the resolved port.
	fmt.Fprintf(os.Stderr, "simrouter: listening on %s (%d shards)\n", rt.Addr(), len(shards))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "simrouter: received %s, draining (deadline %s)\n", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = rt.Drain(ctx)
	if derr := dbg.Shutdown(ctx); err == nil {
		err = derr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "simrouter: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrouter:", err)
	os.Exit(1)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simrouter: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}
