package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var fastOpt = core.RunOptions{SampleFraction: 0.02}

func TestTableIArtifact(t *testing.T) {
	tb, err := tableI(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	// Five level columns plus the row-name column.
	if len(tb.Headers) != 6 {
		t.Errorf("headers = %d, want 6", len(tb.Headers))
	}
	for _, want := range []string{"L3.1 720p30", "L5.2 2160p30", "Video encoder", "Data Mem. load [MB/s]", "1890"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig3Artifact(t *testing.T) {
	tb, err := fig3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 20 {
		t.Errorf("Fig. 3 rows = %d, want 20", tb.Rows())
	}
	out := tb.String()
	if !strings.Contains(out, "MARGINAL") {
		t.Error("Fig. 3 missing the 333 MHz MARGINAL point")
	}
	if !strings.Contains(out, "infeasible") {
		t.Error("Fig. 3 missing infeasible points")
	}
}

func TestFig4And5Artifacts(t *testing.T) {
	f4, err := fig4(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if f4.Rows() != 24 {
		t.Errorf("Fig. 4 rows = %d, want 24", f4.Rows())
	}
	f5, err := fig5(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Rows() != 24 {
		t.Errorf("Fig. 5 rows = %d, want 24", f5.Rows())
	}
	out := f5.String()
	// Infeasible bars render as zero.
	if !strings.Contains(out, "infeasible") {
		t.Error("Fig. 5 missing zero bars")
	}
	if !strings.Contains(out, "MARGINAL") {
		t.Error("Fig. 5 missing MARGINAL notes")
	}
}

func TestXDRArtifact(t *testing.T) {
	tb, err := xdrTable(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Cell BE XDR", "25.6", "range"} {
		if !strings.Contains(out, want) {
			t.Errorf("XDR table missing %q", want)
		}
	}
}

func TestAblationsArtifact(t *testing.T) {
	tb, err := ablations(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Errorf("ablations rows = %d, want 4", tb.Rows())
	}
	out := tb.String()
	for _, want := range []string{"RBC vs BRC", "power-down", "open vs closed", "write buffer"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}

func TestGeometryArtifact(t *testing.T) {
	tb, err := geometry(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 10 { // 9 points + spread row
		t.Errorf("geometry rows = %d, want 10", tb.Rows())
	}
	if !strings.Contains(tb.String(), "spread") {
		t.Error("geometry table missing spread row")
	}
}

func TestOperatingArtifact(t *testing.T) {
	tb, err := operating(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 24 {
		t.Errorf("operating rows = %d, want 24", tb.Rows())
	}
	out := tb.String()
	if !strings.Contains(out, "none") {
		t.Error("operating table missing infeasible entries")
	}
	if !strings.Contains(out, "400 MHz") {
		t.Error("operating table missing the 720p30/1ch 400 MHz point")
	}
}

func TestCSVRendering(t *testing.T) {
	tb, err := fig3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 21 { // header + 20 points
		t.Errorf("CSV lines = %d, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "channels,clock") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	tb, err := tableI(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeArtifact(dir, "table1", tb, false); err != nil {
		t.Fatal(err)
	}
	if err := writeArtifact(dir, "table1", tb, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "table1.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
}
