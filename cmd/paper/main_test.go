package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var fastOpt = core.RunOptions{SampleFraction: 0.02}

func TestTableIArtifact(t *testing.T) {
	tb, err := tableI(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	// Five level columns plus the row-name column.
	if len(tb.Headers) != 6 {
		t.Errorf("headers = %d, want 6", len(tb.Headers))
	}
	for _, want := range []string{"L3.1 720p30", "L5.2 2160p30", "Video encoder", "Data Mem. load [MB/s]", "1890"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig3Artifact(t *testing.T) {
	tb, err := fig3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 20 {
		t.Errorf("Fig. 3 rows = %d, want 20", tb.Rows())
	}
	out := tb.String()
	if !strings.Contains(out, "MARGINAL") {
		t.Error("Fig. 3 missing the 333 MHz MARGINAL point")
	}
	if !strings.Contains(out, "infeasible") {
		t.Error("Fig. 3 missing infeasible points")
	}
}

func TestFig4And5Artifacts(t *testing.T) {
	f4, err := fig4(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if f4.Rows() != 24 {
		t.Errorf("Fig. 4 rows = %d, want 24", f4.Rows())
	}
	f5, err := fig5(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Rows() != 24 {
		t.Errorf("Fig. 5 rows = %d, want 24", f5.Rows())
	}
	out := f5.String()
	// Infeasible bars render as zero.
	if !strings.Contains(out, "infeasible") {
		t.Error("Fig. 5 missing zero bars")
	}
	if !strings.Contains(out, "MARGINAL") {
		t.Error("Fig. 5 missing MARGINAL notes")
	}
}

func TestXDRArtifact(t *testing.T) {
	tb, err := xdrTable(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Cell BE XDR", "25.6", "range"} {
		if !strings.Contains(out, want) {
			t.Errorf("XDR table missing %q", want)
		}
	}
}

func TestAblationsArtifact(t *testing.T) {
	tb, err := ablations(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 4 {
		t.Errorf("ablations rows = %d, want 4", tb.Rows())
	}
	out := tb.String()
	for _, want := range []string{"RBC vs BRC", "power-down", "open vs closed", "write buffer"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}

func TestGeometryArtifact(t *testing.T) {
	tb, err := geometry(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 10 { // 9 points + spread row
		t.Errorf("geometry rows = %d, want 10", tb.Rows())
	}
	if !strings.Contains(tb.String(), "spread") {
		t.Error("geometry table missing spread row")
	}
}

func TestOperatingArtifact(t *testing.T) {
	tb, err := operating(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 24 {
		t.Errorf("operating rows = %d, want 24", tb.Rows())
	}
	out := tb.String()
	if !strings.Contains(out, "none") {
		t.Error("operating table missing infeasible entries")
	}
	if !strings.Contains(out, "400 MHz") {
		t.Error("operating table missing the 720p30/1ch 400 MHz point")
	}
}

func TestCSVRendering(t *testing.T) {
	tb, err := fig3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 21 { // header + 20 points
		t.Errorf("CSV lines = %d, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "channels,clock") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// chromeGolden is the minimal shape every Chrome trace-event document
// must satisfy: a traceEvents array whose records carry ph/ts/pid/tid.
type chromeGolden struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   *int64 `json:"ts"`
		Pid  *int   `json:"pid"`
		Tid  *int   `json:"tid"`
	} `json:"traceEvents"`
}

func TestObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "flagship.trace.json")
	metricsOut := filepath.Join(dir, "flagship.metrics.csv")
	outputs, err := writeObservability(0.002, 50_000, traceOut, metricsOut, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trace", "metrics", "manifest"} {
		if outputs[name] == "" {
			t.Errorf("outputs missing %q: %v", name, outputs)
		}
	}

	// Golden check: the trace validates against the Chrome trace-event
	// format — a traceEvents array of records with ph/ts/pid/tid.
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeGolden
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no traceEvents")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("traceEvents[%d] missing required fields: %+v", i, ev)
		}
		phases[ev.Ph] = true
	}
	for _, ph := range []string{"M", "X", "C"} {
		if !phases[ph] {
			t.Errorf("trace has no %q records", ph)
		}
	}

	// The metrics CSV and the manifest ride along.
	csv, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "channel,epoch,start_cycle") {
		t.Error("metrics file lacks the CSV header")
	}
	manRaw, err := os.ReadFile(outputs["manifest"])
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Tool      string  `json:"tool"`
		Channels  int     `json:"channels"`
		SimCycles int64   `json:"sim_cycles"`
		FreqMHz   float64 `json:"freq_mhz"`
	}
	if err := json.Unmarshal(manRaw, &man); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if man.Tool != "paper" || man.Channels != 4 || man.FreqMHz != 400 || man.SimCycles <= 0 {
		t.Errorf("manifest contents wrong: %+v", man)
	}
}

func TestObservabilityDisabled(t *testing.T) {
	outputs, err := writeObservability(0.002, 50_000, "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 0 {
		t.Errorf("disabled observability produced outputs: %v", outputs)
	}
}

func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	tb, err := tableI(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeArtifact(dir, "table1", tb, false); err != nil {
		t.Fatal(err)
	}
	if err := writeArtifact(dir, "table1", tb, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "table1.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
		}
	}
}
