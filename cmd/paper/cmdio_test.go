package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/probe"
)

// TestMain doubles as a re-exec shim: with PAPER_RUN_MAIN=1 the test
// binary becomes the paper command itself (see cmd/sweep/cmdio_test.go for
// the pattern).
func TestMain(m *testing.M) {
	if os.Getenv("PAPER_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runPaper(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PAPER_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// TestPaperStdoutByteIdentical: one artifact rendered with the full
// observability surface on matches the plain rendering byte for byte.
func TestPaperStdoutByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec simulation in -short mode")
	}
	base := []string{"-only", "fig3", "-fraction", "0.02"}
	plain, plainErr, code := runPaper(t, base...)
	if code != 0 {
		t.Fatalf("plain run exited %d:\n%s", code, plainErr)
	}

	sum := filepath.Join(t.TempDir(), "summary.json")
	instr, instrErr, code := runPaper(t, append(base,
		"-progress", "-debug-addr", "127.0.0.1:0", "-summary-out", sum)...)
	if code != 0 {
		t.Fatalf("instrumented run exited %d:\n%s", code, instrErr)
	}

	if plain != instr {
		t.Errorf("stdout differs with observability enabled:\nplain:\n%s\ninstrumented:\n%s", plain, instr)
	}
	for _, want := range []string{"paper: debug: listening on", "paper: summary: wrote"} {
		if !strings.Contains(instrErr, want) {
			t.Errorf("instrumented stderr missing %q:\n%s", want, instrErr)
		}
	}

	s, err := probe.ReadSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if s.Run.Tool != "paper" {
		t.Errorf("summary tool = %q, want paper", s.Run.Tool)
	}
	if e, ok := s.Metrics.Find("sim_points_completed_total"); !ok || e.Value <= 0 {
		t.Errorf("summary has no completed points: %+v ok=%v", e, ok)
	}
}

// TestPaperFlagValidationExits: malformed observability flags exit 2 with
// the offending flag named on stderr.
func TestPaperFlagValidationExits(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir", "summary.json")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"debug-addr no port", []string{"-debug-addr", "localhost"}, "-debug-addr"},
		{"debug-addr bad port", []string{"-debug-addr", ":-1"}, "-debug-addr"},
		{"summary-out unwritable", []string{"-summary-out", missing}, "-summary-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runPaper(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
			if stdout != "" {
				t.Errorf("usage error wrote to stdout: %q", stdout)
			}
		})
	}
}
