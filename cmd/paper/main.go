// Command paper regenerates every table and figure of the reproduced paper
// ("A case for multi-channel memories in video recording", DATE 2009):
// Table I (per-stage memory bandwidth), Fig. 3 (access time vs clock),
// Fig. 4 (access time vs frame format), Fig. 5 (power vs frame format with
// the interface share), the XDR comparison, and the design-choice ablations.
//
// Usage:
//
//	paper                 # everything
//	paper -only table1    # one artifact: table1, fig3, fig4, fig5, xdr, ablations
//	paper -csv            # machine-readable output
//	paper -fraction 1.0   # full-frame simulation (slower, default 0.2)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/debugserver"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/usecase"
)

func main() {
	var (
		only     = flag.String("only", "", "render one artifact: table1, fig3, fig4, fig5, xdr, ablations, geometry, operating, interleave, faults")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		fraction = flag.Float64("fraction", 0.2, "fraction of each frame to simulate (results extrapolate linearly)")
		jobs     = flag.Int("jobs", 0, "concurrent sweep points per artifact (0 = one per CPU, 1 = serial); output is identical at any job count")
		policy   = flag.String("policy", "", "controller scheduling policy for every artifact: "+strings.Join(controller.PolicyNames(), ", ")+" (empty = open-page)")
		device   = flag.String("device", "", "DRAM datasheet for every artifact: "+strings.Join(dram.DeviceNames(), ", ")+" (empty = paper)")
		dir      = flag.String("dir", "", "also write each artifact to <dir>/<name>.txt (or .csv)")

		probeWindow = flag.Int64("probe-window", 100000, "time-series epoch length in DRAM cycles (for -metrics-out)")
		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON of an instrumented flagship run (1080p30, 4 ch @ 400 MHz)")
		metricsOut  = flag.String("metrics-out", "", "write the instrumented run's windowed time-series metrics (.json = JSON, else CSV)")
		checkRun    = flag.Bool("check", false, "verify the flagship run's DRAM commands against the device timing constraints (violations are fatal)")
		noCache     = flag.Bool("no-cache", false, "simulate every point even when artifacts overlap (disables the content-addressed result cache; output is byte-identical either way)")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /metrics.json, expvar and pprof on this host:port for the run's duration (e.g. 127.0.0.1:0)")
		summaryOut  = flag.String("summary-out", "", "write a schema-versioned end-of-run summary JSON (manifest + metrics snapshot) to this file")
		progress    = flag.Bool("progress", false, "print periodic progress lines (points done, cache-hit rate, ETA) to stderr; stdout is unchanged")
	)
	flag.Parse()
	if *jobs < 0 {
		usageError("-jobs must be >= 0 (0 = one per CPU), got %d", *jobs)
	}
	if *probeWindow <= 0 {
		usageError("-probe-window must be positive, got %d", *probeWindow)
	}
	if !(*fraction > 0) || *fraction > 1 {
		usageError("-fraction must be in (0,1], got %v", *fraction)
	}
	for _, out := range []string{*traceOut, *metricsOut} {
		if err := probe.CheckWritable(out); err != nil {
			fatal(fmt.Errorf("output not writable: %w", err))
		}
	}
	if *debugAddr != "" {
		if err := debugserver.ValidateAddr(*debugAddr); err != nil {
			usageError("-debug-addr %q: %v", *debugAddr, err)
		}
	}
	if err := probe.CheckWritable(*summaryOut); err != nil {
		usageError("-summary-out not writable: %v", err)
	}
	pol, err := controller.ParsePolicy(*policy)
	if err != nil {
		usageError("-policy: %v", err)
	}
	if _, err := dram.Device(*device); err != nil {
		usageError("-device: %v", err)
	}
	opt := core.RunOptions{SampleFraction: *fraction, Jobs: *jobs, Policy: pol, Device: *device}

	// Run-level observability: the registry exists only when a flag
	// consumes it (stdout stays byte-identical either way), and the phase
	// span recorder rides along with -trace-out so the Perfetto document
	// shows where the host time of the whole run went.
	var reg *metrics.Registry
	if *debugAddr != "" || *summaryOut != "" || *progress {
		reg = metrics.NewRegistry()
		core.EnableMetrics(reg)
		defer core.EnableMetrics(nil)
	}
	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "paper: debug: listening on %s\n", srv.Addr())
	}
	var spans *probe.Spans
	if *traceOut != "" {
		spans = probe.NewSpans()
		core.EnableSpans(spans)
		defer core.EnableSpans(nil)
	}
	start := time.Now()

	// The artifacts overlap heavily (the format matrix alone backs both
	// Fig. 4 and Fig. 5, and the XDR rows reuse its 8-channel points), so a
	// process-wide content-addressed cache simulates each distinct point
	// once. Observed runs (-check, -trace-out, -metrics-out, faults) bypass
	// it automatically; the summary goes to stderr so stdout stays
	// byte-identical with -no-cache.
	var cache *core.SimCache
	if !*noCache {
		cache = core.NewSimCache()
		core.EnableCache(cache)
	}

	artifacts := []struct {
		name string
		run  func(core.RunOptions) (*report.Table, error)
	}{
		{"table1", tableI},
		{"fig3", fig3},
		{"fig4", fig4},
		{"fig5", fig5},
		{"xdr", xdrTable},
		{"ablations", ablations},
		{"geometry", geometry},
		{"operating", operating},
		{"interleave", interleave},
		{"faults", faults},
	}
	var prog *core.Progress
	if *progress {
		prog = core.StartProgress(os.Stderr, time.Second)
	}
	ran := false
	for _, a := range artifacts {
		if *only != "" && *only != a.name {
			continue
		}
		ran = true
		t, err := a.run(opt)
		if err != nil {
			fatal(err)
		}
		if *csv {
			if err := t.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
		if *dir != "" {
			if err := writeArtifact(*dir, a.name, t, *csv); err != nil {
				fatal(err)
			}
		}
	}
	prog.Stop()
	if !ran {
		fatal(fmt.Errorf("unknown artifact %q", *only))
	}
	if *traceOut != "" || *metricsOut != "" {
		outputs, err := writeObservability(*fraction, *probeWindow, *traceOut, *metricsOut, spans)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("observability: wrote %v\n", outputs)
	}
	if *checkRun {
		if err := runChecked(*fraction); err != nil {
			fatal(err)
		}
	}
	if cache != nil {
		fmt.Fprintln(os.Stderr, "paper: cache:", cache.Stats())
	}
	if *summaryOut != "" {
		man := probe.NewManifest("paper")
		man.SampleFraction = *fraction
		man.Config = map[string]any{
			"only": *only, "csv": *csv, "jobs": *jobs,
			"policy": pol.String(), "device": *device,
		}
		man.Finish(0, time.Since(start))
		man.AddOutput("summary", *summaryOut)
		if err := probe.NewSummary(man, reg.Snapshot()).Write(*summaryOut); err != nil {
			fatal(fmt.Errorf("writing summary: %w", err))
		}
		fmt.Fprintf(os.Stderr, "paper: summary: wrote %s\n", *summaryOut)
	}
}

// runChecked replays the flagship configuration (1080p30 on 4 channels at
// 400 MHz, the same point the observability outputs instrument) with the
// protocol invariant checker attached; any violation of the device's
// timing constraints is fatal.
func runChecked(fraction float64) error {
	w, err := core.WorkloadFor("1080p30")
	if err != nil {
		return err
	}
	w.SampleFraction = fraction
	mc := core.PaperMemory(4, 400*units.MHz)
	set, err := core.AttachChecker(&mc)
	if err != nil {
		return err
	}
	if _, err := core.Simulate(w, mc); err != nil {
		return err
	}
	if err := set.Err(); err != nil {
		for _, v := range set.Violations() {
			fmt.Fprintln(os.Stderr, "paper: check:", v)
		}
		return err
	}
	fmt.Println("check: flagship run verified against the device timing constraints")
	return nil
}

// usageError reports a flag-validation failure and exits with the usage
// status (2), matching the flag package's own error handling.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paper: %s\n", fmt.Sprintf(format, args...))
	flag.Usage()
	os.Exit(2)
}

// writeObservability runs the paper's flagship configuration (1080p30 on
// 4 channels at 400 MHz — the abstract's headline data point) with event
// probes attached and writes the requested trace/metrics files plus the
// run manifest. spans, when non-nil, carries the whole run's phase spans
// and is merged into the trace document. Returns the written artifacts.
func writeObservability(fraction float64, window int64, traceOut, metricsOut string, spans *probe.Spans) (map[string]string, error) {
	const (
		obsFormat   = "1080p30"
		obsChannels = 4
		obsFreq     = 400 * units.MHz
	)
	w, err := core.WorkloadFor(obsFormat)
	if err != nil {
		return nil, err
	}
	w.SampleFraction = fraction
	obs, err := probe.NewObserver(obsChannels, window, traceOut, metricsOut)
	if err != nil {
		return nil, err
	}
	obs.SetSpans(spans)
	mc := core.PaperMemory(obsChannels, obsFreq)
	mc.NewProbe = obs.Channel
	start := time.Now()
	res, err := core.Simulate(w, mc)
	if err != nil {
		return nil, err
	}
	man := probe.NewManifest("paper")
	man.Channels = res.Channels
	man.FreqMHz = float64(res.Freq) / float64(units.MHz)
	man.SampleFraction = fraction
	man.Config = map[string]any{"probe_window": window, "flagship": true}
	man.Workload = map[string]any{
		"format": res.Format.Name, "level": res.Level.Number,
		"frame_bytes": res.FrameBytes,
	}
	man.Finish(res.SimulatedCycles, time.Since(start))
	if err := obs.WriteOutputs(&man); err != nil {
		return nil, err
	}
	return man.Outputs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}

// writeArtifact saves one rendered artifact under dir.
func writeArtifact(dir, name string, t *report.Table, csv bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := ".txt"
	if csv {
		ext = ".csv"
	}
	f, err := os.Create(filepath.Join(dir, name+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	if csv {
		return t.RenderCSV(f)
	}
	return t.Render(f)
}

// tableI renders Table I: memory bandwidth requirement for the stages of
// the video recording use case (M = 10^6, values in Mbit per frame).
func tableI(core.RunOptions) (*report.Table, error) {
	cols, err := core.RunTableI(usecase.Params{})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("TABLE I. Memory bandwidth requirement for the video recording use case (Mb per frame unless noted)")
	headers := []string{"row"}
	for _, c := range cols {
		headers = append(headers, fmt.Sprintf("L%s %s", c.Level.Number, c.Format.Name))
	}
	t.Headers = headers

	addStat := func(name string, f func(core.TableIColumn) string) {
		row := []string{name}
		for _, c := range cols {
			row = append(row, f(c))
		}
		t.AddRow(row...)
	}
	addStat("Width [pel]", func(c core.TableIColumn) string { return fmt.Sprint(c.Format.Width) })
	addStat("Height [pel]", func(c core.TableIColumn) string { return fmt.Sprint(c.Format.Height) })
	addStat("Limits [fps]", func(c core.TableIColumn) string { return fmt.Sprint(c.Format.FPS) })
	addStat("Max bitrate [Mb/s]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.0f", c.Level.MaxBitrate.Megabits())
	})
	addStat("Nb of reference frames", func(c core.TableIColumn) string { return fmt.Sprint(c.ReferenceFrames) })
	for id := 0; id < usecase.NumStages; id++ {
		sid := usecase.StageID(id)
		addStat(sid.String()+" [Mb]", func(c core.TableIColumn) string {
			return fmt.Sprintf("%.1f", c.Stages[sid].TotalBits().Megabits())
		})
	}
	addStat("Image proc. total (1 frame) [Mb]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.1f", c.ImageTotal.Megabits())
	})
	addStat("Video coding total (1 frame) [Mb]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.1f", c.CodingTotal.Megabits())
	})
	addStat("Data Mem. load (1 frame) [Mb]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.1f", c.FrameTotal.Megabits())
	})
	addStat("Data Mem. load (1 s) [Mb]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.0f", c.PerSecond.Megabits())
	})
	addStat("Data Mem. load [MB/s]", func(c core.TableIColumn) string {
		return fmt.Sprintf("%.0f", c.Bandwidth.MBps())
	})
	return t, nil
}

// fig3 renders Fig. 3: effect of memory clock frequency on access time, one
// 720p30 frame, with the 30 fps real-time line.
func fig3(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunFig3(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 3. Access time vs clock frequency (one 720p30 frame encoded; real-time req. 33.3 ms)",
		"channels", "clock", "access time [ms]", "verdict", "")
	for _, p := range points {
		t.AddRow(
			fmt.Sprint(p.Channels),
			p.Freq.String(),
			fmt.Sprintf("%.2f", p.Result.AccessTime.Milliseconds()),
			p.Result.Verdict.String(),
			report.Bar(p.Result.AccessTime.Milliseconds(), 50, 40),
		)
	}
	return t, nil
}

// fig4 renders Fig. 4: effect of encoding format on access time at 400 MHz.
func fig4(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunFormatMatrix(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 4. Access time vs frame format (400 MHz; real-time req. 33.3 ms @30fps, 16.7 ms @60fps)",
		"format", "channels", "access time [ms]", "budget [ms]", "verdict", "")
	for _, p := range points {
		t.AddRow(
			p.Format,
			fmt.Sprint(p.Channels),
			fmt.Sprintf("%.2f", p.Result.AccessTime.Milliseconds()),
			fmt.Sprintf("%.1f", p.Result.FramePeriod.Milliseconds()),
			p.Result.Verdict.String(),
			report.Bar(p.Result.AccessTime.Milliseconds(), 120, 40),
		)
	}
	return t, nil
}

// fig5 renders Fig. 5: effect of encoding format on power at 400 MHz, with
// the interface power share; infeasible configurations show zero bars.
func fig5(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunFormatMatrix(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 5. Memory power vs frame format (400 MHz; zero = cannot meet real time; interface power in parentheses)",
		"format", "channels", "power [mW]", "interface [mW]", "note", "")
	for _, p := range points {
		if p.Result.Verdict == core.Infeasible {
			t.AddRow(p.Format, fmt.Sprint(p.Channels), "0", "0", "infeasible", "")
			continue
		}
		note := ""
		if p.Result.Verdict == core.Marginal {
			note = "MARGINAL"
		}
		t.AddRow(
			p.Format,
			fmt.Sprint(p.Channels),
			fmt.Sprintf("%.0f", p.Result.TotalPower.Milliwatts()),
			fmt.Sprintf("%.1f", p.Result.InterfacePower.Milliwatts()),
			note,
			report.Bar(p.Result.TotalPower.Milliwatts(), 1400, 40),
		)
	}
	return t, nil
}

// xdrTable renders the closing comparison against the Cell BE XDR memory.
func xdrTable(opt core.RunOptions) (*report.Table, error) {
	cmp, err := core.RunXDRComparison(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf(
		"XDR comparison: 8-channel 400 MHz mobile memory (%.1f GB/s peak) vs %s (%.1f GB/s, %v)",
		cmp.Mobile.GBps(), cmp.XDR.Name, cmp.XDR.PeakBandwidth().GBps(), cmp.XDR.TypicalPower),
		"format", "memory power [mW]", "of XDR power", "verdict")
	for _, r := range cmp.Rows {
		t.AddRow(
			r.Format,
			fmt.Sprintf("%.0f", r.MemoryPower.Milliwatts()),
			fmt.Sprintf("%.1f%%", r.Ratio*100),
			r.Verdict.String(),
		)
	}
	t.AddRow("", "", fmt.Sprintf("range %.0f%%..%.0f%%", cmp.MinRatio*100, cmp.MaxRatio*100), "")
	return t, nil
}

// ablations renders the design-choice ablations (section IV).
func ablations(opt core.RunOptions) (*report.Table, error) {
	rows, err := core.RunAblations(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Design-choice ablations (baseline = RBC, open page, power-down)",
		"ablation", "workload", "baseline", "variant", "delta")
	for _, r := range rows {
		switch r.Name {
		case "power-down vs always-standby":
			t.AddRow(r.Name, r.Workload,
				fmt.Sprintf("%.0f mW", r.Baseline.TotalPower.Milliwatts()),
				fmt.Sprintf("%.0f mW", r.Variant.TotalPower.Milliwatts()),
				pctDelta(float64(r.Variant.TotalPower), float64(r.Baseline.TotalPower)))
		default:
			t.AddRow(r.Name, r.Workload,
				fmt.Sprintf("%.2f ms", r.Baseline.AccessTime.Milliseconds()),
				fmt.Sprintf("%.2f ms", r.Variant.AccessTime.Milliseconds()),
				pctDelta(r.Variant.AccessTime.Seconds(), r.Baseline.AccessTime.Seconds()))
		}
	}
	return t, nil
}

// pctDelta formats the relative change of variant against baseline; a
// zero-duration (or zero-power) baseline — a degenerate sampled run —
// renders as "n/a" instead of dividing by zero into ±Inf/NaN.
func pctDelta(variant, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (variant/baseline-1)*100)
}

// geometry renders the device-organization sensitivity sweep.
func geometry(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunGeometrySweep(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Device-organization sensitivity (1080p30, 4 channels @ 400 MHz; paper device: 4 banks x 2 KB rows)",
		"banks", "row size", "access time [ms]", "verdict")
	for _, p := range points {
		t.AddRow(
			fmt.Sprint(p.Banks),
			fmt.Sprintf("%d B", p.RowBytes),
			fmt.Sprintf("%.2f", p.Result.AccessTime.Milliseconds()),
			p.Result.Verdict.String(),
		)
	}
	t.AddRow("", "", fmt.Sprintf("spread %.0f%%", core.GeometrySpread(points)*100), "")
	return t, nil
}

// operating renders the DVFS operating-point table: the lowest feasible
// clock per configuration and its saving against 533 MHz.
func operating(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunOperatingPoints(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Energy-optimal operating points (lowest clock meeting real time with 15% margin)",
		"format", "channels", "min clock", "power @min", "power @533MHz", "saving")
	for _, p := range points {
		if p.MinFreq == 0 {
			t.AddRow(p.Format, fmt.Sprint(p.Channels), "none", "-", "-", "-")
			continue
		}
		t.AddRow(p.Format, fmt.Sprint(p.Channels), p.MinFreq.String(),
			fmt.Sprintf("%.0f mW", p.PowerAtMin.Milliwatts()),
			fmt.Sprintf("%.0f mW", p.PowerAtMax.Milliwatts()),
			fmt.Sprintf("%.0f%%", p.Saving*100))
	}
	return t, nil
}

// faults renders the fault-tolerance experiment (R1): 1080p30 recordings
// with a channel failing halfway through the first frame slot, showing how
// the degradation engine keeps the recorder running on the survivors.
func faults(opt core.RunOptions) (*report.Table, error) {
	const frames = 10
	t := report.NewTable("Fault tolerance: channel dropout mid-frame, degraded-mode QoS (1080p30 @ 400 MHz, 10 frame slots, seed 1)",
		"scenario", "dropped", "late", "misses", "degradation", "recovery", "final format", "power [mW]")
	scenarios := []struct {
		name     string
		channels int
		dropCh   int
	}{
		{"4 ch, 1 failed", 4, 1},
		{"2 ch, 1 failed", 2, 1},
	}
	for _, sc := range scenarios {
		w, err := core.WorkloadFor("1080p30")
		if err != nil {
			return nil, err
		}
		w.SampleFraction = opt.SampleFraction
		fraction := w.SampleFraction
		if fraction == 0 {
			fraction = 1
		}
		period := w.Profile.Format.FramePeriod().Cycles(core.PaperFrequency)
		mc := core.PaperMemory(sc.channels, core.PaperFrequency)
		mc.Faults = &fault.Plan{
			Seed:        1,
			DropChannel: sc.dropCh,
			DropAtCycle: int64(float64(period)*fraction) / 2,
		}
		res, err := core.SimulateDegraded(w, mc, frames)
		if err != nil {
			return nil, err
		}
		q := res.QoS
		degradation := "none"
		if len(q.Steps) > 0 {
			degradation = fmt.Sprintf("%d step(s) to level %d", len(q.Steps), res.FinalLevel)
		}
		recovery := "never degraded"
		switch {
		case q.FirstMissFrame >= 0 && q.RecoveredFrame >= 0:
			recovery = fmt.Sprintf("frame %d (+%d)", q.RecoveredFrame, q.TimeToRecoverFrames())
		case q.FirstMissFrame >= 0:
			recovery = "not recovered"
		}
		t.AddRow(
			sc.name,
			fmt.Sprint(q.DroppedFrames),
			fmt.Sprint(q.LateFrames),
			fmt.Sprint(q.DeadlineMisses),
			degradation,
			recovery,
			res.FinalFormat.Name,
			fmt.Sprintf("%.0f", res.TotalPower.Milliwatts()),
		)
	}
	return t, nil
}

// interleave renders the Table II granularity trade-off.
func interleave(opt core.RunOptions) (*report.Table, error) {
	points, err := core.RunInterleaveSweep(opt)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Channel-interleave granularity (Table II; paper uses the 16 B minimum burst). 1080p30, 4 ch @ 400 MHz",
		"granularity", "frame access time", "isolated 256B transaction", "verdict")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d B", p.Granularity),
			fmt.Sprintf("%.2f ms", p.Result.AccessTime.Milliseconds()),
			p.IsolatedLatency.String(),
			p.Result.Verdict.String(),
		)
	}
	return t, nil
}
