package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
)

// renderAll renders every artifact of the paper run (the -all equivalent)
// into one string, in both table and CSV form.
func renderAll(t *testing.T, opt core.RunOptions) string {
	t.Helper()
	artifacts := []struct {
		name string
		run  func(core.RunOptions) (*report.Table, error)
	}{
		{"table1", tableI},
		{"fig3", fig3},
		{"fig4", fig4},
		{"fig5", fig5},
		{"xdr", xdrTable},
		{"ablations", ablations},
		{"geometry", geometry},
		{"operating", operating},
		{"interleave", interleave},
		{"faults", faults},
	}
	var b strings.Builder
	for _, a := range artifacts {
		tb, err := a.run(opt)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		b.WriteString(tb.String())
		if err := tb.RenderCSV(&b); err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
	}
	return b.String()
}

// TestCacheOutputByteIdentical pins the headline cache guarantee: the full
// paper output is byte-identical with the cache disabled, cold, warm, and
// at any job count.
func TestCacheOutputByteIdentical(t *testing.T) {
	core.DisableCache()
	want := renderAll(t, fastOpt)

	cache := core.NewSimCache()
	core.EnableCache(cache)
	defer core.DisableCache()

	cold := renderAll(t, fastOpt)
	if cold != want {
		t.Error("cold-cache output differs from -no-cache output")
	}
	st := cache.Stats()
	if st.Simulated == 0 || st.MemHits == 0 {
		t.Errorf("stats = %+v: the artifacts should both simulate and hit", st)
	}

	warm := renderAll(t, fastOpt)
	if warm != want {
		t.Error("warm-cache output differs from -no-cache output")
	}
	if st2 := cache.Stats(); st2.Simulated != st.Simulated {
		t.Errorf("warm pass simulated %d new points, want 0", st2.Simulated-st.Simulated)
	}

	serialOpt := fastOpt
	serialOpt.Jobs = 1
	if serial := renderAll(t, serialOpt); serial != want {
		t.Error("-jobs 1 cached output differs from the parallel -no-cache output")
	}
}
