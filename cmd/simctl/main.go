// Command simctl is the client for the simd simulation service. It
// speaks the /v1 JSON API and renders answers in the same CSV the sweep
// CLI emits, so a sweep through the service is byte-identical to — and
// drop-in substitutable for — a local sweep run.
//
// Subcommands:
//
//	simctl simulate -format 1080p30 -channels 4 -freq 400   # one point
//	simctl sweep -formats 720p30 -channels 1,2 -freqs 200   # CSV grid
//	simctl warm -formats 720p30 -channels 1,2 -freqs 200    # prime caches
//	simctl soak -clients 16 -requests 8                     # load test
//
// Every subcommand works identically against one simd daemon or a
// simrouter-fronted fleet — the router speaks the same /v1 API.
//
// warm computes a grid without shipping the result bodies back: the
// payload is the side effect of filling the service's (or every
// shard's) cache, so a later sweep answers entirely from cache.
//
// soak hammers the service with concurrent clients mixing cache hits and
// misses and verifies the service's load contract: every request either
// succeeds (200, possibly flagged degraded) or is shed honestly (429
// with Retry-After) — never a 5xx, never a hang. A shed client honors
// the Retry-After it was given, sleeping a jittered multiple of it
// before its next request, and the summary attributes sheds per shard
// when the fleet stamps X-Sim-Shard. -allow-shutdown additionally
// tolerates connections cut by a mid-soak daemon drain, so CI can
// SIGTERM the daemon under load and still assert the contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "simulate":
		runSimulate(os.Args[2:])
	case "sweep":
		runSweep(os.Args[2:])
	case "warm":
		runWarm(os.Args[2:])
	case "soak":
		runSoak(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "simctl: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: simctl <simulate|sweep|warm|soak> [flags]

  simulate  answer one point as a CSV row (or -json)
  sweep     answer a grid as sweep-compatible CSV
  warm      compute a grid to prime the service caches (no result bodies)
  soak      load-test the service's shed/degrade contract

run "simctl <subcommand> -h" for the subcommand's flags
`)
	os.Exit(2)
}

// client wraps the HTTP transport with the service conventions: JSON
// bodies, the per-request deadline header, and a hard client-side
// timeout so no call can hang past it.
type client struct {
	base     string
	http     *http.Client
	clientID string
	deadline time.Duration
}

func newClient(serverURL, clientID string, timeout, deadline time.Duration) *client {
	return &client{
		base:     strings.TrimRight(serverURL, "/"),
		http:     &http.Client{Timeout: timeout},
		clientID: clientID,
		deadline: deadline,
	}
}

// post sends one API call and returns the status, body and response
// header. Transport errors come back as err; HTTP-level failures are the
// caller's to interpret.
func (c *client) post(path string, body any) (status int, data []byte, hdr http.Header, err error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.clientID != "" {
		req.Header.Set("X-Client-ID", c.clientID)
	}
	if c.deadline > 0 {
		req.Header.Set("X-Sim-Deadline", c.deadline.String())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// apiError renders a non-2xx answer for the terminal.
func apiError(status int, data []byte) error {
	var e server.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("server returned %d: %s", status, strings.TrimSpace(string(data)))
}

func runSimulate(args []string) {
	fs := flag.NewFlagSet("simctl simulate", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		format    = fs.String("format", "1080p30", "frame format")
		channels  = fs.Int("channels", 1, "channel count")
		freq      = fs.Int("freq", 400, "clock frequency in MHz")
		fraction  = fs.Float64("fraction", 0, "frame fraction to simulate (0 = full frame)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "client-side HTTP timeout")
		deadline  = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		clientID  = fs.String("client-id", "", "X-Client-ID to present (rate-limit identity)")
		asJSON    = fs.Bool("json", false, "print the raw JSON response instead of a CSV row")
		fidelity  = fs.String("fidelity", "", "fidelity tier to request: exact, fast or auto (empty = server default)")
		policy    = fs.String("policy", "", "controller scheduling policy (empty = server default, open-page)")
		device    = fs.String("device", "", "DRAM datasheet to simulate (empty = paper device)")
	)
	fs.Parse(args)

	c := newClient(*serverURL, *clientID, *timeout, *deadline)
	req := server.SimulateRequest{Format: *format, Channels: *channels, FreqMHz: *freq, Fraction: *fraction, Fidelity: *fidelity, Policy: *policy, Device: *device}
	status, data, hdr, err := c.post("/v1/simulate", &req)
	if err != nil {
		fatal(err)
	}
	if status != http.StatusOK {
		fatal(apiError(status, data))
	}
	if *asJSON {
		os.Stdout.Write(data)
		return
	}
	var resp server.SimulateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	if resp.Degraded {
		fmt.Fprintln(os.Stderr, "simctl: warning: degraded (analytic) answer — the service was saturated")
	}
	if cache := hdr.Get("X-Sim-Cache"); cache != "" {
		fmt.Fprintf(os.Stderr, "simctl: cache: %s\n", cache)
	}
	fmt.Println(server.CSVHeader)
	fmt.Println(resp.CSVRow())
}

func runSweep(args []string) {
	fs := flag.NewFlagSet("simctl sweep", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		formats   = fs.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels  = fs.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs     = fs.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction  = fs.Float64("fraction", 0.1, "frame fraction to simulate")
		timeout   = fs.Duration("timeout", 10*time.Minute, "client-side HTTP timeout")
		deadline  = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		clientID  = fs.String("client-id", "", "X-Client-ID to present (rate-limit identity)")
		fidelity  = fs.String("fidelity", "", "fidelity tier to request: exact, fast or auto (empty = server default)")
		policy    = fs.String("policy", "", "controller scheduling policy (empty = server default, open-page)")
		device    = fs.String("device", "", "DRAM datasheet to simulate (empty = paper device)")
	)
	fs.Parse(args)

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	var formatList []string
	for _, f := range strings.Split(*formats, ",") {
		formatList = append(formatList, strings.TrimSpace(f))
	}

	c := newClient(*serverURL, *clientID, *timeout, *deadline)
	req := server.SweepRequest{Formats: formatList, Channels: chList, FreqsMHz: freqList, Fraction: *fraction, Fidelity: *fidelity, Policy: *policy, Device: *device}
	status, data, _, err := c.post("/v1/sweep", &req)
	if err != nil {
		fatal(err)
	}
	if status != http.StatusOK {
		fatal(apiError(status, data))
	}
	var resp server.SweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	if resp.Degraded {
		fmt.Fprintln(os.Stderr, "simctl: warning: degraded (analytic) answers — the service was saturated")
	}
	fmt.Println(server.CSVHeader)
	for _, p := range resp.Points {
		fmt.Println(p.CSVRow())
	}
}

// runWarm expands the grid client-side and ships it as one warm batch:
// the service (or every shard behind a router) computes and caches each
// point but sends no result bodies back, so priming a large grid costs
// the simulations once and the response stays tiny.
func runWarm(args []string) {
	fs := flag.NewFlagSet("simctl warm", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "simd or simrouter base URL")
		formats   = fs.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels  = fs.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs     = fs.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction  = fs.Float64("fraction", 0.1, "frame fraction to simulate")
		timeout   = fs.Duration("timeout", 10*time.Minute, "client-side HTTP timeout")
		deadline  = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		clientID  = fs.String("client-id", "", "X-Client-ID to present (rate-limit identity)")
		fidelity  = fs.String("fidelity", "", "fidelity tier to request: exact, fast or auto (empty = server default)")
		policy    = fs.String("policy", "", "controller scheduling policy (empty = server default, open-page)")
		device    = fs.String("device", "", "DRAM datasheet to simulate (empty = paper device)")
	)
	fs.Parse(args)

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	var points []server.SimulateRequest
	for _, f := range strings.Split(*formats, ",") {
		for _, ch := range chList {
			for _, freq := range freqList {
				points = append(points, server.SimulateRequest{
					Format: strings.TrimSpace(f), Channels: ch, FreqMHz: freq,
					Fraction: *fraction, Policy: *policy, Device: *device,
				})
			}
		}
	}

	c := newClient(*serverURL, *clientID, *timeout, *deadline)
	req := server.BatchRequest{Points: points, Fidelity: *fidelity, Warm: true}
	status, data, hdr, err := c.post("/v1/batch", &req)
	if err != nil {
		fatal(err)
	}
	if status != http.StatusOK {
		fatal(apiError(status, data))
	}
	var resp server.BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	outcomes := map[string]int{}
	for _, o := range resp.Outcomes {
		outcomes[o]++
	}
	fmt.Printf("simctl: warm: primed %d points (%s)", len(resp.Outcomes), countList(outcomes))
	if shard := hdr.Get("X-Sim-Shard"); shard != "" {
		fmt.Printf(" shards: %s", shard)
	}
	fmt.Println()
}

// countList renders outcome counts as "hit=3 simulated=17" with sorted
// keys.
func countList(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}

// retryAfter parses a 429's Retry-After seconds value (0 on absence or
// garbage — the caller treats that as "back off a beat anyway").
func retryAfter(hdr http.Header) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(hdr.Get("Retry-After")))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func runSoak(args []string) {
	fs := flag.NewFlagSet("simctl soak", flag.ExitOnError)
	var (
		serverURL     = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		clients       = fs.Int("clients", 8, "concurrent clients")
		requests      = fs.Int("requests", 8, "requests per client")
		fraction      = fs.Float64("fraction", 0.02, "frame fraction per point (small = fast)")
		timeout       = fs.Duration("timeout", 2*time.Minute, "client-side HTTP timeout (a request exceeding it counts as failed)")
		deadline      = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		allowShutdown = fs.Bool("allow-shutdown", false, "tolerate connections cut by a mid-soak daemon drain (counted, not failures)")
	)
	fs.Parse(args)
	if *clients < 1 || *requests < 1 {
		fatal(fmt.Errorf("-clients and -requests must be >= 1"))
	}

	var ok, degraded, shed, cut, failed atomic.Int64
	var mu sync.Mutex
	shedByShard := map[string]int{}
	fail := func(format string, args ...any) {
		failed.Add(1)
		fmt.Fprintf(os.Stderr, "simctl: soak: FAIL: %s\n", fmt.Sprintf(format, args...))
	}
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := newClient(*serverURL, "soak-"+strconv.Itoa(id), *timeout, *deadline)
			for r := 0; r < *requests; r++ {
				// Even requests hammer one hot point (cache hits and
				// single-flight joins); odd ones walk distinct frequencies
				// across the device's supported range (misses), so the soak
				// exercises both paths at once.
				req := server.SimulateRequest{Format: "720p30", Channels: 1, FreqMHz: 400, Fraction: *fraction}
				if r%2 == 1 {
					req.FreqMHz = 200 + (id**requests+r)%334
				}
				status, data, hdr, err := c.post("/v1/simulate", &req)
				switch {
				case err != nil:
					if *allowShutdown {
						cut.Add(1)
					} else {
						fail("client %d: %v", id, err)
					}
				case status == http.StatusOK:
					var resp server.SimulateResponse
					if jerr := json.Unmarshal(data, &resp); jerr != nil {
						fail("client %d: bad 200 body: %v", id, jerr)
						break
					}
					if resp.Degraded {
						degraded.Add(1)
					}
					ok.Add(1)
				case status == http.StatusTooManyRequests:
					if hdr.Get("Retry-After") == "" {
						fail("client %d: 429 without Retry-After", id)
						break
					}
					shed.Add(1)
					mu.Lock()
					shedByShard[shardKey(hdr)]++
					mu.Unlock()
					// Honor the server's backpressure: sleep the advertised
					// Retry-After plus up to 50% jitter, so a shed fleet of
					// clients spreads out instead of re-stampeding in sync.
					if wait := retryAfter(hdr); wait > 0 {
						time.Sleep(wait + time.Duration(rand.Int63n(int64(wait)/2+1)))
					}
				case status == http.StatusServiceUnavailable && *allowShutdown:
					// The drain cut this request off mid-flight.
					cut.Add(1)
				default:
					fail("client %d: status %d: %s", id, status, strings.TrimSpace(string(data)))
				}
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("simctl: soak: ok=%d degraded=%d shed=%d cut=%d failed=%d\n",
		ok.Load(), degraded.Load(), shed.Load(), cut.Load(), failed.Load())
	if len(shedByShard) > 0 {
		// Attribute the sheds: against a router-fronted fleet each 429
		// carries the shedding shard's X-Sim-Shard; "-" collects answers
		// from an unnamed (single-daemon) service.
		fmt.Printf("simctl: soak: shed by shard: %s\n", countList(shedByShard))
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// shardKey attributes a response to the shard that stamped it ("-" when
// the service is not shard-named).
func shardKey(hdr http.Header) string {
	if s := hdr.Get("X-Sim-Shard"); s != "" {
		return s
	}
	return "-"
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simctl:", err)
	os.Exit(1)
}
