// Command simctl is the client for the simd simulation service. It
// speaks the /v1 JSON API and renders answers in the same CSV the sweep
// CLI emits, so a sweep through the service is byte-identical to — and
// drop-in substitutable for — a local sweep run.
//
// Subcommands:
//
//	simctl simulate -format 1080p30 -channels 4 -freq 400   # one point
//	simctl sweep -formats 720p30 -channels 1,2 -freqs 200   # CSV grid
//	simctl soak -clients 16 -requests 8                     # load test
//
// soak hammers the service with concurrent clients mixing cache hits and
// misses and verifies the service's load contract: every request either
// succeeds (200, possibly flagged degraded) or is shed honestly (429
// with Retry-After) — never a 5xx, never a hang. -allow-shutdown
// additionally tolerates connections cut by a mid-soak daemon drain, so
// CI can SIGTERM the daemon under load and still assert the contract.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

const csvHeader = "format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw,estimated"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "simulate":
		runSimulate(os.Args[2:])
	case "sweep":
		runSweep(os.Args[2:])
	case "soak":
		runSoak(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "simctl: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: simctl <simulate|sweep|soak> [flags]

  simulate  answer one point as a CSV row (or -json)
  sweep     answer a grid as sweep-compatible CSV
  soak      load-test the service's shed/degrade contract

run "simctl <subcommand> -h" for the subcommand's flags
`)
	os.Exit(2)
}

// client wraps the HTTP transport with the service conventions: JSON
// bodies, the per-request deadline header, and a hard client-side
// timeout so no call can hang past it.
type client struct {
	base     string
	http     *http.Client
	clientID string
	deadline time.Duration
}

func newClient(serverURL, clientID string, timeout, deadline time.Duration) *client {
	return &client{
		base:     strings.TrimRight(serverURL, "/"),
		http:     &http.Client{Timeout: timeout},
		clientID: clientID,
		deadline: deadline,
	}
}

// post sends one API call and returns the status, body and response
// header. Transport errors come back as err; HTTP-level failures are the
// caller's to interpret.
func (c *client) post(path string, body any) (status int, data []byte, hdr http.Header, err error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.clientID != "" {
		req.Header.Set("X-Client-ID", c.clientID)
	}
	if c.deadline > 0 {
		req.Header.Set("X-Sim-Deadline", c.deadline.String())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// apiError renders a non-2xx answer for the terminal.
func apiError(status int, data []byte) error {
	var e server.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("server returned %d: %s", status, strings.TrimSpace(string(data)))
}

// csvRow renders one response exactly as cmd/sweep renders the same
// point — same verbs, same order — which is what makes the service
// drop-in substitutable for a local run.
func csvRow(p server.SimulateResponse) string {
	return fmt.Sprintf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f,%t",
		p.Format, p.Channels, p.FreqMHz, p.FrameBytes,
		p.RequiredGB, p.AccessMS, p.BudgetMS, p.Verdict,
		p.Efficiency, p.PowerMW, p.InterfaceMW, p.Estimated)
}

func runSimulate(args []string) {
	fs := flag.NewFlagSet("simctl simulate", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		format    = fs.String("format", "1080p30", "frame format")
		channels  = fs.Int("channels", 1, "channel count")
		freq      = fs.Int("freq", 400, "clock frequency in MHz")
		fraction  = fs.Float64("fraction", 0, "frame fraction to simulate (0 = full frame)")
		timeout   = fs.Duration("timeout", 2*time.Minute, "client-side HTTP timeout")
		deadline  = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		clientID  = fs.String("client-id", "", "X-Client-ID to present (rate-limit identity)")
		asJSON    = fs.Bool("json", false, "print the raw JSON response instead of a CSV row")
		fidelity  = fs.String("fidelity", "", "fidelity tier to request: exact, fast or auto (empty = server default)")
		policy    = fs.String("policy", "", "controller scheduling policy (empty = server default, open-page)")
		device    = fs.String("device", "", "DRAM datasheet to simulate (empty = paper device)")
	)
	fs.Parse(args)

	c := newClient(*serverURL, *clientID, *timeout, *deadline)
	req := server.SimulateRequest{Format: *format, Channels: *channels, FreqMHz: *freq, Fraction: *fraction, Fidelity: *fidelity, Policy: *policy, Device: *device}
	status, data, hdr, err := c.post("/v1/simulate", &req)
	if err != nil {
		fatal(err)
	}
	if status != http.StatusOK {
		fatal(apiError(status, data))
	}
	if *asJSON {
		os.Stdout.Write(data)
		return
	}
	var resp server.SimulateResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	if resp.Degraded {
		fmt.Fprintln(os.Stderr, "simctl: warning: degraded (analytic) answer — the service was saturated")
	}
	if cache := hdr.Get("X-Sim-Cache"); cache != "" {
		fmt.Fprintf(os.Stderr, "simctl: cache: %s\n", cache)
	}
	fmt.Println(csvHeader)
	fmt.Println(csvRow(resp))
}

func runSweep(args []string) {
	fs := flag.NewFlagSet("simctl sweep", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		formats   = fs.String("formats", "720p30,720p60,1080p30,1080p60,2160p30,2160p60", "comma-separated frame formats")
		channels  = fs.String("channels", "1,2,4,8", "comma-separated channel counts")
		freqs     = fs.String("freqs", "200,266,333,400,533", "comma-separated clock frequencies in MHz")
		fraction  = fs.Float64("fraction", 0.1, "frame fraction to simulate")
		timeout   = fs.Duration("timeout", 10*time.Minute, "client-side HTTP timeout")
		deadline  = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		clientID  = fs.String("client-id", "", "X-Client-ID to present (rate-limit identity)")
		fidelity  = fs.String("fidelity", "", "fidelity tier to request: exact, fast or auto (empty = server default)")
		policy    = fs.String("policy", "", "controller scheduling policy (empty = server default, open-page)")
		device    = fs.String("device", "", "DRAM datasheet to simulate (empty = paper device)")
	)
	fs.Parse(args)

	chList, err := parseInts(*channels)
	if err != nil {
		fatal(err)
	}
	freqList, err := parseInts(*freqs)
	if err != nil {
		fatal(err)
	}
	var formatList []string
	for _, f := range strings.Split(*formats, ",") {
		formatList = append(formatList, strings.TrimSpace(f))
	}

	c := newClient(*serverURL, *clientID, *timeout, *deadline)
	req := server.SweepRequest{Formats: formatList, Channels: chList, FreqsMHz: freqList, Fraction: *fraction, Fidelity: *fidelity, Policy: *policy, Device: *device}
	status, data, _, err := c.post("/v1/sweep", &req)
	if err != nil {
		fatal(err)
	}
	if status != http.StatusOK {
		fatal(apiError(status, data))
	}
	var resp server.SweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	if resp.Degraded {
		fmt.Fprintln(os.Stderr, "simctl: warning: degraded (analytic) answers — the service was saturated")
	}
	fmt.Println(csvHeader)
	for _, p := range resp.Points {
		fmt.Println(csvRow(p))
	}
}

func runSoak(args []string) {
	fs := flag.NewFlagSet("simctl soak", flag.ExitOnError)
	var (
		serverURL     = fs.String("server", "http://127.0.0.1:8080", "simd base URL")
		clients       = fs.Int("clients", 8, "concurrent clients")
		requests      = fs.Int("requests", 8, "requests per client")
		fraction      = fs.Float64("fraction", 0.02, "frame fraction per point (small = fast)")
		timeout       = fs.Duration("timeout", 2*time.Minute, "client-side HTTP timeout (a request exceeding it counts as failed)")
		deadline      = fs.Duration("deadline", 0, "server-side deadline to request (0 = server default)")
		allowShutdown = fs.Bool("allow-shutdown", false, "tolerate connections cut by a mid-soak daemon drain (counted, not failures)")
	)
	fs.Parse(args)
	if *clients < 1 || *requests < 1 {
		fatal(fmt.Errorf("-clients and -requests must be >= 1"))
	}

	var ok, degraded, shed, cut, failed atomic.Int64
	fail := func(format string, args ...any) {
		failed.Add(1)
		fmt.Fprintf(os.Stderr, "simctl: soak: FAIL: %s\n", fmt.Sprintf(format, args...))
	}
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := newClient(*serverURL, "soak-"+strconv.Itoa(id), *timeout, *deadline)
			for r := 0; r < *requests; r++ {
				// Even requests hammer one hot point (cache hits and
				// single-flight joins); odd ones walk distinct frequencies
				// across the device's supported range (misses), so the soak
				// exercises both paths at once.
				req := server.SimulateRequest{Format: "720p30", Channels: 1, FreqMHz: 400, Fraction: *fraction}
				if r%2 == 1 {
					req.FreqMHz = 200 + (id**requests+r)%334
				}
				status, data, hdr, err := c.post("/v1/simulate", &req)
				switch {
				case err != nil:
					if *allowShutdown {
						cut.Add(1)
					} else {
						fail("client %d: %v", id, err)
					}
				case status == http.StatusOK:
					var resp server.SimulateResponse
					if jerr := json.Unmarshal(data, &resp); jerr != nil {
						fail("client %d: bad 200 body: %v", id, jerr)
						break
					}
					if resp.Degraded {
						degraded.Add(1)
					}
					ok.Add(1)
				case status == http.StatusTooManyRequests:
					if hdr.Get("Retry-After") == "" {
						fail("client %d: 429 without Retry-After", id)
						break
					}
					shed.Add(1)
				case status == http.StatusServiceUnavailable && *allowShutdown:
					// The drain cut this request off mid-flight.
					cut.Add(1)
				default:
					fail("client %d: status %d: %s", id, status, strings.TrimSpace(string(data)))
				}
			}
		}(i)
	}
	wg.Wait()

	fmt.Printf("simctl: soak: ok=%d degraded=%d shed=%d cut=%d failed=%d\n",
		ok.Load(), degraded.Load(), shed.Load(), cut.Load(), failed.Load())
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simctl:", err)
	os.Exit(1)
}
