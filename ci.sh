#!/bin/sh
# ci.sh — the repository's check suite: static analysis, formatting,
# race-enabled tests, the probe-overhead guard asserting that the
# disabled observability path stays within PROBE_OVERHEAD_MAX_PCT
# (default 2%) of the uninstrumented channel throughput, a fuzz smoke
# pass over the parser/decoder fuzz targets, the fault determinism
# gate diffing serial-vs-parallel QoS reports byte for byte, the
# protocol-checker soak (randomized configs replayed under the timing
# invariant checker and the three-way differential oracle, -race on,
# seed counts bounded by CHECK_SOAK_CONFIGS / CHECK_ORACLE_CONFIGS),
# the policy x device matrix gate (every registered scheduling policy
# on every registered datasheet through the checked differential
# oracle, CHECK_MATRIX_REQS requests per cell),
# the cache differential gate (cached, uncached, serial-cached and
# disk-cached runs must produce byte-identical output), the
# observability gates (the disabled metrics registry stays within the
# same overhead limit as the probe layer, a metrics-enabled paper run
# prints byte-identical stdout, and a live sweep's -debug-addr server
# answers /metrics and /debug/pprof/ mid-run), the simulation-service
# soak gate (a race-built simd daemon must answer byte-identical
# sweeps, shed honestly with 429 + Retry-After under saturation,
# enforce deadlines with 504, and drain cleanly on SIGTERM under
# load), the sharded grid router gate (a race-built 3-shard fleet
# behind simrouter must merge sweeps byte-identical to cmd/sweep,
# survive a mid-soak shard kill with zero wrong answers, answer a
# warmed grid 100% from cache, and — on hosts with at least 4 CPUs —
# run a cache-cold grid at least ROUTER_SPEEDUP_MIN times faster on 4
# single-worker shards than on one), and the
# throughput gate recording the simulator benchmarks to
# results/BENCH_<date>.json (suffixed -2, -3, ... instead of
# clobbering a same-day export) and failing if BenchmarkRawChannel
# falls below the floor checked in at results/BENCH_FLOOR. The floor
# gate downgrades to a warning when BenchmarkHostCalibration shows the
# host is detectably slower than the machine that recorded the floor;
# the allocation gate ("# allocs" lines in BENCH_FLOOR) never
# downgrades — allocs/op is host-independent, so exceeding a limit is
# always a code regression.
#
# Usage: ./ci.sh [-quick]
#   -quick skips the race detector, the benchmarks, the fuzz smoke,
#   the checker soak and the determinism gate.
set -eu

cd "$(dirname "$0")"
quick=0
[ "${1:-}" = "-quick" ] && quick=1

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

if [ "$quick" = 1 ]; then
    echo "== go test (quick) =="
    go test ./...
    echo "ci: OK (quick)"
    exit 0
fi

echo "== go test -race =="
go test -race ./...

echo "== protocol checker soak =="
# Randomized workloads replayed with the timing-invariant checker
# attached, plus the three-way differential oracle (per-burst reference
# vs coalesced vs parallel engine command streams), both under -race.
# -count=1 forces a fresh run even when the package test cache is warm;
# the seed counts are bounded so CI time stays predictable.
CHECK_SOAK_CONFIGS="${CHECK_SOAK_CONFIGS:-40}" \
CHECK_ORACLE_CONFIGS="${CHECK_ORACLE_CONFIGS:-100}" \
    go test -race -count=1 -run 'TestCheckerSoak$|TestDifferentialOracle$' ./internal/check/
echo "ci: checker soak OK"

echo "== policy x device matrix gate =="
# The admissibility contract for scheduling policies and datasheets:
# every registered policy on every registered device must run a mixed
# multi-client workload with the timing-invariant checker silent AND
# replay it bit-identically through all four dispatch strategies of the
# differential oracle (coalesce-unsafe policies proving their fast-path
# fallback). Workload size scales with CHECK_MATRIX_REQS.
CHECK_MATRIX_REQS="${CHECK_MATRIX_REQS:-200}" \
    go test -race -count=1 -run 'TestPolicyDeviceMatrix$' ./internal/check/
echo "ci: policy x device matrix OK"

echo "== checked end-to-end run =="
# One flagship run per tool path with -check on: any DRAM command that
# violates the device timing constraints fails the build. The second run
# crosses a reordering policy with a modern datasheet so the non-baseline
# plumbing stays covered end to end.
go run ./cmd/mcmsim -format 1080p30 -channels 4 -fraction 0.02 -check >/dev/null
go run ./cmd/mcmsim -format 1080p30 -channels 4 -fraction 0.02 -check \
    -page frfcfs -device lpddr4 -freq 800 >/dev/null
echo "ci: checked run OK"

echo "== fuzz smoke =="
# Each target runs for a short budget; any crasher fails the build.
go test -run '^$' -fuzz '^FuzzReadText$' -fuzztime "${FUZZ_SMOKE_TIME:-5s}" ./internal/trace/
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime "${FUZZ_SMOKE_TIME:-5s}" ./internal/mapping/
go test -run '^$' -fuzz '^FuzzDecodeSimulateRequest$' -fuzztime "${FUZZ_SMOKE_TIME:-5s}" ./internal/server/

echo "== fault determinism gate =="
# The flagship fault scenario must produce a byte-identical QoS report
# whether the channels simulate serially or on parallel goroutines.
qos_dir=$(mktemp -d)
trap 'rm -rf "$qos_dir"' EXIT
fault_flags="-format 1080p30 -channels 2 -fraction 0.02 -fault-seed 1 \
    -fault-drop-channel 1 -fault-read-error-rate 0.005 -fault-stall-rate 0.002 \
    -fault-frames 10"
# shellcheck disable=SC2086
go run ./cmd/mcmsim $fault_flags -serial -qos-out "$qos_dir/serial.txt" >/dev/null
# shellcheck disable=SC2086
go run ./cmd/mcmsim $fault_flags -qos-out "$qos_dir/parallel.txt" >/dev/null
if ! cmp "$qos_dir/serial.txt" "$qos_dir/parallel.txt"; then
    echo "ci: serial and parallel fault runs produced different QoS reports" >&2
    exit 1
fi
echo "ci: fault determinism OK"

echo "== cache differential gate =="
# The content-addressed result cache must never change what the tools
# print: the full paper CSV run is compared byte for byte across
# uncached, cached-parallel and cached-serial executions, and a sweep
# with an on-disk cache must reproduce the uncached CSV both cold
# (populating the store) and warm (served from it).
cache_dir=$(mktemp -d)
trap 'rm -rf "$qos_dir" "$cache_dir"' EXIT
go run ./cmd/paper -csv -fraction 0.02 -no-cache >"$cache_dir/paper-uncached.csv" 2>/dev/null
go run ./cmd/paper -csv -fraction 0.02 >"$cache_dir/paper-cached.csv" 2>/dev/null
go run ./cmd/paper -csv -fraction 0.02 -jobs 1 >"$cache_dir/paper-serial.csv" 2>/dev/null
if ! cmp "$cache_dir/paper-uncached.csv" "$cache_dir/paper-cached.csv"; then
    echo "ci: cached paper output differs from -no-cache" >&2
    exit 1
fi
if ! cmp "$cache_dir/paper-uncached.csv" "$cache_dir/paper-serial.csv"; then
    echo "ci: cached -jobs 1 paper output differs from -no-cache" >&2
    exit 1
fi
sweep_flags="-formats 1080p30 -channels 2,4 -freqs 400 -fraction 0.02"
# shellcheck disable=SC2086
go run ./cmd/sweep $sweep_flags -no-cache >"$cache_dir/sweep-uncached.csv"
# shellcheck disable=SC2086
go run ./cmd/sweep $sweep_flags -cache-dir "$cache_dir/store" >"$cache_dir/sweep-cold.csv" 2>"$cache_dir/sweep-cold.log"
# shellcheck disable=SC2086
go run ./cmd/sweep $sweep_flags -cache-dir "$cache_dir/store" >"$cache_dir/sweep-warm.csv" 2>"$cache_dir/sweep-warm.log"
if ! cmp "$cache_dir/sweep-uncached.csv" "$cache_dir/sweep-cold.csv" ||
    ! cmp "$cache_dir/sweep-uncached.csv" "$cache_dir/sweep-warm.csv"; then
    echo "ci: disk-cached sweep output differs from -no-cache" >&2
    exit 1
fi
if ! grep -q 'disk hits' "$cache_dir/sweep-warm.log" ||
    grep -q ' 0 disk hits' "$cache_dir/sweep-warm.log"; then
    echo "ci: warm sweep did not report disk hits:" >&2
    cat "$cache_dir/sweep-warm.log" >&2
    exit 1
fi
echo "ci: cache differential OK"

echo "== observability stdout gate =="
# The run-level metrics surface must never change what the tools print:
# the paper CSV with -progress, -debug-addr and -summary-out all on is
# compared byte for byte against the plain cached run above, and the
# summary must carry the versioned schema header.
go run ./cmd/paper -csv -fraction 0.02 -progress -debug-addr 127.0.0.1:0 \
    -summary-out "$cache_dir/paper-summary.json" \
    >"$cache_dir/paper-metrics.csv" 2>"$cache_dir/paper-metrics.log"
if ! cmp "$cache_dir/paper-cached.csv" "$cache_dir/paper-metrics.csv"; then
    echo "ci: metrics-enabled paper stdout differs from the plain run" >&2
    exit 1
fi
if ! grep -q '"schema": "mcm-run-summary/v1"' "$cache_dir/paper-summary.json"; then
    echo "ci: paper summary missing the mcm-run-summary/v1 schema header" >&2
    exit 1
fi
if ! grep -q 'paper: debug: listening on' "$cache_dir/paper-metrics.log"; then
    echo "ci: paper run did not announce the debug server" >&2
    exit 1
fi
echo "ci: observability stdout OK"

echo "== live debug-server smoke =="
# A backgrounded sweep with -debug-addr must serve live Prometheus series
# (cache hit/miss counters, worker-utilization gauges) and pprof while
# the run is in flight, then exit cleanly.
live_log="$cache_dir/sweep-live.log"
go run ./cmd/sweep -formats 2160p30,2160p60 -channels 1,2,4,8 \
    -freqs 200,266,333,400,533 -fraction 1 -jobs 2 \
    -debug-addr 127.0.0.1:0 >"$cache_dir/sweep-live.csv" 2>"$live_log" &
live_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^sweep: debug: listening on //p' "$live_log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci: sweep never announced its debug server:" >&2
    cat "$live_log" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
scraped=0
for _ in $(seq 1 200); do
    if curl -fsS "http://$addr/metrics" 2>/dev/null | tee "$cache_dir/metrics.prom" |
        grep -q '^runindexed_workers_busy'; then
        scraped=1
        break
    fi
    sleep 0.05
done
if [ "$scraped" != 1 ]; then
    echo "ci: /metrics never served live series during the sweep" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
if ! grep -q '^simcache_misses_total' "$cache_dir/metrics.prom"; then
    echo "ci: live /metrics missing simcache series:" >&2
    cat "$cache_dir/metrics.prom" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
pprof_status=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/")
if [ "$pprof_status" != 200 ]; then
    echo "ci: /debug/pprof/ returned $pprof_status, want 200" >&2
    kill "$live_pid" 2>/dev/null || true
    exit 1
fi
if ! wait "$live_pid"; then
    echo "ci: instrumented sweep exited non-zero:" >&2
    cat "$live_log" >&2
    exit 1
fi
if [ "$(wc -l < "$cache_dir/sweep-live.csv")" -ne 41 ]; then
    echo "ci: instrumented sweep CSV truncated" >&2
    exit 1
fi
echo "ci: live debug-server smoke OK"

echo "== simulation service soak gate =="
# The simd daemon, built with the race detector, is driven end to end:
# a service sweep must be byte-identical to the direct CLI sweep; a
# saturation soak with 8x more clients than worker slots must finish
# with zero failed requests — every request either completes or sheds
# honestly with 429 + Retry-After, and above the admission limit the
# 429s must actually occur; an undersized deadline must come back 504;
# and a SIGTERM under load must drain cleanly with exit 0.
svc_dir=$(mktemp -d)
trap 'rm -rf "$qos_dir" "$cache_dir" "$svc_dir"' EXIT
go build -race -o "$svc_dir/simd" ./cmd/simd
go build -race -o "$svc_dir/simctl" ./cmd/simctl
svc_fail() {
    echo "ci: $1" >&2
    [ -f "$svc_dir/simd.log" ] && cat "$svc_dir/simd.log" >&2
    kill "$simd_pid" 2>/dev/null || true
    exit 1
}
"$svc_dir/simd" -addr 127.0.0.1:0 -workers 2 -queue-limit 4 -drain 20s \
    2>"$svc_dir/simd.log" &
simd_pid=$!
svc_addr=""
for _ in $(seq 1 100); do
    svc_addr=$(sed -n 's/^simd: listening on //p' "$svc_dir/simd.log")
    [ -n "$svc_addr" ] && break
    sleep 0.1
done
[ -n "$svc_addr" ] || svc_fail "simd never announced its address"
"$svc_dir/simctl" sweep -server "http://$svc_addr" \
    -formats 1080p30 -channels 2,4 -freqs 400 -fraction 0.02 \
    >"$svc_dir/svc-sweep.csv" ||
    svc_fail "service sweep failed"
cmp "$cache_dir/sweep-uncached.csv" "$svc_dir/svc-sweep.csv" ||
    svc_fail "service sweep differs from the direct cmd/sweep run"
"$svc_dir/simctl" soak -server "http://$svc_addr" -clients 16 -requests 3 \
    -fraction 0.3 >"$svc_dir/soak.txt" ||
    svc_fail "saturation soak reported failed requests"
cat "$svc_dir/soak.txt"
grep -q ' failed=0$' "$svc_dir/soak.txt" ||
    svc_fail "soak summary reports failures"
grep -Eq ' shed=[1-9][0-9]* ' "$svc_dir/soak.txt" ||
    svc_fail "16 clients against 2+4 admission slots never shed a 429"
if "$svc_dir/simctl" simulate -server "http://$svc_addr" -format 2160p60 \
    -channels 8 -freq 533 -fraction 1 -deadline 50ms \
    >/dev/null 2>"$svc_dir/deadline.log"; then
    svc_fail "50ms deadline on a full 2160p60 frame did not fail"
fi
grep -q '504' "$svc_dir/deadline.log" ||
    svc_fail "undersized deadline did not surface a 504"
( sleep 0.5; kill -TERM "$simd_pid" ) &
"$svc_dir/simctl" soak -server "http://$svc_addr" -clients 16 -requests 6 \
    -fraction 0.05 -allow-shutdown >"$svc_dir/soak-drain.txt" ||
    svc_fail "mid-drain soak reported failed requests"
cat "$svc_dir/soak-drain.txt"
if ! wait "$simd_pid"; then
    svc_fail "simd exited non-zero after SIGTERM"
fi
grep -q 'simd: drained cleanly' "$svc_dir/simd.log" ||
    svc_fail "simd did not report a clean drain"
echo "ci: simulation service soak OK"

echo "== sharded grid router gate =="
# A race-built 3-shard fleet behind simrouter must be indistinguishable
# from one daemon: the routed sweep is byte-identical to the direct
# cmd/sweep run; killing a shard mid-soak costs failover latency but
# zero wrong answers (failed=0, and the post-kill sweep still matches
# byte for byte); a warmed grid re-queries 100% from cache (X-Sim-Cache
# reports only hits); and a 4-shard cache-cold grid must finish at least
# ROUTER_SPEEDUP_MIN (default 2) times faster than a single-worker simd
# — warn-only on hosts with fewer than 4 CPUs, where the shards time-
# slice one core and no scale-out is physically possible.
grid_dir=$(mktemp -d)
trap 'rm -rf "$qos_dir" "$cache_dir" "$svc_dir" "$grid_dir"' EXIT
go build -race -o "$grid_dir/simrouter" ./cmd/simrouter
grid_fail() {
    echo "ci: $1" >&2
    for log in "$grid_dir"/*.log; do
        [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
    done
    # shellcheck disable=SC2086
    kill $grid_pids 2>/dev/null || true
    exit 1
}
scrape_addr() { # log-file prefix
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n "s/^$2//p" "$1" | sed 's/ .*//')
        [ -n "$addr" ] && break
        sleep 0.1
    done
    echo "$addr"
}
# The shards must be children of THIS shell (not a command substitution)
# so the drain check below can wait on them.
"$svc_dir/simd" -addr 127.0.0.1:0 -workers 2 -queue-limit 8 \
    -shard-name s1 -drain 20s 2>"$grid_dir/s1.log" &
s1_pid=$!
"$svc_dir/simd" -addr 127.0.0.1:0 -workers 2 -queue-limit 8 \
    -shard-name s2 -drain 20s 2>"$grid_dir/s2.log" &
s2_pid=$!
"$svc_dir/simd" -addr 127.0.0.1:0 -workers 2 -queue-limit 8 \
    -shard-name s3 -drain 20s 2>"$grid_dir/s3.log" &
s3_pid=$!
grid_pids="$s1_pid $s2_pid $s3_pid"
s1_addr=$(scrape_addr "$grid_dir/s1.log" "simd: listening on ")
s2_addr=$(scrape_addr "$grid_dir/s2.log" "simd: listening on ")
s3_addr=$(scrape_addr "$grid_dir/s3.log" "simd: listening on ")
[ -n "$s1_addr" ] && [ -n "$s2_addr" ] && [ -n "$s3_addr" ] ||
    grid_fail "a fleet shard never announced its address"
"$grid_dir/simrouter" -addr 127.0.0.1:0 -health-interval 200ms \
    -shard "s1=http://$s1_addr" -shard "s2=http://$s2_addr" \
    -shard "s3=http://$s3_addr" 2>"$grid_dir/router.log" &
router_pid=$!
grid_pids="$grid_pids $router_pid"
router_addr=$(scrape_addr "$grid_dir/router.log" "simrouter: listening on ")
[ -n "$router_addr" ] || grid_fail "simrouter never announced its address"
"$svc_dir/simctl" sweep -server "http://$router_addr" \
    -formats 1080p30 -channels 2,4 -freqs 400 -fraction 0.02 \
    >"$grid_dir/routed-sweep.csv" || grid_fail "routed sweep failed"
cmp "$cache_dir/sweep-uncached.csv" "$grid_dir/routed-sweep.csv" ||
    grid_fail "routed sweep differs from the direct cmd/sweep run"
# Warm an untouched grid, then re-query it: every point must come back a
# cache hit, and the merged answer must still match a direct run.
"$svc_dir/simctl" warm -server "http://$router_addr" \
    -formats 720p30 -channels 1,2 -freqs 266,333 -fraction 0.02 \
    >"$grid_dir/warm.txt" || grid_fail "fleet warm failed"
cat "$grid_dir/warm.txt"
grep -q 'simulated=4' "$grid_dir/warm.txt" ||
    grid_fail "warm did not compute the 4 cold points"
curl -fsS -D "$grid_dir/warm-headers.txt" -o "$grid_dir/warm-sweep.json" \
    -H 'Content-Type: application/json' \
    -d '{"formats":["720p30"],"channels":[1,2],"freqs_mhz":[266,333],"fraction":0.02}' \
    "http://$router_addr/v1/sweep" || grid_fail "post-warm sweep failed"
grep -iq '^x-sim-cache: hit=4' "$grid_dir/warm-headers.txt" || {
    cat "$grid_dir/warm-headers.txt" >&2
    grid_fail "warmed grid was not answered 100% from cache"
}
# Kill a shard mid-soak: the router fails over, so every request still
# either succeeds or sheds honestly — zero failures, zero wrong answers.
( sleep 0.3; kill -TERM "$s2_pid" ) &
"$svc_dir/simctl" soak -server "http://$router_addr" -clients 8 -requests 4 \
    -fraction 0.02 >"$grid_dir/soak.txt" ||
    grid_fail "mid-kill soak reported failed requests"
cat "$grid_dir/soak.txt"
grep -q ' failed=0$' "$grid_dir/soak.txt" ||
    grid_fail "soak across a shard kill reported failures"
wait "$s2_pid" || grid_fail "killed shard did not drain cleanly"
"$svc_dir/simctl" sweep -server "http://$router_addr" \
    -formats 1080p30 -channels 2,4 -freqs 400 -fraction 0.02 \
    >"$grid_dir/degraded-sweep.csv" || grid_fail "post-kill sweep failed"
cmp "$cache_dir/sweep-uncached.csv" "$grid_dir/degraded-sweep.csv" ||
    grid_fail "sweep after losing a shard differs from the direct run"
kill -TERM "$s1_pid" "$s3_pid" "$router_pid" 2>/dev/null || true
wait "$s1_pid" "$s3_pid" "$router_pid" 2>/dev/null || true
# Scale-out timing: a cache-cold grid on 4 single-worker shards vs one
# single-worker daemon, same binaries, fresh processes (cold caches).
ncpu=$(nproc 2>/dev/null || echo 1)
speed_grid="-formats 1080p30 -channels 1,2,4,8 -freqs 200,266,333,400 -fraction 0.05"
"$svc_dir/simd" -addr 127.0.0.1:0 -workers 1 2>"$grid_dir/solo.log" &
solo_pid=$!
grid_pids="$solo_pid"
solo_addr=$(scrape_addr "$grid_dir/solo.log" "simd: listening on ")
[ -n "$solo_addr" ] || grid_fail "solo timing daemon never announced its address"
t0=$(date +%s%N)
# shellcheck disable=SC2086
"$svc_dir/simctl" sweep -server "http://$solo_addr" $speed_grid \
    >"$grid_dir/solo-sweep.csv" || grid_fail "solo timing sweep failed"
t1=$(date +%s%N)
kill -TERM "$solo_pid" 2>/dev/null || true
wait "$solo_pid" 2>/dev/null || true
grid_pids=""
for i in 1 2 3 4; do
    "$svc_dir/simd" -addr 127.0.0.1:0 -workers 1 \
        -shard-name "f$i" 2>"$grid_dir/f$i.log" &
    grid_pids="$grid_pids $!"
done
f_shards=""
for i in 1 2 3 4; do
    f_addr=$(scrape_addr "$grid_dir/f$i.log" "simd: listening on ")
    [ -n "$f_addr" ] || grid_fail "fleet timing shard f$i never announced its address"
    f_shards="$f_shards -shard f$i=http://$f_addr"
done
# shellcheck disable=SC2086
"$grid_dir/simrouter" -addr 127.0.0.1:0 $f_shards 2>"$grid_dir/frouter.log" &
frouter_pid=$!
grid_pids="$grid_pids $frouter_pid"
frouter_addr=$(scrape_addr "$grid_dir/frouter.log" "simrouter: listening on ")
[ -n "$frouter_addr" ] || grid_fail "timing simrouter never announced its address"
t2=$(date +%s%N)
# shellcheck disable=SC2086
"$svc_dir/simctl" sweep -server "http://$frouter_addr" $speed_grid \
    >"$grid_dir/fleet-sweep.csv" || grid_fail "fleet timing sweep failed"
t3=$(date +%s%N)
cmp "$grid_dir/solo-sweep.csv" "$grid_dir/fleet-sweep.csv" ||
    grid_fail "fleet timing sweep differs from the solo run"
# shellcheck disable=SC2086
kill -TERM $grid_pids 2>/dev/null || true
# shellcheck disable=SC2086
wait $grid_pids 2>/dev/null || true
grid_pids=""
solo_ms=$(( (t1 - t0) / 1000000 ))
fleet_ms=$(( (t3 - t2) / 1000000 ))
[ "$fleet_ms" -gt 0 ] || fleet_ms=1
speed_x10=$(( solo_ms * 10 / fleet_ms ))
echo "ci: solo sweep ${solo_ms}ms, 4-shard fleet ${fleet_ms}ms ($((speed_x10 / 10)).$((speed_x10 % 10))x)"
if [ "$speed_x10" -lt "$(( ${ROUTER_SPEEDUP_MIN:-2} * 10 ))" ]; then
    if [ "$ncpu" -lt 4 ]; then
        echo "ci: WARNING: fleet speedup below ${ROUTER_SPEEDUP_MIN:-2}x on a ${ncpu}-CPU host — shards time-slice, not failing"
    else
        echo "ci: 4-shard fleet under ${ROUTER_SPEEDUP_MIN:-2}x over a single worker — scale-out regression" >&2
        exit 1
    fi
fi
echo "ci: sharded grid router OK"

echo "== fidelity differential gate =="
# The auto fidelity tier's contract is verdict identity at a fraction of
# the cost: a cache-cold full-grid auto sweep must carry byte-identical
# verdict columns to the exact sweep while finishing at least
# FIDELITY_SPEEDUP_MIN (default 50) times faster, and the estimated
# column must be honest — every exact row false, every auto fallback row
# byte-identical to its exact counterpart, and at least one auto row
# actually served analytically. A shared on-disk cache across an auto
# and an exact run must not leak estimates into exact answers, and a
# small calibration pass must emit a well-formed, decodable envelope
# that drives -fidelity auto through the -envelope flag.
fid_dir=$(mktemp -d)
trap 'rm -rf "$qos_dir" "$cache_dir" "$svc_dir" "$grid_dir" "$fid_dir"' EXIT
go build -o "$fid_dir/sweep" ./cmd/sweep
t0=$(date +%s%N)
"$fid_dir/sweep" -no-cache >"$fid_dir/exact.csv"
t1=$(date +%s%N)
"$fid_dir/sweep" -no-cache -fidelity auto >"$fid_dir/auto.csv"
t2=$(date +%s%N)
cut -d, -f1,2,3,8 "$fid_dir/exact.csv" >"$fid_dir/exact-verdicts"
cut -d, -f1,2,3,8 "$fid_dir/auto.csv" >"$fid_dir/auto-verdicts"
if ! cmp "$fid_dir/exact-verdicts" "$fid_dir/auto-verdicts"; then
    echo "ci: auto sweep verdicts differ from exact — the envelope proof is broken" >&2
    exit 1
fi
if grep -q ',true$' "$fid_dir/exact.csv"; then
    echo "ci: exact sweep flagged rows estimated" >&2
    exit 1
fi
auto_estimates=$(grep -c ',true$' "$fid_dir/auto.csv" || true)
if [ "$auto_estimates" -eq 0 ]; then
    echo "ci: auto sweep served nothing analytically on the calibrated grid" >&2
    exit 1
fi
if ! paste -d'|' "$fid_dir/exact.csv" "$fid_dir/auto.csv" | awk -F'|' '
    $2 !~ /,true$/ && $1 != $2 {
        printf "ci: auto fallback row differs from exact:\n  %s\n  %s\n", $1, $2
        fail = 1
    }
    END { exit fail }'; then
    exit 1
fi
exact_ms=$(( (t1 - t0) / 1000000 ))
auto_ms=$(( (t2 - t1) / 1000000 ))
[ "$auto_ms" -gt 0 ] || auto_ms=1
ratio=$(( exact_ms / auto_ms ))
echo "ci: exact sweep ${exact_ms}ms, auto sweep ${auto_ms}ms (${auto_estimates}/120 analytic, ${ratio}x)"
if [ "$ratio" -lt "${FIDELITY_SPEEDUP_MIN:-50}" ]; then
    echo "ci: auto sweep only ${ratio}x faster than exact (want >= ${FIDELITY_SPEEDUP_MIN:-50}x)" >&2
    exit 1
fi
# Cache-pollution check: estimates are memoized under tier-tagged keys
# and never written to disk, so an exact run sharing the store must
# reproduce the uncached exact output byte for byte.
pollute_flags="-formats 720p30 -channels 4 -freqs 400,533"
# shellcheck disable=SC2086
"$fid_dir/sweep" $pollute_flags -no-cache >"$fid_dir/pollute-ref.csv"
# shellcheck disable=SC2086
"$fid_dir/sweep" $pollute_flags -fidelity auto -cache-dir "$fid_dir/store" >/dev/null 2>&1
# shellcheck disable=SC2086
"$fid_dir/sweep" $pollute_flags -cache-dir "$fid_dir/store" >"$fid_dir/pollute-exact.csv" 2>/dev/null
if ! cmp "$fid_dir/pollute-ref.csv" "$fid_dir/pollute-exact.csv"; then
    echo "ci: exact sweep through a store shared with an auto sweep differs — estimate pollution" >&2
    exit 1
fi
# Calibration smoke: a tiny pass must emit the current schema and the
# artifact must round-trip through -envelope into an auto sweep.
"$fid_dir/sweep" -calibrate $pollute_flags -fraction 0.02 \
    >"$fid_dir/envelope.json" 2>"$fid_dir/calibrate.log"
grep -q '"schema": "mcm-analytic-envelope/v1"' "$fid_dir/envelope.json" || {
    echo "ci: calibration artifact missing the schema header:" >&2
    cat "$fid_dir/calibrate.log" >&2
    exit 1
}
# shellcheck disable=SC2086
"$fid_dir/sweep" $pollute_flags -fraction 0.02 -no-cache >"$fid_dir/calib-exact.csv"
# shellcheck disable=SC2086
"$fid_dir/sweep" $pollute_flags -fraction 0.02 -no-cache -fidelity auto \
    -envelope "$fid_dir/envelope.json" >"$fid_dir/calib-auto.csv"
cut -d, -f1,2,3,8 "$fid_dir/calib-exact.csv" >"$fid_dir/calib-exact-verdicts"
cut -d, -f1,2,3,8 "$fid_dir/calib-auto.csv" >"$fid_dir/calib-auto-verdicts"
if ! cmp "$fid_dir/calib-exact-verdicts" "$fid_dir/calib-auto-verdicts"; then
    echo "ci: auto sweep under a fresh -envelope changed verdicts" >&2
    exit 1
fi
echo "ci: fidelity differential OK"

echo "== disabled-overhead benchmarks (probe + metrics) =="
# Repeated -count runs, best-of-N per arm: scheduling noise only ever
# slows an iteration down, so the max MB/s is the robust estimate. The
# gate retries because a loaded host can still skew one attempt; a real
# regression fails every attempt. Both observability layers — the
# per-event probe sinks and the run-level metrics registry — must stay
# within the same limit of the uninstrumented throughput when disabled.
attempts="${PROBE_BENCH_ATTEMPTS:-3}"
i=1
while :; do
    bench_out=$(go test -run '^$' -bench 'BenchmarkRawChannel$|BenchmarkProbeDisabledOverhead$|BenchmarkMetricsDisabledOverhead$' \
        -benchtime "${PROBE_BENCHTIME:-1s}" -count "${PROBE_BENCHCOUNT:-5}" .)
    echo "$bench_out"
    if echo "$bench_out" | awk -v max="${PROBE_OVERHEAD_MAX_PCT:-2}" '
        /^BenchmarkRawChannel/              { if ($(NF-1) > raw)  raw = $(NF-1) }
        /^BenchmarkProbeDisabledOverhead/   { if ($(NF-1) > probe) probe = $(NF-1) }
        /^BenchmarkMetricsDisabledOverhead/ { if ($(NF-1) > met)  met = $(NF-1) }
        END {
            if (raw == 0 || probe == 0 || met == 0) { print "ci: benchmark output missing MB/s"; exit 1 }
            ppct = (raw - probe) / raw * 100
            mpct = (raw - met) / raw * 100
            printf "ci: disabled-probe overhead %.2f%% (limit %s%%)\n", ppct, max
            printf "ci: disabled-metrics overhead %.2f%% (limit %s%%)\n", mpct, max
            if (ppct > max + 0 || mpct > max + 0) exit 1
        }'; then
        break
    fi
    if [ "$i" -ge "$attempts" ]; then
        echo "ci: overhead above limit in all $attempts attempts" >&2
        exit 1
    fi
    i=$((i + 1))
    echo "ci: retrying overhead benchmark (attempt $i of $attempts)"
done

echo "== benchmark throughput gate =="
# Record the simulator-throughput benchmarks (best of BENCH_COUNT runs
# per name: min ns/op, max MB/s — noise only ever slows an iteration)
# to results/BENCH_<date>.json and gate the headline BenchmarkRawChannel
# MB/s against the checked-in floor. The floor is deliberately far below
# tuned-hardware numbers so only a real regression (e.g. losing the
# burst-coalesced fast path) trips it.
mkdir -p results
bench_stem="results/BENCH_$(date +%Y%m%d)"
bench_json="$bench_stem.json"
# Never clobber a same-day export: suffix reruns with -2, -3, ...
n=1
while [ -e "$bench_json" ]; do
    n=$((n + 1))
    bench_json="$bench_stem-$n.json"
done
raw_out=$(go test -run '^$' \
    -bench 'BenchmarkRawChannel$|BenchmarkPerBurstRun$|BenchmarkCoalescedRun$|BenchmarkParallelRun$|BenchmarkParallelEngineRun$|BenchmarkSimulate$|BenchmarkSimulateCached$|BenchmarkFullFormatMatrix$|BenchmarkFullFormatMatrixCached$|BenchmarkAnalyticResult$|BenchmarkAutoSweep$' \
    -benchmem -benchtime "${BENCH_BENCHTIME:-0.5s}" -count "${BENCH_COUNT:-3}" .)
echo "$raw_out"
echo "$raw_out" | awk -v date="$(date +%Y-%m-%d)" '
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = 0; mbs = 0; alloc = -1
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op") ns = $(i-1)
            if ($i == "MB/s") mbs = $(i-1)
            if ($i == "allocs/op") alloc = $(i-1)
        }
        if (!(name in best_ns) || ns < best_ns[name]) best_ns[name] = ns
        if (!(name in best_mbs) || mbs > best_mbs[name]) best_mbs[name] = mbs
        allocs[name] = alloc
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": {\n", date
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "    \"%s\": {\"ns_per_op\": %s, \"mb_per_s\": %s, \"allocs_per_op\": %s}%s\n",
                name, best_ns[name], best_mbs[name], allocs[name], (i < n ? "," : "")
        }
        printf "  }\n}\n"
    }' > "$bench_json"
echo "ci: wrote $bench_json"

echo "== allocation gate =="
# allocs/op is deterministic for a given code path — no host-speed
# calibration applies, so exceeding a "# allocs <name> <max>" entry in
# results/BENCH_FLOOR is always a hard failure. Best (minimum) of the
# BENCH_COUNT runs is compared, mirroring the throughput gate.
echo "$raw_out" | awk '
    NR == FNR {
        if ($1 == "#" && $2 == "allocs") limit[$3] = $4
        next
    }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++)
            if ($i == "allocs/op" && (!(name in best) || $(i-1) + 0 < best[name])) best[name] = $(i-1)
    }
    END {
        fail = 0
        for (name in limit) {
            if (!(name in best)) {
                printf "ci: allocation gate: %s has a limit but was not measured\n", name
                fail = 1
                continue
            }
            printf "ci: %s %d allocs/op (limit %d)\n", name, best[name], limit[name]
            if (best[name] + 0 > limit[name] + 0) {
                printf "ci: %s exceeds its allocation limit — regression\n", name
                fail = 1
            }
        }
        exit fail
    }' results/BENCH_FLOOR -
echo "ci: allocation gate OK"
floor=$(grep -v '^#' results/BENCH_FLOOR | head -1)
# Host-speed calibration: the floor is an absolute MB/s recorded on a
# particular machine. Re-measure the simulator-independent calibration
# benchmark and compare against the "# calib" reference in BENCH_FLOOR;
# a host under 70% of the reference can undercut the floor without any
# code regression, so the gate becomes warn-only there.
calib_ref=$(sed -n 's/^# calib[ \t]*\([0-9.]*\).*/\1/p' results/BENCH_FLOOR | head -1)
floor_mode=fail
if [ -n "$calib_ref" ]; then
    calib_out=$(go test -run '^$' -bench 'BenchmarkHostCalibration$' \
        -benchtime "${CALIB_BENCHTIME:-0.3s}" -count "${CALIB_COUNT:-3}" .)
    if ! echo "$calib_out" | awk -v ref="$calib_ref" '
        /^BenchmarkHostCalibration/ { for (i = 2; i <= NF; i++) if ($i == "MB/s" && $(i-1) > best) best = $(i-1) }
        END {
            if (best == 0) { print "ci: calibration output missing MB/s — keeping hard floor" ; exit 0 }
            printf "ci: host calibration %.0f MB/s (floor recorded at %s MB/s)\n", best, ref
            if (best + 0 < 0.7 * ref) exit 1
        }'; then
        floor_mode=warn
        echo "ci: host detectably slower than the floor reference — throughput gate is warn-only"
    fi
fi
echo "$raw_out" | awk -v floor="$floor" -v mode="$floor_mode" '
    /^BenchmarkRawChannel/ { for (i = 2; i <= NF; i++) if ($i == "MB/s" && $(i-1) > best) best = $(i-1) }
    END {
        if (best == 0) { print "ci: BenchmarkRawChannel output missing MB/s"; exit 1 }
        printf "ci: BenchmarkRawChannel %.0f MB/s (floor %s MB/s)\n", best, floor
        if (best + 0 < floor + 0) {
            if (mode == "warn") { print "ci: WARNING: below floor on a slow host — not failing" }
            else { print "ci: throughput below floor — simulator regression" ; exit 1 }
        }
    }'

echo "== parallel-dispatch scaling gate =="
# Parallel dispatch must never be slower than the coalesced serial path
# it builds on: on multi-core hosts the engine has to win, and on a
# single-CPU host the GOMAXPROCS guard routes Parallel to the serial
# path, so the two are the same code and the same speed. Best-of-N MB/s
# with a small noise margin (PARALLEL_MIN_RATIO, default 0.97).
echo "$raw_out" | awk -v min="${PARALLEL_MIN_RATIO:-0.97}" '
    /^BenchmarkCoalescedRun/ { for (i = 2; i <= NF; i++) if ($i == "MB/s" && $(i-1) > coal) coal = $(i-1) }
    /^BenchmarkParallelRun/  { for (i = 2; i <= NF; i++) if ($i == "MB/s" && $(i-1) > par)  par  = $(i-1) }
    END {
        if (coal == 0 || par == 0) { print "ci: parallel gate missing MB/s"; exit 1 }
        printf "ci: BenchmarkParallelRun %.0f MB/s vs BenchmarkCoalescedRun %.0f MB/s (%.2fx, min %s)\n",
            par, coal, par / coal, min
        if (par < min * coal) { print "ci: parallel dispatch slower than coalesced — scaling regression"; exit 1 }
    }'
echo "ci: OK"
