// Package repro's benchmarks regenerate every table and figure of the
// reproduced paper and report the paper's headline quantities as custom
// benchmark metrics (ms/frame access times, mW powers, channel efficiency),
// so `go test -bench=. -benchmem` doubles as the full evaluation harness.
//
// Mapping to the paper's artifacts (see DESIGN.md section 4):
//
//	BenchmarkTableI          -> Table I
//	BenchmarkFig3            -> Fig. 3
//	BenchmarkFig4Matrix      -> Fig. 4 (and the data behind Fig. 5)
//	BenchmarkFig5Power       -> Fig. 5 anchors
//	BenchmarkXDR             -> the XDR comparison
//	BenchmarkAddressMapping  -> ablation A1 (RBC vs BRC)
//	BenchmarkPowerDown       -> ablation A2
//	BenchmarkPagePolicy      -> ablation A3
//	BenchmarkChannelScaling  -> the "close to 2x" scaling claim
//	BenchmarkRawChannel      -> simulator throughput (engineering metric)
//	BenchmarkSimulate        -> end-to-end point cost, uncached vs cached
//	BenchmarkFullFormatMatrix-> whole-artifact cost, uncached vs cached
//	BenchmarkGeometrySweep   -> extension G1 (device organization)
//	BenchmarkSustained       -> extension S1 (paced multi-frame recording)
//	BenchmarkWriteBuffer     -> extension A4 (posted-write buffer)
//	BenchmarkOperatingPoints -> extension D1 (DVFS operating points)
//	BenchmarkInterleave      -> extension T2 (Table II granularity)
package repro_test

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
	"repro/internal/usecase"
)

// benchFraction keeps bench iterations affordable; results extrapolate
// linearly (the load is homogeneous — see core.Workload.SampleFraction).
const benchFraction = 0.05

func simulate(b *testing.B, format string, channels int, freq units.Frequency, mutate func(*core.MemoryConfig)) core.Result {
	b.Helper()
	w, err := core.WorkloadFor(format)
	if err != nil {
		b.Fatal(err)
	}
	w.SampleFraction = benchFraction
	mc := core.PaperMemory(channels, freq)
	if mutate != nil {
		mutate(&mc)
	}
	res, err := core.Simulate(w, mc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableI regenerates Table I and reports the three prose bandwidth
// anchors as metrics.
func BenchmarkTableI(b *testing.B) {
	var cols []core.TableIColumn
	for i := 0; i < b.N; i++ {
		var err error
		cols, err = core.RunTableI(usecase.Params{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cols[0].Bandwidth.GBps(), "720p30_GB/s")
	b.ReportMetric(cols[2].Bandwidth.GBps(), "1080p30_GB/s")
	b.ReportMetric(cols[3].Bandwidth.GBps(), "1080p60_GB/s")
}

// BenchmarkFig3 regenerates Fig. 3 (access time vs clock, 720p30) and
// reports the single-channel end points.
func BenchmarkFig3(b *testing.B) {
	var points []core.FigPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.RunFig3(core.RunOptions{SampleFraction: benchFraction})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Channels == 1 && p.Freq == 200*units.MHz {
			b.ReportMetric(p.Result.AccessTime.Milliseconds(), "1ch200MHz_ms")
		}
		if p.Channels == 1 && p.Freq == 400*units.MHz {
			b.ReportMetric(p.Result.AccessTime.Milliseconds(), "1ch400MHz_ms")
		}
	}
}

// BenchmarkFig4Matrix regenerates the format-vs-channels matrix of figures 4
// and 5 and reports the 1080p30 access times.
func BenchmarkFig4Matrix(b *testing.B) {
	var points []core.FigPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.RunFormatMatrix(core.RunOptions{SampleFraction: benchFraction})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Format == "1080p30" && (p.Channels == 2 || p.Channels == 4) {
			b.ReportMetric(p.Result.AccessTime.Milliseconds(),
				map[int]string{2: "1080p30_2ch_ms", 4: "1080p30_4ch_ms"}[p.Channels])
		}
	}
}

// BenchmarkFig5Power reports the paper's four power anchors.
func BenchmarkFig5Power(b *testing.B) {
	anchors := []struct {
		format   string
		channels int
		metric   string
	}{
		{"720p30", 1, "720p30_1ch_mW"},
		{"720p30", 8, "720p30_8ch_mW"},
		{"1080p30", 4, "1080p30_4ch_mW"},
		{"2160p30", 8, "2160p30_8ch_mW"},
	}
	for i := 0; i < b.N; i++ {
		for _, a := range anchors {
			res := simulate(b, a.format, a.channels, 400*units.MHz, nil)
			if i == b.N-1 {
				b.ReportMetric(res.TotalPower.Milliwatts(), a.metric)
			}
		}
	}
}

// BenchmarkXDR regenerates the XDR comparison and reports the power-ratio
// range (paper: 4 % to 25 %).
func BenchmarkXDR(b *testing.B) {
	var cmp core.XDRComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = core.RunXDRComparison(core.RunOptions{SampleFraction: benchFraction})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.MinRatio*100, "min_%of_XDR")
	b.ReportMetric(cmp.MaxRatio*100, "max_%of_XDR")
}

// BenchmarkAddressMapping is ablation A1: RBC vs BRC on 1080p30/4ch.
func BenchmarkAddressMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rbc := simulate(b, "1080p30", 4, 400*units.MHz, nil)
		brc := simulate(b, "1080p30", 4, 400*units.MHz, func(mc *core.MemoryConfig) {
			mc.Mux = mapping.BRC
		})
		if i == b.N-1 {
			b.ReportMetric(rbc.AccessTime.Milliseconds(), "RBC_ms")
			b.ReportMetric(brc.AccessTime.Milliseconds(), "BRC_ms")
		}
	}
}

// BenchmarkPowerDown is ablation A2: power-down vs always-standby.
func BenchmarkPowerDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := simulate(b, "720p30", 8, 400*units.MHz, nil)
		off := simulate(b, "720p30", 8, 400*units.MHz, func(mc *core.MemoryConfig) {
			mc.DisablePowerDown = true
		})
		if i == b.N-1 {
			b.ReportMetric(on.TotalPower.Milliwatts(), "powerdown_mW")
			b.ReportMetric(off.TotalPower.Milliwatts(), "standby_mW")
		}
	}
}

// BenchmarkPagePolicy is ablation A3: open vs closed page.
func BenchmarkPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		open := simulate(b, "720p30", 1, 400*units.MHz, nil)
		closed := simulate(b, "720p30", 1, 400*units.MHz, func(mc *core.MemoryConfig) {
			mc.Policy = controller.ClosedPage
		})
		if i == b.N-1 {
			b.ReportMetric(open.AccessTime.Milliseconds(), "open_ms")
			b.ReportMetric(closed.AccessTime.Milliseconds(), "closed_ms")
		}
	}
}

// BenchmarkChannelScaling measures the speedup of channel doubling
// (paper: "close to 2x").
func BenchmarkChannelScaling(b *testing.B) {
	var t1, t8 float64
	for i := 0; i < b.N; i++ {
		t1 = simulate(b, "720p30", 1, 400*units.MHz, nil).AccessTime.Milliseconds()
		t8 = simulate(b, "720p30", 8, 400*units.MHz, nil).AccessTime.Milliseconds()
	}
	b.ReportMetric(t1/t8, "1ch_vs_8ch_speedup")
}

// BenchmarkSimulate measures one end-to-end core.Simulate call — workload
// synthesis through the memory subsystem to the assembled Result — with
// the result cache off. In steady state the subsystem and generator come
// from the per-configuration pools (revived via Reset), so allocs/op is
// dominated by result assembly; ci.sh gates it against the "# allocs"
// entry in results/BENCH_FLOOR.
func BenchmarkSimulate(b *testing.B) {
	core.DisableCache()
	w, err := core.WorkloadFor("720p30")
	if err != nil {
		b.Fatal(err)
	}
	w.SampleFraction = benchFraction
	mc := core.PaperMemory(2, 400*units.MHz)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(w, mc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCached serves the same point from a warm in-process
// result cache: every iteration is a content-addressed key computation
// plus a memoization-table hit. The ratio to BenchmarkSimulate is the
// cache's speedup on a repeated point (the PR targets >= 10x).
func BenchmarkSimulateCached(b *testing.B) {
	cache := core.NewSimCache()
	core.EnableCache(cache)
	defer core.DisableCache()
	w, err := core.WorkloadFor("720p30")
	if err != nil {
		b.Fatal(err)
	}
	w.SampleFraction = benchFraction
	mc := core.PaperMemory(2, 400*units.MHz)
	if _, err := core.Simulate(w, mc); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(w, mc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.MemHits == 0 || st.Simulated != 1 {
		b.Fatalf("cache stats %+v: the timed loop must be all hits", st)
	}
}

// BenchmarkFullFormatMatrix times the complete Fig. 4/5 experiment (every
// format at every channel count) with the cache off — the uncached
// end-to-end baseline for a whole paper artifact.
func BenchmarkFullFormatMatrix(b *testing.B) {
	core.DisableCache()
	opt := core.RunOptions{SampleFraction: benchFraction}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFormatMatrix(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullFormatMatrixCached is the same experiment against a warm
// cache — the steady-state cost of regenerating an artifact once its
// points are resident (what `paper -all` pays for each artifact that
// shares the format matrix).
func BenchmarkFullFormatMatrixCached(b *testing.B) {
	core.EnableCache(core.NewSimCache())
	defer core.DisableCache()
	opt := core.RunOptions{SampleFraction: benchFraction}
	if _, err := core.RunFormatMatrix(opt); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFormatMatrix(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticResult measures the closed-form estimator alone — the
// cost of answering one point at fast fidelity, which is also the unit
// cost of an auto-tier sweep that never falls back. ci.sh gates its
// allocations against results/BENCH_FLOOR.
func BenchmarkAnalyticResult(b *testing.B) {
	core.DisableCache()
	w, err := core.WorkloadFor("720p30")
	if err != nil {
		b.Fatal(err)
	}
	w.SampleFraction = benchFraction
	mc := core.PaperMemory(2, 400*units.MHz)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyticResult(w, mc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoSweep answers the full paper grid (every format x channel
// count x frequency) at auto fidelity with the cache off — the cache-cold
// cost of the calibrated fast path. On the calibrated grid every point is
// served analytically, so the ratio to BenchmarkFullFormatMatrix is the
// sweep-level speedup the PR claims; fallbacks/op reports how many points
// had to fall back to the cycle-accurate simulator (0 on the shipped
// envelope).
func BenchmarkAutoSweep(b *testing.B) {
	core.DisableCache()
	formats := core.PaperFormats()
	// The embedded envelope is calibrated at fraction 0.1; auto serves
	// analytically only when the fractions match.
	const fraction = 0.1
	var fallbacks int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fallbacks = 0
		for _, f := range formats {
			w, err := core.WorkloadFor(f)
			if err != nil {
				b.Fatal(err)
			}
			w.SampleFraction = fraction
			for _, ch := range core.PaperChannels {
				for _, mhz := range core.PaperFreqsMHz {
					mc := core.PaperMemory(ch, units.Frequency(mhz)*units.MHz)
					res, err := core.SimulateAuto(w, mc, core.FidelityAuto)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Estimated {
						fallbacks++
					}
				}
			}
		}
	}
	b.ReportMetric(float64(fallbacks), "fallbacks/op")
}

// rawRun drives the saturated 4 MiB sequential read stream through a
// 4-channel system built from the (possibly mutated) paper configuration —
// the shared core of the simulator-throughput benchmarks below.
func rawRun(b *testing.B, mutate func(*memsys.Config)) {
	b.Helper()
	cfg := memsys.PaperConfig(4, 400*units.MHz)
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := memsys.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const bytes = 4 << 20
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
		if _, err := sys.Run(memsys.NewSliceSource([]memsys.Request{{Addr: 0, Bytes: bytes}})); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRawChannel measures the simulator's own throughput: bursts
// simulated per second on a saturated sequential read stream, on the
// default (serial, burst-coalesced) dispatch path. ci.sh gates this
// number against the floor in results/BENCH_FLOOR.
func BenchmarkRawChannel(b *testing.B) {
	rawRun(b, nil)
}

// BenchmarkPerBurstRun is the same stream with coalescing disabled — the
// pre-optimization per-burst dispatch loop, kept measurable so the gain
// (and the cost of the probe/fault fallback path) stays visible.
func BenchmarkPerBurstRun(b *testing.B) {
	rawRun(b, func(cfg *memsys.Config) { cfg.NoCoalesce = true })
}

// BenchmarkCoalescedRun pins the burst-coalesced fast path explicitly
// (independent of the config default), for before/after comparison with
// BenchmarkPerBurstRun.
func BenchmarkCoalescedRun(b *testing.B) {
	rawRun(b, func(cfg *memsys.Config) { cfg.NoCoalesce = false })
}

// BenchmarkParallelRun adds the persistent per-channel worker engine on
// top of coalescing: one goroutine per channel fed with reusable op
// batches. On a single-CPU host the config's GOMAXPROCS guard routes
// this to the serial path (goroutine handoffs cannot win without a
// second core), so the benchmark measures what production Parallel
// actually executes on the host.
func BenchmarkParallelRun(b *testing.B) {
	rawRun(b, func(cfg *memsys.Config) { cfg.Parallel = true })
}

// BenchmarkParallelEngineRun pins the worker engine itself (ForceParallel
// bypasses the GOMAXPROCS guard): the cross-Run batch reuse keeps its
// steady-state allocations at the coalesced path's level.
func BenchmarkParallelEngineRun(b *testing.B) {
	rawRun(b, func(cfg *memsys.Config) { cfg.Parallel = true; cfg.ForceParallel = true })
}

// probeBenchRun drives one saturated 4 MiB stream through a 4-channel
// system with the given per-channel sink factory and returns bursts/sec
// via the benchmark's byte counter.
func probeBenchRun(b *testing.B, newProbe func(ch int) probe.Sink) {
	b.Helper()
	cfg := memsys.PaperConfig(4, 400*units.MHz)
	cfg.NewProbe = newProbe
	sys, err := memsys.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const bytes = 4 << 20
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
		if _, err := sys.Run(memsys.NewSliceSource([]memsys.Request{{Addr: 0, Bytes: bytes}})); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostCalibration is a simulator-independent CPU baseline: a
// fixed xorshift-and-sum pass over a 4 MiB buffer. ci.sh compares its
// MB/s against the reference recorded in results/BENCH_FLOOR ("# calib"
// line) to tell a slow host apart from a simulator regression — when the
// host itself is detectably slower than the machine that recorded the
// floor, the absolute BenchmarkRawChannel gate downgrades to a warning.
func BenchmarkHostCalibration(b *testing.B) {
	buf := make([]uint64, 512<<10) // 4 MiB
	for i := range buf {
		buf[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	b.SetBytes(int64(len(buf) * 8))
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sink
		for _, v := range buf {
			s ^= v
			s = s*6364136223846793005 + 1442695040888963407
		}
		sink = s
	}
	if sink == 42 {
		b.Log(sink) // keep the loop observable
	}
}

// BenchmarkProbeDisabledOverhead measures the observability layer's cost
// when no sink is attached — the nil-check fast path every simulation
// pays. Compare its MB/s against BenchmarkRawChannel (identical workload,
// probe field never set): the two must stay within the run-to-run noise
// (the PR keeps this under 2% of the seed throughput; ci.sh prints both).
func BenchmarkProbeDisabledOverhead(b *testing.B) {
	probeBenchRun(b, nil)
}

// BenchmarkProbeCountingSink is the enabled floor: the cheapest real sink
// (one array increment per event) quantifies the cost of the event stream
// itself, as opposed to any particular collector.
func BenchmarkProbeCountingSink(b *testing.B) {
	counts := make([]*probe.Count, 4)
	probeBenchRun(b, func(ch int) probe.Sink {
		counts[ch] = &probe.Count{}
		return counts[ch]
	})
	var total int64
	for _, c := range counts {
		if c != nil {
			total += c.Total()
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "events/op")
}

// BenchmarkMetricsDisabledOverhead measures the run-level metrics layer's
// cost when no registry is enabled — the nil-check fast path on the same
// saturated stream as BenchmarkRawChannel (identical workload; the meter
// pointer is loaded once per Run and once per coalesced batch). ci.sh
// compares the two MB/s numbers at the same 2% limit as the probe layer.
func BenchmarkMetricsDisabledOverhead(b *testing.B) {
	core.EnableMetrics(nil)
	rawRun(b, nil)
}

// BenchmarkMetricsEnabledRaw is the enabled counterpart: a live registry
// attached while the same stream runs, so the delta to
// BenchmarkMetricsDisabledOverhead is the whole cost of counting (two
// atomic ops per coalesced batch plus one counter per Run).
func BenchmarkMetricsEnabledRaw(b *testing.B) {
	core.EnableMetrics(metrics.NewRegistry())
	defer core.EnableMetrics(nil)
	rawRun(b, nil)
}

// BenchmarkGeometrySweep runs the device-organization sensitivity sweep and
// reports the spread.
func BenchmarkGeometrySweep(b *testing.B) {
	var points []core.GeometryPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.RunGeometrySweep(core.RunOptions{SampleFraction: benchFraction})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.GeometrySpread(points)*100, "spread_%")
}

// BenchmarkSustained runs the paced multi-frame simulation and reports the
// realistic sustained power against the frame-burst estimate.
func BenchmarkSustained(b *testing.B) {
	w, err := core.WorkloadFor("720p30")
	if err != nil {
		b.Fatal(err)
	}
	w.SampleFraction = benchFraction
	var res core.SustainedResult
	for i := 0; i < b.N; i++ {
		res, err = core.SimulateSustained(w, core.PaperMemory(4, 400*units.MHz), 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalPower.Milliwatts(), "sustained_mW")
	b.ReportMetric(res.PowerDownResidency*100, "pd_residency_%")
}

// BenchmarkWriteBuffer reports the posted-write-buffer extension's gain.
func BenchmarkWriteBuffer(b *testing.B) {
	var base, buf core.Result
	for i := 0; i < b.N; i++ {
		base = simulate(b, "720p30", 1, 400*units.MHz, nil)
		buf = simulate(b, "720p30", 1, 400*units.MHz, func(mc *core.MemoryConfig) {
			mc.WriteBufferDepth = 32
		})
	}
	b.ReportMetric(base.AccessTime.Milliseconds(), "baseline_ms")
	b.ReportMetric(buf.AccessTime.Milliseconds(), "buffered_ms")
}

// BenchmarkOperatingPoints runs the DVFS operating-point sweep and reports
// the 8-channel 720p30 saving.
func BenchmarkOperatingPoints(b *testing.B) {
	var points []core.OperatingPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.RunOperatingPoints(core.RunOptions{SampleFraction: 0.02})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Format == "720p30" && p.Channels == 8 {
			b.ReportMetric(p.Saving*100, "720p30_8ch_saving_%")
		}
	}
}

// BenchmarkInterleave runs the Table II granularity sweep and reports the
// isolated-transaction latency ratio between the coarsest and the paper's
// 16-byte interleave.
func BenchmarkInterleave(b *testing.B) {
	var points []core.InterleavePoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.RunInterleaveSweep(core.RunOptions{SampleFraction: benchFraction})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := points[0], points[len(points)-1]
	b.ReportMetric(last.IsolatedLatency.Seconds()/first.IsolatedLatency.Seconds(), "latency_ratio_256B_vs_16B")
}
