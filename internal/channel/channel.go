// Package channel composes the paper's per-channel entity: a memory
// controller, the DRAM interconnect and a bank cluster together form the
// "channel model" from which delay and power figures are attained
// (paper section III).
package channel

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/mapping"
	"repro/internal/probe"
	"repro/internal/stats"
)

// Config parameterizes one channel.
type Config struct {
	Controller controller.Config
	// DRAMLink is the controller-to-bank-cluster interconnect.
	DRAMLink interconnect.Link
	// QueueDepth > 0 inserts an FR-FCFS reorder window of that many
	// bursts in front of the controller (extension; zero keeps the
	// paper's in-order scheduling).
	QueueDepth int
	// Faults, when non-nil, is this channel's fault decision stream: the
	// channel re-issues reads the stream marks as transient ECC errors,
	// with bounded exponential backoff (see internal/fault). The same
	// injector should be passed to Controller.Faults so stall jitter and
	// the thermal derate share the channel's decision stream.
	Faults *fault.ChannelInjector
}

// Channel is one memory channel: requests enter through the DRAM
// interconnect, are scheduled by the controller, and read data returns
// through the interconnect.
type Channel struct {
	ctl   *controller.Controller
	queue *controller.ReorderQueue
	link  interconnect.Link
	inj   *fault.ChannelInjector // nil = fault-free (the fast path)
}

// New builds a channel.
func New(cfg Config) (*Channel, error) {
	if err := cfg.DRAMLink.Validate(); err != nil {
		return nil, err
	}
	ctl, err := controller.New(cfg.Controller)
	if err != nil {
		return nil, err
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("channel: negative queue depth %d", cfg.QueueDepth)
	}
	depth := cfg.QueueDepth
	if min := ctl.MinQueueDepth(); depth < min {
		// A reordering policy (FR-FCFS) needs a window to reorder over;
		// open one at the policy's default when the configuration sets
		// none.
		depth = min
	}
	return &Channel{
		ctl:   ctl,
		queue: controller.NewReorderQueue(ctl, depth),
		link:  cfg.DRAMLink,
		inj:   cfg.Faults,
	}, nil
}

// Access performs one burst at the channel-local byte address. arrival is
// when the request reaches the channel; the returned cycle is when the
// requester observes completion (read data returned, or write data
// accepted by the cluster). The burst is attributed to stream 0; use
// AccessStream when the requester's stream identity matters (bank
// partitioning).
func (ch *Channel) Access(write bool, local int64, arrival int64) int64 {
	return ch.AccessStream(write, local, 0, arrival)
}

// AccessStream performs one burst on behalf of the identified client
// stream. The controller's policy may remap the decoded bank by stream
// (bank partitioning) before the request enters the scheduling window;
// for every other policy the remap is the identity and the call behaves
// exactly like Access.
func (ch *Channel) AccessStream(write bool, local int64, stream int, arrival int64) int64 {
	if arrival < 0 {
		arrival = 0
	}
	loc := ch.ctl.MapStream(stream, ch.decode(local))
	end := ch.queue.Access(write, loc, ch.link.Deliver(arrival))
	if write {
		return end
	}
	if ch.inj != nil {
		// Transient read error: the ECC detects a flipped bit and the
		// channel re-reads the burst after a bounded, doubling backoff.
		// Retry traffic runs through the normal scheduling path, so it
		// costs real bus cycles and appears in the stats and the probe
		// stream like any other read.
		if retries, _ := ch.inj.ReadOutcome(); retries > 0 {
			for attempt := 0; attempt < retries; attempt++ {
				at := end + ch.inj.RetryBackoff(attempt)
				if ch.ctl.HasProbe() {
					ch.ctl.EmitEvent(probe.Event{Kind: probe.KindReadRetry, Bank: -1,
						At: at, End: at, Aux: int64(attempt + 1)})
				}
				end = ch.queue.Access(false, loc, at)
			}
		}
	}
	return ch.link.Complete(end)
}

// AccessRun performs a run of sequential same-direction bursts starting at
// the channel-local byte address, all with the same arrival — the per-channel
// shape of one interleaved master transaction. It returns the latest
// per-burst completion cycle, bit-identical to calling Access once per burst
// in address order.
//
// With an in-order, unobserved, fault-free channel under a coalesce-safe
// policy the run is handed to the controller's coalesced fast path (see
// controller.AccessRun); a reorder window, an attached probe, a fault
// stream, or a policy that has not declared coalesce-safety falls back to
// the per-burst path so event streams, fault decisions and policy state
// stay identical.
func (ch *Channel) AccessRun(write bool, local int64, bursts int, arrival int64) int64 {
	return ch.AccessRunStream(write, local, bursts, 0, arrival)
}

// AccessRunStream is AccessRun with the requester's stream identity; the
// per-burst fallback attributes every burst to the stream. The coalesced
// fast path only engages for coalesce-safe policies, whose stream remap
// is the identity, so stream attribution is never lost to coalescing.
func (ch *Channel) AccessRunStream(write bool, local int64, bursts int, stream int, arrival int64) int64 {
	if bursts <= 1 {
		if bursts < 1 {
			return 0
		}
		return ch.AccessStream(write, local, stream, arrival)
	}
	if ch.inj != nil || ch.queue.Depth() > 0 || !ch.ctl.CoalesceSafe() ||
		(ch.ctl.HasProbe() && !ch.ctl.SynthCoalesced()) {
		burstBytes := ch.ctl.Config().Speed.Geometry.BurstBytes()
		var end int64
		for i := 0; i < bursts; i++ {
			if e := ch.AccessStream(write, local, stream, arrival); e > end {
				end = e
			}
			local += burstBytes
		}
		return end
	}
	if arrival < 0 {
		arrival = 0
	}
	end := ch.ctl.AccessRun(write, local, bursts, ch.link.Deliver(arrival))
	if write {
		return end
	}
	return ch.link.Complete(end)
}

// Flush drains the reorder window and any posted writes, returning the
// channel makespan at the DRAM bus.
func (ch *Channel) Flush() int64 { return ch.queue.Flush() }

// Stats returns the controller's accumulated counters.
func (ch *Channel) Stats() stats.Channel { return ch.ctl.Stats() }

// Latency returns the controller's latency histogram.
func (ch *Channel) Latency() *stats.Histogram { return ch.ctl.Latency() }

// BusyCycles returns the channel makespan at the DRAM bus.
func (ch *Channel) BusyCycles() int64 { return ch.ctl.BusyCycles() }

// Controller exposes the underlying controller (for configuration queries).
func (ch *Channel) Controller() *controller.Controller { return ch.ctl }

// Observed reports whether a probe sink is attached to this channel's
// controller (see internal/probe); the event stream covers the channel's
// full request path: enqueue, DRAM commands, power states, completion.
func (ch *Channel) Observed() bool { return ch.ctl.HasProbe() }

// Reset restores the channel to its initial state, rewinding the fault
// decision stream (when one is attached) along with the controller and the
// reorder window, so a reset channel replays the identical run.
func (ch *Channel) Reset() {
	ch.ctl.Reset()
	ch.queue = controller.NewReorderQueue(ch.ctl, ch.queueDepth())
	if ch.inj != nil {
		ch.inj.Reset()
	}
}

func (ch *Channel) queueDepth() int {
	// The queue's depth is immutable after construction; re-derive it
	// from the existing wrapper (0 when reordering is off).
	return ch.queue.Depth()
}

// decode maps a channel-local byte address to its DRAM coordinate using the
// controller's configured multiplexing.
func (ch *Channel) decode(local int64) mapping.Location {
	return ch.ctl.Decode(local)
}
