package channel

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/interconnect"
	"repro/internal/mapping"
	"repro/internal/units"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Controller: controller.Config{Speed: s, Mux: mapping.RBC, Policy: controller.OpenPage, PowerDown: true},
		DRAMLink:   interconnect.Link{RequestCycles: 1, ResponseCycles: 1},
	}
}

func TestNewValidates(t *testing.T) {
	cfg := testConfig(t)
	cfg.DRAMLink.RequestCycles = -1
	if _, err := New(cfg); err == nil {
		t.Error("expected link validation error")
	}
	cfg = testConfig(t)
	cfg.Controller.Policy = controller.PagePolicy(9)
	if _, err := New(cfg); err == nil {
		t.Error("expected controller validation error")
	}
}

func TestReadIncludesResponseLatency(t *testing.T) {
	cfg := testConfig(t)
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Controller.Speed
	got := ch.Access(false, 0, 0)
	// Request link (1) + ACT+tRCD+CL+burst + response link (1).
	want := 1 + s.RCD + s.CL + s.BurstCycles + 1
	if got != want {
		t.Errorf("cold read completion = %d, want %d", got, want)
	}
}

func TestWriteOmitsResponseLatency(t *testing.T) {
	cfg := testConfig(t)
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Controller.Speed
	got := ch.Access(true, 0, 0)
	want := 1 + s.RCD + s.CWL + s.BurstCycles
	if got != want {
		t.Errorf("cold write completion = %d, want %d", got, want)
	}
}

func TestNegativeArrivalClamps(t *testing.T) {
	ch, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.Access(false, 0, -5), ch.Access(false, 16, 0); got >= want {
		t.Errorf("negative arrival produced later completion %d >= %d", got, want)
	}
}

func TestStatsAndReset(t *testing.T) {
	ch, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ch.Access(false, 0, 0)
	ch.Access(true, 16, 0)
	st := ch.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if ch.BusyCycles() <= 0 {
		t.Error("busy cycles should be positive")
	}
	ch.Reset()
	if ch.Stats().Accesses() != 0 || ch.BusyCycles() != 0 {
		t.Error("reset did not clear state")
	}
	if ch.Controller() == nil {
		t.Error("controller accessor returned nil")
	}
	if ch.Latency() == nil {
		t.Error("latency accessor returned nil")
	}
}

func TestQueueDepthValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = -1
	if _, err := New(cfg); err == nil {
		t.Error("expected queue depth error")
	}
	cfg.QueueDepth = 8
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reordered accesses still drain fully through Flush, and Reset
	// restores a working queue.
	for i := 0; i < 20; i++ {
		ch.Access(false, int64(i*16), 0)
	}
	ch.Flush()
	if got := ch.Stats().Reads; got != 20 {
		t.Errorf("drained %d reads, want 20", got)
	}
	ch.Reset()
	for i := 0; i < 4; i++ {
		ch.Access(false, int64(i*16), 0)
	}
	ch.Flush()
	if got := ch.Stats().Reads; got != 4 {
		t.Errorf("post-reset drained %d reads, want 4", got)
	}
}
