// Package check is a protocol invariant checker for the simulated
// mobile-DDR channel: it consumes the probe event stream (internal/probe)
// and verifies, command by command, that the controller never violates the
// theoretical device's constraints — per-bank spacing (tRCD/tRP/tRAS/tRC),
// cross-bank spacing (tRRD and the tFAW four-activate window), the shared
// data bus (no burst collisions, read/write turnaround bubbles, tWTR write
// recovery), refresh-interval bounds including the thermal derate, and
// power-down/self-refresh entry and exit legality (tXP/tXSR).
//
// The checker is an independent re-derivation of the rules from the event
// stream alone: it shares no state with the controller, so a bookkeeping
// bug on either side surfaces as a violation. It is the same validation
// idea DRAMsim3 and Ramulator ship as command-trace checkers.
//
// Command issue times are reconstructed from event End cycles (ACT ends
// tRCD after issue, PRE tRP, REF tRFC, RD CL+burst, WR CWL+burst) because
// the probe contract clamps At forward to keep per-channel streams
// monotonic — End carries the exact schedule.
package check

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/probe"
)

// Options parameterizes a checker Set.
type Options struct {
	// Speed is the resolved device timing the observed controllers run at.
	Speed dram.Speed
	// Policy mirrors the controllers' page policy; ClosedPage makes the
	// checker model the auto-precharge that follows every access.
	Policy controller.PagePolicy
	// RefreshPostpone mirrors controller.Config.RefreshPostpone and widens
	// the refresh spacing bound accordingly.
	RefreshPostpone int
	// RefreshDisabled disables the refresh-interval rule (the commands
	// themselves are still checked if any appear).
	RefreshDisabled bool
	// MaxRefreshInterval overrides the refresh spacing bound in cycles.
	// Zero derives (RefreshPostpone+9)*tREFI — the JEDEC allowance of
	// eight postponed refreshes plus the interval itself, re-derived
	// against the derated interval after a KindThermalDerate event.
	MaxRefreshInterval int64
	// MaxViolations caps recorded violations per channel (further ones are
	// counted but dropped). Zero means 64.
	MaxViolations int
}

// Violation is one observed protocol breach.
type Violation struct {
	Channel int
	Rule    string // e.g. "tRFC", "bus-turnaround", "refresh-late"
	At      int64  // reconstructed issue/start cycle of the offending event
	Bank    int
	Msg     string
}

// String formats the violation for logs and test failures.
func (v Violation) String() string {
	return fmt.Sprintf("ch%d @%d bank %d [%s]: %s", v.Channel, v.At, v.Bank, v.Rule, v.Msg)
}

// Set owns one Checker per observed channel. Construct with New, attach
// via Channel (compatible with memsys.Config.NewProbe), and read the
// outcome with Violations or Err after the run.
type Set struct {
	opt Options

	mu   sync.Mutex
	chks []*Checker
}

// New builds a checker set for one device configuration.
func New(opt Options) *Set {
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 64
	}
	return &Set{opt: opt}
}

// Channel returns channel i's checker as an event sink. Safe to call from
// memsys construction; each returned sink must only be driven from its
// channel's simulation goroutine (the same contract as any probe sink).
func (s *Set) Channel(i int) probe.Sink {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.chks) <= i {
		s.chks = append(s.chks, nil)
	}
	if s.chks[i] == nil {
		s.chks[i] = newChecker(s.opt, i)
	}
	return s.chks[i]
}

// Violations returns all recorded violations ordered by channel, then by
// occurrence.
func (s *Set) Violations() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Violation
	for _, c := range s.chks {
		if c != nil {
			out = append(out, c.violations...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}

// Dropped returns how many violations exceeded the per-channel cap and
// were not recorded.
func (s *Set) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.chks {
		if c != nil {
			n += c.dropped
		}
	}
	return n
}

// Err returns nil when every observed stream was clean, else an error
// naming the first violation and the total count.
func (s *Set) Err() error {
	vs := s.Violations()
	if len(vs) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d protocol violation(s), first: %s", int64(len(vs))+s.Dropped(), vs[0])
}

// unset is the sentinel for "no such command seen yet"; far enough below
// zero that adding timing windows cannot wrap.
const unset = math.MinInt64 / 4

// bankTrack is the checker's independent model of one bank.
type bankTrack struct {
	open        bool
	row         int32
	rdwrReadyAt int64 // ACT issue + tRCD
	rasReadyAt  int64 // ACT issue + tRAS (PRE floor)
	wrRecoverAt int64 // write data end + tWR (PRE floor)
	rdRecoverAt int64 // RD issue + tRTP (PRE floor)
	preEndAt    int64 // precharge completion (+tRP): ACT/REF floor
	rcReadyAt   int64 // ACT issue + tRC: ACT floor
}

// Checker validates one channel's event stream. It implements probe.Sink.
type Checker struct {
	opt   Options
	ch    int
	banks []bankTrack

	lastCmdAt int64 // most recent command issue (strict bus serialization)

	// Cross-bank activate spacing.
	lastActAt  int64
	actRing    [4]int64
	actRingIdx int
	actCount   int64

	// Shared data bus.
	haveXfer      bool
	lastDataEnd   int64
	lastDataWrite bool
	lastWrDataEnd int64
	haveWrite     bool

	// Refresh bookkeeping.
	refi      int64
	refDoneAt int64 // previous REF completion (tRFC floor)
	lastRefAt int64
	haveRef   bool
	refBase   int64 // spacing base when no REF seen yet (first command, SR exit)
	haveBase  bool

	wakeFloor int64  // earliest command after a PD/SR exit (tXP/tXSR)
	wakeRule  string // which rule the floor carries

	violations []Violation
	dropped    int64
}

func newChecker(opt Options, ch int) *Checker {
	k := &Checker{
		opt:       opt,
		ch:        ch,
		banks:     make([]bankTrack, opt.Speed.Geometry.Banks),
		lastCmdAt: unset,
		lastActAt: unset,
		refDoneAt: unset,
		lastRefAt: unset,
		wakeFloor: unset,
		refi:      opt.Speed.REFI,
	}
	for i := range k.banks {
		k.banks[i] = bankTrack{
			rdwrReadyAt: unset, rasReadyAt: unset, wrRecoverAt: unset,
			rdRecoverAt: unset, preEndAt: unset, rcReadyAt: unset,
		}
	}
	return k
}

// Violations returns this channel's recorded violations in stream order.
func (k *Checker) Violations() []Violation { return k.violations }

func (k *Checker) fail(rule string, at int64, bank int, format string, args ...any) {
	if len(k.violations) >= k.opt.MaxViolations {
		k.dropped++
		return
	}
	k.violations = append(k.violations, Violation{
		Channel: k.ch, Rule: rule, At: at, Bank: bank, Msg: fmt.Sprintf(format, args...),
	})
}

// maxRefreshInterval is the spacing bound under the current (possibly
// derated) refresh interval.
func (k *Checker) maxRefreshInterval() int64 {
	if k.opt.MaxRefreshInterval > 0 {
		return k.opt.MaxRefreshInterval
	}
	return int64(k.opt.RefreshPostpone+9) * k.refi
}

// Emit implements probe.Sink.
func (k *Checker) Emit(ev probe.Event) {
	s := k.opt.Speed
	switch ev.Kind {
	case probe.KindActivate:
		k.command(ev, ev.End-s.RCD)
	case probe.KindPrecharge:
		k.command(ev, ev.End-s.RP)
	case probe.KindRefresh:
		k.command(ev, ev.End-s.RFC)
	case probe.KindRead:
		k.command(ev, ev.End-s.CL-ev.Aux)
	case probe.KindWrite:
		k.command(ev, ev.End-s.CWL-ev.Aux)
	case probe.KindPowerDown:
		k.residency(ev, "pd", ev.End+s.XP, "tXP")
		if ev.Flags&probe.FlagPrechargedPD != 0 && !k.allClosed() {
			k.fail("pd-flag", ev.End-ev.Aux, -1, "precharge power-down flagged with an open row")
		}
	case probe.KindSelfRefresh:
		if !k.allClosed() {
			k.fail("sr-open-bank", ev.End-ev.Aux, k.firstOpen(),
				"self-refresh entered with an open row (all banks must be precharged)")
		}
		k.residency(ev, "sr", ev.End+s.XSR, "tXSR")
		// Self-refresh maintains the cells internally: the periodic
		// refresh schedule restarts at exit.
		k.haveRef = false
		k.refBase = ev.End
		k.haveBase = true
	case probe.KindThermalDerate:
		if ev.Aux >= 1 {
			k.refi = ev.Aux
		}
		// Rebase spacing at the derate point: the interval in force
		// changes here, so a straddling interval is judged against
		// neither bound (the post-derate catch-up is checked from the
		// next refresh on).
		k.haveRef = false
		k.refBase = ev.At
		k.haveBase = true
	case probe.KindRowHit:
		if b := k.bank(ev.Bank); b != nil && (!b.open || b.row != ev.Row) {
			k.fail("row-outcome", ev.At, int(ev.Bank),
				"row-hit event for row %d but tracked bank state is open=%t row=%d",
				ev.Row, b.open, b.row)
		}
	}
}

// command validates one DRAM command with the reconstructed issue cycle.
func (k *Checker) command(ev probe.Event, issue int64) {
	if issue > ev.At {
		k.fail("event-shape", ev.At, int(ev.Bank),
			"%v ends at %d, before its own duration from At %d allows", ev.Kind, ev.End, ev.At)
		return
	}
	if !k.haveBase {
		k.refBase = issue
		k.haveBase = true
	}
	if issue <= k.lastCmdAt {
		k.fail("cmd-bus", issue, int(ev.Bank),
			"%v issued at %d, command bus already used at %d", ev.Kind, issue, k.lastCmdAt)
	}
	if issue < k.wakeFloor {
		k.fail(k.wakeRule, issue, int(ev.Bank),
			"%v issued at %d during the %s exit window ending %d", ev.Kind, issue, k.wakeRule, k.wakeFloor)
	}
	switch ev.Kind {
	case probe.KindActivate:
		k.activate(ev, issue)
	case probe.KindRead, probe.KindWrite:
		k.readWrite(ev, issue)
	case probe.KindPrecharge:
		k.precharge(ev, issue)
	case probe.KindRefresh:
		k.refresh(ev, issue)
	}
	if issue > k.lastCmdAt {
		k.lastCmdAt = issue
	}
}

func (k *Checker) activate(ev probe.Event, issue int64) {
	s := k.opt.Speed
	b := k.bank(ev.Bank)
	if b == nil {
		k.fail("bad-bank", issue, int(ev.Bank), "ACT on nonexistent bank")
		return
	}
	if b.open {
		k.fail("act-open-bank", issue, int(ev.Bank), "ACT while row %d is open", b.row)
	}
	if issue < b.preEndAt {
		k.fail("tRP", issue, int(ev.Bank), "ACT at %d inside precharge ending %d", issue, b.preEndAt)
	}
	if issue < b.rcReadyAt {
		k.fail("tRC", issue, int(ev.Bank), "ACT at %d, tRC window ends %d", issue, b.rcReadyAt)
	}
	if issue < k.refDoneAt {
		k.fail("tRFC", issue, int(ev.Bank), "ACT at %d inside refresh ending %d", issue, k.refDoneAt)
	}
	if k.lastActAt != unset && issue < k.lastActAt+s.RRD {
		k.fail("tRRD", issue, int(ev.Bank), "ACT at %d, %d after previous ACT (tRRD %d)",
			issue, issue-k.lastActAt, s.RRD)
	}
	if s.FAW > 0 && k.actCount >= 4 {
		if oldest := k.actRing[k.actRingIdx]; issue < oldest+s.FAW {
			k.fail("tFAW", issue, int(ev.Bank), "fifth ACT at %d, window of four since %d (tFAW %d)",
				issue, oldest, s.FAW)
		}
	}
	k.actRing[k.actRingIdx] = issue
	k.actRingIdx = (k.actRingIdx + 1) % 4
	k.actCount++
	k.lastActAt = issue
	b.open = true
	b.row = ev.Row
	b.rdwrReadyAt = issue + s.RCD
	b.rasReadyAt = issue + s.RAS
	b.rcReadyAt = issue + s.RC
}

func (k *Checker) readWrite(ev probe.Event, issue int64) {
	s := k.opt.Speed
	write := ev.Kind == probe.KindWrite
	b := k.bank(ev.Bank)
	if b == nil {
		k.fail("bad-bank", issue, int(ev.Bank), "%v on nonexistent bank", ev.Kind)
		return
	}
	if !b.open {
		k.fail("rw-closed-bank", issue, int(ev.Bank), "%v with the bank closed", ev.Kind)
	} else if b.row != ev.Row {
		k.fail("rw-wrong-row", issue, int(ev.Bank), "%v row %d but row %d is open", ev.Kind, ev.Row, b.row)
	}
	if issue < b.rdwrReadyAt {
		k.fail("tRCD", issue, int(ev.Bank), "%v at %d, tRCD satisfied at %d", ev.Kind, issue, b.rdwrReadyAt)
	}
	if !write && k.haveWrite && issue < k.lastWrDataEnd+s.WTR {
		k.fail("tWTR", issue, int(ev.Bank), "RD at %d, write data ended %d (tWTR %d)",
			issue, k.lastWrDataEnd, s.WTR)
	}
	// The data burst occupies [End-Aux, End) on the shared bus.
	start := ev.End - ev.Aux
	if k.haveXfer {
		if start < k.lastDataEnd {
			k.fail("bus-collision", issue, int(ev.Bank),
				"data starting %d overlaps previous burst ending %d", start, k.lastDataEnd)
		} else if k.lastDataWrite != write && start < k.lastDataEnd+1 {
			k.fail("bus-turnaround", issue, int(ev.Bank),
				"bus direction turnaround without a bubble at %d", start)
		}
	}
	if write {
		b.wrRecoverAt = ev.End + s.WR
		k.lastWrDataEnd = ev.End
		k.haveWrite = true
	} else {
		b.rdRecoverAt = issue + s.RTP
	}
	k.haveXfer = true
	k.lastDataEnd = ev.End
	k.lastDataWrite = write
	if k.opt.Policy == controller.ClosedPage {
		// Auto-precharge: the bank closes itself once restore and
		// recovery windows elapse (mirrors the controller's model).
		closeAt := max64(b.rasReadyAt, ev.End)
		closeAt = max64(closeAt, b.wrRecoverAt)
		closeAt = max64(closeAt, b.rdRecoverAt)
		b.open = false
		b.preEndAt = max64(b.preEndAt, closeAt+s.RP)
	}
}

func (k *Checker) precharge(ev probe.Event, issue int64) {
	s := k.opt.Speed
	if ev.Bank >= 0 {
		b := k.bank(ev.Bank)
		if b == nil {
			k.fail("bad-bank", issue, int(ev.Bank), "PRE on nonexistent bank")
			return
		}
		if !b.open {
			k.fail("pre-closed-bank", issue, int(ev.Bank), "PRE on an already closed bank")
		}
		k.prechargeBank(b, int(ev.Bank), issue)
		return
	}
	for i := range k.banks {
		if k.banks[i].open {
			k.prechargeBank(&k.banks[i], i, issue)
		} else {
			// Precharge-all restarts tRP on idle banks too.
			k.banks[i].preEndAt = max64(k.banks[i].preEndAt, issue+s.RP)
		}
	}
}

func (k *Checker) prechargeBank(b *bankTrack, bank int, issue int64) {
	s := k.opt.Speed
	if issue < b.rasReadyAt {
		k.fail("tRAS", issue, bank, "PRE at %d, row restore completes %d (tRAS)", issue, b.rasReadyAt)
	}
	if issue < b.wrRecoverAt {
		k.fail("tWR", issue, bank, "PRE at %d inside write recovery ending %d", issue, b.wrRecoverAt)
	}
	if issue < b.rdRecoverAt {
		k.fail("tRTP", issue, bank, "PRE at %d, read-to-precharge satisfied at %d", issue, b.rdRecoverAt)
	}
	b.open = false
	b.preEndAt = max64(b.preEndAt, issue+s.RP)
}

func (k *Checker) refresh(ev probe.Event, issue int64) {
	s := k.opt.Speed
	for i := range k.banks {
		b := &k.banks[i]
		if b.open {
			k.fail("ref-open-bank", issue, i, "REF with row %d open", b.row)
		}
		if issue < b.preEndAt {
			k.fail("tRP", issue, i, "REF at %d inside precharge ending %d", issue, b.preEndAt)
		}
	}
	if issue < k.refDoneAt {
		k.fail("tRFC", issue, -1, "REF at %d inside previous refresh ending %d (tRFC %d)",
			issue, k.refDoneAt, s.RFC)
	}
	if !k.opt.RefreshDisabled {
		base := k.refBase
		if k.haveRef {
			base = k.lastRefAt
		}
		if limit := k.maxRefreshInterval(); issue-base > limit {
			k.fail("refresh-late", issue, -1,
				"%d cycles since the previous refresh point %d (bound %d at tREFI %d, postpone %d)",
				issue-base, base, limit, k.refi, k.opt.RefreshPostpone)
		}
	}
	k.refDoneAt = issue + s.RFC
	k.lastRefAt = issue
	k.haveRef = true
}

// residency validates a power-state residency window [End-Aux, End) and
// arms the exit-penalty floor for the next command.
func (k *Checker) residency(ev probe.Event, what string, floor int64, rule string) {
	if ev.Aux > 0 {
		start := ev.End - ev.Aux
		if start <= k.lastCmdAt {
			k.fail(what+"-overlap", start, -1,
				"%s residency starts %d, at or before the last command %d", what, start, k.lastCmdAt)
		}
		if k.haveXfer && start < k.lastDataEnd {
			k.fail(what+"-overlap", start, -1,
				"%s residency starts %d inside a data burst ending %d", what, start, k.lastDataEnd)
		}
	}
	k.wakeFloor = floor
	k.wakeRule = rule
}

func (k *Checker) bank(b int32) *bankTrack {
	if b < 0 || int(b) >= len(k.banks) {
		return nil
	}
	return &k.banks[b]
}

func (k *Checker) allClosed() bool {
	for i := range k.banks {
		if k.banks[i].open {
			return false
		}
	}
	return true
}

func (k *Checker) firstOpen() int {
	for i := range k.banks {
		if k.banks[i].open {
			return i
		}
	}
	return -1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
