// Randomized soaks: the invariant checker rides along on randomized
// configurations and workloads (including fault plans) and must stay
// silent, and the differential oracle proves the four dispatch strategies
// emit identical command streams on randomized fault-free runs. Config
// counts scale with CHECK_SOAK_CONFIGS / CHECK_ORACLE_CONFIGS for the CI
// soak gate.
package check_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/memsys"
	"repro/internal/units"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// randomConfig draws one subsystem configuration across the simulator's
// feature matrix.
func randomConfig(rng *rand.Rand) memsys.Config {
	freqs := []units.Frequency{200 * units.MHz, 266 * units.MHz, 333 * units.MHz,
		400 * units.MHz, 533 * units.MHz}
	cfg := memsys.Config{
		Channels:      []int{1, 2, 4}[rng.Intn(3)],
		Freq:          freqs[rng.Intn(len(freqs))],
		PowerDown:     rng.Intn(4) != 0,
		Parallel:      rng.Intn(2) == 0,
		ForceParallel: true,
	}
	if rng.Intn(3) == 0 {
		cfg.Policy = controller.ClosedPage
	}
	if rng.Intn(3) == 0 {
		cfg.WriteBufferDepth = 1 << rng.Intn(5)
	}
	if rng.Intn(3) == 0 {
		cfg.QueueDepth = 1 + rng.Intn(8)
	}
	if rng.Intn(2) == 0 {
		cfg.RefreshPostpone = rng.Intn(9)
	}
	if rng.Intn(3) == 0 {
		cfg.PrechargeOnIdle = true
	}
	if rng.Intn(3) == 0 {
		cfg.InterleaveGranularity = 16 << rng.Intn(4)
	}
	return cfg
}

// randomReqs draws a workload with saturated stretches, short stalls and
// long idle gaps (power-down, self-refresh, refresh catch-up).
func randomReqs(rng *rand.Rand, n int, refi int64) []memsys.Request {
	reqs := make([]memsys.Request, 0, n)
	var arrival int64
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			arrival += refi * int64(1+rng.Intn(6)) // long idle
		case 1, 2:
			arrival += int64(rng.Intn(800)) // short gap
		}
		reqs = append(reqs, memsys.Request{
			Write:   rng.Intn(3) == 0,
			Addr:    int64(rng.Intn(1 << 22)),
			Bytes:   int64(1 + rng.Intn(4096)),
			Arrival: arrival,
		})
	}
	return reqs
}

// randomPlan draws a fault plan (possibly disabled) legal for the config.
func randomPlan(rng *rand.Rand, cfg memsys.Config, seed uint64) *fault.Plan {
	plan := &fault.Plan{Seed: seed}
	if cfg.Channels >= 2 && rng.Intn(3) == 0 {
		plan.DropChannel = rng.Intn(cfg.Channels)
		plan.DropAtCycle = int64(5000 + rng.Intn(100_000))
	}
	if rng.Intn(2) == 0 {
		plan.DerateAtCycle = int64(3000 + rng.Intn(50_000))
		plan.RefreshDivisor = 2
	}
	if rng.Intn(2) == 0 {
		plan.ReadErrorRate = 0.002
		plan.RetryLimit = 3
		plan.RetryBackoff = 16
	}
	if rng.Intn(2) == 0 {
		plan.StallRate = 0.002
		plan.StallMaxCycles = 40
	}
	if !plan.Enabled() {
		return nil
	}
	return plan
}

// TestCheckerSoak attaches the invariant checker to randomized runs —
// fault plans included — and requires a silent checker on every one.
func TestCheckerSoak(t *testing.T) {
	configs := envInt("CHECK_SOAK_CONFIGS", 30)
	if testing.Short() {
		configs = 8
	}
	for i := 0; i < configs; i++ {
		i := i
		t.Run(fmt.Sprintf("cfg%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + i*7919)))
			cfg := randomConfig(rng)
			if rng.Intn(2) == 0 {
				cfg.Faults = randomPlan(rng, cfg, uint64(i+1))
			}
			speed, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), cfg.Freq)
			if err != nil {
				t.Fatal(err)
			}
			set := check.New(check.Options{
				Speed:           speed,
				Policy:          cfg.Policy,
				RefreshPostpone: cfg.RefreshPostpone,
				MaxViolations:   8,
			})
			cfg.NewProbe = set.Channel
			sys, err := memsys.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reqs := randomReqs(rng, 250, speed.REFI)
			if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
				t.Fatal(err)
			}
			if err := set.Err(); err != nil {
				for _, v := range set.Violations() {
					t.Logf("%s", v)
				}
				t.Fatalf("config %+v: %v", cfg, err)
			}
		})
	}
}

// TestDifferentialOracle replays randomized fault-free runs through all
// four dispatch strategies and requires bit-identical command streams and
// results (see Differential).
func TestDifferentialOracle(t *testing.T) {
	configs := envInt("CHECK_ORACLE_CONFIGS", 100)
	if testing.Short() {
		configs = 15
	}
	for i := 0; i < configs; i++ {
		i := i
		t.Run(fmt.Sprintf("cfg%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xD1FF + i*104_729)))
			cfg := randomConfig(rng)
			speed, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), cfg.Freq)
			if err != nil {
				t.Fatal(err)
			}
			reqs := randomReqs(rng, 60+rng.Intn(180), speed.REFI)
			if err := check.Differential(cfg, reqs); err != nil {
				t.Fatalf("config %+v: %v", cfg, err)
			}
		})
	}
}

// TestDifferentialRejectsFaultPlans pins the oracle's fault-plan guard: a
// dropout's dispatch-clock trigger is only burst-exact within one strategy,
// so faulted runs must be refused rather than mis-compared.
func TestDifferentialRejectsFaultPlans(t *testing.T) {
	cfg := memsys.PaperConfig(2, 400*units.MHz)
	cfg.Faults = &fault.Plan{Seed: 1, StallRate: 0.1, StallMaxCycles: 10}
	if err := check.Differential(cfg, []memsys.Request{{Bytes: 64}}); err == nil {
		t.Fatal("expected the fault-plan rejection")
	}
}
