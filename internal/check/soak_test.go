// Randomized soaks: the invariant checker rides along on randomized
// configurations and workloads (including fault plans) and must stay
// silent, and the differential oracle proves the four dispatch strategies
// emit identical command streams on randomized fault-free runs. Config
// counts scale with CHECK_SOAK_CONFIGS / CHECK_ORACLE_CONFIGS for the CI
// soak gate.
package check_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/memsys"
	"repro/internal/units"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// randomConfig draws one subsystem configuration across the simulator's
// feature matrix: every registered scheduling policy and datasheet, with
// the clock drawn from the chosen device's legal list.
func randomConfig(rng *rand.Rand) memsys.Config {
	devices := dram.Devices()
	dev := devices[rng.Intn(len(devices))]
	policies := controller.Policies()
	cfg := memsys.Config{
		Channels:      []int{1, 2, 4}[rng.Intn(3)],
		Freq:          dev.Frequencies[rng.Intn(len(dev.Frequencies))],
		Geometry:      dev.Geometry,
		Timing:        dev.Timing,
		Policy:        policies[rng.Intn(len(policies))],
		PowerDown:     rng.Intn(4) != 0,
		Parallel:      rng.Intn(2) == 0,
		ForceParallel: true,
	}
	if rng.Intn(3) == 0 {
		cfg.WriteBufferDepth = 1 << rng.Intn(5)
	}
	if rng.Intn(3) == 0 {
		cfg.QueueDepth = 1 + rng.Intn(8)
	}
	if rng.Intn(2) == 0 {
		cfg.RefreshPostpone = rng.Intn(9)
	}
	if rng.Intn(3) == 0 {
		cfg.PrechargeOnIdle = true
	}
	if rng.Intn(3) == 0 {
		burst := int64(dev.Geometry.WordBits/8) * int64(dev.Geometry.BurstLength)
		cfg.InterleaveGranularity = burst << rng.Intn(4)
	}
	return cfg
}

// randomReqs draws a workload with saturated stretches, short stalls and
// long idle gaps (power-down, self-refresh, refresh catch-up).
func randomReqs(rng *rand.Rand, n int, refi int64) []memsys.Request {
	reqs := make([]memsys.Request, 0, n)
	var arrival int64
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			arrival += refi * int64(1+rng.Intn(6)) // long idle
		case 1, 2:
			arrival += int64(rng.Intn(800)) // short gap
		}
		reqs = append(reqs, memsys.Request{
			Write:   rng.Intn(3) == 0,
			Addr:    int64(rng.Intn(1 << 22)),
			Bytes:   int64(1 + rng.Intn(4096)),
			Arrival: arrival,
			Stream:  rng.Intn(4),
		})
	}
	return reqs
}

// randomPlan draws a fault plan (possibly disabled) legal for the config.
func randomPlan(rng *rand.Rand, cfg memsys.Config, seed uint64) *fault.Plan {
	plan := &fault.Plan{Seed: seed}
	if cfg.Channels >= 2 && rng.Intn(3) == 0 {
		plan.DropChannel = rng.Intn(cfg.Channels)
		plan.DropAtCycle = int64(5000 + rng.Intn(100_000))
	}
	if rng.Intn(2) == 0 {
		plan.DerateAtCycle = int64(3000 + rng.Intn(50_000))
		plan.RefreshDivisor = 2
	}
	if rng.Intn(2) == 0 {
		plan.ReadErrorRate = 0.002
		plan.RetryLimit = 3
		plan.RetryBackoff = 16
	}
	if rng.Intn(2) == 0 {
		plan.StallRate = 0.002
		plan.StallMaxCycles = 40
	}
	if !plan.Enabled() {
		return nil
	}
	return plan
}

// TestCheckerSoak attaches the invariant checker to randomized runs —
// fault plans included — and requires a silent checker on every one.
func TestCheckerSoak(t *testing.T) {
	configs := envInt("CHECK_SOAK_CONFIGS", 30)
	if testing.Short() {
		configs = 8
	}
	for i := 0; i < configs; i++ {
		i := i
		t.Run(fmt.Sprintf("cfg%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + i*7919)))
			cfg := randomConfig(rng)
			if rng.Intn(2) == 0 {
				cfg.Faults = randomPlan(rng, cfg, uint64(i+1))
			}
			speed, err := dram.Resolve(cfg.Geometry, cfg.Timing, cfg.Freq)
			if err != nil {
				t.Fatal(err)
			}
			set := check.New(check.Options{
				Speed:           speed,
				Policy:          cfg.Policy,
				RefreshPostpone: cfg.RefreshPostpone,
				MaxViolations:   8,
			})
			cfg.NewProbe = set.Channel
			sys, err := memsys.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reqs := randomReqs(rng, 250, speed.REFI)
			if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
				t.Fatal(err)
			}
			if err := set.Err(); err != nil {
				for _, v := range set.Violations() {
					t.Logf("%s", v)
				}
				t.Fatalf("config %+v: %v", cfg, err)
			}
		})
	}
}

// TestDifferentialOracle replays randomized fault-free runs through all
// four dispatch strategies and requires bit-identical command streams and
// results (see Differential).
func TestDifferentialOracle(t *testing.T) {
	configs := envInt("CHECK_ORACLE_CONFIGS", 100)
	if testing.Short() {
		configs = 15
	}
	for i := 0; i < configs; i++ {
		i := i
		t.Run(fmt.Sprintf("cfg%03d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xD1FF + i*104_729)))
			cfg := randomConfig(rng)
			speed, err := dram.Resolve(cfg.Geometry, cfg.Timing, cfg.Freq)
			if err != nil {
				t.Fatal(err)
			}
			reqs := randomReqs(rng, 60+rng.Intn(180), speed.REFI)
			if err := check.Differential(cfg, reqs); err != nil {
				t.Fatalf("config %+v: %v", cfg, err)
			}
		})
	}
}

// TestPolicyDeviceMatrix is the exhaustive policy-safety gate: every
// registered scheduling policy on every registered datasheet runs a mixed
// workload (multi-client streams included) with the invariant checker
// attached, then replays the same workload through the differential oracle.
// A policy is only admissible if its command stream satisfies the device's
// timing constraints AND all four dispatch strategies reproduce it
// bit-identically — which is exactly the coalesce-safety contract the
// fast-path guard enforces. CHECK_MATRIX_REQS scales the workload for the
// CI gate.
func TestPolicyDeviceMatrix(t *testing.T) {
	n := envInt("CHECK_MATRIX_REQS", 200)
	if testing.Short() {
		n = 60
	}
	for _, policy := range controller.Policies() {
		for _, dev := range dram.Devices() {
			policy, dev := policy, dev
			t.Run(fmt.Sprintf("%s/%s", policy, dev.Name), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(policy)<<8 ^ int64(len(dev.Name))))
				cfg := memsys.Config{
					Channels: 4,
					Freq:     dev.Frequencies[len(dev.Frequencies)-1],
					Geometry: dev.Geometry,
					Timing:   dev.Timing,
					Policy:   policy,
					// A reorder window so FR-FCFS actually reorders even
					// beyond its own default, and enough clients that the
					// partition table fills every group.
					QueueDepth: 8,
					PowerDown:  true,
				}
				speed, err := dram.Resolve(cfg.Geometry, cfg.Timing, cfg.Freq)
				if err != nil {
					t.Fatal(err)
				}
				reqs := randomReqs(rng, n, speed.REFI)

				// Arm 1: the invariant checker must stay silent.
				checked := cfg
				set := check.New(check.Options{
					Speed:         speed,
					Policy:        cfg.Policy,
					MaxViolations: 8,
				})
				checked.NewProbe = set.Channel
				sys, err := memsys.New(checked)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
					t.Fatal(err)
				}
				if err := set.Err(); err != nil {
					for _, v := range set.Violations() {
						t.Logf("%s", v)
					}
					t.Fatalf("%s on %s: %v", policy, dev.Name, err)
				}

				// Arm 2: all four dispatch strategies must agree.
				if err := check.Differential(cfg, reqs); err != nil {
					t.Fatalf("%s on %s: %v", policy, dev.Name, err)
				}
			})
		}
	}
}

// TestDifferentialRejectsFaultPlans pins the oracle's fault-plan guard: a
// dropout's dispatch-clock trigger is only burst-exact within one strategy,
// so faulted runs must be refused rather than mis-compared.
func TestDifferentialRejectsFaultPlans(t *testing.T) {
	cfg := memsys.PaperConfig(2, 400*units.MHz)
	cfg.Faults = &fault.Plan{Seed: 1, StallRate: 0.1, StallMaxCycles: 10}
	if err := check.Differential(cfg, []memsys.Request{{Bytes: 64}}); err == nil {
		t.Fatal("expected the fault-plan rejection")
	}
}
