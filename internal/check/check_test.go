package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/probe"
	"repro/internal/units"
)

func speed400(t *testing.T) dram.Speed {
	t.Helper()
	s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newSink builds a single-channel checker and returns the sink plus the set.
func newSink(t *testing.T, opt check.Options) (probe.Sink, *check.Set) {
	t.Helper()
	set := check.New(opt)
	return set.Channel(0), set
}

// rules collects the distinct violated rule names.
func rules(set *check.Set) map[string]int {
	m := map[string]int{}
	for _, v := range set.Violations() {
		m[v.Rule]++
	}
	return m
}

// act emits a well-formed ACT issued at t.
func act(s dram.Speed, bank, row int32, t int64) probe.Event {
	return probe.Event{Kind: probe.KindActivate, Bank: bank, Row: row, At: t, End: t + s.RCD}
}

// rd emits a well-formed RD issued at t.
func rd(s dram.Speed, bank, row int32, t int64) probe.Event {
	return probe.Event{Kind: probe.KindRead, Bank: bank, Row: row,
		At: t, End: t + s.CL + s.BurstCycles, Aux: s.BurstCycles}
}

// wr emits a well-formed WR issued at t.
func wr(s dram.Speed, bank, row int32, t int64) probe.Event {
	return probe.Event{Kind: probe.KindWrite, Bank: bank, Row: row,
		At: t, End: t + s.CWL + s.BurstCycles, Aux: s.BurstCycles}
}

func TestCleanStreamPasses(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	t0 := int64(0)
	sink.Emit(act(s, 0, 3, t0))
	sink.Emit(rd(s, 0, 3, t0+s.RCD))
	sink.Emit(rd(s, 0, 3, t0+s.RCD+s.BurstCycles))
	if err := set.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
}

func TestRuleTRCD(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(rd(s, 0, 1, s.RCD-1)) // one cycle early
	if got := rules(set); got["tRCD"] == 0 {
		t.Fatalf("tRCD not flagged: %v", set.Violations())
	}
}

func TestRuleTRPAndTRASOnPrecharge(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	// PRE before tRAS elapses.
	pre := probe.Event{Kind: probe.KindPrecharge, Bank: 0, At: s.RAS - 2, End: s.RAS - 2 + s.RP}
	sink.Emit(pre)
	// ACT again inside the precharge window.
	sink.Emit(act(s, 0, 2, s.RAS-1))
	got := rules(set)
	if got["tRAS"] == 0 || got["tRP"] == 0 {
		t.Fatalf("want tRAS and tRP, got %v", set.Violations())
	}
}

func TestRuleTRC(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(probe.Event{Kind: probe.KindPrecharge, Bank: 0, At: s.RAS, End: s.RAS + s.RP})
	// tRP is satisfied but tRC is not when RAS+RP marches ahead of RC only
	// on some devices; force it by activating right at preEnd-1... instead
	// issue the second ACT at RAS+RP when RC > RAS+RP is impossible on the
	// default device, so synthesize with a violating issue directly:
	early := s.RC - 1
	if early <= s.RAS+s.RP {
		// Default device has RC == RAS+RP; fabricate a bank that skipped
		// its precharge bookkeeping by issuing ACT out of thin air after
		// an ACT only — no PRE — which trips act-open-bank and tRC both.
		sink2, set2 := newSink(t, check.Options{Speed: s})
		sink2.Emit(act(s, 1, 1, 0))
		sink2.Emit(act(s, 1, 2, early))
		if got := rules(set2); got["tRC"] == 0 {
			t.Fatalf("tRC not flagged: %v", set2.Violations())
		}
		return
	}
	sink.Emit(act(s, 0, 2, s.RAS+s.RP))
	if got := rules(set); got["tRC"] == 0 {
		t.Fatalf("tRC not flagged: %v", set.Violations())
	}
}

func TestRuleTRRDAndTFAW(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(act(s, 1, 1, s.RRD-1)) // tRRD violation
	if got := rules(set); got["tRRD"] == 0 {
		t.Fatalf("tRRD not flagged: %v", set.Violations())
	}

	// Widen FAW past every per-bank window so the fifth ACT below is legal
	// on all counts except the four-activate window.
	s2 := s
	s2.FAW = 2 * (s.RAS + s.RP)
	sink2, set2 := newSink(t, check.Options{Speed: s2})
	// Four ACTs at the tRRD pace, then a fifth inside the tFAW window.
	at := int64(0)
	for i := int32(0); i < 4; i++ {
		sink2.Emit(act(s2, i%4, 1, at))
		at += s2.RRD
	}
	sink2.Emit(probe.Event{Kind: probe.KindPrecharge, Bank: 0, At: s2.RAS, End: s2.RAS + s2.RP})
	fifth := s2.FAW - 2
	if fifth < s2.RAS+s2.RP {
		t.Fatalf("scenario broken: fifth ACT at %d inside per-bank windows ending %d", fifth, s2.RAS+s2.RP)
	}
	sink2.Emit(act(s2, 0, 2, fifth))
	if got := rules(set2); got["tFAW"] == 0 {
		t.Fatalf("tFAW not flagged: %v", set2.Violations())
	}
}

func TestRuleBusCollisionAndTurnaround(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(rd(s, 0, 1, s.RCD))
	sink.Emit(rd(s, 0, 1, s.RCD+1)) // data overlaps the previous burst
	if got := rules(set); got["bus-collision"] == 0 {
		t.Fatalf("bus-collision not flagged: %v", set.Violations())
	}

	sink2, set2 := newSink(t, check.Options{Speed: s})
	sink2.Emit(act(s, 0, 1, 0))
	t0 := s.RCD
	sink2.Emit(wr(s, 0, 1, t0))
	wrEnd := t0 + s.CWL + s.BurstCycles
	// A read whose data starts exactly at the write's last beat boundary:
	// same-cycle handoff needs the turnaround bubble. Issue late enough
	// that tWTR is satisfied, isolating the turnaround rule… on the
	// default device WTR pushes the command past the bubble window, so
	// check whichever of the two bus rules fires.
	issue := wrEnd - s.CL // data starts exactly at wrEnd: no bubble
	sink2.Emit(rd(s, 0, 1, issue))
	got := rules(set2)
	if got["bus-turnaround"] == 0 && got["tWTR"] == 0 {
		t.Fatalf("turnaround/tWTR not flagged: %v", set2.Violations())
	}
}

func TestRuleRefreshLateAndTRFC(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	ref := func(t0 int64) probe.Event {
		return probe.Event{Kind: probe.KindRefresh, Bank: -1, At: t0, End: t0 + s.RFC}
	}
	sink.Emit(ref(0))
	sink.Emit(ref(s.RFC - 1)) // inside tRFC
	sink.Emit(ref(s.RFC - 1 + 10*s.REFI))
	got := rules(set)
	if got["tRFC"] == 0 {
		t.Fatalf("tRFC not flagged: %v", set.Violations())
	}
	if got["refresh-late"] == 0 {
		t.Fatalf("refresh-late not flagged: %v", set.Violations())
	}
}

func TestRuleRefreshLateUnderDerate(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	ref := func(t0 int64) probe.Event {
		return probe.Event{Kind: probe.KindRefresh, Bank: -1, At: t0, End: t0 + s.RFC}
	}
	derated := s.REFI / 4
	sink.Emit(ref(0))
	sink.Emit(probe.Event{Kind: probe.KindThermalDerate, Bank: -1, At: s.REFI, End: s.REFI, Aux: derated})
	// 9 derated intervals from the derate point is the new bound; exceed it.
	sink.Emit(ref(s.REFI + 10*derated))
	if got := rules(set); got["refresh-late"] == 0 {
		t.Fatalf("derated refresh-late not flagged: %v", set.Violations())
	}
}

func TestRuleWakePenalties(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(rd(s, 0, 1, s.RCD))
	end := s.RCD + s.CL + s.BurstCycles
	sink.Emit(probe.Event{Kind: probe.KindPrecharge, Bank: 0, At: end + s.WR, End: end + s.WR + s.RP})
	pdEnd := end + 100
	sink.Emit(probe.Event{Kind: probe.KindPowerDown, Bank: -1, At: pdEnd - 50, End: pdEnd, Aux: 50})
	if s.XP > 1 {
		sink.Emit(act(s, 0, 2, pdEnd+s.XP-1)) // inside the tXP exit window
		if got := rules(set); got["tXP"] == 0 {
			t.Fatalf("tXP not flagged: %v", set.Violations())
		}
	}

	sink2, set2 := newSink(t, check.Options{Speed: s})
	srEnd := int64(100_000)
	sink2.Emit(probe.Event{Kind: probe.KindSelfRefresh, Bank: -1, At: srEnd - 50_000, End: srEnd, Aux: 50_000})
	sink2.Emit(act(s, 0, 1, srEnd+s.XSR-1))
	if got := rules(set2); got["tXSR"] == 0 {
		t.Fatalf("tXSR not flagged: %v", set2.Violations())
	}
}

func TestRuleSelfRefreshOpenBank(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 0))
	sink.Emit(rd(s, 0, 1, s.RCD))
	end := s.RCD + s.CL + s.BurstCycles
	// Self-refresh entered without a precharge: the tracked bank is open.
	sink.Emit(probe.Event{Kind: probe.KindSelfRefresh, Bank: -1, At: end + 1, End: end + 100_000, Aux: 100_000 - end - 1})
	if got := rules(set); got["sr-open-bank"] == 0 {
		t.Fatalf("sr-open-bank not flagged: %v", set.Violations())
	}
}

func TestRuleCmdBusSerialization(t *testing.T) {
	s := speed400(t)
	sink, set := newSink(t, check.Options{Speed: s})
	sink.Emit(act(s, 0, 1, 10))
	sink.Emit(act(s, 1, 1, 10)) // same command-bus cycle
	if got := rules(set); got["cmd-bus"] == 0 {
		t.Fatalf("cmd-bus not flagged: %v", set.Violations())
	}
}

func TestViolationCapAndErr(t *testing.T) {
	s := speed400(t)
	set := check.New(check.Options{Speed: s, MaxViolations: 2})
	sink := set.Channel(0)
	for i := 0; i < 5; i++ {
		sink.Emit(rd(s, 0, 1, int64(100*i))) // bank never opened: rw-closed-bank each time
	}
	if got := len(set.Violations()); got != 2 {
		t.Fatalf("violations recorded = %d, want capped 2", got)
	}
	if set.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", set.Dropped())
	}
	err := set.Err()
	if err == nil || !strings.Contains(err.Error(), "rw-closed-bank") {
		t.Fatalf("Err() = %v", err)
	}
}

// The checker must pass a real controller driven over a representative mix:
// row hits, conflicts, both directions, refresh catch-up, power-down.
func TestCheckerAgainstLiveController(t *testing.T) {
	s := speed400(t)
	for _, policy := range []controller.PagePolicy{controller.OpenPage, controller.ClosedPage} {
		set := check.New(check.Options{Speed: s, Policy: policy})
		c, err := controller.New(controller.Config{
			Speed: s, Policy: policy, PowerDown: true, Probe: set.Channel(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		var arrival int64
		for i := 0; i < 4000; i++ {
			write := i%3 == 0
			loc := c.Decode(int64(i) * 16 * 7)
			end := c.Access(write, loc, arrival)
			if i%97 == 0 {
				arrival = end + int64(i%5)*400 // sprinkle idle gaps
			}
		}
		c.Flush()
		if err := set.Err(); err != nil {
			t.Errorf("policy %v: %v (total %d)", policy, err, len(set.Violations()))
			for i, v := range set.Violations() {
				if i >= 5 {
					break
				}
				t.Logf("  %s", v)
			}
		}
	}
}
