// Regression tests pinned to the minimized repros of the protocol bugs the
// invariant checker surfaced in the controller's idle/wake machinery. Each
// scenario replays the exact command sequence that used to violate a device
// constraint and asserts the stream is now clean (plus the bookkeeping the
// fix introduced). The checker is attached as the controller's probe, so a
// reintroduced bug fails here with the violated rule named.
package check_test

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/controller"
	"repro/internal/mapping"
)

// checkedCtl builds a controller observed by a fresh checker.
func checkedCtl(t *testing.T, mutate func(*controller.Config)) (*controller.Controller, *check.Set) {
	t.Helper()
	cfg := controller.Config{
		Speed: speed400(t), Mux: mapping.RBC, Policy: controller.OpenPage, PowerDown: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	set := check.New(check.Options{
		Speed:           cfg.Speed,
		Policy:          cfg.Policy,
		RefreshPostpone: cfg.RefreshPostpone,
		RefreshDisabled: cfg.RefreshDisabled,
	})
	cfg.Probe = set.Channel(0)
	c, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, set
}

func mustClean(t *testing.T, set *check.Set) {
	t.Helper()
	if err := set.Err(); err != nil {
		t.Fatalf("%v", err)
	}
}

// Catch-up refreshes after a long power-down gap used to issue back to back
// (one command-bus cycle apart): the refresh path consulted only the open
// banks' precharge floors and ignored actReady, so the second and third REF
// landed inside the previous one's tRFC window.
func TestRegressionCatchUpRefreshSpacing(t *testing.T) {
	c, set := checkedCtl(t, nil)
	s := c.Config().Speed
	c.Access(false, c.Decode(0), 0)
	c.Access(false, c.Decode(64), 3*s.REFI+200) // power-down gap, 3 refreshes due
	c.Flush()
	mustClean(t, set)
	if got := c.Stats().Refreshes; got != 3 {
		t.Errorf("Refreshes = %d, want 3", got)
	}
	if got := c.Stats().PowerDownExits; got != 1 {
		t.Errorf("PowerDownExits = %d, want 1", got)
	}
}

// Without power-down, refreshes due inside an idle gap used to pile up and
// issue back to back at the next access; they are now paced at their due
// times through the gap, keeping both tRFC and the refresh-interval bound.
func TestRegressionIdleRefreshPacingNoPowerDown(t *testing.T) {
	c, set := checkedCtl(t, func(cfg *controller.Config) { cfg.PowerDown = false })
	s := c.Config().Speed
	c.Access(false, c.Decode(0), 0)
	c.Access(false, c.Decode(64), 20*s.REFI)
	c.Flush()
	mustClean(t, set)
	if got := c.Stats().Refreshes; got < 19 || got > 21 {
		t.Errorf("Refreshes = %d, want ~20 (paced through the gap)", got)
	}
}

// Under the closed-page policy a refresh issued right after a short idle gap
// used to land inside the previous access's auto-precharge window (tRP): the
// refresh path never consulted the closed banks' actReady floors.
func TestRegressionRefreshDuringAutoPrecharge(t *testing.T) {
	c, set := checkedCtl(t, func(cfg *controller.Config) { cfg.Policy = controller.ClosedPage })
	s := c.Config().Speed
	end := c.Access(false, c.Decode(0), s.REFI-2) // auto-precharge outlives the data
	c.Access(false, c.Decode(64), end+2)          // wake with a refresh due
	c.Flush()
	mustClean(t, set)
	if got := c.Stats().Refreshes; got < 1 {
		t.Errorf("Refreshes = %d, want >= 1", got)
	}
}

// PrechargeOnIdle used to close banks at the first idle cycle even when a
// write's recovery window (tWR) was still running, and could fire even when
// the precharge would not complete before the next arrival.
func TestRegressionIdlePrechargeHonorsWriteRecovery(t *testing.T) {
	c, set := checkedCtl(t, func(cfg *controller.Config) { cfg.PrechargeOnIdle = true })
	end := c.Access(true, c.Decode(0), 0)
	c.Access(false, c.Decode(0), end+30) // idle gap right inside write recovery
	c.Flush()
	mustClean(t, set)
	st := c.Stats()
	if st.Precharges < 1 {
		t.Errorf("Precharges = %d, want >= 1 (idle precharge)", st.Precharges)
	}
	if st.PrechargePDCycles == 0 {
		t.Error("PrechargePDCycles = 0, want precharged power-down residency")
	}
}

// Postponed-refresh debt served during a power-down gap used to be charged
// as a single fused span (tRP+tRFC in one event, unconditionally paying the
// precharge), emitting a malformed REF with no PRE and ignoring the write
// recovery still in flight at the gap's start.
func TestRegressionPostponedDebtCatchUp(t *testing.T) {
	c, set := checkedCtl(t, func(cfg *controller.Config) { cfg.RefreshPostpone = 8 })
	s := c.Config().Speed
	var end int64
	for i := int64(0); i*2 < s.REFI+400; i++ { // stream writes past tREFI: debt accrues
		end = c.Access(true, c.Decode(i*16), 0)
	}
	c.Access(false, c.Decode(0), end+6000) // gap long enough to serve the debt
	c.Flush()
	mustClean(t, set)
	if got := c.Stats().Refreshes; got < 1 {
		t.Errorf("Refreshes = %d, want the postponed refresh served in the gap", got)
	}
}

// Self-refresh entry with a row still open used to power the banks down
// without a precharge: no PRE command, no tRP, and the precharge count
// stayed flat. Entry now closes the array first.
func TestRegressionSelfRefreshEntryPrecharges(t *testing.T) {
	c, set := checkedCtl(t, nil)
	s := c.Config().Speed
	end := c.Access(false, c.Decode(0), 0)
	c.Access(false, c.Decode(64), end+5*s.REFI) // beyond the self-refresh threshold
	c.Flush()
	mustClean(t, set)
	st := c.Stats()
	if st.SelfRefreshEntries != 1 {
		t.Errorf("SelfRefreshEntries = %d, want 1", st.SelfRefreshEntries)
	}
	if st.Precharges < 1 {
		t.Errorf("Precharges = %d, want >= 1 (precharge-all before entry)", st.Precharges)
	}
}

// AccessRun on a burst-unaligned local address used to spin forever: the
// coalesced walk computed zero same-row bursts and made no progress. The
// unaligned case now takes the per-burst path and must match it exactly.
func TestRegressionUnalignedRunTerminates(t *testing.T) {
	cfg := controller.Config{
		Speed: speed400(t), Mux: mapping.RBC, Policy: controller.OpenPage, PowerDown: true,
	}
	c, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int64, 1)
	go func() { done <- c.AccessRun(false, 8, 3, 0) }()
	var end int64
	select {
	case end = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AccessRun hung on a burst-unaligned address")
	}

	ref, err := controller.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	burstBytes := cfg.Speed.Geometry.BurstBytes()
	var want int64
	for i := int64(0); i < 3; i++ {
		if e := ref.AccessAddr(false, 8+i*burstBytes, 0); e > want {
			want = e
		}
	}
	if end != want {
		t.Errorf("unaligned AccessRun end = %d, per-burst reference = %d", end, want)
	}
}
