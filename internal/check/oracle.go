// The differential oracle replays one request stream through the
// simulator's independent dispatch strategies — serial per-burst (the
// reference), serial coalesced, parallel per-burst and parallel coalesced —
// and diffs the full per-channel command streams, not just the end
// statistics. The coalesced arms run with SynthCoalescedEvents so the fast
// path stays engaged while still emitting its arithmetic reconstruction of
// the per-burst events; any divergence in an event field, an event count or
// a result field is a bug in one of the paths.
package check

import (
	"fmt"
	"reflect"

	"repro/internal/memsys"
	"repro/internal/probe"
)

// Variant names one dispatch strategy of the oracle.
type Variant struct {
	Name      string
	Parallel  bool
	Coalesced bool
}

// Variants is the oracle's strategy matrix: the serial per-burst reference
// plus the three paths that must reproduce it exactly.
var Variants = []Variant{
	{Name: "serial/per-burst", Parallel: false, Coalesced: false},
	{Name: "serial/coalesced", Parallel: false, Coalesced: true},
	{Name: "parallel/per-burst", Parallel: true, Coalesced: false},
	{Name: "parallel/coalesced", Parallel: true, Coalesced: true},
}

// arm is one executed oracle strategy: its event streams and result.
type arm struct {
	recs []*probe.Recorder
	res  memsys.Result
}

// Differential runs reqs through every Variant of cfg and returns an error
// describing the first divergence from the serial per-burst reference —
// the first differing event (with index and both values), a mismatched
// per-channel event count, or a result-field difference. cfg.Parallel,
// cfg.NoCoalesce, cfg.SynthCoalescedEvents and cfg.NewProbe are owned by
// the oracle. Fault plans are rejected: a dropout's dispatch-clock trigger
// is burst-exact only within one dispatch strategy, so faulted runs are
// compared through the separate checker soak instead.
func Differential(cfg memsys.Config, reqs []memsys.Request) error {
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		return fmt.Errorf("check: differential oracle does not support fault plans")
	}
	ref, err := runArm(cfg, Variants[0], reqs)
	if err != nil {
		return err
	}
	for _, v := range Variants[1:] {
		got, err := runArm(cfg, v, reqs)
		if err != nil {
			return err
		}
		if err := diffArms(Variants[0].Name, ref, v.Name, got); err != nil {
			return err
		}
	}
	return nil
}

func runArm(cfg memsys.Config, v Variant, reqs []memsys.Request) (arm, error) {
	c := cfg
	c.Parallel = v.Parallel
	c.NoCoalesce = !v.Coalesced
	c.SynthCoalescedEvents = v.Coalesced
	recs := make([]*probe.Recorder, c.Channels)
	c.NewProbe = func(i int) probe.Sink {
		recs[i] = &probe.Recorder{}
		return recs[i]
	}
	sys, err := memsys.New(c)
	if err != nil {
		return arm{}, fmt.Errorf("check: %s: %w", v.Name, err)
	}
	res, err := sys.Run(memsys.NewSliceSource(reqs))
	if err != nil {
		return arm{}, fmt.Errorf("check: %s: %w", v.Name, err)
	}
	return arm{recs: recs, res: res}, nil
}

// diffArms compares one arm to the reference, event stream first (the
// richer signal), then the aggregate result.
func diffArms(refName string, ref arm, name string, got arm) error {
	for ch := range ref.recs {
		re, ge := ref.recs[ch].Events, got.recs[ch].Events
		n := len(re)
		if len(ge) < n {
			n = len(ge)
		}
		for i := 0; i < n; i++ {
			if re[i] != ge[i] {
				return fmt.Errorf("check: command streams diverge: ch%d event %d: %s=%+v, %s=%+v",
					ch, i, refName, re[i], name, ge[i])
			}
		}
		if len(re) != len(ge) {
			return fmt.Errorf("check: command streams diverge: ch%d has %d events under %s, %d under %s",
				ch, len(re), refName, len(ge), name)
		}
	}
	if !reflect.DeepEqual(ref.res, got.res) {
		return fmt.Errorf("check: results diverge: %s=%+v, %s=%+v", refName, ref.res, name, got.res)
	}
	return nil
}
