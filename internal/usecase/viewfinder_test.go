package usecase

import (
	"testing"

	"repro/internal/video"
)

func TestViewfinderBetweenPlaybackAndRecording(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	vf, err := NewViewfinder(prof.Format, DefaultViewfinderParams())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(prof, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPlayback(prof, DefaultPlaybackParams())
	if err != nil {
		t.Fatal(err)
	}
	// The viewfinder is far lighter than recording (no encoder, no
	// border, no storage) but — perhaps surprisingly — heavier than
	// playback: four full passes over 16 bpp raw sensor frames outweigh
	// decode's 12 bpp reference traffic.
	if vf.FrameBits() >= rec.FrameBits()/3 {
		t.Errorf("viewfinder (%v) should be well below recording (%v)",
			vf.FrameBits(), rec.FrameBits())
	}
	if vf.FrameBits() <= pb.FrameBits() {
		t.Errorf("viewfinder (%v) expected above playback (%v): raw sensor passes dominate",
			vf.FrameBits(), pb.FrameBits())
	}
	// ~0.4 GB/s at 720p30: camera 16bpp x ~4 passes + display.
	if got := vf.Bandwidth().GBps(); got < 0.2 || got > 0.8 {
		t.Errorf("viewfinder bandwidth = %.2f GB/s, want ~0.4", got)
	}
}

func TestViewfinderStageStructure(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	vf, err := NewViewfinder(prof.Format, DefaultViewfinderParams())
	if err != nil {
		t.Fatal(err)
	}
	if s := vf.Stages[VfCameraIF]; s.ReadBits != 0 || s.WriteBits == 0 {
		t.Errorf("camera = %+v, want write-only", s)
	}
	if s := vf.Stages[VfDisplayCtrl]; s.WriteBits != 0 || s.ReadBits == 0 {
		t.Errorf("display = %+v, want read-only", s)
	}
	var sum int64
	for _, s := range vf.Stages {
		sum += int64(s.TotalBits())
	}
	if sum != int64(vf.FrameBits()) {
		t.Error("stage totals inconsistent")
	}
	if vf.BitsPerSecond() != vf.FrameBits()*30 {
		t.Error("per-second total inconsistent")
	}
}

func TestViewfinderValidate(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	p := DefaultViewfinderParams()
	p.Display = video.Display{}
	if _, err := NewViewfinder(prof.Format, p); err == nil {
		t.Error("expected display error")
	}
	if _, err := NewViewfinder(video.FrameFormat{}, DefaultViewfinderParams()); err == nil {
		t.Error("expected format error")
	}
}

func TestViewfinderStageIDString(t *testing.T) {
	if VfBayerToYUV.String() != "Bayer to YUV" {
		t.Errorf("String() = %q", VfBayerToYUV.String())
	}
	if got := ViewfinderStageID(99).String(); got != "ViewfinderStageID(99)" {
		t.Errorf("String() = %q", got)
	}
}
