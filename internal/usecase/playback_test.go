package usecase

import (
	"testing"

	"repro/internal/video"
)

func playbackLoad(t *testing.T, format string) PlaybackLoad {
	t.Helper()
	prof, err := video.ProfileFor(format)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewPlayback(prof, DefaultPlaybackParams())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPlaybackMuchLighterThanRecording(t *testing.T) {
	for _, format := range []string{"720p30", "1080p30"} {
		pb := playbackLoad(t, format)
		prof, _ := video.ProfileFor(format)
		rec, err := New(prof, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(rec.FrameBits()) / float64(pb.FrameBits())
		// Decoding skips the sensor chain and the factor-6 motion
		// search: expect roughly 5-10x lighter.
		if ratio < 4 || ratio > 12 {
			t.Errorf("%s: recording/playback ratio = %.1f, want 4..12", format, ratio)
		}
	}
}

func TestPlaybackStageStructure(t *testing.T) {
	l := playbackLoad(t, "720p30")
	if s := l.Stages[PbMemoryCard]; s.WriteBits != 0 || s.ReadBits == 0 {
		t.Errorf("memory card = %+v, want read-only", s)
	}
	if s := l.Stages[PbDisplayCtrl]; s.WriteBits != 0 || s.ReadBits == 0 {
		t.Errorf("display ctrl = %+v, want read-only", s)
	}
	if s := l.Stages[PbAudioDecoder]; s.WriteBits != 0 {
		t.Errorf("audio decoder = %+v, want read-only", s)
	}
	// The decoder dominates playback the way the encoder dominates
	// recording.
	dec := l.Stages[PbVideoDecoder].TotalBits()
	for _, s := range l.Stages {
		if s.Stage != PbVideoDecoder && s.TotalBits() >= dec {
			t.Errorf("stage %v (%v) exceeds decoder (%v)", s.Stage, s.TotalBits(), dec)
		}
	}
	// Demux moves the stream both ways.
	if s := l.Stages[PbDemultiplex]; s.ReadBits == 0 || s.WriteBits == 0 {
		t.Errorf("demultiplex = %+v, want read+write", s)
	}
}

func TestPlaybackTotalsConsistent(t *testing.T) {
	l := playbackLoad(t, "1080p30")
	var sum int64
	for _, s := range l.Stages {
		sum += int64(s.TotalBits())
	}
	if sum != int64(l.FrameBits()) {
		t.Errorf("stage sum %d != frame total %d", sum, l.FrameBits())
	}
	if l.BitsPerSecond() != l.FrameBits()*30 {
		t.Error("per-second total inconsistent")
	}
	if l.Bandwidth() <= 0 {
		t.Error("bandwidth should be positive")
	}
}

func TestPlaybackDecoderFactorScales(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	p := DefaultPlaybackParams()
	p.DecoderFactor = 4
	heavy, err := NewPlayback(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	base := playbackLoad(t, "720p30")
	if heavy.FrameBits() <= base.FrameBits() {
		t.Error("larger decoder factor should raise the load")
	}
}

func TestPlaybackValidate(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	bad := []func(*PlaybackParams){
		func(p *PlaybackParams) { p.DecoderFactor = 0 },
		func(p *PlaybackParams) { p.ReferenceFrames = -1 },
		func(p *PlaybackParams) { p.AudioBitrate = -1 },
		func(p *PlaybackParams) { p.Display = video.Display{} },
	}
	for i, mutate := range bad {
		p := DefaultPlaybackParams()
		mutate(&p)
		if _, err := NewPlayback(prof, p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := NewPlayback(video.Profile{Level: video.Level31}, DefaultPlaybackParams()); err == nil {
		t.Error("expected format error")
	}
}

func TestPlaybackReferenceFrames(t *testing.T) {
	l := playbackLoad(t, "720p30")
	if got := l.ReferenceFrames(); got != 4 {
		t.Errorf("derived reference frames = %d, want 4", got)
	}
	prof, _ := video.ProfileFor("720p30")
	p := DefaultPlaybackParams()
	p.ReferenceFrames = 2
	l2, err := NewPlayback(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ReferenceFrames(); got != 2 {
		t.Errorf("override reference frames = %d, want 2", got)
	}
}

func TestPlaybackStageIDString(t *testing.T) {
	if PbVideoDecoder.String() != "Video decoder" {
		t.Errorf("String() = %q", PbVideoDecoder.String())
	}
	if got := PlaybackStageID(99).String(); got != "PlaybackStageID(99)" {
		t.Errorf("String() = %q", got)
	}
}
