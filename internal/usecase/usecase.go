// Package usecase models the memory load of the paper's video-recording use
// case (Fig. 1 and Table I): a camera image-processing chain feeding an
// H.264/AVC encoder, a 60 Hz display controller, audio capture, stream
// multiplexing and memory-card storage, all sharing one external execution
// memory behind caches.
//
// Every pipeline stage is expressed as read and write traffic to the
// execution memory, in bits per frame for the image stages and bits per
// second for the bitstream stages, exactly as the paper's Table I tabulates
// them. The cache is assumed large enough that only this traffic misses.
package usecase

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/video"
)

// Params collects the tunable constants of the use case. The zero value is
// not useful; start from DefaultParams.
type Params struct {
	// StabilizationBorder is the linear capture margin for video
	// stabilization; the paper uses 1.2 (a 20 % border on each axis, so
	// the sensor frame has 1.44x the pixels of the output frame).
	StabilizationBorder float64
	// DigizoomFactor z >= 1 shrinks the post-processing read window to
	// N/z^2 pixels. The paper's Table I uses z = 1 (no zoom).
	DigizoomFactor float64
	// EncoderFactor is the implementation-dependent constant factor of
	// the video encoder's reference-frame traffic; the paper estimates 6.
	EncoderFactor int
	// ReferenceFrames is the number of H.264 reference frames kept in
	// execution memory. Zero means "derive from the level's DPB limit,
	// capped at PaperReferenceFrames".
	ReferenceFrames int
	// AudioBitrate is the captured audio stream rate.
	AudioBitrate units.Bits
	// Display receives the scaled preview stream.
	Display video.Display
}

// PaperReferenceFrames is the reference-frame count that reproduces every
// bandwidth anchor in the paper's prose (1.9 GB/s @720p30, 4.3 GB/s @1080p30,
// the 2.2x ratio between them, and 8.6 GB/s @1080p60). The H.264 DPB limits
// at the evaluated levels allow 4-5 frames; 4 is the unique consistent value.
const PaperReferenceFrames = 4

// DefaultParams returns the parameters of the paper's Table I.
func DefaultParams() Params {
	return Params{
		StabilizationBorder: 1.2,
		DigizoomFactor:      1.0,
		EncoderFactor:       6,
		ReferenceFrames:     0, // derive from level
		AudioBitrate:        units.Bits(320 * 1000),
		Display:             video.WVGA,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.StabilizationBorder < 1 {
		return fmt.Errorf("usecase: stabilization border %v < 1", p.StabilizationBorder)
	}
	if p.DigizoomFactor < 1 {
		return fmt.Errorf("usecase: digizoom factor %v < 1", p.DigizoomFactor)
	}
	if p.EncoderFactor < 1 {
		return fmt.Errorf("usecase: encoder factor %d < 1", p.EncoderFactor)
	}
	if p.ReferenceFrames < 0 {
		return fmt.Errorf("usecase: negative reference frames %d", p.ReferenceFrames)
	}
	if p.AudioBitrate < 0 {
		return fmt.Errorf("usecase: negative audio bitrate %v", p.AudioBitrate)
	}
	if p.Display.Pixels() <= 0 || p.Display.RefreshHz <= 0 {
		return fmt.Errorf("usecase: invalid display %+v", p.Display)
	}
	return nil
}

// StageID identifies one processing stage of the recording chain.
type StageID int

// The stages of Fig. 1 in pipeline order. Image-processing stages come
// first, then video-coding stages.
const (
	StageCameraIF StageID = iota
	StagePreprocess
	StageBayerToYUV
	StageStabilization
	StagePostprocZoom
	StageScaleToDisplay
	StageDisplayCtrl
	StageVideoEncoder
	StageAudio
	StageMultiplex
	StageMemoryCard
	numStages
)

var stageNames = [numStages]string{
	"Camera I/F",
	"Preprocess",
	"Bayer to YUV",
	"Video stabilization",
	"Post proc & digizoom",
	"Scaling to display",
	"DisplayCtrl",
	"Video encoder",
	"Audio",
	"Multiplex",
	"Memory card",
}

// String returns the paper's name for the stage.
func (s StageID) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("StageID(%d)", int(s))
	}
	return stageNames[s]
}

// NumStages is the number of pipeline stages.
const NumStages = int(numStages)

// IsImageProcessing reports whether the stage belongs to the image-processing
// half of Fig. 1 (as opposed to video coding).
func (s StageID) IsImageProcessing() bool {
	return s >= StageCameraIF && s <= StageDisplayCtrl
}

// StageTraffic is the execution-memory traffic of one stage for one frame
// period.
type StageTraffic struct {
	Stage StageID
	// ReadBits and WriteBits are the per-frame read and write volumes.
	ReadBits  units.Bits
	WriteBits units.Bits
}

// TotalBits returns read plus write traffic, the quantity Table I reports.
func (s StageTraffic) TotalBits() units.Bits { return s.ReadBits + s.WriteBits }

// Load is the complete memory load of the use case for one frame format.
type Load struct {
	Profile video.Profile
	Params  Params
	// Stages holds per-stage traffic in Fig. 1 order; index with StageID.
	Stages [numStages]StageTraffic
}

// referenceFrames resolves the effective reference-frame count.
func referenceFrames(p Params, prof video.Profile) int {
	if p.ReferenceFrames > 0 {
		return p.ReferenceFrames
	}
	n := prof.Level.MaxDpbFrames(prof.Format)
	if n > PaperReferenceFrames {
		n = PaperReferenceFrames
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ReferenceFrames returns the reference-frame count the load was built with.
func (l Load) ReferenceFrames() int { return referenceFrames(l.Params, l.Profile) }

// New computes the memory load of recording prof with parameters p.
func New(prof video.Profile, p Params) (Load, error) {
	if err := p.Validate(); err != nil {
		return Load{}, err
	}
	if prof.Format.Pixels() <= 0 || prof.Format.FPS <= 0 {
		return Load{}, fmt.Errorf("usecase: invalid frame format %+v", prof.Format)
	}

	n := float64(prof.Format.Pixels())
	border := p.StabilizationBorder * p.StabilizationBorder // pixel multiple
	bn := border * n                                        // sensor-frame pixels
	z2 := p.DigizoomFactor * p.DigizoomFactor
	fps := float64(prof.Format.FPS)
	refs := referenceFrames(p, prof)

	bayer := float64(video.BayerRGB.BitsPerPel)
	yuv422 := float64(video.YUV422.BitsPerPel)
	yuv420 := float64(video.YUV420.BitsPerPel)
	dispBits := float64(p.Display.FrameBits())

	l := Load{Profile: prof, Params: p}
	set := func(id StageID, read, write float64) {
		l.Stages[id] = StageTraffic{Stage: id, ReadBits: units.Bits(read), WriteBits: units.Bits(write)}
	}

	// Image processing (bits per frame). The camera captures the frame
	// with the stabilization border; stabilization crops it away.
	set(StageCameraIF, 0, bayer*bn)
	set(StagePreprocess, bayer*bn, bayer*bn)
	set(StageBayerToYUV, bayer*bn, yuv422*bn)
	set(StageStabilization, yuv422*bn, yuv422*n)
	set(StagePostprocZoom, yuv422*n/z2, yuv422*n)
	set(StageScaleToDisplay, yuv422*n, float64(p.Display.Pixels())*yuv422)
	// The display controller reads RGB888 at its own refresh rate,
	// independent of the recording frame rate; per recorded frame that is
	// refreshHz/fps display reads.
	set(StageDisplayCtrl, dispBits*float64(p.Display.RefreshHz)/fps, 0)

	// Video coding (bits per frame). The encoder reads the current YUV422
	// frame, reads reference-frame data with the implementation factor,
	// and writes the reconstructed frame; reference traffic dominates.
	encRead := yuv422*n + float64(p.EncoderFactor)*yuv420*n*float64(refs)
	encRecon := yuv420 * n
	v := float64(prof.Level.MaxBitrate) / fps // video bitstream bits/frame
	a := float64(p.AudioBitrate) / fps        // audio bits/frame
	set(StageVideoEncoder, encRead, encRecon+v)
	set(StageAudio, 0, a)
	set(StageMultiplex, v+a, v+a)
	set(StageMemoryCard, v+a, 0)

	return l, nil
}

// ImageProcessingBits returns the per-frame image-processing total
// ("Image proc. total" row of Table I).
func (l Load) ImageProcessingBits() units.Bits {
	var sum units.Bits
	for _, s := range l.Stages {
		if s.Stage.IsImageProcessing() {
			sum += s.TotalBits()
		}
	}
	return sum
}

// VideoCodingBits returns the per-frame video-coding total
// ("Video coding total" row of Table I).
func (l Load) VideoCodingBits() units.Bits {
	var sum units.Bits
	for _, s := range l.Stages {
		if !s.Stage.IsImageProcessing() {
			sum += s.TotalBits()
		}
	}
	return sum
}

// FrameBits returns the total execution-memory traffic of one frame
// ("Data Mem. load (1 frame)" row of Table I).
func (l Load) FrameBits() units.Bits {
	return l.ImageProcessingBits() + l.VideoCodingBits()
}

// BitsPerSecond returns the sustained load ("Data Mem. load (1 s)").
func (l Load) BitsPerSecond() units.Bits {
	return l.FrameBits() * units.Bits(l.Profile.Format.FPS)
}

// Bandwidth returns the sustained load as a byte bandwidth
// ("Data Mem. load [MB/s]" row of Table I).
func (l Load) Bandwidth() units.Bandwidth {
	return units.BandwidthOf(l.BitsPerSecond(), units.Second)
}

// FrameBytes returns the per-frame traffic in bytes.
func (l Load) FrameBytes() int64 { return l.FrameBits().Bytes() }
