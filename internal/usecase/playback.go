package usecase

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/video"
)

// PlaybackParams tunes the playback (decode + display) use case, the
// companion workload of the recording chain: the paper notes "the system
// rarely runs only a single use case", and playback is what shares the
// execution memory with recording in a camera device.
type PlaybackParams struct {
	// DecoderFactor is the implementation-dependent multiplier on the
	// decoder's reference-frame (motion compensation) traffic. Decoding
	// reads each predicted pixel roughly once plus interpolation overlap,
	// far below the encoder's search factor of 6; the default is 2.
	DecoderFactor int
	// ReferenceFrames kept in execution memory; zero derives from the
	// level's DPB like the recording chain does.
	ReferenceFrames int
	// AudioBitrate is the decoded audio stream rate.
	AudioBitrate units.Bits
	// Display receives the decoded stream.
	Display video.Display
}

// DefaultPlaybackParams returns the baseline playback constants.
func DefaultPlaybackParams() PlaybackParams {
	return PlaybackParams{
		DecoderFactor:   2,
		ReferenceFrames: 0,
		AudioBitrate:    units.Bits(320 * 1000),
		Display:         video.WVGA,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p PlaybackParams) Validate() error {
	if p.DecoderFactor < 1 {
		return fmt.Errorf("usecase: decoder factor %d < 1", p.DecoderFactor)
	}
	if p.ReferenceFrames < 0 {
		return fmt.Errorf("usecase: negative reference frames %d", p.ReferenceFrames)
	}
	if p.AudioBitrate < 0 {
		return fmt.Errorf("usecase: negative audio bitrate %v", p.AudioBitrate)
	}
	if p.Display.Pixels() <= 0 || p.Display.RefreshHz <= 0 {
		return fmt.Errorf("usecase: invalid display %+v", p.Display)
	}
	return nil
}

// PlaybackStageID identifies one stage of the playback chain.
type PlaybackStageID int

// Playback stages in pipeline order.
const (
	PbMemoryCard PlaybackStageID = iota
	PbDemultiplex
	PbVideoDecoder
	PbScaleToDisplay
	PbDisplayCtrl
	PbAudioDecoder
	numPbStages
)

var pbStageNames = [numPbStages]string{
	"Memory card",
	"Demultiplex",
	"Video decoder",
	"Scaling to display",
	"DisplayCtrl",
	"Audio decoder",
}

// String returns the stage name.
func (s PlaybackStageID) String() string {
	if s < 0 || s >= numPbStages {
		return fmt.Sprintf("PlaybackStageID(%d)", int(s))
	}
	return pbStageNames[s]
}

// NumPlaybackStages is the number of playback stages.
const NumPlaybackStages = int(numPbStages)

// PlaybackStageTraffic is one stage's per-frame memory traffic.
type PlaybackStageTraffic struct {
	Stage     PlaybackStageID
	ReadBits  units.Bits
	WriteBits units.Bits
}

// TotalBits returns read plus write traffic.
func (s PlaybackStageTraffic) TotalBits() units.Bits { return s.ReadBits + s.WriteBits }

// PlaybackLoad is the execution-memory load of playing one stream.
type PlaybackLoad struct {
	Profile video.Profile
	Params  PlaybackParams
	Stages  [numPbStages]PlaybackStageTraffic
}

// NewPlayback computes the playback memory load for prof.
func NewPlayback(prof video.Profile, p PlaybackParams) (PlaybackLoad, error) {
	if err := p.Validate(); err != nil {
		return PlaybackLoad{}, err
	}
	if prof.Format.Pixels() <= 0 || prof.Format.FPS <= 0 {
		return PlaybackLoad{}, fmt.Errorf("usecase: invalid frame format %+v", prof.Format)
	}

	n := float64(prof.Format.Pixels())
	fps := float64(prof.Format.FPS)
	yuv420 := float64(video.YUV420.BitsPerPel)
	v := float64(prof.Level.MaxBitrate) / fps
	a := float64(p.AudioBitrate) / fps
	dispBits := float64(p.Display.FrameBits())

	l := PlaybackLoad{Profile: prof, Params: p}
	set := func(id PlaybackStageID, read, write float64) {
		l.Stages[id] = PlaybackStageTraffic{Stage: id, ReadBits: units.Bits(read), WriteBits: units.Bits(write)}
	}
	// The stream comes off the card, is demultiplexed into elementary
	// streams, decoded (motion compensation reads reference data with the
	// decoder factor; the reconstructed frame is written back), scaled to
	// the display and refreshed at the display rate.
	set(PbMemoryCard, v+a, 0)
	set(PbDemultiplex, v+a, v+a)
	set(PbVideoDecoder, v+float64(p.DecoderFactor)*yuv420*n, yuv420*n)
	set(PbScaleToDisplay, yuv420*n, float64(p.Display.Pixels())*float64(video.YUV422.BitsPerPel))
	set(PbDisplayCtrl, dispBits*float64(p.Display.RefreshHz)/fps, 0)
	set(PbAudioDecoder, a, 0)
	return l, nil
}

// ReferenceFrames returns the effective reference-frame count.
func (l PlaybackLoad) ReferenceFrames() int {
	refs := l.Params.ReferenceFrames
	if refs == 0 {
		refs = l.Profile.Level.MaxDpbFrames(l.Profile.Format)
		if refs > PaperReferenceFrames {
			refs = PaperReferenceFrames
		}
		if refs < 1 {
			refs = 1
		}
	}
	return refs
}

// FrameBits returns the total per-frame traffic.
func (l PlaybackLoad) FrameBits() units.Bits {
	var sum units.Bits
	for _, s := range l.Stages {
		sum += s.TotalBits()
	}
	return sum
}

// BitsPerSecond returns the sustained load.
func (l PlaybackLoad) BitsPerSecond() units.Bits {
	return l.FrameBits() * units.Bits(l.Profile.Format.FPS)
}

// Bandwidth returns the sustained load as a byte bandwidth.
func (l PlaybackLoad) Bandwidth() units.Bandwidth {
	return units.BandwidthOf(l.BitsPerSecond(), units.Second)
}
