package usecase

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/video"
)

func mustLoad(t *testing.T, name string) Load {
	t.Helper()
	prof, err := video.ProfileFor(name)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(prof, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// The paper's prose bandwidth anchors (DESIGN.md section 5).
func TestBandwidthAnchors(t *testing.T) {
	tests := []struct {
		format  string
		wantGBs float64
		tol     float64 // relative tolerance
	}{
		{"720p30", 1.9, 0.05},  // intro: "diminished down to 1.9 GB/s"
		{"1080p30", 4.3, 0.05}, // abstract: "require 4.3 GB/s"
		{"1080p60", 8.6, 0.05}, // section II: "estimated to be 8.6 GB/s"
	}
	for _, tt := range tests {
		l := mustLoad(t, tt.format)
		got := l.Bandwidth().GBps()
		if math.Abs(got-tt.wantGBs)/tt.wantGBs > tt.tol {
			t.Errorf("%s bandwidth = %.3f GB/s, want %.1f +-%.0f%%",
				tt.format, got, tt.wantGBs, tt.tol*100)
		}
	}
}

// Section IV: 1080p30 requires approximately 2.2x the bandwidth of 720p30.
func TestHDScalingRatio(t *testing.T) {
	r := mustLoad(t, "1080p30").Bandwidth() / mustLoad(t, "720p30").Bandwidth()
	if r < 2.1 || r < 0 || r > 2.3 {
		t.Errorf("1080p30/720p30 bandwidth ratio = %.3f, want ~2.2", float64(r))
	}
}

func TestReferenceFrameDerivation(t *testing.T) {
	l := mustLoad(t, "720p30")
	// Level 3.1 DPB allows 5 frames; the paper profile caps at 4.
	if got := l.ReferenceFrames(); got != 4 {
		t.Errorf("720p30 reference frames = %d, want 4", got)
	}
	// Explicit override wins.
	prof, _ := video.ProfileFor("720p30")
	p := DefaultParams()
	p.ReferenceFrames = 2
	l2, err := New(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ReferenceFrames(); got != 2 {
		t.Errorf("override reference frames = %d, want 2", got)
	}
	if l2.FrameBits() >= l.FrameBits() {
		t.Error("fewer reference frames must reduce frame traffic")
	}
}

func TestStageDecomposition(t *testing.T) {
	l := mustLoad(t, "720p30")

	// Camera interface only writes; display controller and memory card
	// only read; audio only writes.
	if s := l.Stages[StageCameraIF]; s.ReadBits != 0 || s.WriteBits == 0 {
		t.Errorf("camera I/F traffic = %+v, want write-only", s)
	}
	if s := l.Stages[StageDisplayCtrl]; s.WriteBits != 0 || s.ReadBits == 0 {
		t.Errorf("display ctrl traffic = %+v, want read-only", s)
	}
	if s := l.Stages[StageMemoryCard]; s.WriteBits != 0 || s.ReadBits == 0 {
		t.Errorf("memory card traffic = %+v, want read-only", s)
	}
	if s := l.Stages[StageAudio]; s.ReadBits != 0 || s.WriteBits == 0 {
		t.Errorf("audio traffic = %+v, want write-only", s)
	}

	// Preprocess reads and writes the full bordered Bayer frame:
	// 1.44 * 921600 * 16 bits each way.
	want := units.Bits(1.44 * 921600 * 16)
	if s := l.Stages[StagePreprocess]; s.ReadBits != want || s.WriteBits != want {
		t.Errorf("preprocess = %+v, want %v each way", s, want)
	}

	// The encoder is the single most memory-intensive stage (section II).
	enc := l.Stages[StageVideoEncoder].TotalBits()
	for _, s := range l.Stages {
		if s.Stage != StageVideoEncoder && s.TotalBits() >= enc {
			t.Errorf("stage %v (%v) exceeds encoder (%v)", s.Stage, s.TotalBits(), enc)
		}
	}
}

func TestTotalsAreConsistent(t *testing.T) {
	for _, p := range video.EvaluatedProfiles {
		l, err := New(p, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var sum units.Bits
		for _, s := range l.Stages {
			sum += s.TotalBits()
		}
		if sum != l.FrameBits() {
			t.Errorf("%v: stage sum %v != frame total %v", p.Format, sum, l.FrameBits())
		}
		if got := l.ImageProcessingBits() + l.VideoCodingBits(); got != sum {
			t.Errorf("%v: part totals %v != %v", p.Format, got, sum)
		}
		if l.BitsPerSecond() != l.FrameBits()*units.Bits(p.Format.FPS) {
			t.Errorf("%v: per-second total inconsistent", p.Format)
		}
	}
}

// The display controller's memory traffic is constant per second regardless
// of recording format (section II: "DisplayCtrl ... constant memory
// requirements regardless of original image size").
func TestDisplayCtrlConstantPerSecond(t *testing.T) {
	var ref units.Bits
	for i, p := range video.EvaluatedProfiles {
		l, err := New(p, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		perSec := l.Stages[StageDisplayCtrl].TotalBits() * units.Bits(p.Format.FPS)
		if i == 0 {
			ref = perSec
			continue
		}
		if perSec != ref {
			t.Errorf("%v: display traffic %v/s, want constant %v/s", p.Format, perSec, ref)
		}
	}
	// And it equals the 60 Hz WVGA RGB888 refresh rate.
	if ref != video.WVGA.RefreshBitsPerSecond() {
		t.Errorf("display traffic %v/s, want %v/s", ref, video.WVGA.RefreshBitsPerSecond())
	}
}

func TestDigizoomReducesReadWindow(t *testing.T) {
	prof, _ := video.ProfileFor("1080p30")
	base := DefaultParams()
	zoomed := base
	zoomed.DigizoomFactor = 2
	l0, err := New(prof, base)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := New(prof, zoomed)
	if err != nil {
		t.Fatal(err)
	}
	// z=2 reads N/4 pixels instead of N; writes are unchanged.
	s0, s2 := l0.Stages[StagePostprocZoom], l2.Stages[StagePostprocZoom]
	if s2.WriteBits != s0.WriteBits {
		t.Errorf("zoom changed write traffic: %v vs %v", s2.WriteBits, s0.WriteBits)
	}
	if got, want := s2.ReadBits, s0.ReadBits/4; got != want {
		t.Errorf("zoomed read = %v, want %v", got, want)
	}
	// All other stages are unaffected by zoom.
	for i := range l0.Stages {
		if StageID(i) == StagePostprocZoom {
			continue
		}
		if l0.Stages[i] != l2.Stages[i] {
			t.Errorf("stage %v changed with zoom", StageID(i))
		}
	}
}

func TestStabilizationBorderScalesSensorStages(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	p := DefaultParams()
	p.StabilizationBorder = 1.0 // no border
	l, err := New(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	n := units.Bits(prof.Format.Pixels() * 16)
	if got := l.Stages[StageCameraIF].WriteBits; got != n {
		t.Errorf("borderless camera write = %v, want %v", got, n)
	}
	// Stabilization becomes a symmetric copy.
	s := l.Stages[StageStabilization]
	if s.ReadBits != s.WriteBits {
		t.Errorf("borderless stabilization asymmetric: %+v", s)
	}
}

func TestValidate(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	bad := []func(*Params){
		func(p *Params) { p.StabilizationBorder = 0.9 },
		func(p *Params) { p.DigizoomFactor = 0.5 },
		func(p *Params) { p.EncoderFactor = 0 },
		func(p *Params) { p.ReferenceFrames = -1 },
		func(p *Params) { p.AudioBitrate = -1 },
		func(p *Params) { p.Display = video.Display{} },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := New(prof, p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// Invalid frame format.
	if _, err := New(video.Profile{Level: video.Level31}, DefaultParams()); err == nil {
		t.Error("expected error for empty frame format")
	}
}

func TestStageIDString(t *testing.T) {
	if got := StageVideoEncoder.String(); got != "Video encoder" {
		t.Errorf("String() = %q", got)
	}
	if got := StageID(99).String(); got != "StageID(99)" {
		t.Errorf("String() = %q", got)
	}
}

// Property: total traffic grows monotonically with pixel count at fixed
// parameters, and all stage volumes are non-negative.
func TestTrafficMonotoneInPixels(t *testing.T) {
	f := func(w, h uint8) bool {
		width := 160 + int(w)*16
		height := 160 + int(h)*16
		// Pin the reference-frame count: the DPB-derived default
		// legitimately shrinks as frames grow, which would make total
		// traffic non-monotone.
		params := DefaultParams()
		params.ReferenceFrames = 4
		small := video.Profile{
			Level:  video.Level40,
			Format: video.FrameFormat{Name: "s", Width: width, Height: height, FPS: 30},
		}
		big := video.Profile{
			Level:  video.Level40,
			Format: video.FrameFormat{Name: "b", Width: width + 16, Height: height + 16, FPS: 30},
		}
		ls, err := New(small, params)
		if err != nil {
			return false
		}
		lb, err := New(big, params)
		if err != nil {
			return false
		}
		for _, s := range ls.Stages {
			if s.ReadBits < 0 || s.WriteBits < 0 {
				return false
			}
		}
		return lb.FrameBits() > ls.FrameBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper: "the total data memory load for one frame is the sum of the
// image processing and video coding parts", and video coding dominates.
func TestVideoCodingDominates(t *testing.T) {
	for _, p := range video.EvaluatedProfiles {
		l, err := New(p, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if l.VideoCodingBits() <= l.ImageProcessingBits() {
			t.Errorf("%v: video coding %v <= image processing %v",
				p.Format, l.VideoCodingBits(), l.ImageProcessingBits())
		}
	}
}
