package usecase

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/video"
)

// ViewfinderParams tunes the viewfinder (camera preview without recording)
// use case: the chain a camera runs before the shutter is pressed. It is
// the recording chain's image half without stabilization, encoding or
// storage — the lightest of the three use cases, and the one a device
// spends most of its camera time in.
type ViewfinderParams struct {
	// Display receives the preview.
	Display video.Display
}

// DefaultViewfinderParams returns the baseline viewfinder constants.
func DefaultViewfinderParams() ViewfinderParams {
	return ViewfinderParams{Display: video.WVGA}
}

// Validate reports whether the parameters are physically meaningful.
func (p ViewfinderParams) Validate() error {
	if p.Display.Pixels() <= 0 || p.Display.RefreshHz <= 0 {
		return fmt.Errorf("usecase: invalid display %+v", p.Display)
	}
	return nil
}

// ViewfinderStageID identifies one stage of the viewfinder chain.
type ViewfinderStageID int

// Viewfinder stages in pipeline order.
const (
	VfCameraIF ViewfinderStageID = iota
	VfPreprocess
	VfBayerToYUV
	VfScaleToDisplay
	VfDisplayCtrl
	numVfStages
)

var vfStageNames = [numVfStages]string{
	"Camera I/F",
	"Preprocess",
	"Bayer to YUV",
	"Scaling to display",
	"DisplayCtrl",
}

// String returns the stage name.
func (s ViewfinderStageID) String() string {
	if s < 0 || s >= numVfStages {
		return fmt.Sprintf("ViewfinderStageID(%d)", int(s))
	}
	return vfStageNames[s]
}

// NumViewfinderStages is the number of viewfinder stages.
const NumViewfinderStages = int(numVfStages)

// ViewfinderStageTraffic is one stage's per-frame memory traffic.
type ViewfinderStageTraffic struct {
	Stage     ViewfinderStageID
	ReadBits  units.Bits
	WriteBits units.Bits
}

// TotalBits returns read plus write traffic.
func (s ViewfinderStageTraffic) TotalBits() units.Bits { return s.ReadBits + s.WriteBits }

// ViewfinderLoad is the execution-memory load of previewing.
type ViewfinderLoad struct {
	Format video.FrameFormat
	Params ViewfinderParams
	Stages [numVfStages]ViewfinderStageTraffic
}

// NewViewfinder computes the viewfinder memory load when the sensor streams
// preview frames at the given format (no stabilization border: nothing is
// cropped, so the sensor delivers the display-bound frame directly).
func NewViewfinder(f video.FrameFormat, p ViewfinderParams) (ViewfinderLoad, error) {
	if err := p.Validate(); err != nil {
		return ViewfinderLoad{}, err
	}
	if f.Pixels() <= 0 || f.FPS <= 0 {
		return ViewfinderLoad{}, fmt.Errorf("usecase: invalid frame format %+v", f)
	}
	n := float64(f.Pixels())
	fps := float64(f.FPS)
	bayer := float64(video.BayerRGB.BitsPerPel)
	yuv422 := float64(video.YUV422.BitsPerPel)
	dispBits := float64(p.Display.FrameBits())

	l := ViewfinderLoad{Format: f, Params: p}
	set := func(id ViewfinderStageID, read, write float64) {
		l.Stages[id] = ViewfinderStageTraffic{Stage: id, ReadBits: units.Bits(read), WriteBits: units.Bits(write)}
	}
	set(VfCameraIF, 0, bayer*n)
	set(VfPreprocess, bayer*n, bayer*n)
	set(VfBayerToYUV, bayer*n, yuv422*n)
	set(VfScaleToDisplay, yuv422*n, float64(p.Display.Pixels())*yuv422)
	set(VfDisplayCtrl, dispBits*float64(p.Display.RefreshHz)/fps, 0)
	return l, nil
}

// FrameBits returns the total per-frame traffic.
func (l ViewfinderLoad) FrameBits() units.Bits {
	var sum units.Bits
	for _, s := range l.Stages {
		sum += s.TotalBits()
	}
	return sum
}

// BitsPerSecond returns the sustained load.
func (l ViewfinderLoad) BitsPerSecond() units.Bits {
	return l.FrameBits() * units.Bits(l.Format.FPS)
}

// Bandwidth returns the sustained load as a byte bandwidth.
func (l ViewfinderLoad) Bandwidth() units.Bandwidth {
	return units.BandwidthOf(l.BitsPerSecond(), units.Second)
}
