package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Entry is one metric in a snapshot. Counters and gauges carry Value;
// histograms carry Count/Sum/Buckets (cumulative, Prometheus-style).
type Entry struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Type   string  `json:"type"`

	Value float64 `json:"value,omitempty"`

	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	id string // sort key, not exported
}

// Bucket is one cumulative histogram bucket. Le is the rendered upper
// bound ("0.005", "+Inf") — a string so that +Inf survives JSON.
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric
// identity. Two snapshots of the same registry state encode
// byte-identically (both Prometheus text and JSON).
type Snapshot []Entry

// Snapshot copies the registry's current state. Values are read
// atomically per metric; the snapshot as a whole is not a cross-metric
// atomic cut (fine for run-level accounting). Nil registry returns nil.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	ms := make([]*registered, 0, len(ids))
	for _, id := range ids {
		ms = append(ms, r.metrics[id])
	}
	r.mu.Unlock()

	snap := make(Snapshot, 0, len(ms))
	for _, m := range ms {
		e := Entry{Name: m.name, Labels: m.labels, Type: m.kind.String(), id: m.id}
		switch m.kind {
		case kindCounter:
			e.Value = float64(m.counter.Value())
		case kindGauge:
			e.Value = float64(m.gauge.Value())
		case kindHistogram:
			h := m.hist
			e.Count = h.Count()
			e.Sum = h.Sum()
			e.Buckets = make([]Bucket, 0, len(h.bounds)+1)
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				e.Buckets = append(e.Buckets, Bucket{Le: formatFloat(b), Count: cum})
			}
			cum += h.counts[len(h.bounds)].Load()
			e.Buckets = append(e.Buckets, Bucket{Le: "+Inf", Count: cum})
		}
		snap = append(snap, e)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
	return snap
}

// formatFloat renders a float the same way everywhere (shortest
// round-trippable form), so snapshots are byte-deterministic.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelText renders a label set in Prometheus text syntax, with an extra
// le pair appended for histogram buckets ("" sentinel means none).
func labelText(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			s += ","
		}
		s += fmt.Sprintf("le=%q", le)
	}
	return s + "}"
}

// WritePrometheus encodes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, then the
// samples. Deterministic: families appear in identity order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, e := range s {
		if e.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.Name, e.Type); err != nil {
				return err
			}
			lastName = e.Name
		}
		switch e.Type {
		case "histogram":
			for _, b := range e.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.Name, labelText(e.Labels, b.Le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.Name, labelText(e.Labels, ""), formatFloat(e.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.Name, labelText(e.Labels, ""), e.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", e.Name, labelText(e.Labels, ""), formatFloat(e.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON encodes the snapshot as an indented JSON array (deterministic:
// entries are already sorted, structs encode in field order).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// Find returns the entry with the given rendered identity (name, or
// name{k="v",...}) and whether it exists — convenience for tests and the
// stderr formatters.
func (s Snapshot) Find(id string) (Entry, bool) {
	for _, e := range s {
		if e.id == id || (e.id == "" && e.Name == id) {
			return e, true
		}
	}
	// Entries decoded from JSON have no id; fall back to matching the
	// rendered identity.
	for _, e := range s {
		name, _ := metricID(e.Name, e.Labels)
		if name == id {
			return e, true
		}
	}
	return Entry{}, false
}
