// Package metrics is a dependency-free run-level metrics registry: atomic
// counters, gauges and fixed-bucket histograms with named labels, plus a
// deterministic snapshot API with Prometheus-text and JSON encoders.
//
// The package follows the probe layer's cost model: nothing here is ever
// consulted on a hot path unless the caller installed it. Instrumented
// layers hold an atomic pointer to their meter struct and pay one untaken
// branch when metrics are disabled; when enabled, each event is one atomic
// add. Every accessor is nil-receiver safe, so `var c *Counter; c.Inc()`
// is a no-op rather than a panic — instrumentation never needs guards
// beyond the meter nil check.
//
// Determinism is load-bearing for the snapshot path: two snapshots of the
// same registry state must encode byte-identically (the CI summary gate
// diffs them), so entries are sorted by identity and floats are formatted
// with a fixed strategy, never through map iteration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone (unregistered) counter: layers that must
// count even when no registry is installed — the simcache stderr summary —
// use one and adopt a registered counter when metrics are enabled.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, busy workers).
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease). Nil-safe.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: Observe finds the first bucket
// whose upper bound holds the value and increments it atomically. Bounds
// are fixed at construction (no resizing, no locking on the observe path);
// an implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram returns a standalone histogram over the given strictly
// increasing upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is a general-purpose 1ms..60s log-spaced bound set for
// wall-time histograms (seconds).
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// SizeBuckets is a power-of-four bound set for count-per-batch histograms.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// kind tags a registered metric.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// registered pairs a metric with its identity.
type registered struct {
	name   string
	labels []Label
	id     string // name + canonical label rendering: the sort key
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. The zero value is NOT usable; construct
// with NewRegistry. A nil *Registry is a valid "disabled" registry: every
// constructor returns nil, and nil metrics no-op.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*registered
	order   []string // ids in first-registration order (Snapshot re-sorts)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*registered)}
}

// metricID renders the canonical identity: name plus the labels sorted by
// key in Prometheus text syntax. Deterministic by construction.
func metricID(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns (creating if needed) the registered slot for the identity,
// verifying kind agreement: registering one id at two kinds is a
// programming error and panics immediately rather than corrupting exports.
func (r *Registry) lookup(name string, labels []Label, k kind) *registered {
	id, ls := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", id, m.kind, k))
		}
		return m
	}
	m := &registered{name: name, labels: ls, id: id, kind: k}
	r.metrics[id] = m
	r.order = append(r.order, id)
	return m
}

// Counter returns the counter registered under name+labels, creating it on
// first use. A nil registry returns nil (a usable no-op counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, kindCounter)
	if m.counter == nil {
		m.counter = NewCounter()
	}
	return m.counter
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, kindGauge)
	if m.gauge == nil {
		m.gauge = NewGauge()
	}
	return m.gauge
}

// Histogram returns the histogram registered under name+labels with the
// given bounds; bounds are fixed by the first registration.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, kindHistogram)
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}
