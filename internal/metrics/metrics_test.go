package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrency hammers one counter, gauge and histogram
// from many goroutines; under -race this doubles as the data-race gate,
// and the final values pin that no increment is lost.
func TestCounterGaugeConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1})

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.005)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 0.005*workers*perWorker; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestConcurrentRegistration races many goroutines registering the same
// and different names; every same-identity registration must return the
// one shared instance.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("labeled_total", Label{"ch", "0"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Errorf("shared_total = %d, want 8000", got)
	}
	if got := r.Counter("labeled_total", Label{"ch", "0"}).Value(); got != 8000 {
		t.Errorf("labeled_total = %d, want 8000", got)
	}
}

// TestSnapshotDeterminism: two snapshots of the same registry state must
// encode byte-identically in both formats, regardless of registration
// order relative to name order.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of sorted order.
	r.Counter("zeta_total").Add(3)
	r.Histogram("alpha_seconds", []float64{0.01, 0.1}).Observe(0.05)
	r.Gauge("mid_depth", Label{"pool", "b"}, Label{"chan", "1"}).Set(7)
	r.Counter("hits_total", Label{"tier", "memory"}).Add(41)
	r.Counter("hits_total", Label{"tier", "disk"}).Add(5)

	encode := func(s Snapshot) (string, string) {
		var prom, js bytes.Buffer
		if err := s.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return prom.String(), js.String()
	}
	p1, j1 := encode(r.Snapshot())
	p2, j2 := encode(r.Snapshot())
	if p1 != p2 {
		t.Errorf("prometheus encodings differ:\n%s\n---\n%s", p1, p2)
	}
	if j1 != j2 {
		t.Errorf("JSON encodings differ:\n%s\n---\n%s", j1, j2)
	}

	// Identity sorting: the two hits_total series are adjacent, disk first.
	di := strings.Index(p1, `hits_total{tier="disk"} 5`)
	mi := strings.Index(p1, `hits_total{tier="memory"} 41`)
	if di < 0 || mi < 0 || di > mi {
		t.Errorf("expected sorted hits_total series, got:\n%s", p1)
	}
	// Labels themselves sort by key: chan before pool.
	if !strings.Contains(p1, `mid_depth{chan="1",pool="b"} 7`) {
		t.Errorf("expected key-sorted labels, got:\n%s", p1)
	}
	// One TYPE line per family even with multiple series.
	if got := strings.Count(p1, "# TYPE hits_total counter"); got != 1 {
		t.Errorf("TYPE lines for hits_total = %d, want 1", got)
	}
}

// TestHistogramBuckets pins cumulative bucket semantics and the +Inf
// overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	e, ok := snap.Find("d_seconds")
	if !ok {
		t.Fatal("d_seconds not in snapshot")
	}
	want := []Bucket{{"1", 2}, {"2", 3}, {"4", 4}, {"+Inf", 5}}
	if len(e.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", e.Buckets, want)
	}
	for i := range want {
		if e.Buckets[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, e.Buckets[i], want[i])
		}
	}
	if e.Count != 5 || math.Abs(e.Sum-106) > 1e-9 {
		t.Errorf("count=%d sum=%g, want 5, 106", e.Count, e.Sum)
	}
}

// TestJSONRoundTrip: a snapshot decodes back into an equivalent snapshot.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("b_seconds", []float64{0.5}).Observe(0.25)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(back))
	}
	if e, ok := back.Find("a_total"); !ok || e.Value != 2 {
		t.Errorf("a_total round-trip = %+v ok=%v", e, ok)
	}
	if e, ok := back.Find("b_seconds"); !ok || e.Count != 1 || e.Sum != 0.25 {
		t.Errorf("b_seconds round-trip = %+v ok=%v", e, ok)
	}
}

// TestNilSafety: nil registry and nil metrics are inert, not panics.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
}

// TestKindConflictPanics: one identity at two kinds is a programming
// error caught at registration.
func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering dual as gauge")
		}
	}()
	r.Gauge("dual")
}
