// Package units provides the physical quantities used throughout the
// multi-channel memory simulator: clock frequencies, data sizes, bandwidths,
// durations, energies and powers.
//
// Conventions follow the paper ("A case for multi-channel memories in video
// recording", DATE 2009): data sizes use decimal SI multiples (1 Mb =
// 10^6 bits, 1 GB/s = 10^9 bytes per second) because the paper's Table I is
// expressed that way (M = 10^6). Durations are kept in picoseconds so that
// all DDR2-range clock periods (1.876..5 ns) are exactly representable.
package units

import (
	"fmt"
	"math"
)

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequency multiples.
const (
	Hz  Frequency = 1
	KHz Frequency = 1e3
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// Period returns the clock period of f.
func (f Frequency) Period() Duration {
	if f <= 0 {
		return 0
	}
	return Duration(math.Round(1e12 / float64(f)))
}

// MHz returns the frequency expressed in megahertz.
func (f Frequency) MHz() float64 { return float64(f) / 1e6 }

// String formats the frequency with an SI suffix.
func (f Frequency) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.4g GHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.4g MHz", float64(f)/1e6)
	case f >= KHz:
		return fmt.Sprintf("%.4g kHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.4g Hz", float64(f))
	}
}

// Duration is a time span in picoseconds. The zero value is zero time.
// An int64 picosecond clock overflows after ~106 days, far beyond any
// simulated frame time.
type Duration int64

// Common duration multiples.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1e3
	Microsecond Duration = 1e6
	Millisecond Duration = 1e9
	Second      Duration = 1e12
)

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Milliseconds returns the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e9 }

// Nanoseconds returns the duration in nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// String formats the duration with an appropriate suffix.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.4g s", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.4g ms", d.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.4g us", float64(d)/1e6)
	case abs >= Nanosecond:
		return fmt.Sprintf("%.4g ns", d.Nanoseconds())
	default:
		return fmt.Sprintf("%d ps", int64(d))
	}
}

// DurationFromSeconds converts seconds to a Duration.
func DurationFromSeconds(s float64) Duration {
	return Duration(math.Round(s * 1e12))
}

// Cycles converts a duration to a whole number of clock cycles at f,
// rounding up (the DRAM convention for timing constraints: a constraint of
// 15 ns at 400 MHz costs ceil(15/2.5) = 6 cycles).
func (d Duration) Cycles(f Frequency) int64 {
	if d <= 0 {
		return 0
	}
	period := f.Period()
	if period <= 0 {
		return 0
	}
	return int64((d + period - 1) / period)
}

// Bits is an amount of data in bits.
type Bits int64

// Common data-size multiples (decimal, matching the paper's Table I).
const (
	Bit  Bits = 1
	Kbit Bits = 1e3
	Mbit Bits = 1e6
	Gbit Bits = 1e9

	Byte  Bits = 8
	KByte Bits = 8e3
	MByte Bits = 8e6
	GByte Bits = 8e9
)

// Bytes returns the size in bytes, rounding up partial bytes.
func (b Bits) Bytes() int64 { return int64((b + 7) / 8) }

// Megabits returns the size in decimal megabits.
func (b Bits) Megabits() float64 { return float64(b) / 1e6 }

// Megabytes returns the size in decimal megabytes.
func (b Bits) Megabytes() float64 { return float64(b) / 8e6 }

// String formats the size with an SI suffix in bits.
func (b Bits) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Gbit:
		return fmt.Sprintf("%.4g Gb", float64(b)/1e9)
	case abs >= Mbit:
		return fmt.Sprintf("%.4g Mb", float64(b)/1e6)
	case abs >= Kbit:
		return fmt.Sprintf("%.4g kb", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d b", int64(b))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidth multiples (decimal).
const (
	BytePerSecond  Bandwidth = 1
	KBytePerSecond Bandwidth = 1e3
	MBytePerSecond Bandwidth = 1e6
	GBytePerSecond Bandwidth = 1e9
)

// GBps returns the bandwidth in gigabytes per second.
func (bw Bandwidth) GBps() float64 { return float64(bw) / 1e9 }

// MBps returns the bandwidth in megabytes per second.
func (bw Bandwidth) MBps() float64 { return float64(bw) / 1e6 }

// String formats the bandwidth with an SI suffix.
func (bw Bandwidth) String() string {
	switch {
	case bw >= GBytePerSecond:
		return fmt.Sprintf("%.4g GB/s", bw.GBps())
	case bw >= MBytePerSecond:
		return fmt.Sprintf("%.4g MB/s", bw.MBps())
	case bw >= KBytePerSecond:
		return fmt.Sprintf("%.4g kB/s", float64(bw)/1e3)
	default:
		return fmt.Sprintf("%.4g B/s", float64(bw))
	}
}

// BandwidthOf returns the average bandwidth of moving b over d.
func BandwidthOf(b Bits, d Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(b.Bytes()) / d.Seconds())
}

// Energy is an amount of energy in picojoules.
type Energy float64

// Common energy multiples.
const (
	Picojoule  Energy = 1
	Nanojoule  Energy = 1e3
	Microjoule Energy = 1e6
	Millijoule Energy = 1e9
	Joule      Energy = 1e12
)

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) / 1e12 }

// Millijoules returns the energy in millijoules.
func (e Energy) Millijoules() float64 { return float64(e) / 1e9 }

// String formats the energy with an SI suffix.
func (e Energy) String() string {
	abs := e
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Joule:
		return fmt.Sprintf("%.4g J", e.Joules())
	case abs >= Millijoule:
		return fmt.Sprintf("%.4g mJ", e.Millijoules())
	case abs >= Microjoule:
		return fmt.Sprintf("%.4g uJ", float64(e)/1e6)
	case abs >= Nanojoule:
		return fmt.Sprintf("%.4g nJ", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.4g pJ", float64(e))
	}
}

// Power is a power in watts.
type Power float64

// Common power multiples.
const (
	Watt      Power = 1
	Milliwatt Power = 1e-3
	Microwatt Power = 1e-6
)

// Milliwatts returns the power in milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) * 1e3 }

// String formats the power with an SI suffix.
func (p Power) String() string {
	abs := p
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Watt:
		return fmt.Sprintf("%.4g W", float64(p))
	case abs >= Milliwatt:
		return fmt.Sprintf("%.4g mW", p.Milliwatts())
	default:
		return fmt.Sprintf("%.4g uW", float64(p)*1e6)
	}
}

// Times returns the energy dissipated by p over d.
func (p Power) Times(d Duration) Energy {
	return Energy(float64(p) * float64(d)) // W * ps = pJ
}

// PowerOf returns the average power of dissipating e over d.
func PowerOf(e Energy, d Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(e.Joules() / d.Seconds())
}
