package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrequencyPeriod(t *testing.T) {
	tests := []struct {
		f    Frequency
		want Duration
	}{
		{400 * MHz, 2500 * Picosecond},
		{200 * MHz, 5000 * Picosecond},
		{533 * MHz, 1876 * Picosecond},
		{1 * GHz, 1000 * Picosecond},
		{0, 0},
		{-5 * MHz, 0},
	}
	for _, tt := range tests {
		if got := tt.f.Period(); got != tt.want {
			t.Errorf("Period(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestFrequencyMHz(t *testing.T) {
	if got := (266 * MHz).MHz(); got != 266 {
		t.Errorf("MHz() = %v, want 266", got)
	}
}

func TestDurationCyclesRoundsUp(t *testing.T) {
	// 15 ns at 400 MHz (2.5 ns period) is exactly 6 cycles.
	if got := (15 * Nanosecond).Cycles(400 * MHz); got != 6 {
		t.Errorf("15ns @400MHz = %d cycles, want 6", got)
	}
	// 15 ns at 533 MHz (1.876 ns period) is ceil(7.99) = 8 cycles.
	if got := (15 * Nanosecond).Cycles(533 * MHz); got != 8 {
		t.Errorf("15ns @533MHz = %d cycles, want 8", got)
	}
	// 15 ns at 200 MHz is exactly 3 cycles.
	if got := (15 * Nanosecond).Cycles(200 * MHz); got != 3 {
		t.Errorf("15ns @200MHz = %d cycles, want 3", got)
	}
	if got := Duration(0).Cycles(400 * MHz); got != 0 {
		t.Errorf("0 cycles for zero duration, got %d", got)
	}
	if got := (10 * Nanosecond).Cycles(0); got != 0 {
		t.Errorf("0 cycles for zero frequency, got %d", got)
	}
}

func TestCyclesNeverUndershoot(t *testing.T) {
	// Property: Cycles(f) * period >= duration for positive inputs.
	f := func(ns int16, fm uint8) bool {
		d := Duration(ns) * Nanosecond
		freq := Frequency(200+int(fm)) * MHz
		c := d.Cycles(freq)
		if d <= 0 {
			return c == 0
		}
		return Duration(c)*freq.Period() >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsConversions(t *testing.T) {
	if got := (64 * Mbit).Bytes(); got != 8e6 {
		t.Errorf("64Mb = %d bytes, want 8e6", got)
	}
	if got := (Bits(9)).Bytes(); got != 2 {
		t.Errorf("9 bits = %d bytes, want 2 (round up)", got)
	}
	if got := (3 * MByte).Megabytes(); got != 3 {
		t.Errorf("Megabytes = %v, want 3", got)
	}
	if got := (12 * Mbit).Megabits(); got != 12 {
		t.Errorf("Megabits = %v, want 12", got)
	}
}

func TestBandwidthOf(t *testing.T) {
	// 33 MB in 33 ms is 1 GB/s.
	got := BandwidthOf(33*MByte, 33*Millisecond)
	if math.Abs(got.GBps()-1.0) > 1e-9 {
		t.Errorf("BandwidthOf = %v GB/s, want 1", got.GBps())
	}
	if got := BandwidthOf(MByte, 0); got != 0 {
		t.Errorf("zero duration bandwidth = %v, want 0", got)
	}
}

func TestPowerEnergyRoundTrip(t *testing.T) {
	// 150 mW over 33.3 ms is ~5 mJ.
	e := (150 * Milliwatt).Times(33300 * Microsecond)
	if math.Abs(e.Millijoules()-4.995) > 1e-6 {
		t.Errorf("energy = %v mJ, want 4.995", e.Millijoules())
	}
	p := PowerOf(e, 33300*Microsecond)
	if math.Abs(p.Milliwatts()-150) > 1e-6 {
		t.Errorf("power = %v mW, want 150", p.Milliwatts())
	}
}

func TestPowerOfZeroDuration(t *testing.T) {
	if got := PowerOf(Joule, 0); got != 0 {
		t.Errorf("PowerOf zero duration = %v, want 0", got)
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(400 * MHz).String(), "400 MHz"},
		{(1 * GHz).String(), "1 GHz"},
		{(500 * Hz).String(), "500 Hz"},
		{(2 * KHz).String(), "2 kHz"},
		{(33 * Millisecond).String(), "33 ms"},
		{(15 * Nanosecond).String(), "15 ns"},
		{(2 * Microsecond).String(), "2 us"},
		{(7 * Picosecond).String(), "7 ps"},
		{(2 * Second).String(), "2 s"},
		{(64 * Mbit).String(), "64 Mb"},
		{(2 * Gbit).String(), "2 Gb"},
		{(3 * Kbit).String(), "3 kb"},
		{Bits(12).String(), "12 b"},
		{(Bandwidth(4.3e9)).String(), "4.3 GB/s"},
		{(Bandwidth(70e6)).String(), "70 MB/s"},
		{(Bandwidth(3e3)).String(), "3 kB/s"},
		{(Bandwidth(17)).String(), "17 B/s"},
		{(345 * Milliwatt).String(), "345 mW"},
		{(5 * Watt).String(), "5 W"},
		{(40 * Microwatt).String(), "40 uW"},
		{(5 * Millijoule).String(), "5 mJ"},
		{(2 * Joule).String(), "2 J"},
		{(3 * Nanojoule).String(), "3 nJ"},
		{(4 * Microjoule).String(), "4 uJ"},
		{Energy(0.5).String(), "0.5 pJ"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if got := DurationFromSeconds(1.0 / 30.0); got != Duration(33333333333) {
		t.Errorf("1/30s = %d ps, want 33333333333", int64(got))
	}
}

func TestNegativeDurationString(t *testing.T) {
	s := (-5 * Millisecond).String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "ms") {
		t.Errorf("negative duration formatted as %q", s)
	}
}
