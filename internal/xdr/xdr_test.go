package xdr

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestCellBEPeakBandwidth(t *testing.T) {
	// The paper: "The XDR memory interface operating with 1.6 GHz clock
	// frequency acquires 25.6 GB/s bandwidth".
	x := CellBE()
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := x.PeakBandwidth().GBps(); math.Abs(got-25.6) > 1e-9 {
		t.Errorf("peak = %v GB/s, want 25.6", got)
	}
	if got := x.Power(); got != 5*units.Watt {
		t.Errorf("power = %v, want 5 W", got)
	}
}

func TestPowerRatio(t *testing.T) {
	x := CellBE()
	// 205 mW (720p30 on 8 mobile channels) is ~4 % of XDR.
	if got := x.PowerRatio(205 * units.Milliwatt); math.Abs(got-0.041) > 0.001 {
		t.Errorf("ratio = %v, want ~0.041", got)
	}
	// 1280 mW (2160p30) is ~25 %.
	if got := x.PowerRatio(1280 * units.Milliwatt); math.Abs(got-0.256) > 0.001 {
		t.Errorf("ratio = %v, want ~0.256", got)
	}
	var zero Interface
	if zero.PowerRatio(units.Watt) != 0 {
		t.Error("zero interface should report 0 ratio")
	}
}

func TestAccessTime(t *testing.T) {
	x := CellBE()
	// Moving 63 MB (a 720p30 frame) at 74 % of 25.6 GB/s takes ~3.3 ms.
	got := x.AccessTime(63_000_000).Milliseconds()
	want := 63e6 / (25.6e9 * 0.74) * 1e3
	if math.Abs(got-want) > 0.01 {
		t.Errorf("access time = %v ms, want %.3f", got, want)
	}
	var zero Interface
	if zero.AccessTime(100) != 0 {
		t.Error("zero interface should report 0 access time")
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Interface){
		func(x *Interface) { x.Channels = 0 },
		func(x *Interface) { x.ClockFreq = 0 },
		func(x *Interface) { x.BytesPerClock = 0 },
		func(x *Interface) { x.TypicalPower = 0 },
		func(x *Interface) { x.Efficiency = 0 },
		func(x *Interface) { x.Efficiency = 1.2 },
	}
	for i, mutate := range bad {
		x := CellBE()
		mutate(&x)
		if err := x.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
