// Package xdr models the paper's comparison baseline: the Cell Broadband
// Engine's dual-channel XDR DRAM memory interface, which at a 1.6 GHz clock
// delivers 25.6 GB/s and typically dissipates 5 W (paper reference [18]).
//
// The paper uses only these published headline numbers, so the model is an
// analytic one: peak bandwidth, a fixed typical power, and a simple
// utilization-scaled access-time estimate for running the same recording
// loads. Its purpose is the paper's final comparison: the proposed
// eight-channel mobile memory matches XDR's bandwidth at 4-25 % of its
// power.
package xdr

import (
	"fmt"

	"repro/internal/units"
)

// Interface describes an XDR memory interface.
type Interface struct {
	// Name labels the baseline in reports.
	Name string
	// Channels is the number of XDR channels (Cell BE: 2).
	Channels int
	// ClockFreq is the XDR clock (Cell BE: 1.6 GHz, octal data rate).
	ClockFreq units.Frequency
	// BytesPerClock is the data moved per channel per clock cycle.
	BytesPerClock float64
	// TypicalPower is the published typical interface power.
	TypicalPower units.Power
	// Efficiency is the sustainable fraction of peak bandwidth for the
	// streaming recording load.
	Efficiency float64
}

// CellBE returns the Cell Broadband Engine XDR interface of the paper's
// comparison: dual channel, 1.6 GHz, 25.6 GB/s, 5 W typical.
func CellBE() Interface {
	return Interface{
		Name:          "Cell BE XDR",
		Channels:      2,
		ClockFreq:     1600 * units.MHz,
		BytesPerClock: 8, // 3.2 Gb/s/lane x 32 lanes per channel / 1.6 GHz
		TypicalPower:  5 * units.Watt,
		Efficiency:    0.74,
	}
}

// Validate rejects non-physical interfaces.
func (x Interface) Validate() error {
	if x.Channels <= 0 || x.ClockFreq <= 0 || x.BytesPerClock <= 0 {
		return fmt.Errorf("xdr: non-physical interface %+v", x)
	}
	if x.TypicalPower <= 0 {
		return fmt.Errorf("xdr: non-positive power %v", x.TypicalPower)
	}
	if x.Efficiency <= 0 || x.Efficiency > 1 {
		return fmt.Errorf("xdr: efficiency %v outside (0,1]", x.Efficiency)
	}
	return nil
}

// PeakBandwidth returns the aggregate theoretical bandwidth.
func (x Interface) PeakBandwidth() units.Bandwidth {
	return units.Bandwidth(float64(x.Channels) * x.BytesPerClock * float64(x.ClockFreq))
}

// AccessTime estimates the time to move bytes at sustained efficiency.
func (x Interface) AccessTime(bytes int64) units.Duration {
	bw := float64(x.PeakBandwidth()) * x.Efficiency
	if bw <= 0 {
		return 0
	}
	return units.DurationFromSeconds(float64(bytes) / bw)
}

// Power returns the baseline's power for any load: the paper compares
// against the published typical figure, which does not scale down with the
// far lighter recording loads — exactly the point of the comparison.
func (x Interface) Power() units.Power { return x.TypicalPower }

// PowerRatio returns p as a fraction of the XDR typical power — the paper's
// "4 % to 25 % of the XDR value".
func (x Interface) PowerRatio(p units.Power) float64 {
	if x.TypicalPower <= 0 {
		return 0
	}
	return float64(p) / float64(x.TypicalPower)
}
