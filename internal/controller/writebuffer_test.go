package controller

import (
	"testing"

	"repro/internal/mapping"
)

func TestWriteBufferRejectsNegativeDepth(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.WriteBufferDepth = -1
	if _, err := New(cfg); err == nil {
		t.Error("expected depth error")
	}
}

// Posted writes are accepted immediately and only reach the DRAM when the
// buffer fills or is flushed.
func TestWriteBufferPostsAndDrains(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.WriteBufferDepth = 4
	c := newCtl(t, cfg)
	for i := 0; i < 3; i++ {
		got := c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: i * 4}, int64(i))
		if got != int64(i) {
			t.Errorf("posted write %d returned %d, want acceptance cycle %d", i, got, i)
		}
	}
	if st := c.Stats(); st.Writes != 0 {
		t.Fatalf("writes reached DRAM before drain: %+v", st)
	}
	// The fourth write fills the buffer and drains everything.
	end := c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: 12}, 3)
	st := c.Stats()
	if st.Writes != 4 {
		t.Errorf("drained %d writes, want 4", st.Writes)
	}
	if end <= 3 {
		t.Errorf("drain completion %d should be a real DRAM time", end)
	}
}

func TestWriteBufferFlush(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.WriteBufferDepth = 16
	c := newCtl(t, cfg)
	for i := 0; i < 5; i++ {
		c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: i * 4}, 0)
	}
	if c.Stats().Writes != 0 {
		t.Fatal("writes drained early")
	}
	end := c.Flush()
	if got := c.Stats().Writes; got != 5 {
		t.Errorf("flush drained %d writes, want 5", got)
	}
	if end != c.BusyCycles() || end <= 0 {
		t.Errorf("flush makespan = %d", end)
	}
	// Idempotent.
	if again := c.Flush(); again != end {
		t.Errorf("second flush changed makespan: %d vs %d", again, end)
	}
}

// Batching writes amortizes bus turnarounds on an interleaved read/write
// pattern: the buffered controller finishes sooner.
func TestWriteBufferReducesTurnarounds(t *testing.T) {
	run := func(depth int) int64 {
		cfg := defaultCfg(t)
		cfg.WriteBufferDepth = depth
		c := newCtl(t, cfg)
		// Alternate reads (bank 0) and writes (bank 1), the preprocess
		// stage's pattern.
		for i := 0; i < 512; i++ {
			col := (i * 4) % 512
			row := i / 128
			c.Access(false, mapping.Location{Bank: 0, Row: row, Column: col}, 0)
			c.Access(true, mapping.Location{Bank: 1, Row: row, Column: col}, 0)
		}
		return c.Flush()
	}
	base := run(0)
	buffered := run(32)
	if buffered >= base {
		t.Errorf("write buffer did not help: %d vs %d cycles", buffered, base)
	}
	// The gain is the turnaround overhead: expect at least 10 %.
	if float64(buffered) > 0.9*float64(base) {
		t.Errorf("write buffer gain too small: %d vs %d cycles", buffered, base)
	}
}

// The buffered controller moves exactly the same data.
func TestWriteBufferConservesTraffic(t *testing.T) {
	run := func(depth int) (reads, writes int64) {
		cfg := defaultCfg(t)
		cfg.WriteBufferDepth = depth
		c := newCtl(t, cfg)
		for i := 0; i < 100; i++ {
			c.Access(i%3 == 0, mapping.Location{Bank: i % 4, Row: i % 8, Column: (i * 4) % 512}, 0)
		}
		c.Flush()
		st := c.Stats()
		return st.Reads, st.Writes
	}
	r0, w0 := run(0)
	r8, w8 := run(8)
	if r0 != r8 || w0 != w8 {
		t.Errorf("traffic differs: %d/%d vs %d/%d", r0, w0, r8, w8)
	}
}
