package controller

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapping"
)

// Policy is the pluggable command-selection recipe behind the controller:
// what happens to a row after an access, which pending request the reorder
// window issues next, and how a stream's decoded location maps onto banks.
// The paper's open-page/closed-page enum is two built-in implementations;
// FR-FCFS ready-first reordering and per-client bank partitioning are the
// first post-paper additions.
//
// Policies are identified by the PagePolicy enum in every configuration
// struct (comparable, cache-key friendly); the interface is resolved once
// in New. Implementations must be stateless singletons — per-controller
// mutable state (the partition table, the reorder window) lives on the
// Controller/ReorderQueue so Reset-through-New can never lose it.
type Policy interface {
	// Kind is the enum identity the registry resolves.
	Kind() PagePolicy
	// Name is the canonical spelling used by flags, request schemas and
	// manifests.
	Name() string
	// AutoPrecharge reports whether every access closes its row with an
	// auto-precharge once restore/recovery windows elapse (the
	// closed-page recipe).
	AutoPrecharge() bool
	// CoalesceSafe declares that the policy's command stream for an
	// aligned same-row run is the pure open-page schedule the coalesced
	// fast path (AccessRun) reproduces arithmetically. Any policy that
	// reorders, remaps banks or closes rows must return false; the
	// dispatch layers then conservatively fall back to the per-burst
	// reference path.
	CoalesceSafe() bool
	// MinQueueDepth is the reorder window the policy requires when the
	// configuration does not set one (0 = in-order is fine).
	MinQueueDepth() int
	// Pick selects the preferred pending request to issue next, or -1 to
	// defer to the oldest. The queue's anti-starvation bound overrides
	// the choice after maxBypass bypasses.
	Pick(c *Controller, pending []queuedRequest) int
	// Map rewrites a decoded location for the request's stream before it
	// enters the queue (bank partitioning); identity for most policies.
	Map(c *Controller, stream int, loc mapping.Location) mapping.Location
}

// DefaultFRFCFSDepth is the reorder window the FR-FCFS policy opens when
// the configuration leaves QueueDepth at zero.
const DefaultFRFCFSDepth = 8

// builtinPolicies is the registry, indexed by PagePolicy value.
var builtinPolicies = []Policy{
	OpenPage:      openPagePolicy{},
	ClosedPage:    closedPagePolicy{},
	FRFCFS:        frfcfsPolicy{},
	BankPartition: bankPartitionPolicy{},
}

// policyFor resolves the enum to its implementation.
func policyFor(p PagePolicy) (Policy, bool) {
	if int(p) < 0 || int(p) >= len(builtinPolicies) {
		return nil, false
	}
	return builtinPolicies[int(p)], true
}

// Policies returns every registered policy in enum order.
func Policies() []PagePolicy {
	out := make([]PagePolicy, len(builtinPolicies))
	for i := range builtinPolicies {
		out[i] = PagePolicy(i)
	}
	return out
}

// PolicyNames returns the canonical names of every registered policy,
// sorted, for error messages and usage text.
func PolicyNames() []string {
	out := make([]string, len(builtinPolicies))
	for i, pol := range builtinPolicies {
		out[i] = pol.Name()
	}
	sort.Strings(out)
	return out
}

// ParsePolicy maps a flag or request spelling onto the enum. The paper-era
// short forms ("open", "closed") stay accepted alongside the canonical
// names; the empty string is the baseline.
func ParsePolicy(s string) (PagePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "open", "open-page":
		return OpenPage, nil
	case "closed", "closed-page":
		return ClosedPage, nil
	case "frfcfs", "fr-fcfs":
		return FRFCFS, nil
	case "bank-partition", "bank_partition", "partition":
		return BankPartition, nil
	default:
		return 0, fmt.Errorf("unknown page policy %q (valid policies: %s)", s, strings.Join(PolicyNames(), ", "))
	}
}

// pickRowHitFirst is the shared first-ready heuristic: the oldest pending
// request whose row is already open, or -1 when no row hit exists.
func pickRowHitFirst(c *Controller, pending []queuedRequest) int {
	best := -1
	for i := range pending {
		r := pending[i]
		if c.rowOpen(r.loc) {
			if best < 0 || r.seq < pending[best].seq {
				best = i
			}
		}
	}
	return best
}

// openPagePolicy is the paper's baseline: rows stay open, requests issue
// row-hit-first then oldest, banks are shared by all streams. It is the
// only policy whose schedule the coalesced fast path may reproduce.
type openPagePolicy struct{}

func (openPagePolicy) Kind() PagePolicy    { return OpenPage }
func (openPagePolicy) Name() string        { return "open-page" }
func (openPagePolicy) AutoPrecharge() bool { return false }
func (openPagePolicy) CoalesceSafe() bool  { return true }
func (openPagePolicy) MinQueueDepth() int  { return 0 }
func (openPagePolicy) Pick(c *Controller, pending []queuedRequest) int {
	return pickRowHitFirst(c, pending)
}
func (openPagePolicy) Map(c *Controller, stream int, loc mapping.Location) mapping.Location {
	return loc
}

// closedPagePolicy auto-precharges after every access (the paper's
// ablation). The schedule differs from open page on every row reuse, so it
// is never coalesce-safe.
type closedPagePolicy struct{}

func (closedPagePolicy) Kind() PagePolicy    { return ClosedPage }
func (closedPagePolicy) Name() string        { return "closed-page" }
func (closedPagePolicy) AutoPrecharge() bool { return true }
func (closedPagePolicy) CoalesceSafe() bool  { return false }
func (closedPagePolicy) MinQueueDepth() int  { return 0 }
func (closedPagePolicy) Pick(c *Controller, pending []queuedRequest) int {
	return pickRowHitFirst(c, pending)
}
func (closedPagePolicy) Map(c *Controller, stream int, loc mapping.Location) mapping.Location {
	return loc
}

// frfcfsPolicy is first-ready FCFS over the reorder window: row hits
// first, then the oldest request whose bank is closed (its activate can
// issue without spending a precharge), then the oldest outright. It opens
// a DefaultFRFCFSDepth window even when the configuration sets none, and
// reordering makes it unconditionally coalesce-unsafe.
type frfcfsPolicy struct{}

func (frfcfsPolicy) Kind() PagePolicy    { return FRFCFS }
func (frfcfsPolicy) Name() string        { return "frfcfs" }
func (frfcfsPolicy) AutoPrecharge() bool { return false }
func (frfcfsPolicy) CoalesceSafe() bool  { return false }
func (frfcfsPolicy) MinQueueDepth() int  { return DefaultFRFCFSDepth }
func (frfcfsPolicy) Pick(c *Controller, pending []queuedRequest) int {
	if best := pickRowHitFirst(c, pending); best >= 0 {
		return best
	}
	best := -1
	for i := range pending {
		r := pending[i]
		if !c.banks[r.loc.Bank].open {
			if best < 0 || r.seq < pending[best].seq {
				best = i
			}
		}
	}
	return best
}
func (frfcfsPolicy) Map(c *Controller, stream int, loc mapping.Location) mapping.Location {
	return loc
}

// bankPartitionPolicy assigns each client stream to a two-bank group
// (round-robin on first sight), confining its row-buffer footprint so
// streams cannot thrash each other's open rows. Selection order matches
// the baseline; the remap alone makes it coalesce-unsafe (the fast path's
// arithmetic row walk decodes unmapped addresses).
type bankPartitionPolicy struct{}

func (bankPartitionPolicy) Kind() PagePolicy    { return BankPartition }
func (bankPartitionPolicy) Name() string        { return "bank-partition" }
func (bankPartitionPolicy) AutoPrecharge() bool { return false }
func (bankPartitionPolicy) CoalesceSafe() bool  { return false }
func (bankPartitionPolicy) MinQueueDepth() int  { return 0 }
func (bankPartitionPolicy) Pick(c *Controller, pending []queuedRequest) int {
	return pickRowHitFirst(c, pending)
}
func (bankPartitionPolicy) Map(c *Controller, stream int, loc mapping.Location) mapping.Location {
	return c.partitionMap(stream, loc)
}

// partitionGroupSize is the number of banks each partition group spans:
// two, so every client keeps a minimum of bank-level parallelism while a
// 4-bank paper device still yields two isolated groups.
const partitionGroupSize = 2

// partitionMap confines a stream's accesses to its assigned bank group.
// Groups are assigned round-robin the first time a stream is seen; the
// table is Controller state so Reset-through-New clears it.
func (c *Controller) partitionMap(stream int, loc mapping.Location) mapping.Location {
	banks := c.cfg.Speed.Geometry.Banks
	groups := banks / partitionGroupSize
	if groups <= 1 {
		return loc
	}
	if stream < 0 {
		stream = 0
	}
	for stream >= len(c.partGroup) {
		c.partGroup = append(c.partGroup, -1)
	}
	g := c.partGroup[stream]
	if g < 0 {
		g = c.partNext
		c.partGroup[stream] = g
		c.partNext = (c.partNext + 1) % int32(groups)
	}
	loc.Bank = int(g)*partitionGroupSize + loc.Bank%partitionGroupSize
	return loc
}

// MapStream applies the policy's bank mapping for the stream — identity
// for every policy except bank partitioning. Dispatch layers call it
// before a location enters the reorder window so row-hit predicates see
// the final coordinate.
func (c *Controller) MapStream(stream int, loc mapping.Location) mapping.Location {
	return c.pol.Map(c, stream, loc)
}

// MinQueueDepth returns the reorder window the controller's policy
// requires when the configuration sets none.
func (c *Controller) MinQueueDepth() int { return c.pol.MinQueueDepth() }

// CoalesceSafe reports whether the policy declared its schedule safe for
// the coalesced fast path.
func (c *Controller) CoalesceSafe() bool { return c.pol.CoalesceSafe() }
