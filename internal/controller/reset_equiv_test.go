package controller

import (
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/mapping"
	"repro/internal/probe"
)

// TestResetEquivalence is the regression guard for the "Reset forgot a
// field" bug class (a PR once dropped srThreshold on Reset): across
// randomized configurations and access patterns, a controller that ran a
// workload and was Reset must replay the workload bit-identically to a
// freshly constructed controller — same completion times, stats, busy
// cycles, latency histogram and probe event stream.
func TestResetEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	speed := speed400(t)
	bankBytes := speed.Geometry.BankBytes() * int64(speed.Geometry.Banks)

	type op struct {
		write   bool
		local   int64
		arrival int64
	}

	for trial := 0; trial < 25; trial++ {
		cfg := Config{
			Speed:                speed,
			Policy:               PagePolicy(rng.Intn(len(builtinPolicies))),
			PowerDown:            rng.Intn(2) == 0,
			RecordLatency:        rng.Intn(2) == 0,
			RefreshPostpone:      rng.Intn(5),
			PrechargeOnIdle:      rng.Intn(2) == 0,
			SelfRefreshThreshold: []int64{0, -1, 512 + rng.Int63n(4096)}[rng.Intn(3)],
			WriteBufferDepth:     rng.Intn(9),
			Channel:              rng.Intn(4),
		}
		var freshRec, resetRec *probe.Recorder
		if rng.Intn(2) == 0 {
			freshRec = &probe.Recorder{}
			resetRec = &probe.Recorder{}
		}
		var freshInj, resetInj *fault.Injector
		if rng.Intn(2) == 0 {
			plan := fault.Plan{
				Seed:          rng.Uint64(),
				ReadErrorRate: float64(rng.Intn(3)) * 0.02,
				StallRate:     float64(rng.Intn(3)) * 0.01,
				DerateAtCycle: []int64{0, 1 + rng.Int63n(5000)}[rng.Intn(2)],
			}
			var err error
			if freshInj, err = fault.NewInjector(plan, 1); err != nil {
				t.Fatal(err)
			}
			if resetInj, err = fault.NewInjector(plan, 1); err != nil {
				t.Fatal(err)
			}
		}

		ops := make([]op, 400)
		arrival := int64(0)
		for i := range ops {
			// Occasional long gaps exercise power-down and self-refresh.
			switch rng.Intn(10) {
			case 0:
				arrival += speed.REFI * (1 + rng.Int63n(6))
			case 1, 2:
				arrival += rng.Int63n(200)
			}
			ops[i] = op{
				write:   rng.Intn(2) == 0,
				local:   rng.Int63n(bankBytes) &^ 15,
				arrival: arrival,
			}
		}

		run := func(c *Controller, inj *fault.ChannelInjector) ([]int64, int64) {
			var ends []int64
			for i, o := range ops {
				// Exercise the policy's stream mapping (the partition table
				// is Controller state the replay must not leak across Reset).
				c.MapStream(i%5, mapping.Location{Bank: i % speed.Geometry.Banks})
				end := c.AccessAddr(o.write, o.local, o.arrival)
				if inj != nil && !o.write {
					// Mirror the channel layer's ECC retry re-issue so the
					// fault stream advances like a real run.
					if retries, _ := inj.ReadOutcome(); retries > 0 {
						for a := 0; a < retries; a++ {
							end = c.AccessAddr(false, o.local, end+inj.RetryBackoff(a))
						}
					}
				}
				ends = append(ends, end)
			}
			return ends, c.Flush()
		}

		freshCfg := cfg
		if freshRec != nil {
			freshCfg.Probe = freshRec
		}
		if freshInj != nil {
			freshCfg.Faults = freshInj.Channel(0)
		}
		fresh := newCtl(t, freshCfg)
		var freshChInj *fault.ChannelInjector
		if freshInj != nil {
			freshChInj = freshInj.Channel(0)
		}
		wantEnds, wantFlush := run(fresh, freshChInj)

		resetCfg := cfg
		if resetRec != nil {
			resetCfg.Probe = resetRec
		}
		var resetChInj *fault.ChannelInjector
		if resetInj != nil {
			resetCfg.Faults = resetInj.Channel(0)
			resetChInj = resetInj.Channel(0)
		}
		ctl := newCtl(t, resetCfg)
		run(ctl, resetChInj) // dirty the controller
		ctl.Reset()
		if resetInj != nil {
			resetInj.Reset()
		}
		if resetRec != nil {
			resetRec.Events = resetRec.Events[:0]
		}
		gotEnds, gotFlush := run(ctl, resetChInj)

		if !reflect.DeepEqual(gotEnds, wantEnds) {
			for i := range wantEnds {
				if gotEnds[i] != wantEnds[i] {
					t.Fatalf("trial %d (cfg %+v): op %d completed at %d after Reset, fresh at %d",
						trial, cfg, i, gotEnds[i], wantEnds[i])
				}
			}
		}
		if gotFlush != wantFlush {
			t.Errorf("trial %d: flush %d after Reset, fresh %d", trial, gotFlush, wantFlush)
		}
		if got, want := ctl.Stats(), fresh.Stats(); got != want {
			t.Errorf("trial %d (cfg %+v): stats diverged after Reset:\nreset: %+v\nfresh: %+v",
				trial, cfg, got, want)
		}
		if got, want := ctl.BusyCycles(), fresh.BusyCycles(); got != want {
			t.Errorf("trial %d: busy cycles %d after Reset, fresh %d", trial, got, want)
		}
		if cfg.RecordLatency && !reflect.DeepEqual(ctl.Latency(), fresh.Latency()) {
			t.Errorf("trial %d: latency histograms diverged", trial)
		}
		if freshRec != nil && !reflect.DeepEqual(resetRec.Events, freshRec.Events) {
			t.Errorf("trial %d: probe event streams diverged after Reset (%d vs %d events)",
				trial, len(resetRec.Events), len(freshRec.Events))
		}
	}
}

// fieldValue reads field i of a struct value, reaching through the
// unexported barrier so the test can compare and print internal state.
func fieldValue(v reflect.Value, i int) interface{} {
	f := v.Field(i)
	if f.CanInterface() {
		return f.Interface()
	}
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem().Interface()
}

// TestResetFieldEquivalence walks every Controller field by reflection and
// requires a Reset controller to be structurally identical to a freshly
// constructed one. Unlike the behavioral replay above — which only notices
// a stale field if some workload happens to read it — this fails by field
// name the moment a field is added to Controller but left out of Reset.
func TestResetFieldEquivalence(t *testing.T) {
	speed := speed400(t)
	base := Config{Speed: speed, PowerDown: true}

	closed := base
	closed.Policy = ClosedPage
	closed.WriteBufferDepth = 4

	tuned := base
	tuned.RefreshPostpone = 6
	tuned.PrechargeOnIdle = true
	tuned.RecordLatency = true
	tuned.SelfRefreshThreshold = 2048
	tuned.Channel = 3
	tuned.Probe = &probe.Recorder{}

	frfcfs := base
	frfcfs.Policy = FRFCFS

	partition := base
	partition.Policy = BankPartition

	for name, cfg := range map[string]Config{
		"baseline": base, "closed-page+wbuf": closed, "tuned+probe": tuned,
		"frfcfs": frfcfs, "bank-partition": partition,
	} {
		t.Run(name, func(t *testing.T) {
			ctl := newCtl(t, cfg)
			// Dirty every subsystem: row state, transfer history, the ACT
			// window, refresh debt, the write buffer, power-state residency,
			// stats, the latency histogram and the event clock.
			var end int64
			for i := int64(0); i < 300; i++ {
				arrival := end
				if i%23 == 0 {
					arrival += speed.REFI * 3 // power-down / self-refresh / debt
				}
				// Dirty the policy's stream map too (partGroup/partNext for
				// bank partitioning; a no-op for every other policy).
				ctl.MapStream(int(i%7), mapping.Location{Bank: int(i) % speed.Geometry.Banks})
				end = ctl.AccessAddr(i%3 == 0, (i*176)&^15, arrival)
			}
			ctl.Flush()
			ctl.Reset()

			fresh := newCtl(t, cfg)
			got := reflect.ValueOf(ctl).Elem()
			want := reflect.ValueOf(fresh).Elem()
			for i := 0; i < got.NumField(); i++ {
				g, w := fieldValue(got, i), fieldValue(want, i)
				if !reflect.DeepEqual(g, w) {
					t.Errorf("field %s survived Reset: %+v, fresh controller has %+v",
						got.Type().Field(i).Name, g, w)
				}
			}
		})
	}
}
