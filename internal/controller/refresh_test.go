package controller

import (
	"testing"

	"repro/internal/mapping"
)

// streamBursts issues n row-friendly read bursts at the given arrival pace
// (0 = saturated) and returns the controller.
func streamBursts(t *testing.T, cfg Config, n int, pace int64) *Controller {
	t.Helper()
	c := newCtl(t, cfg)
	var arrival int64
	for i := 0; i < n; i++ {
		bank := (i / 128) % 4
		row := i / 512
		col := (i * 4) % 512
		c.Access(false, mapping.Location{Bank: bank, Row: row, Column: col}, arrival)
		arrival += pace
	}
	return c
}

func TestRefreshPostponeRejectsNegative(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.RefreshPostpone = -1
	if _, err := New(cfg); err == nil {
		t.Error("expected error")
	}
}

// Postponement removes refresh interruptions from a saturated stream: the
// makespan shrinks by roughly the refresh time saved.
func TestRefreshPostponeSpeedsSaturatedStream(t *testing.T) {
	cfg := defaultCfg(t)
	n := int(cfg.Speed.REFI) * 3 // several refresh intervals worth of bursts
	base := streamBursts(t, cfg, n, 0)

	cfg.RefreshPostpone = 8
	postponed := streamBursts(t, cfg, n, 0)

	if postponed.BusyCycles() >= base.BusyCycles() {
		t.Errorf("postponement did not help: %d vs %d cycles",
			postponed.BusyCycles(), base.BusyCycles())
	}
	// The postponed refreshes are debt, not skipped: at most 8 deferred.
	debtGap := base.Stats().Refreshes - postponed.Stats().Refreshes
	if debtGap < 1 || debtGap > 8 {
		t.Errorf("refresh debt = %d, want 1..8", debtGap)
	}
}

// Postponed refreshes catch up inside an idle gap for free.
func TestRefreshCatchUpInIdleGap(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.RefreshPostpone = 8
	c := newCtl(t, cfg)
	s := cfg.Speed
	// Stream past two refresh intervals: refreshes deferred.
	var end int64
	n := int(s.REFI) * 2 / 2 // bursts at ~2 cycles each cover 2 intervals
	for i := 0; i < n; i++ {
		end = c.Access(false, mapping.Location{Bank: (i / 128) % 4, Row: i / 512, Column: (i * 4) % 512}, 0)
	}
	deferredBefore := c.Stats().Refreshes
	// A long idle gap: the debt retires inside it.
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, end+10_000)
	after := c.Stats().Refreshes
	if after <= deferredBefore {
		t.Errorf("no refresh catch-up in gap: %d -> %d", deferredBefore, after)
	}
}

// Precharge-on-idle converts idle time into the cheaper precharge
// power-down state.
func TestPrechargeOnIdle(t *testing.T) {
	base := defaultCfg(t)
	c1 := newCtl(t, base)
	end := c1.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c1.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	st := c1.Stats()
	if st.PrechargePDCycles != 0 {
		t.Fatalf("baseline idle should be active PD: %+v", st)
	}

	cfg := base
	cfg.PrechargeOnIdle = true
	c2 := newCtl(t, cfg)
	end = c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	e2 := c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	st = c2.Stats()
	if st.PrechargePDCycles == 0 || st.PrechargePDCycles != st.PowerDownCycles {
		t.Errorf("idle should be precharge PD: %+v", st)
	}
	// The wake access pays a fresh activate (row was closed).
	if st.RowMisses < 2 {
		t.Errorf("expected a re-activate after idle precharge: %+v", st)
	}
	if e2 <= end+1000 {
		t.Errorf("woken access time %d implausible", e2)
	}
}
