package controller

import (
	"repro/internal/mapping"
	"repro/internal/probe"
)

// queuedRequest is one pending burst in the reorder queue.
type queuedRequest struct {
	write   bool
	loc     mapping.Location
	arrival int64
	seq     int64
}

// ReorderQueue wraps a Controller with a small FR-FCFS-style scheduling
// window: up to Depth pending bursts, from which the scheduler issues
// row-buffer hits first and otherwise the oldest request — the classic
// first-ready, first-come-first-served policy. The paper's controller is
// strictly in-order; this is an "advanced control mechanism" extension per
// its conclusions.
//
// Reordering assumes the window's requests are independent, which holds for
// the recording load's concurrent streams (each stream is internally
// ordered by the generator, and the window is far smaller than any
// stage-to-stage dependency distance). An anti-starvation bound forces the
// oldest request out after it has been bypassed maxBypass times.
type ReorderQueue struct {
	ctl      *Controller
	depth    int
	pending  []queuedRequest
	nextSeq  int64
	issued   int64
	lastEnd  int64
	bypassOf int64 // seq of the tracked oldest, for starvation accounting
	bypasses int
}

// maxBypass bounds how many times the oldest pending request may be
// overtaken before it is forced to issue.
const maxBypass = 16

// NewReorderQueue builds the scheduling window. depth == 0 degenerates to
// the in-order controller.
func NewReorderQueue(ctl *Controller, depth int) *ReorderQueue {
	if depth < 0 {
		depth = 0
	}
	return &ReorderQueue{ctl: ctl, depth: depth}
}

// Controller returns the wrapped channel controller.
func (q *ReorderQueue) Controller() *Controller { return q.ctl }

// Access enqueues one burst; when the window is full, the best pending
// request issues. The returned cycle is the completion of whichever request
// was issued (or the acceptance cycle when only enqueued).
func (q *ReorderQueue) Access(write bool, loc mapping.Location, arrival int64) int64 {
	if q.depth == 0 {
		if q.ctl.HasProbe() {
			q.ctl.EmitEvent(probe.Event{Kind: probe.KindEnqueue, Bank: int32(loc.Bank), At: arrival, End: arrival, Depth: 1})
		}
		end := q.ctl.Access(write, loc, arrival)
		if end > q.lastEnd {
			q.lastEnd = end
		}
		if q.ctl.HasProbe() {
			lat := end - arrival
			if lat < 0 {
				lat = 0
			}
			q.ctl.EmitEvent(probe.Event{Kind: probe.KindComplete, Bank: int32(loc.Bank), At: end, End: end, Aux: lat})
		}
		return end
	}
	q.pending = append(q.pending, queuedRequest{write: write, loc: loc, arrival: arrival, seq: q.nextSeq})
	q.nextSeq++
	if q.ctl.HasProbe() {
		q.ctl.EmitEvent(probe.Event{Kind: probe.KindEnqueue, Bank: int32(loc.Bank),
			At: arrival, End: arrival, Depth: int32(len(q.pending))})
	}
	if len(q.pending) < q.depth {
		return arrival
	}
	return q.issueBest()
}

// issueBest issues the policy's preferred pending request (row hits first
// for every built-in; FR-FCFS additionally prefers closed banks), forcing
// the oldest once the anti-starvation bound trips.
func (q *ReorderQueue) issueBest() int64 {
	best := 0
	oldest := 0
	for i := range q.pending {
		if q.pending[i].seq < q.pending[oldest].seq {
			oldest = i
		}
	}
	if q.bypassOf != q.pending[oldest].seq {
		q.bypassOf = q.pending[oldest].seq
		q.bypasses = 0
	}
	if q.bypasses >= maxBypass {
		best = oldest
	} else {
		best = q.ctl.pol.Pick(q.ctl, q.pending)
		if best < 0 {
			best = oldest
		}
	}
	r := q.pending[best]
	if best != oldest {
		q.bypasses++
	}
	q.pending[best] = q.pending[len(q.pending)-1]
	q.pending = q.pending[:len(q.pending)-1]
	q.issued++
	end := q.ctl.Access(r.write, r.loc, r.arrival)
	if end > q.lastEnd {
		q.lastEnd = end
	}
	if q.ctl.HasProbe() {
		lat := end - r.arrival
		if lat < 0 {
			lat = 0
		}
		q.ctl.EmitEvent(probe.Event{Kind: probe.KindComplete, Bank: int32(r.loc.Bank),
			At: end, End: end, Aux: lat, Depth: int32(len(q.pending))})
	}
	return end
}

// Flush issues every pending request and drains the controller's write
// buffer, returning the final makespan.
func (q *ReorderQueue) Flush() int64 {
	for len(q.pending) > 0 {
		q.issueBest()
	}
	return q.ctl.Flush()
}

// Pending returns the number of queued requests.
func (q *ReorderQueue) Pending() int { return len(q.pending) }

// rowOpen reports whether the location's row is currently open — the
// scheduler's row-hit predicate.
func (c *Controller) rowOpen(loc mapping.Location) bool {
	b := &c.banks[loc.Bank]
	return b.open && b.row == loc.Row
}

// Depth returns the window size (0 = in-order).
func (q *ReorderQueue) Depth() int { return q.depth }
