package controller

import (
	"testing"

	"repro/internal/mapping"
)

func TestReorderQueueDepthZeroIsInOrder(t *testing.T) {
	cfg := defaultCfg(t)
	direct := newCtl(t, cfg)
	queued := NewReorderQueue(newCtl(t, cfg), 0)
	locs := []mapping.Location{
		{Bank: 0, Row: 0, Column: 0},
		{Bank: 1, Row: 3, Column: 4},
		{Bank: 0, Row: 1, Column: 0},
	}
	for _, loc := range locs {
		a := direct.Access(false, loc, 0)
		b := queued.Access(false, loc, 0)
		if a != b {
			t.Errorf("depth 0 diverged: %d vs %d", a, b)
		}
	}
	if queued.Flush() != direct.BusyCycles() {
		t.Error("flush makespan differs at depth 0")
	}
	if NewReorderQueue(newCtl(t, cfg), -3).depth != 0 {
		t.Error("negative depth should clamp to 0")
	}
}

// Row hits jump the queue: a conflicting row-change request is deferred
// while same-row requests stream.
func TestReorderQueuePrefersRowHits(t *testing.T) {
	cfg := defaultCfg(t)
	q := NewReorderQueue(newCtl(t, cfg), 4)
	// Open row 0 by filling the queue with leading requests.
	seq := []mapping.Location{
		{Bank: 0, Row: 0, Column: 0},  // opens row 0 when issued
		{Bank: 0, Row: 5, Column: 0},  // conflict: should be deferred
		{Bank: 0, Row: 0, Column: 4},  // hit
		{Bank: 0, Row: 0, Column: 8},  // hit
		{Bank: 0, Row: 0, Column: 12}, // hit
		{Bank: 0, Row: 0, Column: 16}, // hit
	}
	for _, loc := range seq {
		q.Access(false, loc, 0)
	}
	q.Flush()
	st := q.Controller().Stats()
	// In order: row0 open, conflict to row5, then four conflicts back...
	// With FR-FCFS: row-0 requests coalesce; the row-5 request issues
	// once, costing a single conflict (plus the final drain order).
	if st.RowConflicts > 2 {
		t.Errorf("reordered conflicts = %d, want <= 2 (in-order would thrash)", st.RowConflicts)
	}
}

// The reordered schedule is never slower than in-order on a conflicting
// stream mix, and it moves the same traffic.
func TestReorderQueueThroughput(t *testing.T) {
	pattern := func() []mapping.Location {
		var locs []mapping.Location
		// Two interleaved streams thrash bank 0 rows 0 and 1.
		for i := 0; i < 256; i++ {
			locs = append(locs,
				mapping.Location{Bank: 0, Row: 0, Column: (i * 4) % 512},
				mapping.Location{Bank: 0, Row: 1, Column: (i * 4) % 512},
			)
		}
		return locs
	}
	run := func(depth int) (int64, int64) {
		q := NewReorderQueue(newCtl(t, defaultCfg(t)), depth)
		for _, loc := range pattern() {
			q.Access(false, loc, 0)
		}
		end := q.Flush()
		return end, q.Controller().Stats().Accesses()
	}
	inorder, n0 := run(0)
	reordered, n1 := run(16)
	if n0 != n1 {
		t.Fatalf("traffic differs: %d vs %d", n0, n1)
	}
	if reordered >= inorder {
		t.Errorf("reordering did not help: %d vs %d cycles", reordered, inorder)
	}
	// The thrashing pattern should improve dramatically (row grouping).
	if float64(reordered) > 0.5*float64(inorder) {
		t.Errorf("reordering gain too small: %d vs %d", reordered, inorder)
	}
}

// Starvation bound: a never-hitting request still issues.
func TestReorderQueueAntiStarvation(t *testing.T) {
	q := NewReorderQueue(newCtl(t, defaultCfg(t)), 2)
	// One row-conflict request followed by an endless stream of hits.
	q.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	q.Access(false, mapping.Location{Bank: 0, Row: 7, Column: 0}, 0) // victim
	for i := 0; i < 3*maxBypass; i++ {
		q.Access(false, mapping.Location{Bank: 0, Row: 0, Column: (i * 4) % 512}, 0)
	}
	// Well before the flush, the victim must have issued: bank 0 saw
	// row 7 at least once.
	if got := q.Controller().Stats().RowConflicts; got < 1 {
		t.Error("starved request never issued")
	}
	if q.Pending() > 2 {
		t.Errorf("pending = %d, exceeds depth", q.Pending())
	}
	q.Flush()
	if q.Pending() != 0 {
		t.Error("flush left pending requests")
	}
}
