// Package controller implements the per-channel memory controller of the
// paper's channel model (Fig. 2): it maps burst requests onto DRAM commands
// (precharge, activate, read, write, refresh, power-down entry/exit),
// enforces the device's timing constraints cycle-accurately, and accounts
// the state residency the power model consumes.
//
// The controller processes requests in order, one burst at a time, the way
// the paper's single-master load ("predominantly from a single source")
// reaches each channel. Bank-level parallelism still arises because
// consecutive bursts may target different banks whose activates overlap
// earlier bursts' data transfers.
package controller

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/mapping"
	"repro/internal/probe"
	"repro/internal/stats"
)

// PagePolicy identifies a registered scheduling policy (see Policy in
// policy.go). The int identity keeps every configuration struct
// comparable, which the content-addressed cache keys rely on.
type PagePolicy int

const (
	// OpenPage leaves the accessed row open; subsequent accesses to the
	// same row need only a column command. The paper uses open page for
	// all shown results.
	OpenPage PagePolicy = iota
	// ClosedPage precharges the bank immediately after every access
	// (auto-precharge); evaluated as an ablation.
	ClosedPage
	// FRFCFS issues row hits first, then requests to closed banks, then
	// the oldest — first-ready FCFS over a reorder window it opens by
	// default (DefaultFRFCFSDepth).
	FRFCFS
	// BankPartition confines each client stream to its own bank group so
	// streams cannot evict each other's open rows.
	BankPartition
)

// String names the policy.
func (p PagePolicy) String() string {
	if pol, ok := policyFor(p); ok {
		return pol.Name()
	}
	return fmt.Sprintf("PagePolicy(%d)", int(p))
}

// Config parameterizes one channel controller.
type Config struct {
	Speed  dram.Speed
	Mux    mapping.Multiplexing
	Policy PagePolicy
	// PowerDown enables the paper's aggressive power saving: the bank
	// cluster enters a power-down state after the first idle clock cycle
	// and pays tXP on exit.
	PowerDown bool
	// RefreshDisabled turns periodic refresh off (test/ablation use only;
	// real DRAM always refreshes).
	RefreshDisabled bool
	// RecordLatency enables the per-access latency histogram.
	RecordLatency bool
	// RefreshPostpone allows deferring up to this many due refreshes
	// while the channel streams, catching up during idle gaps — the
	// DDR-style postponement that keeps refresh out of the data path.
	// Zero keeps the paper's immediate refresh.
	RefreshPostpone int
	// PrechargeOnIdle closes all banks before entering power-down, so
	// idle time rests in the cheaper precharge power-down state at the
	// cost of re-activating rows on wake.
	PrechargeOnIdle bool
	// SelfRefreshThreshold is the idle-gap length (cycles) beyond which
	// the cluster enters self-refresh instead of power-down; exit costs
	// tXSR and resets the refresh timer. Zero means the default of
	// 4 x tREFI; negative disables self-refresh.
	SelfRefreshThreshold int64
	// WriteBufferDepth > 0 enables a posted-write buffer of that many
	// bursts: writes are accepted immediately and drained back-to-back,
	// amortizing bus turnarounds (an "advanced control mechanism" per the
	// paper's conclusions). Zero keeps the paper's baseline behaviour.
	// Read-after-write hazards are assumed forwarded from the buffer at
	// no DRAM cost (data values are not modeled).
	WriteBufferDepth int
	// Probe, when non-nil, receives a typed event for every DRAM command,
	// row outcome, power-state residency and request enqueue/complete the
	// controller processes (see internal/probe). Nil — the default —
	// keeps the hot path event-free.
	Probe probe.Sink
	// SynthCoalescedEvents keeps the coalesced fast path (AccessRun) active
	// with a probe attached: same-row jumps synthesize the per-burst event
	// groups arithmetically, producing a stream identical event for event
	// to the per-burst reference path (the internal/check differential
	// oracle asserts this). Testing/oracle knob; ordinary observation uses
	// the per-burst fallback and pays nothing for this field.
	SynthCoalescedEvents bool
	// Channel tags emitted events with this channel index.
	Channel int
	// Faults, when non-nil, is this channel's fault decision stream (see
	// internal/fault): the controller draws stall jitter per request and
	// applies the thermal refresh derate when the plan's cycle passes.
	// Nil — the default — keeps the hot path fault-free, same as Probe.
	Faults *fault.ChannelInjector
}

// Controller is the cycle-level model of one channel: memory controller,
// DRAM interconnect and bank cluster. All times are in DRAM clock cycles
// from the start of the simulation.
type Controller struct {
	cfg    Config
	pol    Policy // resolved from cfg.Policy in New; stateless singleton
	mapper mapping.BankMapper
	banks  []bankState

	cmdClock      int64 // next free command-bus cycle
	busFreeAt     int64 // first cycle the data bus is free
	lastRdDataEnd int64
	lastWrDataEnd int64
	lastXferWrite bool
	haveXfer      bool
	lastActAt     int64 // most recent ACT on any bank (tRRD)
	actHist       [4]int64
	actHistIdx    int
	actCount      int64
	srThreshold   int64
	refreshDebt   int
	refi          int64 // effective refresh interval (derated thermally)
	derated       bool
	nextRefreshAt int64
	firstCmdAt    int64
	haveCmd       bool

	wbuf []mapping.Location // posted writes awaiting drain

	// Bank-partitioning state: stream id -> assigned bank group, -1 when
	// unseen; partNext is the round-robin cursor. Only the BankPartition
	// policy touches these.
	partGroup []int32
	partNext  int32

	probe   probe.Sink // nil = observability disabled (the fast path)
	chID    int32
	evClock int64 // monotonic floor for emitted event timestamps

	st  stats.Channel
	lat stats.Histogram
}

type bankState struct {
	open        bool
	row         int
	rdwrReady   int64 // earliest RD/WR command (tRCD after ACT)
	preReady    int64 // earliest PRE (tRAS, tRTP, write recovery)
	actReady    int64 // earliest ACT (tRP after PRE, tRC after ACT, tRFC)
	lastDataEnd int64
	accesses    int64
	activates   int64
}

// New builds a channel controller. The multiplexing type in cfg selects the
// bank mapper used by Decode-driven entry points.
func New(cfg Config) (*Controller, error) {
	mapper, err := mapping.NewBankMapper(cfg.Speed.Geometry, cfg.Mux)
	if err != nil {
		return nil, err
	}
	pol, ok := policyFor(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("controller: unknown page policy %d (valid policies: %s)",
			int(cfg.Policy), strings.Join(PolicyNames(), ", "))
	}
	if cfg.Speed.TCK <= 0 {
		return nil, fmt.Errorf("controller: unresolved speed (use dram.Resolve)")
	}
	if cfg.WriteBufferDepth < 0 {
		return nil, fmt.Errorf("controller: negative write buffer depth %d", cfg.WriteBufferDepth)
	}
	if cfg.RefreshPostpone < 0 {
		return nil, fmt.Errorf("controller: negative refresh postponement %d", cfg.RefreshPostpone)
	}
	c := &Controller{
		cfg:    cfg,
		pol:    pol,
		mapper: mapper,
		banks:  make([]bankState, cfg.Speed.Geometry.Banks),
		probe:  cfg.Probe,
		chID:   int32(cfg.Channel),
	}
	c.refi = cfg.Speed.REFI
	c.nextRefreshAt = cfg.Speed.REFI
	switch {
	case cfg.SelfRefreshThreshold > 0:
		c.srThreshold = cfg.SelfRefreshThreshold
	case cfg.SelfRefreshThreshold == 0:
		c.srThreshold = 4 * cfg.Speed.REFI
	default:
		c.srThreshold = 0 // disabled
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// HasProbe reports whether an event sink is attached. Callers emitting
// through EmitEvent should guard with it so the disabled path stays free
// of event construction.
func (c *Controller) HasProbe() bool { return c.probe != nil }

// SynthCoalesced reports whether the controller synthesizes per-burst
// events on the coalesced path (see Config.SynthCoalescedEvents); the
// channel keeps handing runs to AccessRun then even though a probe is
// attached.
func (c *Controller) SynthCoalesced() bool { return c.cfg.SynthCoalescedEvents }

// EmitEvent forwards a channel-level event (enqueue/complete) into the
// controller's probe stream. No-op without a sink.
func (c *Controller) EmitEvent(ev probe.Event) {
	if c.probe == nil {
		return
	}
	c.emitEv(ev)
}

// emitEv tags and forwards one event, clamping At so the per-channel
// stream stays monotonically non-decreasing (the probe contract) even for
// events stamped with request arrival times that lag the command clock.
// End is never clamped: it carries the exact schedule (envelope events
// like enqueue/complete are stamped with arrival and completion times that
// can outrun a command issued just after them, so a clamped At may exceed
// End), and the invariant checker reconstructs true issue cycles from it.
func (c *Controller) emitEv(ev probe.Event) {
	if ev.At < c.evClock {
		ev.At = c.evClock
	} else {
		c.evClock = ev.At
	}
	ev.Channel = c.chID
	c.probe.Emit(ev)
}

// cmdAt reserves the command bus at or after t and returns the issue cycle.
func (c *Controller) cmdAt(t int64) int64 {
	if t < c.cmdClock {
		t = c.cmdClock
	}
	c.cmdClock = t + 1
	if !c.haveCmd {
		c.firstCmdAt = t
		c.haveCmd = true
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// refreshNow performs one auto-refresh no earlier than t, first issuing a
// precharge-all when a row is open, and returns the refresh completion
// cycle. The refresh command also waits out every bank's pending activate
// window — a closed bank may still be inside a precharge (tRP) or a prior
// refresh (tRFC), and REF to an idle bank obeys the same spacing as ACT.
func (c *Controller) refreshNow(t int64) int64 {
	pre := t
	anyOpen := false
	refReady := t
	for i := range c.banks {
		refReady = max64(refReady, c.banks[i].actReady)
		if c.banks[i].open {
			anyOpen = true
			pre = max64(pre, c.banks[i].preReady)
		}
	}
	if anyOpen {
		pt := c.cmdAt(pre)
		c.st.Precharges++
		if c.probe != nil {
			c.emitEv(probe.Event{Kind: probe.KindPrecharge, Bank: -1, At: pt, End: pt + c.cfg.Speed.RP})
		}
		refReady = max64(refReady, pt+c.cfg.Speed.RP)
		for i := range c.banks {
			c.banks[i].open = false
		}
	}
	ref := c.cmdAt(refReady)
	c.st.Refreshes++
	done := ref + c.cfg.Speed.RFC
	if c.probe != nil {
		c.emitEv(probe.Event{Kind: probe.KindRefresh, Bank: -1, At: ref, End: done})
	}
	for i := range c.banks {
		c.banks[i].actReady = max64(c.banks[i].actReady, done)
	}
	return done
}

// refresh performs the next scheduled auto-refresh no earlier than earliest
// and advances the schedule.
func (c *Controller) refresh(earliest int64) {
	c.refreshNow(max64(earliest, c.nextRefreshAt))
	c.nextRefreshAt += c.refi
}

// wake accounts an idle gap before arrival and returns the earliest command
// cycle, including the power-down or self-refresh exit penalty when one
// applies.
func (c *Controller) wake(arrival int64) int64 {
	earliest := arrival
	if !c.haveXfer && !c.haveCmd {
		return earliest
	}
	s := c.cfg.Speed
	idleFrom := max64(c.cmdClock, c.busFreeAt)
	gap := arrival - idleFrom
	if gap <= 1 {
		return earliest
	}
	switch {
	case c.cfg.PowerDown && c.srThreshold > 0 && gap-1 >= c.srThreshold:
		// Long idle: self-refresh maintains the cells at the lowest
		// current; exit costs tXSR and the periodic refresh timer
		// restarts. Entry requires every bank precharged, so an open
		// row costs an explicit precharge-all (tRP) before the cluster
		// drops in.
		entry := idleFrom + 1
		if !c.allBanksClosed() {
			pre := entry
			for i := range c.banks {
				if c.banks[i].open {
					pre = max64(pre, c.banks[i].preReady)
				}
			}
			t := c.cmdAt(pre)
			c.st.Precharges++
			if c.probe != nil {
				c.emitEv(probe.Event{Kind: probe.KindPrecharge, Bank: -1, At: t, End: t + s.RP})
			}
			for i := range c.banks {
				c.banks[i].open = false
				c.banks[i].actReady = max64(c.banks[i].actReady, t+s.RP)
			}
			entry = t + s.RP
		}
		resid := arrival - entry
		if resid < 0 {
			resid = 0
		}
		c.st.SelfRefreshCycles += resid
		c.st.SelfRefreshEntries++
		if c.probe != nil {
			c.emitEv(probe.Event{Kind: probe.KindSelfRefresh,
				Bank: -1, At: arrival - resid, End: arrival, Aux: resid})
		}
		earliest = arrival + s.XSR
		c.nextRefreshAt = arrival + c.refi
	case c.cfg.PowerDown:
		// The cluster powers down after the first idle cycle and needs
		// tXP before the next command. With all banks closed it rests
		// in the cheaper precharge power-down state.
		spent := idleFrom + 1 // cursor for refresh/precharge event times
		// Postponed refreshes catch up inside the gap while they fit;
		// each one honors the banks' recovery windows (write recovery,
		// tRAS before the implicit precharge-all, the previous
		// refresh's tRFC) exactly like a foreground refresh.
		if c.refreshDebt > 0 && !c.cfg.RefreshDisabled {
			for c.refreshDebt > 0 {
				cost := s.RFC
				if !c.allBanksClosed() {
					cost += s.RP
				}
				if spent+cost > arrival {
					break
				}
				c.refreshDebt--
				spent = c.refreshNow(spent)
			}
		}
		if c.cfg.PrechargeOnIdle && !c.allBanksClosed() {
			// Precharge-all before dropping into power-down, once the
			// open rows' restore and recovery windows allow it.
			pre := spent
			for i := range c.banks {
				if c.banks[i].open {
					pre = max64(pre, c.banks[i].preReady)
				}
			}
			if pre+s.RP <= arrival {
				t := c.cmdAt(pre)
				c.st.Precharges++
				if c.probe != nil {
					c.emitEv(probe.Event{Kind: probe.KindPrecharge, Bank: -1, At: t, End: t + s.RP})
				}
				for i := range c.banks {
					c.banks[i].open = false
					c.banks[i].actReady = max64(c.banks[i].actReady, t+s.RP)
				}
				spent = t + s.RP
			}
		}
		idle := arrival - spent
		if idle < 0 {
			idle = 0
		}
		c.st.PowerDownCycles += idle
		precharged := c.allBanksClosed()
		if precharged {
			c.st.PrechargePDCycles += idle
		}
		c.st.PowerDownExits++
		if c.probe != nil {
			ev := probe.Event{Kind: probe.KindPowerDown, Bank: -1, At: arrival - idle, End: arrival, Aux: idle}
			if precharged {
				ev.Flags |= probe.FlagPrechargedPD
			}
			c.emitEv(ev)
		}
		earliest = arrival + s.XP
	default:
		// No power-down: the controller stays awake through the gap and
		// serves refresh on schedule — first any postponed debt, then
		// each due interval at its due time — so retention never rides
		// on the next request's arrival.
		if !c.cfg.RefreshDisabled {
			t := idleFrom + 1
			for c.refreshDebt > 0 && t+s.RFC <= arrival {
				c.refreshDebt--
				t = c.refreshNow(t)
			}
			for c.nextRefreshAt < arrival {
				c.refresh(idleFrom + 1)
			}
		}
	}
	return earliest
}

// allBanksClosed reports whether no bank holds an open row.
func (c *Controller) allBanksClosed() bool {
	for i := range c.banks {
		if c.banks[i].open {
			return false
		}
	}
	return true
}

// Access processes one burst at the decoded location. arrival is the cycle
// the request reaches the controller; the returned cycle is when its last
// data beat leaves the bus. With a write buffer configured, writes are
// posted: they return their acceptance cycle immediately and reach the DRAM
// when the buffer drains (buffer full, or Flush).
func (c *Controller) Access(write bool, loc mapping.Location, arrival int64) int64 {
	if arrival < 0 {
		arrival = 0
	}
	if c.cfg.Faults != nil {
		if st := c.cfg.Faults.Stall(); st > 0 {
			if c.probe != nil {
				c.emitEv(probe.Event{Kind: probe.KindStall, Bank: -1, At: arrival, End: arrival + st, Aux: st})
			}
			arrival += st
		}
	}
	if write && c.cfg.WriteBufferDepth > 0 {
		// Posted write: buffered with no DRAM interaction, so the
		// cluster's power state is untouched until the drain.
		c.wbuf = append(c.wbuf, loc)
		if len(c.wbuf) >= c.cfg.WriteBufferDepth {
			return c.drainWrites(c.wake(arrival))
		}
		return arrival
	}
	return c.perform(write, loc, c.wake(arrival), arrival)
}

// drainWrites replays the posted writes back-to-back: one bus turnaround
// for the whole batch instead of one per write.
func (c *Controller) drainWrites(earliest int64) int64 {
	var end int64
	for _, loc := range c.wbuf {
		end = c.perform(true, loc, earliest, earliest)
	}
	c.wbuf = c.wbuf[:0]
	return end
}

// Flush drains any posted writes and returns the channel makespan.
func (c *Controller) Flush() int64 {
	if len(c.wbuf) > 0 {
		c.drainWrites(c.wake(max64(c.cmdClock, c.busFreeAt)))
	}
	return c.st.BusyCycles
}

// perform executes one burst against the DRAM, no earlier than earliest.
func (c *Controller) perform(write bool, loc mapping.Location, earliest, arrival int64) int64 {
	s := c.cfg.Speed
	attendAt := max64(arrival, max64(c.cmdClock, c.busFreeAt))

	// Thermal derate: once the plan's cycle passes, the refresh interval
	// shortens (hot devices refresh at a multiple of the nominal rate) and
	// the next due refresh moves up accordingly.
	if c.cfg.Faults != nil && !c.derated {
		if at := c.cfg.Faults.DerateAtCycle(); at > 0 && max64(earliest, c.cmdClock) >= at {
			c.derated = true
			c.refi = s.REFI / c.cfg.Faults.RefreshDivisor()
			if c.refi < 1 {
				c.refi = 1
			}
			if due := max64(earliest, c.cmdClock) + c.refi; c.nextRefreshAt > due {
				c.nextRefreshAt = due
			}
			c.cfg.Faults.CountDerate()
			if c.probe != nil {
				c.emitEv(probe.Event{Kind: probe.KindThermalDerate, Bank: -1,
					At: max64(earliest, c.cmdClock), End: max64(earliest, c.cmdClock), Aux: c.refi})
			}
		}
	}

	// Serve any due refresh before the access, unless postponement has
	// headroom to keep the stream flowing.
	if !c.cfg.RefreshDisabled {
		for c.nextRefreshAt <= max64(earliest, c.cmdClock) {
			if c.refreshDebt < c.cfg.RefreshPostpone {
				c.refreshDebt++
				c.nextRefreshAt += c.refi
				continue
			}
			c.refresh(earliest)
		}
	}

	b := &c.banks[loc.Bank]
	b.accesses++
	rowHit := false
	switch {
	case b.open && b.row == loc.Row:
		c.st.RowHits++
		rowHit = true
	case b.open:
		c.st.RowConflicts++
		t := c.cmdAt(max64(earliest, b.preReady))
		c.st.Precharges++
		if c.probe != nil {
			c.emitEv(probe.Event{Kind: probe.KindRowConflict, Bank: int32(loc.Bank), Row: int32(loc.Row), At: t, End: t})
			c.emitEv(probe.Event{Kind: probe.KindPrecharge, Bank: int32(loc.Bank), At: t, End: t + s.RP})
		}
		b.open = false
		b.actReady = max64(b.actReady, t+s.RP)
		c.activate(b, int32(loc.Bank), loc.Row, earliest)
	default:
		c.st.RowMisses++
		act := c.activate(b, int32(loc.Bank), loc.Row, earliest)
		if c.probe != nil {
			c.emitEv(probe.Event{Kind: probe.KindRowMiss, Bank: int32(loc.Bank), Row: int32(loc.Row), At: act, End: act})
		}
	}

	var dataEnd int64
	if write {
		cand := max64(earliest, b.rdwrReady)
		// Data must find the bus free; turning the bus around after a
		// read costs one bubble cycle.
		cand = max64(cand, c.busFreeAt-s.CWL)
		if c.haveXfer && !c.lastXferWrite {
			cand = max64(cand, c.lastRdDataEnd+1-s.CWL)
		}
		t := c.cmdAt(cand)
		dataEnd = t + s.CWL + s.BurstCycles
		c.lastWrDataEnd = dataEnd
		c.lastXferWrite = true
		// Write recovery gates the following precharge.
		b.preReady = max64(b.preReady, dataEnd+s.WR)
		c.st.Writes++
		c.st.WriteBusCycles += s.BurstCycles
		if c.probe != nil {
			if rowHit {
				c.emitEv(probe.Event{Kind: probe.KindRowHit, Bank: int32(loc.Bank), Row: int32(loc.Row), At: t, End: t})
			}
			c.emitEv(probe.Event{Kind: probe.KindWrite, Bank: int32(loc.Bank), Row: int32(loc.Row),
				At: t, End: dataEnd, Aux: s.BurstCycles})
		}
	} else {
		cand := max64(earliest, b.rdwrReady)
		cand = max64(cand, c.busFreeAt-s.CL)
		if c.haveXfer && c.lastXferWrite {
			// tWTR: internal write-to-read turnaround from the end
			// of write data, plus the bus bubble.
			cand = max64(cand, c.lastWrDataEnd+s.WTR)
			cand = max64(cand, c.lastWrDataEnd+1-s.CL)
		}
		t := c.cmdAt(cand)
		dataEnd = t + s.CL + s.BurstCycles
		c.lastRdDataEnd = dataEnd
		c.lastXferWrite = false
		b.preReady = max64(b.preReady, t+s.RTP)
		c.st.Reads++
		c.st.ReadBusCycles += s.BurstCycles
		if c.probe != nil {
			if rowHit {
				c.emitEv(probe.Event{Kind: probe.KindRowHit, Bank: int32(loc.Bank), Row: int32(loc.Row), At: t, End: t})
			}
			c.emitEv(probe.Event{Kind: probe.KindRead, Bank: int32(loc.Bank), Row: int32(loc.Row),
				At: t, End: dataEnd, Aux: s.BurstCycles})
		}
	}
	c.haveXfer = true
	c.busFreeAt = dataEnd
	b.lastDataEnd = dataEnd
	if dataEnd > c.st.BusyCycles {
		c.st.BusyCycles = dataEnd
	}

	if c.pol.AutoPrecharge() {
		// Auto-precharge: the bank closes itself once its restore and
		// recovery windows elapse; no explicit PRE command is spent.
		t := max64(b.preReady, dataEnd)
		b.open = false
		b.actReady = max64(b.actReady, t+s.RP)
	}

	if c.cfg.RecordLatency {
		// Service latency: completion relative to when the channel
		// could first attend to this request (its arrival, or the end
		// of the preceding work under back-to-back load). Under paced
		// load this includes the power-down wake.
		c.lat.Observe(dataEnd - attendAt)
	}
	return dataEnd
}

// activate opens row in bank b no earlier than earliest, returning the
// ACT issue cycle.
func (c *Controller) activate(b *bankState, bank int32, row int, earliest int64) int64 {
	s := c.cfg.Speed
	cand := max64(earliest, b.actReady)
	if c.haveActs() {
		cand = max64(cand, c.lastActAt+s.RRD)
	}
	// Four-activate window: the fifth ACT waits for the oldest of the
	// last four plus tFAW.
	if s.FAW > 0 && c.actCount >= 4 {
		cand = max64(cand, c.actHist[c.actHistIdx]+s.FAW)
	}
	t := c.cmdAt(cand)
	c.actHist[c.actHistIdx] = t
	c.actHistIdx = (c.actHistIdx + 1) % 4
	c.actCount++
	c.lastActAt = t
	b.open = true
	b.row = row
	b.rdwrReady = t + s.RCD
	b.preReady = t + s.RAS
	b.actReady = t + s.RC
	b.activates++
	c.st.Activates++
	if c.probe != nil {
		c.emitEv(probe.Event{Kind: probe.KindActivate, Bank: bank, Row: int32(row), At: t, End: t + s.RCD})
	}
	return t
}

func (c *Controller) haveActs() bool { return c.st.Activates > 0 }

// AccessAddr decodes a channel-local byte address and performs the burst.
func (c *Controller) AccessAddr(write bool, local int64, arrival int64) int64 {
	return c.Access(write, c.mapper.Decode(local), arrival)
}

// AccessRun performs a run of sequential same-direction bursts starting at
// the channel-local byte address, all sharing one arrival cycle — the shape
// a channel-interleaved master transaction presents to each channel. The
// returned cycle is the latest per-burst completion, exactly as if Access
// had been called once per burst in address order.
//
// When the configuration allows (open page, no probe, no faults, and no
// posted-write buffering for writes), same-row stretches are advanced
// arithmetically instead of burst by burst: after the first burst of a row
// streak the command issue time provably advances by exactly BurstCycles per
// burst (the data bus is the only binding constraint), so the remaining
// bursts collapse into O(1) state updates, capped so that any due refresh
// still fires on the identical cycle. Any other configuration falls back to
// the per-burst path, so results are bit-identical either way.
func (c *Controller) AccessRun(write bool, local int64, bursts int, arrival int64) int64 {
	synth := c.probe != nil && c.cfg.SynthCoalescedEvents
	if bursts <= 1 {
		if bursts < 1 {
			return 0
		}
		return c.accessOne(write, c.mapper.Decode(local), arrival, synth)
	}
	burstBytes := c.cfg.Speed.Geometry.BurstBytes()
	if (c.probe != nil && !synth) || c.cfg.Faults != nil || !c.pol.CoalesceSafe() ||
		(write && c.cfg.WriteBufferDepth > 0) || local%burstBytes != 0 {
		// Per-burst reference path. Any policy that has not explicitly
		// declared coalesce-safety lands here: the arithmetic row walk
		// below reproduces the pure open-page schedule only, so
		// reordering, auto-precharge and bank-remapping policies all
		// fall back conservatively. An unaligned start address
		// (reachable only through the public API — memsys dispatches
		// burst-aligned runs) must land here too: the row walk counts
		// whole bursts per row and would make no progress on a row tail
		// shorter than one burst.
		var end int64
		for i := 0; i < bursts; i++ {
			if e := c.accessOne(write, c.mapper.Decode(local), arrival, synth); e > end {
				end = e
			}
			local += burstBytes
		}
		return end
	}
	g := c.cfg.Speed.Geometry
	var end int64
	for bursts > 0 {
		loc := c.mapper.Decode(local)
		n := (g.Columns - loc.Column) / g.BurstLength // bursts left in this row
		if n > bursts {
			n = bursts
		}
		if e := c.accessRow(write, loc, n, arrival, synth); e > end {
			end = e
		}
		local += int64(n) * burstBytes
		bursts -= n
	}
	return end
}

// accessOne performs one burst, bracketing it with the enqueue/complete
// events the channel's depth-0 queue wrapper would emit when synth is set —
// the coalesced path bypasses the queue, so the synthesized stream supplies
// them to stay comparable with the per-burst reference stream.
func (c *Controller) accessOne(write bool, loc mapping.Location, arrival int64, synth bool) int64 {
	if !synth {
		return c.Access(write, loc, arrival)
	}
	c.emitEv(probe.Event{Kind: probe.KindEnqueue, Bank: int32(loc.Bank), At: arrival, End: arrival, Depth: 1})
	end := c.Access(write, loc, arrival)
	lat := end - arrival
	if lat < 0 {
		lat = 0
	}
	c.emitEv(probe.Event{Kind: probe.KindComplete, Bank: int32(loc.Bank), At: end, End: end, Aux: lat})
	return end
}

// accessRow serves n sequential bursts inside one row. The first burst runs
// through the full Access path (wake, refresh, row transition, turnaround);
// the rest are row hits whose issue times advance by exactly BurstCycles, so
// they are applied as bulk state updates, falling back to per-burst Access
// whenever a refresh would become due mid-streak.
func (c *Controller) accessRow(write bool, loc mapping.Location, n int, arrival int64, synth bool) int64 {
	s := c.cfg.Speed
	end := c.accessOne(write, loc, arrival, synth)
	remaining := int64(n - 1)
	b := &c.banks[loc.Bank]
	for remaining > 0 {
		// After the streak's previous burst issued at t0 = cmdClock-1, the
		// j-th further same-row burst issues at t0 + j*BurstCycles: its
		// candidate is max(arrival, rdwrReady, busFreeAt-CL, cmdClock), and
		// t0 already dominates arrival and rdwrReady while busFreeAt-CL
		// equals t0+BurstCycles. The only per-burst side effect that can
		// interrupt the recurrence is a due refresh, checked against the
		// command clock — cap the jump so the first burst whose refresh
		// check would fire is executed by the exact path instead.
		m := remaining
		if !c.cfg.RefreshDisabled {
			slack := c.nextRefreshAt - c.cmdClock - 1
			if slack < 0 {
				m = 0
			} else if ext := slack/s.BurstCycles + 1; ext < m {
				m = ext
			}
		}
		if m <= 0 {
			end = c.accessOne(write, loc, arrival, synth)
			remaining--
			continue
		}
		t0 := c.cmdClock - 1
		t := t0 + m*s.BurstCycles
		var dataEnd int64
		if write {
			dataEnd = t + s.CWL + s.BurstCycles
			c.lastWrDataEnd = dataEnd
			b.preReady = max64(b.preReady, dataEnd+s.WR)
			c.st.Writes += m
			c.st.WriteBusCycles += m * s.BurstCycles
		} else {
			dataEnd = t + s.CL + s.BurstCycles
			c.lastRdDataEnd = dataEnd
			b.preReady = max64(b.preReady, t+s.RTP)
			c.st.Reads += m
			c.st.ReadBusCycles += m * s.BurstCycles
		}
		if synth {
			// Reconstruct the per-burst event groups the reference path
			// would emit for the jumped bursts: the j-th burst issues at
			// t0 + j*BurstCycles, is a row hit, and completes one data
			// burst later. Raw timestamps are identical to the reference
			// path's, and emitEv applies the same monotonic clamp, so the
			// streams match event for event.
			kind := probe.KindRead
			lead := s.CL
			if write {
				kind = probe.KindWrite
				lead = s.CWL
			}
			for j := int64(1); j <= m; j++ {
				tj := t0 + j*s.BurstCycles
				de := tj + lead + s.BurstCycles
				c.emitEv(probe.Event{Kind: probe.KindEnqueue, Bank: int32(loc.Bank), At: arrival, End: arrival, Depth: 1})
				c.emitEv(probe.Event{Kind: probe.KindRowHit, Bank: int32(loc.Bank), Row: int32(loc.Row), At: tj, End: tj})
				c.emitEv(probe.Event{Kind: kind, Bank: int32(loc.Bank), Row: int32(loc.Row), At: tj, End: de, Aux: s.BurstCycles})
				lat := de - arrival
				if lat < 0 {
					lat = 0
				}
				c.emitEv(probe.Event{Kind: probe.KindComplete, Bank: int32(loc.Bank), At: de, End: de, Aux: lat})
			}
		}
		c.cmdClock = t + 1
		c.busFreeAt = dataEnd
		b.lastDataEnd = dataEnd
		b.accesses += m
		c.st.RowHits += m
		c.st.BusyCycles = dataEnd
		if c.cfg.RecordLatency {
			// Each jumped burst completes BurstCycles after the previous
			// one and could first be attended at that previous completion.
			c.lat.ObserveN(s.BurstCycles, m)
		}
		end = dataEnd
		remaining -= m
	}
	return end
}

// Decode maps a channel-local byte address to its DRAM coordinate.
func (c *Controller) Decode(local int64) mapping.Location {
	return c.mapper.Decode(local)
}

// BankStats describes one bank's share of the channel's activity — useful
// for judging buffer placement and bank balance.
type BankStats struct {
	Bank      int
	Accesses  int64
	Activates int64
}

// BankBalance returns per-bank access and activate counts.
func (c *Controller) BankBalance() []BankStats {
	out := make([]BankStats, len(c.banks))
	for i := range c.banks {
		out[i] = BankStats{Bank: i, Accesses: c.banks[i].accesses, Activates: c.banks[i].activates}
	}
	return out
}

// Stats returns the accumulated counters.
func (c *Controller) Stats() stats.Channel { return c.st }

// Latency returns the per-access latency histogram (empty unless
// RecordLatency was set).
func (c *Controller) Latency() *stats.Histogram { return &c.lat }

// BusyCycles returns the channel makespan: the cycle the last data beat
// left the bus.
func (c *Controller) BusyCycles() int64 { return c.st.BusyCycles }

// Reset returns the controller to its initial state, keeping configuration.
// The probe sink (when configured) is retained; its event stream restarts
// from cycle zero. Reset rebuilds through New rather than zeroing fields by
// hand, so a field added to Controller can never be forgotten here — a
// reset controller is a fresh one by construction (the equivalence test
// pins this with reflection).
func (c *Controller) Reset() {
	fresh, err := New(c.cfg)
	if err != nil {
		// New accepted this exact configuration when c was built; it
		// cannot reject it now.
		panic(fmt.Sprintf("controller: Reset re-validation failed: %v", err))
	}
	// Recycle the existing banks backing array instead of keeping the one
	// New just allocated: the fresh zero-valued bank states are copied in
	// first, so the adopted slice is indistinguishable from fresh.
	if len(c.banks) == len(fresh.banks) {
		copy(c.banks, fresh.banks)
		fresh.banks = c.banks
	}
	*c = *fresh
}
