package controller

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mapping"
	"repro/internal/units"
)

// The four-activate window delays the fifth closely spaced ACT. On the
// paper's device tRC and the bus rate dominate, so tFAW never binds there
// (verified below); a synthetic fast-timing device exposes the mechanism.
func TestFourActivateWindow(t *testing.T) {
	if s := speed400(t); s.FAW <= 0 {
		t.Fatal("default device should resolve a tFAW")
	}

	fast := dram.DefaultTiming()
	fast.TRCD = 5 * units.Nanosecond
	fast.TRP = 5 * units.Nanosecond
	fast.TRAS = 10 * units.Nanosecond
	fast.TRC = 15 * units.Nanosecond
	fast.TRRD = units.Duration(2500) // 2.5 ns = 1 cycle at 400 MHz
	fast.TFAW = 60 * units.Nanosecond

	run := func(faw units.Duration) int64 {
		tm := fast
		tm.TFAW = faw
		speed, err := dram.Resolve(dram.DefaultGeometry(), tm, 400*units.MHz)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Speed: speed, Mux: mapping.RBC, Policy: ClosedPage, PowerDown: true}
		c := newCtl(t, cfg)
		var end int64
		for i := 0; i < 8; i++ {
			end = c.Access(false, mapping.Location{Bank: i % 4, Row: i, Column: 0}, 0)
		}
		if got := c.Stats().Activates; got != 8 {
			t.Fatalf("activates = %d, want 8", got)
		}
		return end
	}
	withFAW := run(60 * units.Nanosecond)
	without := run(0)
	if withFAW <= without {
		t.Errorf("tFAW should delay rapid activates: %d vs %d cycles", withFAW, without)
	}

	// On the paper's device the window is covered by tRC and the data
	// rate: identical makespans with and without tFAW.
	paperRun := func(faw units.Duration) int64 {
		tm := dram.DefaultTiming()
		tm.TFAW = faw
		speed, err := dram.Resolve(dram.DefaultGeometry(), tm, 400*units.MHz)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Speed: speed, Mux: mapping.RBC, Policy: ClosedPage, PowerDown: true}
		c := newCtl(t, cfg)
		var end int64
		for i := 0; i < 8; i++ {
			end = c.Access(false, mapping.Location{Bank: i % 4, Row: i, Column: 0}, 0)
		}
		return end
	}
	if a, b := paperRun(50*units.Nanosecond), paperRun(0); a != b {
		t.Errorf("tFAW binds on the paper device unexpectedly: %d vs %d", a, b)
	}
}

// Short idles use power-down; a gap past the threshold enters self-refresh,
// pays tXSR, and resets the refresh timer.
func TestSelfRefreshOnLongIdle(t *testing.T) {
	cfg := defaultCfg(t)
	c := newCtl(t, cfg)
	s := cfg.Speed
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)

	// A medium gap: power-down, not self-refresh.
	end = c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	st := c.Stats()
	if st.SelfRefreshEntries != 0 || st.PowerDownExits != 1 {
		t.Fatalf("medium gap stats: %+v", st)
	}

	// A gap beyond 4 x tREFI: self-refresh.
	longGap := 5 * s.REFI
	arrival := end + longGap
	e2 := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 8}, arrival)
	st = c.Stats()
	if st.SelfRefreshEntries != 1 {
		t.Fatalf("self-refresh entries = %d, want 1 (stats %+v)", st.SelfRefreshEntries, st)
	}
	if st.SelfRefreshCycles < longGap-10 {
		t.Errorf("self-refresh cycles = %d, want ~%d", st.SelfRefreshCycles, longGap)
	}
	// Exit pays tXSR, and the bank was precharged by SR entry: the access
	// is a row miss (ACT) again.
	if want := arrival + s.XSR + s.RCD + s.CL + s.BurstCycles; e2 < want {
		t.Errorf("post-SR access ends at %d, want >= %d", e2, want)
	}
	if st.RowMisses < 2 {
		t.Errorf("SR entry should close pages: misses = %d", st.RowMisses)
	}
}

func TestSelfRefreshDisabled(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.SelfRefreshThreshold = -1
	c := newCtl(t, cfg)
	s := cfg.Speed
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+10*s.REFI)
	st := c.Stats()
	if st.SelfRefreshEntries != 0 {
		t.Errorf("self-refresh fired while disabled: %+v", st)
	}
	if st.PowerDownExits != 1 {
		t.Errorf("long gap should still power down: %+v", st)
	}
}

func TestCustomSelfRefreshThreshold(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.SelfRefreshThreshold = 500
	c := newCtl(t, cfg)
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+600)
	if got := c.Stats().SelfRefreshEntries; got != 1 {
		t.Errorf("custom threshold: entries = %d, want 1", got)
	}
}

// Power-down while every bank is closed counts as precharge power-down.
func TestPrechargePowerDownClassification(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.Policy = ClosedPage // banks auto-close after each access
	c := newCtl(t, cfg)
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	st := c.Stats()
	if st.PowerDownCycles == 0 || st.PrechargePDCycles != st.PowerDownCycles {
		t.Errorf("closed-page idle should be precharge PD: %+v", st)
	}

	// Open-page idle keeps a row open: active power-down.
	cfg.Policy = OpenPage
	c2 := newCtl(t, cfg)
	end = c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	st = c2.Stats()
	if st.PowerDownCycles == 0 || st.PrechargePDCycles != 0 {
		t.Errorf("open-page idle should be active PD: %+v", st)
	}
}
