package controller

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/mapping"
	"repro/internal/units"
)

func speed400(t *testing.T) dram.Speed {
	t.Helper()
	s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newCtl(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func defaultCfg(t *testing.T) Config {
	return Config{Speed: speed400(t), Mux: mapping.RBC, Policy: OpenPage, PowerDown: true}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.Policy = PagePolicy(9)
	if _, err := New(cfg); err == nil {
		t.Error("expected page policy error")
	}
	cfg = defaultCfg(t)
	cfg.Mux = mapping.Multiplexing(9)
	if _, err := New(cfg); err == nil {
		t.Error("expected multiplexing error")
	}
	if _, err := New(Config{Mux: mapping.RBC}); err == nil {
		t.Error("expected unresolved-speed error")
	}
}

// First read to a closed bank: ACT at 0, RD at tRCD, data ends CL+BL/2 later.
func TestColdReadLatency(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	want := s.RCD + s.CL + s.BurstCycles // 6+6+2 = 14 @400MHz
	if end != want {
		t.Errorf("cold read data end = %d, want %d", end, want)
	}
	st := c.Stats()
	if st.Activates != 1 || st.Reads != 1 || st.RowMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A row hit needs only the column access.
func TestRowHitBackToBack(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	e1 := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	e2 := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, 0)
	// Second read streams seamlessly: data end advances by exactly the
	// burst time.
	if e2 != e1+s.BurstCycles {
		t.Errorf("streamed read end = %d, want %d", e2, e1+s.BurstCycles)
	}
	if st := c.Stats(); st.RowHits != 1 {
		t.Errorf("row hits = %d, want 1", st.RowHits)
	}
}

// A conflicting row in the same bank pays PRE + ACT + RD.
func TestRowConflictPaysPrechargeActivate(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	end := c.Access(false, mapping.Location{Bank: 0, Row: 1, Column: 0}, 0)
	// PRE cannot issue before tRAS (16) expires; then RP+RCD+CL+burst.
	want := s.RAS + s.RP + s.RCD + s.CL + s.BurstCycles
	if end != want {
		t.Errorf("conflict read end = %d, want %d", end, want)
	}
	if st := c.Stats(); st.RowConflicts != 1 || st.Precharges != 1 || st.Activates != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// Accesses to different banks overlap the second bank's ACT with the first
// bank's data: bank-level parallelism keeps the bus saturated.
func TestBankInterleavingHidesActivates(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	// Stream reads sweeping full rows bank after bank, exactly what RBC
	// mapping produces for a sequential stream: 128 bursts per row, four
	// banks per row index.
	var end int64
	n := 0
	for rep := 0; rep < 4; rep++ {
		for bank := 0; bank < 4; bank++ {
			for col := 0; col < 512; col += 4 {
				end = c.Access(false, mapping.Location{Bank: bank, Row: rep, Column: col}, 0)
				n++
			}
		}
	}
	// Ideal data cycles: n bursts x 2 cycles. Allow the cold-start ramp
	// plus a small overhead margin.
	ideal := int64(n) * s.BurstCycles
	if end > ideal+ideal/10+s.RCD+s.CL {
		t.Errorf("interleaved stream took %d cycles for %d ideal", end, ideal)
	}
	util := c.Stats().BusUtilization()
	if util < 0.85 {
		t.Errorf("bus utilization = %.2f, want >= 0.85", util)
	}
}

// Write-to-read turnaround inserts the tWTR gap.
func TestWriteToReadTurnaround(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	wEnd := c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	rEnd := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, 0)
	// Read command waits for write data end + tWTR.
	wantMin := wEnd + s.WTR + s.CL + s.BurstCycles
	if rEnd < wantMin {
		t.Errorf("read after write ends at %d, want >= %d", rEnd, wantMin)
	}
}

// Read-to-write needs only the one-cycle bus bubble.
func TestReadToWriteBubble(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	rEnd := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	wEnd := c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: 4}, 0)
	if want := rEnd + 1 + s.BurstCycles; wEnd != want {
		t.Errorf("write after read ends at %d, want %d", wEnd, want)
	}
}

// Writes gate the following precharge by write recovery.
func TestWriteRecoveryGatesPrecharge(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	s := c.Config().Speed
	wEnd := c.Access(true, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	end := c.Access(false, mapping.Location{Bank: 0, Row: 5, Column: 0}, 0)
	// PRE >= write data end + tWR, then RP + RCD + CL + burst.
	wantMin := wEnd + s.WR + s.RP + s.RCD + s.CL + s.BurstCycles
	if end < wantMin {
		t.Errorf("post-write conflict ends at %d, want >= %d", end, wantMin)
	}
}

// Closed-page pays an activate on every access, even same-row.
func TestClosedPagePolicy(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.Policy = ClosedPage
	c := newCtl(t, cfg)
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, 0)
	st := c.Stats()
	if st.Activates != 2 {
		t.Errorf("closed page activates = %d, want 2", st.Activates)
	}
	if st.RowHits != 0 {
		t.Errorf("closed page row hits = %d, want 0", st.RowHits)
	}
	// No explicit precharge commands are spent (auto-precharge).
	if st.Precharges != 0 {
		t.Errorf("closed page precharges = %d, want 0", st.Precharges)
	}
}

// Closed page is never faster than open page for a row-local stream.
func TestClosedPageSlowerForStreaming(t *testing.T) {
	run := func(policy PagePolicy) int64 {
		cfg := defaultCfg(t)
		cfg.Policy = policy
		c := newCtl(t, cfg)
		var end int64
		for col := 0; col < 512; col += 4 {
			end = c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: col}, 0)
		}
		return end
	}
	open, closed := run(OpenPage), run(ClosedPage)
	if closed <= open {
		t.Errorf("closed page (%d) should be slower than open page (%d)", closed, open)
	}
}

// Refresh steals tRP+tRFC around every tREFI boundary.
func TestRefreshInterruptsStream(t *testing.T) {
	cfg := defaultCfg(t)
	c := newCtl(t, cfg)
	s := cfg.Speed
	// Stream until well past one refresh interval.
	bursts := int(s.REFI/s.BurstCycles) + 100
	var end int64
	for i := 0; i < bursts; i++ {
		bank := (i / 128) % 4
		row := i / 512
		col := (i * 4) % 512
		end = c.Access(false, mapping.Location{Bank: bank, Row: row, Column: col}, 0)
	}
	st := c.Stats()
	if st.Refreshes < 1 {
		t.Fatalf("refreshes = %d, want >= 1", st.Refreshes)
	}
	// The stream must have paid at least tRFC beyond pure data time.
	if end < int64(bursts)*s.BurstCycles+s.RFC {
		t.Errorf("refresh cost not visible: end = %d", end)
	}

	// With refresh disabled, no REF commands appear.
	cfg.RefreshDisabled = true
	c2 := newCtl(t, cfg)
	for i := 0; i < bursts; i++ {
		c2.Access(false, mapping.Location{Bank: 0, Row: i / 512, Column: (i * 4) % 512}, 0)
	}
	if got := c2.Stats().Refreshes; got != 0 {
		t.Errorf("disabled refresh count = %d", got)
	}
}

// An idle gap enters power-down and pays tXP on wake.
func TestPowerDownGapAccounting(t *testing.T) {
	cfg := defaultCfg(t)
	c := newCtl(t, cfg)
	s := cfg.Speed
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	// Arrive 1000 cycles later.
	arrival := end + 1000
	e2 := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, arrival)
	st := c.Stats()
	if st.PowerDownExits != 1 {
		t.Errorf("power-down exits = %d, want 1", st.PowerDownExits)
	}
	if st.PowerDownCycles < 900 {
		t.Errorf("power-down cycles = %d, want ~1000", st.PowerDownCycles)
	}
	// Wake penalty: data cannot end before arrival + tXP + CL + burst.
	if want := arrival + s.XP + s.CL + s.BurstCycles; e2 < want {
		t.Errorf("woken access ends at %d, want >= %d", e2, want)
	}

	// Without power-down, the same gap costs nothing.
	cfg.PowerDown = false
	c2 := newCtl(t, cfg)
	end = c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	e2nd := c2.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 4}, end+1000)
	if got := c2.Stats().PowerDownCycles; got != 0 {
		t.Errorf("power-down cycles = %d with power-down disabled", got)
	}
	if e2nd != end+1000+s.CL+s.BurstCycles {
		t.Errorf("no-PD woken access ends at %d", e2nd)
	}
}

// AccessAddr decodes channel-local addresses consistently with the mapper.
func TestAccessAddrMatchesDecode(t *testing.T) {
	cfg := defaultCfg(t)
	c1 := newCtl(t, cfg)
	c2 := newCtl(t, cfg)
	mapper, err := mapping.NewBankMapper(cfg.Speed.Geometry, cfg.Mux)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int64{0, 16, 2048, 8192, 1 << 20}
	for _, a := range addrs {
		e1 := c1.AccessAddr(false, a, 0)
		e2 := c2.Access(false, mapper.Decode(a), 0)
		if e1 != e2 {
			t.Errorf("addr %d: AccessAddr end %d != Access end %d", a, e1, e2)
		}
	}
}

// RecordLatency populates the histogram.
func TestLatencyHistogram(t *testing.T) {
	cfg := defaultCfg(t)
	cfg.RecordLatency = true
	c := newCtl(t, cfg)
	for i := 0; i < 10; i++ {
		c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: i * 4}, 0)
	}
	if got := c.Latency().Count(); got != 10 {
		t.Errorf("latency samples = %d, want 10", got)
	}
	if c.Latency().Max() <= 0 {
		t.Error("latencies should be positive")
	}
}

func TestReset(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	c.Access(false, mapping.Location{Bank: 1, Row: 3, Column: 0}, 0)
	c.Reset()
	if c.Stats() != (Controller{}).st {
		t.Errorf("stats not cleared: %+v", c.Stats())
	}
	// Behaves like a fresh controller.
	s := c.Config().Speed
	end := c.Access(false, mapping.Location{Bank: 0, Row: 0, Column: 0}, 0)
	if want := s.RCD + s.CL + s.BurstCycles; end != want {
		t.Errorf("post-reset cold read = %d, want %d", end, want)
	}
}

// Properties: completion times are monotone in request order, never precede
// arrival, and the data bus never exceeds one transfer at a time (ensured by
// utilization <= 1).
func TestAccessOrderingProperties(t *testing.T) {
	cfg := defaultCfg(t)
	f := func(ops []uint16) bool {
		c, err := New(cfg)
		if err != nil {
			return false
		}
		var last int64
		var arrival int64
		for _, op := range ops {
			write := op&1 == 1
			bank := int(op>>1) % 4
			row := int(op>>3) % 64
			col := (int(op>>9) % 128) * 4
			end := c.Access(write, mapping.Location{Bank: bank, Row: row, Column: col}, arrival)
			if end <= last || end < arrival {
				return false
			}
			last = end
			if op%7 == 0 {
				arrival += int64(op % 64)
			}
		}
		st := c.Stats()
		if st.BusyCycles > 0 && st.BusUtilization() > 1 {
			return false
		}
		// Row outcome counts cover every access.
		return st.RowHits+st.RowMisses+st.RowConflicts == st.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Doubling the clock roughly halves the streaming time (paper: "close to 2x
// speedup can be achieved by using double clock frequency").
func TestFrequencyScaling(t *testing.T) {
	run := func(freq units.Frequency) units.Duration {
		s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), freq)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Speed: s, Mux: mapping.RBC, Policy: OpenPage, PowerDown: true})
		if err != nil {
			t.Fatal(err)
		}
		var end int64
		for i := 0; i < 4096; i++ {
			bank := (i / 128) % 4
			row := i / 512
			col := (i * 4) % 512
			end = c.Access(false, mapping.Location{Bank: bank, Row: row, Column: col}, 0)
		}
		return s.CycleDuration(end)
	}
	t200 := run(200 * units.MHz)
	t400 := run(400 * units.MHz)
	ratio := t200.Seconds() / t400.Seconds()
	if ratio < 1.85 || ratio > 2.15 {
		t.Errorf("200->400MHz speedup = %.2f, want ~2", ratio)
	}
}

func TestPagePolicyString(t *testing.T) {
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Error("bad policy names")
	}
	if FRFCFS.String() != "frfcfs" || BankPartition.String() != "bank-partition" {
		t.Error("bad extension policy names")
	}
	if got := PagePolicy(99).String(); got != "PagePolicy(99)" {
		t.Errorf("String() = %q", got)
	}
	for _, p := range Policies() {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), back, err, p)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// Cross-configuration property: for any valid (frequency, multiplexing,
// policy, power-down, extensions) combination and any access pattern, the
// controller maintains its accounting invariants.
func TestControllerInvariantsAcrossConfigs(t *testing.T) {
	f := func(sel uint32, ops []uint16) bool {
		freq := dram.EvaluatedFrequencies[int(sel)%5]
		speed, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), freq)
		if err != nil {
			return false
		}
		cfg := Config{
			Speed:            speed,
			Mux:              []mapping.Multiplexing{mapping.RBC, mapping.BRC}[int(sel>>3)%2],
			Policy:           []PagePolicy{OpenPage, ClosedPage}[int(sel>>4)%2],
			PowerDown:        sel>>5&1 == 1,
			WriteBufferDepth: int(sel >> 6 % 4 * 8),
			RefreshPostpone:  int(sel >> 9 % 4),
			PrechargeOnIdle:  sel>>11&1 == 1,
		}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		var arrival int64
		for _, op := range ops {
			write := op&1 == 1
			loc := mapping.Location{
				Bank:   int(op>>1) % 4,
				Row:    int(op>>3) % 128,
				Column: (int(op>>10) % 128) * 4,
			}
			c.Access(write, loc, arrival)
			if op%5 == 0 {
				arrival += int64(op % 512)
			}
		}
		c.Flush()
		st := c.Stats()
		// Accounting invariants.
		if st.Reads+st.Writes != int64(len(ops)) {
			return false
		}
		if st.ReadBusCycles != st.Reads*speed.BurstCycles {
			return false
		}
		if st.WriteBusCycles != st.Writes*speed.BurstCycles {
			return false
		}
		if st.RowHits+st.RowMisses+st.RowConflicts != st.Accesses() {
			return false
		}
		if st.PrechargePDCycles > st.PowerDownCycles {
			return false
		}
		if st.PowerDownCycles+st.SelfRefreshCycles > st.BusyCycles && st.BusyCycles > 0 {
			return false
		}
		if st.BusyCycles > 0 && st.BusUtilization() > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Bank balance accounting covers every access, and a sequential RBC sweep
// touches the banks evenly.
func TestBankBalance(t *testing.T) {
	c := newCtl(t, defaultCfg(t))
	for i := 0; i < 512; i++ {
		c.Access(false, mapping.Location{Bank: (i / 128) % 4, Row: 0, Column: (i * 4) % 512}, 0)
	}
	banks := c.BankBalance()
	if len(banks) != 4 {
		t.Fatalf("banks = %d", len(banks))
	}
	var accSum, actSum int64
	for _, b := range banks {
		if b.Accesses != 128 {
			t.Errorf("bank %d accesses = %d, want 128", b.Bank, b.Accesses)
		}
		accSum += b.Accesses
		actSum += b.Activates
	}
	st := c.Stats()
	if accSum != st.Accesses() {
		t.Errorf("bank access sum %d != total %d", accSum, st.Accesses())
	}
	if actSum != st.Activates {
		t.Errorf("bank activate sum %d != total %d", actSum, st.Activates)
	}
}
