package dram

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's bank cluster holds 512 Mb in four banks.
	if got := g.CapacityBits(); got != 512*1024*1024 {
		t.Errorf("capacity = %d bits, want 512Mb (2^29)", got)
	}
	// A row is 2 KB; a burst is 16 bytes (the interleaving granularity).
	if got := g.RowBytes(); got != 2048 {
		t.Errorf("row = %d bytes, want 2048", got)
	}
	if got := g.BurstBytes(); got != 16 {
		t.Errorf("burst = %d bytes, want 16", got)
	}
	if got := g.Bytes(); got != 64*1024*1024 {
		t.Errorf("cluster = %d bytes, want 64MiB", got)
	}
	if got := g.BankBytes(); got != 16*1024*1024 {
		t.Errorf("bank = %d bytes, want 16MiB", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Banks: 0, Rows: 8192, Columns: 512, WordBits: 32, BurstLength: 4},
		{Banks: 4, Rows: 0, Columns: 512, WordBits: 32, BurstLength: 4},
		{Banks: 4, Rows: 8192, Columns: 0, WordBits: 32, BurstLength: 4},
		{Banks: 4, Rows: 8192, Columns: 512, WordBits: 0, BurstLength: 4},
		{Banks: 4, Rows: 8192, Columns: 512, WordBits: 12, BurstLength: 4},
		{Banks: 4, Rows: 8192, Columns: 512, WordBits: 32, BurstLength: 3},
		{Banks: 4, Rows: 8192, Columns: 6, WordBits: 32, BurstLength: 4},
		{Banks: 3, Rows: 8192, Columns: 512, WordBits: 32, BurstLength: 4},
		{Banks: 4, Rows: 1000, Columns: 512, WordBits: 32, BurstLength: 4},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, g)
		}
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Timing){
		func(tm *Timing) { tm.TRCD = 0 },
		func(tm *Timing) { tm.TRP = -1 },
		func(tm *Timing) { tm.TRC = 30 * units.Nanosecond }, // < tRAS+tRP
		func(tm *Timing) { tm.TWTRCycles = -1 },
		func(tm *Timing) { tm.TREFI = 50 * units.Nanosecond }, // < tRFC
	}
	for i, mutate := range cases {
		tm := DefaultTiming()
		mutate(&tm)
		if err := tm.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestResolveAt400MHz(t *testing.T) {
	s, err := Resolve(DefaultGeometry(), DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	// tCK = 2.5 ns; 15 ns parameters become 6 cycles.
	if s.TCK != 2500*units.Picosecond {
		t.Errorf("tCK = %v, want 2.5ns", s.TCK)
	}
	want := map[string][2]int64{
		"CL":  {s.CL, 6},
		"CWL": {s.CWL, 5},
		"RCD": {s.RCD, 6},
		"RP":  {s.RP, 6},
		"RAS": {s.RAS, 16},
		"RC":  {s.RC, 22},
		"WR":  {s.WR, 6},
		"RRD": {s.RRD, 4},
		"RFC": {s.RFC, 29},
		"B":   {s.BurstCycles, 2},
	}
	for name, v := range want {
		if v[0] != v[1] {
			t.Errorf("%s = %d cycles, want %d", name, v[0], v[1])
		}
	}
	// tREFI = 7.8 us = 3120 cycles.
	if s.REFI != 3120 {
		t.Errorf("REFI = %d cycles, want 3120", s.REFI)
	}
}

func TestResolveExtrapolatesCASWithFrequency(t *testing.T) {
	// The paper extrapolates clock-linked parameters: CL grows with the
	// clock so the analog latency stays ~15 ns.
	wantCL := map[units.Frequency]int64{
		200 * units.MHz: 3,
		266 * units.MHz: 4,
		333 * units.MHz: 5,
		400 * units.MHz: 6,
		533 * units.MHz: 8,
	}
	for f, cl := range wantCL {
		s, err := Resolve(DefaultGeometry(), DefaultTiming(), f)
		if err != nil {
			t.Fatal(err)
		}
		if s.CL != cl {
			t.Errorf("CL@%v = %d, want %d", f, s.CL, cl)
		}
	}
}

func TestResolveRejectsOutOfRangeFrequency(t *testing.T) {
	for _, f := range []units.Frequency{100 * units.MHz, 199 * units.MHz, 534 * units.MHz, 800 * units.MHz} {
		if _, err := Resolve(DefaultGeometry(), DefaultTiming(), f); err == nil {
			t.Errorf("expected error at %v", f)
		} else if !strings.Contains(err.Error(), "outside device range") {
			t.Errorf("unexpected error at %v: %v", f, err)
		}
	}
}

func TestResolveRejectsInvalidInputs(t *testing.T) {
	g := DefaultGeometry()
	g.Banks = 3
	if _, err := Resolve(g, DefaultTiming(), 400*units.MHz); err == nil {
		t.Error("expected geometry error")
	}
	tm := DefaultTiming()
	tm.TRCD = 0
	if _, err := Resolve(DefaultGeometry(), tm, 400*units.MHz); err == nil {
		t.Error("expected timing error")
	}
}

func TestPeakBandwidth(t *testing.T) {
	tests := []struct {
		f    units.Frequency
		want float64 // GB/s
	}{
		{200 * units.MHz, 1.6},
		{400 * units.MHz, 3.2},
		{533 * units.MHz, 4.264},
	}
	for _, tt := range tests {
		s, err := Resolve(DefaultGeometry(), DefaultTiming(), tt.f)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.PeakBandwidth().GBps(); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("peak@%v = %v GB/s, want %v", tt.f, got, tt.want)
		}
	}
}

func TestCycleDuration(t *testing.T) {
	s, err := Resolve(DefaultGeometry(), DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CycleDuration(4000); got != 10*units.Microsecond {
		t.Errorf("4000 cycles = %v, want 10us", got)
	}
}

// Property: resolved cycle counts never undershoot their analog durations,
// and are monotone non-decreasing in frequency.
func TestResolvedCyclesCoverAnalogTiming(t *testing.T) {
	f := func(df uint16) bool {
		freq := MinFrequency + units.Frequency(df%334)*units.MHz
		s, err := Resolve(DefaultGeometry(), DefaultTiming(), freq)
		if err != nil {
			return false
		}
		tm := s.Timing
		checks := []struct {
			cycles int64
			d      units.Duration
		}{
			{s.RCD, tm.TRCD}, {s.RP, tm.TRP}, {s.RAS, tm.TRAS},
			{s.RC, tm.TRC}, {s.WR, tm.TWR}, {s.RRD, tm.TRRD},
			{s.RFC, tm.TRFC}, {s.CL, tm.TCAS},
		}
		for _, c := range checks {
			if units.Duration(c.cycles)*s.TCK < c.d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluatedFrequenciesAreInRange(t *testing.T) {
	for _, f := range EvaluatedFrequencies {
		if _, err := Resolve(DefaultGeometry(), DefaultTiming(), f); err != nil {
			t.Errorf("evaluated frequency %v rejected: %v", f, err)
		}
	}
	if len(EvaluatedFrequencies) != 5 {
		t.Errorf("paper evaluates 5 frequencies, have %d", len(EvaluatedFrequencies))
	}
}

func TestResolveFAWAndXSR(t *testing.T) {
	s, err := Resolve(DefaultGeometry(), DefaultTiming(), 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	// 50 ns and 120 ns at 2.5 ns/cycle.
	if s.FAW != 20 {
		t.Errorf("FAW = %d cycles, want 20", s.FAW)
	}
	if s.XSR != 48 {
		t.Errorf("XSR = %d cycles, want 48", s.XSR)
	}
	// tFAW of zero disables the window.
	tm := DefaultTiming()
	tm.TFAW = 0
	s2, err := Resolve(DefaultGeometry(), tm, 400*units.MHz)
	if err != nil {
		t.Fatal(err)
	}
	if s2.FAW != 0 {
		t.Errorf("disabled FAW = %d, want 0", s2.FAW)
	}
	// Negative values are rejected.
	tm.TFAW = -1
	if err := tm.Validate(); err == nil {
		t.Error("expected error for negative tFAW")
	}
	tm = DefaultTiming()
	tm.TXSR = -1
	if err := tm.Validate(); err == nil {
		t.Error("expected error for negative tXSR")
	}
}
