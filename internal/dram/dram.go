// Package dram models the paper's theoretical next-generation mobile DDR
// SDRAM device: a 512 Mb, four-bank, 32-bit-wide double-data-rate part whose
// interface clock spans the DDR2 range of 200-533 MHz.
//
// No 3D-integration-compatible standard memory existed when the paper was
// written, so the device is an estimate: analog timing parameters are taken
// from the contemporary Micron 512 Mb Mobile DDR SDRAM datasheet (200 MHz
// speed grade) and held constant in nanoseconds, parameters with a clear
// connection to the clock (CAS latency, burst timing) are extrapolated with
// frequency, and the core operating voltage is projected to 1.35 V. This
// package reproduces exactly that estimation recipe.
package dram

import (
	"fmt"

	"repro/internal/units"
)

// Geometry describes the physical organization of one bank cluster.
type Geometry struct {
	// Banks is the number of banks in the cluster.
	Banks int
	// Rows is the number of rows per bank.
	Rows int
	// Columns is the number of column words per row.
	Columns int
	// WordBits is the data-bus width in bits.
	WordBits int
	// BurstLength is the number of words transferred per access; the
	// minimum DRAM burst size of the paper is four.
	BurstLength int
}

// DefaultGeometry is the paper's bank cluster: 512 Mb, 4 banks, x32, BL4
// (8192 rows x 512 columns x 32 bits per bank).
func DefaultGeometry() Geometry {
	return Geometry{Banks: 4, Rows: 8192, Columns: 512, WordBits: 32, BurstLength: 4}
}

// CapacityBits returns the cluster capacity.
func (g Geometry) CapacityBits() units.Bits {
	return units.Bits(int64(g.Banks) * int64(g.Rows) * int64(g.Columns) * int64(g.WordBits))
}

// RowBytes returns the size of one row (the open-page unit).
func (g Geometry) RowBytes() int64 { return int64(g.Columns) * int64(g.WordBits) / 8 }

// BurstBytes returns the data moved by one burst access. With the default
// geometry this is 16 bytes, the paper's channel-interleaving granularity.
func (g Geometry) BurstBytes() int64 { return int64(g.BurstLength) * int64(g.WordBits) / 8 }

// BankBytes returns the capacity of one bank in bytes.
func (g Geometry) BankBytes() int64 { return int64(g.Rows) * g.RowBytes() }

// Bytes returns the cluster capacity in bytes.
func (g Geometry) Bytes() int64 { return int64(g.Banks) * g.BankBytes() }

// Validate checks the geometry for physical consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return fmt.Errorf("dram: %d banks", g.Banks)
	case g.Rows <= 0:
		return fmt.Errorf("dram: %d rows", g.Rows)
	case g.Columns <= 0:
		return fmt.Errorf("dram: %d columns", g.Columns)
	case g.WordBits <= 0 || g.WordBits%8 != 0:
		return fmt.Errorf("dram: word width %d bits", g.WordBits)
	case g.BurstLength <= 0 || g.BurstLength%2 != 0:
		return fmt.Errorf("dram: burst length %d (DDR needs an even burst)", g.BurstLength)
	case g.Columns%g.BurstLength != 0:
		return fmt.Errorf("dram: %d columns not a multiple of burst %d", g.Columns, g.BurstLength)
	}
	// Power-of-two dimensions keep address decoding exact.
	for _, v := range []int{g.Banks, g.Rows, g.Columns} {
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: dimension %d is not a power of two", v)
		}
	}
	return nil
}

// Timing holds the analog timing parameters of the device. Durations are
// device properties independent of the interface clock; cycle-denominated
// parameters are already clock-relative.
type Timing struct {
	TRCD  units.Duration // ACT to RD/WR
	TRP   units.Duration // PRE to ACT
	TRAS  units.Duration // ACT to PRE, minimum
	TRC   units.Duration // ACT to ACT, same bank
	TWR   units.Duration // end of write data to PRE
	TRRD  units.Duration // ACT to ACT, different bank
	TRFC  units.Duration // refresh cycle time
	TREFI units.Duration // average periodic refresh interval
	TCAS  units.Duration // read command to data (analog part; becomes CL)
	TFAW  units.Duration // four-activate window (0 disables the check)
	TXSR  units.Duration // self-refresh exit to next command

	TWTRCycles int // end of write data to read command
	TRTPCycles int // read command to precharge
	TXPCycles  int // power-down exit to next command

	// MinFreq and MaxFreq bound the interface clock this timing set is
	// specified for (datasheets bind timing to a speed bin). Zero values
	// fall back to the paper device's DDR2 range (MinFrequency,
	// MaxFrequency), so the paper-era description is unchanged.
	MinFreq units.Frequency
	MaxFreq units.Frequency
}

// DefaultTiming returns the Micron 512 Mb Mobile DDR-derived parameters used
// by the paper's estimation (DESIGN.md section 5).
func DefaultTiming() Timing {
	return Timing{
		TRCD:       15 * units.Nanosecond,
		TRP:        15 * units.Nanosecond,
		TRAS:       40 * units.Nanosecond,
		TRC:        55 * units.Nanosecond,
		TWR:        15 * units.Nanosecond,
		TRRD:       10 * units.Nanosecond,
		TRFC:       72 * units.Nanosecond,
		TREFI:      units.Duration(7800) * units.Nanosecond,
		TCAS:       15 * units.Nanosecond,
		TFAW:       50 * units.Nanosecond,
		TXSR:       120 * units.Nanosecond,
		TWTRCycles: 2,
		TRTPCycles: 2,
		TXPCycles:  2,
	}
}

// Validate checks the timing set for consistency.
func (t Timing) Validate() error {
	type named struct {
		name string
		d    units.Duration
	}
	for _, p := range []named{
		{"tRCD", t.TRCD}, {"tRP", t.TRP}, {"tRAS", t.TRAS}, {"tRC", t.TRC},
		{"tWR", t.TWR}, {"tRRD", t.TRRD}, {"tRFC", t.TRFC}, {"tREFI", t.TREFI},
		{"tCAS", t.TCAS},
	} {
		if p.d <= 0 {
			return fmt.Errorf("dram: %s = %v must be positive", p.name, p.d)
		}
	}
	if t.TRAS+t.TRP > t.TRC {
		return fmt.Errorf("dram: tRAS+tRP (%v) exceeds tRC (%v)", t.TRAS+t.TRP, t.TRC)
	}
	if t.TWTRCycles < 0 || t.TRTPCycles < 0 || t.TXPCycles < 0 {
		return fmt.Errorf("dram: negative cycle parameter")
	}
	if t.TFAW < 0 {
		return fmt.Errorf("dram: negative tFAW %v", t.TFAW)
	}
	if t.TXSR < 0 {
		return fmt.Errorf("dram: negative tXSR %v", t.TXSR)
	}
	if t.TREFI <= t.TRFC {
		return fmt.Errorf("dram: tREFI (%v) must exceed tRFC (%v)", t.TREFI, t.TRFC)
	}
	if t.MinFreq < 0 || t.MaxFreq < 0 || t.MinFreq > t.MaxFreq {
		return fmt.Errorf("dram: clock range [%v, %v] is invalid", t.MinFreq, t.MaxFreq)
	}
	if (t.MinFreq == 0) != (t.MaxFreq == 0) {
		return fmt.Errorf("dram: clock range [%v, %v] must set both bounds or neither", t.MinFreq, t.MaxFreq)
	}
	return nil
}

// FreqRange returns the timing set's interface-clock bounds, substituting
// the paper device's DDR2 range when unset.
func (t Timing) FreqRange() (lo, hi units.Frequency) {
	if t.MinFreq == 0 && t.MaxFreq == 0 {
		return MinFrequency, MaxFrequency
	}
	return t.MinFreq, t.MaxFreq
}

// Clock-frequency limits of the evaluated device (DDR2 specification range,
// paper section III).
const (
	MinFrequency = 200 * units.MHz
	MaxFrequency = 533 * units.MHz
)

// EvaluatedFrequencies lists the interface clocks of the paper's Fig. 3.
var EvaluatedFrequencies = []units.Frequency{
	200 * units.MHz, 266 * units.MHz, 333 * units.MHz, 400 * units.MHz, 533 * units.MHz,
}

// Speed is the timing set resolved to whole cycles at one interface clock.
type Speed struct {
	Geometry Geometry
	Timing   Timing
	Freq     units.Frequency
	TCK      units.Duration

	// Resolved cycle counts.
	CL   int64 // read CAS latency
	CWL  int64 // write latency (CL-1, the DDR2 convention)
	RCD  int64
	RP   int64
	RAS  int64
	RC   int64
	WR   int64
	RRD  int64
	RFC  int64
	REFI int64
	WTR  int64
	RTP  int64
	XP   int64
	FAW  int64 // 0 when the four-activate window is disabled
	XSR  int64
	// BurstCycles is the data-bus occupancy of one burst: BL/2 for DDR.
	BurstCycles int64
}

// Resolve converts the device description to cycle-denominated timing at
// freq, applying the paper's extrapolation rules. It returns an error when
// the frequency lies outside the device's DDR2 range or the description is
// inconsistent.
func Resolve(g Geometry, t Timing, freq units.Frequency) (Speed, error) {
	if err := g.Validate(); err != nil {
		return Speed{}, err
	}
	if err := t.Validate(); err != nil {
		return Speed{}, err
	}
	if lo, hi := t.FreqRange(); freq < lo || freq > hi {
		return Speed{}, fmt.Errorf("dram: frequency %v outside device range [%v, %v]",
			freq, lo, hi)
	}
	s := Speed{
		Geometry:    g,
		Timing:      t,
		Freq:        freq,
		TCK:         freq.Period(),
		CL:          t.TCAS.Cycles(freq),
		RCD:         t.TRCD.Cycles(freq),
		RP:          t.TRP.Cycles(freq),
		RAS:         t.TRAS.Cycles(freq),
		RC:          t.TRC.Cycles(freq),
		WR:          t.TWR.Cycles(freq),
		RRD:         t.TRRD.Cycles(freq),
		RFC:         t.TRFC.Cycles(freq),
		REFI:        t.TREFI.Cycles(freq),
		WTR:         int64(t.TWTRCycles),
		RTP:         int64(t.TRTPCycles),
		XP:          int64(t.TXPCycles),
		FAW:         t.TFAW.Cycles(freq),
		XSR:         t.TXSR.Cycles(freq),
		BurstCycles: int64(g.BurstLength) / 2,
	}
	if s.CWL = s.CL - 1; s.CWL < 1 {
		s.CWL = 1
	}
	return s, nil
}

// PeakBandwidth returns the theoretical data rate of one channel: the bus
// transfers one word per clock edge.
func (s Speed) PeakBandwidth() units.Bandwidth {
	bytesPerCycle := float64(s.Geometry.WordBits) / 8 * 2 // DDR
	return units.Bandwidth(bytesPerCycle * float64(s.Freq))
}

// CycleDuration converts a cycle count at this speed to wall time.
func (s Speed) CycleDuration(cycles int64) units.Duration {
	return units.Duration(cycles) * s.TCK
}
