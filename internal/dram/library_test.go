package dram

import (
	"strings"
	"testing"
)

// TestLibraryEntries pins the registry contract every consumer relies on:
// each entry validates, carries a documented source, keeps its clocks
// inside its own legal range, and resolves at every listed clock.
func TestLibraryEntries(t *testing.T) {
	devs := Devices()
	if len(devs) < 4 {
		t.Fatalf("library has %d devices, want at least paper, xdr, lpddr4, lpddr5", len(devs))
	}
	seen := map[string]bool{}
	for _, d := range devs {
		if seen[d.Name] {
			t.Errorf("duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Source == "" {
			t.Errorf("%s: no datasheet source cited", d.Name)
		}
		idd := d.IDDProfile()
		if idd.VDD <= 0 || idd.BaseFreq <= 0 {
			t.Errorf("%s: IDD profile missing (VDD %v, base %v)", d.Name, idd.VDD, idd.BaseFreq)
		}
		for _, f := range d.Frequencies {
			if _, err := Resolve(d.Geometry, d.Timing, f); err != nil {
				t.Errorf("%s @ %v: %v", d.Name, f, err)
			}
		}
	}
	for _, want := range []string{PaperDevice, "xdr", "lpddr4", "lpddr5"} {
		if !seen[want] {
			t.Errorf("library is missing %q", want)
		}
	}
}

// TestPaperDeviceMatchesDefaults: the registry's paper entry must be the
// exact configuration every zero-valued MemoryConfig has always meant —
// otherwise registering the library would silently change the baseline.
func TestPaperDeviceMatchesDefaults(t *testing.T) {
	d, err := Device("")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != PaperDevice {
		t.Fatalf("empty device resolved to %q, want %q", d.Name, PaperDevice)
	}
	if d.Geometry != DefaultGeometry() {
		t.Errorf("paper geometry %+v != DefaultGeometry %+v", d.Geometry, DefaultGeometry())
	}
	want := DefaultTiming()
	got := d.Timing
	got.MinFreq, got.MaxFreq = want.MinFreq, want.MaxFreq // range is additive
	if got != want {
		t.Errorf("paper timing %+v != DefaultTiming %+v", d.Timing, want)
	}
	if len(d.Frequencies) != len(EvaluatedFrequencies) {
		t.Fatalf("paper clock list has %d entries, want %d", len(d.Frequencies), len(EvaluatedFrequencies))
	}
	for i, f := range EvaluatedFrequencies {
		if d.Frequencies[i] != f {
			t.Errorf("paper clock[%d] = %v, want %v", i, d.Frequencies[i], f)
		}
	}
}

// TestDeviceLookup covers the spellings and the failure mode.
func TestDeviceLookup(t *testing.T) {
	for _, s := range []string{"paper", "Paper", " lpddr4 ", "LPDDR5", "xdr"} {
		if _, err := Device(s); err != nil {
			t.Errorf("Device(%q): %v", s, err)
		}
	}
	_, err := Device("ddr9")
	if err == nil {
		t.Fatal("Device(ddr9) succeeded")
	}
	for _, name := range DeviceNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered device %q", err, name)
		}
	}
}
