package dram

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// IDD is a device's current/energy profile at its datasheet base
// conditions — a dependency-free mirror of power.Datasheet (package power
// imports dram, so the conversion to the power model lives in core). All
// currents are milliamperes.
type IDD struct {
	// BaseFreq and BaseVDD are the datasheet conditions; VDD the
	// projected operating core voltage.
	BaseFreq units.Frequency
	BaseVDD  float64
	VDD      float64

	IDD2P float64 // precharge power-down
	IDD3P float64 // active power-down
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // read burst
	IDD4W float64 // write burst
	IDD5  float64 // refresh burst
	IDD6  float64 // self-refresh

	// ActPrechargeEnergy is the activate+precharge pair energy at base
	// VDD, in picojoules.
	ActPrechargeEnergy units.Energy
}

// Datasheet is one registered device description: geometry, analog timing
// (with its clock range), representative sweep clocks, and the IDD
// profile the power model consumes. Entries for post-paper devices are
// class-representative values mapped onto this simulator's single-clock
// DDR model (one word per clock edge), not cycle-accurate reproductions
// of the real interfaces; Source names where the numbers come from.
type Datasheet struct {
	Name        string
	Description string
	Source      string
	Geometry    Geometry
	Timing      Timing
	// Frequencies lists representative interface clocks for sweeps; the
	// full legal range is Timing.FreqRange().
	Frequencies []units.Frequency
}

// IDDProfile returns the device's current profile. It is a method rather
// than a field so the comparable parts of a Datasheet stay cheap to copy
// into configuration structs.
func (d Datasheet) IDDProfile() IDD { return deviceIDD[d.Name] }

// Validate checks the full entry: geometry, timing, and that every listed
// frequency resolves.
func (d Datasheet) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dram: datasheet with empty name")
	}
	if len(d.Frequencies) == 0 {
		return fmt.Errorf("dram: datasheet %q lists no frequencies", d.Name)
	}
	for _, f := range d.Frequencies {
		if _, err := Resolve(d.Geometry, d.Timing, f); err != nil {
			return fmt.Errorf("dram: datasheet %q: %w", d.Name, err)
		}
	}
	return nil
}

// PaperDevice is the registry name of the paper's estimated mobile DDR
// part — the baseline every other subsystem assumes when no device is
// named.
const PaperDevice = "paper"

// library is the device registry, in presentation order.
var library = []Datasheet{
	{
		Name:        PaperDevice,
		Description: "paper's estimated next-generation mobile DDR (512 Mb, 4 banks, x32, BL4, 200-533 MHz)",
		Source:      "Micron 512 Mb Mobile DDR SDRAM datasheet, extrapolated per the paper's section III recipe",
		Geometry:    Geometry{Banks: 4, Rows: 8192, Columns: 512, WordBits: 32, BurstLength: 4},
		Timing:      Timing{}, // filled from DefaultTiming in init
		Frequencies: nil,      // filled from EvaluatedFrequencies in init
	},
	{
		Name:        "xdr",
		Description: "XDR DRAM comparison point (Cell BE class; 8 banks, x32, BL16, 400-1600 MHz)",
		Source:      "Rambus XDR architecture / Cell BE memory configuration (paper section VII); timing approximated onto the single-clock DDR model",
		Geometry:    Geometry{Banks: 8, Rows: 8192, Columns: 1024, WordBits: 32, BurstLength: 16},
		Timing: Timing{
			TRCD:       12 * units.Nanosecond,
			TRP:        12 * units.Nanosecond,
			TRAS:       28 * units.Nanosecond,
			TRC:        40 * units.Nanosecond,
			TWR:        12 * units.Nanosecond,
			TRRD:       8 * units.Nanosecond,
			TRFC:       72 * units.Nanosecond,
			TREFI:      units.Duration(7800) * units.Nanosecond,
			TCAS:       12 * units.Nanosecond,
			TFAW:       32 * units.Nanosecond,
			TXSR:       150 * units.Nanosecond,
			TWTRCycles: 4,
			TRTPCycles: 4,
			TXPCycles:  4,
			MinFreq:    400 * units.MHz,
			MaxFreq:    1600 * units.MHz,
		},
		Frequencies: []units.Frequency{400 * units.MHz, 800 * units.MHz, 1200 * units.MHz, 1600 * units.MHz},
	},
	{
		Name:        "lpddr4",
		Description: "LPDDR4-class device (4 Gb, 8 banks, x16, BL16, 200-1600 MHz)",
		Source:      "JEDEC JESD209-4B and Micron 4 Gb LPDDR4 datasheet class values (tRCD 18 ns, tRPpb 18 ns, tRAS 42 ns, tRFCab 130 ns, tREFI 3.904 us)",
		Geometry:    Geometry{Banks: 8, Rows: 32768, Columns: 1024, WordBits: 16, BurstLength: 16},
		Timing: Timing{
			TRCD:       18 * units.Nanosecond,
			TRP:        18 * units.Nanosecond,
			TRAS:       42 * units.Nanosecond,
			TRC:        60 * units.Nanosecond,
			TWR:        18 * units.Nanosecond,
			TRRD:       10 * units.Nanosecond,
			TRFC:       130 * units.Nanosecond,
			TREFI:      units.Duration(3904) * units.Nanosecond,
			TCAS:       20 * units.Nanosecond,
			TFAW:       40 * units.Nanosecond,
			TXSR:       138 * units.Nanosecond,
			TWTRCycles: 8,
			TRTPCycles: 8,
			TXPCycles:  6,
			MinFreq:    200 * units.MHz,
			MaxFreq:    1600 * units.MHz,
		},
		Frequencies: []units.Frequency{400 * units.MHz, 800 * units.MHz, 1200 * units.MHz, 1600 * units.MHz},
	},
	{
		Name:        "lpddr5",
		Description: "LPDDR5-class device (8 Gb, 16 banks, x16, BL16, 200-3200 MHz)",
		Source:      "JEDEC JESD209-5 class values (tRCD 18 ns, tRPpb 18 ns, tRAS 42 ns, tRRD 5 ns, tFAW 20 ns, tRFCab 210 ns)",
		Geometry:    Geometry{Banks: 16, Rows: 32768, Columns: 1024, WordBits: 16, BurstLength: 16},
		Timing: Timing{
			TRCD:       18 * units.Nanosecond,
			TRP:        18 * units.Nanosecond,
			TRAS:       42 * units.Nanosecond,
			TRC:        60 * units.Nanosecond,
			TWR:        34 * units.Nanosecond,
			TRRD:       5 * units.Nanosecond,
			TRFC:       210 * units.Nanosecond,
			TREFI:      units.Duration(3904) * units.Nanosecond,
			TCAS:       18 * units.Nanosecond,
			TFAW:       20 * units.Nanosecond,
			TXSR:       218 * units.Nanosecond,
			TWTRCycles: 10,
			TRTPCycles: 8,
			TXPCycles:  7,
			MinFreq:    200 * units.MHz,
			MaxFreq:    3200 * units.MHz,
		},
		Frequencies: []units.Frequency{800 * units.MHz, 1600 * units.MHz, 2400 * units.MHz, 3200 * units.MHz},
	},
}

// deviceIDD holds each entry's current profile, keyed by name. Values are
// datasheet magnitudes at the entry's base conditions; the paper entry
// mirrors power.DefaultDatasheet exactly.
var deviceIDD = map[string]IDD{
	PaperDevice: {
		BaseFreq: 200 * units.MHz, BaseVDD: 1.8, VDD: 1.35,
		IDD2P: 3.0, IDD3P: 3.5, IDD2N: 20, IDD3N: 25,
		IDD4R: 107, IDD4W: 103, IDD5: 90, IDD6: 0.45,
		ActPrechargeEnergy: 3000,
	},
	"xdr": {
		BaseFreq: 400 * units.MHz, BaseVDD: 1.8, VDD: 1.8,
		IDD2P: 5, IDD3P: 8, IDD2N: 35, IDD3N: 45,
		IDD4R: 230, IDD4W: 215, IDD5: 150, IDD6: 1.5,
		ActPrechargeEnergy: 4000,
	},
	"lpddr4": {
		BaseFreq: 800 * units.MHz, BaseVDD: 1.1, VDD: 1.1,
		IDD2P: 0.6, IDD3P: 1.4, IDD2N: 2.5, IDD3N: 4.5,
		IDD4R: 180, IDD4W: 160, IDD5: 28, IDD6: 0.4,
		ActPrechargeEnergy: 1800,
	},
	"lpddr5": {
		BaseFreq: 1600 * units.MHz, BaseVDD: 1.05, VDD: 1.05,
		IDD2P: 0.5, IDD3P: 1.2, IDD2N: 2.0, IDD3N: 4.0,
		IDD4R: 210, IDD4W: 190, IDD5: 30, IDD6: 0.3,
		ActPrechargeEnergy: 1500,
	},
}

func init() {
	// The paper entry reuses the canonical defaults so the two can never
	// drift apart.
	library[0].Timing = DefaultTiming()
	library[0].Frequencies = append([]units.Frequency(nil), EvaluatedFrequencies...)
	for _, d := range library {
		if err := d.Validate(); err != nil {
			panic(err)
		}
		if _, ok := deviceIDD[d.Name]; !ok {
			panic(fmt.Sprintf("dram: datasheet %q has no IDD profile", d.Name))
		}
	}
}

// Device resolves a registry name (case-insensitive; empty means the
// paper baseline). Unknown names report the registered list.
func Device(name string) (Datasheet, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		n = PaperDevice
	}
	for _, d := range library {
		if d.Name == n {
			return d, nil
		}
	}
	return Datasheet{}, fmt.Errorf("dram: unknown device %q (registered devices: %s)",
		name, strings.Join(DeviceNames(), ", "))
}

// Devices returns every registered datasheet in presentation order.
func Devices() []Datasheet {
	return append([]Datasheet(nil), library...)
}

// DeviceNames returns the sorted registry names for error messages and
// usage text.
func DeviceNames() []string {
	out := make([]string, len(library))
	for i, d := range library {
		out[i] = d.Name
	}
	sort.Strings(out)
	return out
}
