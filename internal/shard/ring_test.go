package shard

import (
	"crypto/sha256"
	"strconv"
	"testing"

	"repro/internal/simcache"
)

// testKeys returns a deterministic set of n distinct keys — hashed
// counters, so every run of the property tests sees the same keyspace
// sample and a pass can never be a lucky draw.
func testKeys(n int) []simcache.Key {
	keys := make([]simcache.Key, n)
	for i := range keys {
		keys[i] = simcache.Key(sha256.Sum256([]byte("ring-test-key-" + strconv.Itoa(i))))
	}
	return keys
}

func mustRing(t *testing.T, vnodes int, members ...string) *Ring {
	t.Helper()
	r, err := NewRing(vnodes, members...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingDistribution is the satellite's uniformity property: at 128
// vnodes, 4 shards each own the expected share of a large key sample
// within ±15%.
func TestRingDistribution(t *testing.T) {
	r := mustRing(t, 128, "shard-0", "shard-1", "shard-2", "shard-3")
	keys := testKeys(20000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	expect := float64(len(keys)) / 4
	for _, m := range r.Members() {
		got := float64(counts[m])
		if dev := (got - expect) / expect; dev < -0.15 || dev > 0.15 {
			t.Errorf("member %s owns %d keys, expected %.0f ±15%% (deviation %+.1f%%)",
				m, counts[m], expect, dev*100)
		}
	}
}

// TestRingMinimalMovement is the satellite's movement property: adding a
// shard to an N-member ring moves at most (1/(N+1) + ε) of the keys, and
// every moved key moves TO the new shard; removing a shard moves exactly
// the removed shard's keys, each to a surviving member, and no other key
// moves at all.
func TestRingMinimalMovement(t *testing.T) {
	const eps = 0.05
	keys := testKeys(20000)
	r4 := mustRing(t, 128, "shard-0", "shard-1", "shard-2", "shard-3")

	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r4.Owner(k)
	}

	r5, err := r4.With("shard-4")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, k := range keys {
		if after := r5.Owner(k); after != before[i] {
			moved++
			if after != "shard-4" {
				t.Fatalf("key %d moved %s -> %s on add, not to the new shard", i, before[i], after)
			}
		}
	}
	if limit := int((1.0/5 + eps) * float64(len(keys))); moved > limit {
		t.Errorf("adding a 5th shard moved %d/%d keys, want <= %d (1/5 + %v)",
			moved, len(keys), limit, eps)
	}
	if moved == 0 {
		t.Error("adding a shard moved no keys — the new member owns nothing")
	}

	r3, err := r4.Without("shard-2")
	if err != nil {
		t.Fatal(err)
	}
	removedMoved := 0
	for i, k := range keys {
		after := r3.Owner(k)
		switch {
		case before[i] == "shard-2":
			removedMoved++
			if after == "shard-2" {
				t.Fatalf("key %d still owned by removed shard", i)
			}
		case after != before[i]:
			t.Fatalf("key %d moved %s -> %s on removal of an unrelated shard", i, before[i], after)
		}
	}
	if limit := int((1.0/4 + eps) * float64(len(keys))); removedMoved > limit {
		t.Errorf("removing a shard moved %d/%d keys, want <= %d (1/4 + %v)",
			removedMoved, len(keys), limit, eps)
	}
}

// TestRingDeterminism: placement depends only on membership and vnode
// count, never on construction order or process state.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, 64, "s1", "s2", "s3")
	b := mustRing(t, 64, "s3", "s1", "s2")
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner differs for construction orders: %s vs %s", a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSuccessors: the failover sequence starts at the owner, lists
// distinct members, and is capped by the membership size.
func TestRingSuccessors(t *testing.T) {
	r := mustRing(t, 32, "s1", "s2", "s3")
	for _, k := range testKeys(100) {
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("successors = %v, want all 3 members", succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors %v do not start at owner %s", succ, r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("duplicate member in successors %v", succ)
			}
			seen[m] = true
		}
	}
}

// TestRingValidation: empty, duplicate and unknown members are errors.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(8); err == nil {
		t.Error("empty ring built without error")
	}
	if _, err := NewRing(8, "a", "a"); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing(8, ""); err == nil {
		t.Error("empty member name accepted")
	}
	r := mustRing(t, 8, "a", "b")
	if _, err := r.Without("zz"); err == nil {
		t.Error("removing a non-member succeeded")
	}
	if _, err := r.With("a"); err == nil {
		t.Error("adding an existing member succeeded")
	}
}
