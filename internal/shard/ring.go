// Package shard scales the simulation service horizontally: a
// consistent-hash ring partitions the content-addressed key space across
// N simd shards with deterministic placement and minimal movement on
// membership change, and a Router fronts the fleet — routing single
// points to their key's owner, fanning sweeps out as one batched
// sub-request per shard, failing over to ring successors with jittered
// retries, and merging the answers byte-identically to a single daemon.
//
// The ring is the contract that makes per-shard disk caches effective: a
// key always lands on the same shard (so its cache entry is always
// consulted), and adding or removing a shard reassigns only ~1/N of the
// key space instead of reshuffling everything — the property that keeps a
// warmed fleet warm through membership churn.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/simcache"
)

// DefaultVNodes is the virtual-node count per member. 128 vnodes keep
// the per-member load within a few percent of uniform (the ring property
// test pins ±15% across 4 members) at negligible memory cost.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over named members. Build
// with NewRing; membership changes produce a new Ring (With/Without), so
// concurrent readers never need a lock.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint // sorted by pos
}

// ringPoint is one virtual node: a position on the 64-bit keyspace owned
// by members[member].
type ringPoint struct {
	pos    uint64
	member int
}

// NewRing builds a ring with vnodes virtual nodes per member (0 =
// DefaultVNodes). Member names must be unique and non-empty; placement
// depends only on the names and vnode count, never on argument order, so
// every process that agrees on the membership agrees on the placement.
func NewRing(vnodes int, members ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("shard: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("shard: duplicate member %q", m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]ringPoint, 0, vnodes*len(sorted)),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{pos: vnodePos(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// A 64-bit collision between two members' vnodes is vanishingly
		// rare but must still order deterministically.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// vnodePos places one virtual node: the leading 8 bytes of
// SHA-256("shard-ring/v1|<member>|<index>"). Versioned so a future
// placement change cannot silently split a fleet that mixes binaries.
func vnodePos(member string, index int) uint64 {
	h := sha256.Sum256([]byte("shard-ring/v1|" + member + "|" + strconv.Itoa(index)))
	return binary.BigEndian.Uint64(h[:8])
}

// Members returns the member names in sorted order (a copy).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's ring point.
func (r *Ring) Owner(key simcache.Key) string {
	return r.members[r.points[r.search(key.RingPoint())].member]
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the failover sequence: the owner first, then the
// members a router should try when it is unreachable.
func (r *Ring) Successors(key simcache.Key, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := r.search(key.RingPoint()); len(out) < n; i = (i + 1) % len(r.points) {
		if m := r.points[i].member; !seen[m] {
			seen[m] = true
			out = append(out, r.members[m])
		}
	}
	return out
}

// search returns the index of the first virtual node at or after pos,
// wrapping past the top of the keyspace to the first node.
func (r *Ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}

// With returns a new ring with member added.
func (r *Ring) With(member string) (*Ring, error) {
	return NewRing(r.vnodes, append(r.Members(), member)...)
}

// Without returns a new ring with member removed.
func (r *Ring) Without(member string) (*Ring, error) {
	var rest []string
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	if len(rest) == len(r.members) {
		return nil, fmt.Errorf("shard: %q is not a ring member", member)
	}
	return NewRing(r.vnodes, rest...)
}
