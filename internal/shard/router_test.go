package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// testFleet is a set of in-process shards (each a full server.Server
// behind httptest) plus a Router fronting them — the unit-test version
// of the simrouter + N×simd deployment.
type testFleet struct {
	shards  map[string]*httptest.Server
	urls    map[string]string
	router  *Router
	service *httptest.Server
}

func newTestFleet(t *testing.T, n int, cfg RouterConfig) *testFleet {
	t.Helper()
	f := &testFleet{
		shards: map[string]*httptest.Server{},
		urls:   map[string]string{},
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i+1)
		s := server.New(server.Config{Workers: 2, ShardName: name, Metrics: metrics.NewRegistry()})
		ts := httptest.NewServer(s.Handler())
		f.shards[name] = ts
		f.urls[name] = ts.URL
	}
	cfg.Shards = f.urls
	if cfg.HealthInterval == 0 {
		// Keep the poller out of short tests; passive marking still runs.
		cfg.HealthInterval = time.Hour
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.service = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.service.Close()
		rt.Close()
		for _, ts := range f.shards {
			ts.Close()
		}
	})
	return f
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const sweepBody = `{"formats":["720p30"],"channels":[1,2],"freqs_mhz":[200,400],"fraction":0.05}`

// singleSweep answers the same sweep from ONE fresh daemon — the
// byte-identity reference.
func singleSweep(t *testing.T, body string) []byte {
	t.Helper()
	s := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := post(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d", resp.StatusCode)
	}
	return readAll(t, resp)
}

// TestRouterSimulate: a routed point answers exactly like a direct
// daemon, attributed to the ring owner of its cache key.
func TestRouterSimulate(t *testing.T) {
	f := newTestFleet(t, 3, RouterConfig{})
	body := `{"format":"720p30","channels":2,"freq_mhz":200,"fraction":0.05}`

	resp := post(t, f.service.URL+"/v1/simulate", body)
	routed := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed simulate: status %d, body %s", resp.StatusCode, routed)
	}
	shard := resp.Header.Get("X-Sim-Shard")
	if shard == "" {
		t.Fatal("routed response has no X-Sim-Shard attribution")
	}
	var req server.SimulateRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	key, err := keyFor(req)
	if err != nil {
		t.Fatal(err)
	}
	if owner := f.router.Ring().Owner(key); shard != owner {
		t.Errorf("served by %s, ring owner is %s", shard, owner)
	}
	if cache := resp.Header.Get("X-Sim-Cache"); cache == "" {
		t.Error("shard's X-Sim-Cache header was not relayed")
	}

	direct := post(t, f.urls[shard]+"/v1/simulate", body)
	want := readAll(t, direct)
	if !bytes.Equal(routed, want) {
		t.Errorf("routed body %s != direct shard body %s", routed, want)
	}
}

// TestRouterSweepByteIdentical is the tentpole contract: the merged
// fleet sweep is byte-for-byte the single-daemon sweep, at the exact
// tier and at -fidelity auto, with per-shard attribution adding up to
// the grid size.
func TestRouterSweepByteIdentical(t *testing.T) {
	f := newTestFleet(t, 3, RouterConfig{})
	for _, tier := range []string{"", "auto"} {
		body := sweepBody
		if tier != "" {
			body = strings.Replace(body, `{"formats"`, `{"fidelity":"`+tier+`","formats"`, 1)
		}
		resp := post(t, f.service.URL+"/v1/sweep", body)
		merged := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tier %q: routed sweep status %d, body %s", tier, resp.StatusCode, merged)
		}
		if want := singleSweep(t, body); !bytes.Equal(merged, want) {
			t.Errorf("tier %q: merged sweep differs from single daemon\nrouter: %s\nsingle: %s", tier, merged, want)
		}

		total := 0
		for _, part := range strings.Split(resp.Header.Get("X-Sim-Shard"), ",") {
			kv := strings.SplitN(part, "=", 2)
			var n int
			if len(kv) != 2 {
				t.Fatalf("tier %q: unparsable X-Sim-Shard part %q", tier, part)
			}
			if _, err := fmt.Sscanf(kv[1], "%d", &n); err != nil {
				t.Fatalf("tier %q: unparsable X-Sim-Shard part %q", tier, part)
			}
			total += n
		}
		if total != 4 {
			t.Errorf("tier %q: X-Sim-Shard %q counts sum to %d, want 4",
				tier, resp.Header.Get("X-Sim-Shard"), total)
		}
	}
}

// TestRouterFailover: with one shard down, every request still answers
// correctly from a ring successor and the fleet view marks the loss.
func TestRouterFailover(t *testing.T) {
	f := newTestFleet(t, 3, RouterConfig{Retries: 2, RetryBackoff: time.Millisecond})
	want := singleSweep(t, sweepBody)

	f.shards["s2"].Close()

	resp := post(t, f.service.URL+"/v1/sweep", sweepBody)
	merged := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with a dead shard: status %d, body %s", resp.StatusCode, merged)
	}
	if !bytes.Equal(merged, want) {
		t.Errorf("failover sweep differs from single daemon\nrouter: %s\nsingle: %s", merged, want)
	}
	if strings.Contains(resp.Header.Get("X-Sim-Shard"), "s2=") {
		t.Errorf("dead shard still attributed answers: %q", resp.Header.Get("X-Sim-Shard"))
	}

	ringResp, err := http.Get(f.service.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	var status RingStatus
	if err := json.Unmarshal(readAll(t, ringResp), &status); err != nil {
		t.Fatal(err)
	}
	healthyByName := map[string]bool{}
	for _, s := range status.Shards {
		healthyByName[s.Name] = s.Healthy
	}
	// Passive marking only demotes a shard the router actually tried, and
	// with three members one sub-batch may never have touched s2 — but if
	// it did, the ring view must say so.
	if len(status.Shards) != 3 {
		t.Fatalf("/v1/ring lists %d shards, want 3", len(status.Shards))
	}
	if healthyByName["s1"] == false || healthyByName["s3"] == false {
		t.Errorf("live shards marked unhealthy: %+v", status.Shards)
	}
}

// TestRouterAllDown: with every shard gone the router answers an honest
// 502, not a hang or a wrong answer.
func TestRouterAllDown(t *testing.T) {
	f := newTestFleet(t, 2, RouterConfig{Retries: 1, RetryBackoff: time.Millisecond})
	for _, ts := range f.shards {
		ts.Close()
	}
	resp := post(t, f.service.URL+"/v1/simulate",
		`{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all shards down: status %d, want 502", resp.StatusCode)
	}
}

// TestRouterWarm: ?warm=1 primes every shard's cache without shipping
// result bodies; the following sweep answers entirely from cache.
func TestRouterWarm(t *testing.T) {
	f := newTestFleet(t, 3, RouterConfig{})

	resp := post(t, f.service.URL+"/v1/sweep?warm=1", sweepBody)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d, body %s", resp.StatusCode, body)
	}
	var warm server.WarmResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Points != 4 {
		t.Errorf("warm primed %d points, want 4", warm.Points)
	}
	if warm.Outcomes["simulated"]+warm.Outcomes["joined"] != 4 {
		t.Errorf("cold warm outcomes = %v, want 4 computed", warm.Outcomes)
	}

	resp = post(t, f.service.URL+"/v1/sweep", sweepBody)
	merged := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-warm sweep: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sim-Cache"); got != "hit=4" {
		t.Errorf("post-warm sweep X-Sim-Cache = %q, want hit=4", got)
	}
	if want := singleSweep(t, sweepBody); !bytes.Equal(merged, want) {
		t.Errorf("post-warm sweep differs from single daemon")
	}
}

// TestRouterBatch: a routed batch merges points and outcomes in request
// order across shards.
func TestRouterBatch(t *testing.T) {
	f := newTestFleet(t, 2, RouterConfig{})
	body := `{"points":[
		{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05},
		{"format":"720p30","channels":2,"freq_mhz":200,"fraction":0.05},
		{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05}]}`
	resp := post(t, f.service.URL+"/v1/batch", body)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed batch: status %d, body %s", resp.StatusCode, raw)
	}
	var batch server.BatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Points) != 3 || len(batch.Outcomes) != 3 {
		t.Fatalf("routed batch: %d points / %d outcomes, want 3 / 3", len(batch.Points), len(batch.Outcomes))
	}
	if batch.Points[0] != batch.Points[2] {
		t.Errorf("identical points answered differently: %+v vs %+v", batch.Points[0], batch.Points[2])
	}
	if batch.Points[0].Channels != 1 || batch.Points[1].Channels != 2 {
		t.Errorf("batch merge lost request order: %+v", batch.Points)
	}
}

// TestRouterValidation: undecodable, oversized and empty requests fail
// at the router without touching any shard.
func TestRouterValidation(t *testing.T) {
	f := newTestFleet(t, 1, RouterConfig{})
	huge := `{"formats":["720p30","` + strings.Repeat("x", server.MaxRequestBytes) + `"],"channels":[1],"freqs_mhz":[200]}`
	resp := post(t, f.service.URL+"/v1/sweep", huge)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized sweep: status %d, want 413", resp.StatusCode)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.MaxBytes != server.MaxRequestBytes {
		t.Errorf("413 body %s lacks max_bytes", raw)
	}

	for _, tc := range []struct{ path, body string }{
		{"/v1/simulate", `{"format":"nope","channels":1,"freq_mhz":200}`},
		{"/v1/sweep", `{"formats":[],"channels":[1],"freqs_mhz":[200]}`},
		{"/v1/batch", `{"points":[]}`},
	} {
		resp := post(t, f.service.URL+tc.path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.path, resp.StatusCode)
		}
	}

	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("router built with no shards")
	}
	if _, err := NewRouter(RouterConfig{Shards: map[string]string{"a": ""}}); err == nil {
		t.Error("router accepted an empty shard URL")
	}
}
