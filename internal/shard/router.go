package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/simcache"
)

// RouterConfig tunes the fleet frontend. The zero value of every field
// means its stated default, so only Shards is required.
type RouterConfig struct {
	// Shards maps shard name -> base URL (e.g. "s1" ->
	// "http://127.0.0.1:8081"). Names are the ring identity: placement
	// depends on them, so renaming a shard reassigns its key range even
	// when the URL is unchanged.
	Shards map[string]string
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// Retries is how many ring successors a failed request fails over to
	// (0 = 2). The owner plus Retries shards are attempted in ring order,
	// healthy ones first, with jittered backoff between attempts.
	Retries int
	// RetryBackoff is the base failover delay (0 = 25ms); attempt k waits
	// a uniformly jittered multiple of it, so a fleet of routers never
	// thunders in lockstep.
	RetryBackoff time.Duration
	// HealthInterval is the background /healthz poll period (0 = 1s). A
	// shard that fails its poll — or a proxied request — is skipped by
	// the failover walk until a later poll revives it.
	HealthInterval time.Duration
	// MaxSweepPoints bounds one sweep request's grid (0 = 4096). The
	// per-shard sub-batches are each bounded by the shard's own limit.
	MaxSweepPoints int
	// Client performs the proxied requests (nil = a client with
	// ShardTimeout). HealthClient performs the /healthz polls (nil = a
	// 2s-timeout client).
	Client       *http.Client
	HealthClient *http.Client
	// ShardTimeout caps one proxied request when Client is nil (0 = 10m).
	ShardTimeout time.Duration
	// Metrics, when non-nil, registers the router instruments in it.
	Metrics *metrics.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Minute
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.ShardTimeout}
	}
	if c.HealthClient == nil {
		c.HealthClient = &http.Client{Timeout: 2 * time.Second}
	}
	return c
}

// routerMeter bundles the router's registered instruments; fields are
// no-ops when no registry was configured.
type routerMeter struct {
	requests      map[string]*metrics.Counter
	latency       map[string]*metrics.Histogram
	shardRequests map[string]*metrics.Counter
	shardFailures map[string]*metrics.Counter
	failovers     *metrics.Counter
	unhealthy     *metrics.Gauge
}

func newRouterMeter(r *metrics.Registry, shards []string) routerMeter {
	m := routerMeter{
		requests:      map[string]*metrics.Counter{},
		latency:       map[string]*metrics.Histogram{},
		shardRequests: map[string]*metrics.Counter{},
		shardFailures: map[string]*metrics.Counter{},
	}
	if r == nil {
		r = metrics.NewRegistry()
	}
	for _, ep := range []string{"simulate", "sweep", "batch", "warm"} {
		l := metrics.Label{Key: "endpoint", Value: ep}
		m.requests[ep] = r.Counter("router_requests_total", l)
		m.latency[ep] = r.Histogram("router_request_seconds", metrics.DurationBuckets, l)
	}
	for _, s := range shards {
		l := metrics.Label{Key: "shard", Value: s}
		m.shardRequests[s] = r.Counter("router_shard_requests_total", l)
		m.shardFailures[s] = r.Counter("router_shard_failures_total", l)
	}
	m.failovers = r.Counter("router_failovers_total")
	m.unhealthy = r.Gauge("router_shards_unhealthy")
	return m
}

// shardState is one fleet member: its base URL and the router's current
// view of its health. healthy flips passively (a proxied request fails)
// and actively (the background /healthz poll), and an unhealthy shard is
// skipped by the failover walk until a poll revives it.
type shardState struct {
	name    string
	url     string
	healthy atomic.Bool
}

// Router fronts a fleet of simd shards: it owns the consistent-hash ring
// over the shard names, routes each single point to its key's owner,
// fans a sweep out as one batched sub-request per shard, and merges the
// answers byte-identically to a single daemon's. Construct with
// NewRouter, serve via Start or by mounting Handler.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	shards map[string]*shardState
	meter  routerMeter

	http *http.Server
	ln   net.Listener

	stopHealth context.CancelFunc
	healthDone chan struct{}
}

// NewRouter builds a Router and starts its health monitor.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard")
	}
	names := make([]string, 0, len(cfg.Shards))
	states := make(map[string]*shardState, len(cfg.Shards))
	for name, url := range cfg.Shards {
		if url == "" {
			return nil, fmt.Errorf("shard: %q has an empty URL", name)
		}
		names = append(names, name)
		st := &shardState{name: name, url: strings.TrimRight(url, "/")}
		st.healthy.Store(true)
		states[name] = st
	}
	ring, err := NewRing(cfg.VNodes, names...)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:        cfg,
		ring:       ring,
		shards:     states,
		meter:      newRouterMeter(cfg.Metrics, ring.Members()),
		healthDone: make(chan struct{}),
	}
	rt.http = &http.Server{Handler: rt.Handler()}
	hctx, cancel := context.WithCancel(context.Background())
	rt.stopHealth = cancel
	go rt.healthLoop(hctx)
	return rt, nil
}

// Ring exposes the placement ring (diagnostics and tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", rt.handleSimulate)
	mux.HandleFunc("/v1/sweep", rt.handleSweep)
	mux.HandleFunc("/v1/batch", rt.handleBatch)
	mux.HandleFunc("/v1/ring", rt.handleRing)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "simulation shard router\n\nPOST /v1/simulate\nPOST /v1/sweep (?warm=1 primes the fleet)\nPOST /v1/batch\nGET  /v1/ring\nGET  /healthz\n")
	})
	return mux
}

// Start binds addr and serves in the background (":0" learns the port).
func (rt *Router) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	rt.ln = ln
	go rt.http.Serve(ln)
	return nil
}

// Addr returns the bound address (resolved port for ":0" binds).
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return ""
	}
	return rt.ln.Addr().String()
}

// Drain gracefully stops the router: the listener closes immediately and
// in-flight proxied requests get until ctx to finish.
func (rt *Router) Drain(ctx context.Context) error {
	defer rt.stopMonitor()
	if err := rt.http.Shutdown(ctx); err != nil {
		rt.http.Close()
		return fmt.Errorf("shard: drain: %w", err)
	}
	return nil
}

// Close stops the router immediately.
func (rt *Router) Close() error {
	rt.stopMonitor()
	return rt.http.Close()
}

func (rt *Router) stopMonitor() {
	rt.stopHealth()
	<-rt.healthDone
}

// healthLoop polls every shard's /healthz on the configured interval,
// reviving shards that answer and demoting ones that do not.
func (rt *Router) healthLoop(ctx context.Context) {
	defer close(rt.healthDone)
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, st := range rt.shards {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.url+"/healthz", nil)
			if err != nil {
				continue
			}
			resp, err := rt.cfg.HealthClient.Do(req)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			rt.setHealth(st, ok)
		}
	}
}

func (rt *Router) setHealth(st *shardState, healthy bool) {
	if st.healthy.Swap(healthy) != healthy {
		if healthy {
			rt.meter.unhealthy.Add(-1)
		} else {
			rt.meter.unhealthy.Add(1)
		}
	}
}

// healthyCount returns how many shards the router currently trusts.
func (rt *Router) healthyCount() int {
	n := 0
	for _, st := range rt.shards {
		if st.healthy.Load() {
			n++
		}
	}
	return n
}

// candidates returns the shards to try for key, in failover order: the
// ring successor walk starting at the owner, healthy shards first. The
// unhealthy tail keeps a fully-dark fleet answerable the moment one
// shard comes back, at the cost of a wasted attempt.
func (rt *Router) candidates(key simcache.Key) []*shardState {
	names := rt.ring.Successors(key, len(rt.shards))
	healthy := make([]*shardState, 0, len(names))
	var down []*shardState
	for _, n := range names {
		st := rt.shards[n]
		if st.healthy.Load() {
			healthy = append(healthy, st)
		} else {
			down = append(down, st)
		}
	}
	return append(healthy, down...)
}

// backoff sleeps the jittered failover delay for attempt k (k=0 is the
// first retry), honoring ctx cancellation.
func (rt *Router) backoff(ctx context.Context, k int) {
	base := rt.cfg.RetryBackoff << uint(k)
	d := base/2 + time.Duration(rand.Int63n(int64(base/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// proxyResult is one shard's answer to a forwarded request.
type proxyResult struct {
	status int
	body   []byte
	header http.Header
	shard  string
}

// retriable reports whether a shard answer should fail over to the ring
// successor: transport errors and the shard-side 5xx family (500 panic,
// 502, 503 drain cut-off). 504 is the CLIENT's deadline — retrying
// elsewhere would silently double it — and 429 is honest backpressure
// the client must see, so both pass through.
func retriable(status int) bool {
	return status == http.StatusInternalServerError ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

// forward tries one POST against the candidate shards in order with
// jittered backoff between attempts, at most 1+Retries attempts. The
// passed headers ride along on every attempt.
func (rt *Router) forward(ctx context.Context, cands []*shardState, path string, payload []byte, hdr http.Header) (proxyResult, error) {
	attempts := rt.cfg.Retries + 1
	if attempts > len(cands) {
		attempts = len(cands)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.meter.failovers.Inc()
			rt.backoff(ctx, i-1)
			if ctx.Err() != nil {
				break
			}
		}
		st := cands[i]
		rt.meter.shardRequests[st.name].Inc()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.url+path, bytes.NewReader(payload))
		if err != nil {
			return proxyResult{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := rt.cfg.Client.Do(req)
		if err != nil {
			rt.meter.shardFailures[st.name].Inc()
			rt.setHealth(st, false)
			lastErr = fmt.Errorf("shard %s: %w", st.name, err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rt.meter.shardFailures[st.name].Inc()
			rt.setHealth(st, false)
			lastErr = fmt.Errorf("shard %s: reading response: %w", st.name, err)
			continue
		}
		if retriable(resp.StatusCode) {
			rt.meter.shardFailures[st.name].Inc()
			if resp.StatusCode != http.StatusInternalServerError {
				// 502/503 mean the daemon is going (or gone); a 500 is a
				// request-level failure, not a sick shard.
				rt.setHealth(st, false)
			}
			lastErr = fmt.Errorf("shard %s: status %d: %s", st.name, resp.StatusCode, strings.TrimSpace(string(body)))
			continue
		}
		return proxyResult{status: resp.StatusCode, body: body, header: resp.Header, shard: st.name}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no shard available")
	}
	return proxyResult{}, lastErr
}

// forwardHeaders extracts the client headers that must ride along to the
// shards: the rate-limit identity and the deadline request.
func forwardHeaders(r *http.Request) http.Header {
	h := http.Header{}
	for _, k := range []string{"X-Client-ID", "X-Sim-Deadline"} {
		if v := r.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	if d := r.URL.Query().Get("deadline"); d != "" && h.Get("X-Sim-Deadline") == "" {
		h.Set("X-Sim-Deadline", d)
	}
	return h
}

// keyFor computes the placement key for one decoded point.
func keyFor(req server.SimulateRequest) (simcache.Key, error) {
	w, mc, err := req.Point()
	if err != nil {
		return simcache.Key{}, err
	}
	key, _ := core.CacheKey(w, mc)
	// cacheable=false cannot arise over the wire (probes and faults are
	// not expressible in the request schema); the zero key it returns
	// would still route deterministically.
	return key, nil
}

// guard wraps a router handler with method discipline and accounting.
func (rt *Router) guard(endpoint string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		rt.meter.requests[endpoint].Inc()
		start := time.Now()
		defer func() { rt.meter.latency[endpoint].Observe(time.Since(start).Seconds()) }()
		h(w, r)
	}
}

func (rt *Router) handleSimulate(w http.ResponseWriter, r *http.Request) {
	rt.guard("simulate", func(w http.ResponseWriter, r *http.Request) {
		var req server.SimulateRequest
		if err := server.DecodeJSON(r.Body, &req); err != nil {
			writeDecodeError(w, err)
			return
		}
		key, err := keyFor(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		payload, err := json.Marshal(&req)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		res, err := rt.forward(r.Context(), rt.candidates(key), "/v1/simulate", payload, forwardHeaders(r))
		if err != nil {
			writeError(w, http.StatusBadGateway, err.Error())
			return
		}
		rt.relay(w, res)
	})(w, r)
}

// relay copies a shard's answer to the client, stamping the shard
// attribution: the shard's own X-Sim-Shard header when it set one (the
// daemon knows its name), else the ring member name the router used.
func (rt *Router) relay(w http.ResponseWriter, res proxyResult) {
	for _, k := range []string{"Content-Type", "X-Sim-Cache", "X-Sim-Degraded", "Retry-After"} {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	shard := res.header.Get("X-Sim-Shard")
	if shard == "" {
		shard = res.shard
	}
	w.Header().Set("X-Sim-Shard", shard)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// subBatch is one shard's share of a fanned-out grid: the original
// indices it owns and the shard's answer once it lands.
type subBatch struct {
	indices []int
	points  []server.SimulateRequest

	res  proxyResult
	resp server.BatchResponse
	err  error
}

// fanOut groups the grid's points by ring owner and answers each group
// with one /v1/batch round trip per shard (failing over per sub-batch),
// all in parallel. The returned map is keyed by owner name.
func (rt *Router) fanOut(ctx context.Context, points []server.SimulateRequest, fidelity string, warm bool, hdr http.Header) (map[string]*subBatch, error) {
	groups := map[string]*subBatch{}
	for i, p := range points {
		key, err := keyFor(p)
		if err != nil {
			return nil, err
		}
		owner := rt.ring.Owner(key)
		g := groups[owner]
		if g == nil {
			g = &subBatch{}
			groups[owner] = g
		}
		g.indices = append(g.indices, i)
		g.points = append(g.points, p)
	}
	var wg sync.WaitGroup
	for owner, g := range groups {
		wg.Add(1)
		go func(owner string, g *subBatch) {
			defer wg.Done()
			payload, err := json.Marshal(&server.BatchRequest{Points: g.points, Fidelity: fidelity, Warm: warm})
			if err != nil {
				g.err = err
				return
			}
			// Candidate order anchors on the group's first key so every
			// retry of this sub-batch walks the same successor sequence.
			key, _ := keyFor(g.points[0])
			g.res, g.err = rt.forward(ctx, rt.candidates(key), "/v1/batch", payload, hdr)
			if g.err != nil {
				return
			}
			if g.res.status != http.StatusOK {
				return
			}
			if err := json.Unmarshal(g.res.body, &g.resp); err != nil {
				g.err = fmt.Errorf("shard %s: undecodable batch response: %w", g.res.shard, err)
				return
			}
			if !warm && len(g.resp.Points) != len(g.points) {
				g.err = fmt.Errorf("shard %s: batch returned %d points, want %d", g.res.shard, len(g.resp.Points), len(g.points))
			}
		}(owner, g)
	}
	wg.Wait()
	return groups, nil
}

// mergeFailure writes the first sub-batch failure: pass through an
// honest 429 (with its Retry-After) so fleet backpressure reaches the
// client, else a 502 naming the shard. Deterministic: groups are walked
// in sorted owner order.
func mergeFailure(w http.ResponseWriter, groups map[string]*subBatch) bool {
	owners := make([]string, 0, len(groups))
	for o := range groups {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		g := groups[o]
		if g.err != nil {
			writeError(w, http.StatusBadGateway, g.err.Error())
			return true
		}
		if g.res.status == http.StatusTooManyRequests {
			if ra := g.res.header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.Header().Set("X-Sim-Shard", g.shardName())
			writeError(w, http.StatusTooManyRequests, fmt.Sprintf("shard %s shed the sub-batch", g.shardName()))
			return true
		}
		if g.res.status != http.StatusOK {
			w.Header().Set("Content-Type", g.res.header.Get("Content-Type"))
			w.WriteHeader(g.res.status)
			w.Write(g.res.body)
			return true
		}
	}
	return false
}

// shardName is the attribution for this sub-batch's answer.
func (g *subBatch) shardName() string {
	if g.resp.Shard != "" {
		return g.resp.Shard
	}
	if h := g.res.header.Get("X-Sim-Shard"); h != "" {
		return h
	}
	return g.res.shard
}

// countHeader renders "k1=v1,k2=v2" with sorted keys — the deterministic
// aggregation format of the X-Sim-Cache and X-Sim-Shard sweep headers.
func countHeader(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return strings.Join(parts, ",")
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	endpoint := "sweep"
	warm := r.URL.Query().Get("warm") == "1"
	if warm {
		endpoint = "warm"
	}
	rt.guard(endpoint, func(w http.ResponseWriter, r *http.Request) {
		var req server.SweepRequest
		if err := server.DecodeJSON(r.Body, &req); err != nil {
			writeDecodeError(w, err)
			return
		}
		points, err := req.Grid(rt.cfg.MaxSweepPoints)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		groups, err := rt.fanOut(r.Context(), points, req.Fidelity, warm, forwardHeaders(r))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if mergeFailure(w, groups) {
			return
		}
		outcomes := map[string]int{}
		shards := map[string]int{}
		degraded := false
		merged := make([]server.SimulateResponse, len(points))
		for _, g := range groups {
			shards[g.shardName()] += len(g.indices)
			degraded = degraded || g.resp.Degraded
			for j, i := range g.indices {
				if j < len(g.resp.Outcomes) {
					outcomes[g.resp.Outcomes[j]]++
				}
				if !warm {
					merged[i] = g.resp.Points[j]
				}
			}
		}
		w.Header().Set("X-Sim-Cache", countHeader(outcomes))
		w.Header().Set("X-Sim-Shard", countHeader(shards))
		if degraded {
			w.Header().Set("X-Sim-Degraded", "true")
		}
		if warm {
			writeJSON(w, http.StatusOK, &server.WarmResponse{
				Points:   len(points),
				Shards:   shards,
				Outcomes: outcomes,
			})
			return
		}
		// The merged body is exactly what one daemon would answer: the
		// same struct, the same marshaling — byte-identical by
		// construction, with every cache- and shard-dependent fact in
		// headers where it cannot perturb the bytes.
		writeJSON(w, http.StatusOK, &server.SweepResponse{Points: merged, Degraded: degraded})
	})(w, r)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.guard("batch", func(w http.ResponseWriter, r *http.Request) {
		var req server.BatchRequest
		if err := server.DecodeJSON(r.Body, &req); err != nil {
			writeDecodeError(w, err)
			return
		}
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, "batch request needs at least one point")
			return
		}
		if len(req.Points) > rt.cfg.MaxSweepPoints {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch has %d points, limit %d", len(req.Points), rt.cfg.MaxSweepPoints))
			return
		}
		groups, err := rt.fanOut(r.Context(), req.Points, req.Fidelity, req.Warm, forwardHeaders(r))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if mergeFailure(w, groups) {
			return
		}
		resp := server.BatchResponse{Outcomes: make([]string, len(req.Points))}
		if !req.Warm {
			resp.Points = make([]server.SimulateResponse, len(req.Points))
		}
		shards := map[string]int{}
		for _, g := range groups {
			shards[g.shardName()] += len(g.indices)
			resp.Degraded = resp.Degraded || g.resp.Degraded
			for j, i := range g.indices {
				if j < len(g.resp.Outcomes) {
					resp.Outcomes[i] = g.resp.Outcomes[j]
				}
				if !req.Warm {
					resp.Points[i] = g.resp.Points[j]
				}
			}
		}
		w.Header().Set("X-Sim-Shard", countHeader(shards))
		if resp.Degraded {
			w.Header().Set("X-Sim-Degraded", "true")
		}
		writeJSON(w, http.StatusOK, &resp)
	})(w, r)
}

// RingStatus is the GET /v1/ring answer: the fleet as the router sees it.
type RingStatus struct {
	VNodes int          `json:"vnodes"`
	Shards []ShardState `json:"shards"`
}

// ShardState is one member's externally visible state.
type ShardState struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	st := RingStatus{VNodes: rt.ring.VNodes()}
	for _, name := range rt.ring.Members() {
		s := rt.shards[name]
		st.Shards = append(st.Shards, ShardState{Name: name, URL: s.url, Healthy: s.healthy.Load()})
	}
	writeJSON(w, http.StatusOK, &st)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.healthyCount()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if healthy == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "ok (%d/%d shards healthy)\n", healthy, len(rt.shards))
}

// writeJSON and the error writers mirror the server package's: marshal
// before the header goes out, uniform error body, trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	data, _ := json.Marshal(server.ErrorResponse{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeDecodeError(w http.ResponseWriter, err error) {
	if errors.Is(err, server.ErrRequestTooLarge) {
		data, _ := json.Marshal(server.ErrorResponse{
			Error:    fmt.Sprintf("request body exceeds %d bytes", int64(server.MaxRequestBytes)),
			MaxBytes: server.MaxRequestBytes,
		})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusRequestEntityTooLarge)
		w.Write(append(data, '\n'))
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}
