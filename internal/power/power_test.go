package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/units"
)

func speedAt(t *testing.T, f units.Frequency) dram.Speed {
	t.Helper()
	s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func modelAt(t *testing.T, f units.Frequency) *Model {
	t.Helper()
	m, err := Default(speedAt(t, f))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Paper section III: "with 400 MHz clock frequency, these assumptions
// result in the approximate interface power of 5 mW per channel".
func TestInterfacePowerMatchesPaper(t *testing.T) {
	p := DefaultInterface().Power(400 * units.MHz).Milliwatts()
	// 36 * 0.4pF * 1.2^2 * 400MHz * 0.5 = 4.15 mW ~ "approximately 5 mW".
	if math.Abs(p-4.1472) > 1e-6 {
		t.Errorf("interface power @400MHz = %v mW, want 4.1472", p)
	}
	if p < 3.5 || p > 5.5 {
		t.Errorf("interface power %v mW outside the paper's ~5 mW", p)
	}
}

func TestInterfacePowerScalesLinearlyWithClock(t *testing.T) {
	i := DefaultInterface()
	p200 := i.Power(200 * units.MHz)
	p400 := i.Power(400 * units.MHz)
	if math.Abs(float64(p400)/float64(p200)-2) > 1e-9 {
		t.Errorf("interface power ratio = %v, want 2", float64(p400)/float64(p200))
	}
}

func TestDatasheetValidate(t *testing.T) {
	if err := DefaultDatasheet().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Datasheet){
		func(d *Datasheet) { d.BaseFreq = 0 },
		func(d *Datasheet) { d.VDD = -1 },
		func(d *Datasheet) { d.IDD3N = -5 },
		func(d *Datasheet) { d.IDD4R = d.IDD3N - 1 },
		func(d *Datasheet) { d.IDD5 = d.IDD2N - 1 },
		func(d *Datasheet) { d.ActPrechargeEnergy = -1 },
	}
	for i, mutate := range cases {
		d := DefaultDatasheet()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInterfaceValidate(t *testing.T) {
	if err := DefaultInterface().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Interface){
		func(i *Interface) { i.Pins = 0 },
		func(i *Interface) { i.Capacitance = 0 },
		func(i *Interface) { i.VIO = 0 },
		func(i *Interface) { i.Activity = 1.5 },
		func(i *Interface) { i.Activity = -0.1 },
	}
	for n, mutate := range cases {
		i := DefaultInterface()
		mutate(&i)
		if err := i.Validate(); err == nil {
			t.Errorf("case %d: expected error", n)
		}
	}
}

func TestNewModelValidates(t *testing.T) {
	bad := DefaultDatasheet()
	bad.VDD = 0
	if _, err := NewModel(bad, DefaultInterface(), speedAt(t, 400*units.MHz)); err == nil {
		t.Error("expected datasheet error")
	}
	badIf := DefaultInterface()
	badIf.Pins = 0
	if _, err := NewModel(DefaultDatasheet(), badIf, speedAt(t, 400*units.MHz)); err == nil {
		t.Error("expected interface error")
	}
	if _, err := NewModel(DefaultDatasheet(), DefaultInterface(), dram.Speed{}); err == nil {
		t.Error("expected speed error")
	}
}

func TestChannelEnergyWindowTooShort(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	st := stats.Channel{BusyCycles: 1000}
	if _, err := m.ChannelEnergy(st, 500, true); err == nil {
		t.Error("expected window error")
	}
}

// An idle powered-down channel consumes only power-down background, refresh
// and interface power — the cheap "extra channel" of Fig. 5.
func TestIdleChannelPower(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(13333333) // one 30 fps frame at 400 MHz
	b, err := m.ChannelEnergy(stats.Channel{}, window, true)
	if err != nil {
		t.Fatal(err)
	}
	p := b.AveragePower().Milliwatts()
	// Calibration: ~7.9 mW per idle channel (DESIGN.md section 5):
	// 4.15 mW interface + ~3 mW power-down + ~0.65 mW refresh.
	if p < 6.5 || p > 9.5 {
		t.Errorf("idle channel power = %.2f mW, want ~7.9", p)
	}
	if b.ReadWrite != 0 || b.Activate != 0 {
		t.Error("idle channel should have no burst or activate energy")
	}
	// Without power-down the same idle channel burns active standby:
	// far more than with power-down (the paper's "aggressive use of
	// power-down modes is necessary").
	b2, err := m.ChannelEnergy(stats.Channel{}, window, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(b2.Total()) / float64(b.Total()); ratio < 3 {
		t.Errorf("no-power-down idle ratio = %.1f, want > 3", ratio)
	}
}

// A fully streaming channel at 400 MHz lands near the calibrated ~200 mW
// active power (DESIGN.md section 5).
func TestStreamingChannelPower(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(10_000_000)
	st := stats.Channel{
		Reads:         4_000_000,
		ReadBusCycles: 8_000_000, // 80 % bus utilization
		Activates:     60_000,
		BusyCycles:    window,
		RowHits:       3_900_000,
		RowMisses:     100_000,
	}
	b, err := m.ChannelEnergy(st, window, true)
	if err != nil {
		t.Fatal(err)
	}
	p := b.AveragePower().Milliwatts()
	if p < 150 || p > 250 {
		t.Errorf("streaming channel power = %.1f mW, want ~200", p)
	}
	// Burst energy dominates.
	if b.ReadWrite < b.Background || b.ReadWrite < b.Interface {
		t.Errorf("burst energy should dominate: %+v", b)
	}
}

// Energy components are non-negative and total/average are consistent.
func TestBreakdownProperties(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	f := func(rd, wr, act uint16, busyK uint16, pdK uint16) bool {
		busy := int64(busyK)*1000 + int64(rd)*2 + int64(wr)*2
		pd := int64(pdK) * 100
		if pd > busy {
			pd = busy
		}
		st := stats.Channel{
			Reads:           int64(rd),
			Writes:          int64(wr),
			Activates:       int64(act),
			ReadBusCycles:   int64(rd) * 2,
			WriteBusCycles:  int64(wr) * 2,
			BusyCycles:      busy,
			PowerDownCycles: pd,
		}
		window := busy + 500_000
		b, err := m.ChannelEnergy(st, window, true)
		if err != nil {
			return false
		}
		if b.Background < 0 || b.Activate < 0 || b.ReadWrite < 0 || b.Refresh < 0 || b.Interface < 0 {
			return false
		}
		sum := b.Background + b.Activate + b.ReadWrite + b.Refresh + b.Interface
		if math.Abs(float64(sum-b.Total())) > 1 {
			return false
		}
		return b.AveragePower() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// More traffic in the same window never costs less energy.
func TestEnergyMonotoneInTraffic(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(1_000_000)
	prev := units.Energy(0)
	for k := int64(0); k <= 10; k++ {
		st := stats.Channel{
			Reads:         k * 10_000,
			ReadBusCycles: k * 20_000,
			Activates:     k * 100,
			BusyCycles:    k * 25_000,
		}
		b, err := m.ChannelEnergy(st, window, true)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total() < prev {
			t.Fatalf("energy decreased at step %d: %v < %v", k, b.Total(), prev)
		}
		prev = b.Total()
	}
}

// Power-down saves energy relative to standby for any idle fraction.
func TestPowerDownAlwaysSaves(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	st := stats.Channel{Reads: 1000, ReadBusCycles: 2000, BusyCycles: 10_000}
	window := int64(100_000)
	withPD, err := m.ChannelEnergy(st, window, true)
	if err != nil {
		t.Fatal(err)
	}
	withoutPD, err := m.ChannelEnergy(st, window, false)
	if err != nil {
		t.Fatal(err)
	}
	if withPD.Total() >= withoutPD.Total() {
		t.Errorf("power-down did not save: %v vs %v", withPD.Total(), withoutPD.Total())
	}
}

// The XDR comparison sanity check: 8 idle-ish channels stay far below the
// Cell BE's 5 W XDR interface.
func TestEightChannelsBelowXDR(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(13333333)
	b, err := m.ChannelEnergy(stats.Channel{}, window, true)
	if err != nil {
		t.Fatal(err)
	}
	total := 8 * b.AveragePower().Milliwatts()
	if total > 250 {
		t.Errorf("8 idle channels = %.0f mW, should be well below 5 W", total)
	}
}

func TestInterfacePowerReporting(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(4_000_000) // 10 ms at 400 MHz
	b, err := m.ChannelEnergy(stats.Channel{}, window, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InterfacePower().Milliwatts(); math.Abs(got-4.1472) > 1e-3 {
		t.Errorf("interface power = %v mW, want 4.1472", got)
	}
	if b.Window != 10*units.Millisecond {
		t.Errorf("window = %v, want 10ms", b.Window)
	}
}

// A deep-idle channel (clustered organization) is cheaper than a per-access
// power-down channel with a live interface clock.
func TestDeepIdlePower(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	deep := m.DeepIdlePower().Milliwatts()
	if deep <= 0 || deep > 5 {
		t.Errorf("deep idle power = %.2f mW, want small positive", deep)
	}
	b, err := m.ChannelEnergy(stats.Channel{}, 4_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if live := b.AveragePower().Milliwatts(); deep >= live {
		t.Errorf("deep idle (%.2f mW) should undercut live idle (%.2f mW)", deep, live)
	}
}

// Self-refresh cycles are charged at IDD6 and excluded from the periodic
// refresh energy.
func TestSelfRefreshEnergyAccounting(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(10_000_000)
	base := stats.Channel{BusyCycles: window}
	sr := base
	sr.SelfRefreshCycles = window / 2

	bBase, err := m.ChannelEnergy(base, window, true)
	if err != nil {
		t.Fatal(err)
	}
	bSR, err := m.ChannelEnergy(sr, window, true)
	if err != nil {
		t.Fatal(err)
	}
	// Half the window at IDD6 instead of active standby cuts background
	// energy substantially, and the refresh share halves too.
	if bSR.Background >= bBase.Background {
		t.Errorf("self-refresh background %v >= standby %v", bSR.Background, bBase.Background)
	}
	ratio := float64(bSR.Refresh) / float64(bBase.Refresh)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("refresh energy ratio = %.3f, want ~0.5", ratio)
	}
}

// Precharge power-down is cheaper than active power-down.
func TestPrechargePDBeatsActivePD(t *testing.T) {
	m := modelAt(t, 400*units.MHz)
	window := int64(1_000_000)
	actPD := stats.Channel{BusyCycles: window, PowerDownCycles: window / 2}
	prePD := actPD
	prePD.PrechargePDCycles = prePD.PowerDownCycles

	a, err := m.ChannelEnergy(actPD, window, true)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.ChannelEnergy(prePD, window, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Background >= a.Background {
		t.Errorf("precharge PD %v should undercut active PD %v", p.Background, a.Background)
	}
}
