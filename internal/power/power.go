// Package power implements the paper's two power models: the IDD-style
// state-based DRAM power estimation (after Micron's "Calculating DDR Memory
// System Power" technical note the paper cites) and the interface power of
// equation (1):
//
//	interface power = nr_of_pins * C * V^2 * f_clk * activity
//
// The DRAM model charges background power by power state (power-down,
// standby), incremental burst power per read/write data cycle, activate/
// precharge energy per row opening, and refresh energy per tREFI period.
// Datasheet base currents are specified at 200 MHz / 1.8 V, extrapolated
// linearly in frequency where the paper says "parameters with clear
// connection to clock frequency are extrapolated accordingly", and scaled to
// the projected 1.35 V core voltage (current ~ V, hence power ~ V^2).
package power

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/units"
)

// Datasheet holds the current profile of the estimated next-generation
// mobile DDR SDRAM at base conditions.
type Datasheet struct {
	// BaseFreq and BaseVDD are the datasheet conditions.
	BaseFreq units.Frequency
	BaseVDD  float64
	// VDD is the projected operating core voltage (paper: 1.35 V).
	VDD float64

	// Currents in milliamperes at base conditions.
	IDD2P float64 // precharge power-down
	IDD3P float64 // active power-down
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // read burst
	IDD4W float64 // write burst
	IDD5  float64 // refresh burst
	IDD6  float64 // self-refresh

	// ActPrechargeEnergy is the activate+precharge pair energy at base
	// VDD (picojoules); scaled by (VDD/BaseVDD)^2 in use.
	ActPrechargeEnergy units.Energy
}

// DefaultDatasheet returns the calibrated device profile. The current
// values follow Mobile DDR datasheet magnitudes for an x32 device and were
// calibrated once against the paper's four Fig. 5 power anchors (720p30 at
// 1 and 8 channels, 1080p30 at 4 channels, 2160p30 at 8 channels); see
// DESIGN.md section 5 and EXPERIMENTS.md.
func DefaultDatasheet() Datasheet {
	return Datasheet{
		BaseFreq:           200 * units.MHz,
		BaseVDD:            1.8,
		VDD:                1.35,
		IDD2P:              3.0,
		IDD3P:              3.5,
		IDD2N:              20,
		IDD3N:              25,
		IDD4R:              107,
		IDD4W:              103,
		IDD5:               90,
		IDD6:               0.45,
		ActPrechargeEnergy: 3000, // 3 nJ
	}
}

// Validate rejects non-physical profiles.
func (d Datasheet) Validate() error {
	if d.BaseFreq <= 0 || d.BaseVDD <= 0 || d.VDD <= 0 {
		return fmt.Errorf("power: non-positive base conditions %+v", d)
	}
	for _, c := range []float64{d.IDD2P, d.IDD3P, d.IDD2N, d.IDD3N, d.IDD4R, d.IDD4W, d.IDD5, d.IDD6} {
		if c < 0 {
			return fmt.Errorf("power: negative current in %+v", d)
		}
	}
	if d.IDD4R < d.IDD3N || d.IDD4W < d.IDD3N {
		return fmt.Errorf("power: burst current below active standby")
	}
	if d.IDD5 < d.IDD2N {
		return fmt.Errorf("power: refresh current below precharge standby")
	}
	if d.ActPrechargeEnergy < 0 {
		return fmt.Errorf("power: negative activate energy")
	}
	return nil
}

// voltageScale is the power scaling from base to operating voltage.
func (d Datasheet) voltageScale() float64 {
	s := d.VDD / d.BaseVDD
	return s * s
}

// StaticPower converts a base current that does not track the clock
// (power-down and self-refresh states) to operating power.
func (d Datasheet) StaticPower(mA float64) units.Power {
	return units.Power(mA * 1e-3 * d.BaseVDD * d.voltageScale())
}

// DynamicPower converts a clock-tracking base current (standby, burst,
// refresh) to operating power at frequency f.
func (d Datasheet) DynamicPower(mA float64, f units.Frequency) units.Power {
	return units.Power(mA * 1e-3 * d.BaseVDD * d.voltageScale() * float64(f) / float64(d.BaseFreq))
}

// Interface models the chip-to-chip interface power of equation (1).
type Interface struct {
	// Pins is the number of pins toggling during a burst; the paper
	// assumes 36 (32 data + 4 strobe).
	Pins int
	// Capacitance is the per-pin load in farads; the paper uses 0.4 pF,
	// the average of wire bonding, flip chip and TAB.
	Capacitance float64
	// VIO is the I/O voltage; the paper projects 1.2 V.
	VIO float64
	// Activity is the fixed switching activity; the paper uses 50 %.
	Activity float64
}

// DefaultInterface returns the paper's interface assumptions.
func DefaultInterface() Interface {
	return Interface{Pins: 36, Capacitance: 0.4e-12, VIO: 1.2, Activity: 0.5}
}

// Validate rejects non-physical interfaces.
func (i Interface) Validate() error {
	if i.Pins <= 0 || i.Capacitance <= 0 || i.VIO <= 0 {
		return fmt.Errorf("power: non-physical interface %+v", i)
	}
	if i.Activity < 0 || i.Activity > 1 {
		return fmt.Errorf("power: activity %v outside [0,1]", i.Activity)
	}
	return nil
}

// Power evaluates equation (1) at clock frequency f. The paper charges this
// per channel for the whole reporting window (activity is a fixed estimate,
// not measured toggling).
func (i Interface) Power(f units.Frequency) units.Power {
	return units.Power(float64(i.Pins) * i.Capacitance * i.VIO * i.VIO * float64(f) * i.Activity)
}

// Model combines the DRAM and interface power models for one device speed.
type Model struct {
	ds    Datasheet
	iface Interface
	speed dram.Speed
}

// NewModel builds a power model for the resolved device speed.
func NewModel(ds Datasheet, iface Interface, speed dram.Speed) (*Model, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := iface.Validate(); err != nil {
		return nil, err
	}
	if speed.TCK <= 0 {
		return nil, fmt.Errorf("power: unresolved speed (use dram.Resolve)")
	}
	return &Model{ds: ds, iface: iface, speed: speed}, nil
}

// Default builds the calibrated paper model at the given speed.
func Default(speed dram.Speed) (*Model, error) {
	return NewModel(DefaultDatasheet(), DefaultInterface(), speed)
}

// Datasheet returns the device current profile.
func (m *Model) Datasheet() Datasheet { return m.ds }

// Interface returns the interface assumptions.
func (m *Model) Interface() Interface { return m.iface }

// Breakdown itemizes the energy of one channel over a reporting window.
type Breakdown struct {
	Background units.Energy // standby + power-down state residency
	Activate   units.Energy // row activate/precharge pairs
	ReadWrite  units.Energy // incremental burst energy
	Refresh    units.Energy // periodic refresh over the window
	Interface  units.Energy // equation (1) over the window
	Window     units.Duration
}

// Total returns the summed channel energy.
func (b Breakdown) Total() units.Energy {
	return b.Background + b.Activate + b.ReadWrite + b.Refresh + b.Interface
}

// AveragePower returns the channel's average power over the window.
func (b Breakdown) AveragePower() units.Power {
	return units.PowerOf(b.Total(), b.Window)
}

// InterfacePower returns the average interface power over the window.
func (b Breakdown) InterfacePower() units.Power {
	return units.PowerOf(b.Interface, b.Window)
}

// ChannelEnergy computes the energy of one channel whose activity is st,
// reported over windowCycles DRAM cycles (at least the channel's busy
// makespan — typically the frame period). powerDown selects whether idle
// time outside the busy makespan rests in power-down (the paper's
// aggressive scheme) or active standby.
func (m *Model) ChannelEnergy(st stats.Channel, windowCycles int64, powerDown bool) (Breakdown, error) {
	if windowCycles < st.BusyCycles {
		return Breakdown{}, fmt.Errorf("power: window %d cycles shorter than busy makespan %d",
			windowCycles, st.BusyCycles)
	}
	s := m.speed
	f := s.Freq
	window := s.CycleDuration(windowCycles)

	// State residency. The busy makespan splits into in-run self-refresh,
	// power-down gaps (precharge power-down when all banks were closed,
	// active power-down otherwise) and working cycles (approximated as
	// active standby: at least one bank open while the stream runs).
	// Slack after the run rests in precharge power-down — the controller
	// closes the pages before a long idle — or in active standby when
	// power-down is disabled.
	working := st.BusyCycles - st.PowerDownCycles - st.SelfRefreshCycles
	if working < 0 {
		working = 0
	}
	slack := windowCycles - st.BusyCycles
	prePD := st.PrechargePDCycles
	actPD := st.PowerDownCycles - st.PrechargePDCycles
	if actPD < 0 {
		actPD = 0
	}
	standbyCycles := working
	if powerDown {
		prePD += slack
	} else {
		standbyCycles += slack
	}
	var b Breakdown
	b.Window = window
	b.Background = m.ds.StaticPower(m.ds.IDD2P).Times(s.CycleDuration(prePD)) +
		m.ds.StaticPower(m.ds.IDD3P).Times(s.CycleDuration(actPD)) +
		m.ds.StaticPower(m.ds.IDD6).Times(s.CycleDuration(st.SelfRefreshCycles)) +
		m.ds.DynamicPower(m.ds.IDD3N, f).Times(s.CycleDuration(standbyCycles))

	// Incremental burst energy above active standby.
	rdPower := m.ds.DynamicPower(m.ds.IDD4R-m.ds.IDD3N, f)
	wrPower := m.ds.DynamicPower(m.ds.IDD4W-m.ds.IDD3N, f)
	b.ReadWrite = rdPower.Times(s.CycleDuration(st.ReadBusCycles)) +
		wrPower.Times(s.CycleDuration(st.WriteBusCycles))

	// Activate/precharge pair energy per row opening.
	b.Activate = units.Energy(float64(st.Activates) *
		float64(m.ds.ActPrechargeEnergy) * m.ds.voltageScale())

	// Refresh happens every tREFI across the window except while in
	// self-refresh, whose IDD6 already includes cell maintenance.
	refWindow := window - s.CycleDuration(st.SelfRefreshCycles)
	if refWindow < 0 {
		refWindow = 0
	}
	refPerWindow := float64(refWindow) / float64(s.Timing.TREFI)
	refEnergy := (m.ds.IDD5 - m.ds.IDD2N) * 1e-3 * m.ds.BaseVDD * m.ds.voltageScale() *
		s.Timing.TRFC.Seconds()
	b.Refresh = units.Energy(refPerWindow * refEnergy * 1e12)

	// Interface power per equation (1), charged over the whole window.
	b.Interface = m.iface.Power(f).Times(window)
	return b, nil
}

// DeepIdlePower returns the power of a completely idle channel whose bank
// cluster sits in self-refresh (IDD6, which includes cell maintenance) and
// whose interface clock is gated — the state an unused channel cluster
// rests in under the conclusion's "independent channel clusters"
// organization.
func (m *Model) DeepIdlePower() units.Power {
	return m.ds.StaticPower(m.ds.IDD6)
}
