package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

func sustained(t *testing.T, format string, channels int, freqMHz float64, frames int, fraction float64) SustainedResult {
	t.Helper()
	w, err := WorkloadFor(format)
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = fraction
	res, err := SimulateSustained(w, PaperMemory(channels, units.Frequency(freqMHz)*units.MHz), frames)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateSustainedValidates(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	if _, err := SimulateSustained(w, PaperMemory(1, 400*units.MHz), 0); err == nil {
		t.Error("expected frames error")
	}
	w.SampleFraction = 2
	if _, err := SimulateSustained(w, PaperMemory(1, 400*units.MHz), 1); err == nil {
		t.Error("expected fraction error")
	}
	w.SampleFraction = 0
	if _, err := SimulateSustained(w, PaperMemory(0, 400*units.MHz), 1); err == nil {
		t.Error("expected channels error")
	}
}

// A feasible configuration keeps up: the paced run never falls behind its
// frame slots, and the channels power down inside the run.
func TestSustainedFeasibleKeepsUp(t *testing.T) {
	res := sustained(t, "720p30", 4, 400, 3, 0.1)
	if res.Verdict != Feasible {
		t.Errorf("verdict = %v (lateness %v), want feasible", res.Verdict, res.Lateness)
	}
	if res.Lateness > 0 {
		t.Errorf("lateness = %v, want <= 0", res.Lateness)
	}
	if res.PowerDownExits == 0 {
		t.Error("paced run should enter and exit power-down between transactions")
	}
	if res.PowerDownResidency <= 0.3 {
		t.Errorf("power-down residency = %.2f, want substantial for a 4ch 720p30 load", res.PowerDownResidency)
	}
	if res.Frames != 3 {
		t.Errorf("frames = %d", res.Frames)
	}
}

// An overloaded configuration falls behind monotonically.
func TestSustainedOverloadFallsBehind(t *testing.T) {
	res := sustained(t, "1080p30", 1, 400, 2, 0.1)
	if res.Verdict == Feasible {
		t.Errorf("1080p30 on one channel should not keep up (lateness %v)", res.Lateness)
	}
	if res.Lateness <= 0 {
		t.Errorf("lateness = %v, want positive", res.Lateness)
	}
}

// Sustained power sits somewhat above the saturated-mode estimate: the
// burst energy and slack residency match, but every paced transaction pays
// the power-down wake (tXP plus the CAS pipeline restart) in active
// standby, and refresh closes pages throughout the window — costs the
// frame-burst methodology of Fig. 5 does not see. The gap is bounded.
func TestSustainedPowerAboveSaturatedBounded(t *testing.T) {
	sat := simulate(t, "720p30", 4, 400, 0.1)
	sus := sustained(t, "720p30", 4, 400, 2, 0.1)
	if sus.TotalPower <= sat.TotalPower {
		t.Errorf("sustained power %.1f mW should exceed saturated %.1f mW (wake costs)",
			sus.TotalPower.Milliwatts(), sat.TotalPower.Milliwatts())
	}
	rel := math.Abs(sus.TotalPower.Milliwatts()-sat.TotalPower.Milliwatts()) / sat.TotalPower.Milliwatts()
	if rel > 0.30 {
		t.Errorf("sustained power %.1f mW vs saturated %.1f mW (%.0f%% apart, want <= 30%%)",
			sus.TotalPower.Milliwatts(), sat.TotalPower.Milliwatts(), rel*100)
	}
}

// Self-similar sampling: a small fraction predicts a larger one.
func TestSustainedSamplingConsistency(t *testing.T) {
	small := sustained(t, "720p30", 2, 400, 2, 0.05)
	large := sustained(t, "720p30", 2, 400, 2, 0.2)
	pdiff := math.Abs(small.TotalPower.Milliwatts()-large.TotalPower.Milliwatts()) / large.TotalPower.Milliwatts()
	if pdiff > 0.05 {
		t.Errorf("sampled sustained powers differ by %.1f%%: %.1f vs %.1f mW",
			pdiff*100, small.TotalPower.Milliwatts(), large.TotalPower.Milliwatts())
	}
	rdiff := math.Abs(small.PowerDownResidency - large.PowerDownResidency)
	if rdiff > 0.05 {
		t.Errorf("power-down residency differs: %.3f vs %.3f",
			small.PowerDownResidency, large.PowerDownResidency)
	}
}

// More channels at the same load increase power-down residency (each
// channel is idler), which is why the multi-channel power overhead stays
// moderate.
func TestSustainedResidencyGrowsWithChannels(t *testing.T) {
	r2 := sustained(t, "720p30", 2, 400, 2, 0.1)
	r8 := sustained(t, "720p30", 8, 400, 2, 0.1)
	if r8.PowerDownResidency <= r2.PowerDownResidency {
		t.Errorf("residency 8ch (%.3f) should exceed 2ch (%.3f)",
			r8.PowerDownResidency, r2.PowerDownResidency)
	}
}

// Precharge-on-idle is a trade-off, not a free win: closing the pages saves
// (IDD3P - IDD2P) during the gap but costs one re-activation on wake, so it
// LOSES on the recording load's short inter-transaction gaps (break-even is
// roughly ActPrechargeEnergy / (IDD3P-IDD2P) ~ a thousand cycles). The test
// documents the regression and checks the accounting that explains it.
func TestPrechargeOnIdleTradeoffAtShortGaps(t *testing.T) {
	w, _ := WorkloadFor("1080p30")
	w.SampleFraction = 0.1
	base, err := SimulateSustained(w, PaperMemory(4, 400*units.MHz), 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(4, 400*units.MHz)
	mc.PrechargeOnIdle = true
	opt, err := SimulateSustained(w, mc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Verdict != Feasible {
		t.Fatalf("optimized run verdict %v", opt.Verdict)
	}
	// The gaps here are tens of cycles: re-activation energy dominates.
	if opt.TotalPower <= base.TotalPower {
		t.Errorf("expected precharge-on-idle to cost power at short gaps: %.1f vs %.1f mW",
			opt.TotalPower.Milliwatts(), base.TotalPower.Milliwatts())
	}
	if opt.Totals.Activates <= base.Totals.Activates {
		t.Error("precharge-on-idle should add re-activations")
	}
	// The accounting sees the cheaper PD state even though it loses net.
	if opt.Totals.PrechargePDCycles == 0 {
		t.Error("no precharge power-down cycles recorded")
	}
	if base.Totals.PrechargePDCycles >= opt.Totals.PrechargePDCycles {
		t.Error("precharge-on-idle should raise precharge PD residency")
	}
}

// Refresh postponement alone never hurts the paced run: due refreshes
// retire inside gaps instead of interrupting transactions.
func TestRefreshPostponeOnSustained(t *testing.T) {
	w, _ := WorkloadFor("1080p30")
	w.SampleFraction = 0.1
	base, err := SimulateSustained(w, PaperMemory(4, 400*units.MHz), 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(4, 400*units.MHz)
	mc.RefreshPostpone = 8
	opt, err := SimulateSustained(w, mc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Verdict != Feasible {
		t.Fatalf("verdict %v", opt.Verdict)
	}
	// Within 1% on power (refresh energy is charged by time either way)
	// and never later.
	if opt.Lateness > base.Lateness {
		t.Errorf("postponement increased lateness: %v vs %v", opt.Lateness, base.Lateness)
	}
	rel := math.Abs(opt.TotalPower.Milliwatts()-base.TotalPower.Milliwatts()) / base.TotalPower.Milliwatts()
	if rel > 0.02 {
		t.Errorf("postponement moved power by %.1f%%", rel*100)
	}
}
