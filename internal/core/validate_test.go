package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/units"
)

func TestMemoryConfigValidate(t *testing.T) {
	good := PaperMemory(4, PaperFrequency)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*MemoryConfig)
		wantErr string
	}{
		{"zero channels", func(m *MemoryConfig) { m.Channels = 0 }, "channel count"},
		{"negative channels", func(m *MemoryConfig) { m.Channels = -2 }, "channel count"},
		{"zero frequency", func(m *MemoryConfig) { m.Freq = 0 }, "clock"},
		{"negative write buffer", func(m *MemoryConfig) { m.WriteBufferDepth = -1 }, "write buffer"},
		{"negative queue", func(m *MemoryConfig) { m.QueueDepth = -4 }, "queue depth"},
		{"negative postpone", func(m *MemoryConfig) { m.RefreshPostpone = -1 }, "postpone"},
		{"granularity not burst multiple", func(m *MemoryConfig) { m.InterleaveGranularity = 24 }, "multiple"},
		{"negative granularity", func(m *MemoryConfig) { m.InterleaveGranularity = -16 }, "granularity"},
		{"bad fault plan", func(m *MemoryConfig) {
			m.Faults = &fault.Plan{DropChannel: 9, DropAtCycle: 1}
		}, "dropout channel"},
	}
	for _, tc := range cases {
		mc := PaperMemory(4, PaperFrequency)
		tc.mutate(&mc)
		err := mc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("paper workload invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Workload)
		wantErr string
	}{
		{"empty profile", func(w *Workload) { *w = Workload{} }, "profile"},
		{"negative fraction", func(w *Workload) { w.SampleFraction = -0.5 }, "fraction"},
		{"fraction above one", func(w *Workload) { w.SampleFraction = 1.5 }, "fraction"},
		{"bad stabilization", func(w *Workload) { w.Params.StabilizationBorder = 0.5 }, "stabilization"},
		{"unaligned run", func(w *Workload) { w.Load.ImageRun = 100 }, "multiple"},
		{"negative base address", func(w *Workload) { w.Load.BaseAddress = -1 }, "base address"},
	}
	for _, tc := range cases {
		w2, _ := WorkloadFor("720p30")
		tc.mutate(&w2)
		err := w2.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// CLI-visible entry points must reject before simulating.
	bad := PaperMemory(0, 400*units.MHz)
	if _, err := Simulate(w, bad); err == nil {
		t.Error("Simulate accepted invalid config")
	}
	if _, err := SimulateSustained(w, bad, 2); err == nil {
		t.Error("SimulateSustained accepted invalid config")
	}
	if _, err := SimulateDegraded(w, bad, 2); err == nil {
		t.Error("SimulateDegraded accepted invalid config")
	}
}
