package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/units"
)

// The abstract's headline result: full-HD recording on four 32-bit channels
// at 400 MHz.
func ExampleSimulate() {
	w, err := core.WorkloadFor("1080p30")
	if err != nil {
		panic(err)
	}
	w.SampleFraction = 0.1 // sample the frame; results extrapolate

	res, err := core.Simulate(w, core.PaperMemory(4, 400*units.MHz))
	if err != nil {
		panic(err)
	}
	fmt.Printf("required: %.1f GB/s\n", res.RequiredBandwidth.GBps())
	fmt.Printf("verdict:  %v\n", res.Verdict)
	fmt.Printf("power:    %.0f mW\n", res.TotalPower.Milliwatts())
	// Output:
	// required: 4.2 GB/s
	// verdict:  ok
	// power:    345 mW
}

// Classify applies the paper's real-time criterion with its 15 % processing
// margin.
func ExampleClassify() {
	period := 33300 * units.Microsecond // one 30 fps frame
	fmt.Println(core.Classify(20*units.Millisecond, period))
	fmt.Println(core.Classify(30*units.Millisecond, period))
	fmt.Println(core.Classify(40*units.Millisecond, period))
	// Output:
	// ok
	// MARGINAL
	// infeasible
}

// Table I regenerates from the use-case equations alone — no simulation.
func ExampleRunTableI() {
	cols, err := core.RunTableI(core.RunOptions{}.Params)
	if err != nil {
		panic(err)
	}
	for _, c := range cols[:3] {
		fmt.Printf("%s: %.0f MB/s\n", c.Format.Name, c.Bandwidth.MBps())
	}
	// Output:
	// 720p30: 1890 MB/s
	// 720p60: 3707 MB/s
	// 1080p30: 4162 MB/s
}
