package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestSimulateStagesValidates(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 2
	if _, err := SimulateStages(w, PaperMemory(1, 400*units.MHz)); err == nil {
		t.Error("expected fraction error")
	}
	w.SampleFraction = 0.05
	if _, err := SimulateStages(w, PaperMemory(0, 400*units.MHz)); err == nil {
		t.Error("expected channels error")
	}
}

func TestStageAttributionSumsToFrame(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.05
	mc := PaperMemory(2, 400*units.MHz)

	stages, err := SimulateStages(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}

	var sumTime float64
	var sumBytes int64
	for _, s := range stages {
		if s.Time < 0 || s.Bytes < 0 || s.Energy < 0 {
			t.Errorf("stage %s has negative attribution: %+v", s.Name, s)
		}
		sumTime += s.Time.Seconds()
		sumBytes += s.Bytes
	}
	// Per-stage times sum to the whole-frame access time (same traffic,
	// same system, interleaving differs only at stage boundaries).
	rel := math.Abs(sumTime-whole.AccessTime.Seconds()) / whole.AccessTime.Seconds()
	if rel > 0.05 {
		t.Errorf("stage time sum %.4g s vs whole frame %.4g s (%.1f%%)",
			sumTime, whole.AccessTime.Seconds(), rel*100)
	}
	brel := math.Abs(float64(sumBytes-whole.FrameBytes)) / float64(whole.FrameBytes)
	if brel > 0.01 {
		t.Errorf("stage bytes %d vs frame %d", sumBytes, whole.FrameBytes)
	}
}

// The encoder stage dominates both time and energy, echoing section II.
func TestEncoderStageDominates(t *testing.T) {
	w, _ := WorkloadFor("1080p30")
	w.SampleFraction = 0.05
	stages, err := SimulateStages(w, PaperMemory(4, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	var enc StageResult
	for _, s := range stages {
		if s.Name == "Video encoder" {
			enc = s
		}
	}
	if enc.Name == "" {
		t.Fatal("encoder stage missing")
	}
	for _, s := range stages {
		if s.Name == enc.Name {
			continue
		}
		if s.Time > enc.Time {
			t.Errorf("stage %s time %v exceeds encoder %v", s.Name, s.Time, enc.Time)
		}
		if s.Energy > enc.Energy {
			t.Errorf("stage %s energy %v exceeds encoder %v", s.Name, s.Energy, enc.Energy)
		}
	}
	// Per-stage efficiency stays physical.
	for _, s := range stages {
		if s.Efficiency < 0 || s.Efficiency > 1 {
			t.Errorf("stage %s efficiency %v", s.Name, s.Efficiency)
		}
	}
}
