package core

import (
	"context"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/units"
	"repro/internal/video"
)

// CalibrateOptions selects the grid a calibration pass covers. Zero-value
// fields take the paper defaults: every format, the {1, 2, 4, 8} channel
// counts, the Table I frequencies, the default sweep sampling fraction
// (0.1) and one worker per CPU.
type CalibrateOptions struct {
	Formats        []string
	Channels       []int
	FreqsMHz       []int
	SampleFraction float64
	Jobs           int
}

// PaperFreqsMHz is the Table I operating-frequency grid.
var PaperFreqsMHz = []int{200, 266, 333, 400, 533}

// PaperChannels is the channel-count grid of the paper's sweeps.
var PaperChannels = []int{1, 2, 4, 8}

// PaperFormats lists the evaluated frame formats in paper order.
func PaperFormats() []string {
	names := make([]string, len(video.EvaluatedProfiles))
	for i, p := range video.EvaluatedProfiles {
		names[i] = p.Format.Name
	}
	return names
}

// Calibrate runs the cycle-accurate simulator and the analytic model
// across the grid and records, per (format, channels) region, the signed
// relative access-time error err = (est − sim)/sim of every frequency
// point. The returned envelope is what the auto fidelity tier consults
// to prove verdicts; it is only valid at the calibrated sampling
// fraction (cross-fraction error drift is two orders of magnitude).
//
// Exact simulations go through the enabled cache, so a calibration pass
// over an already-swept grid is nearly free and a cold pass warms the
// cache for the sweep that follows.
func Calibrate(ctx context.Context, opt CalibrateOptions) (*analytic.Envelope, error) {
	if len(opt.Formats) == 0 {
		opt.Formats = PaperFormats()
	}
	if len(opt.Channels) == 0 {
		opt.Channels = PaperChannels
	}
	if len(opt.FreqsMHz) == 0 {
		opt.FreqsMHz = PaperFreqsMHz
	}
	if opt.SampleFraction == 0 {
		opt.SampleFraction = 0.1
	}
	if opt.Jobs == 0 {
		opt.Jobs = DefaultJobs()
	}

	type gridPoint struct {
		format string
		ch     int
		mhz    int
	}
	var grid []gridPoint
	for _, f := range opt.Formats {
		for _, ch := range opt.Channels {
			for _, mhz := range opt.FreqsMHz {
				grid = append(grid, gridPoint{f, ch, mhz})
			}
		}
	}

	errs, err := RunIndexedContext(ctx, opt.Jobs, len(grid), func(i int) (float64, error) {
		p := grid[i]
		w, err := WorkloadFor(p.format)
		if err != nil {
			return 0, err
		}
		w.SampleFraction = opt.SampleFraction
		mc := PaperMemory(p.ch, units.Frequency(p.mhz)*units.MHz)
		exact, err := SimulateContext(ctx, w, mc)
		if err != nil {
			return 0, fmt.Errorf("calibrate %s/%dch/%dMHz: %w", p.format, p.ch, p.mhz, err)
		}
		est, err := AnalyticResult(w, mc)
		if err != nil {
			return 0, fmt.Errorf("calibrate %s/%dch/%dMHz (analytic): %w", p.format, p.ch, p.mhz, err)
		}
		if exact.AccessTime <= 0 {
			return 0, fmt.Errorf("calibrate %s/%dch/%dMHz: non-positive simulated access time", p.format, p.ch, p.mhz)
		}
		return (est.AccessTime.Seconds() - exact.AccessTime.Seconds()) / exact.AccessTime.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}

	b := analytic.NewEnvelopeBuilder(opt.SampleFraction)
	for i, e := range errs {
		b.Observe(grid[i].format, grid[i].ch, grid[i].mhz, e)
	}
	return b.Build()
}
