package core

import (
	"reflect"
	"sync"

	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/simcache"
	"repro/internal/usecase"
	"repro/internal/video"
)

// Sweeps simulate the same handful of configurations thousands of times, so
// the steady-state cost of Simulate should be simulating, not rebuilding the
// subsystem. Two reuse layers below:
//
//   - sysPools keys a sync.Pool of *memsys.System by the canonical encoding
//     of the construction-relevant memsys.Config fields; acquire revives a
//     pooled system through System.Reset (which rebuilds the controllers
//     through controller.New, so a revived system is fresh by construction —
//     the Reset-equivalence property test pins that).
//   - generators caches *load.Generator by workload: a generator is
//     immutable after load.New (Frame copies the cursor state it mutates
//     into a per-call frameSource), so concurrent Simulate calls share one.
//
// Observed configurations (probes, faults, latency recording) are never
// pooled: their sinks and decision streams are per-run state.

// sysPools maps simcache.Key -> *sync.Pool of *memsys.System.
var sysPools sync.Map

// generators maps simcache.Key -> *load.Generator.
var generators sync.Map

// sysPoolKey canonically encodes the memsys.Config fields that determine
// construction, or ok=false when the configuration must not be pooled.
// Like cacheKey, the struct is walked by reflection so new fields fold in
// automatically; only non-canonical kinds are special-cased.
func sysPoolKey(msc memsys.Config) (simcache.Key, bool) {
	if msc.NewProbe != nil || msc.Faults != nil || msc.RecordLatency {
		return simcache.Key{}, false
	}
	e := simcache.NewEncoder()
	e.String("memsys.Config")
	rv := reflect.ValueOf(msc)
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		e.String(f.Name)
		switch {
		case f.Type.Kind() == reflect.Func:
			e.Bool(false)
			continue
		case f.Name == "Faults":
			e.Bool(false)
			continue
		}
		if err := e.Value(rv.Field(i).Interface()); err != nil {
			return simcache.Key{}, false
		}
	}
	return e.Sum(), true
}

// acquireSystem returns a subsystem for msc — revived from the pool via
// Reset when one is available — plus the release function that returns it.
// release must only be called after a successful Run: a system abandoned
// mid-error never re-enters the pool.
func acquireSystem(msc memsys.Config) (*memsys.System, func(), error) {
	key, poolable := sysPoolKey(msc)
	if !poolable {
		sys, err := memsys.New(msc)
		return sys, func() {}, err
	}
	p, ok := sysPools.Load(key)
	if !ok {
		p, _ = sysPools.LoadOrStore(key, &sync.Pool{})
	}
	pool := p.(*sync.Pool)
	if v := pool.Get(); v != nil {
		if m := activeMeter.Load(); m != nil {
			m.poolRevivals.Inc()
		}
		sys := v.(*memsys.System)
		sys.Reset()
		return sys, func() { pool.Put(sys) }, nil
	}
	sys, err := memsys.New(msc)
	if err != nil {
		return nil, func() {}, err
	}
	if m := activeMeter.Load(); m != nil {
		m.poolBuilds.Inc()
	}
	return sys, func() { pool.Put(sys) }, nil
}

// generatorFor returns the shared load generator for the workload (Params
// already defaulted by the caller), building and caching it on first use.
func generatorFor(prof video.Profile, params usecase.Params, channels int, g dram.Geometry, cfg load.Config) (*load.Generator, error) {
	e := simcache.NewEncoder()
	e.String("load.Generator")
	var encErr error
	for _, v := range []any{prof, params, channels, g, cfg} {
		if err := e.Value(v); err != nil {
			encErr = err
			break
		}
	}
	if encErr != nil {
		// Unkeyable (cannot happen for the current field sets): build
		// uncached rather than fail.
		ucLoad, err := usecase.New(prof, params)
		if err != nil {
			return nil, err
		}
		return load.New(ucLoad, channels, g, cfg)
	}
	key := e.Sum()
	if gen, ok := generators.Load(key); ok {
		return gen.(*load.Generator), nil
	}
	ucLoad, err := usecase.New(prof, params)
	if err != nil {
		return nil, err
	}
	gen, err := load.New(ucLoad, channels, g, cfg)
	if err != nil {
		return nil, err
	}
	// A racing builder of the same key produced an identical generator;
	// keep whichever landed first so all callers share one instance.
	actual, _ := generators.LoadOrStore(key, gen)
	return actual.(*load.Generator), nil
}

// poolDiagnostics counts the live pools (tests).
func poolDiagnostics() (systems, gens int) {
	sysPools.Range(func(_, _ any) bool { systems++; return true })
	generators.Range(func(_, _ any) bool { gens++; return true })
	return
}
