package core

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/mapping"
	"repro/internal/memsys"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
	"repro/internal/xdr"
)

// RunOptions configures the experiment runners.
type RunOptions struct {
	// SampleFraction in (0,1] bounds simulation cost; zero means the
	// default 0.2 (the traffic is homogeneous, so results match the full
	// frame within a fraction of a percent).
	SampleFraction float64
	// Params overrides the use-case constants; zero value means the
	// paper defaults.
	Params usecase.Params
	// Jobs bounds how many sweep points simulate concurrently; zero means
	// one worker per CPU (DefaultJobs), one forces the serial order. Every
	// runner returns identical results at any job count — points are
	// independent and RunIndexed keeps index order.
	Jobs int
	// Policy overrides the controller scheduling policy of every point
	// (zero = the paper's open-page). Variants that flip the policy as
	// their ablation axis still do so explicitly.
	Policy controller.PagePolicy
	// Device names a registered DRAM datasheet applied to every point
	// (empty = the paper device). Frequency-sweeping runners walk the
	// device's representative clock list instead of the DDR2 grid.
	Device string
}

func (o RunOptions) fraction() float64 {
	if o.SampleFraction == 0 {
		return 0.2
	}
	return o.SampleFraction
}

func (o RunOptions) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return DefaultJobs()
}

// memory is PaperMemory with the options' policy and device applied — the
// base configuration every runner's points start from.
func (o RunOptions) memory(channels int, freq units.Frequency) MemoryConfig {
	mc := PaperMemory(channels, freq)
	mc.Policy = o.Policy
	mc.Device = o.Device
	return mc
}

// frequencies returns the selected device's representative clock list
// (the paper's Fig. 3 grid for the default device).
func (o RunOptions) frequencies() ([]units.Frequency, error) {
	d, err := dram.Device(o.Device)
	if err != nil {
		return nil, err
	}
	return d.Frequencies, nil
}

func (o RunOptions) workload(format string) (Workload, error) {
	w, err := WorkloadFor(format)
	if err != nil {
		return Workload{}, err
	}
	w.Params = o.Params
	w.SampleFraction = o.fraction()
	return w, nil
}

// EvaluatedChannelCounts are the channel configurations of the paper.
var EvaluatedChannelCounts = []int{1, 2, 4, 8}

// PaperFrequency is the clock of figures 4 and 5.
const PaperFrequency = 400 * units.MHz

// FormatNames lists the frame formats of figures 4 and 5, in figure order.
var FormatNames = []string{"720p30", "720p60", "1080p30", "1080p60", "2160p30", "2160p60"}

// TableIColumn is one H.264-level column of Table I.
type TableIColumn struct {
	Level           video.Level
	Format          video.FrameFormat
	ReferenceFrames int
	// Stages holds per-stage traffic in Fig. 1 order.
	Stages [usecase.NumStages]usecase.StageTraffic
	// ImageTotal, CodingTotal and FrameTotal are the Table I total rows
	// (bits per frame); PerSecond and Bandwidth are the bottom rows.
	ImageTotal  units.Bits
	CodingTotal units.Bits
	FrameTotal  units.Bits
	PerSecond   units.Bits
	Bandwidth   units.Bandwidth
}

// RunTableI regenerates Table I: the memory bandwidth requirement of every
// stage of the recording chain for the five evaluated H.264/AVC levels.
func RunTableI(params usecase.Params) ([]TableIColumn, error) {
	if params == (usecase.Params{}) {
		params = usecase.DefaultParams()
	}
	var cols []TableIColumn
	for _, prof := range video.EvaluatedProfiles {
		l, err := usecase.New(prof, params)
		if err != nil {
			return nil, err
		}
		col := TableIColumn{
			Level:           prof.Level,
			Format:          prof.Format,
			ReferenceFrames: l.ReferenceFrames(),
			Stages:          l.Stages,
			ImageTotal:      l.ImageProcessingBits(),
			CodingTotal:     l.VideoCodingBits(),
			FrameTotal:      l.FrameBits(),
			PerSecond:       l.BitsPerSecond(),
			Bandwidth:       l.Bandwidth(),
		}
		cols = append(cols, col)
	}
	return cols, nil
}

// FigPoint is one simulated point of figures 3, 4 or 5.
type FigPoint struct {
	Format   string
	Channels int
	Freq     units.Frequency
	Result   Result
}

// RunFig3 regenerates Fig. 3: the effect of memory clock frequency on the
// per-frame access time for one encoded 720p30 frame (H.264 level 3.1), for
// 1, 2, 4 and 8 channels across the DDR2 clock range.
func RunFig3(opt RunOptions) ([]FigPoint, error) {
	w, err := opt.workload("720p30")
	if err != nil {
		return nil, err
	}
	freqs, err := opt.frequencies()
	if err != nil {
		return nil, err
	}
	return RunIndexed(opt.jobs(), len(EvaluatedChannelCounts)*len(freqs), func(i int) (FigPoint, error) {
		ch := EvaluatedChannelCounts[i/len(freqs)]
		f := freqs[i%len(freqs)]
		res, err := Simulate(w, opt.memory(ch, f))
		if err != nil {
			return FigPoint{}, err
		}
		return FigPoint{Format: "720p30", Channels: ch, Freq: f, Result: res}, nil
	})
}

// RunFormatMatrix regenerates the simulation matrix behind figures 4 and 5:
// every evaluated frame format on 1, 2, 4 and 8 channels at 400 MHz.
// Fig. 4 reads the access times, Fig. 5 the powers.
func RunFormatMatrix(opt RunOptions) ([]FigPoint, error) {
	workloads := make([]Workload, len(FormatNames))
	for i, format := range FormatNames {
		w, err := opt.workload(format)
		if err != nil {
			return nil, err
		}
		workloads[i] = w
	}
	nch := len(EvaluatedChannelCounts)
	return RunIndexed(opt.jobs(), len(FormatNames)*nch, func(i int) (FigPoint, error) {
		format, ch := FormatNames[i/nch], EvaluatedChannelCounts[i%nch]
		res, err := Simulate(workloads[i/nch], opt.memory(ch, PaperFrequency))
		if err != nil {
			return FigPoint{}, err
		}
		return FigPoint{Format: format, Channels: ch, Freq: PaperFrequency, Result: res}, nil
	})
}

// XDRRow compares one recording format's memory power against the XDR
// baseline.
type XDRRow struct {
	Format string
	// MemoryPower is the 8-channel mobile memory's average power.
	MemoryPower units.Power
	// Verdict is the real-time classification of the 8-channel run.
	Verdict Verdict
	// Ratio is MemoryPower over the XDR typical power (the paper's
	// "4 % to 25 % of the XDR value").
	Ratio float64
	// XDRAccessTime estimates the same frame on the XDR baseline.
	XDRAccessTime units.Duration
}

// XDRComparison is the paper's closing comparison: the 8-channel 400 MHz
// mobile memory against the Cell BE's dual-channel XDR interface.
type XDRComparison struct {
	Mobile   units.Bandwidth // 8-channel peak
	XDR      xdr.Interface
	Rows     []XDRRow
	MinRatio float64
	MaxRatio float64
}

// RunXDRComparison regenerates the comparison across the recording formats
// the 8-channel configuration can serve.
func RunXDRComparison(opt RunOptions) (XDRComparison, error) {
	base := xdr.CellBE()
	cmp := XDRComparison{XDR: base, MinRatio: 1}
	results, err := RunIndexed(opt.jobs(), len(FormatNames), func(i int) (Result, error) {
		w, err := opt.workload(FormatNames[i])
		if err != nil {
			return Result{}, err
		}
		return Simulate(w, opt.memory(8, PaperFrequency))
	})
	if err != nil {
		return XDRComparison{}, err
	}
	for i, format := range FormatNames {
		res := results[i]
		cmp.Mobile = res.PeakBandwidth
		if res.Verdict == Infeasible {
			continue // the paper compares only formats the memory serves
		}
		row := XDRRow{
			Format:        format,
			MemoryPower:   res.TotalPower,
			Verdict:       res.Verdict,
			Ratio:         base.PowerRatio(res.TotalPower),
			XDRAccessTime: base.AccessTime(res.FrameBytes),
		}
		cmp.Rows = append(cmp.Rows, row)
		if row.Ratio < cmp.MinRatio {
			cmp.MinRatio = row.Ratio
		}
		if row.Ratio > cmp.MaxRatio {
			cmp.MaxRatio = row.Ratio
		}
	}
	if len(cmp.Rows) == 0 {
		return XDRComparison{}, fmt.Errorf("core: no feasible formats for the XDR comparison")
	}
	return cmp, nil
}

// AblationRow compares the paper's baseline configuration against one
// design-choice variant on the same workload.
type AblationRow struct {
	Name     string
	Workload string
	Baseline Result
	Variant  Result
}

// RunAblations regenerates the design-choice ablations the paper discusses:
// RBC vs BRC address multiplexing (A1), aggressive power-down on/off (A2),
// and open vs closed page policy (A3).
func RunAblations(opt RunOptions) ([]AblationRow, error) {
	w1080, err := opt.workload("1080p30")
	if err != nil {
		return nil, err
	}
	w720, err := opt.workload("720p30")
	if err != nil {
		return nil, err
	}

	// A1: address multiplexing, on the bandwidth-critical 1080p30 load.
	brc := opt.memory(4, PaperFrequency)
	brc.Mux = mapping.BRC
	// A2: power-down, on the low-utilization 8-channel 720p30 point where
	// idle power dominates.
	pdOff := opt.memory(8, PaperFrequency)
	pdOff.DisablePowerDown = true
	// A3: page policy, on the single-channel streaming point.
	closed := opt.memory(1, PaperFrequency)
	closed.Policy = controller.ClosedPage
	// A4 (extension): the posted-write buffer from the conclusions'
	// "advanced control mechanisms" — batched write drains amortize bus
	// turnarounds on the read/write-interleaved recording streams.
	buffered := opt.memory(1, PaperFrequency)
	buffered.WriteBufferDepth = 32

	sims := []struct {
		w  Workload
		mc MemoryConfig
	}{
		{w1080, opt.memory(4, PaperFrequency)}, // A1 baseline
		{w1080, brc},
		{w720, opt.memory(8, PaperFrequency)}, // A2 baseline
		{w720, pdOff},
		{w720, opt.memory(1, PaperFrequency)}, // A3/A4 baseline
		{w720, closed},
		{w720, buffered},
	}
	res, err := RunIndexed(opt.jobs(), len(sims), func(i int) (Result, error) {
		return Simulate(sims[i].w, sims[i].mc)
	})
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Name: "RBC vs BRC multiplexing", Workload: "1080p30 4ch", Baseline: res[0], Variant: res[1]},
		{Name: "power-down vs always-standby", Workload: "720p30 8ch", Baseline: res[2], Variant: res[3]},
		{Name: "open vs closed page", Workload: "720p30 1ch", Baseline: res[4], Variant: res[5]},
		{Name: "write buffer (depth 32) vs none", Workload: "720p30 1ch", Baseline: res[4], Variant: res[6]},
	}, nil
}

// InterleavePoint is one Table II granularity variant's result.
type InterleavePoint struct {
	// Granularity is the channel-interleaving chunk in bytes.
	Granularity int64
	Result      Result
	// IsolatedLatency is the time to serve one isolated reference-fetch
	// transaction on an otherwise idle memory: the single-transaction
	// parallelism the paper's 16-byte choice buys ("all the channels can
	// be used in a single master transaction").
	IsolatedLatency units.Duration
}

// RunInterleaveSweep evaluates the channel-interleaving granularity of
// Table II on the bandwidth-critical 1080p30 4-channel point. The sweep
// exposes a genuine trade-off: coarser chunks lengthen each channel's
// sequential runs and so RAISE saturated throughput a little, but they
// strand individual transactions on fewer channels, multiplying the
// latency of the isolated accesses the paper's choice optimizes.
func RunInterleaveSweep(opt RunOptions) ([]InterleavePoint, error) {
	w, err := opt.workload("1080p30")
	if err != nil {
		return nil, err
	}
	grans := []int64{16, 32, 64, 128, 256}
	return RunIndexed(opt.jobs(), len(grans), func(i int) (InterleavePoint, error) {
		mc := opt.memory(4, PaperFrequency)
		mc.InterleaveGranularity = grans[i]
		res, err := Simulate(w, mc)
		if err != nil {
			return InterleavePoint{}, err
		}
		lat, err := isolatedTransactionLatency(mc, 256)
		if err != nil {
			return InterleavePoint{}, err
		}
		return InterleavePoint{Granularity: grans[i], Result: res, IsolatedLatency: lat}, nil
	})
}

// isolatedTransactionLatency serves one transaction of the given size on an
// idle memory (fresh or revived from the subsystem pool — identical by the
// Reset-equivalence property) and returns its completion time.
func isolatedTransactionLatency(mc MemoryConfig, bytes int64) (units.Duration, error) {
	sys, release, err := acquireSystem(mc.memsysConfig())
	if err != nil {
		return 0, err
	}
	run, err := sys.Run(memsys.NewSliceSource([]memsys.Request{{Addr: 0, Bytes: bytes}}))
	if err != nil {
		return 0, err
	}
	release()
	return run.Time, nil
}
