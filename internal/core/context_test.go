package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/units"
)

// TestSimulateContextPreCanceled: a done ctx aborts the point before any
// simulation work, cached or not.
func TestSimulateContextPreCanceled(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateContext(ctx, w, PaperMemory(1, 400*units.MHz)); !errors.Is(err, context.Canceled) {
		t.Fatalf("uncached SimulateContext err = %v, want context.Canceled", err)
	}
	c := NewSimCache()
	if _, _, err := c.SimulateContext(ctx, w, PaperMemory(1, 400*units.MHz)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cached SimulateContext err = %v, want context.Canceled", err)
	}
	if got := c.Stats().Lookups(); got != 0 {
		t.Errorf("pre-canceled lookup counted: %d lookups", got)
	}
}

// TestRunIndexedContextCancelStopsClaiming: after ctx fires, no new index
// is claimed and ctx.Err() is returned — the "abort a sweep" fix.
func TestRunIndexedContextCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	_, err := RunIndexedContext(ctx, 4, n, func(i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The four in-flight indices finish; a handful more may already have
	// been claimed before every worker observed the cancellation, but the
	// run must stop far short of the full grid.
	if got := started.Load(); got >= n/2 {
		t.Errorf("%d of %d indices ran after cancellation", got, n)
	}
}

// TestRunIndexedContextSerialCancel covers the jobs<=1 inline path.
func TestRunIndexedContextSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	_, err := RunIndexedContext(ctx, 1, 100, func(i int) (int, error) {
		ran++
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Errorf("ran %d indices, want 3", ran)
	}
}

// TestSimulateContextCacheOutcomes pins the outcome classification the
// simulation service surfaces per request.
func TestSimulateContextCacheOutcomes(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(1, 400*units.MHz)
	c := NewSimCache()
	ctx := context.Background()

	if _, out, err := c.SimulateContext(ctx, w, mc); err != nil || out != OutcomeSimulated {
		t.Fatalf("first lookup: outcome %v, err %v; want simulated", out, err)
	}
	if _, out, err := c.SimulateContext(ctx, w, mc); err != nil || out != OutcomeHit {
		t.Fatalf("second lookup: outcome %v, err %v; want hit", out, err)
	}
	observed := w
	observed.RecordLatency = true
	if _, out, err := c.SimulateContext(ctx, observed, mc); err != nil || out != OutcomeBypass {
		t.Fatalf("observed lookup: outcome %v, err %v; want bypass", out, err)
	}
}
