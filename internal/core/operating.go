package core

import (
	"repro/internal/units"
)

// OperatingPoint is the lowest-power feasible clock for one (format,
// channels) pair — the DVFS question the paper's frequency sweep implies:
// since burst and standby energy per frame are roughly clock-independent
// while the interface power of equation (1) scales linearly with f, the
// energy-optimal operating point is the lowest clock that still meets the
// real-time requirement with margin.
type OperatingPoint struct {
	Format   string
	Channels int
	// MinFreq is the lowest evaluated clock with a Feasible verdict;
	// zero when no clock suffices.
	MinFreq units.Frequency
	// PowerAtMin and PowerAtMax are the average powers at the chosen
	// clock and at the device's top evaluated clock (533 MHz for the
	// paper device).
	PowerAtMin units.Power
	PowerAtMax units.Power
	// Saving is 1 - PowerAtMin/PowerAtMax.
	Saving float64
}

// RunOperatingPoints sweeps every format and channel count over the
// device's evaluated clock list (the DDR2 range for the paper device) and
// reports the lowest feasible clock and its power saving against running
// flat-out at the top clock.
func RunOperatingPoints(opt RunOptions) ([]OperatingPoint, error) {
	workloads := make([]Workload, len(FormatNames))
	for i, format := range FormatNames {
		w, err := opt.workload(format)
		if err != nil {
			return nil, err
		}
		workloads[i] = w
	}
	freqs, err := opt.frequencies()
	if err != nil {
		return nil, err
	}
	nch := len(EvaluatedChannelCounts)
	return RunIndexed(opt.jobs(), len(FormatNames)*nch, func(i int) (OperatingPoint, error) {
		format, ch := FormatNames[i/nch], EvaluatedChannelCounts[i%nch]
		op := OperatingPoint{Format: format, Channels: ch}
		var atMin, atMax *Result
		for _, freq := range freqs {
			res, err := Simulate(workloads[i/nch], opt.memory(ch, freq))
			if err != nil {
				return OperatingPoint{}, err
			}
			if res.Verdict == Feasible && op.MinFreq == 0 {
				op.MinFreq = freq
				r := res
				atMin = &r
			}
			if freq == freqs[len(freqs)-1] {
				r := res
				atMax = &r
			}
		}
		if atMin != nil && atMax != nil && atMax.Verdict != Infeasible {
			op.PowerAtMin = atMin.TotalPower
			op.PowerAtMax = atMax.TotalPower
			if atMax.TotalPower > 0 {
				op.Saving = 1 - float64(atMin.TotalPower)/float64(atMax.TotalPower)
			}
		}
		return op, nil
	})
}
