package core

import (
	"fmt"

	"repro/internal/dram"
)

// GeometryPoint is one device-organization variant's result.
type GeometryPoint struct {
	// Banks and Columns describe the variant; rows are derived to keep
	// the paper's 512 Mb cluster capacity.
	Banks   int
	Columns int
	// RowBytes is the derived open-page size.
	RowBytes int64
	Result   Result
}

// RunGeometrySweep explores the bank-cluster organization space around the
// paper's device (4 banks x 512 columns x 32 bit): bank counts 2/4/8 and
// row sizes 1/2/4 KB at constant 512 Mb capacity, on the bandwidth-critical
// 1080p30 4-channel point. The paper fixes one organization; this sweep
// shows how much of the result depends on that choice (more banks absorb
// the concurrent streams' conflicts; larger rows amortize activates).
func RunGeometrySweep(opt RunOptions) ([]GeometryPoint, error) {
	w, err := opt.workload("1080p30")
	if err != nil {
		return nil, err
	}
	capacityBits := dram.DefaultGeometry().CapacityBits()
	bankCounts := []int{2, 4, 8}
	columnCounts := []int{256, 512, 1024}
	return RunIndexed(opt.jobs(), len(bankCounts)*len(columnCounts), func(i int) (GeometryPoint, error) {
		banks := bankCounts[i/len(columnCounts)]
		columns := columnCounts[i%len(columnCounts)]
		g := dram.DefaultGeometry()
		g.Banks = banks
		g.Columns = columns
		g.Rows = int(int64(capacityBits) / (int64(banks) * int64(columns) * int64(g.WordBits)))
		if err := g.Validate(); err != nil {
			return GeometryPoint{}, fmt.Errorf("core: geometry %d banks x %d cols: %w", banks, columns, err)
		}
		if g.CapacityBits() != capacityBits {
			return GeometryPoint{}, fmt.Errorf("core: geometry %d banks x %d cols: capacity %v, want %v",
				banks, columns, g.CapacityBits(), capacityBits)
		}
		mc := opt.memory(4, PaperFrequency)
		mc.Device = "" // the sweep's explicit paper-class geometry is the axis
		mc.Geometry = g
		res, err := Simulate(w, mc)
		if err != nil {
			return GeometryPoint{}, err
		}
		return GeometryPoint{
			Banks:    banks,
			Columns:  columns,
			RowBytes: g.RowBytes(),
			Result:   res,
		}, nil
	})
}

// PaperGeometryPoint returns the sweep point matching the paper's device.
func PaperGeometryPoint(points []GeometryPoint) (GeometryPoint, error) {
	def := dram.DefaultGeometry()
	for _, p := range points {
		if p.Banks == def.Banks && p.Columns == def.Columns {
			return p, nil
		}
	}
	return GeometryPoint{}, fmt.Errorf("core: paper geometry not in sweep")
}

// GeometrySpread returns the relative access-time spread across the sweep:
// (max-min)/min — how sensitive the headline result is to the device
// organization.
func GeometrySpread(points []GeometryPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	min, max := points[0].Result.AccessTime, points[0].Result.AccessTime
	for _, p := range points[1:] {
		if p.Result.AccessTime < min {
			min = p.Result.AccessTime
		}
		if p.Result.AccessTime > max {
			max = p.Result.AccessTime
		}
	}
	if min <= 0 {
		return 0
	}
	return float64(max-min) / float64(min)
}
