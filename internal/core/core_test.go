package core

import (
	"math"
	"testing"

	"repro/internal/controller"
	"repro/internal/mapping"
	"repro/internal/units"
	"repro/internal/usecase"
)

// simulate runs a sampled simulation for tests.
func simulate(t *testing.T, format string, channels int, freqMHz float64, fraction float64) Result {
	t.Helper()
	w, err := WorkloadFor(format)
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = fraction
	res, err := Simulate(w, PaperMemory(channels, units.Frequency(freqMHz)*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkloadFor(t *testing.T) {
	if _, err := WorkloadFor("1080p30"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadFor("nope"); err == nil {
		t.Error("expected error for unknown format")
	}
}

func TestSimulateValidates(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = -0.5
	if _, err := Simulate(w, PaperMemory(1, 400*units.MHz)); err == nil {
		t.Error("expected fraction error")
	}
	w.SampleFraction = 0
	if _, err := Simulate(w, PaperMemory(0, 400*units.MHz)); err == nil {
		t.Error("expected channels error")
	}
	if _, err := Simulate(w, PaperMemory(1, 50*units.MHz)); err == nil {
		t.Error("expected frequency error")
	}
}

func TestClassify(t *testing.T) {
	period := 33 * units.Millisecond
	tests := []struct {
		at   units.Duration
		want Verdict
	}{
		{20 * units.Millisecond, Feasible},
		{28 * units.Millisecond, Feasible}, // just under 0.85*33 = 28.05
		{29 * units.Millisecond, Marginal},
		{33 * units.Millisecond, Marginal},
		{34 * units.Millisecond, Infeasible},
	}
	for _, tt := range tests {
		if got := Classify(tt.at, period); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Infeasible.String() != "infeasible" || Marginal.String() != "MARGINAL" || Feasible.String() != "ok" {
		t.Error("bad verdict names")
	}
	if got := Verdict(9).String(); got != "Verdict(9)" {
		t.Errorf("String() = %q", got)
	}
}

// Fig. 3 narrative: at one channel, 200 and 266 MHz cannot meet the 720p30
// real-time requirement, 333 MHz is marginal, and 400+ MHz meets it.
func TestFig3Classifications(t *testing.T) {
	want := map[float64]Verdict{
		200: Infeasible,
		266: Infeasible,
		333: Marginal,
		400: Feasible,
		533: Feasible,
	}
	for freq, v := range want {
		res := simulate(t, "720p30", 1, freq, 0.05)
		if res.Verdict != v {
			t.Errorf("720p30 1ch @%vMHz: verdict %v (access %v), want %v",
				freq, res.Verdict, res.AccessTime, v)
		}
	}
}

// Fig. 4 / conclusions at 400 MHz: the complete feasibility matrix the paper
// reports. F = feasible (safe side), M = marginal, I = infeasible.
func TestFig4ClassificationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	want := map[string]map[int]Verdict{
		// Level 3.1 is achievable with all interleaving schemes.
		"720p30": {1: Feasible, 2: Feasible, 4: Feasible, 8: Feasible},
		// Level 3.2 requires at least two channels.
		"720p60": {1: Infeasible, 2: Feasible, 4: Feasible, 8: Feasible},
		// To be on the safe side, 1080p employs at minimum four channels.
		"1080p30": {1: Infeasible, 2: Marginal, 4: Feasible, 8: Feasible},
		// Level 4.2 requires the 8-channel configuration.
		"1080p60": {1: Infeasible, 2: Infeasible, 4: Marginal, 8: Feasible},
		// 2160p30 needs all eight channels.
		"2160p30": {1: Infeasible, 2: Infeasible, 4: Infeasible, 8: Marginal},
		// 2160p60 is beyond every configuration ("doubtful").
		"2160p60": {1: Infeasible, 2: Infeasible, 4: Infeasible, 8: Infeasible},
	}
	for format, row := range want {
		for ch, v := range row {
			res := simulate(t, format, ch, 400, 0.04)
			if res.Verdict != v {
				t.Errorf("%s %dch @400MHz: verdict %v (access %v of %v), want %v",
					format, ch, res.Verdict, res.AccessTime, res.FramePeriod, v)
			}
		}
	}
}

// Fig. 5 power anchors from the paper's prose, +-10 %.
func TestFig5PowerAnchors(t *testing.T) {
	anchors := []struct {
		format   string
		channels int
		wantMW   float64
	}{
		{"720p30", 1, 150},
		{"720p30", 8, 205},
		{"1080p30", 4, 345},
		{"2160p30", 8, 1280},
	}
	for _, a := range anchors {
		res := simulate(t, a.format, a.channels, 400, 0.1)
		got := res.TotalPower.Milliwatts()
		if math.Abs(got-a.wantMW)/a.wantMW > 0.10 {
			t.Errorf("%s %dch power = %.1f mW, want %v +-10%%", a.format, a.channels, got, a.wantMW)
		}
	}
}

// Interface power stacks at ~4-5 mW per channel at 400 MHz (paper: "the
// approximate interface power of 5 mW per channel").
func TestInterfacePowerPerChannel(t *testing.T) {
	res := simulate(t, "720p30", 4, 400, 0.05)
	perChannel := res.InterfacePower.Milliwatts() / 4
	if perChannel < 3.5 || perChannel > 5.5 {
		t.Errorf("interface power per channel = %.2f mW, want ~4-5", perChannel)
	}
}

// Doubling channels gives close to 2x speedup (paper section IV).
func TestChannelSpeedup(t *testing.T) {
	prev := simulate(t, "720p30", 1, 400, 0.05)
	for _, ch := range []int{2, 4, 8} {
		cur := simulate(t, "720p30", ch, 400, 0.05)
		ratio := prev.AccessTime.Seconds() / cur.AccessTime.Seconds()
		if ratio < 1.9 || ratio > 2.1 {
			t.Errorf("%dch -> %dch speedup = %.2f, want ~2", ch/2, ch, ratio)
		}
		prev = cur
	}
}

// Sustained channel efficiency sits in the calibrated band and is flat
// across channel counts (the paper's figures scale linearly).
func TestEfficiencyBand(t *testing.T) {
	var effs []float64
	for _, ch := range []int{1, 2, 8} {
		res := simulate(t, "1080p30", ch, 400, 0.05)
		effs = append(effs, res.Efficiency)
	}
	for _, e := range effs {
		if e < 0.70 || e > 0.78 {
			t.Errorf("efficiency %.3f outside calibrated band [0.70, 0.78]", e)
		}
	}
	for i := 1; i < len(effs); i++ {
		if math.Abs(effs[i]-effs[0]) > 0.02 {
			t.Errorf("efficiency not flat across channels: %v", effs)
		}
	}
}

// Sampling extrapolates consistently: a 5 % sample predicts the 20 % sample
// within a small tolerance.
func TestSamplingConsistency(t *testing.T) {
	small := simulate(t, "720p30", 2, 400, 0.05)
	large := simulate(t, "720p30", 2, 400, 0.20)
	diff := math.Abs(small.AccessTime.Seconds()-large.AccessTime.Seconds()) / large.AccessTime.Seconds()
	if diff > 0.02 {
		t.Errorf("sampled access times differ by %.2f%%: %v vs %v",
			diff*100, small.AccessTime, large.AccessTime)
	}
	pdiff := math.Abs(small.TotalPower.Milliwatts()-large.TotalPower.Milliwatts()) / large.TotalPower.Milliwatts()
	if pdiff > 0.02 {
		t.Errorf("sampled powers differ by %.2f%%", pdiff*100)
	}
}

// BRC is never faster than RBC on the recording load (paper section IV:
// RBC achieved "somewhat better performance").
func TestRBCBeatsBRC(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.05
	rbc, err := Simulate(w, PaperMemory(2, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(2, 400*units.MHz)
	mc.Mux = mapping.BRC
	brc, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if rbc.AccessTime >= brc.AccessTime {
		t.Errorf("RBC (%v) should beat BRC (%v)", rbc.AccessTime, brc.AccessTime)
	}
}

// Disabling power-down raises power substantially at low utilization while
// barely changing access time.
func TestPowerDownAblation(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.05
	on, err := Simulate(w, PaperMemory(8, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(8, 400*units.MHz)
	mc.DisablePowerDown = true
	off, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if off.TotalPower < units.Power(1.5)*on.TotalPower {
		t.Errorf("power-down ablation: %.0f mW vs %.0f mW, want >= 1.5x",
			off.TotalPower.Milliwatts(), on.TotalPower.Milliwatts())
	}
	timeDiff := math.Abs(off.AccessTime.Seconds()-on.AccessTime.Seconds()) / on.AccessTime.Seconds()
	if timeDiff > 0.05 {
		t.Errorf("power-down changed access time by %.1f%%", timeDiff*100)
	}
}

// Closed page loses to open page on the streaming recording load.
func TestPagePolicyAblation(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.02
	open, err := Simulate(w, PaperMemory(1, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(1, 400*units.MHz)
	mc.Policy = controller.ClosedPage
	closed, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if open.AccessTime >= closed.AccessTime {
		t.Errorf("open page (%v) should beat closed page (%v)",
			open.AccessTime, closed.AccessTime)
	}
}

// The XDR comparison: 8 channels at 400 MHz offer ~25 GB/s peak, and the
// recording power stays between ~4 % and ~27 % of the XDR interface's 5 W.
func TestXDRComparisonRange(t *testing.T) {
	low := simulate(t, "720p30", 8, 400, 0.1)
	high := simulate(t, "2160p30", 8, 400, 0.1)
	if got := low.PeakBandwidth.GBps(); math.Abs(got-25.6) > 0.01 {
		t.Errorf("8ch peak = %v GB/s, want 25.6", got)
	}
	lowFrac := low.TotalPower.Milliwatts() / 5000
	highFrac := high.TotalPower.Milliwatts() / 5000
	if lowFrac < 0.03 || lowFrac > 0.06 {
		t.Errorf("720p30 power fraction of XDR = %.3f, want ~0.04", lowFrac)
	}
	if highFrac < 0.20 || highFrac > 0.30 {
		t.Errorf("2160p30 power fraction of XDR = %.3f, want ~0.25", highFrac)
	}
}

// Required bandwidth fields reproduce the Table I anchors.
func TestResultBandwidthFields(t *testing.T) {
	res := simulate(t, "1080p30", 4, 400, 0.05)
	if got := res.RequiredBandwidth.GBps(); math.Abs(got-4.3)/4.3 > 0.05 {
		t.Errorf("required bandwidth = %.2f GB/s, want ~4.3", got)
	}
	if res.AchievedBandwidth <= 0 || res.AchievedBandwidth > res.PeakBandwidth {
		t.Errorf("achieved bandwidth %v outside (0, peak %v]", res.AchievedBandwidth, res.PeakBandwidth)
	}
	if res.FrameBytes <= 0 || res.FramePeriod <= 0 {
		t.Errorf("result fields: %+v", res)
	}
	if len(res.PerChannel) != 4 {
		t.Errorf("per-channel breakdowns = %d, want 4", len(res.PerChannel))
	}
}

// Custom use-case parameters flow through (fewer reference frames lower the
// load and the access time).
func TestWorkloadParamsFlowThrough(t *testing.T) {
	base, _ := WorkloadFor("1080p30")
	base.SampleFraction = 0.05
	light := base
	p := usecase.DefaultParams()
	p.ReferenceFrames = 1
	light.Params = p
	rBase, err := Simulate(base, PaperMemory(4, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	rLight, err := Simulate(light, PaperMemory(4, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if rLight.FrameBytes >= rBase.FrameBytes || rLight.AccessTime >= rBase.AccessTime {
		t.Errorf("lighter workload not lighter: %v vs %v", rLight.AccessTime, rBase.AccessTime)
	}
}

// The posted-write-buffer extension improves sustained efficiency on the
// recording load without changing the traffic.
func TestWriteBufferExtension(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.05
	base, err := Simulate(w, PaperMemory(1, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(1, 400*units.MHz)
	mc.WriteBufferDepth = 32
	buf, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if buf.AccessTime >= base.AccessTime {
		t.Errorf("write buffer did not help: %v vs %v", buf.AccessTime, base.AccessTime)
	}
	if buf.Totals.Writes != base.Totals.Writes {
		t.Errorf("write buffer changed traffic: %d vs %d writes", buf.Totals.Writes, base.Totals.Writes)
	}
	if buf.Efficiency <= base.Efficiency {
		t.Errorf("efficiency did not improve: %.3f vs %.3f", buf.Efficiency, base.Efficiency)
	}
}

// RecordLatency populates a merged per-burst latency histogram.
func TestLatencyRecording(t *testing.T) {
	w, _ := WorkloadFor("720p30")
	w.SampleFraction = 0.02
	w.RecordLatency = true
	res, err := Simulate(w, PaperMemory(2, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == nil || res.Latency.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	// Streamed bursts complete every BL/2 = 2 cycles; the median service
	// latency bound sits there, and the tail covers row misses.
	if res.Latency.Quantile(0.5) < 2 {
		t.Errorf("median latency upper bound = %d cycles, implausibly low", res.Latency.Quantile(0.5))
	}
	if res.Latency.Max() < 10 {
		t.Errorf("max latency = %d cycles, should cover row misses", res.Latency.Max())
	}
	// Without the flag, no histogram.
	w.RecordLatency = false
	res2, err := Simulate(w, PaperMemory(2, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Latency != nil {
		t.Error("latency histogram present without RecordLatency")
	}
}

// The FR-FCFS reorder-window extension never hurts and improves the
// conflicted recording streams.
func TestReorderQueueExtension(t *testing.T) {
	w, _ := WorkloadFor("1080p30")
	w.SampleFraction = 0.05
	base, err := Simulate(w, PaperMemory(4, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(4, 400*units.MHz)
	mc.QueueDepth = 16
	q, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if q.AccessTime > base.AccessTime {
		t.Errorf("reorder window slowed the load: %v vs %v", q.AccessTime, base.AccessTime)
	}
	if q.Totals.Accesses() != base.Totals.Accesses() {
		t.Errorf("traffic differs: %d vs %d", q.Totals.Accesses(), base.Totals.Accesses())
	}
	// Row hit rate improves: that is the mechanism.
	if q.Totals.RowHitRate() < base.Totals.RowHitRate() {
		t.Errorf("hit rate fell: %.4f vs %.4f", q.Totals.RowHitRate(), base.Totals.RowHitRate())
	}
}
