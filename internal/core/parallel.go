package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RunIndexed evaluates fn(0..n-1) on up to jobs concurrent workers and
// returns the results in index order, so a parallel sweep emits byte-for-byte
// the output of its serial counterpart. Each index is claimed by exactly one
// worker; every simulated point is independent (Simulate runs each point on
// its own memory subsystem — pooled and revived via Reset in steady state,
// never shared between in-flight points), so no further coordination is
// needed.
//
// Errors are deterministic too: every index runs to completion and the error
// with the LOWEST index is returned, regardless of which worker hit it first
// in wall-clock order. jobs <= 1 runs inline with fail-fast semantics — the
// same lowest-index error, since indices are visited in order.
func RunIndexed[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	return RunIndexedContext(context.Background(), jobs, n, fn)
}

// RunIndexedContext is RunIndexed with cancellation: once ctx is done no
// worker claims another index, in-flight indices finish, and ctx.Err() is
// returned (taking precedence over any per-index error, since a canceled
// run's partial errors are not deterministic). The background-context
// spelling is exactly RunIndexed.
func RunIndexedContext[T any](ctx context.Context, jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	// Worker-pool accounting (planned/completed counters drive -progress;
	// busy/queue gauges and busy time expose pool utilization). Wrapping fn
	// happens once per RunIndexed call, so the disabled path costs a single
	// atomic load.
	if m := activeMeter.Load(); m != nil {
		m.indexedPlanned.Add(int64(n))
		m.queueDepth.Add(int64(n))
		var ran atomic.Int64
		inner := fn
		fn = func(i int) (T, error) {
			ran.Add(1)
			m.workersBusy.Add(1)
			start := time.Now()
			v, err := inner(i)
			m.busyNanos.Add(time.Since(start).Nanoseconds())
			m.workersBusy.Add(-1)
			m.queueDepth.Add(-1)
			m.indexedCompleted.Inc()
			return v, err
		}
		// A canceled run leaves unclaimed indices behind; return the
		// queue-depth gauge to zero for them on the way out.
		defer func() { m.queueDepth.Add(-(int64(n) - ran.Load())) }()
	}
	out := make([]T, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultJobs is the worker count used when RunOptions.Jobs is zero: one
// worker per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }
