package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RunIndexed evaluates fn(0..n-1) on up to jobs concurrent workers and
// returns the results in index order, so a parallel sweep emits byte-for-byte
// the output of its serial counterpart. Each index is claimed by exactly one
// worker; every simulated point is independent (Simulate runs each point on
// its own memory subsystem — pooled and revived via Reset in steady state,
// never shared between in-flight points), so no further coordination is
// needed.
//
// Errors are deterministic too: every index runs to completion and the error
// with the LOWEST index is returned, regardless of which worker hit it first
// in wall-clock order. jobs <= 1 runs inline with fail-fast semantics — the
// same lowest-index error, since indices are visited in order.
func RunIndexed[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	// Worker-pool accounting (planned/completed counters drive -progress;
	// busy/queue gauges and busy time expose pool utilization). Wrapping fn
	// happens once per RunIndexed call, so the disabled path costs a single
	// atomic load.
	if m := activeMeter.Load(); m != nil {
		m.indexedPlanned.Add(int64(n))
		m.queueDepth.Add(int64(n))
		inner := fn
		fn = func(i int) (T, error) {
			m.workersBusy.Add(1)
			start := time.Now()
			v, err := inner(i)
			m.busyNanos.Add(time.Since(start).Nanoseconds())
			m.workersBusy.Add(-1)
			m.queueDepth.Add(-1)
			m.indexedCompleted.Inc()
			return v, err
		}
	}
	out := make([]T, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DefaultJobs is the worker count used when RunOptions.Jobs is zero: one
// worker per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }
