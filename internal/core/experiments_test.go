package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/usecase"
)

func TestRunTableI(t *testing.T) {
	cols, err := RunTableI(usecase.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 5 {
		t.Fatalf("Table I has %d columns, want 5 levels", len(cols))
	}
	// Column order follows the paper: 3.1, 3.2, 4, 4.2, 5.2.
	wantLevels := []string{"3.1", "3.2", "4", "4.2", "5.2"}
	for i, c := range cols {
		if c.Level.Number != wantLevels[i] {
			t.Errorf("column %d level %s, want %s", i, c.Level.Number, wantLevels[i])
		}
		if c.FrameTotal != c.ImageTotal+c.CodingTotal {
			t.Errorf("level %s: totals inconsistent", c.Level.Number)
		}
		if c.ReferenceFrames != 4 {
			t.Errorf("level %s: %d reference frames, want 4", c.Level.Number, c.ReferenceFrames)
		}
	}
	// The bandwidth anchors (last row of Table I).
	anchors := map[int]float64{0: 1.9, 2: 4.3, 3: 8.6} // GB/s
	for i, want := range anchors {
		got := cols[i].Bandwidth.GBps()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("column %d bandwidth = %.2f GB/s, want ~%.1f", i, got, want)
		}
	}
	// 1080p60 is exactly double 1080p30 minus the display/bitstream
	// differences; sanity: strictly greater than 1.9x.
	if r := cols[3].Bandwidth / cols[2].Bandwidth; r < 1.9 || r > 2.1 {
		t.Errorf("1080p60/1080p30 = %.2f, want ~2", float64(r))
	}
}

func TestRunTableICustomParams(t *testing.T) {
	p := usecase.DefaultParams()
	p.ReferenceFrames = 2
	cols, err := RunTableI(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunTableI(usecase.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].ReferenceFrames != 2 {
		t.Errorf("reference frames = %d, want 2", cols[0].ReferenceFrames)
	}
	if cols[0].FrameTotal >= base[0].FrameTotal {
		t.Error("fewer reference frames should shrink the frame load")
	}
}

func TestRunFig3Shape(t *testing.T) {
	points, err := RunFig3(RunOptions{SampleFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// 4 channel counts x 5 frequencies.
	if len(points) != 20 {
		t.Fatalf("Fig. 3 has %d points, want 20", len(points))
	}
	// Within a channel count, access time falls monotonically with clock.
	byChannels := map[int][]FigPoint{}
	for _, p := range points {
		byChannels[p.Channels] = append(byChannels[p.Channels], p)
	}
	for ch, ps := range byChannels {
		for i := 1; i < len(ps); i++ {
			if ps[i].Result.AccessTime >= ps[i-1].Result.AccessTime {
				t.Errorf("%dch: access time not monotone in clock", ch)
			}
		}
	}
	// The headline narrative: 1ch passes only from 400 MHz (333 marginal).
	for _, p := range byChannels[1] {
		want := Feasible
		switch p.Freq.MHz() {
		case 200, 266:
			want = Infeasible
		case 333:
			want = Marginal
		}
		if p.Result.Verdict != want {
			t.Errorf("1ch @%v: %v, want %v", p.Freq, p.Result.Verdict, want)
		}
	}
}

func TestRunFormatMatrixShape(t *testing.T) {
	points, err := RunFormatMatrix(RunOptions{SampleFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(FormatNames)*len(EvaluatedChannelCounts) {
		t.Fatalf("matrix has %d points, want %d", len(points), len(FormatNames)*4)
	}
	// Power grows with channel count within a feasible format (more idle
	// channels cost background and interface power).
	var prev Result
	for i, p := range points {
		if p.Format != "720p30" {
			break
		}
		if i > 0 && p.Result.TotalPower <= prev.TotalPower {
			t.Errorf("720p30: power not increasing with channels: %v vs %v",
				p.Result.TotalPower, prev.TotalPower)
		}
		prev = p.Result
	}
	// Every point carries the 400 MHz clock.
	for _, p := range points {
		if p.Freq != PaperFrequency {
			t.Errorf("point at %v, want %v", p.Freq, PaperFrequency)
		}
	}
}

func TestRunXDRComparison(t *testing.T) {
	cmp, err := RunXDRComparison(RunOptions{SampleFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: similar bandwidth (25.6 GB/s both sides).
	if math.Abs(cmp.Mobile.GBps()-25.6) > 0.01 {
		t.Errorf("mobile peak = %v GB/s, want 25.6", cmp.Mobile.GBps())
	}
	if math.Abs(cmp.XDR.PeakBandwidth().GBps()-25.6) > 0.01 {
		t.Errorf("XDR peak = %v GB/s", cmp.XDR.PeakBandwidth().GBps())
	}
	// "Power consumption from 4% to 25% of the XDR value".
	if cmp.MinRatio < 0.03 || cmp.MinRatio > 0.06 {
		t.Errorf("min ratio = %.3f, want ~0.04", cmp.MinRatio)
	}
	if cmp.MaxRatio < 0.20 || cmp.MaxRatio > 0.30 {
		t.Errorf("max ratio = %.3f, want ~0.25", cmp.MaxRatio)
	}
	// Infeasible formats (2160p60) are excluded.
	for _, r := range cmp.Rows {
		if r.Format == "2160p60" {
			t.Error("infeasible format in XDR comparison")
		}
		if r.Verdict == Infeasible {
			t.Errorf("%s: infeasible row in comparison", r.Format)
		}
	}
}

func TestRunAblations(t *testing.T) {
	rows, err := RunAblations(RunOptions{SampleFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablations = %d, want 4", len(rows))
	}
	for _, r := range rows {
		switch r.Name {
		case "RBC vs BRC multiplexing", "open vs closed page":
			if r.Variant.AccessTime <= r.Baseline.AccessTime {
				t.Errorf("%s: variant (%v) should be slower than baseline (%v)",
					r.Name, r.Variant.AccessTime, r.Baseline.AccessTime)
			}
		case "power-down vs always-standby":
			if r.Variant.TotalPower <= r.Baseline.TotalPower {
				t.Errorf("%s: variant (%v) should burn more than baseline (%v)",
					r.Name, r.Variant.TotalPower, r.Baseline.TotalPower)
			}
		case "write buffer (depth 32) vs none":
			if r.Variant.AccessTime >= r.Baseline.AccessTime {
				t.Errorf("%s: buffered variant (%v) should beat baseline (%v)",
					r.Name, r.Variant.AccessTime, r.Baseline.AccessTime)
			}
		default:
			t.Errorf("unexpected ablation %q", r.Name)
		}
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	var o RunOptions
	if o.fraction() != 0.2 {
		t.Errorf("default fraction = %v, want 0.2", o.fraction())
	}
	o.SampleFraction = 0.5
	if o.fraction() != 0.5 {
		t.Errorf("fraction = %v, want 0.5", o.fraction())
	}
	if _, err := o.workload("bogus"); err == nil {
		t.Error("expected error for bogus format")
	}
}

func TestRunGeometrySweep(t *testing.T) {
	points, err := RunGeometrySweep(RunOptions{SampleFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("sweep has %d points, want 9", len(points))
	}
	paper, err := PaperGeometryPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	if paper.RowBytes != 2048 {
		t.Errorf("paper row = %d bytes, want 2048", paper.RowBytes)
	}
	// At fixed row size, more banks never hurt: concurrent streams
	// conflict less.
	byCols := map[int]map[int]GeometryPoint{}
	for _, p := range points {
		if byCols[p.Columns] == nil {
			byCols[p.Columns] = map[int]GeometryPoint{}
		}
		byCols[p.Columns][p.Banks] = p
	}
	for cols, banks := range byCols {
		if banks[8].Result.AccessTime > banks[2].Result.AccessTime {
			t.Errorf("cols=%d: 8 banks (%v) slower than 2 banks (%v)",
				cols, banks[8].Result.AccessTime, banks[2].Result.AccessTime)
		}
	}
	// The organization matters substantially — the 2-bank small-row
	// corner nearly doubles the access time — but stays within ~2x.
	spread := GeometrySpread(points)
	if spread <= 0 || spread > 1.2 {
		t.Errorf("geometry spread = %.2f, want (0, 1.2]", spread)
	}
	if GeometrySpread(nil) != 0 {
		t.Error("empty spread should be 0")
	}
	if _, err := PaperGeometryPoint(nil); err == nil {
		t.Error("expected missing-point error")
	}
}

func TestRunOperatingPoints(t *testing.T) {
	points, err := RunOperatingPoints(RunOptions{SampleFraction: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(FormatNames)*len(EvaluatedChannelCounts) {
		t.Fatalf("points = %d", len(points))
	}
	byKey := map[string]OperatingPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s/%d", p.Format, p.Channels)] = p
	}
	// Paper narrative: 720p30 on one channel first becomes safe at 400 MHz.
	if got := byKey["720p30/1"].MinFreq; got != 400*units.MHz {
		t.Errorf("720p30/1ch min clock = %v, want 400 MHz", got)
	}
	// On two channels the lowest evaluated clock already suffices.
	if got := byKey["720p30/2"].MinFreq; got != 200*units.MHz {
		t.Errorf("720p30/2ch min clock = %v, want 200 MHz", got)
	}
	// 2160p60 never fits.
	if got := byKey["2160p60/8"].MinFreq; got != 0 {
		t.Errorf("2160p60/8ch min clock = %v, want none", got)
	}
	// Running at the minimum clock saves power wherever there is slack.
	p := byKey["720p30/2"]
	if p.Saving <= 0 || p.PowerAtMin >= p.PowerAtMax {
		t.Errorf("no DVFS saving: %+v", p)
	}
	// More channels lower the feasible clock monotonically (or keep it).
	for _, format := range []string{"720p30", "1080p30"} {
		var prev units.Frequency
		for _, ch := range EvaluatedChannelCounts {
			cur := byKey[fmt.Sprintf("%s/%d", format, ch)].MinFreq
			if prev != 0 && cur != 0 && cur > prev {
				t.Errorf("%s: min clock rose from %v to %v at %d channels", format, prev, cur, ch)
			}
			if cur != 0 {
				prev = cur
			}
		}
	}
}

// The Table II granularity trade-off: coarser interleaving lengthens
// per-channel runs (saturated throughput improves slightly) but multiplies
// the latency of an isolated transaction, which the paper's 16-byte choice
// minimizes by spreading every master transaction over all channels.
func TestRunInterleaveSweep(t *testing.T) {
	points, err := RunInterleaveSweep(RunOptions{SampleFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Granularity != 16 {
		t.Fatalf("first point granularity %d", points[0].Granularity)
	}
	// Isolated-transaction latency grows monotonically with granularity
	// and the paper's 16B is the minimum.
	for i := 1; i < len(points); i++ {
		if points[i].IsolatedLatency < points[i-1].IsolatedLatency {
			t.Errorf("isolated latency fell from %v to %v at granularity %d",
				points[i-1].IsolatedLatency, points[i].IsolatedLatency, points[i].Granularity)
		}
	}
	first, last := points[0], points[len(points)-1]
	if float64(last.IsolatedLatency) < 1.5*float64(first.IsolatedLatency) {
		t.Errorf("coarse interleave latency %v not substantially above 16B's %v",
			last.IsolatedLatency, first.IsolatedLatency)
	}
	// Saturated access time moves only mildly (within ~15 % either way):
	// granularity is a latency knob, not a throughput cliff.
	for _, p := range points[1:] {
		ratio := p.Result.AccessTime.Seconds() / first.Result.AccessTime.Seconds()
		if ratio < 0.8 || ratio > 1.15 {
			t.Errorf("granularity %d moved access time by %.2fx", p.Granularity, ratio)
		}
	}
}
