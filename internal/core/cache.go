package core

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"

	"repro/internal/analytic"
	"repro/internal/dram"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/simcache"
	"repro/internal/usecase"
)

// CacheSchemaVersion names the simulation-result schema the cache stores.
// Bump it whenever a change alters what Simulate computes for an unchanged
// (Workload, MemoryConfig) — e.g. a controller timing fix or a new Result
// field: in-process keys separate immediately (the version is folded into
// every key) and the on-disk store moves to a fresh <root>/<version>/
// directory, orphaning every stale entry without touching it.
//
// v2: MemoryConfig gained the Device field (the datasheet registry), which
// folds into every key via the reflective field walk.
const CacheSchemaVersion = "v2"

// CacheStats is a snapshot of a SimCache's lookup counters.
type CacheStats struct {
	// MemHits counts lookups answered by the in-process memo (including
	// joins on an in-flight computation of the same point).
	MemHits int64
	// DiskHits counts lookups answered by the on-disk store.
	DiskHits int64
	// Simulated counts lookups that ran the simulator.
	Simulated int64
	// Bypassed counts Simulate calls that skipped the cache because the
	// run was observed (probes, faults, latency recording).
	Bypassed int64
	// DedupJoins counts the MemHits that were single-flight joins on a
	// computation still in flight (concurrent workers asking for the same
	// point), as opposed to hits on a finished entry.
	DedupJoins int64
	// DiskStores counts results persisted to the on-disk store, and
	// DiskRepairs corrupt or truncated entries detected on read (each is
	// overwritten by the store of the fresh result).
	DiskStores  int64
	DiskRepairs int64
}

// Lookups returns the number of cacheable Simulate calls.
func (s CacheStats) Lookups() int64 { return s.MemHits + s.DiskHits + s.Simulated }

// HitRate returns the fraction of cacheable lookups served without
// simulating (0 when there were none).
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.MemHits+s.DiskHits) / float64(n)
	}
	return 0
}

// String formats the counters for the CLI stderr summaries.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d points: %d simulated, %d memory hits, %d disk hits, %d bypassed (hit rate %.0f%%)",
		s.Lookups()+s.Bypassed, s.Simulated, s.MemHits, s.DiskHits, s.Bypassed, 100*s.HitRate())
}

// SimCache is a content-addressed cache of Simulate results: an in-process
// concurrent memo with single-flight semantics (overlapping experiments
// asking for the same point simulate it exactly once, even from concurrent
// RunIndexed workers), optionally backed by a versioned on-disk store that
// persists points across process invocations.
//
// Correctness rests on two properties. First, the key is the SHA-256 of a
// canonical encoding of every Simulate-relevant field of the normalized
// (Workload, MemoryConfig) — see cacheKey — so two calls share a key only
// when Simulate is guaranteed to return the identical Result for both.
// Second, observed runs (probes, faults, latency recording — anything whose
// value is the side effects, not the Result) bypass the cache entirely.
type SimCache struct {
	memo *simcache.Memo[Result]
	disk *simcache.Disk

	// Lookup counters. Registered in the run's metrics registry when one
	// is enabled at construction time, standalone otherwise — either way
	// the counters exist, so the CLI stderr summary (Stats/String) is a
	// thin formatter over the same numbers /metrics serves.
	memHits     *metrics.Counter
	diskHits    *metrics.Counter
	simulated   *metrics.Counter
	bypassed    *metrics.Counter
	dedupJoins  *metrics.Counter
	diskStores  *metrics.Counter
	diskRepairs *metrics.Counter
}

// cacheCounter registers the counter when metrics are enabled, else
// returns a standalone one so counting works regardless.
func cacheCounter(r *metrics.Registry, name string, labels ...metrics.Label) *metrics.Counter {
	if r == nil {
		return metrics.NewCounter()
	}
	return r.Counter(name, labels...)
}

// NewSimCache returns an in-process-only cache.
func NewSimCache() *SimCache {
	r := MetricsRegistry()
	return &SimCache{
		memo:        simcache.NewMemo[Result](),
		memHits:     cacheCounter(r, "simcache_hits_total", metrics.Label{Key: "tier", Value: "memory"}),
		diskHits:    cacheCounter(r, "simcache_hits_total", metrics.Label{Key: "tier", Value: "disk"}),
		simulated:   cacheCounter(r, "simcache_misses_total"),
		bypassed:    cacheCounter(r, "simcache_bypass_total"),
		dedupJoins:  cacheCounter(r, "simcache_dedup_joins_total"),
		diskStores:  cacheCounter(r, "simcache_disk_stores_total"),
		diskRepairs: cacheCounter(r, "simcache_disk_repairs_total"),
	}
}

// NewDiskSimCache returns a cache additionally backed by the on-disk store
// rooted at dir (created if needed) under the current CacheSchemaVersion.
func NewDiskSimCache(dir string) (*SimCache, error) {
	disk, err := simcache.NewDisk(dir, CacheSchemaVersion)
	if err != nil {
		return nil, err
	}
	c := NewSimCache()
	c.disk = disk
	return c, nil
}

// Stats snapshots the lookup counters.
func (c *SimCache) Stats() CacheStats {
	return CacheStats{
		MemHits:     c.memHits.Value(),
		DiskHits:    c.diskHits.Value(),
		Simulated:   c.simulated.Value(),
		Bypassed:    c.bypassed.Value(),
		DedupJoins:  c.dedupJoins.Value(),
		DiskStores:  c.diskStores.Value(),
		DiskRepairs: c.diskRepairs.Value(),
	}
}

// CacheOutcome classifies how one cacheable lookup was answered. The
// simulation service reports it per request (an X-Sim-Cache header) so
// clients can tell a shared single-flight join from a plain hit without
// the response body ever depending on cache state.
type CacheOutcome int

const (
	// OutcomeBypass: the run was observed (probes, faults, latency
	// recording) and skipped the cache entirely.
	OutcomeBypass CacheOutcome = iota
	// OutcomeHit: answered from a finished memo entry (memory or disk).
	OutcomeHit
	// OutcomeJoined: blocked on another caller's in-flight computation of
	// the same point and shared its result (single-flight dedup).
	OutcomeJoined
	// OutcomeSimulated: this call ran the simulator.
	OutcomeSimulated
)

// String names the outcome for response headers and logs.
func (o CacheOutcome) String() string {
	switch o {
	case OutcomeBypass:
		return "bypass"
	case OutcomeHit:
		return "hit"
	case OutcomeJoined:
		return "joined"
	case OutcomeSimulated:
		return "simulated"
	default:
		return fmt.Sprintf("CacheOutcome(%d)", int(o))
	}
}

// Simulate is Simulate through this cache.
func (c *SimCache) Simulate(w Workload, mc MemoryConfig) (Result, error) {
	res, _, err := c.simulate(context.Background(), w, mc, nil)
	return res, err
}

// SimulateContext is Simulate through this cache with cancellation: ctx
// aborts the lookup (and, when every interested caller is gone, the
// underlying computation — see simcache.Memo.DoContext) and reports how
// the point was answered.
func (c *SimCache) SimulateContext(ctx context.Context, w Workload, mc MemoryConfig) (Result, CacheOutcome, error) {
	return c.simulate(ctx, w, mc, nil)
}

// simulate is Simulate through this cache, recording phase spans on lane
// when the run traces them (nil lane no-ops).
func (c *SimCache) simulate(ctx context.Context, w Workload, mc MemoryConfig, lane *probe.Lane) (Result, CacheOutcome, error) {
	key, cacheable := cacheKey(w, mc)
	if !cacheable {
		c.bypassed.Inc()
		res, err := simulateUncached(ctx, w, mc, lane)
		return res, OutcomeBypass, err
	}
	// The lookup phase spans the memo+disk consultation; when this call
	// ends up computing, it closes at the moment simulation starts.
	endLookup := lane.Phase("cache-lookup")
	looking := true
	res, err, hit, joined := c.memo.DoContext(ctx, key, func(cctx context.Context) (Result, error) {
		if c.disk != nil {
			if data, ok := c.disk.Get(key); ok {
				var r Result
				if err := json.Unmarshal(data, &r); err == nil {
					c.diskHits.Inc()
					return r, nil
				}
				// A corrupt or truncated entry reads as a miss; the Put
				// below overwrites it with a fresh result.
				c.diskRepairs.Inc()
			}
		}
		endLookup()
		looking = false
		r, err := simulateUncached(cctx, w, mc, lane)
		if err != nil {
			return Result{}, err
		}
		c.simulated.Inc()
		if c.disk != nil {
			if data, err := json.Marshal(r); err == nil {
				// Best effort: an unwritable store degrades to in-process
				// caching rather than failing the sweep.
				if c.disk.Put(key, data) == nil {
					c.diskStores.Inc()
				}
			}
		}
		return r, nil
	})
	if looking {
		endLookup()
	}
	outcome := OutcomeSimulated
	if joined {
		outcome = OutcomeJoined
	} else if hit {
		outcome = OutcomeHit
	}
	if err != nil {
		return Result{}, outcome, err
	}
	if hit {
		c.memHits.Inc()
	}
	if joined {
		c.dedupJoins.Inc()
	}
	// Hand every caller its own PerChannel slice so nobody can mutate the
	// cached entry through the shared backing array.
	if res.PerChannel != nil {
		res.PerChannel = append([]power.Breakdown(nil), res.PerChannel...)
	}
	return res, outcome, nil
}

// memoEstimate publishes an analytic estimate under its fidelity-tagged
// key in the in-process memo (single-flight, shared with concurrent
// callers of the same point). Estimates never reach the disk store: the
// tier tag in the key already rules out collisions with exact entries,
// and a disk round-trip costs more than the microseconds the estimate
// takes to recompute — the disk store stays exact-only. Cache stats are
// simulator-entry stats and are not touched here; the per-tier fidelity
// counters account for estimate traffic.
func (c *SimCache) memoEstimate(ctx context.Context, w Workload, mc MemoryConfig, tier Fidelity, envTag string, est Result) (Result, error) {
	res, _, err := c.memoEstimateOutcome(ctx, w, mc, tier, envTag, est)
	return res, err
}

func (c *SimCache) memoEstimateOutcome(ctx context.Context, w Workload, mc MemoryConfig, tier Fidelity, envTag string, est Result) (Result, CacheOutcome, error) {
	key, cacheable := cacheKeyTier(w, mc, tier, envTag)
	if !cacheable {
		return est, OutcomeBypass, nil
	}
	res, err, hit, joined := c.memo.DoContext(ctx, key, func(context.Context) (Result, error) {
		return est, nil
	})
	if err != nil {
		return Result{}, OutcomeBypass, err
	}
	outcome := OutcomeSimulated
	if hit {
		outcome = OutcomeHit
	} else if joined {
		outcome = OutcomeJoined
	}
	return res, outcome, nil
}

// activeCache is the process-wide cache consulted by Simulate; nil means
// every call simulates (the seed behavior, and the -no-cache spelling).
var activeCache atomic.Pointer[SimCache]

// EnableCache installs c as the process-wide cache used by Simulate (and
// therefore by every experiment runner). Passing nil disables caching.
func EnableCache(c *SimCache) { activeCache.Store(c) }

// DisableCache removes the process-wide cache.
func DisableCache() { activeCache.Store(nil) }

// EnabledCache returns the process-wide cache, or nil when disabled.
func EnabledCache() *SimCache { return activeCache.Load() }

// CacheKey exposes the content-addressed key for one simulation point —
// the identity the cache, the single-flight memo and the shard router all
// agree on. cacheable=false marks observed runs (probes, faults, latency
// recording) that never cache; a router may place such a request on any
// shard. The key is deterministic across hosts and processes, which is
// what makes consistent-hash placement by key meaningful at all.
func CacheKey(w Workload, mc MemoryConfig) (simcache.Key, bool) {
	return cacheKey(w, mc)
}

// cacheKey folds the normalized (Workload, MemoryConfig) into a
// content-addressed key, or reports cacheable=false for observed runs —
// probes, faults and latency recording exist for their side effects or
// non-deterministic-cost payloads, so they always simulate. (-check rides
// on NewProbe via AttachChecker, so checked runs bypass too.)
//
// Both structs are walked by reflection over their declared fields, so a
// field added to either is folded into the key automatically; only fields
// that cannot be canonically encoded (funcs, pointers with bypass
// semantics) are special-cased by name. TestCacheKeyFieldCoverage pins the
// special-case list and fails when a new field lands in it unhandled.
func cacheKey(w Workload, mc MemoryConfig) (simcache.Key, bool) {
	return cacheKeyTier(w, mc, FidelityExact, "")
}

// cacheKeyTier is cacheKey extended with the fidelity tier. Exact keys
// stay byte-identical to every release since the cache landed, so
// existing disk stores remain valid. Non-exact tiers fold the tier, the
// envelope schema version and the envelope content fingerprint into the
// key: an analytic estimate can never collide with — and therefore never
// pollute — an exact entry, and replacing the calibration envelope
// rotates every estimate key so stale bounds cannot answer.
func cacheKeyTier(w Workload, mc MemoryConfig, tier Fidelity, envTag string) (simcache.Key, bool) {
	if w.RecordLatency || mc.NewProbe != nil || mc.Faults != nil {
		return simcache.Key{}, false
	}
	e := simcache.NewEncoder()
	e.String("core.Simulate/" + CacheSchemaVersion)
	if tier != FidelityExact {
		e.String("fidelity/" + tier.String())
		e.String("envelope/" + analytic.EnvelopeSchema + "/" + envTag)
	}
	if err := encodeFields(e, normalizeWorkload(w)); err != nil {
		return simcache.Key{}, false
	}
	if err := encodeFields(e, normalizeMemoryConfig(mc)); err != nil {
		return simcache.Key{}, false
	}
	return e.Sum(), true
}

// normalizeWorkload folds the zero-value spellings onto the defaults
// Simulate substitutes, so "zero means default" configurations share a key
// with their explicit spelling. Purely a hit-rate optimization: an
// unnormalized field would only split one logical point across two keys,
// never alias two different points onto one.
func normalizeWorkload(w Workload) Workload {
	if w.Params == (usecase.Params{}) {
		w.Params = usecase.DefaultParams()
	}
	if w.SampleFraction == 0 {
		w.SampleFraction = 1
	}
	w.Load = w.Load.WithDefaults()
	return w
}

// normalizeMemoryConfig mirrors the default substitution memsys.New and
// Simulate perform (see normalizeWorkload). Device resolution runs first:
// a named device and its explicit geometry/timing spelling share a key,
// and the paper baseline's name collapses to the empty string.
func normalizeMemoryConfig(mc MemoryConfig) MemoryConfig {
	mc = mc.applyDevice()
	if mc.Geometry == (dram.Geometry{}) {
		mc.Geometry = dram.DefaultGeometry()
	}
	if mc.Timing == (dram.Timing{}) {
		mc.Timing = dram.DefaultTiming()
	}
	if mc.InterleaveGranularity == 0 {
		mc.InterleaveGranularity = mc.Geometry.BurstBytes()
	}
	if mc.Datasheet == nil {
		ds := power.DefaultDatasheet()
		mc.Datasheet = &ds
	}
	if mc.Interface == nil {
		iface := power.DefaultInterface()
		mc.Interface = &iface
	}
	return mc
}

// encodeFields canonically encodes every field of a struct value,
// dereferencing the pointer fields cacheKey normalized to non-nil and
// encoding the bypass-only fields (already checked nil) as absent.
func encodeFields(e *simcache.Encoder, v any) error {
	rv := reflect.ValueOf(v)
	t := rv.Type()
	e.String(t.Name())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		e.String(f.Name)
		switch {
		case f.Type.Kind() == reflect.Func:
			// NewProbe: non-nil was rejected above; nil encodes as a tag.
			e.Bool(false)
			continue
		case f.Name == "Faults":
			e.Bool(false)
			continue
		}
		if err := e.Value(rv.Field(i).Interface()); err != nil {
			return fmt.Errorf("core: cache key: %s.%s: %w", t.Name(), f.Name, err)
		}
	}
	return nil
}
