package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
)

// metricsRun enables a fresh registry for the test body and restores the
// disabled default afterwards (the instrumented layers are process-wide).
func metricsRun(t *testing.T) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry()
	EnableMetrics(reg)
	t.Cleanup(func() { EnableMetrics(nil) })
	return reg
}

func counterValue(t *testing.T, reg *metrics.Registry, id string) int64 {
	t.Helper()
	e, ok := reg.Snapshot().Find(id)
	if !ok {
		t.Fatalf("metric %q not in snapshot", id)
	}
	return int64(e.Value)
}

// TestSimulateMetrics: an instrumented Simulate counts points, observes
// wall time, and accounts the subsystem pool.
func TestSimulateMetrics(t *testing.T) {
	reg := metricsRun(t)
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(2, 400*units.MHz)
	for i := 0; i < 3; i++ {
		if _, err := Simulate(w, mc); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterValue(t, reg, "sim_points_started_total"); got != 3 {
		t.Errorf("points started = %d, want 3", got)
	}
	if got := counterValue(t, reg, "sim_points_completed_total"); got != 3 {
		t.Errorf("points completed = %d, want 3", got)
	}
	e, ok := reg.Snapshot().Find("sim_point_seconds")
	if !ok || e.Count != 3 || e.Sum <= 0 {
		t.Errorf("point histogram = %+v ok=%v, want 3 observations", e, ok)
	}
	// Pool accounting: builds + revivals together cover all three runs
	// (whether the pool had a warm system from another test or not).
	builds := counterValue(t, reg, "simpool_builds_total")
	revivals := counterValue(t, reg, "simpool_revivals_total")
	if builds+revivals != 3 {
		t.Errorf("pool builds=%d revivals=%d, want sum 3", builds, revivals)
	}
	// The engine meter counted the memsys runs.
	if got := counterValue(t, reg, "memsys_runs_total"); got != 3 {
		t.Errorf("memsys runs = %d, want 3", got)
	}
}

// TestRunIndexedMetrics: the worker pool accounts planned/completed and
// leaves the gauges at zero when idle again.
func TestRunIndexedMetrics(t *testing.T) {
	reg := metricsRun(t)
	_, err := RunIndexed(4, 10, func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "runindexed_points_planned_total"); got != 10 {
		t.Errorf("planned = %d, want 10", got)
	}
	if got := counterValue(t, reg, "runindexed_points_completed_total"); got != 10 {
		t.Errorf("completed = %d, want 10", got)
	}
	if got := counterValue(t, reg, "runindexed_workers_busy"); got != 0 {
		t.Errorf("workers busy after completion = %d, want 0", got)
	}
	if got := counterValue(t, reg, "runindexed_queue_depth"); got != 0 {
		t.Errorf("queue depth after completion = %d, want 0", got)
	}
	if got := counterValue(t, reg, "runindexed_busy_nanos_total"); got <= 0 {
		t.Errorf("busy nanos = %d, want > 0", got)
	}
}

// TestSimCacheMetrics: a cache built under an enabled registry serves its
// counters through /metrics names and keeps the stderr formatter working.
func TestSimCacheMetrics(t *testing.T) {
	reg := metricsRun(t)
	c := NewSimCache()
	EnableCache(c)
	t.Cleanup(DisableCache)

	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(1, 200*units.MHz)
	if _, err := Simulate(w, mc); err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(w, mc); err != nil {
		t.Fatal(err)
	}

	if got := counterValue(t, reg, "simcache_misses_total"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := counterValue(t, reg, `simcache_hits_total{tier="memory"}`); got != 1 {
		t.Errorf("memory hits = %d, want 1", got)
	}
	// The stderr line is a formatter over the same counters.
	st := c.Stats()
	if st.Simulated != 1 || st.MemHits != 1 {
		t.Errorf("Stats() = %+v, want Simulated=1 MemHits=1", st)
	}
	if s := st.String(); !strings.Contains(s, "1 simulated, 1 memory hits") {
		t.Errorf("Stats().String() = %q", s)
	}
}

// TestSimulateSpans: with a span recorder enabled, one cached point
// records cache-lookup plus the compute phases on lane 0.
func TestSimulateSpans(t *testing.T) {
	sp := probe.NewSpans()
	EnableSpans(sp)
	t.Cleanup(func() { EnableSpans(nil) })
	EnableCache(NewSimCache())
	t.Cleanup(DisableCache)

	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	if _, err := Simulate(w, PaperMemory(1, 200*units.MHz)); err != nil {
		t.Fatal(err)
	}
	evs := sp.ChromeEvents()
	var phases []string
	for _, ev := range evs {
		if ev.Ph == "X" {
			phases = append(phases, ev.Name)
		}
	}
	joined := strings.Join(phases, ",")
	for _, want := range []string{"cache-lookup", "generate", "simulate", "report"} {
		if !strings.Contains(joined, want) {
			t.Errorf("phases %v missing %q", phases, want)
		}
	}
	if sp.Lanes() != 1 {
		t.Errorf("lanes = %d, want 1 for a serial run", sp.Lanes())
	}
}

// TestProgressReporter: lines go to the given writer only, and the final
// line reports the planned/completed totals.
func TestProgressReporter(t *testing.T) {
	metricsRun(t)
	var buf bytes.Buffer
	p := StartProgress(&buf, time.Millisecond)
	if p == nil {
		t.Fatal("StartProgress returned nil with metrics enabled")
	}
	if _, err := RunIndexed(2, 6, func(i int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "progress:") {
		t.Fatalf("no progress lines:\n%s", out)
	}
	if !strings.Contains(out, "6/6 points") || !strings.Contains(out, "done in") {
		t.Errorf("final line missing from:\n%s", out)
	}
}

// TestProgressDisabled: without metrics the reporter is inert.
func TestProgressDisabled(t *testing.T) {
	EnableMetrics(nil)
	var buf bytes.Buffer
	p := StartProgress(&buf, time.Millisecond)
	if p != nil {
		t.Fatal("StartProgress must return nil with metrics disabled")
	}
	p.Stop() // nil-safe
	if buf.Len() != 0 {
		t.Errorf("disabled reporter wrote %q", buf.String())
	}
}
