package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/mapping"
	"repro/internal/power"
	"repro/internal/units"
)

// testFraction keeps the in-test calibration affordable; the envelope is
// only valid at this fraction, which the tests rely on to exercise the
// fraction-mismatch fallback.
const testFraction = 0.02

// calibrateForTest runs a real calibration pass over the full paper grid
// at the cheap test fraction, with the process cache enabled so the exact
// answers it produces are reused by the auto-vs-exact comparison.
func calibrateForTest(t *testing.T) *analytic.Envelope {
	t.Helper()
	env, err := Calibrate(context.Background(), CalibrateOptions{SampleFraction: testFraction})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	return env
}

// TestAutoVerdictIdenticalToExact is the tier's contract: across the full
// format x channels x frequency matrix, auto fidelity must produce exactly
// the verdicts the cycle-accurate simulator produces — and actually serve
// a useful share of the grid analytically while doing so.
func TestAutoVerdictIdenticalToExact(t *testing.T) {
	EnableCache(NewSimCache())
	defer DisableCache()
	env := calibrateForTest(t)
	EnableEnvelope(env)
	defer EnableEnvelope(nil)

	analyticServed := 0
	for _, f := range PaperFormats() {
		w, err := WorkloadFor(f)
		if err != nil {
			t.Fatal(err)
		}
		w.SampleFraction = testFraction
		for _, ch := range PaperChannels {
			for _, mhz := range PaperFreqsMHz {
				mc := PaperMemory(ch, units.Frequency(mhz)*units.MHz)
				exact, err := Simulate(w, mc)
				if err != nil {
					t.Fatal(err)
				}
				auto, err := SimulateAuto(w, mc, FidelityAuto)
				if err != nil {
					t.Fatal(err)
				}
				if auto.Verdict != exact.Verdict {
					t.Errorf("%s/%dch/%dMHz: auto verdict %s, exact %s",
						f, ch, mhz, auto.Verdict, exact.Verdict)
				}
				if auto.Estimated {
					analyticServed++
				} else if auto.AccessTime != exact.AccessTime {
					t.Errorf("%s/%dch/%dMHz: fallback result differs from exact", f, ch, mhz)
				}
			}
		}
	}
	if analyticServed == 0 {
		t.Fatalf("auto served no point analytically on its own calibration grid")
	}
	t.Logf("auto served %d points analytically", analyticServed)
}

// TestAutoFallsBackOffEnvelope: every way a point can leave the calibrated
// region must route to the exact simulator (Estimated stays false).
func TestAutoFallsBackOffEnvelope(t *testing.T) {
	env := calibrateForTest(t)
	EnableEnvelope(env)
	defer EnableEnvelope(nil)
	DisableCache()

	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = testFraction
	base := PaperMemory(4, 400*units.MHz)

	// Sanity: the unmodified point is served analytically.
	res, err := SimulateAuto(w, base, FidelityAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimated {
		t.Fatalf("calibrated baseline point was not served analytically")
	}

	cases := []struct {
		name string
		w    Workload
		mc   MemoryConfig
	}{
		{"fraction mismatch", func() Workload { w2 := w; w2.SampleFraction = 0.5; return w2 }(), base},
		{"ablation mux", w, func() MemoryConfig { m := base; m.Mux = mapping.BRC; return m }()},
		{"ablation power-down", w, func() MemoryConfig { m := base; m.DisablePowerDown = true; return m }()},
		{"ablation write buffer", w, func() MemoryConfig { m := base; m.WriteBufferDepth = 32; return m }()},
		{"latency recording", func() Workload { w2 := w; w2.RecordLatency = true; return w2 }(), base},
	}
	for _, c := range cases {
		res, err := SimulateAuto(c.w, c.mc, FidelityAuto)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Estimated {
			t.Errorf("%s: served analytically, want exact fallback", c.name)
		}
	}

	// Frequency outside the calibrated range: an envelope built on a
	// narrower grid must refuse 533 MHz even though the device supports it.
	b := analytic.NewEnvelopeBuilder(testFraction)
	b.Observe("720p30", 4, 266, 0)
	b.Observe("720p30", 4, 400, 0)
	narrow, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	EnableEnvelope(narrow)
	res, err = SimulateAuto(w, PaperMemory(4, 533*units.MHz), FidelityAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimated {
		t.Errorf("off-envelope frequency: served analytically, want exact fallback")
	}
}

// TestAutoFallsBackOnStraddle: when the error interval straddles a verdict
// boundary the envelope cannot prove the verdict, and auto must simulate.
// A hand-built envelope with absurdly wide bounds straddles every boundary.
func TestAutoFallsBackOnStraddle(t *testing.T) {
	DisableCache()
	b := analytic.NewEnvelopeBuilder(testFraction)
	for _, mhz := range PaperFreqsMHz {
		b.Observe("720p30", 4, mhz, 0)
	}
	env, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Widen by hand: sim may be up to 20x slower or 2x faster than the
	// estimate. No verdict is provable under that.
	env.Regions[0].MinErr, env.Regions[0].MaxErr = -0.95, 1.0
	for i := range env.Regions[0].Points {
		env.Regions[0].Points[i].Err = 0
	}
	env.PointSlack = 1.0
	EnableEnvelope(env)
	defer EnableEnvelope(nil)

	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = testFraction
	res, err := SimulateAuto(w, PaperMemory(4, 400*units.MHz), FidelityAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimated {
		t.Fatalf("auto served an estimate under a straddling error interval")
	}
}

// TestFidelityCacheIsolation: an estimate answered at auto fidelity must
// never satisfy a later exact request for the same point — the tiers key
// differently, so the exact path re-simulates.
func TestFidelityCacheIsolation(t *testing.T) {
	cache := NewSimCache()
	EnableCache(cache)
	defer DisableCache()
	env := calibrateForTest(t)
	EnableEnvelope(env)
	defer EnableEnvelope(nil)

	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = testFraction
	mc := PaperMemory(4, 400*units.MHz)

	auto, err := SimulateAuto(w, mc, FidelityAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Estimated {
		t.Skipf("point not served analytically; isolation untestable here")
	}
	exact, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Estimated {
		t.Fatalf("exact request was answered with a cached estimate")
	}
	// And the other direction: the estimate is memoized under its own key,
	// so asking again at auto fidelity returns it unchanged.
	again, err := SimulateAuto(w, mc, FidelityAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Estimated || again.AccessTime != auto.AccessTime {
		t.Fatalf("repeated auto request changed: %+v vs %+v", again, auto)
	}
}

// TestFastTier: fast fidelity always estimates, regardless of envelope
// coverage, and carries the sentinel fields.
func TestFastTier(t *testing.T) {
	DisableCache()
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.37 // no envelope covers this fraction
	res, err := SimulateAuto(w, PaperMemory(2, 333*units.MHz), FidelityFast)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimated {
		t.Fatalf("fast tier result not flagged Estimated")
	}
	if res.InterfacePower != PowerNotComputed {
		t.Errorf("fast tier InterfacePower %v, want PowerNotComputed", res.InterfacePower)
	}
	if res.PerChannel != nil || res.Latency != nil {
		t.Errorf("fast tier populated per-channel/latency fields it did not compute")
	}
}

// TestParseFidelity covers the flag spellings and the error path.
func TestParseFidelity(t *testing.T) {
	for s, want := range map[string]Fidelity{"exact": FidelityExact, "fast": FidelityFast, "auto": FidelityAuto} {
		got, err := ParseFidelity(s)
		if err != nil || got != want {
			t.Errorf("ParseFidelity(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("Fidelity.String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseFidelity("approximate"); err == nil {
		t.Errorf("ParseFidelity accepted an unknown tier")
	}
}

// TestAnalyticNilPowerModel: the sentinel-handling satellite. A nil
// Datasheet/Interface (the PaperMemory spelling) must estimate with the
// default power model instead of dereferencing nil, and match the result
// of spelling the defaults out explicitly.
func TestAnalyticNilPowerModel(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = testFraction
	mc := PaperMemory(2, 400*units.MHz)
	if mc.Datasheet != nil || mc.Interface != nil {
		t.Fatalf("PaperMemory no longer leaves the power model nil; update this test")
	}
	implicit, err := AnalyticResult(w, mc)
	if err != nil {
		t.Fatalf("AnalyticResult with nil power model: %v", err)
	}
	ds := power.DefaultDatasheet()
	iface := power.DefaultInterface()
	mc.Datasheet, mc.Interface = &ds, &iface
	explicit, err := AnalyticResult(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if implicit.TotalPower != explicit.TotalPower {
		t.Errorf("nil power model estimated %v, explicit defaults %v", implicit.TotalPower, explicit.TotalPower)
	}

	// A present-but-invalid datasheet must surface the validation error,
	// not a panic and not a silent default.
	mc.Datasheet = &power.Datasheet{}
	if _, err := AnalyticResult(w, mc); err == nil {
		t.Errorf("AnalyticResult accepted a zero-value datasheet")
	} else if strings.Contains(err.Error(), "panic") {
		t.Errorf("unexpected panic-shaped error: %v", err)
	}
}
