package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/analytic"
	"repro/internal/load"
	"repro/internal/units"
	"repro/internal/usecase"
)

// Fidelity selects how much simulation a point is worth.
//
// FidelityExact always runs the cycle-accurate simulator — the seed
// behavior, and the default everywhere. FidelityFast always answers with
// the closed-form analytic estimate (microseconds instead of
// milliseconds, no verdict guarantee). FidelityAuto serves the analytic
// answer only when the calibrated error envelope proves the verdict could
// not differ from the simulator's, and silently falls back to the exact
// path otherwise — auto sweeps are verdict-identical to exact ones by
// construction.
type Fidelity int

const (
	FidelityExact Fidelity = iota
	FidelityFast
	FidelityAuto
)

// String spells the tier the way the -fidelity flag accepts it.
func (f Fidelity) String() string {
	switch f {
	case FidelityExact:
		return "exact"
	case FidelityFast:
		return "fast"
	case FidelityAuto:
		return "auto"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// ParseFidelity parses a -fidelity flag value.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "exact":
		return FidelityExact, nil
	case "fast":
		return FidelityFast, nil
	case "auto":
		return FidelityAuto, nil
	default:
		return FidelityExact, fmt.Errorf("unknown fidelity %q (want exact, fast or auto)", s)
	}
}

// installedEnvelope overrides the embedded default calibration envelope
// when non-nil (the sweep -envelope flag).
var installedEnvelope atomic.Pointer[analytic.Envelope]

// EnableEnvelope installs the calibration envelope consulted by the auto
// fidelity tier. Passing nil reverts to the envelope embedded at build
// time. The envelope must already be validated (DecodeEnvelope does).
func EnableEnvelope(e *analytic.Envelope) { installedEnvelope.Store(e) }

// EnabledEnvelope returns the envelope the auto tier will consult: the
// installed one, or the embedded default. A nil return (embedded artifact
// unreadable) makes auto equivalent to exact — fail safe, never fast.
func EnabledEnvelope() *analytic.Envelope {
	if e := installedEnvelope.Load(); e != nil {
		return e
	}
	e, _ := analytic.DefaultEnvelope()
	return e
}

// SimulateAuto answers one grid point at the requested fidelity tier. See
// SimulateAutoContext.
func SimulateAuto(w Workload, mc MemoryConfig, tier Fidelity) (Result, error) {
	return SimulateAutoContext(context.Background(), w, mc, tier)
}

// SimulateAutoContext answers one grid point at the requested fidelity
// tier. Exact is Simulate. Fast is AnalyticResult (flagged Estimated,
// cached under a tier-tagged key). Auto serves the analytic answer only
// when the calibrated envelope proves the verdict: with the signed
// relative error e = (est − sim)/sim bounded in [lo, hi], the true access
// time lies in [est/(1+hi), est/(1+lo)]; if both interval endpoints
// classify identically, that verdict is the simulator's verdict, and the
// result carries it (together with the analytic time estimate). Any point
// the envelope cannot prove — straddling a feasibility boundary, off the
// calibrated grid, a different sampling fraction, a non-baseline
// controller configuration, or an observed run (latency recording,
// probes, faults) — falls back to the cycle-accurate path.
func SimulateAutoContext(ctx context.Context, w Workload, mc MemoryConfig, tier Fidelity) (Result, error) {
	switch tier {
	case FidelityFast:
		res, err := AnalyticResult(w, mc)
		if err != nil {
			return Result{}, err
		}
		countFidelity("fast")
		if c := EnabledCache(); c != nil {
			return c.memoEstimate(ctx, w, mc, tier, "", res)
		}
		return res, nil
	case FidelityAuto:
		env := EnabledEnvelope()
		if res, ok := autoEstimate(w, mc, env); ok {
			countFidelity("auto_analytic")
			if c := EnabledCache(); c != nil {
				return c.memoEstimate(ctx, w, mc, tier, env.Fingerprint(), res)
			}
			return res, nil
		}
		countFidelity("auto_exact")
		return SimulateContext(ctx, w, mc)
	default:
		countFidelity("exact")
		return SimulateContext(ctx, w, mc)
	}
}

// SimulateTier is SimulateAutoContext through this specific cache (the
// simulation service owns its cache instance rather than the process-wide
// one) and reports the cache outcome for the X-Sim-Cache header.
func (c *SimCache) SimulateTier(ctx context.Context, w Workload, mc MemoryConfig, tier Fidelity) (Result, CacheOutcome, error) {
	switch tier {
	case FidelityFast:
		res, err := AnalyticResult(w, mc)
		if err != nil {
			return Result{}, OutcomeBypass, err
		}
		countFidelity("fast")
		return c.memoEstimateOutcome(ctx, w, mc, tier, "", res)
	case FidelityAuto:
		env := EnabledEnvelope()
		if res, ok := autoEstimate(w, mc, env); ok {
			countFidelity("auto_analytic")
			return c.memoEstimateOutcome(ctx, w, mc, tier, env.Fingerprint(), res)
		}
		countFidelity("auto_exact")
		return c.simulate(ctx, w, mc, nil)
	default:
		countFidelity("exact")
		return c.simulate(ctx, w, mc, nil)
	}
}

// autoEstimate decides whether the envelope proves this point's verdict
// and, when it does, returns the analytic result carrying the proven
// verdict. The verdict is classified from the error-bounded access-time
// interval, not from the point estimate — near a boundary the interval
// verdict can differ from Classify(est), and it is the interval one that
// matches the simulator.
func autoEstimate(w Workload, mc MemoryConfig, env *analytic.Envelope) (Result, bool) {
	if env == nil {
		return Result{}, false
	}
	// The envelope's identity must be the paper baseline this build
	// calibrates (empty policy and device). An artifact stamped with any
	// other identity bounds a different simulator configuration, so its
	// error intervals prove nothing here — hard-fall back to exact.
	if env.Policy != "" || env.Device != "" {
		return Result{}, false
	}
	// Observed runs exist for their event streams and per-frame payloads;
	// they always simulate (same rule as the cache bypass).
	if w.RecordLatency || mc.NewProbe != nil || mc.Faults != nil {
		return Result{}, false
	}
	if !baselinePoint(w, mc) {
		return Result{}, false
	}
	mhz := float64(mc.Freq) / 1e6
	if mhz <= 0 || mhz != math.Trunc(mhz) {
		return Result{}, false
	}
	fraction := w.SampleFraction
	if fraction == 0 {
		fraction = 1
	}
	lo, hi, ok := env.Bound(w.Profile.Format.Name, mc.Channels, int(mhz), fraction)
	if !ok || 1+lo <= 0 {
		return Result{}, false
	}
	res, err := AnalyticResult(w, mc)
	if err != nil {
		// Let the exact path surface the configuration error.
		return Result{}, false
	}
	est := float64(res.AccessTime)
	if est <= 0 {
		return Result{}, false
	}
	// e ∈ [lo, hi] and sim = est/(1+e), decreasing in e.
	simLo := units.Duration(est / (1 + hi))
	simHi := units.Duration(est / (1 + lo))
	vLo := Classify(simLo, res.FramePeriod)
	vHi := Classify(simHi, res.FramePeriod)
	if vLo != vHi {
		return Result{}, false
	}
	res.Verdict = vLo
	return res, true
}

// baselinePoint reports whether (w, mc) is, after default normalization,
// the paper's baseline configuration the envelope was calibrated against.
// Ablation spellings (device/mux/policy/power-down/write-buffer/queue/
// refresh/precharge/interleave/geometry/timing overrides, non-default
// use-case params or load granularities) change access time in ways the
// envelope does not bound, so they are never served analytically. The power model
// (Datasheet/Interface) does not influence access time and is not
// constrained.
func baselinePoint(w Workload, mc MemoryConfig) bool {
	nw := normalizeWorkload(w)
	if nw.Params != usecase.DefaultParams() || nw.Load != (load.Config{}).WithDefaults() {
		return false
	}
	nmc := normalizeMemoryConfig(mc)
	base := normalizeMemoryConfig(PaperMemory(mc.Channels, mc.Freq))
	return nmc.Device == base.Device &&
		nmc.Mux == base.Mux &&
		nmc.Policy == base.Policy &&
		!nmc.DisablePowerDown &&
		nmc.WriteBufferDepth == base.WriteBufferDepth &&
		nmc.QueueDepth == base.QueueDepth &&
		nmc.RefreshPostpone == base.RefreshPostpone &&
		!nmc.PrechargeOnIdle &&
		nmc.Geometry == base.Geometry &&
		nmc.Timing == base.Timing &&
		nmc.InterleaveGranularity == base.InterleaveGranularity
}

// countFidelity counts one point served at a fidelity tier; auto splits
// into auto_analytic (envelope-proven estimate) and auto_exact (fallback).
func countFidelity(tier string) {
	if m := activeMeter.Load(); m != nil {
		switch tier {
		case "exact":
			m.fidelityExact.Inc()
		case "fast":
			m.fidelityFast.Inc()
		case "auto_analytic":
			m.fidelityAutoAnalytic.Inc()
		case "auto_exact":
			m.fidelityAutoExact.Inc()
		}
	}
}
