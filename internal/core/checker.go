package core

import (
	"repro/internal/check"
	"repro/internal/dram"
	"repro/internal/probe"
)

// AttachChecker wires a protocol invariant checker (see internal/check)
// into the configuration as an additional per-channel probe sink, chained
// after any sink already installed. The checker verifies every DRAM
// command the simulated controllers emit against the device's timing
// constraints; inspect the returned Set after the run (Err is non-nil on
// any violation). The -check flag of the CLI tools goes through here.
//
// Attaching a checker makes the run observed, which disables the coalesced
// dispatch fast path — results are bit-identical, simulation is slower.
func AttachChecker(mc *MemoryConfig) (*check.Set, error) {
	// The checker must see the same geometry and timing the run will use,
	// so the datasheet (Device) is applied before the fallbacks.
	eff := mc.applyDevice()
	geom := eff.Geometry
	if geom == (dram.Geometry{}) {
		geom = dram.DefaultGeometry()
	}
	timing := eff.Timing
	if timing == (dram.Timing{}) {
		timing = dram.DefaultTiming()
	}
	speed, err := dram.Resolve(geom, timing, mc.Freq)
	if err != nil {
		return nil, err
	}
	set := check.New(check.Options{
		Speed:           speed,
		Policy:          mc.Policy,
		RefreshPostpone: mc.RefreshPostpone,
	})
	prev := mc.NewProbe
	mc.NewProbe = func(ch int) probe.Sink {
		if prev == nil {
			return set.Channel(ch)
		}
		return probe.Multi(prev(ch), set.Channel(ch))
	}
	return set, nil
}
