package core

import (
	"fmt"

	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/usecase"
)

// StageResult attributes one pipeline stage's share of the frame.
type StageResult struct {
	Name string
	// Bytes is the stage's payload per frame.
	Bytes int64
	// Time is the stage's share of the frame access time.
	Time units.Duration
	// Energy is the stage's incremental energy (burst + activate; the
	// window-proportional background, refresh and interface shares are
	// reported separately on the whole-frame Result).
	Energy units.Energy
	// Efficiency is the stage's achieved fraction of peak bandwidth.
	Efficiency float64
}

// SimulateStages runs one frame stage by stage on a single memory system,
// attributing access time and incremental energy per pipeline stage — the
// per-row view of Table I, but measured on the simulated memory rather than
// counted from the traffic equations.
//
// The stages run back to back on the same controllers (bank and bus state
// carries over), so the per-stage times sum to the whole-frame access time.
func SimulateStages(w Workload, mc MemoryConfig) ([]StageResult, error) {
	if w.Params == (usecase.Params{}) {
		w.Params = usecase.DefaultParams()
	}
	fraction := w.SampleFraction
	if fraction == 0 {
		fraction = 1
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("core: sample fraction %v outside (0,1]", fraction)
	}

	ucLoad, err := usecase.New(w.Profile, w.Params)
	if err != nil {
		return nil, err
	}
	sys, err := memsys.New(mc.memsysConfig())
	if err != nil {
		return nil, err
	}
	gen, err := load.New(ucLoad, mc.Channels, sys.Speed().Geometry, w.Load)
	if err != nil {
		return nil, err
	}
	speed := sys.Speed()
	ds := power.DefaultDatasheet()
	if mc.Datasheet != nil {
		ds = *mc.Datasheet
	}
	iface := power.DefaultInterface()
	if mc.Interface != nil {
		iface = *mc.Interface
	}
	pm, err := power.NewModel(ds, iface, speed)
	if err != nil {
		return nil, err
	}

	scale := 1 / fraction
	var results []StageResult
	var prevCycles int64
	prevEnergy := units.Energy(0)
	cumEnergy := func() (units.Energy, error) {
		var sum units.Energy
		for _, ch := range sys.Channels() {
			st := ch.Stats()
			// Incremental components only: bursts and activates.
			b, err := pm.ChannelEnergy(st, st.BusyCycles, true)
			if err != nil {
				return 0, err
			}
			sum += b.ReadWrite + b.Activate
		}
		return sum, nil
	}

	for i := 0; i < gen.StageCount(); i++ {
		src, err := gen.StageFrame(i, fraction)
		if err != nil {
			return nil, err
		}
		run, err := sys.Run(src)
		if err != nil {
			return nil, err
		}
		cycles := run.Cycles
		delta := cycles - prevCycles
		if delta < 0 {
			delta = 0
		}
		prevCycles = cycles

		total, err := cumEnergy()
		if err != nil {
			return nil, err
		}
		stageEnergy := total - prevEnergy
		prevEnergy = total

		time := speed.CycleDuration(int64(float64(delta) * scale))
		bytes := int64(float64(run.BytesRead+run.BytesWritten) * scale)
		sr := StageResult{
			Name:   gen.StageName(i),
			Bytes:  bytes,
			Time:   time,
			Energy: units.Energy(float64(stageEnergy) * scale),
		}
		if time > 0 && sys.PeakBandwidth() > 0 {
			sr.Efficiency = float64(bytes) / time.Seconds() / float64(sys.PeakBandwidth())
		}
		results = append(results, sr)
	}
	return results, nil
}
