package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/power"
	"repro/internal/simcache"
	"repro/internal/units"
	"repro/internal/usecase"
)

// cacheTestWorkload returns a cheap, fully-normalized workload/config pair:
// every defaultable field is spelled out, so perturbing any leaf cannot
// collide with a normalization fold.
func cacheTestWorkload(t *testing.T) (Workload, MemoryConfig) {
	t.Helper()
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	w = normalizeWorkload(w)
	mc := normalizeMemoryConfig(PaperMemory(2, 400*units.MHz))
	return w, mc
}

func TestCacheKeyNormalizesDefaultSpellings(t *testing.T) {
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	mc := PaperMemory(4, 400*units.MHz)
	implicit, ok := cacheKey(w, mc)
	if !ok {
		t.Fatal("implicit spelling not cacheable")
	}

	// The same point with every default written out.
	we := w
	we.Params = usecase.DefaultParams()
	we.SampleFraction = 1
	we.Load = load.DefaultConfig()
	mce := mc
	mce.Geometry = dram.DefaultGeometry()
	mce.Timing = dram.DefaultTiming()
	mce.InterleaveGranularity = mce.Geometry.BurstBytes()
	ds := power.DefaultDatasheet()
	mce.Datasheet = &ds
	iface := power.DefaultInterface()
	mce.Interface = &iface
	explicit, ok := cacheKey(we, mce)
	if !ok {
		t.Fatal("explicit spelling not cacheable")
	}
	if implicit != explicit {
		t.Error("zero-value and explicit-default spellings produced different keys")
	}
}

// keyMutation perturbs one leaf of the (Workload, MemoryConfig) pair.
type keyMutation struct {
	path  string
	apply func(w *Workload, mc *MemoryConfig)
}

// collectMutations walks a value by reflection and returns one mutation per
// leaf: scalars are nudged, nil pointers and funcs are set non-nil. Pointer
// chains already non-nil in the base are walked through, so the datasheet
// and interface contents are perturbed field by field.
func collectMutations(v reflect.Value, path string, locate func(w *Workload, mc *MemoryConfig) reflect.Value) []keyMutation {
	at := func(step func(reflect.Value) reflect.Value) func(w *Workload, mc *MemoryConfig) reflect.Value {
		return func(w *Workload, mc *MemoryConfig) reflect.Value { return step(locate(w, mc)) }
	}
	switch v.Kind() {
	case reflect.Struct:
		var out []keyMutation
		for i := 0; i < v.NumField(); i++ {
			i := i
			f := v.Type().Field(i)
			out = append(out, collectMutations(v.Field(i), path+"."+f.Name,
				at(func(rv reflect.Value) reflect.Value { return rv.Field(i) }))...)
		}
		return out
	case reflect.Pointer:
		if v.IsNil() {
			elem := v.Type().Elem()
			return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
				locate(w, mc).Set(reflect.New(elem))
			}}}
		}
		return collectMutations(v.Elem(), path,
			at(func(rv reflect.Value) reflect.Value { return rv.Elem() }))
	case reflect.Func:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.Set(reflect.MakeFunc(fv.Type(), func([]reflect.Value) []reflect.Value {
				panic("never called")
			}))
		}}}
	case reflect.Bool:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.SetBool(!fv.Bool())
		}}}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.SetInt(fv.Int() + 1)
		}}}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.SetUint(fv.Uint() + 1)
		}}}
	case reflect.Float32, reflect.Float64:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.SetFloat(fv.Float() + 0.5)
		}}}
	case reflect.String:
		return []keyMutation{{path, func(w *Workload, mc *MemoryConfig) {
			fv := locate(w, mc)
			fv.SetString(fv.String() + "x")
		}}}
	default:
		return []keyMutation{{path + " (UNSUPPORTED KIND " + v.Kind().String() + ")", nil}}
	}
}

// cloneConfigs deep-copies the pair so a mutation through the datasheet or
// interface pointer cannot corrupt the base.
func cloneConfigs(w Workload, mc MemoryConfig) (Workload, MemoryConfig) {
	if mc.Datasheet != nil {
		d := *mc.Datasheet
		mc.Datasheet = &d
	}
	if mc.Interface != nil {
		f := *mc.Interface
		mc.Interface = &f
	}
	return w, mc
}

// TestCacheKeyFieldCoverage is the cache analogue of the controller Reset
// equivalence test: every leaf reachable from (Workload, MemoryConfig) is
// perturbed by reflection and must either move the key to a value no other
// leaf produces, or sit on the pinned bypass list (the observed-run fields
// that make a configuration uncacheable). A new struct field is therefore
// covered automatically — and a new field the canonical encoder cannot fold
// (a func, map or channel) fails this test until it is handled explicitly.
func TestCacheKeyFieldCoverage(t *testing.T) {
	w, mc := cacheTestWorkload(t)
	base, ok := cacheKey(w, mc)
	if !ok {
		t.Fatal("base configuration not cacheable")
	}

	bypass := map[string]bool{
		"Workload.RecordLatency": true,
		"MemoryConfig.NewProbe":  true,
		"MemoryConfig.Faults":    true,
	}

	muts := collectMutations(reflect.ValueOf(w), "Workload",
		func(w *Workload, mc *MemoryConfig) reflect.Value { return reflect.ValueOf(w).Elem() })
	muts = append(muts, collectMutations(reflect.ValueOf(mc), "MemoryConfig",
		func(w *Workload, mc *MemoryConfig) reflect.Value { return reflect.ValueOf(mc).Elem() })...)

	if len(muts) < 40 {
		t.Fatalf("only %d leaves found — the reflection walk is broken", len(muts))
	}
	seen := map[simcache.Key]string{base: "base"}
	for _, m := range muts {
		if m.apply == nil {
			t.Errorf("%s: leaf kind the mutation walker does not support", m.path)
			continue
		}
		wc, mcc := cloneConfigs(w, mc)
		m.apply(&wc, &mcc)
		key, cacheable := cacheKey(wc, mcc)
		if bypass[m.path] {
			if cacheable {
				t.Errorf("%s: observed-run field did not make the configuration uncacheable", m.path)
			}
			continue
		}
		if !cacheable {
			t.Errorf("%s: perturbation made the configuration uncacheable — new field needs explicit key handling", m.path)
			continue
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s: key collides with %s — field not folded into the cache key", m.path, prev)
			continue
		}
		seen[key] = m.path
	}
}

func TestCacheServesIdenticalResults(t *testing.T) {
	w, mc := cacheTestWorkload(t)
	c := NewSimCache()
	r1, err := c.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("cache hit returned a different Result")
	}
	uncached, err := simulateUncached(context.Background(), w, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, uncached) {
		t.Error("cached Result differs from uncached simulation")
	}
	st := c.Stats()
	if st.Simulated != 1 || st.MemHits != 1 || st.Bypassed != 0 {
		t.Errorf("stats = %+v, want 1 simulated + 1 memory hit", st)
	}

	// A caller mutating its PerChannel slice must not poison the cache.
	if len(r2.PerChannel) == 0 {
		t.Fatal("no per-channel breakdowns")
	}
	r2.PerChannel[0] = power.Breakdown{}
	r3, err := c.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3, r1) {
		t.Error("mutating a returned PerChannel slice corrupted the cached entry")
	}
}

func TestCacheBypassesObservedRuns(t *testing.T) {
	w, mc := cacheTestWorkload(t)
	c := NewSimCache()

	lat := w
	lat.RecordLatency = true
	if _, err := c.Simulate(lat, mc); err != nil {
		t.Fatal(err)
	}
	checked := mc
	if _, err := AttachChecker(&checked); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(w, checked); err != nil {
		t.Fatal(err)
	}
	faulty := mc
	faulty.Faults = &fault.Plan{}
	if _, err := c.Simulate(w, faulty); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Bypassed != 3 || st.Simulated != 0 || st.MemHits != 0 {
		t.Errorf("stats = %+v, want 3 bypassed and nothing cached", st)
	}
}

func TestSimulateUsesEnabledCache(t *testing.T) {
	w, mc := cacheTestWorkload(t)
	c := NewSimCache()
	EnableCache(c)
	defer DisableCache()

	want, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	// Sixteen identical points across concurrent workers simulate once.
	results, err := RunIndexed(8, 16, func(i int) (Result, error) {
		return Simulate(w, mc)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("point %d diverged from the cached result", i)
		}
	}
	st := c.Stats()
	if st.Simulated != 1 || st.MemHits != 16 {
		t.Errorf("stats = %+v, want exactly one simulation and 16 hits", st)
	}

	DisableCache()
	if EnabledCache() != nil {
		t.Fatal("DisableCache left a cache installed")
	}
	after, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Simulated != 1 {
		t.Error("Simulate touched the cache after DisableCache")
	}
	if !reflect.DeepEqual(after, want) {
		t.Error("uncached Simulate diverged from the cached result")
	}
}

func TestDiskCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	w, mc := cacheTestWorkload(t)

	c1, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Simulated != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A second instance (a later process) answers from disk, exactly.
	c2, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Simulated != 0 {
		t.Errorf("stats = %+v, want a pure disk hit", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("disk round trip changed the Result")
	}
}

func TestDiskCacheSchemaVersioning(t *testing.T) {
	dir := t.TempDir()
	w, mc := cacheTestWorkload(t)
	c, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(w, mc); err != nil {
		t.Fatal(err)
	}
	// Entries land under the current schema version...
	entries, err := filepath.Glob(filepath.Join(dir, CacheSchemaVersion, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries under %s: %v, %v", CacheSchemaVersion, entries, err)
	}
	// ...and a bumped schema version sees none of them.
	next, err := simcache.NewDisk(dir, CacheSchemaVersion+"-next")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := next.Len(); err != nil || n != 0 {
		t.Errorf("bumped schema version inherited %d entries (%v)", n, err)
	}
}

func TestDiskCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	w, mc := cacheTestWorkload(t)
	c1, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, CacheSchemaVersion, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries: %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Simulated != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want recompute on a corrupt entry", st)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recomputed Result differs")
	}
	// The recompute overwrote the corrupt entry; a third instance hits.
	c3, err := NewDiskSimCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Simulate(w, mc); err != nil {
		t.Fatal(err)
	}
	if st := c3.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want the repaired entry to hit", st)
	}
}
