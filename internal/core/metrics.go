package core

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/probe"
)

// coreMeter bundles the registered instruments of the simulation layer.
// It exists (and is consulted) only when a run enabled metrics, so the
// disabled path costs one atomic load and an untaken branch — the same
// cost model as the probe layer.
type coreMeter struct {
	reg *metrics.Registry

	// Simulate-level accounting.
	pointsStarted   *metrics.Counter
	pointsCompleted *metrics.Counter
	pointSeconds    *metrics.Histogram

	// RunIndexed worker-pool accounting: planned vs completed drive the
	// -progress ETA; busy/queue-depth gauges and busy time are the data
	// needed to diagnose parallel-engine scaling.
	indexedPlanned   *metrics.Counter
	indexedCompleted *metrics.Counter
	workersBusy      *metrics.Gauge
	queueDepth       *metrics.Gauge
	busyNanos        *metrics.Counter

	// Subsystem pool reuse.
	poolRevivals *metrics.Counter
	poolBuilds   *metrics.Counter

	// Points served per fidelity tier; auto splits into envelope-proven
	// analytic answers and cycle-accurate fallbacks.
	fidelityExact        *metrics.Counter
	fidelityFast         *metrics.Counter
	fidelityAutoAnalytic *metrics.Counter
	fidelityAutoExact    *metrics.Counter

	// Degraded-mode fault/QoS accounting.
	framesSimulated *metrics.Counter
	framesDropped   *metrics.Counter
	framesLate      *metrics.Counter
	deadlineMisses  *metrics.Counter
	degradeSteps    *metrics.Counter
	faultInjections *metrics.Counter
	faultRetries    *metrics.Counter
}

func newCoreMeter(r *metrics.Registry) *coreMeter {
	return &coreMeter{
		reg:              r,
		pointsStarted:    r.Counter("sim_points_started_total"),
		pointsCompleted:  r.Counter("sim_points_completed_total"),
		pointSeconds:     r.Histogram("sim_point_seconds", metrics.DurationBuckets),
		indexedPlanned:   r.Counter("runindexed_points_planned_total"),
		indexedCompleted: r.Counter("runindexed_points_completed_total"),
		workersBusy:      r.Gauge("runindexed_workers_busy"),
		queueDepth:       r.Gauge("runindexed_queue_depth"),
		busyNanos:        r.Counter("runindexed_busy_nanos_total"),
		poolRevivals:     r.Counter("simpool_revivals_total"),
		poolBuilds:       r.Counter("simpool_builds_total"),
		fidelityExact:    r.Counter("sim_fidelity_points_total", metrics.Label{Key: "tier", Value: "exact"}),
		fidelityFast:     r.Counter("sim_fidelity_points_total", metrics.Label{Key: "tier", Value: "fast"}),
		fidelityAutoAnalytic: r.Counter("sim_fidelity_points_total",
			metrics.Label{Key: "tier", Value: "auto_analytic"}),
		fidelityAutoExact: r.Counter("sim_fidelity_points_total",
			metrics.Label{Key: "tier", Value: "auto_exact"}),
		framesSimulated: r.Counter("qos_frames_simulated_total"),
		framesDropped:   r.Counter("qos_frames_dropped_total"),
		framesLate:      r.Counter("qos_frames_late_total"),
		deadlineMisses:  r.Counter("qos_deadline_misses_total"),
		degradeSteps:    r.Counter("qos_degrade_steps_total"),
		faultInjections: r.Counter("fault_injections_total"),
		faultRetries:    r.Counter("fault_retries_total"),
	}
}

// activeMeter is the process-wide meter, nil when metrics are disabled.
var activeMeter atomic.Pointer[coreMeter]

// EnableMetrics installs the run's metrics registry: the simulation layer
// (Simulate, RunIndexed, the subsystem pool, degraded-mode QoS) and the
// memsys engine register their instruments in it and start counting.
// Passing nil disables metrics again. Enable before constructing a
// SimCache so the cache registers its counters too.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		activeMeter.Store(nil)
	} else {
		activeMeter.Store(newCoreMeter(r))
	}
	memsys.EnableMetrics(r)
}

// MetricsRegistry returns the enabled registry, or nil.
func MetricsRegistry() *metrics.Registry {
	if m := activeMeter.Load(); m != nil {
		return m.reg
	}
	return nil
}

// activeSpans is the process-wide phase-span recorder, nil when disabled.
var activeSpans atomic.Pointer[probe.Spans]

// EnableSpans installs the run-level phase-span recorder consulted by
// Simulate; nil disables. The recorder is merged into the Chrome trace by
// probe.Observer.SetSpans.
func EnableSpans(s *probe.Spans) {
	if s == nil {
		activeSpans.Store(nil)
		return
	}
	activeSpans.Store(s)
}

// EnabledSpans returns the installed recorder, or nil.
func EnabledSpans() *probe.Spans { return activeSpans.Load() }

// Progress is a periodic stderr reporter over the enabled registry:
// completed/total points, cache-hit rate and estimated time remaining.
// It writes only to the given writer, never stdout, so enabling it keeps
// command output byte-identical.
type Progress struct {
	w        io.Writer
	interval time.Duration
	start    time.Time
	stop     chan struct{}
	done     chan struct{}
}

// StartProgress begins reporting every interval. Requires EnableMetrics
// first; with metrics disabled it returns a nil (inert) reporter.
func StartProgress(w io.Writer, interval time.Duration) *Progress {
	m := activeMeter.Load()
	if m == nil || interval <= 0 {
		return nil
	}
	p := &Progress{w: w, interval: interval, start: time.Now(),
		stop: make(chan struct{}), done: make(chan struct{})}
	go p.run(m)
	return p
}

func (p *Progress) run(m *coreMeter) {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			fmt.Fprintln(p.w, p.line(m, false))
		}
	}
}

// line renders one progress report. final switches to the completed form.
func (p *Progress) line(m *coreMeter, final bool) string {
	done := m.indexedCompleted.Value()
	total := m.indexedPlanned.Value()
	elapsed := time.Since(p.start)
	s := fmt.Sprintf("progress: %d/%d points", done, total)
	if total > 0 {
		s += fmt.Sprintf(" (%.0f%%)", 100*float64(done)/float64(total))
	}
	if c := EnabledCache(); c != nil {
		s += fmt.Sprintf(", cache hit %.0f%%", 100*c.Stats().HitRate())
	}
	if final {
		return s + fmt.Sprintf(", done in %.1fs", elapsed.Seconds())
	}
	if done > 0 && elapsed > 0 {
		rate := float64(done) / elapsed.Seconds()
		s += fmt.Sprintf(", %.1f points/s", rate)
		if left := total - done; left > 0 && rate > 0 {
			s += fmt.Sprintf(", eta %.0fs", float64(left)/rate)
		}
	}
	return s
}

// Stop halts the ticker and emits a final summary line. Nil-safe.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
	if m := activeMeter.Load(); m != nil {
		fmt.Fprintln(p.w, p.line(m, true))
	}
}
