package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/probe"
)

// dropPlan returns a plan failing channel ch halfway through the first
// (fraction-scaled) frame slot of the format.
func dropPlan(t *testing.T, format string, ch int, fraction float64) *fault.Plan {
	t.Helper()
	w, err := WorkloadFor(format)
	if err != nil {
		t.Fatal(err)
	}
	period := w.Profile.Format.FramePeriod().Cycles(PaperFrequency)
	return &fault.Plan{
		Seed:        1,
		DropChannel: ch,
		DropAtCycle: int64(float64(period)*fraction) / 2,
	}
}

func TestDegradedDropoutCompletes(t *testing.T) {
	// Acceptance scenario: 1080p30 on four channels, one channel dropped
	// mid-frame. Three survivors still carry the load, so the run must
	// complete with a clean QoS report rather than an error.
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(4, PaperFrequency)
	mc.Faults = dropPlan(t, "1080p30", 1, w.SampleFraction)
	res, err := SimulateDegraded(w, mc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS == nil {
		t.Fatal("no QoS report")
	}
	if res.QoS.FailedChannel != 1 {
		t.Errorf("FailedChannel = %d, want 1", res.QoS.FailedChannel)
	}
	if res.QoS.DropClock < mc.Faults.DropAtCycle {
		t.Errorf("DropClock = %d before plan cycle %d", res.QoS.DropClock, mc.Faults.DropAtCycle)
	}
	if len(res.PerFrame) != 4 {
		t.Errorf("recorded %d frames, want 4", len(res.PerFrame))
	}
	if res.QoS.DeadlineMisses != 0 || res.Verdict != Feasible {
		t.Errorf("three survivors should keep 1080p30 feasible: %d misses, verdict %v",
			res.QoS.DeadlineMisses, res.Verdict)
	}
	if got := res.QoS.Report(); got == "" {
		t.Error("empty QoS report")
	}
}

func TestDegradedSerialMatchesParallel(t *testing.T) {
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	plan := dropPlan(t, "1080p30", 0, w.SampleFraction)
	plan.ReadErrorRate = 0.01
	plan.StallRate = 0.005

	var results [2]DegradedResult
	for i, serial := range []bool{true, false} {
		mc := PaperMemory(4, PaperFrequency)
		p := *plan
		mc.Faults = &p
		mc.Serial = serial
		res, err := SimulateDegraded(w, mc, 4)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if a, b := results[0].QoS.Report(), results[1].QoS.Report(); a != b {
		t.Errorf("QoS reports differ serial vs parallel:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	if !reflect.DeepEqual(results[0].PerFrame, results[1].PerFrame) {
		t.Errorf("per-frame records diverged:\nserial:   %+v\nparallel: %+v",
			results[0].PerFrame, results[1].PerFrame)
	}
	if !reflect.DeepEqual(results[0].Totals, results[1].Totals) {
		t.Errorf("aggregate stats diverged")
	}
}

func TestDegradationLadderEngagesAndRecovers(t *testing.T) {
	// 1080p30 needs ~4.3 GB/s; one surviving channel peaks at 3.2 GB/s,
	// so after the dropout every executed frame misses until the ladder
	// has shed enough load (half rate, stabilization, resolution).
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(2, PaperFrequency)
	mc.Faults = dropPlan(t, "1080p30", 1, w.SampleFraction)
	res, err := SimulateDegraded(w, mc, 12)
	if err != nil {
		t.Fatal(err)
	}
	q := res.QoS
	if q.DeadlineMisses == 0 {
		t.Fatal("one survivor carried 1080p30 without missing — scenario lost its point")
	}
	if len(q.Steps) == 0 || res.FinalLevel == levelFull {
		t.Fatalf("ladder never engaged: %+v", q)
	}
	if q.DroppedFrames == 0 {
		t.Error("half-rate level dropped no frames")
	}
	if !q.Recovered() {
		t.Errorf("run never recovered: %s", q.Report())
	}
	if q.TimeToRecoverFrames() <= 0 {
		t.Errorf("TimeToRecoverFrames = %d, want > 0", q.TimeToRecoverFrames())
	}
	// Degradation must be monotonic and recorded per frame.
	level := 0
	for _, fr := range res.PerFrame {
		if fr.Level < level {
			t.Errorf("frame %d: level went back up %d -> %d", fr.Frame, level, fr.Level)
		}
		level = fr.Level
	}
	if res.FinalLevel >= levelStepDown && res.FinalFormat == w.Profile.Format {
		t.Errorf("resolution step announced but format unchanged (%v)", res.FinalFormat)
	}
}

func TestDegradedRunEmitsFaultEvents(t *testing.T) {
	w, err := WorkloadFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(2, PaperFrequency)
	mc.Serial = true // recorders share no locks; keep emission single-threaded
	mc.Faults = dropPlan(t, "1080p30", 1, w.SampleFraction)
	recorders := make([]*probe.Recorder, 2)
	mc.NewProbe = func(ch int) probe.Sink {
		recorders[ch] = &probe.Recorder{}
		return recorders[ch]
	}
	res, err := SimulateDegraded(w, mc, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoS.Recovered() {
		t.Fatalf("scenario did not recover: %s", res.QoS.Report())
	}
	counts := map[probe.Kind]int{}
	for _, r := range recorders {
		for _, ev := range r.Events {
			counts[ev.Kind]++
		}
	}
	// Dropout and the ladder transitions must be visible on every
	// observed channel's track (2 channels each).
	if counts[probe.KindChannelFail] != 2 {
		t.Errorf("channel-fail events = %d, want 2", counts[probe.KindChannelFail])
	}
	if counts[probe.KindDegrade] < 2 {
		t.Errorf("degrade events = %d, want >= 2", counts[probe.KindDegrade])
	}
	if counts[probe.KindRecover] != 2 {
		t.Errorf("recover events = %d, want 2", counts[probe.KindRecover])
	}
}

func TestSimulateReportsQoSCounters(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.05
	mc := PaperMemory(2, PaperFrequency)
	mc.Faults = &fault.Plan{Seed: 3, DerateAtCycle: 100, ReadErrorRate: 0.01, StallRate: 0.01}
	res, err := Simulate(w, mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS == nil {
		t.Fatal("no QoS on faulty Simulate")
	}
	c := res.QoS.Counters
	if c.Derates != 2 {
		t.Errorf("derates = %d, want one per channel", c.Derates)
	}
	if c.ReadErrors == 0 || c.Retries == 0 {
		t.Errorf("no read-error traffic injected: %+v", c)
	}
	if c.Stalls == 0 || c.StallCycles == 0 {
		t.Errorf("no stalls injected: %+v", c)
	}
	// A fault-free config must not attach a QoS report.
	clean, err := Simulate(w, PaperMemory(2, PaperFrequency))
	if err != nil {
		t.Fatal(err)
	}
	if clean.QoS != nil {
		t.Error("fault-free run attached a QoS report")
	}
}
