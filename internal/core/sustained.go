package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/usecase"
)

// SustainedResult extends Result for a paced multi-frame run: instead of
// asking "how fast can one frame's accesses complete?" (the saturated
// access-time experiments of the figures), it runs the recorder the way a
// device does — each frame's traffic spread across its frame slot, the
// memory powering down in every gap — and reports whether the memory keeps
// up and what the realistic average power is.
type SustainedResult struct {
	Result
	// Frames is the number of simulated frame slots.
	Frames int
	// Lateness is how far past the last frame slot the final memory
	// access completed; <= 0 means the memory kept up.
	Lateness units.Duration
	// PowerDownResidency is the mean fraction of the run each channel
	// spent in power-down (in-run gaps plus trailing slack).
	PowerDownResidency float64
	// PowerDownExits counts power-down wakeups across all channels —
	// each costs tXP of latency.
	PowerDownExits int64
}

// SimulateSustained runs frames consecutive paced frame slots of the
// workload. Traffic is spread over (1-ProcessingMargin) of each slot,
// modeling the processing share the paper reserves.
func SimulateSustained(w Workload, mc MemoryConfig, frames int) (SustainedResult, error) {
	if frames <= 0 {
		return SustainedResult{}, fmt.Errorf("core: %d frames", frames)
	}
	if err := mc.Validate(); err != nil {
		return SustainedResult{}, err
	}
	if err := w.Validate(); err != nil {
		return SustainedResult{}, err
	}
	if w.Params == (usecase.Params{}) {
		w.Params = usecase.DefaultParams()
	}
	fraction := w.SampleFraction
	if fraction == 0 {
		fraction = 1
	}

	ucLoad, err := usecase.New(w.Profile, w.Params)
	if err != nil {
		return SustainedResult{}, err
	}
	sys, err := memsys.New(mc.memsysConfig())
	if err != nil {
		return SustainedResult{}, err
	}
	gen, err := load.New(ucLoad, mc.Channels, sys.Speed().Geometry, w.Load)
	if err != nil {
		return SustainedResult{}, err
	}

	speed := sys.Speed()
	framePeriod := w.Profile.Format.FramePeriod()
	periodCycles := framePeriod.Cycles(speed.Freq)
	paceCycles := int64(float64(periodCycles) * (1 - ProcessingMargin))
	src, err := gen.Paced(fraction, periodCycles, paceCycles, frames)
	if err != nil {
		return SustainedResult{}, err
	}
	run, err := sys.Run(src)
	if err != nil {
		return SustainedResult{}, err
	}

	scale := 1 / fraction
	cycles := int64(float64(run.Cycles) * scale)
	makespan := speed.CycleDuration(cycles)
	runWindow := units.Duration(int64(frames)) * framePeriod
	windowCycles := int64(frames) * periodCycles
	if cycles > windowCycles {
		windowCycles = cycles
	}

	res := SustainedResult{
		Frames:   frames,
		Lateness: makespan - runWindow,
	}
	res.Format = w.Profile.Format
	res.Level = w.Profile.Level
	res.Channels = mc.Channels
	res.Freq = mc.Freq
	res.FrameBytes = gen.FrameBytes()
	res.FramePeriod = framePeriod
	// Per-frame access budget semantics: the sustained run is feasible
	// when it never falls behind its slots.
	res.AccessTime = speed.CycleDuration(cycles / int64(frames))
	if res.Lateness <= 0 {
		res.Verdict = Feasible
	} else if float64(res.Lateness) <= ProcessingMargin*float64(runWindow) {
		res.Verdict = Marginal
	} else {
		res.Verdict = Infeasible
	}
	res.RequiredBandwidth = units.Bandwidth(float64(res.FrameBytes) / framePeriod.Seconds())
	if makespan > 0 {
		res.AchievedBandwidth = units.Bandwidth(float64(res.FrameBytes) * float64(frames) / makespan.Seconds())
	}
	res.PeakBandwidth = sys.PeakBandwidth()
	if res.PeakBandwidth > 0 {
		res.Efficiency = float64(res.AchievedBandwidth) / float64(res.PeakBandwidth)
	}

	ds := power.DefaultDatasheet()
	if mc.Datasheet != nil {
		ds = *mc.Datasheet
	}
	iface := power.DefaultInterface()
	if mc.Interface != nil {
		iface = *mc.Interface
	}
	pm, err := power.NewModel(ds, iface, speed)
	if err != nil {
		return SustainedResult{}, err
	}
	var pdCycles int64
	for _, chStats := range run.PerChannel {
		scaled := scaleStats(chStats, scale)
		if scaled.BusyCycles > windowCycles {
			scaled.BusyCycles = windowCycles
		}
		b, err := pm.ChannelEnergy(scaled, windowCycles, !mc.DisablePowerDown)
		if err != nil {
			return SustainedResult{}, err
		}
		res.PerChannel = append(res.PerChannel, b)
		res.TotalPower += b.AveragePower()
		res.InterfacePower += b.InterfacePower()
		res.Totals.Add(scaled)
		pdCycles += scaled.PowerDownCycles + (windowCycles - scaled.BusyCycles)
		res.PowerDownExits += scaled.PowerDownExits
	}
	if n := int64(len(run.PerChannel)) * windowCycles; n > 0 {
		res.PowerDownResidency = float64(pdCycles) / float64(n)
	}
	if inj := sys.Injector(); inj != nil {
		q := fault.NewQoS(frames)
		q.Counters = inj.Counters()
		q.FailedChannel = run.FailedChannel
		q.DropClock = run.DropClock
		if res.Lateness > 0 {
			// A single paced run only exposes terminal lateness; per-frame
			// miss accounting needs the degradation engine (SimulateDegraded).
			q.DeadlineMisses = 1
			q.FirstMissFrame = frames - 1
		}
		res.QoS = &q
	}
	return res, nil
}
