package core

import (
	"math"
	"testing"

	"repro/internal/usecase"
)

// Golden regression values frozen from the calibrated model. Table I values
// are exact (pure arithmetic); figure-matrix values carry a 2 % tolerance
// (simulation sampling). Any change to the load model, device timing or
// power constants that moves these is a deliberate recalibration and must
// update this file and EXPERIMENTS.md together.

func TestTableIGolden(t *testing.T) {
	golden := []struct {
		format               string
		image, coding, frame int64 // bits per frame
		mbps                 float64
	}{
		{"720p30", 210960384, 293134931, 504095315, 1890},
		{"720p60", 201744384, 292580264, 494324648, 3707},
		{"1080p30", 447047268, 662820691, 1109867959, 4162},
		{"1080p60", 437831268, 663466024, 1101297292, 8260},
		{"2160p30", 1702035456, 2653073064, 4355108520, 16332},
	}
	cols, err := RunTableI(usecase.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(golden) {
		t.Fatalf("columns = %d, want %d", len(cols), len(golden))
	}
	for i, g := range golden {
		c := cols[i]
		if c.Format.Name != g.format {
			t.Errorf("column %d is %s, want %s", i, c.Format.Name, g.format)
			continue
		}
		if int64(c.ImageTotal) != g.image {
			t.Errorf("%s image total = %d, want %d", g.format, int64(c.ImageTotal), g.image)
		}
		if int64(c.CodingTotal) != g.coding {
			t.Errorf("%s coding total = %d, want %d", g.format, int64(c.CodingTotal), g.coding)
		}
		if int64(c.FrameTotal) != g.frame {
			t.Errorf("%s frame total = %d, want %d", g.format, int64(c.FrameTotal), g.frame)
		}
		if math.Abs(c.Bandwidth.MBps()-g.mbps) > 1 {
			t.Errorf("%s bandwidth = %.0f MB/s, want %.0f", g.format, c.Bandwidth.MBps(), g.mbps)
		}
	}
}

func TestFormatMatrixGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	golden := []struct {
		format   string
		channels int
		accessMs float64
		powerMW  float64
		verdict  Verdict
	}{
		{"720p30", 1, 26.639, 150.2, Feasible},
		{"720p30", 2, 13.358, 158.2, Feasible},
		{"720p30", 4, 6.681, 174.0, Feasible},
		{"720p30", 8, 3.360, 205.8, Feasible},
		{"720p60", 1, 26.204, 185.6, Infeasible},
		{"720p60", 2, 13.145, 295.7, Feasible},
		{"720p60", 4, 6.578, 311.5, Feasible},
		{"720p60", 8, 3.308, 343.7, Feasible},
		{"1080p30", 1, 58.551, 186.2, Infeasible},
		{"1080p30", 2, 29.290, 329.1, Marginal},
		{"1080p30", 4, 14.645, 344.7, Feasible},
		{"1080p30", 8, 7.357, 376.9, Feasible},
		{"1080p60", 1, 58.228, 186.0, Infeasible},
		{"1080p60", 2, 29.131, 371.8, Infeasible},
		{"1080p60", 4, 14.573, 654.0, Marginal},
		{"1080p60", 8, 7.318, 686.8, Feasible},
		{"2160p30", 1, 230.399, 186.0, Infeasible},
		{"2160p30", 2, 115.201, 371.9, Infeasible},
		{"2160p30", 4, 57.597, 743.8, Infeasible},
		{"2160p30", 8, 28.822, 1294.3, Marginal},
		{"2160p60", 1, 228.627, 186.1, Infeasible},
		{"2160p60", 2, 114.317, 372.3, Infeasible},
		{"2160p60", 4, 57.147, 744.6, Infeasible},
		{"2160p60", 8, 28.600, 1488.6, Infeasible},
	}
	points, err := RunFormatMatrix(RunOptions{SampleFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(golden) {
		t.Fatalf("points = %d, want %d", len(points), len(golden))
	}
	const tol = 0.02
	for i, g := range golden {
		p := points[i]
		if p.Format != g.format || p.Channels != g.channels {
			t.Errorf("point %d is %s/%d, want %s/%d", i, p.Format, p.Channels, g.format, g.channels)
			continue
		}
		if got := p.Result.AccessTime.Milliseconds(); math.Abs(got-g.accessMs)/g.accessMs > tol {
			t.Errorf("%s/%dch access = %.3f ms, golden %.3f", g.format, g.channels, got, g.accessMs)
		}
		if got := p.Result.TotalPower.Milliwatts(); math.Abs(got-g.powerMW)/g.powerMW > tol {
			t.Errorf("%s/%dch power = %.1f mW, golden %.1f", g.format, g.channels, got, g.powerMW)
		}
		if p.Result.Verdict != g.verdict {
			t.Errorf("%s/%dch verdict = %v, golden %v", g.format, g.channels, p.Result.Verdict, g.verdict)
		}
	}
}
