package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/units"
)

// TestPooledSimulateIsDeterministic pins the load-bearing property of the
// subsystem pool: a Simulate served by a revived (Reset) system returns
// exactly the Result of the fresh-built first call, across repeats and with
// other configurations churning the pools in between.
func TestPooledSimulateIsDeterministic(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	configs := []MemoryConfig{
		PaperMemory(1, 400*units.MHz),
		PaperMemory(2, 400*units.MHz),
		PaperMemory(2, 266*units.MHz),
	}
	var first []Result
	for _, mc := range configs {
		r, err := simulateUncached(context.Background(), w, mc, nil)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, r)
	}
	// Interleave the configs so every repeat revives a pooled system.
	for round := 0; round < 3; round++ {
		for i, mc := range configs {
			r, err := simulateUncached(context.Background(), w, mc, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r, first[i]) {
				t.Fatalf("round %d config %d: revived system diverged from fresh build", round, i)
			}
		}
	}
}

// TestPooledSimulateParallel churns one configuration's pool from concurrent
// workers (run under -race in CI): every point must equal the serial result.
func TestPooledSimulateParallel(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	mc := PaperMemory(2, 400*units.MHz)
	want, err := simulateUncached(context.Background(), w, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunIndexed(8, 24, func(i int) (Result, error) {
		return simulateUncached(context.Background(), w, mc, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("parallel point %d diverged", i)
		}
	}
}

// TestLatencyRunsAreNotPooled guards the pool-bypass for observed runs:
// latency histograms accumulate inside the controllers, so a pooled reuse
// would double-count. Two back-to-back recorded runs must agree exactly.
func TestLatencyRunsAreNotPooled(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w.SampleFraction = 0.02
	w.RecordLatency = true
	mc := PaperMemory(2, 400*units.MHz)
	r1, err := simulateUncached(context.Background(), w, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := simulateUncached(context.Background(), w, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency == nil || r2.Latency == nil {
		t.Fatal("latency histogram missing")
	}
	if !reflect.DeepEqual(r1.Latency, r2.Latency) {
		t.Error("repeated latency-recorded runs diverged — pooled state leaked between them")
	}
	if !reflect.DeepEqual(r1.Totals, r2.Totals) {
		t.Error("repeated latency-recorded runs diverged in counters")
	}
}

// TestGeneratorSharing pins that the generator cache hands the same
// immutable instance to every Simulate of a workload, and distinct
// workloads get distinct instances.
func TestGeneratorSharing(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	w = normalizeWorkload(w)
	mc := normalizeMemoryConfig(PaperMemory(2, 400*units.MHz))
	g1, err := generatorFor(w.Profile, w.Params, mc.Channels, mc.Geometry, w.Load)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := generatorFor(w.Profile, w.Params, mc.Channels, mc.Geometry, w.Load)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("identical workloads got distinct generator instances")
	}
	g3, err := generatorFor(w.Profile, w.Params, 4, mc.Geometry, w.Load)
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g3 {
		t.Error("different channel counts shared a generator")
	}
	if sys, gens := poolDiagnostics(); sys == 0 && gens == 0 {
		t.Error("pool diagnostics report no pools after use")
	}
}
