// Package core is the public API of the multi-channel memory study: it ties
// the video-recording load model to the multi-channel DRAM simulator and
// the power model, and exposes runners that regenerate every table and
// figure of the reproduced paper (Aho, Nikara, Tuominen, Kuusilinna, "A case
// for multi-channel memories in video recording", DATE 2009).
//
// The central entry point is Simulate: given a recording Workload and a
// MemoryConfig it returns the per-frame memory access time, the real-time
// verdict (feasible / marginal / infeasible against the frame period with
// the paper's 15 % processing margin), and the average power broken down by
// component and channel.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/mapping"
	"repro/internal/memsys"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

// ProcessingMargin is the fraction of the frame period the paper reserves
// for data processing: a configuration is only "on the safe side" when the
// memory access time fits in (1 - ProcessingMargin) of the period.
const ProcessingMargin = 0.15

// MemoryConfig selects a memory subsystem configuration.
type MemoryConfig struct {
	// Channels is the channel count M (the paper evaluates 1, 2, 4, 8).
	Channels int
	// Freq is the interface clock (200-533 MHz).
	Freq units.Frequency
	// Mux selects RBC (paper default) or BRC address multiplexing.
	Mux mapping.Multiplexing
	// Policy selects the controller scheduling policy: open-page (paper
	// default), closed-page, FR-FCFS, or bank partitioning (see
	// controller.ParsePolicy for the accepted spellings).
	Policy controller.PagePolicy
	// Device names a registered DRAM datasheet (see dram.Devices): its
	// geometry, timing (with the device's legal clock range) and power
	// profile replace the paper defaults wherever this configuration
	// leaves them zero. Empty means the paper's estimated mobile DDR.
	Device string
	// DisablePowerDown turns off the paper's aggressive power-down
	// (ablation A2). The zero value keeps power-down enabled.
	DisablePowerDown bool
	// Geometry and Timing override the device; zero values use the
	// paper's estimated next-generation mobile DDR SDRAM.
	Geometry dram.Geometry
	Timing   dram.Timing
	// WriteBufferDepth > 0 enables the posted-write buffer extension in
	// every channel controller (conclusions: "advanced control
	// mechanisms"); zero is the paper's baseline.
	WriteBufferDepth int
	// QueueDepth > 0 inserts a per-channel FR-FCFS reorder window of
	// that many bursts (extension); zero is the in-order baseline.
	QueueDepth int
	// RefreshPostpone defers up to that many due refreshes to idle gaps
	// (extension); zero refreshes immediately like the paper.
	RefreshPostpone int
	// PrechargeOnIdle closes all banks before power-down so idle rests
	// in the cheaper precharge power-down state (extension).
	PrechargeOnIdle bool
	// InterleaveGranularity overrides the Table II channel-interleaving
	// chunk in bytes; zero uses the paper's 16-byte minimum burst.
	InterleaveGranularity int64
	// Datasheet and Interface override the power model; nil uses the
	// calibrated defaults.
	Datasheet *power.Datasheet
	Interface *power.Interface
	// NewProbe, when non-nil, attaches an observability event sink to
	// every channel controller (see internal/probe and
	// memsys.Config.NewProbe). Events cover only the simulated fraction
	// of the frame when sampling.
	NewProbe func(channel int) probe.Sink
	// Faults, when non-nil and enabled, injects the deterministic fault
	// plan into the subsystem (channel dropout, thermal refresh derate,
	// transient read errors, controller stall jitter — see internal/fault).
	// Nil keeps every hot path fault-free.
	Faults *fault.Plan
	// Serial forces single-goroutine execution even for multi-channel
	// configurations. The per-channel op order is identical either way
	// (the bit-identical guarantee), so this is a debugging/CI knob: the
	// determinism gate runs the same fault scenario serial and parallel
	// and diffs the QoS reports byte for byte.
	Serial bool
}

// PaperMemory returns the paper's baseline configuration at the given
// channel count and clock.
func PaperMemory(channels int, freq units.Frequency) MemoryConfig {
	return MemoryConfig{Channels: channels, Freq: freq}
}

// Workload describes the recording use case to simulate.
type Workload struct {
	// Profile pairs the frame format with its H.264/AVC level.
	Profile video.Profile
	// Params are the use-case constants; the zero value means the
	// paper's defaults (DefaultParams).
	Params usecase.Params
	// Load tunes the load model granularities; zero values use the
	// calibrated defaults.
	Load load.Config
	// SampleFraction in (0,1] simulates only that fraction of the frame
	// traffic and extrapolates linearly (the traffic is homogeneous, so
	// the makespan and power scale). Zero means 1 (full frame).
	SampleFraction float64
	// RecordLatency populates Result.Latency with the per-burst service
	// latency distribution (in DRAM cycles).
	RecordLatency bool
}

// WorkloadFor returns the paper workload for a format name such as
// "1080p30"; the extra Fig. 4 point "2160p60" is accepted too.
func WorkloadFor(format string) (Workload, error) {
	prof, err := video.ProfileFor(format)
	if err != nil {
		return Workload{}, err
	}
	return Workload{Profile: prof}, nil
}

// Verdict classifies a configuration against the real-time requirement.
type Verdict int

const (
	// Infeasible: the frame's memory accesses do not fit in the frame
	// period at all (a zero bar in the paper's Fig. 5).
	Infeasible Verdict = iota
	// Marginal: the accesses fit in the frame period, but not with the
	// 15 % processing margin — "cannot in reality be driven too close to
	// real-time requirements" (Fig. 3's "marginal").
	Marginal
	// Feasible: fits with the processing margin; the safe side.
	Feasible
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Infeasible:
		return "infeasible"
	case Marginal:
		return "MARGINAL"
	case Feasible:
		return "ok"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classify applies the paper's real-time criterion.
func Classify(accessTime, framePeriod units.Duration) Verdict {
	switch {
	case accessTime > framePeriod:
		return Infeasible
	case float64(accessTime) > (1-ProcessingMargin)*float64(framePeriod):
		return Marginal
	default:
		return Feasible
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Format   video.FrameFormat
	Level    video.Level
	Channels int
	Freq     units.Frequency

	// FrameBytes is the execution-memory traffic of one frame.
	FrameBytes int64
	// FramePeriod is the real-time budget (1/fps).
	FramePeriod units.Duration
	// AccessTime is the simulated time to perform one frame's memory
	// accesses (extrapolated when sampling).
	AccessTime units.Duration
	// Verdict classifies AccessTime against FramePeriod.
	Verdict Verdict
	// Estimated marks results produced by the closed-form analytic model
	// (the fast/auto fidelity tiers and the service's degraded mode)
	// rather than the cycle-accurate simulator. It rides through JSON the
	// same way the service's degraded flag does; absent means exact, so
	// cache entries written before the flag existed decode correctly.
	Estimated bool `json:",omitempty"`

	// RequiredBandwidth is FrameBytes over the frame period; Achieved is
	// over the access time; Peak is the configuration's theoretical max.
	RequiredBandwidth units.Bandwidth
	AchievedBandwidth units.Bandwidth
	PeakBandwidth     units.Bandwidth
	// Efficiency is achieved / peak: the sustained channel efficiency.
	Efficiency float64

	// TotalPower is the average memory subsystem power over the frame
	// period (or over the access time when infeasible), with slack spent
	// in power-down. InterfacePower is the equation-(1) share of it.
	TotalPower     units.Power
	InterfacePower units.Power
	// PerChannel itemizes each channel's energy.
	PerChannel []power.Breakdown

	// SimulatedCycles is the unextrapolated makespan of the cycles the
	// simulator actually executed (SampleFraction of the frame) — the
	// honest denominator for simulator-throughput reporting.
	SimulatedCycles int64

	// Totals aggregates the channel counters (scaled when sampling).
	Totals stats.Channel
	// Latency is the merged per-burst latency histogram in DRAM cycles
	// (nil unless Workload.RecordLatency was set). Latencies are raw
	// samples, not scaled by the sample fraction.
	Latency *stats.Histogram

	// QoS carries the fault-injection quality-of-service accounting (nil
	// unless MemoryConfig.Faults is set and enabled). Same seed, same
	// plan ⇒ byte-identical QoS.Report(), serial or parallel.
	QoS *fault.QoS
}

// applyDevice folds the named device's datasheet into the configuration's
// zero-value fields: geometry, timing (which carries the device clock
// range) and the power profile. Explicit overrides win over the entry.
// The device name is canonicalized — the paper baseline collapses to the
// empty string, so "paper" and "" are one configuration everywhere
// (cache keys, the analytic baseline check). Unknown names are left
// untouched; Validate rejects them before any simulation work.
func (mc MemoryConfig) applyDevice() MemoryConfig {
	d, err := dram.Device(mc.Device)
	if err != nil {
		return mc
	}
	if d.Name == dram.PaperDevice {
		mc.Device = ""
	} else {
		mc.Device = d.Name
	}
	if mc.Geometry == (dram.Geometry{}) {
		mc.Geometry = d.Geometry
	}
	if mc.Timing == (dram.Timing{}) {
		mc.Timing = d.Timing
	}
	if mc.Datasheet == nil {
		ds := powerDatasheet(d.IDDProfile())
		mc.Datasheet = &ds
	}
	return mc
}

// powerDatasheet converts a registry IDD profile to the power model's
// datasheet. The two structs mirror each other field for field (package
// power imports dram, so the conversion lives here); the paper entry
// reproduces power.DefaultDatasheet exactly.
func powerDatasheet(p dram.IDD) power.Datasheet {
	return power.Datasheet{
		BaseFreq:           p.BaseFreq,
		BaseVDD:            p.BaseVDD,
		VDD:                p.VDD,
		IDD2P:              p.IDD2P,
		IDD3P:              p.IDD3P,
		IDD2N:              p.IDD2N,
		IDD3N:              p.IDD3N,
		IDD4R:              p.IDD4R,
		IDD4W:              p.IDD4W,
		IDD5:               p.IDD5,
		IDD6:               p.IDD6,
		ActPrechargeEnergy: p.ActPrechargeEnergy,
	}
}

// memsysConfig lowers the MemoryConfig for the subsystem constructor.
func (mc MemoryConfig) memsysConfig() memsys.Config {
	return memsys.Config{
		Channels:              mc.Channels,
		Freq:                  mc.Freq,
		Geometry:              mc.Geometry,
		Timing:                mc.Timing,
		Mux:                   mc.Mux,
		Policy:                mc.Policy,
		PowerDown:             !mc.DisablePowerDown,
		WriteBufferDepth:      mc.WriteBufferDepth,
		QueueDepth:            mc.QueueDepth,
		RefreshPostpone:       mc.RefreshPostpone,
		PrechargeOnIdle:       mc.PrechargeOnIdle,
		InterleaveGranularity: mc.InterleaveGranularity,
		Parallel:              mc.Channels > 1 && !mc.Serial,
		NewProbe:              mc.NewProbe,
		Faults:                mc.Faults,
	}
}

// scaleStats multiplies the linear counters by k (sampling extrapolation).
func scaleStats(st stats.Channel, k float64) stats.Channel {
	mul := func(v int64) int64 { return int64(float64(v) * k) }
	return stats.Channel{
		Reads:              mul(st.Reads),
		Writes:             mul(st.Writes),
		Activates:          mul(st.Activates),
		Precharges:         mul(st.Precharges),
		Refreshes:          mul(st.Refreshes),
		RowHits:            mul(st.RowHits),
		RowMisses:          mul(st.RowMisses),
		RowConflicts:       mul(st.RowConflicts),
		BusyCycles:         mul(st.BusyCycles),
		ReadBusCycles:      mul(st.ReadBusCycles),
		WriteBusCycles:     mul(st.WriteBusCycles),
		PowerDownCycles:    mul(st.PowerDownCycles),
		PrechargePDCycles:  mul(st.PrechargePDCycles),
		PowerDownExits:     mul(st.PowerDownExits),
		SelfRefreshCycles:  mul(st.SelfRefreshCycles),
		SelfRefreshEntries: mul(st.SelfRefreshEntries),
	}
}

// Simulate runs one frame of the workload on the memory configuration.
// When a process-wide cache is enabled (EnableCache) and the run is
// unobserved, the result is served content-addressed: overlapping
// experiments simulate each distinct point exactly once. Observed runs —
// probes, faults, latency recording, -check — always simulate.
func Simulate(w Workload, mc MemoryConfig) (Result, error) {
	return SimulateContext(context.Background(), w, mc)
}

// SimulateContext is Simulate with cancellation: a done ctx aborts the
// point between pipeline phases (generate / simulate / report) and while
// waiting on a shared single-flight computation, so a caller that stops
// caring — a disconnected service client, an interrupted sweep — stops
// burning CPU at the next phase boundary. The background-context
// spelling is exactly Simulate.
func SimulateContext(ctx context.Context, w Workload, mc MemoryConfig) (Result, error) {
	m := activeMeter.Load()
	sp := activeSpans.Load()
	if m == nil && sp == nil {
		// Disabled observability: the seed's exact path.
		if c := EnabledCache(); c != nil {
			res, _, err := c.simulate(ctx, w, mc, nil)
			return res, err
		}
		return simulateUncached(ctx, w, mc, nil)
	}
	// A lane is one worker track in the phase-span trace: with N pool
	// workers at most N points are in flight, so lowest-free-lane
	// acquisition renders as one track per worker.
	lane := sp.Acquire()
	defer lane.Release()
	if m != nil {
		m.pointsStarted.Inc()
		start := time.Now()
		defer func() {
			m.pointSeconds.Observe(time.Since(start).Seconds())
			m.pointsCompleted.Inc()
		}()
	}
	if c := EnabledCache(); c != nil {
		res, _, err := c.simulate(ctx, w, mc, lane)
		return res, err
	}
	return simulateUncached(ctx, w, mc, lane)
}

// simulate is the uncached Simulate: it runs the simulator unconditionally,
// reviving a pooled memory subsystem and sharing the immutable load
// generator where the configuration allows (see pool.go). lane, when
// non-nil, records the run's phase spans (generate/simulate/report). ctx
// is consulted at phase boundaries only — the engine's hot loop stays
// untouched (the disabled-overhead gate), and a sweep's points are small
// enough that boundary granularity is what cancellation latency needs.
func simulateUncached(ctx context.Context, w Workload, mc MemoryConfig, lane *probe.Lane) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := mc.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	mc = mc.applyDevice()
	if w.Params == (usecase.Params{}) {
		w.Params = usecase.DefaultParams()
	}
	fraction := w.SampleFraction
	if fraction == 0 {
		fraction = 1
	}

	endPhase := lane.Phase("generate")
	msc := mc.memsysConfig()
	msc.RecordLatency = w.RecordLatency
	sys, release, err := acquireSystem(msc)
	if err != nil {
		return Result{}, err
	}
	gen, err := generatorFor(w.Profile, w.Params, mc.Channels, sys.Speed().Geometry, w.Load)
	if err != nil {
		return Result{}, err
	}
	src, err := gen.Frame(fraction)
	if err != nil {
		return Result{}, err
	}
	endPhase()

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	endPhase = lane.Phase("simulate")
	run, err := sys.Run(src)
	if err != nil {
		return Result{}, err
	}
	endPhase()

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	endPhase = lane.Phase("report")
	defer endPhase()
	speed := sys.Speed()
	scale := 1 / fraction
	cycles := int64(float64(run.Cycles) * scale)
	accessTime := speed.CycleDuration(cycles)
	framePeriod := w.Profile.Format.FramePeriod()
	frameBytes := gen.FrameBytes()

	res := Result{
		Format:          w.Profile.Format,
		Level:           w.Profile.Level,
		Channels:        mc.Channels,
		Freq:            mc.Freq,
		FrameBytes:      frameBytes,
		FramePeriod:     framePeriod,
		AccessTime:      accessTime,
		Verdict:         Classify(accessTime, framePeriod),
		SimulatedCycles: run.Cycles,
	}
	res.RequiredBandwidth = units.Bandwidth(float64(frameBytes) / framePeriod.Seconds())
	if accessTime > 0 {
		res.AchievedBandwidth = units.Bandwidth(float64(frameBytes) / accessTime.Seconds())
	}
	res.PeakBandwidth = sys.PeakBandwidth()
	if res.PeakBandwidth > 0 {
		res.Efficiency = float64(res.AchievedBandwidth) / float64(res.PeakBandwidth)
	}

	// Power over the frame period; when the run does not fit (infeasible)
	// report power over the actual makespan instead.
	windowCycles := framePeriod.Cycles(speed.Freq)
	if cycles > windowCycles {
		windowCycles = cycles
	}
	ds := power.DefaultDatasheet()
	if mc.Datasheet != nil {
		ds = *mc.Datasheet
	}
	iface := power.DefaultInterface()
	if mc.Interface != nil {
		iface = *mc.Interface
	}
	pm, err := power.NewModel(ds, iface, speed)
	if err != nil {
		return Result{}, err
	}
	for _, chStats := range run.PerChannel {
		scaled := scaleStats(chStats, scale)
		if scaled.BusyCycles > windowCycles {
			scaled.BusyCycles = windowCycles
		}
		b, err := pm.ChannelEnergy(scaled, windowCycles, !mc.DisablePowerDown)
		if err != nil {
			return Result{}, err
		}
		res.PerChannel = append(res.PerChannel, b)
		res.TotalPower += b.AveragePower()
		res.InterfacePower += b.InterfacePower()
		res.Totals.Add(scaled)
	}
	if w.RecordLatency {
		res.Latency = &stats.Histogram{}
		for _, ch := range sys.Channels() {
			res.Latency.Merge(ch.Latency())
		}
	}
	if inj := sys.Injector(); inj != nil {
		q := fault.NewQoS(1)
		q.Counters = inj.Counters()
		q.FailedChannel = run.FailedChannel
		q.DropClock = run.DropClock
		if res.Verdict == Infeasible {
			q.DeadlineMisses = 1
			q.FirstMissFrame = 0
		}
		res.QoS = &q
	}
	// The run completed cleanly, so the subsystem may serve the next
	// simulate after a Reset; error paths above abandon it instead.
	release()
	return res, nil
}
