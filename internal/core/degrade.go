package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

// FrameQoS records how one frame slot of a degraded-mode run went. Cycle
// fields are in the run's (possibly sample-scaled) clock domain.
type FrameQoS struct {
	// Frame is the slot index; Level the degradation-ladder level the
	// frame was produced at (0 = full quality).
	Frame int
	Level int
	// Dropped marks a slot intentionally skipped by frame-rate
	// degradation; such slots carry no traffic and no verdict.
	Dropped bool
	// Start and Deadline bound the slot; Completed is the cycle the
	// frame's last memory access finished (0 when dropped).
	Start     int64
	Deadline  int64
	Completed int64
	// Late: finished inside the slot but consumed more than half the
	// processing margin (arrivals themselves extend to the end of the
	// pace window, so only the service tail beyond it counts). Missed:
	// finished after the slot — a deadline miss that escalates the
	// degradation ladder.
	Late   bool
	Missed bool
}

// DegradedResult is the outcome of a fault-injected degraded-mode run.
type DegradedResult struct {
	Result
	// PerFrame records every frame slot in order.
	PerFrame []FrameQoS
	// FinalLevel is the degradation-ladder level the run ended at.
	FinalLevel int
	// FinalFormat is the frame format after any resolution step-down.
	FinalFormat video.FrameFormat
	// BytesRead and BytesWritten total the payload actually moved (frames
	// the ladder dropped move nothing), unscaled by the sample fraction.
	BytesRead    int64
	BytesWritten int64
}

// The degradation ladder: after each deadline miss the engine steps the
// workload down one level and keeps recording rather than erroring out.
const (
	levelFull      = 0 // full quality
	levelHalfRate  = 1 // drop alternate frames (half effective frame rate)
	levelNoStab    = 2 // stabilization border off (1.0)
	levelStepDown  = 3 // resolution step-down (2160 -> 1080 -> 720, same fps)
	levelExhausted = 4 // nothing left to shed
)

// SimulateDegraded runs frames consecutive paced frame slots with the fault
// plan active, reacting to deadline misses by degrading the workload
// (frame rate, then stabilization, then resolution) instead of failing.
// The per-frame loop and every fault decision are deterministic: the same
// seed yields a byte-identical QoS report, serial or parallel.
func SimulateDegraded(w Workload, mc MemoryConfig, frames int) (DegradedResult, error) {
	if frames <= 0 {
		return DegradedResult{}, fmt.Errorf("core: %d frames", frames)
	}
	if err := mc.Validate(); err != nil {
		return DegradedResult{}, err
	}
	if err := w.Validate(); err != nil {
		return DegradedResult{}, err
	}
	if w.Params == (usecase.Params{}) {
		w.Params = usecase.DefaultParams()
	}
	fraction := w.SampleFraction
	if fraction == 0 {
		fraction = 1
	}

	msc := mc.memsysConfig()
	msc.RecordLatency = w.RecordLatency
	sys, err := memsys.New(msc)
	if err != nil {
		return DegradedResult{}, err
	}
	speed := sys.Speed()

	// Generator for the current ladder state; rebuilt on level changes.
	profile := w.Profile
	params := w.Params
	newGen := func() (*load.Generator, error) {
		uc, err := usecase.New(profile, params)
		if err != nil {
			return nil, err
		}
		return load.New(uc, mc.Channels, speed.Geometry, w.Load)
	}
	gen, err := newGen()
	if err != nil {
		return DegradedResult{}, err
	}
	fullFrameBytes := gen.FrameBytes()

	framePeriod := w.Profile.Format.FramePeriod()
	periodCycles := framePeriod.Cycles(speed.Freq)
	paceCycles := int64(float64(periodCycles) * (1 - ProcessingMargin))
	// Sampled runs scale the slot with the traffic, like load.Paced, so the
	// arrival intensity — and the fault plan's cycle triggers, which the
	// caller states against the sampled timeline — are preserved.
	period := int64(float64(periodCycles) * fraction)
	pace := int64(float64(paceCycles) * fraction)
	if period < 1 || pace < 1 {
		return DegradedResult{}, fmt.Errorf("core: fraction %v collapses the frame slot", fraction)
	}

	qos := fault.NewQoS(frames)
	res := DegradedResult{FinalFormat: profile.Format}
	level := levelFull

	// announce emits a ladder event on every observed channel so degradation
	// and recovery show up on each trace track alongside the fault events.
	announce := func(kind probe.Kind, at int64, aux int64) {
		for _, ch := range sys.Channels() {
			if ch.Observed() {
				ch.Controller().EmitEvent(probe.Event{Kind: kind, Bank: -1, At: at, End: at, Aux: aux})
			}
		}
	}

	// escalate applies the next ladder step after frame f missed its slot.
	escalate := func(f int, at int64) error {
		for level < levelExhausted {
			level++
			switch level {
			case levelHalfRate:
				qos.Steps = append(qos.Steps, fault.Step{Frame: f, Action: "half frame rate (drop alternate frames)"})
			case levelNoStab:
				params.StabilizationBorder = 1.0
				qos.Steps = append(qos.Steps, fault.Step{Frame: f, Action: "stabilization off"})
			case levelStepDown:
				next, ok := stepDownProfile(profile)
				if !ok {
					continue // nothing smaller; ladder exhausted
				}
				qos.Steps = append(qos.Steps, fault.Step{Frame: f,
					Action: fmt.Sprintf("resolution %s -> %s", profile.Format.Name, next.Format.Name)})
				profile = next
			default:
				return nil // exhausted: keep recording at the floor
			}
			g, err := newGen()
			if err != nil {
				return err
			}
			gen = g
			announce(probe.KindDegrade, at, int64(level))
			return nil
		}
		return nil
	}

	// Live fault/QoS accounting: per-frame counter deltas rather than
	// per-event hooks, so the injection hot path stays untouched and a
	// -debug-addr scrape still sees the run advance frame by frame.
	meter := activeMeter.Load()
	var prevInj fault.Counters

	var lastRun memsys.Result
	var ran bool
	for f := 0; f < frames; f++ {
		start := int64(f) * period
		deadline := start + period
		fr := FrameQoS{Frame: f, Level: level, Start: start, Deadline: deadline}

		if level >= levelHalfRate && f%2 == 1 {
			fr.Dropped = true
			qos.DroppedFrames++
			if meter != nil {
				meter.framesDropped.Inc()
			}
			res.PerFrame = append(res.PerFrame, fr)
			continue
		}

		src, err := gen.PacedFrame(fraction, start, pace)
		if err != nil {
			return DegradedResult{}, err
		}
		run, err := sys.Run(src)
		if err != nil {
			return DegradedResult{}, err
		}
		lastRun, ran = run, true
		// memsys channel stats are cumulative across Run calls; byte counts
		// are per-run, so accumulate them here.
		res.BytesRead += run.BytesRead
		res.BytesWritten += run.BytesWritten

		if meter != nil {
			meter.framesSimulated.Inc()
			if inj := sys.Injector(); inj != nil {
				cur := inj.Counters()
				meter.faultInjections.Add((cur.ReadErrors + cur.Stalls + cur.Derates) -
					(prevInj.ReadErrors + prevInj.Stalls + prevInj.Derates))
				meter.faultRetries.Add(cur.Retries - prevInj.Retries)
				prevInj = cur
			}
		}

		fr.Completed = run.Cycles
		switch {
		case run.Cycles > deadline:
			fr.Missed = true
			qos.DeadlineMisses++
			if meter != nil {
				meter.deadlineMisses.Inc()
			}
			if qos.FirstMissFrame < 0 {
				qos.FirstMissFrame = f
			}
			qos.RecoveredFrame = -1 // a new miss re-opens recovery
			levelBefore := level
			if err := escalate(f, run.Cycles); err != nil {
				return DegradedResult{}, err
			}
			if meter != nil && level != levelBefore {
				meter.degradeSteps.Inc()
			}
		case run.Cycles > deadline-(period-pace)/2:
			fr.Late = true
			qos.LateFrames++
			if meter != nil {
				meter.framesLate.Inc()
			}
		}
		if !fr.Missed && qos.FirstMissFrame >= 0 && qos.RecoveredFrame < 0 {
			qos.RecoveredFrame = f
			announce(probe.KindRecover, run.Cycles, int64(f))
		}
		res.PerFrame = append(res.PerFrame, fr)
	}

	if inj := sys.Injector(); inj != nil {
		qos.Counters = inj.Counters()
	}
	if ran {
		qos.FailedChannel = lastRun.FailedChannel
		qos.DropClock = lastRun.DropClock
	}
	res.QoS = &qos
	res.FinalLevel = level
	res.FinalFormat = profile.Format

	// Aggregate result fields, mirroring the sustained runner.
	scale := 1 / fraction
	var makespanCycles int64
	if ran {
		makespanCycles = lastRun.Cycles
	}
	cycles := int64(float64(makespanCycles) * scale)
	res.Format = w.Profile.Format
	res.Level = w.Profile.Level
	res.Channels = mc.Channels
	res.Freq = mc.Freq
	res.FrameBytes = fullFrameBytes
	res.FramePeriod = framePeriod
	res.AccessTime = speed.CycleDuration(cycles / int64(frames))
	res.SimulatedCycles = makespanCycles
	// Verdict: how the run ended. Recovered (or never missed) is feasible
	// in its degraded mode; still missing at the end is infeasible.
	switch {
	case qos.Recovered() && qos.LateFrames == 0:
		res.Verdict = Feasible
	case qos.Recovered():
		res.Verdict = Marginal
	default:
		res.Verdict = Infeasible
	}
	res.RequiredBandwidth = units.Bandwidth(float64(fullFrameBytes) / framePeriod.Seconds())
	if t := speed.CycleDuration(cycles); t > 0 {
		res.AchievedBandwidth = units.Bandwidth(float64(res.BytesRead+res.BytesWritten) * scale / t.Seconds())
	}
	res.PeakBandwidth = sys.PeakBandwidth()
	if res.PeakBandwidth > 0 {
		res.Efficiency = float64(res.AchievedBandwidth) / float64(res.PeakBandwidth)
	}

	windowCycles := int64(frames) * periodCycles
	if cycles > windowCycles {
		windowCycles = cycles
	}
	ds := power.DefaultDatasheet()
	if mc.Datasheet != nil {
		ds = *mc.Datasheet
	}
	iface := power.DefaultInterface()
	if mc.Interface != nil {
		iface = *mc.Interface
	}
	pm, err := power.NewModel(ds, iface, speed)
	if err != nil {
		return DegradedResult{}, err
	}
	for _, ch := range sys.Channels() {
		scaled := scaleStats(ch.Stats(), scale)
		if scaled.BusyCycles > windowCycles {
			scaled.BusyCycles = windowCycles
		}
		b, err := pm.ChannelEnergy(scaled, windowCycles, !mc.DisablePowerDown)
		if err != nil {
			return DegradedResult{}, err
		}
		res.PerChannel = append(res.PerChannel, b)
		res.TotalPower += b.AveragePower()
		res.InterfacePower += b.InterfacePower()
		res.Totals.Add(scaled)
	}
	if w.RecordLatency {
		res.Latency = &stats.Histogram{}
		for _, ch := range sys.Channels() {
			res.Latency.Merge(ch.Latency())
		}
	}
	return res, nil
}

// stepDownProfile returns the next smaller evaluated profile at the same
// frame rate (2160 -> 1080 -> 720), or ok=false at the floor.
func stepDownProfile(p video.Profile) (video.Profile, bool) {
	var nextHeight int
	switch {
	case p.Format.Height >= 2160:
		nextHeight = 1080
	case p.Format.Height >= 1080:
		nextHeight = 720
	default:
		return video.Profile{}, false
	}
	name := fmt.Sprintf("%dp%d", nextHeight, p.Format.FPS)
	next, err := video.ProfileFor(name)
	if err != nil {
		return video.Profile{}, false
	}
	return next, true
}
