package core

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/usecase"
)

// Validate checks the memory configuration before any simulation work
// starts, replacing the scattered ad-hoc checks the constructors used to
// perform piecemeal. It is called at the top of Simulate,
// SimulateSustained and SimulateDegraded; CLIs print the returned message
// to stderr and exit non-zero.
func (mc MemoryConfig) Validate() error {
	if mc.Channels <= 0 {
		return fmt.Errorf("core: invalid channel count %d: want a positive number of channels (the paper evaluates 1, 2, 4, 8)", mc.Channels)
	}
	if mc.Freq <= 0 {
		return fmt.Errorf("core: zero or negative interface clock %v: want a positive frequency (the paper evaluates 200-533 MHz)", mc.Freq)
	}
	if mc.WriteBufferDepth < 0 {
		return fmt.Errorf("core: negative write buffer depth %d", mc.WriteBufferDepth)
	}
	if mc.QueueDepth < 0 {
		return fmt.Errorf("core: negative reorder queue depth %d", mc.QueueDepth)
	}
	if mc.RefreshPostpone < 0 {
		return fmt.Errorf("core: negative refresh postponement %d", mc.RefreshPostpone)
	}
	dev, err := dram.Device(mc.Device)
	if err != nil {
		return err
	}
	geom := mc.Geometry
	if geom == (dram.Geometry{}) {
		geom = dev.Geometry
	}
	if err := geom.Validate(); err != nil {
		return err
	}
	if g := mc.InterleaveGranularity; g != 0 {
		if g < 0 {
			return fmt.Errorf("core: negative interleave granularity %d", g)
		}
		if g%geom.BurstBytes() != 0 {
			return fmt.Errorf("core: interleave granularity %d is not a multiple of the %d-byte minimum burst", g, geom.BurstBytes())
		}
	}
	if mc.Faults != nil {
		if err := mc.Faults.Validate(mc.Channels); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the workload description. Zero-value fields that mean
// "use the default" (Params, Load runs, SampleFraction) are accepted;
// everything else must be physically meaningful.
func (w Workload) Validate() error {
	f := w.Profile.Format
	if f.Width <= 0 || f.Height <= 0 {
		return fmt.Errorf("core: empty workload profile: use WorkloadFor(format) or set Workload.Profile")
	}
	if f.FPS <= 0 {
		return fmt.Errorf("core: workload frame rate %d fps: want a positive rate", f.FPS)
	}
	if math.IsNaN(w.SampleFraction) || w.SampleFraction < 0 || w.SampleFraction > 1 {
		return fmt.Errorf("core: sample fraction %v outside (0,1] (zero means the full frame)", w.SampleFraction)
	}
	if w.Params != (usecase.Params{}) {
		if err := w.Params.Validate(); err != nil {
			return err
		}
	}
	// Load runs: zero means "use the calibrated default"; set values must
	// be whole burst multiples.
	runs := []struct {
		name string
		v    int64
	}{
		{"image run", w.Load.ImageRun},
		{"reference run", w.Load.RefRun},
		{"coding run", w.Load.CodingRun},
		{"bitstream run", w.Load.BitstreamRun},
	}
	for _, r := range runs {
		if r.v == 0 {
			continue
		}
		if r.v < 16 || r.v%16 != 0 {
			return fmt.Errorf("core: load %s %d bytes: want a positive multiple of the 16-byte minimum burst", r.name, r.v)
		}
	}
	if w.Load.BaseAddress < 0 {
		return fmt.Errorf("core: negative load base address %d", w.Load.BaseAddress)
	}
	return nil
}
