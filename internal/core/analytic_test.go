package core

import (
	"testing"

	"repro/internal/units"
)

// TestAnalyticResultTracksSimulation: the degraded-mode estimate must be
// in the same ballpark as the simulator on the paper's flagship points —
// close enough that a degraded answer is useful, while the honest fields
// (no per-channel breakdown, no counters) stay empty.
func TestAnalyticResultTracksSimulation(t *testing.T) {
	for _, tc := range []struct {
		format   string
		channels int
	}{
		{"720p30", 1},
		{"1080p30", 4},
		{"1080p60", 8},
	} {
		w, err := WorkloadFor(tc.format)
		if err != nil {
			t.Fatal(err)
		}
		mc := PaperMemory(tc.channels, 400*units.MHz)
		est, err := AnalyticResult(w, mc)
		if err != nil {
			t.Fatalf("%s/%dch: %v", tc.format, tc.channels, err)
		}
		w.SampleFraction = 0.05
		sim, err := Simulate(w, mc)
		if err != nil {
			t.Fatalf("%s/%dch: %v", tc.format, tc.channels, err)
		}
		ratio := est.AccessTime.Seconds() / sim.AccessTime.Seconds()
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s/%dch: analytic access time %v vs simulated %v (ratio %.2f)",
				tc.format, tc.channels, est.AccessTime, sim.AccessTime, ratio)
		}
		if est.TotalPower <= 0 {
			t.Errorf("%s/%dch: analytic power %v, want positive", tc.format, tc.channels, est.TotalPower)
		}
		if est.FrameBytes != sim.FrameBytes || est.FramePeriod != sim.FramePeriod {
			t.Errorf("%s/%dch: frame invariants differ: bytes %d vs %d, period %v vs %v",
				tc.format, tc.channels, est.FrameBytes, sim.FrameBytes, est.FramePeriod, sim.FramePeriod)
		}
		if est.PerChannel != nil || est.Latency != nil || est.Totals.Reads != 0 {
			t.Errorf("%s/%dch: estimate populated simulator-only fields", tc.format, tc.channels)
		}
	}
}

// TestAnalyticResultValidates: the estimate path applies the same input
// hardening as Simulate.
func TestAnalyticResultValidates(t *testing.T) {
	w, err := WorkloadFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyticResult(w, PaperMemory(0, 400*units.MHz)); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := AnalyticResult(Workload{}, PaperMemory(1, 400*units.MHz)); err == nil {
		t.Error("empty workload accepted")
	}
}
