package core

import (
	"repro/internal/analytic"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/units"
)

// PowerNotComputed is the sentinel an analytic Result carries in
// InterfacePower: the closed forms produce only the total, and a literal
// zero would read as "the interface consumed nothing". Negative power is
// impossible, so the sentinel survives JSON (unlike NaN) and is trivially
// detectable downstream.
const PowerNotComputed units.Power = -1

// AnalyticResult estimates the Result of Simulate(w, mc) from the
// closed-form model in internal/analytic, without running the
// cycle-accurate simulator. It is the graceful-degradation path of the
// simulation service: when the admission queue is saturated, an estimate
// in microseconds beats a shed request — the caller is told the answer is
// an estimate and can retry for the exact one.
//
// Only the fields the closed forms can honestly produce are populated:
// access time, verdict, bandwidths, efficiency and total power. The rest
// carry explicit "not computed" sentinels — an estimate must never
// masquerade as simulator output: Estimated is true, InterfacePower is
// PowerNotComputed (−1), and the per-channel breakdown and latency
// histogram are nil (never empty-but-allocated).
//
// The power model is resolved here with the same explicit nil-checked
// defaulting the simulator uses, so a MemoryConfig with nil
// Datasheet/Interface (the common spelling — PaperMemory leaves both nil)
// estimates with the paper's power model instead of dereferencing nil; a
// present-but-invalid datasheet is rejected with the validation error
// from FramePower.
func AnalyticResult(w Workload, mc MemoryConfig) (Result, error) {
	if err := mc.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	w = normalizeWorkload(w)
	mc = normalizeMemoryConfig(mc)

	speed, err := dram.Resolve(mc.Geometry, mc.Timing, mc.Freq)
	if err != nil {
		return Result{}, err
	}
	gen, err := generatorFor(w.Profile, w.Params, mc.Channels, speed.Geometry, w.Load)
	if err != nil {
		return Result{}, err
	}
	est, err := analytic.FrameTime(gen, speed)
	if err != nil {
		return Result{}, err
	}

	framePeriod := w.Profile.Format.FramePeriod()
	frameBytes := gen.FrameBytes()
	res := Result{
		Format:      w.Profile.Format,
		Level:       w.Profile.Level,
		Channels:    mc.Channels,
		Freq:        mc.Freq,
		FrameBytes:  frameBytes,
		FramePeriod: framePeriod,
		AccessTime:  est.Time,
		Verdict:     Classify(est.Time, framePeriod),
	}
	res.RequiredBandwidth = units.Bandwidth(float64(frameBytes) / framePeriod.Seconds())
	if est.Time > 0 {
		res.AchievedBandwidth = units.Bandwidth(float64(frameBytes) / est.Time.Seconds())
	}
	res.PeakBandwidth = units.Bandwidth(float64(mc.Channels)) * speed.PeakBandwidth()
	if res.PeakBandwidth > 0 {
		res.Efficiency = float64(res.AchievedBandwidth) / float64(res.PeakBandwidth)
	}
	ds := power.DefaultDatasheet()
	if mc.Datasheet != nil {
		ds = *mc.Datasheet
	}
	iface := power.DefaultInterface()
	if mc.Interface != nil {
		iface = *mc.Interface
	}
	res.TotalPower, err = analytic.FramePower(gen, speed, ds, iface, framePeriod)
	if err != nil {
		return Result{}, err
	}
	res.InterfacePower = PowerNotComputed
	res.PerChannel = nil
	res.Latency = nil
	res.Estimated = true
	return res, nil
}
