package core

import (
	"repro/internal/analytic"
	"repro/internal/dram"
	"repro/internal/units"
)

// AnalyticResult estimates the Result of Simulate(w, mc) from the
// closed-form model in internal/analytic, without running the
// cycle-accurate simulator. It is the graceful-degradation path of the
// simulation service: when the admission queue is saturated, an estimate
// in microseconds beats a shed request — the caller is told the answer is
// an estimate and can retry for the exact one.
//
// Only the fields the closed forms can honestly produce are populated:
// access time, verdict, bandwidths, efficiency and total power. The
// per-channel power breakdown, interface-power split, command counters
// and latency histogram stay zero — an estimate must never masquerade as
// simulator output.
func AnalyticResult(w Workload, mc MemoryConfig) (Result, error) {
	if err := mc.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	w = normalizeWorkload(w)
	mc = normalizeMemoryConfig(mc)

	speed, err := dram.Resolve(mc.Geometry, mc.Timing, mc.Freq)
	if err != nil {
		return Result{}, err
	}
	gen, err := generatorFor(w.Profile, w.Params, mc.Channels, speed.Geometry, w.Load)
	if err != nil {
		return Result{}, err
	}
	est, err := analytic.FrameTime(gen, speed)
	if err != nil {
		return Result{}, err
	}

	framePeriod := w.Profile.Format.FramePeriod()
	frameBytes := gen.FrameBytes()
	res := Result{
		Format:      w.Profile.Format,
		Level:       w.Profile.Level,
		Channels:    mc.Channels,
		Freq:        mc.Freq,
		FrameBytes:  frameBytes,
		FramePeriod: framePeriod,
		AccessTime:  est.Time,
		Verdict:     Classify(est.Time, framePeriod),
	}
	res.RequiredBandwidth = units.Bandwidth(float64(frameBytes) / framePeriod.Seconds())
	if est.Time > 0 {
		res.AchievedBandwidth = units.Bandwidth(float64(frameBytes) / est.Time.Seconds())
	}
	res.PeakBandwidth = units.Bandwidth(float64(mc.Channels)) * speed.PeakBandwidth()
	if res.PeakBandwidth > 0 {
		res.Efficiency = float64(res.AchievedBandwidth) / float64(res.PeakBandwidth)
	}
	ds := *mc.Datasheet
	iface := *mc.Interface
	res.TotalPower, err = analytic.FramePower(gen, speed, ds, iface, framePeriod)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
