package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if h != r1 || h != r2 {
		t.Errorf("columns misaligned: %d/%d/%d\n%s", h, r1, r2, out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}

func TestTableWithoutTitleOrHeaders(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("x", "y")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("headerless table should have no rule:\n%s", out)
	}
	if !strings.HasPrefix(out, "x") {
		t.Errorf("unexpected leading content: %q", out)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("s", 42, 1.5)
	out := tb.String()
	for _, want := range []string{"s", "42", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1", "2", "3") // longer than header
	tb.AddRow("x")           // shorter
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped: %q", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.AddRow("1,5", "2")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n1;5,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####" {
		t.Errorf("Bar(50,100,10) = %q", got)
	}
	if got := Bar(200, 100, 10); got != "##########" {
		t.Errorf("overflow bar = %q", got)
	}
	if got := Bar(0.1, 100, 10); got != "#" {
		t.Errorf("tiny bar = %q, want single #", got)
	}
	if Bar(0, 100, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("x|y", "2")
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Demo**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}
