// Package report renders the study's tables and figure series as aligned
// ASCII tables and CSV, the formats cmd/paper and the examples print.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows extend the header.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is already a string.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if s, ok := c.(string); ok {
			row[i] = s
		} else {
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// columns returns the widest row length.
func (t *Table) columns() int {
	n := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	cols := t.columns()
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var total int
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (no quoting: the study's cells never
// contain commas; commas in input are replaced by semicolons defensively).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strings.ReplaceAll(c, ",", ";"))
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	cols := t.columns()
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(row []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, " %s |", strings.ReplaceAll(cell, "|", "\\|"))
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			b.WriteString("---|")
		}
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Bar renders a horizontal ASCII bar of value scaled to maxWidth at max.
func Bar(value, max float64, maxWidth int) string {
	if max <= 0 || value <= 0 || maxWidth <= 0 {
		return ""
	}
	n := int(value / max * float64(maxWidth))
	if n > maxWidth {
		n = maxWidth
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}
