package probe

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("mcmsim")
	if m.Tool != "mcmsim" || len(m.CommandLine) == 0 || m.CreatedAt == "" {
		t.Fatalf("NewManifest incomplete: %+v", m)
	}
	m.Channels = 4
	m.FreqMHz = 400
	m.SampleFraction = 0.5
	m.Config["page_policy"] = "open"
	m.Workload["format"] = "1080p30"
	m.Finish(2_000_000, 2*time.Second)
	if m.CyclesPerSecond != 1_000_000 {
		t.Errorf("CyclesPerSecond = %g, want 1e6", m.CyclesPerSecond)
	}
	m.AddOutput("trace", "run.json")

	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Tool != "mcmsim" || got.Channels != 4 || got.SimCycles != 2_000_000 {
		t.Errorf("round-tripped manifest wrong: %+v", got)
	}
	if got.Outputs["trace"] != "run.json" {
		t.Errorf("outputs lost: %v", got.Outputs)
	}
	if got.Config["page_policy"] != "open" || got.Workload["format"] != "1080p30" {
		t.Errorf("config/workload lost: %v %v", got.Config, got.Workload)
	}
}

func TestManifestFinishZeroWall(t *testing.T) {
	var m Manifest
	m.Finish(100, 0)
	if m.CyclesPerSecond != 0 {
		t.Errorf("CyclesPerSecond with zero wall = %g, want 0", m.CyclesPerSecond)
	}
}

func TestObserverDisabled(t *testing.T) {
	obs, err := NewObserver(2, 1000, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if obs != nil {
		t.Fatal("observer with no outputs should be nil")
	}
	if obs.Enabled() {
		t.Error("nil observer should report disabled")
	}
	if obs.Channel(0) != nil {
		t.Error("nil observer should hand out nil sinks")
	}
	if obs.TimeSeries() != nil || obs.Trace() != nil {
		t.Error("nil observer should have nil collectors")
	}
	m := NewManifest("test")
	if err := obs.WriteOutputs(&m); err != nil {
		t.Errorf("WriteOutputs on disabled observer: %v", err)
	}
	if len(m.Outputs) != 0 {
		t.Errorf("disabled observer recorded outputs: %v", m.Outputs)
	}
}

func TestObserverWriteOutputs(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "run.trace.json")
	metricsOut := filepath.Join(dir, "metrics.csv")
	obs, err := NewObserver(1, 100, traceOut, metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("observer with outputs should be enabled")
	}
	sink := obs.Channel(0)
	if sink == nil {
		t.Fatal("enabled observer returned nil sink")
	}
	sink.Emit(Event{Kind: KindRead, Bank: 0, At: 5, End: 13, Aux: 4})

	m := NewManifest("test")
	if err := obs.WriteOutputs(&m); err != nil {
		t.Fatal(err)
	}
	// The metrics file is CSV (non-.json path) and saw the event via the
	// same fan-out sink as the trace.
	csv, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "channel,epoch") {
		t.Errorf("metrics file is not CSV: %q", string(csv[:min(40, len(csv))]))
	}
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents")
	}
	wantManifest := metricsOut + ".manifest.json"
	if obs.ManifestPath() != wantManifest {
		t.Errorf("ManifestPath = %q, want %q", obs.ManifestPath(), wantManifest)
	}
	if _, err := os.Stat(wantManifest); err != nil {
		t.Errorf("manifest not written: %v", err)
	}
	for _, name := range []string{"metrics", "trace", "manifest"} {
		if m.Outputs[name] == "" {
			t.Errorf("manifest outputs missing %q: %v", name, m.Outputs)
		}
	}
}

func TestObserverJSONMetrics(t *testing.T) {
	dir := t.TempDir()
	metricsOut := filepath.Join(dir, "metrics.json")
	obs, err := NewObserver(1, 100, "", metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	obs.Channel(0).Emit(Event{Kind: KindWrite, At: 5, End: 13, Aux: 4})
	m := NewManifest("test")
	if err := obs.WriteOutputs(&m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf(".json metrics path should produce JSON: %v", err)
	}
	if _, ok := doc["window_cycles"]; !ok {
		t.Error("metrics JSON missing window_cycles")
	}
}
