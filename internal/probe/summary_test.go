package probe

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestSummaryRoundTrip: write a summary, read it back, and check the
// schema plus the manifest and metrics content survive.
func TestSummaryRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("simcache_hits_total", metrics.Label{Key: "tier", Value: "memory"}).Add(9)
	reg.Histogram("sim_point_seconds", []float64{0.1, 1}).Observe(0.5)

	man := NewManifest("sweep")
	man.Channels = 4
	man.FreqMHz = 400
	man.Finish(123456, 2*time.Second)

	path := filepath.Join(t.TempDir(), "summary.json")
	if err := NewSummary(man, reg.Snapshot()).Write(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SummarySchemaVersion {
		t.Errorf("schema = %q, want %q", got.Schema, SummarySchemaVersion)
	}
	if got.Run.Tool != "sweep" || got.Run.Channels != 4 || got.Run.SimCycles != 123456 {
		t.Errorf("manifest round-trip = %+v", got.Run)
	}
	if e, ok := got.Metrics.Find(`simcache_hits_total{tier="memory"}`); !ok || e.Value != 9 {
		t.Errorf("metrics round-trip: %+v ok=%v", e, ok)
	}
	if e, ok := got.Metrics.Find("sim_point_seconds"); !ok || e.Count != 1 {
		t.Errorf("histogram round-trip: %+v ok=%v", e, ok)
	}
}

// TestSummarySchemaRejected: a summary with the wrong schema version must
// not parse successfully.
func TestSummarySchemaRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"mcm-run-summary/v999","run":{},"metrics":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSummary(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("ReadSummary = %v, want schema error", err)
	}
}
