// Windowed time-series collection: the TimeSeries sink buckets the event
// stream into fixed-length cycle epochs per channel, yielding bandwidth,
// row-outcome, latency, queue-depth and power-state residency curves that
// sum back exactly to the run's aggregate stats.Channel counters.
package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Epoch accumulates one channel's activity over one window of cycles
// [Start, Start+window).
type Epoch struct {
	// Start is the first cycle of the window.
	Start int64 `json:"start"`

	// Command and burst counts attributed by command-issue cycle.
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	Activates  int64 `json:"activates"`
	Precharges int64 `json:"precharges"`
	Refreshes  int64 `json:"refreshes"`

	// Row-buffer outcomes.
	RowHits      int64 `json:"row_hits"`
	RowMisses    int64 `json:"row_misses"`
	RowConflicts int64 `json:"row_conflicts"`

	// Data-bus occupancy inside the window, split by direction; the
	// window's bus utilization is their sum over the window length.
	ReadBusCycles  int64 `json:"read_bus_cycles"`
	WriteBusCycles int64 `json:"write_bus_cycles"`

	// Power-state residency inside the window.
	PowerDownCycles    int64 `json:"powerdown_cycles"`
	PrechargePDCycles  int64 `json:"precharge_pd_cycles"`
	SelfRefreshCycles  int64 `json:"selfrefresh_cycles"`
	PowerDownExits     int64 `json:"powerdown_exits"`
	SelfRefreshEntries int64 `json:"selfrefresh_entries"`

	// Queue-depth samples observed at enqueue/complete events.
	DepthSamples int64 `json:"depth_samples"`
	DepthSum     int64 `json:"depth_sum"`
	DepthMax     int64 `json:"depth_max"`

	// BusyEnd is the latest data-beat cycle observed in the window; the
	// maximum across epochs reconstructs the channel makespan.
	BusyEnd int64 `json:"busy_end"`

	lat stats.Histogram
}

// Latency returns the epoch's request-latency distribution (cycles).
func (e *Epoch) Latency() *stats.Histogram { return &e.lat }

// TimeSeries collects windowed metrics for a fixed number of channels.
// Attach Channel(i) as channel i's sink; each per-channel collector is
// independent, so parallel per-channel simulation needs no locking.
type TimeSeries struct {
	window int64
	chans  []*tsChan
}

// NewTimeSeries builds a collector for the given channel count and window
// length in DRAM cycles.
func NewTimeSeries(channels int, window int64) (*TimeSeries, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("probe: time series over %d channels", channels)
	}
	if window <= 0 {
		return nil, fmt.Errorf("probe: non-positive window %d", window)
	}
	ts := &TimeSeries{window: window, chans: make([]*tsChan, channels)}
	for i := range ts.chans {
		ts.chans[i] = &tsChan{window: window}
	}
	return ts, nil
}

// Window returns the epoch length in cycles.
func (ts *TimeSeries) Window() int64 { return ts.window }

// Channels returns the channel count.
func (ts *TimeSeries) Channels() int { return len(ts.chans) }

// Channel returns channel ch's sink.
func (ts *TimeSeries) Channel(ch int) Sink { return ts.chans[ch] }

// Epochs returns channel ch's windows in time order. The slice aliases the
// collector's storage; treat it as read-only while the run is live.
func (ts *TimeSeries) Epochs(ch int) []Epoch { return ts.chans[ch].epochs }

// ChannelTotal reconstructs channel ch's aggregate counters by summing its
// epochs — by construction equal to the stats.Channel the controller
// accumulated over the same run.
func (ts *TimeSeries) ChannelTotal(ch int) stats.Channel {
	var t stats.Channel
	for i := range ts.chans[ch].epochs {
		e := &ts.chans[ch].epochs[i]
		t.Reads += e.Reads
		t.Writes += e.Writes
		t.Activates += e.Activates
		t.Precharges += e.Precharges
		t.Refreshes += e.Refreshes
		t.RowHits += e.RowHits
		t.RowMisses += e.RowMisses
		t.RowConflicts += e.RowConflicts
		t.ReadBusCycles += e.ReadBusCycles
		t.WriteBusCycles += e.WriteBusCycles
		t.PowerDownCycles += e.PowerDownCycles
		t.PrechargePDCycles += e.PrechargePDCycles
		t.SelfRefreshCycles += e.SelfRefreshCycles
		t.PowerDownExits += e.PowerDownExits
		t.SelfRefreshEntries += e.SelfRefreshEntries
		if e.BusyEnd > t.BusyCycles {
			t.BusyCycles = e.BusyEnd
		}
	}
	return t
}

// tsChan is one channel's collector.
type tsChan struct {
	window int64
	epochs []Epoch
}

// at returns the epoch containing the cycle, growing the series as needed.
func (tc *tsChan) at(cycle int64) *Epoch {
	if cycle < 0 {
		cycle = 0
	}
	idx := int(cycle / tc.window)
	for len(tc.epochs) <= idx {
		tc.epochs = append(tc.epochs, Epoch{Start: int64(len(tc.epochs)) * tc.window})
	}
	return &tc.epochs[idx]
}

// spread distributes cycles cycles ending at end across the epochs the
// span [end-cycles, end) covers, calling add with each epoch's share.
func (tc *tsChan) spread(end, cycles int64, add func(e *Epoch, share int64)) {
	if cycles <= 0 {
		return
	}
	start := end - cycles
	if start < 0 {
		start = 0
	}
	for start < end {
		e := tc.at(start)
		next := e.Start + tc.window
		share := end - start
		if next < end {
			share = next - start
		}
		add(e, share)
		start = next
	}
}

// Emit implements Sink.
func (tc *tsChan) Emit(ev Event) {
	switch ev.Kind {
	case KindActivate:
		tc.at(ev.At).Activates++
	case KindPrecharge:
		tc.at(ev.At).Precharges++
	case KindRefresh:
		tc.at(ev.At).Refreshes++
	case KindRead:
		e := tc.at(ev.At)
		e.Reads++
		if ev.End > e.BusyEnd {
			e.BusyEnd = ev.End
		}
		tc.spread(ev.End, ev.Aux, func(e *Epoch, share int64) { e.ReadBusCycles += share })
	case KindWrite:
		e := tc.at(ev.At)
		e.Writes++
		if ev.End > e.BusyEnd {
			e.BusyEnd = ev.End
		}
		tc.spread(ev.End, ev.Aux, func(e *Epoch, share int64) { e.WriteBusCycles += share })
	case KindRowHit:
		tc.at(ev.At).RowHits++
	case KindRowMiss:
		tc.at(ev.At).RowMisses++
	case KindRowConflict:
		tc.at(ev.At).RowConflicts++
	case KindPowerDown:
		tc.at(ev.At).PowerDownExits++
		precharged := ev.Flags&FlagPrechargedPD != 0
		tc.spread(ev.End, ev.Aux, func(e *Epoch, share int64) {
			e.PowerDownCycles += share
			if precharged {
				e.PrechargePDCycles += share
			}
		})
	case KindSelfRefresh:
		tc.at(ev.At).SelfRefreshEntries++
		tc.spread(ev.End, ev.Aux, func(e *Epoch, share int64) { e.SelfRefreshCycles += share })
	case KindEnqueue:
		e := tc.at(ev.At)
		e.DepthSamples++
		e.DepthSum += int64(ev.Depth)
		if int64(ev.Depth) > e.DepthMax {
			e.DepthMax = int64(ev.Depth)
		}
	case KindComplete:
		e := tc.at(ev.At)
		e.DepthSamples++
		e.DepthSum += int64(ev.Depth)
		if int64(ev.Depth) > e.DepthMax {
			e.DepthMax = int64(ev.Depth)
		}
		e.lat.Observe(ev.Aux)
	}
}

// csvHeader lists the WriteCSV columns.
var csvHeader = []string{
	"channel", "epoch", "start_cycle", "end_cycle",
	"reads", "writes", "activates", "precharges", "refreshes",
	"row_hits", "row_misses", "row_conflicts",
	"read_bus_cycles", "write_bus_cycles", "bus_util",
	"powerdown_cycles", "precharge_pd_cycles", "selfrefresh_cycles",
	"powerdown_exits", "selfrefresh_entries",
	"requests", "avg_latency", "p50_latency", "p99_latency", "max_latency",
	"avg_queue_depth", "max_queue_depth",
}

// WriteCSV renders every channel's epochs as one flat CSV table, one row
// per (channel, epoch).
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, h := range csvHeader {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(h); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for ch := range ts.chans {
		for i := range ts.chans[ch].epochs {
			e := &ts.chans[ch].epochs[i]
			util := float64(e.ReadBusCycles+e.WriteBusCycles) / float64(ts.window)
			avgDepth := 0.0
			if e.DepthSamples > 0 {
				avgDepth = float64(e.DepthSum) / float64(e.DepthSamples)
			}
			_, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%.2f,%d\n",
				ch, i, e.Start, e.Start+ts.window,
				e.Reads, e.Writes, e.Activates, e.Precharges, e.Refreshes,
				e.RowHits, e.RowMisses, e.RowConflicts,
				e.ReadBusCycles, e.WriteBusCycles, util,
				e.PowerDownCycles, e.PrechargePDCycles, e.SelfRefreshCycles,
				e.PowerDownExits, e.SelfRefreshEntries,
				e.lat.Count(), e.lat.Mean(), e.lat.Quantile(0.5), e.lat.Quantile(0.99), e.lat.Max(),
				avgDepth, e.DepthMax)
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// tsJSON is the WriteJSON document shape.
type tsJSON struct {
	WindowCycles int64           `json:"window_cycles"`
	Channels     []tsChannelJSON `json:"channels"`
}

type tsChannelJSON struct {
	Channel int          `json:"channel"`
	Epochs  []epochJSON  `json:"epochs"`
	Totals  tsTotalsJSON `json:"totals"`
}

type epochJSON struct {
	Epoch
	Requests   int64   `json:"requests"`
	AvgLatency float64 `json:"avg_latency"`
	P50Latency int64   `json:"p50_latency"`
	P99Latency int64   `json:"p99_latency"`
	MaxLatency int64   `json:"max_latency"`
}

type tsTotalsJSON struct {
	stats.Channel
	RowHitRate     float64 `json:"row_hit_rate"`
	BusUtilization float64 `json:"bus_utilization"`
}

// WriteJSON renders the series as one JSON document with per-channel
// epochs and reconstructed totals.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	doc := tsJSON{WindowCycles: ts.window}
	for ch := range ts.chans {
		cj := tsChannelJSON{Channel: ch}
		for i := range ts.chans[ch].epochs {
			e := &ts.chans[ch].epochs[i]
			cj.Epochs = append(cj.Epochs, epochJSON{
				Epoch:      *e,
				Requests:   e.lat.Count(),
				AvgLatency: e.lat.Mean(),
				P50Latency: e.lat.Quantile(0.5),
				P99Latency: e.lat.Quantile(0.99),
				MaxLatency: e.lat.Max(),
			})
		}
		tot := ts.ChannelTotal(ch)
		cj.Totals = tsTotalsJSON{Channel: tot, RowHitRate: tot.RowHitRate(), BusUtilization: tot.BusUtilization()}
		doc.Channels = append(doc.Channels, cj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
