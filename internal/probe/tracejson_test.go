package probe

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(0); err == nil {
		t.Error("expected error for zero channels")
	}
	tr, err := NewTrace(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Channel(0).Emit(Event{Kind: KindRead, At: 1, End: 5})
	tr.Channel(1).Emit(Event{Kind: KindWrite, At: 2, End: 6})
	if tr.Events() != 2 {
		t.Errorf("Events() = %d, want 2", tr.Events())
	}
}

// findEvents returns the built records matching name and phase.
func findEvents(doc ChromeTrace, name, ph string) []ChromeEvent {
	var out []ChromeEvent
	for _, ev := range doc.TraceEvents {
		if ev.Name == name && ev.Ph == ph {
			out = append(out, ev)
		}
	}
	return out
}

func TestTraceBuildCommandSlices(t *testing.T) {
	tr, _ := NewTrace(1)
	s := tr.Channel(0)
	s.Emit(Event{Kind: KindActivate, Bank: 2, Row: 7, At: 10, End: 15})
	s.Emit(Event{Kind: KindRead, Bank: 2, Row: 7, At: 15, End: 23, Aux: 4})
	s.Emit(Event{Kind: KindRefresh, Bank: -1, At: 100, End: 160})
	doc := tr.Build()

	acts := findEvents(doc, "ACT", "X")
	if len(acts) != 1 {
		t.Fatalf("got %d ACT slices, want 1", len(acts))
	}
	if acts[0].Ts != 10 || acts[0].Dur != 5 || acts[0].Pid != 0 || acts[0].Tid != tidBank0+2 {
		t.Errorf("ACT slice wrong: %+v", acts[0])
	}
	if acts[0].Args["row"] != int32(7) {
		t.Errorf("ACT row arg = %v", acts[0].Args["row"])
	}
	rds := findEvents(doc, "RD", "X")
	if len(rds) != 1 || rds[0].Dur != 8 {
		t.Errorf("RD slice wrong: %+v", rds)
	}
	refs := findEvents(doc, "REF", "X")
	if len(refs) != 1 || refs[0].Tid != tidPower {
		t.Errorf("REF should render on the power track: %+v", refs)
	}

	// Metadata: process name plus requests/power tracks plus bank 2.
	if n := len(findEvents(doc, "process_name", "M")); n != 1 {
		t.Errorf("got %d process_name records, want 1", n)
	}
	threads := findEvents(doc, "thread_name", "M")
	names := map[any]bool{}
	for _, th := range threads {
		names[th.Args["name"]] = true
	}
	for _, want := range []string{"requests", "refresh+power", "bank 2"} {
		if !names[want] {
			t.Errorf("missing thread_name %q in %v", want, names)
		}
	}
}

func TestTracePowerAndQueueLowering(t *testing.T) {
	tr, _ := NewTrace(1)
	s := tr.Channel(0)
	s.Emit(Event{Kind: KindPowerDown, Flags: FlagPrechargedPD, Bank: -1, At: 500, End: 500, Aux: 100})
	s.Emit(Event{Kind: KindEnqueue, Bank: 0, At: 600, Depth: 3})
	s.Emit(Event{Kind: KindComplete, Bank: 0, At: 650, Depth: 2, Aux: 50})
	s.Emit(Event{Kind: KindRowHit, At: 600}) // deliberately not exported
	doc := tr.Build()

	pd := findEvents(doc, "precharge power-down", "X")
	if len(pd) != 1 || pd[0].Ts != 400 || pd[0].Dur != 100 {
		t.Errorf("power-down slice wrong: %+v", pd)
	}
	states := findEvents(doc, "power_state", "C")
	if len(states) != 2 || states[0].Ts != 400 || states[1].Ts != 500 {
		t.Errorf("power_state counters wrong: %+v", states)
	}
	if states[0].Args["state"] != 1 || states[1].Args["state"] != 0 {
		t.Errorf("power_state values wrong: %+v", states)
	}
	if n := len(findEvents(doc, "enqueue", "i")); n != 1 {
		t.Errorf("got %d enqueue instants, want 1", n)
	}
	depths := findEvents(doc, "queue_depth", "C")
	if len(depths) != 2 || depths[0].Args["depth"] != int32(3) || depths[1].Args["depth"] != int32(2) {
		t.Errorf("queue_depth counters wrong: %+v", depths)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "row-hit" {
			t.Errorf("row hits should not be exported: %+v", ev)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && ev.Scope != "t" {
			t.Errorf("instant without thread scope: %+v", ev)
		}
	}
}

func TestTraceWriteJSONRoundTrip(t *testing.T) {
	tr, _ := NewTrace(2)
	tr.Channel(0).Emit(Event{Kind: KindWrite, Bank: 1, At: 4, End: 12, Aux: 4})
	tr.Channel(1).Emit(Event{Kind: KindSelfRefresh, Bank: -1, At: 900, End: 900, Aux: 300})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("traceEvents[%d] missing %q: %v", i, key, ev)
			}
		}
	}
	if doc.OtherData["channels"] != float64(2) {
		t.Errorf("otherData channels = %v, want 2", doc.OtherData["channels"])
	}
}
