// Run-level phase spans: wall-clock slices of the simulation pipeline
// (generate → cache lookup → simulate → report) rendered into the same
// Chrome trace document as the cycle-level channel tracks, so a full
// paper run opens in Perfetto and shows where the host time goes.
//
// Channel tracks keep their DRAM-cycle timebase on pids 0..channels-1;
// phase spans live on a dedicated high pid in wall-clock microseconds.
// Perfetto renders both; the OtherData block names the units.
//
// Worker identity: Go offers no goroutine id, and the simulation API
// deliberately takes no context. Instead the recorder hands out *lanes*
// from a lowest-free-id free list — a point acquires a lane for its
// lifetime and releases it on completion, so with N pool workers at most
// N lanes exist and each renders as one worker track.
package probe

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanPid is the Chrome-trace process id carrying phase spans, far above
// any real channel index so the track groups never collide.
const SpanPid = 1000

// PhaseSpan is one recorded phase slice on one lane.
type PhaseSpan struct {
	Lane  int
	Name  string
	Start time.Duration // offset from the recorder's epoch
	End   time.Duration
}

// Spans records phase spans across concurrent simulation points. The zero
// value is not usable; a nil *Spans is fully disabled (Acquire returns a
// nil lane whose methods no-op).
type Spans struct {
	epoch time.Time

	mu    sync.Mutex
	free  []int // released lane ids, min-heap by simple sort on push
	next  int   // next never-used lane id
	spans []PhaseSpan
}

// NewSpans returns a recorder with its epoch at now.
func NewSpans() *Spans {
	return &Spans{epoch: time.Now()}
}

// Lane is one worker track. A nil lane is inert.
type Lane struct {
	s  *Spans
	id int
}

// Acquire reserves the lowest free lane. Nil-safe: a nil recorder hands
// out a nil (inert) lane.
func (s *Spans) Acquire() *Lane {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	var id int
	if n := len(s.free); n > 0 {
		sort.Ints(s.free)
		id = s.free[0]
		s.free = s.free[1:]
	} else {
		id = s.next
		s.next++
	}
	s.mu.Unlock()
	return &Lane{s: s, id: id}
}

// Release returns the lane to the free list. Nil-safe.
func (l *Lane) Release() {
	if l == nil {
		return
	}
	l.s.mu.Lock()
	l.s.free = append(l.s.free, l.id)
	l.s.mu.Unlock()
}

var noopEnd = func() {}

// Phase starts a named phase on the lane and returns the function that
// ends it. Nil-safe: a nil lane returns a shared no-op.
func (l *Lane) Phase(name string) func() {
	if l == nil {
		return noopEnd
	}
	start := time.Since(l.s.epoch)
	return func() {
		end := time.Since(l.s.epoch)
		l.s.mu.Lock()
		l.s.spans = append(l.s.spans, PhaseSpan{Lane: l.id, Name: name, Start: start, End: end})
		l.s.mu.Unlock()
	}
}

// Len returns the number of recorded spans. Nil-safe.
func (s *Spans) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Lanes returns how many distinct lanes were ever acquired. Nil-safe.
func (s *Spans) Lanes() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// ChromeEvents lowers the recorded spans to Chrome trace records on
// SpanPid: a named process, one named thread per lane ("worker N"), and
// one complete ("X") slice per span in wall-clock microseconds.
func (s *Spans) ChromeEvents() []ChromeEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	spans := append([]PhaseSpan(nil), s.spans...)
	lanes := s.next
	s.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	evs := []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: SpanPid, Tid: 0,
		Args: map[string]any{"name": "run phases (wall clock)"},
	}}
	for lane := 0; lane < lanes; lane++ {
		evs = append(evs, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: SpanPid, Tid: lane,
			Args: map[string]any{"name": "worker " + strconv.Itoa(lane)},
		})
	}
	for _, sp := range spans {
		d := (sp.End - sp.Start).Microseconds()
		if d < 1 {
			d = 1
		}
		evs = append(evs, ChromeEvent{
			Name: sp.Name, Ph: "X",
			Ts:  sp.Start.Microseconds(),
			Dur: d,
			Pid: SpanPid, Tid: sp.Lane,
		})
	}
	return evs
}

// AppendTo merges the span records into a built trace document and notes
// the wall-clock timebase alongside the cycle timebase.
func (s *Spans) AppendTo(doc *ChromeTrace) {
	evs := s.ChromeEvents()
	if len(evs) == 0 {
		return
	}
	doc.TraceEvents = append(doc.TraceEvents, evs...)
	if doc.OtherData == nil {
		doc.OtherData = map[string]any{}
	}
	doc.OtherData["phase_span_time_unit"] = "wall-clock microseconds"
	doc.OtherData["phase_span_pid"] = SpanPid
}
