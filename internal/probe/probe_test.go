package probe

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindActivate:      "ACT",
		KindPrecharge:     "PRE",
		KindRead:          "RD",
		KindWrite:         "WR",
		KindRefresh:       "REF",
		KindRowHit:        "row-hit",
		KindRowMiss:       "row-miss",
		KindRowConflict:   "row-conflict",
		KindPowerDown:     "power-down",
		KindSelfRefresh:   "self-refresh",
		KindEnqueue:       "enqueue",
		KindComplete:      "complete",
		KindChannelFail:   "channel-fail",
		KindThermalDerate: "thermal-derate",
		KindReadRetry:     "read-retry",
		KindStall:         "stall",
		KindDegrade:       "degrade",
		KindRecover:       "recover",
	}
	if len(want) != int(numKinds) {
		t.Fatalf("test covers %d kinds, package defines %d", len(want), numKinds)
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, s)
		}
	}
	if got := numKinds.String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("unknown kind String() = %q, want Kind(n) form", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	r := &Recorder{}
	if got := Multi(nil, r, nil); got != Sink(r) {
		t.Errorf("Multi with one live sink should unwrap it, got %T", got)
	}
	a, b := &Count{}, &Count{}
	m := Multi(a, nil, b)
	if m == nil {
		t.Fatal("Multi with two live sinks returned nil")
	}
	m.Emit(Event{Kind: KindRead})
	m.Emit(Event{Kind: KindWrite})
	for _, c := range []*Count{a, b} {
		if c.ByKind[KindRead] != 1 || c.ByKind[KindWrite] != 1 {
			t.Errorf("fan-out miscounted: %v", c.ByKind)
		}
	}
}

func TestFuncAdapter(t *testing.T) {
	var got []Kind
	s := Func(func(ev Event) { got = append(got, ev.Kind) })
	s.Emit(Event{Kind: KindActivate})
	s.Emit(Event{Kind: KindPrecharge})
	if len(got) != 2 || got[0] != KindActivate || got[1] != KindPrecharge {
		t.Errorf("Func sink saw %v", got)
	}
}

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	r.Emit(Event{Kind: KindRead, At: 10, End: 14})
	r.Emit(Event{Kind: KindComplete, At: 14, Aux: 4})
	if len(r.Events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(r.Events))
	}
	if r.Events[0].Kind != KindRead || r.Events[1].Aux != 4 {
		t.Errorf("recorded events wrong: %+v", r.Events)
	}
}

func TestCount(t *testing.T) {
	c := &Count{}
	for i := 0; i < 3; i++ {
		c.Emit(Event{Kind: KindActivate})
	}
	c.Emit(Event{Kind: KindRefresh})
	c.Emit(Event{Kind: Kind(200)}) // out of range: ignored, no panic
	if c.ByKind[KindActivate] != 3 || c.ByKind[KindRefresh] != 1 {
		t.Errorf("counts wrong: %v", c.ByKind)
	}
	if c.Total() != 4 {
		t.Errorf("Total() = %d, want 4", c.Total())
	}
}
