// Chrome trace-event export: the Trace sink records the raw event stream
// and renders it as a Trace Event Format JSON document ("traceEvents"
// array of ph/ts/pid/tid records) that ui.perfetto.dev and
// chrome://tracing open directly. Each memory channel becomes a process
// track, each bank a thread track carrying command slices, with counter
// tracks for queue depth and power state.
package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace collects events for Chrome trace-event export. Attach Channel(i)
// as channel i's sink; per-channel buffers are independent so parallel
// simulation needs no locking.
type Trace struct {
	chans []*traceChan
}

// NewTrace builds a trace collector for the given channel count.
func NewTrace(channels int) (*Trace, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("probe: trace over %d channels", channels)
	}
	t := &Trace{chans: make([]*traceChan, channels)}
	for i := range t.chans {
		t.chans[i] = &traceChan{}
	}
	return t, nil
}

// Channel returns channel ch's sink.
func (t *Trace) Channel(ch int) Sink { return t.chans[ch] }

// Events returns the number of collected events across all channels.
func (t *Trace) Events() int {
	var n int
	for _, tc := range t.chans {
		n += len(tc.events)
	}
	return n
}

type traceChan struct {
	events []Event
}

// Emit implements Sink.
func (tc *traceChan) Emit(ev Event) { tc.events = append(tc.events, ev) }

// ChromeEvent is one record of the Chrome Trace Event Format. Ts and Dur
// are in the trace's time unit — this exporter writes DRAM cycles.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON-object form of the format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Thread-track ids inside one channel process. Banks occupy tidBank0 and
// up, so the fixed tracks sort first in the viewer.
const (
	tidRequests = 0 // enqueue/complete instants and the queue counter
	tidPower    = 1 // refresh slices, power-state slices and counter
	tidBank0    = 2
)

// Build assembles the Chrome trace document from the collected events.
func (t *Trace) Build() ChromeTrace {
	doc := ChromeTrace{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"time_unit": "DRAM cycles", "channels": len(t.chans)},
	}
	for ch, tc := range t.chans {
		doc.TraceEvents = append(doc.TraceEvents,
			ChromeEvent{Name: "process_name", Ph: "M", Pid: ch, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("channel %d", ch)}},
			ChromeEvent{Name: "thread_name", Ph: "M", Pid: ch, Tid: tidRequests,
				Args: map[string]any{"name": "requests"}},
			ChromeEvent{Name: "thread_name", Ph: "M", Pid: ch, Tid: tidPower,
				Args: map[string]any{"name": "refresh+power"}},
		)
		banksNamed := map[int32]bool{}
		for _, ev := range tc.events {
			if ev.Bank >= 0 && !banksNamed[ev.Bank] &&
				(ev.Kind == KindActivate || ev.Kind == KindPrecharge || ev.Kind == KindRead || ev.Kind == KindWrite) {
				banksNamed[ev.Bank] = true
				doc.TraceEvents = append(doc.TraceEvents, ChromeEvent{
					Name: "thread_name", Ph: "M", Pid: ch, Tid: tidBank0 + int(ev.Bank),
					Args: map[string]any{"name": fmt.Sprintf("bank %d", ev.Bank)}})
			}
			doc.TraceEvents = append(doc.TraceEvents, convert(ch, ev)...)
		}
	}
	return doc
}

// WriteJSON renders the trace document as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Build())
}

// dur clamps a slice duration to at least one cycle so it stays visible.
func dur(ev Event) int64 {
	if d := ev.End - ev.At; d > 0 {
		return d
	}
	return 1
}

// bankTid maps an event's bank to its thread track (all-bank commands
// render on the refresh+power track).
func bankTid(ev Event) int {
	if ev.Bank < 0 {
		return tidPower
	}
	return tidBank0 + int(ev.Bank)
}

// convert lowers one probe event to its Chrome trace records.
func convert(ch int, ev Event) []ChromeEvent {
	switch ev.Kind {
	case KindActivate:
		return []ChromeEvent{{Name: "ACT", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: bankTid(ev),
			Args: map[string]any{"row": ev.Row}}}
	case KindPrecharge:
		return []ChromeEvent{{Name: "PRE", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: bankTid(ev)}}
	case KindRead:
		return []ChromeEvent{{Name: "RD", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: bankTid(ev),
			Args: map[string]any{"row": ev.Row, "bus_cycles": ev.Aux}}}
	case KindWrite:
		return []ChromeEvent{{Name: "WR", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: bankTid(ev),
			Args: map[string]any{"row": ev.Row, "bus_cycles": ev.Aux}}}
	case KindRefresh:
		return []ChromeEvent{{Name: "REF", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: tidPower}}
	case KindRowConflict:
		return []ChromeEvent{{Name: "row-conflict", Ph: "i", Ts: ev.At, Pid: ch, Tid: bankTid(ev), Scope: "t",
			Args: map[string]any{"row": ev.Row}}}
	case KindPowerDown:
		name := "power-down"
		if ev.Flags&FlagPrechargedPD != 0 {
			name = "precharge power-down"
		}
		start := ev.End - ev.Aux
		return []ChromeEvent{
			{Name: name, Ph: "X", Ts: start, Dur: dur(Event{At: start, End: ev.End}), Pid: ch, Tid: tidPower},
			{Name: "power_state", Ph: "C", Ts: start, Pid: ch, Tid: tidPower, Args: map[string]any{"state": 1}},
			{Name: "power_state", Ph: "C", Ts: ev.End, Pid: ch, Tid: tidPower, Args: map[string]any{"state": 0}},
		}
	case KindSelfRefresh:
		start := ev.End - ev.Aux
		return []ChromeEvent{
			{Name: "self-refresh", Ph: "X", Ts: start, Dur: dur(Event{At: start, End: ev.End}), Pid: ch, Tid: tidPower},
			{Name: "power_state", Ph: "C", Ts: start, Pid: ch, Tid: tidPower, Args: map[string]any{"state": 2}},
			{Name: "power_state", Ph: "C", Ts: ev.End, Pid: ch, Tid: tidPower, Args: map[string]any{"state": 0}},
		}
	case KindEnqueue:
		return []ChromeEvent{
			{Name: "enqueue", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "t"},
			{Name: "queue_depth", Ph: "C", Ts: ev.At, Pid: ch, Tid: tidRequests, Args: map[string]any{"depth": ev.Depth}},
		}
	case KindComplete:
		return []ChromeEvent{
			{Name: "complete", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "t",
				Args: map[string]any{"latency_cycles": ev.Aux}},
			{Name: "queue_depth", Ph: "C", Ts: ev.At, Pid: ch, Tid: tidRequests, Args: map[string]any{"depth": ev.Depth}},
		}
	case KindChannelFail:
		// Process-scoped instant so the dropout is visible on every track
		// of the channel at the failure point.
		return []ChromeEvent{{Name: "CHANNEL FAIL", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "p",
			Args: map[string]any{"failed_channel": ev.Aux}}}
	case KindThermalDerate:
		return []ChromeEvent{{Name: "thermal-derate", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidPower, Scope: "p",
			Args: map[string]any{"refresh_interval_cycles": ev.Aux}}}
	case KindReadRetry:
		return []ChromeEvent{{Name: "read-retry", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "t",
			Args: map[string]any{"attempt": ev.Aux}}}
	case KindStall:
		return []ChromeEvent{{Name: "stall", Ph: "X", Ts: ev.At, Dur: dur(ev), Pid: ch, Tid: tidRequests,
			Args: map[string]any{"stall_cycles": ev.Aux}}}
	case KindDegrade:
		return []ChromeEvent{{Name: "degrade", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "p",
			Args: map[string]any{"ladder_level": ev.Aux}}}
	case KindRecover:
		return []ChromeEvent{{Name: "recover", Ph: "i", Ts: ev.At, Pid: ch, Tid: tidRequests, Scope: "p",
			Args: map[string]any{"frame": ev.Aux}}}
	default:
		// Row hits/misses stay in the time series; they would double the
		// trace size for little visual value.
		return nil
	}
}
