package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewTimeSeriesValidation(t *testing.T) {
	if _, err := NewTimeSeries(0, 100); err == nil {
		t.Error("expected error for zero channels")
	}
	if _, err := NewTimeSeries(2, 0); err == nil {
		t.Error("expected error for zero window")
	}
	ts, err := NewTimeSeries(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Window() != 100 || ts.Channels() != 2 {
		t.Errorf("Window=%d Channels=%d, want 100, 2", ts.Window(), ts.Channels())
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts, err := NewTimeSeries(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := ts.Channel(0)
	s.Emit(Event{Kind: KindActivate, At: 10, End: 15})
	s.Emit(Event{Kind: KindActivate, At: 110, End: 115})
	s.Emit(Event{Kind: KindPrecharge, At: 210, End: 213})
	s.Emit(Event{Kind: KindRowMiss, At: 10})
	s.Emit(Event{Kind: KindRowHit, At: 111})

	eps := ts.Epochs(0)
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3", len(eps))
	}
	if eps[0].Activates != 1 || eps[1].Activates != 1 || eps[2].Activates != 0 {
		t.Errorf("activates per epoch: %d,%d,%d", eps[0].Activates, eps[1].Activates, eps[2].Activates)
	}
	if eps[2].Precharges != 1 {
		t.Errorf("epoch 2 precharges = %d, want 1", eps[2].Precharges)
	}
	if eps[0].RowMisses != 1 || eps[1].RowHits != 1 {
		t.Errorf("row outcomes misplaced: %+v %+v", eps[0], eps[1])
	}
	if eps[0].Start != 0 || eps[1].Start != 100 || eps[2].Start != 200 {
		t.Errorf("epoch starts: %d,%d,%d", eps[0].Start, eps[1].Start, eps[2].Start)
	}
}

func TestTimeSeriesSpreadAcrossEpochBoundary(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	s := ts.Channel(0)
	// A read whose 10 bus cycles straddle the 100-cycle boundary: 5 in
	// epoch 0, 5 in epoch 1. The command itself is counted at its issue
	// cycle (epoch 0).
	s.Emit(Event{Kind: KindRead, At: 90, End: 105, Aux: 10})
	eps := ts.Epochs(0)
	if len(eps) != 2 {
		t.Fatalf("got %d epochs, want 2", len(eps))
	}
	if eps[0].Reads != 1 || eps[1].Reads != 0 {
		t.Errorf("reads: %d,%d", eps[0].Reads, eps[1].Reads)
	}
	if eps[0].ReadBusCycles != 5 || eps[1].ReadBusCycles != 5 {
		t.Errorf("read bus cycles split %d/%d, want 5/5", eps[0].ReadBusCycles, eps[1].ReadBusCycles)
	}
	if eps[0].BusyEnd != 105 {
		t.Errorf("BusyEnd = %d, want 105", eps[0].BusyEnd)
	}

	// A power-down residency spanning three epochs, precharged.
	s.Emit(Event{Kind: KindPowerDown, Flags: FlagPrechargedPD, At: 250, End: 250, Aux: 130})
	eps = ts.Epochs(0)
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3", len(eps))
	}
	// [120, 250) covers 80 cycles of epoch 1 and 50 of epoch 2.
	if eps[1].PowerDownCycles != 80 || eps[2].PowerDownCycles != 50 {
		t.Errorf("powerdown split %d/%d, want 80/50", eps[1].PowerDownCycles, eps[2].PowerDownCycles)
	}
	if eps[1].PrechargePDCycles != 80 || eps[2].PrechargePDCycles != 50 {
		t.Errorf("precharge-PD split %d/%d, want 80/50", eps[1].PrechargePDCycles, eps[2].PrechargePDCycles)
	}
	if eps[2].PowerDownExits != 1 {
		t.Errorf("powerdown exits = %d, want 1", eps[2].PowerDownExits)
	}
}

// TestTimeSeriesWindowEdge pins the binning convention at exact window
// boundaries: windows are half-open [Start, Start+window), so a command
// issued exactly on an edge belongs to the later window, and a bus span
// ending exactly on an edge contributes nothing to the later window. An
// off-by-one here skews every -metrics-out CSV.
func TestTimeSeriesWindowEdge(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	s := ts.Channel(0)
	s.Emit(Event{Kind: KindActivate, At: 99, End: 105})  // last cycle of epoch 0
	s.Emit(Event{Kind: KindActivate, At: 100, End: 106}) // first cycle of epoch 1
	eps := ts.Epochs(0)
	if len(eps) != 2 {
		t.Fatalf("got %d epochs, want 2", len(eps))
	}
	if eps[0].Activates != 1 || eps[1].Activates != 1 {
		t.Errorf("activates split %d/%d, want 1/1", eps[0].Activates, eps[1].Activates)
	}

	// Bus span [190, 200) ends exactly on the epoch-2 edge: all 10 cycles
	// land in epoch 1 and epoch 2 is not even materialized.
	s.Emit(Event{Kind: KindRead, At: 190, End: 200, Aux: 10})
	eps = ts.Epochs(0)
	if len(eps) != 2 {
		t.Fatalf("span ending on the edge materialized epoch 2: %d epochs", len(eps))
	}
	if eps[1].ReadBusCycles != 10 {
		t.Errorf("epoch 1 read bus cycles = %d, want 10", eps[1].ReadBusCycles)
	}

	// Bus span [200, 210) starts exactly on the edge: all of it in epoch 2.
	s.Emit(Event{Kind: KindWrite, At: 200, End: 210, Aux: 10})
	eps = ts.Epochs(0)
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3", len(eps))
	}
	if eps[1].WriteBusCycles != 0 || eps[2].WriteBusCycles != 10 {
		t.Errorf("write bus cycles split %d/%d, want 0/10", eps[1].WriteBusCycles, eps[2].WriteBusCycles)
	}
}

// TestTimeSeriesFinalPartialWindow checks a run ending mid-window: the
// final epoch carries only the cycles that actually happened, and the
// reconstructed makespan is the true busy end, not the window edge.
func TestTimeSeriesFinalPartialWindow(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	s := ts.Channel(0)
	s.Emit(Event{Kind: KindRead, At: 40, End: 44, Aux: 4})
	s.Emit(Event{Kind: KindRead, At: 246, End: 250, Aux: 4}) // run ends at 250
	eps := ts.Epochs(0)
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3", len(eps))
	}
	if eps[2].Start != 200 || eps[2].ReadBusCycles != 4 {
		t.Errorf("final partial epoch start=%d bus=%d, want 200, 4", eps[2].Start, eps[2].ReadBusCycles)
	}
	if got := ts.ChannelTotal(0).BusyCycles; got != 250 {
		t.Errorf("reconstructed makespan = %d, want 250 (mid-window), not the 300 window edge", got)
	}
	// A middle epoch the run skipped entirely stays all-zero but present,
	// so epoch indices keep matching Start/window.
	if eps[1].Reads != 0 || eps[1].ReadBusCycles != 0 {
		t.Errorf("skipped epoch 1 not empty: %+v", eps[1])
	}
}

// TestTimeSeriesOutOfOrderCompletion feeds events whose At regresses (a
// completion recorded after a later command, the shape queue wrappers can
// emit around idle gaps) and events with End < At (the probe contract's
// clamped-At marker): each must bin by its own cycle without panicking or
// polluting neighboring windows.
func TestTimeSeriesOutOfOrderCompletion(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	s := ts.Channel(0)
	s.Emit(Event{Kind: KindComplete, At: 250, Depth: 1, Aux: 30})
	s.Emit(Event{Kind: KindComplete, At: 150, Depth: 0, Aux: 70}) // out of order
	eps := ts.Epochs(0)
	if len(eps) != 3 {
		t.Fatalf("got %d epochs, want 3", len(eps))
	}
	if eps[1].DepthSamples != 1 || eps[2].DepthSamples != 1 {
		t.Errorf("depth samples split %d/%d, want 1/1", eps[1].DepthSamples, eps[2].DepthSamples)
	}
	if eps[1].Latency().Max() != 70 || eps[2].Latency().Max() != 30 {
		t.Errorf("latency binned wrong: epoch1 max=%d epoch2 max=%d, want 70/30",
			eps[1].Latency().Max(), eps[2].Latency().Max())
	}

	// End < At: a refresh served inside an idle gap, emitted late with its
	// At clamped forward but End exact. The command counts at its clamped
	// cycle; the residency span derives from End and lands where the gap was.
	s.Emit(Event{Kind: KindRefresh, At: 260, End: 235})
	s.Emit(Event{Kind: KindPowerDown, At: 260, End: 210, Aux: 30}) // residency [180, 210)
	eps = ts.Epochs(0)
	if eps[2].Refreshes != 1 {
		t.Errorf("clamped refresh not counted at its At epoch: %+v", eps[2])
	}
	if eps[1].PowerDownCycles != 20 || eps[2].PowerDownCycles != 10 {
		t.Errorf("powerdown residency split %d/%d, want 20/10 across the [180,210) span",
			eps[1].PowerDownCycles, eps[2].PowerDownCycles)
	}
}

func TestTimeSeriesQueueAndLatency(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	s := ts.Channel(0)
	s.Emit(Event{Kind: KindEnqueue, At: 5, Depth: 1})
	s.Emit(Event{Kind: KindEnqueue, At: 6, Depth: 2})
	s.Emit(Event{Kind: KindComplete, At: 40, Depth: 1, Aux: 35})
	s.Emit(Event{Kind: KindComplete, At: 60, Depth: 0, Aux: 54})
	e := &ts.Epochs(0)[0]
	if e.DepthSamples != 4 || e.DepthSum != 4 || e.DepthMax != 2 {
		t.Errorf("depth samples=%d sum=%d max=%d, want 4,4,2", e.DepthSamples, e.DepthSum, e.DepthMax)
	}
	if e.Latency().Count() != 2 || e.Latency().Max() != 54 {
		t.Errorf("latency count=%d max=%d, want 2,54", e.Latency().Count(), e.Latency().Max())
	}
}

func TestChannelTotalReconstruction(t *testing.T) {
	ts, _ := NewTimeSeries(2, 50)
	a := ts.Channel(0)
	a.Emit(Event{Kind: KindRead, At: 10, End: 14, Aux: 4})
	a.Emit(Event{Kind: KindWrite, At: 60, End: 64, Aux: 4})
	a.Emit(Event{Kind: KindActivate, At: 5, End: 10})
	a.Emit(Event{Kind: KindSelfRefresh, At: 200, End: 200, Aux: 80})
	ts.Channel(1).Emit(Event{Kind: KindRefresh, At: 30, End: 90})

	tot := ts.ChannelTotal(0)
	if tot.Reads != 1 || tot.Writes != 1 || tot.Activates != 1 {
		t.Errorf("totals rd=%d wr=%d act=%d", tot.Reads, tot.Writes, tot.Activates)
	}
	if tot.ReadBusCycles != 4 || tot.WriteBusCycles != 4 {
		t.Errorf("bus cycles rd=%d wr=%d", tot.ReadBusCycles, tot.WriteBusCycles)
	}
	if tot.SelfRefreshCycles != 80 || tot.SelfRefreshEntries != 1 {
		t.Errorf("selfrefresh cycles=%d entries=%d", tot.SelfRefreshCycles, tot.SelfRefreshEntries)
	}
	if tot.BusyCycles != 64 {
		t.Errorf("BusyCycles = %d, want 64 (max End of data bursts)", tot.BusyCycles)
	}
	other := ts.ChannelTotal(1)
	if other.Refreshes != 1 || other.Reads != 0 {
		t.Errorf("channel 1 leaked into channel 0 or vice versa: %+v", other)
	}
}

func TestWriteCSVShape(t *testing.T) {
	ts, _ := NewTimeSeries(2, 100)
	ts.Channel(0).Emit(Event{Kind: KindRead, At: 10, End: 14, Aux: 4})
	ts.Channel(0).Emit(Event{Kind: KindRead, At: 150, End: 154, Aux: 4})
	ts.Channel(1).Emit(Event{Kind: KindWrite, At: 20, End: 24, Aux: 4})

	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 epochs on channel 0 + 1 epoch on channel 1.
	if len(lines) != 4 {
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	if len(header) != len(csvHeader) {
		t.Fatalf("header has %d columns, want %d", len(header), len(csvHeader))
	}
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(csvHeader) {
			t.Errorf("row has %d columns, want %d: %s", got, len(csvHeader), line)
		}
	}
	if !strings.HasPrefix(lines[0], "channel,epoch,start_cycle") {
		t.Errorf("unexpected header: %s", lines[0])
	}
}

func TestWriteJSONShape(t *testing.T) {
	ts, _ := NewTimeSeries(1, 100)
	ts.Channel(0).Emit(Event{Kind: KindRead, At: 10, End: 14, Aux: 4})
	ts.Channel(0).Emit(Event{Kind: KindRowHit, At: 10})

	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WindowCycles int64 `json:"window_cycles"`
		Channels     []struct {
			Channel int `json:"channel"`
			Epochs  []map[string]any
			Totals  struct {
				RowHitRate float64 `json:"row_hit_rate"`
			} `json:"totals"`
		} `json:"channels"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.WindowCycles != 100 || len(doc.Channels) != 1 || len(doc.Channels[0].Epochs) != 1 {
		t.Errorf("document shape wrong: %+v", doc)
	}
	if doc.Channels[0].Totals.RowHitRate != 1 {
		t.Errorf("row hit rate = %g, want 1", doc.Channels[0].Totals.RowHitRate)
	}
}
