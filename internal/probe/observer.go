// Observer bundles the command-line observability surface shared by the
// binaries: it owns the optional time-series and trace sinks selected by
// the -metrics-out / -trace-out / -probe-window flags, hands out combined
// per-channel sinks, and writes the output files plus the run manifest.
package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Observer is the flag-driven sink set of one CLI run. The zero value (or
// a nil *Observer) is fully disabled.
type Observer struct {
	ts         *TimeSeries
	tr         *Trace
	spans      *Spans
	traceOut   string
	metricsOut string
}

// NewObserver builds the sinks requested by the output paths; both empty
// returns a disabled (nil) observer. window is the time-series epoch
// length in cycles (only used when metricsOut is set).
func NewObserver(channels int, window int64, traceOut, metricsOut string) (*Observer, error) {
	if traceOut == "" && metricsOut == "" {
		return nil, nil
	}
	o := &Observer{traceOut: traceOut, metricsOut: metricsOut}
	for _, path := range []string{traceOut, metricsOut} {
		if err := CheckWritable(path); err != nil {
			return nil, fmt.Errorf("probe: output not writable: %w", err)
		}
	}
	if metricsOut != "" {
		ts, err := NewTimeSeries(channels, window)
		if err != nil {
			return nil, err
		}
		o.ts = ts
	}
	if traceOut != "" {
		tr, err := NewTrace(channels)
		if err != nil {
			return nil, err
		}
		o.tr = tr
	}
	return o, nil
}

// Enabled reports whether any sink is active.
func (o *Observer) Enabled() bool { return o != nil && (o.ts != nil || o.tr != nil) }

// Channel returns channel ch's combined sink (nil when disabled), suitable
// for memsys.Config.NewProbe.
func (o *Observer) Channel(ch int) Sink {
	if o == nil {
		return nil
	}
	var sinks []Sink
	if o.ts != nil {
		sinks = append(sinks, o.ts.Channel(ch))
	}
	if o.tr != nil {
		sinks = append(sinks, o.tr.Channel(ch))
	}
	return Multi(sinks...)
}

// SetSpans attaches a run-level phase-span recorder; its spans are merged
// into the trace document on WriteOutputs. Nil-safe no-op when the
// observer (or its trace sink) is disabled.
func (o *Observer) SetSpans(s *Spans) {
	if o != nil {
		o.spans = s
	}
}

// TimeSeries returns the windowed collector (nil unless -metrics-out).
func (o *Observer) TimeSeries() *TimeSeries {
	if o == nil {
		return nil
	}
	return o.ts
}

// Trace returns the trace collector (nil unless -trace-out).
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.tr
}

// ManifestPath returns where WriteOutputs stores the run manifest: next to
// the metrics file when one is written, else next to the trace file.
func (o *Observer) ManifestPath() string {
	primary := o.metricsOut
	if primary == "" {
		primary = o.traceOut
	}
	return primary + ".manifest.json"
}

// WriteOutputs stores the collected artifacts — metrics as CSV (or JSON
// for a .json path), the Chrome trace, and the manifest describing the
// run — and records each file in the manifest's outputs map.
func (o *Observer) WriteOutputs(m *Manifest) error {
	if !o.Enabled() {
		return nil
	}
	if o.ts != nil {
		if err := writeFile(o.metricsOut, func(w io.Writer) error {
			if strings.HasSuffix(o.metricsOut, ".json") {
				return o.ts.WriteJSON(w)
			}
			return o.ts.WriteCSV(w)
		}); err != nil {
			return fmt.Errorf("probe: writing metrics: %w", err)
		}
		m.AddOutput("metrics", o.metricsOut)
	}
	if o.tr != nil {
		if err := writeFile(o.traceOut, func(w io.Writer) error {
			doc := o.tr.Build()
			o.spans.AppendTo(&doc)
			return json.NewEncoder(w).Encode(doc)
		}); err != nil {
			return fmt.Errorf("probe: writing trace: %w", err)
		}
		m.AddOutput("trace", o.traceOut)
	}
	path := o.ManifestPath()
	m.AddOutput("manifest", path)
	if err := m.Write(path); err != nil {
		return fmt.Errorf("probe: writing manifest: %w", err)
	}
	return nil
}

// CheckWritable verifies that path can be created for writing, so a CLI
// run fails before the simulation instead of after it when an output flag
// points somewhere unwritable (missing directory, permission, path is a
// directory). An empty path is fine (output disabled). A file created
// purely by the probe is removed again; an existing file is left intact.
func CheckWritable(path string) error {
	if path == "" {
		return nil
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	if os.IsNotExist(statErr) {
		os.Remove(path) // leave no empty artifact behind on later failure
	}
	return nil
}

// writeFile creates path and runs emit against it, surfacing close errors.
func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
