package probe

import (
	"sync"
	"testing"
	"time"
)

// TestSpansLaneReuse: lanes hand out the lowest free id, so sequential
// points share lane 0 and N concurrent points occupy lanes 0..N-1.
func TestSpansLaneReuse(t *testing.T) {
	s := NewSpans()
	l0 := s.Acquire()
	if l0.id != 0 {
		t.Fatalf("first lane id = %d, want 0", l0.id)
	}
	l1 := s.Acquire()
	if l1.id != 1 {
		t.Fatalf("second concurrent lane id = %d, want 1", l1.id)
	}
	l0.Release()
	l2 := s.Acquire()
	if l2.id != 0 {
		t.Errorf("reacquired lane id = %d, want reused 0", l2.id)
	}
	l1.Release()
	l2.Release()
	if got := s.Lanes(); got != 2 {
		t.Errorf("Lanes() = %d, want 2", got)
	}
}

// TestSpansPhasesRecord: Phase/end pairs append spans with ordered times.
func TestSpansPhasesRecord(t *testing.T) {
	s := NewSpans()
	l := s.Acquire()
	end := l.Phase("generate")
	time.Sleep(time.Millisecond)
	end()
	end = l.Phase("simulate")
	end()
	l.Release()

	if s.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", s.Len())
	}
	sp := s.spans[0]
	if sp.Name != "generate" || sp.Lane != 0 || sp.End < sp.Start {
		t.Errorf("span[0] = %+v", sp)
	}
}

// TestSpansNilSafe: a nil recorder and its nil lanes are inert.
func TestSpansNilSafe(t *testing.T) {
	var s *Spans
	l := s.Acquire()
	if l != nil {
		t.Fatal("nil recorder must hand out nil lane")
	}
	l.Phase("x")() // must not panic
	l.Release()
	if s.Len() != 0 || s.Lanes() != 0 || s.ChromeEvents() != nil {
		t.Error("nil recorder must read as empty")
	}
	doc := ChromeTrace{}
	s.AppendTo(&doc)
	if len(doc.TraceEvents) != 0 {
		t.Error("nil recorder must not append events")
	}
}

// TestSpansConcurrent exercises acquire/phase/release from many
// goroutines (the -race gate) and checks lane count never exceeds the
// concurrency.
func TestSpansConcurrent(t *testing.T) {
	s := NewSpans()
	const workers = 4
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			l := s.Acquire()
			end := l.Phase("simulate")
			end()
			l.Release()
			<-sem
		}()
	}
	wg.Wait()
	if got := s.Lanes(); got > workers+1 {
		// +1 slack: a goroutine can release just after another acquires.
		t.Errorf("Lanes() = %d, want <= %d", got, workers+1)
	}
	if s.Len() != 64 {
		t.Errorf("Len() = %d, want 64", s.Len())
	}
}

// TestSpansChromeEvents pins the trace lowering: dedicated pid, one
// thread_name per lane, X slices in microseconds.
func TestSpansChromeEvents(t *testing.T) {
	s := NewSpans()
	l := s.Acquire()
	end := l.Phase("cache-lookup")
	time.Sleep(2 * time.Millisecond)
	end()
	l.Release()

	evs := s.ChromeEvents()
	var names, threads, slices int
	for _, ev := range evs {
		if ev.Pid != SpanPid {
			t.Errorf("event on pid %d, want %d", ev.Pid, SpanPid)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			names++
		case ev.Ph == "M" && ev.Name == "thread_name":
			threads++
		case ev.Ph == "X":
			slices++
			if ev.Name != "cache-lookup" || ev.Dur < 1000 {
				t.Errorf("slice = %+v, want cache-lookup with >=1000us", ev)
			}
		}
	}
	if names != 1 || threads != 1 || slices != 1 {
		t.Errorf("events = %d process / %d thread / %d slices, want 1/1/1", names, threads, slices)
	}

	doc := ChromeTrace{}
	s.AppendTo(&doc)
	if doc.OtherData["phase_span_pid"] != SpanPid {
		t.Errorf("OtherData missing phase_span_pid: %v", doc.OtherData)
	}
}
