// Run manifests: a machine-readable JSON record of what a simulation ran
// (tool, command line, configuration, workload), what it produced (output
// files), and how fast the simulator itself was (wall-clock, simulated
// cycles, cycles per second) — written next to the results so a metrics
// CSV or trace file is never orphaned from the run that made it.
package probe

import (
	"encoding/json"
	"os"
	"time"
)

// Manifest describes one simulation run.
type Manifest struct {
	// Tool is the producing binary ("mcmsim", "paper", "trace").
	Tool string `json:"tool"`
	// CommandLine is os.Args as invoked.
	CommandLine []string `json:"command_line,omitempty"`
	// CreatedAt is the RFC 3339 wall-clock completion time.
	CreatedAt string `json:"created_at,omitempty"`

	// Config and Workload are tool-specific descriptions of the simulated
	// configuration and load (flat string->value maps keep them greppable).
	Config   map[string]any `json:"config,omitempty"`
	Workload map[string]any `json:"workload,omitempty"`

	// Channels and FreqMHz summarize the memory subsystem.
	Channels int     `json:"channels"`
	FreqMHz  float64 `json:"freq_mhz"`
	// SampleFraction is the simulated fraction of the workload (1 = all).
	SampleFraction float64 `json:"sample_fraction,omitempty"`

	// SimCycles is the simulated makespan in DRAM cycles (unextrapolated:
	// the cycles the simulator actually executed).
	SimCycles int64 `json:"sim_cycles"`
	// WallSeconds is the host time the simulation took, and
	// CyclesPerSecond the resulting simulator throughput.
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`

	// Outputs maps artifact names ("trace", "metrics") to the files the
	// run wrote.
	Outputs map[string]string `json:"outputs,omitempty"`
}

// NewManifest starts a manifest for the named tool, capturing the command
// line and creation time.
func NewManifest(tool string) Manifest {
	return Manifest{
		Tool:        tool,
		CommandLine: append([]string(nil), os.Args...),
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Config:      map[string]any{},
		Workload:    map[string]any{},
		Outputs:     map[string]string{},
	}
}

// Finish records the run's simulated cycles and wall-clock duration and
// derives the simulator throughput.
func (m *Manifest) Finish(simCycles int64, wall time.Duration) {
	m.SimCycles = simCycles
	m.WallSeconds = wall.Seconds()
	if wall > 0 {
		m.CyclesPerSecond = float64(simCycles) / wall.Seconds()
	}
}

// AddOutput records that the run wrote the named artifact to path.
func (m *Manifest) AddOutput(name, path string) {
	if m.Outputs == nil {
		m.Outputs = map[string]string{}
	}
	m.Outputs[name] = path
}

// Write stores the manifest as indented JSON at path.
func (m Manifest) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
