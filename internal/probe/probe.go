// Package probe is the simulator's observability layer: a low-overhead
// event stream emitted by the per-channel controllers (DRAM commands, row
// outcomes, power-state residency, request enqueue/complete) and a set of
// sinks that turn it into windowed time-series metrics, Chrome/Perfetto
// trace files, and machine-readable run manifests.
//
// The hot path is guarded by a nil check in the controller: a simulation
// without a sink attached pays only an untaken branch per would-be event
// (see BenchmarkProbeDisabledOverhead at the repository root).
//
// Contract: within one channel, event At timestamps are monotonically
// non-decreasing in emission order — the emitter clamps At forward when an
// event's true start lags an already-emitted timestamp. End is never
// clamped: it always carries the event's exact schedule, so End < At marks
// an event whose At was clamped (e.g. a refresh served inside an idle gap,
// emitted after the enqueue of the request that ended the gap). Sinks that
// need a display duration must guard against the negative span; sinks that
// need exact command timing should derive it from End (see internal/check).
// Channels are independent: with parallel simulation
// each channel emits from its own goroutine into its own sink, so a sink
// returned by a per-channel factory must not share mutable state with its
// siblings unless it synchronizes internally.
package probe

import "fmt"

// Kind classifies one event.
type Kind uint8

const (
	// KindActivate is an ACT command opening Row in Bank; End is the cycle
	// the row is usable (At + tRCD).
	KindActivate Kind = iota
	// KindPrecharge is a PRE command closing Bank (Bank < 0: precharge
	// all); End is At + tRP.
	KindPrecharge
	// KindRead is a RD command on Bank/Row; End is the cycle the last data
	// beat leaves the bus and Aux is the data-bus cycles of the burst.
	KindRead
	// KindWrite is a WR command; fields as for KindRead.
	KindWrite
	// KindRefresh is one auto-refresh (Bank < 0, all banks); End is the
	// cycle the banks are usable again (At + tRFC).
	KindRefresh
	// KindRowHit marks an access that found its row open.
	KindRowHit
	// KindRowMiss marks an access whose bank was closed.
	KindRowMiss
	// KindRowConflict marks an access whose bank held another row.
	KindRowConflict
	// KindPowerDown is one completed power-down residency: the cluster was
	// powered down for Aux cycles in [End-Aux, End), exiting at End.
	// FlagPrechargedPD marks the cheaper all-banks-closed state.
	KindPowerDown
	// KindSelfRefresh is one completed self-refresh residency of Aux
	// cycles in [End-Aux, End).
	KindSelfRefresh
	// KindEnqueue marks a request entering the channel; Depth is the
	// pending-queue depth including it.
	KindEnqueue
	// KindComplete marks a request leaving the channel at At; Depth is
	// the remaining pending-queue depth and Aux the observed latency in
	// cycles (completion minus arrival of the triggering request; under a
	// reorder window the completing request may differ from the arrival).
	KindComplete
	// KindChannelFail marks a channel dropout (see internal/fault): Aux is
	// the failed channel index. The subsystem emits it on every observed
	// channel so each trace track shows the failure point.
	KindChannelFail
	// KindThermalDerate marks the controller switching to the derated
	// (shortened) refresh interval; Aux is the new interval in cycles.
	KindThermalDerate
	// KindReadRetry marks one ECC read-retry re-issued after a transient
	// read error; Aux is the 1-based retry attempt.
	KindReadRetry
	// KindStall marks an injected controller stall of Aux cycles.
	KindStall
	// KindDegrade marks the degradation engine stepping the workload down;
	// Aux is the new ladder level.
	KindDegrade
	// KindRecover marks the first frame meeting its deadline again after a
	// miss; Aux is the frame index.
	KindRecover

	numKinds
)

// String names the kind the way trace viewers render it.
func (k Kind) String() string {
	switch k {
	case KindActivate:
		return "ACT"
	case KindPrecharge:
		return "PRE"
	case KindRead:
		return "RD"
	case KindWrite:
		return "WR"
	case KindRefresh:
		return "REF"
	case KindRowHit:
		return "row-hit"
	case KindRowMiss:
		return "row-miss"
	case KindRowConflict:
		return "row-conflict"
	case KindPowerDown:
		return "power-down"
	case KindSelfRefresh:
		return "self-refresh"
	case KindEnqueue:
		return "enqueue"
	case KindComplete:
		return "complete"
	case KindChannelFail:
		return "channel-fail"
	case KindThermalDerate:
		return "thermal-derate"
	case KindReadRetry:
		return "read-retry"
	case KindStall:
		return "stall"
	case KindDegrade:
		return "degrade"
	case KindRecover:
		return "recover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event flags.
const (
	// FlagPrechargedPD marks a KindPowerDown residency spent with all
	// banks closed (precharge power-down).
	FlagPrechargedPD uint8 = 1 << iota
)

// Event is one typed observation from a channel. All cycle values are DRAM
// clock cycles from the start of the simulation.
type Event struct {
	Kind  Kind
	Flags uint8
	// Channel is the emitting channel index (tagged by the controller).
	Channel int32
	// Bank and Row locate command events; Bank < 0 means all banks.
	Bank int32
	Row  int32
	// Depth is the pending-queue depth for enqueue/complete events.
	Depth int32
	// At is the cycle the event begins (clamped forward to keep the
	// per-channel stream monotonic); End the cycle it ends. End is exact
	// and may be below a clamped At — see the package contract.
	At  int64
	End int64
	// Aux is a kind-specific payload: data-bus cycles (read/write), idle
	// cycles (power-down/self-refresh), latency (complete).
	Aux int64
}

// Sink receives events. Emit must be cheap; heavy work belongs in a
// post-run pass over collected state.
type Sink interface {
	Emit(ev Event)
}

// Func adapts a function to a Sink.
type Func func(ev Event)

// Emit implements Sink.
func (f Func) Emit(ev Event) { f(ev) }

// Multi fans one event out to several sinks, skipping nils. It returns nil
// when no non-nil sink remains, so the controller's disabled fast path is
// preserved, and returns a lone sink unwrapped.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multiSink(live)
	}
}

type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Recorder is a Sink that appends every event to a slice — handy in tests
// and for small post-processed runs.
type Recorder struct {
	Events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Count is a Sink that only counts events per kind; its Emit cost is one
// array increment, making it the reference "enabled but almost free" sink
// for overhead benchmarks.
type Count struct {
	ByKind [numKinds]int64
}

// Emit implements Sink.
func (c *Count) Emit(ev Event) {
	if int(ev.Kind) < len(c.ByKind) {
		c.ByKind[ev.Kind]++
	}
}

// Total returns the number of events seen across all kinds.
func (c *Count) Total() int64 {
	var n int64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}
