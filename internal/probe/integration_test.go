// Integration tests driving real simulations through the probe layer:
// the windowed time series must reconstruct the controller's aggregate
// statistics exactly, and the event stream must honor the package's
// per-channel monotonic-timestamp contract across randomized workloads
// and controller configurations.
package probe_test

import (
	"math/rand"
	"testing"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/probe"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

// videoRequests generates a slice of the recording use case's transactions
// for a realistic request mix (sequential video streams plus scattered
// reference-frame reads).
func videoRequests(t *testing.T, channels int, fraction float64) []memsys.Request {
	t.Helper()
	prof, err := video.ProfileFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := load.New(l, channels, dram.DefaultGeometry(), load.Config{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := gen.Frame(fraction)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []memsys.Request
	for {
		req, ok := src.Next()
		if !ok {
			return reqs
		}
		reqs = append(reqs, req)
	}
}

// randomRequests builds an adversarial workload: random addresses, sizes,
// read/write mix and bursty arrival gaps (long gaps trigger power-down and
// self-refresh residencies).
func randomRequests(rng *rand.Rand, n int) []memsys.Request {
	reqs := make([]memsys.Request, n)
	var arrival int64
	for i := range reqs {
		if rng.Intn(8) == 0 {
			arrival += int64(rng.Intn(200_000)) // long gap: power management kicks in
		} else {
			arrival += int64(rng.Intn(50))
		}
		reqs[i] = memsys.Request{
			Write:   rng.Intn(2) == 0,
			Addr:    int64(rng.Intn(1 << 24)),
			Bytes:   int64(1 + rng.Intn(4096)),
			Arrival: arrival,
		}
	}
	return reqs
}

// probeVariants are the controller configurations the contract tests run
// under; together they exercise the in-order path, the reorder queue, the
// posted-write buffer, refresh postponement, precharge-on-idle and the
// closed-page policy.
func probeVariants(channels int) map[string]memsys.Config {
	base := func() memsys.Config {
		return memsys.PaperConfig(channels, 400*units.MHz)
	}
	variants := map[string]memsys.Config{}
	variants["baseline"] = base()

	noPD := base()
	noPD.PowerDown = false
	variants["no-powerdown"] = noPD

	queued := base()
	queued.QueueDepth = 8
	queued.WriteBufferDepth = 4
	variants["queued+wbuf"] = queued

	tuned := base()
	tuned.RefreshPostpone = 4
	tuned.PrechargeOnIdle = true
	variants["refpost+preidle"] = tuned

	closed := base()
	closed.Policy = controller.ClosedPage
	variants["closed-page"] = closed
	return variants
}

// TestTimeSeriesMatchesAggregateStats is the acceptance check for the
// windowed collector: on a 2-channel run, summing each channel's epochs
// must reproduce the stats.Channel totals the controllers accumulated.
func TestTimeSeriesMatchesAggregateStats(t *testing.T) {
	const channels = 2
	reqs := videoRequests(t, channels, 0.02)
	if len(reqs) == 0 {
		t.Fatal("empty workload")
	}
	for name, cfg := range probeVariants(channels) {
		t.Run(name, func(t *testing.T) {
			ts, err := probe.NewTimeSeries(channels, 5000)
			if err != nil {
				t.Fatal(err)
			}
			cfg := cfg
			cfg.NewProbe = ts.Channel
			sys, err := memsys.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(memsys.NewSliceSource(reqs))
			if err != nil {
				t.Fatal(err)
			}
			for ch := 0; ch < channels; ch++ {
				got := ts.ChannelTotal(ch)
				want := res.PerChannel[ch]
				if got != want {
					t.Errorf("channel %d reconstruction mismatch:\n got  %+v\n want %+v", ch, got, want)
				}
				if len(ts.Epochs(ch)) < 2 {
					t.Errorf("channel %d produced %d epochs; want a real series", ch, len(ts.Epochs(ch)))
				}
			}
		})
	}
}

// TestEventTimestampsMonotonic is the property test for the probe
// contract: within one channel, At never decreases across the stream, an
// event whose End lags its At is one whose At was clamped forward (End is
// exact and never earlier than the original start, which is itself at
// most At), and every event carries its channel's index — across
// randomized workloads and all configuration variants.
func TestEventTimestampsMonotonic(t *testing.T) {
	const channels = 2
	for name, cfg := range probeVariants(channels) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				reqs := randomRequests(rand.New(rand.NewSource(seed)), 400)
				recs := make([]*probe.Recorder, channels)
				cfg := cfg
				cfg.NewProbe = func(ch int) probe.Sink {
					recs[ch] = &probe.Recorder{}
					return recs[ch]
				}
				sys, err := memsys.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
					t.Fatal(err)
				}
				for ch, rec := range recs {
					if rec == nil || len(rec.Events) == 0 {
						t.Fatalf("seed %d: channel %d emitted no events", seed, ch)
					}
					var last int64
					for i, ev := range rec.Events {
						if ev.Channel != int32(ch) {
							t.Fatalf("seed %d: channel %d event %d tagged channel %d", seed, ch, i, ev.Channel)
						}
						if ev.At < last {
							t.Fatalf("seed %d: channel %d event %d (%v) At=%d went backwards from %d",
								seed, ch, i, ev.Kind, ev.At, last)
						}
						if ev.End < 0 {
							t.Fatalf("seed %d: channel %d event %d (%v) negative End=%d",
								seed, ch, i, ev.Kind, ev.End)
						}
						last = ev.At
					}
				}
			}
		})
	}
}

// TestTraceCollectorOnRealRun checks the Chrome exporter against a live
// simulation: every record carries the required fields and in-range ids.
func TestTraceCollectorOnRealRun(t *testing.T) {
	const channels = 2
	reqs := videoRequests(t, channels, 0.005)
	tr, err := probe.NewTrace(channels)
	if err != nil {
		t.Fatal(err)
	}
	cfg := memsys.PaperConfig(channels, 400*units.MHz)
	cfg.NewProbe = tr.Channel
	sys, err := memsys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
		t.Fatal(err)
	}
	if tr.Events() == 0 {
		t.Fatal("trace collected no events")
	}
	doc := tr.Build()
	if len(doc.TraceEvents) == 0 {
		t.Fatal("built trace has no records")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("record %d missing name/ph: %+v", i, ev)
		}
		if ev.Pid < 0 || ev.Pid >= channels {
			t.Fatalf("record %d pid %d out of range", i, ev.Pid)
		}
		if ev.Ts < 0 {
			t.Fatalf("record %d negative ts: %+v", i, ev)
		}
		if ev.Ph == "X" && ev.Dur <= 0 {
			t.Fatalf("record %d zero-length slice: %+v", i, ev)
		}
		phases[ev.Ph] = true
	}
	for _, ph := range []string{"M", "X", "C", "i"} {
		if !phases[ph] {
			t.Errorf("trace has no %q records", ph)
		}
	}
}

// TestParallelRunMatchesSerial checks that per-channel sinks observe the
// same stream whether the channels run serially or on goroutines.
func TestParallelRunMatchesSerial(t *testing.T) {
	const channels = 4
	reqs := videoRequests(t, channels, 0.005)
	run := func(parallel bool) []*probe.Recorder {
		recs := make([]*probe.Recorder, channels)
		cfg := memsys.PaperConfig(channels, 400*units.MHz)
		cfg.Parallel = parallel
		cfg.ForceParallel = parallel
		cfg.NewProbe = func(ch int) probe.Sink {
			recs[ch] = &probe.Recorder{}
			return recs[ch]
		}
		sys, err := memsys.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(memsys.NewSliceSource(reqs)); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	serial, par := run(false), run(true)
	for ch := 0; ch < channels; ch++ {
		if len(serial[ch].Events) != len(par[ch].Events) {
			t.Fatalf("channel %d: serial %d events, parallel %d",
				ch, len(serial[ch].Events), len(par[ch].Events))
		}
		for i := range serial[ch].Events {
			if serial[ch].Events[i] != par[ch].Events[i] {
				t.Fatalf("channel %d event %d differs: serial %+v parallel %+v",
					ch, i, serial[ch].Events[i], par[ch].Events[i])
			}
		}
	}
}
