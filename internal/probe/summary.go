// End-of-run summary: a schema-versioned JSON document written by
// -summary-out that extends the run manifest with the final metrics
// snapshot, so one file answers both "what ran" and "what did the
// instrumented layers count".
package probe

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/metrics"
)

// SummarySchemaVersion identifies the summary document layout. Readers
// must reject other versions rather than guess.
const SummarySchemaVersion = "mcm-run-summary/v1"

// Summary is the -summary-out document.
type Summary struct {
	Schema  string           `json:"schema"`
	Run     Manifest         `json:"run"`
	Metrics metrics.Snapshot `json:"metrics"`
}

// NewSummary assembles a summary from a finished manifest and a metrics
// snapshot.
func NewSummary(run Manifest, snap metrics.Snapshot) Summary {
	return Summary{Schema: SummarySchemaVersion, Run: run, Metrics: snap}
}

// Write stores the summary as indented JSON at path.
func (s Summary) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSummary loads and schema-checks a summary document.
func ReadSummary(path string) (Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return Summary{}, fmt.Errorf("probe: parsing summary: %w", err)
	}
	if s.Schema != SummarySchemaVersion {
		return Summary{}, fmt.Errorf("probe: summary schema %q, want %q", s.Schema, SummarySchemaVersion)
	}
	return s, nil
}
