// Package analytic provides a closed-form estimator for the frame access
// time of the recording load on a multi-channel memory. It exists to
// cross-check the cycle-level simulator: both models consume the same
// stage/stream decomposition, and property tests assert they agree within a
// modest tolerance across configurations.
//
// The estimate counts, per channel: pure data-transfer cycles; read/write
// bus-turnaround bubbles at stream-visit granularity; row activate costs at
// row-crossing and bank-conflict events (streams beyond the bank count must
// evict each other's rows); and the refresh duty cycle.
package analytic

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/power"
	"repro/internal/units"
)

// Estimate is the closed-form result.
type Estimate struct {
	// Cycles is the predicted per-channel makespan for one frame.
	Cycles int64
	// Time is Cycles in wall time.
	Time units.Duration
	// Efficiency is data cycles over total cycles.
	Efficiency float64
	// DataCycles, TurnaroundCycles, RowCycles, RefreshCycles itemize the
	// estimate.
	DataCycles       int64
	TurnaroundCycles int64
	RowCycles        int64
	RefreshCycles    int64
}

// FrameTime estimates the access time of one frame of the generator's
// traffic on an M-channel memory at the given device speed.
func FrameTime(gen *load.Generator, speed dram.Speed) (Estimate, error) {
	if gen == nil {
		return Estimate{}, fmt.Errorf("analytic: nil generator")
	}
	if speed.TCK <= 0 {
		return Estimate{}, fmt.Errorf("analytic: unresolved speed (use dram.Resolve)")
	}
	m := int64(gen.Channels())
	bytesPerCycle := int64(speed.Geometry.WordBits) / 8 * 2 // DDR
	rowSpan := speed.Geometry.RowBytes() * m                // global bytes per local row
	banks := speed.Geometry.Banks

	// Costs in cycles.
	dirPairCost := speed.WTR + speed.CL + 2 // W->R gap plus the R->W bubble
	rowCost := speed.RCD + 2                // activate on a sequential row crossing
	conflictCost := speed.RP + speed.RCD + 2

	var e Estimate
	for _, st := range gen.Stages() {
		var readVisits, writeVisits int64
		var perStream []int64
		for _, s := range st.Streams {
			if s.Bytes <= 0 {
				continue
			}
			e.DataCycles += (s.Bytes/m + bytesPerCycle - 1) / bytesPerCycle
			v := (s.Bytes + s.Run - 1) / s.Run
			perStream = append(perStream, v)
			if s.Write {
				writeVisits += v
			} else {
				readVisits += v
			}
			// Sequential row crossings of this stream.
			e.RowCycles += (s.Bytes / rowSpan) * rowCost
		}
		// Each visit of the minority direction inserts one
		// turnaround pair into the majority stream.
		pairs := writeVisits
		if readVisits < writeVisits {
			pairs = readVisits
		}
		e.TurnaroundCycles += pairs * dirPairCost

		// Streams beyond the bank count evict rows: the smallest
		// streams (placed on shared banks) conflict on every visit,
		// both when they arrive and when the resident stream returns.
		if extra := len(perStream) - banks; extra > 0 {
			sort.Slice(perStream, func(i, j int) bool { return perStream[i] < perStream[j] })
			for i := 0; i < extra; i++ {
				e.RowCycles += perStream[i] * 2 * conflictCost
			}
		}
	}

	busy := e.DataCycles + e.TurnaroundCycles + e.RowCycles
	// Refresh steals tRP+tRFC every tREFI while streaming.
	refPeriod := speed.REFI
	if refPeriod > 0 {
		refs := busy / refPeriod
		e.RefreshCycles = refs * (speed.RP + speed.RFC)
	}
	e.Cycles = busy + e.RefreshCycles
	e.Time = speed.CycleDuration(e.Cycles)
	if e.Cycles > 0 {
		e.Efficiency = float64(e.DataCycles) / float64(e.Cycles)
	}
	return e, nil
}

// Bandwidth returns the sustained bandwidth the estimate implies for the
// whole subsystem.
func (e Estimate) Bandwidth(gen *load.Generator) units.Bandwidth {
	if e.Time <= 0 {
		return 0
	}
	return units.Bandwidth(float64(gen.FrameBytes()) / e.Time.Seconds())
}

// FramePower estimates the average memory power of recording at the frame
// period implied by the generator's workload: burst energy from the exact
// data volumes, standby over the estimated busy time, power-down over the
// slack, refresh and interface over the whole period — the same structure
// the simulator's accounting produces, in closed form.
func FramePower(gen *load.Generator, speed dram.Speed, ds power.Datasheet,
	iface power.Interface, framePeriod units.Duration) (units.Power, error) {
	if err := ds.Validate(); err != nil {
		return 0, err
	}
	if err := iface.Validate(); err != nil {
		return 0, err
	}
	if framePeriod <= 0 {
		return 0, fmt.Errorf("analytic: frame period %v", framePeriod)
	}
	est, err := FrameTime(gen, speed)
	if err != nil {
		return 0, err
	}
	m := int64(gen.Channels())
	bytesPerCycle := float64(speed.Geometry.WordBits) / 8 * 2
	f := speed.Freq

	// Exact data-cycle split by direction.
	var readBytes, writeBytes int64
	for _, st := range gen.Stages() {
		for _, s := range st.Streams {
			if s.Write {
				writeBytes += s.Bytes
			} else {
				readBytes += s.Bytes
			}
		}
	}
	rdCycles := float64(readBytes) / float64(m) / bytesPerCycle
	wrCycles := float64(writeBytes) / float64(m) / bytesPerCycle

	period := framePeriod
	busy := speed.CycleDuration(est.Cycles)
	if busy > period {
		busy = period
	}
	slack := period - busy

	var e units.Energy
	e += ds.DynamicPower(ds.IDD4R-ds.IDD3N, f).Times(speed.CycleDuration(int64(rdCycles)))
	e += ds.DynamicPower(ds.IDD4W-ds.IDD3N, f).Times(speed.CycleDuration(int64(wrCycles)))
	e += ds.DynamicPower(ds.IDD3N, f).Times(busy)
	e += ds.StaticPower(ds.IDD2P).Times(slack)
	// Activates: one per row span plus the conflict estimate.
	acts := float64(est.RowCycles) / float64(speed.RCD+2)
	e += units.Energy(acts * float64(ds.ActPrechargeEnergy) *
		(ds.VDD / ds.BaseVDD) * (ds.VDD / ds.BaseVDD))
	// Refresh over the period.
	refEnergy := (ds.IDD5 - ds.IDD2N) * 1e-3 * ds.BaseVDD *
		(ds.VDD / ds.BaseVDD) * (ds.VDD / ds.BaseVDD) * speed.Timing.TRFC.Seconds()
	e += units.Energy(float64(period) / float64(speed.Timing.TREFI) * refEnergy * 1e12)
	// Interface over the period.
	e += iface.Power(f).Times(period)

	// The estimate covers one channel's share of the bursts but the
	// background of every channel.
	perChannelBG := ds.DynamicPower(ds.IDD3N, f).Times(busy) +
		ds.StaticPower(ds.IDD2P).Times(slack) + iface.Power(f).Times(period)
	refPerChannel := units.Energy(float64(period) / float64(speed.Timing.TREFI) * refEnergy * 1e12)
	total := e + units.Energy(float64(m-1))*(perChannelBG+refPerChannel)
	// Burst and activate energy above covered only one channel; scale to
	// all channels (each channel moves the same share).
	burstActs := ds.DynamicPower(ds.IDD4R-ds.IDD3N, f).Times(speed.CycleDuration(int64(rdCycles))) +
		ds.DynamicPower(ds.IDD4W-ds.IDD3N, f).Times(speed.CycleDuration(int64(wrCycles))) +
		units.Energy(acts*float64(ds.ActPrechargeEnergy)*(ds.VDD/ds.BaseVDD)*(ds.VDD/ds.BaseVDD))
	total += units.Energy(float64(m-1)) * burstActs

	return units.PowerOf(total, period), nil
}
