package analytic

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// buildTestEnvelope assembles a small two-region envelope through the same
// builder path the calibration pass uses.
func buildTestEnvelope(t *testing.T) *Envelope {
	t.Helper()
	b := NewEnvelopeBuilder(0.1)
	b.Observe("720p30", 4, 200, -0.010)
	b.Observe("720p30", 4, 400, 0.025)
	b.Observe("720p30", 4, 533, 0.005)
	b.Observe("1080p30", 2, 200, -0.040)
	b.Observe("1080p30", 2, 400, -0.002)
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return e
}

// TestEnvelopeRoundTrip: Encode -> DecodeEnvelope must reproduce the
// envelope exactly, and re-encoding must be byte-identical (the artifact
// is diffed in review, so encoding has to be deterministic).
func TestEnvelopeRoundTrip(t *testing.T) {
	e := buildTestEnvelope(t)
	data, err := e.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip changed the envelope:\n got %+v\nwant %+v", got, e)
	}
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encoding is not byte-identical:\n%s\nvs\n%s", again, data)
	}
	if got.Fingerprint() != e.Fingerprint() {
		t.Fatalf("fingerprint changed across round trip")
	}
}

// TestEnvelopeStaleSchema: an artifact from a different calibration format
// version must be rejected loudly, never partially decoded.
func TestEnvelopeStaleSchema(t *testing.T) {
	e := buildTestEnvelope(t)
	e.Schema = "mcm-analytic-envelope/v0"
	data, err := e.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := DecodeEnvelope(data); err == nil {
		t.Fatalf("DecodeEnvelope accepted stale schema %q", e.Schema)
	} else if !strings.Contains(err.Error(), "stale envelope schema") {
		t.Fatalf("stale-schema error %q does not name the problem", err)
	}
}

// TestEnvelopeUnknownField: typo'd or future fields must not decode
// silently into the zero value.
func TestEnvelopeUnknownField(t *testing.T) {
	e := buildTestEnvelope(t)
	data, err := e.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	mangled := strings.Replace(string(data), `"sample_fraction"`, `"sample_fractoin"`, 1)
	if _, err := DecodeEnvelope([]byte(mangled)); err == nil {
		t.Fatalf("DecodeEnvelope accepted unknown field")
	}
}

// TestEnvelopeBound covers the lookup semantics the auto tier depends on:
// measured-point intervals, widened region intervals, and the refusals.
func TestEnvelopeBound(t *testing.T) {
	e := buildTestEnvelope(t)

	// Exact grid point: measured error widened only by the point slack.
	lo, hi, ok := e.Bound("720p30", 4, 400, 0.1)
	if !ok {
		t.Fatalf("Bound refused a calibrated grid point")
	}
	if math.Abs(lo-(0.025-e.PointSlack)) > 1e-12 || math.Abs(hi-(0.025+e.PointSlack)) > 1e-12 {
		t.Fatalf("grid-point bound [%v, %v], want measured 0.025 +/- %v", lo, hi, e.PointSlack)
	}

	// Between grid points: the region's range widened by the safety factor.
	lo, hi, ok = e.Bound("720p30", 4, 300, 0.1)
	if !ok {
		t.Fatalf("Bound refused an in-range frequency")
	}
	wantLo := -0.010 - (e.RegionSafety-1)*0.010 - e.PointSlack
	wantHi := 0.025 + (e.RegionSafety-1)*0.025 + e.PointSlack
	if math.Abs(lo-wantLo) > 1e-12 || math.Abs(hi-wantHi) > 1e-12 {
		t.Fatalf("region bound [%v, %v], want [%v, %v]", lo, hi, wantLo, wantHi)
	}
	if lo >= -0.010 || hi <= 0.025 {
		t.Fatalf("region bound [%v, %v] is not strictly wider than the measured range", lo, hi)
	}

	// Refusals: wrong fraction, frequency outside the range, unknown
	// region, nil receiver. All must fail safe (caller simulates).
	refusals := []struct {
		name           string
		env            *Envelope
		format         string
		channels, freq int
		fraction       float64
	}{
		{"fraction mismatch", e, "720p30", 4, 400, 0.05},
		{"below range", e, "720p30", 4, 133, 0.1},
		{"above range", e, "720p30", 4, 667, 0.1},
		{"unknown channels", e, "720p30", 8, 400, 0.1},
		{"unknown format", e, "2160p60", 4, 400, 0.1},
		{"nil envelope", nil, "720p30", 4, 400, 0.1},
	}
	for _, r := range refusals {
		if _, _, ok := r.env.Bound(r.format, r.channels, r.freq, r.fraction); ok {
			t.Errorf("%s: Bound answered, want refusal", r.name)
		}
	}
}

// TestEnvelopeObserveKeepsWorst: re-observing a point (e.g. a calibration
// rerun folded into an existing builder) must keep the larger-magnitude
// error — bounds may only widen.
func TestEnvelopeObserveKeepsWorst(t *testing.T) {
	b := NewEnvelopeBuilder(0.1)
	b.Observe("720p30", 1, 400, 0.010)
	b.Observe("720p30", 1, 400, -0.002)
	b.Observe("720p30", 1, 400, -0.030)
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := e.Regions[0].Points[0].Err; got != -0.030 {
		t.Fatalf("kept error %v, want the worst-magnitude -0.030", got)
	}
}

// TestEnvelopeFingerprint: any content change must rotate the fingerprint,
// since fidelity-aware cache keys fold it in.
func TestEnvelopeFingerprint(t *testing.T) {
	a := buildTestEnvelope(t)
	c := buildTestEnvelope(t)
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatalf("equal envelopes disagree on fingerprint")
	}
	c.Regions[0].Points[0].Err += 1e-6
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatalf("fingerprint ignored a bound change")
	}
}

// TestDefaultEnvelope: the embedded artifact must decode, validate, and
// carry the sweep default sampling fraction.
func TestDefaultEnvelope(t *testing.T) {
	e, err := DefaultEnvelope()
	if err != nil {
		t.Fatalf("DefaultEnvelope: %v", err)
	}
	if e.SampleFraction != 0.1 {
		t.Fatalf("embedded envelope fraction %v, want the sweep default 0.1", e.SampleFraction)
	}
	if e.Points == 0 || len(e.Regions) == 0 {
		t.Fatalf("embedded envelope is empty: %+v", e)
	}
	if e.WorstAbsErr <= 0 || e.WorstAbsErr > 0.10 {
		t.Fatalf("embedded worst |err| %v implausible (want (0, 0.10])", e.WorstAbsErr)
	}
}
