package analytic_test

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

func generator(t *testing.T, format string, channels int) *load.Generator {
	t.Helper()
	prof, err := video.ProfileFor(format)
	if err != nil {
		t.Fatal(err)
	}
	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := load.New(l, channels, dram.DefaultGeometry(), load.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func speedAt(t *testing.T, f units.Frequency) dram.Speed {
	t.Helper()
	s, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrameTimeValidates(t *testing.T) {
	if _, err := analytic.FrameTime(nil, speedAt(t, 400*units.MHz)); err == nil {
		t.Error("expected nil generator error")
	}
	if _, err := analytic.FrameTime(generator(t, "720p30", 1), dram.Speed{}); err == nil {
		t.Error("expected unresolved speed error")
	}
}

func TestEstimateComponents(t *testing.T) {
	g := generator(t, "720p30", 1)
	e, err := analytic.FrameTime(g, speedAt(t, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if e.DataCycles <= 0 || e.TurnaroundCycles <= 0 || e.RowCycles <= 0 || e.RefreshCycles <= 0 {
		t.Errorf("estimate components not all positive: %+v", e)
	}
	if e.Cycles != e.DataCycles+e.TurnaroundCycles+e.RowCycles+e.RefreshCycles {
		t.Errorf("cycles %d != component sum", e.Cycles)
	}
	if e.Efficiency <= 0 || e.Efficiency >= 1 {
		t.Errorf("efficiency = %v", e.Efficiency)
	}
	// Data cycles for a 63 MB frame at 8 B/cycle: ~7.9M.
	if e.DataCycles < 7_500_000 || e.DataCycles > 8_200_000 {
		t.Errorf("data cycles = %d, want ~7.9M", e.DataCycles)
	}
	if bw := e.Bandwidth(g); bw <= 0 || bw > units.Bandwidth(3.2e9) {
		t.Errorf("bandwidth = %v", bw)
	}
}

// The analytic estimate agrees with the cycle-level simulation within 20 %
// across formats, channel counts and clocks.
func TestAnalyticMatchesSimulation(t *testing.T) {
	cases := []struct {
		format   string
		channels int
		freq     units.Frequency
	}{
		{"720p30", 1, 400 * units.MHz},
		{"720p30", 4, 400 * units.MHz},
		{"720p30", 1, 200 * units.MHz},
		{"1080p30", 2, 400 * units.MHz},
		{"1080p30", 8, 533 * units.MHz},
	}
	for _, c := range cases {
		g := generator(t, c.format, c.channels)
		speed := speedAt(t, c.freq)
		est, err := analytic.FrameTime(g, speed)
		if err != nil {
			t.Fatal(err)
		}

		sys, err := memsys.New(memsys.PaperConfig(c.channels, c.freq))
		if err != nil {
			t.Fatal(err)
		}
		src, err := g.Frame(0.05)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		simTime := run.Time.Seconds() / 0.05

		rel := math.Abs(est.Time.Seconds()-simTime) / simTime
		if rel > 0.20 {
			t.Errorf("%s %dch @%v: analytic %.4g s vs simulated %.4g s (%.0f%% apart)",
				c.format, c.channels, c.freq, est.Time.Seconds(), simTime, rel*100)
		}
	}
}

// The estimate scales linearly with channels and clock, like the simulator.
func TestEstimateScaling(t *testing.T) {
	speed := speedAt(t, 400*units.MHz)
	e1, err := analytic.FrameTime(generator(t, "720p30", 1), speed)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := analytic.FrameTime(generator(t, "720p30", 4), speed)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(e1.Cycles) / float64(e4.Cycles); ratio < 3.8 || ratio > 4.2 {
		t.Errorf("1ch/4ch cycle ratio = %.2f, want ~4", ratio)
	}

	t200, err := analytic.FrameTime(generator(t, "720p30", 1), speedAt(t, 200*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := t200.Time.Seconds() / e1.Time.Seconds(); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("200/400MHz time ratio = %.2f, want ~2", ratio)
	}
}

// The closed-form power estimate agrees with the simulator within 15 %.
func TestFramePowerMatchesSimulation(t *testing.T) {
	cases := []struct {
		format   string
		channels int
	}{
		{"720p30", 1},
		{"720p30", 8},
		{"1080p30", 4},
	}
	for _, c := range cases {
		g := generator(t, c.format, c.channels)
		speed := speedAt(t, 400*units.MHz)
		prof, _ := video.ProfileFor(c.format)
		est, err := analytic.FramePower(g, speed, power.DefaultDatasheet(), power.DefaultInterface(),
			prof.Format.FramePeriod())
		if err != nil {
			t.Fatal(err)
		}

		w, err := core.WorkloadFor(c.format)
		if err != nil {
			t.Fatal(err)
		}
		w.SampleFraction = 0.05
		sim, err := core.Simulate(w, core.PaperMemory(c.channels, 400*units.MHz))
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(est.Milliwatts()-sim.TotalPower.Milliwatts()) / sim.TotalPower.Milliwatts()
		if rel > 0.15 {
			t.Errorf("%s %dch: analytic %.1f mW vs simulated %.1f mW (%.0f%%)",
				c.format, c.channels, est.Milliwatts(), sim.TotalPower.Milliwatts(), rel*100)
		}
	}
}

func TestFramePowerValidates(t *testing.T) {
	g := generator(t, "720p30", 1)
	speed := speedAt(t, 400*units.MHz)
	bad := power.DefaultDatasheet()
	bad.VDD = 0
	if _, err := analytic.FramePower(g, speed, bad, power.DefaultInterface(), units.Millisecond); err == nil {
		t.Error("expected datasheet error")
	}
	badIf := power.DefaultInterface()
	badIf.Pins = 0
	if _, err := analytic.FramePower(g, speed, power.DefaultDatasheet(), badIf, units.Millisecond); err == nil {
		t.Error("expected interface error")
	}
	if _, err := analytic.FramePower(g, speed, power.DefaultDatasheet(), power.DefaultInterface(), 0); err == nil {
		t.Error("expected period error")
	}
}
