package analytic

import (
	"bytes"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// EnvelopeSchema versions the calibration artifact. Decoding rejects any
// other value: an envelope produced by an older (or newer) calibration
// format must never silently drive verdict decisions.
const EnvelopeSchema = "mcm-analytic-envelope/v1"

// Default widening applied by EnvelopeBuilder. PointSlack is additive
// headroom on calibrated grid points — the simulator is deterministic, so
// the measured error there is exact and the slack only guards against an
// envelope applied to a drifted model. RegionSafety multiplies the error
// magnitude for frequencies inside a region's range but not on its
// calibrated grid, where the error was interpolated rather than measured.
const (
	DefaultPointSlack   = 0.0002
	DefaultRegionSafety = 1.25
)

// PointBound is the signed relative error of the analytic access-time
// estimate at one calibrated grid point: err = (est − sim) / sim.
type PointBound struct {
	FreqMHz int     `json:"freq_mhz"`
	Err     float64 `json:"err"`
}

// Region covers one (format, channels) slice of the calibration grid. The
// per-frequency Points carry exact measured errors; MinErr/MaxErr bound the
// whole frequency range for queries between calibrated frequencies.
type Region struct {
	Format     string       `json:"format"`
	Channels   int          `json:"channels"`
	MinFreqMHz int          `json:"min_freq_mhz"`
	MaxFreqMHz int          `json:"max_freq_mhz"`
	MinErr     float64      `json:"min_err"`
	MaxErr     float64      `json:"max_err"`
	Points     []PointBound `json:"points"`
}

// Envelope is the schema-versioned calibration artifact: signed relative
// error bounds of the analytic estimate versus the cycle-accurate
// simulator, per (format, channels, frequency) region. Bounds are only
// meaningful at the sampling fraction they were calibrated at —
// measured cross-fraction drift exceeds 100×, so Bound refuses to answer
// for any other fraction.
type Envelope struct {
	Schema string `json:"schema"`
	// Policy and Device identify the controller scheduling policy and the
	// DRAM datasheet the calibration swept. Empty means the paper baseline
	// (open-page on the estimated mobile DDR part) — the only combination
	// the calibrator produces today. Both fold into Fingerprint, and the
	// auto fidelity tier refuses to serve an estimate from an envelope
	// whose identity it does not recognize, so a calibration against one
	// policy/device can never prove a verdict for another.
	Policy         string   `json:"policy,omitempty"`
	Device         string   `json:"device,omitempty"`
	SampleFraction float64  `json:"sample_fraction"`
	Points         int      `json:"points"`
	WorstAbsErr    float64  `json:"worst_abs_err"`
	PointSlack     float64  `json:"point_slack"`
	RegionSafety   float64  `json:"region_safety"`
	Regions        []Region `json:"regions"`
}

// Encode renders the envelope as deterministic, human-diffable JSON.
// Regions and points are kept sorted by the builder, so equal envelopes
// encode byte-identically.
func (e *Envelope) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("analytic: encode envelope: %w", err)
	}
	return append(buf, '\n'), nil
}

// DecodeEnvelope parses and validates an envelope artifact. Unknown fields
// and stale schemas are rejected.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var e Envelope
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("analytic: decode envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Validate checks the envelope is internally consistent and carries the
// schema this build understands.
func (e *Envelope) Validate() error {
	if e.Schema != EnvelopeSchema {
		return fmt.Errorf("analytic: stale envelope schema %q (want %q): recalibrate with sweep -calibrate", e.Schema, EnvelopeSchema)
	}
	if !(e.SampleFraction > 0 && e.SampleFraction <= 1) {
		return fmt.Errorf("analytic: envelope sample_fraction %v outside (0, 1]", e.SampleFraction)
	}
	if e.PointSlack < 0 || e.RegionSafety < 1 {
		return fmt.Errorf("analytic: envelope widening (point_slack %v, region_safety %v) must be ≥ 0 and ≥ 1", e.PointSlack, e.RegionSafety)
	}
	if len(e.Regions) == 0 {
		return fmt.Errorf("analytic: envelope has no regions")
	}
	for i, r := range e.Regions {
		if r.Format == "" || r.Channels <= 0 || len(r.Points) == 0 {
			return fmt.Errorf("analytic: envelope region %d (%s/%d) malformed", i, r.Format, r.Channels)
		}
		if r.MinErr > r.MaxErr || r.MinFreqMHz > r.MaxFreqMHz {
			return fmt.Errorf("analytic: envelope region %s/%d has inverted bounds", r.Format, r.Channels)
		}
		for _, p := range r.Points {
			if p.FreqMHz < r.MinFreqMHz || p.FreqMHz > r.MaxFreqMHz {
				return fmt.Errorf("analytic: envelope region %s/%d point %d MHz outside range", r.Format, r.Channels, p.FreqMHz)
			}
			if p.Err < r.MinErr || p.Err > r.MaxErr {
				return fmt.Errorf("analytic: envelope region %s/%d point %d MHz error outside region bounds", r.Format, r.Channels, p.FreqMHz)
			}
			if math.IsNaN(p.Err) || math.IsInf(p.Err, 0) {
				return fmt.Errorf("analytic: envelope region %s/%d point %d MHz error not finite", r.Format, r.Channels, p.FreqMHz)
			}
		}
	}
	return nil
}

// Fingerprint returns a short content hash of the envelope. Fidelity-aware
// cache keys fold this in, so replacing the envelope rotates every
// estimate key and stale bounds can never validate a cached verdict.
func (e *Envelope) Fingerprint() string {
	buf, err := json.Marshal(e)
	if err != nil {
		// Envelope contains only plain data; Marshal cannot fail on a
		// validated value. Fall back to an impossible fingerprint.
		return "unfingerprintable"
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}

// Bound returns the widened signed error interval [lo, hi] that the
// calibration run guarantees for the analytic estimate at this point, or
// ok=false when the envelope does not cover it (unknown region, frequency
// outside the calibrated range, or a different sampling fraction).
//
// On a calibrated grid point the interval is the measured error ± the
// point slack. Between grid points it is the region's [MinErr, MaxErr]
// widened outward by the region safety factor plus the slack.
func (e *Envelope) Bound(format string, channels, freqMHz int, fraction float64) (lo, hi float64, ok bool) {
	if e == nil || fraction != e.SampleFraction {
		return 0, 0, false
	}
	for i := range e.Regions {
		r := &e.Regions[i]
		if r.Format != format || r.Channels != channels {
			continue
		}
		if freqMHz < r.MinFreqMHz || freqMHz > r.MaxFreqMHz {
			return 0, 0, false
		}
		for _, p := range r.Points {
			if p.FreqMHz == freqMHz {
				return p.Err - e.PointSlack, p.Err + e.PointSlack, true
			}
		}
		lo = r.MinErr - (e.RegionSafety-1)*math.Abs(r.MinErr) - e.PointSlack
		hi = r.MaxErr + (e.RegionSafety-1)*math.Abs(r.MaxErr) + e.PointSlack
		return lo, hi, true
	}
	return 0, 0, false
}

// EnvelopeBuilder accumulates per-point calibration observations and
// assembles a validated envelope.
type EnvelopeBuilder struct {
	fraction     float64
	pointSlack   float64
	regionSafety float64
	regions      map[regionKey]*Region
}

type regionKey struct {
	format   string
	channels int
}

// NewEnvelopeBuilder starts an envelope for one sampling fraction with the
// default widening parameters.
func NewEnvelopeBuilder(fraction float64) *EnvelopeBuilder {
	return &EnvelopeBuilder{
		fraction:     fraction,
		pointSlack:   DefaultPointSlack,
		regionSafety: DefaultRegionSafety,
		regions:      make(map[regionKey]*Region),
	}
}

// Observe records the signed relative error err = (est − sim) / sim
// measured at one grid point. Re-observing a frequency keeps the
// larger-magnitude error.
func (b *EnvelopeBuilder) Observe(format string, channels, freqMHz int, err float64) {
	k := regionKey{format, channels}
	r := b.regions[k]
	if r == nil {
		r = &Region{Format: format, Channels: channels}
		b.regions[k] = r
	}
	for i := range r.Points {
		if r.Points[i].FreqMHz == freqMHz {
			if math.Abs(err) > math.Abs(r.Points[i].Err) {
				r.Points[i].Err = err
			}
			return
		}
	}
	r.Points = append(r.Points, PointBound{FreqMHz: freqMHz, Err: err})
}

// Build sorts the accumulated regions, derives the range bounds, and
// returns a validated envelope.
func (b *EnvelopeBuilder) Build() (*Envelope, error) {
	if len(b.regions) == 0 {
		return nil, fmt.Errorf("analytic: calibration produced no observations")
	}
	e := &Envelope{
		Schema:         EnvelopeSchema,
		SampleFraction: b.fraction,
		PointSlack:     b.pointSlack,
		RegionSafety:   b.regionSafety,
	}
	keys := make([]regionKey, 0, len(b.regions))
	for k := range b.regions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].format != keys[j].format {
			return keys[i].format < keys[j].format
		}
		return keys[i].channels < keys[j].channels
	})
	for _, k := range keys {
		r := *b.regions[k]
		sort.Slice(r.Points, func(i, j int) bool { return r.Points[i].FreqMHz < r.Points[j].FreqMHz })
		r.MinFreqMHz = r.Points[0].FreqMHz
		r.MaxFreqMHz = r.Points[len(r.Points)-1].FreqMHz
		r.MinErr, r.MaxErr = r.Points[0].Err, r.Points[0].Err
		for _, p := range r.Points {
			r.MinErr = math.Min(r.MinErr, p.Err)
			r.MaxErr = math.Max(r.MaxErr, p.Err)
			if a := math.Abs(p.Err); a > e.WorstAbsErr {
				e.WorstAbsErr = a
			}
			e.Points++
		}
		e.Regions = append(e.Regions, r)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

//go:embed envelope_default.json
var defaultEnvelopeJSON []byte

var (
	defaultEnvelopeOnce sync.Once
	defaultEnvelope     *Envelope
	defaultEnvelopeErr  error
)

// DefaultEnvelope returns the envelope calibrated for the paper grid at
// the default sweep sampling fraction (0.1), embedded at build time. The
// same artifact is published as results/ANALYTIC_ENVELOPE.json.
func DefaultEnvelope() (*Envelope, error) {
	defaultEnvelopeOnce.Do(func() {
		defaultEnvelope, defaultEnvelopeErr = DecodeEnvelope(defaultEnvelopeJSON)
	})
	return defaultEnvelope, defaultEnvelopeErr
}
