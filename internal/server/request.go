package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/units"
)

// MaxRequestBytes bounds the decoded request body. The largest legitimate
// request — a batch of every format crossed with every channel count and
// a long frequency list — is well under the limit, so a megabyte keeps
// the decoder safe from memory-amplification without ever rejecting a
// real client. A body over the limit is answered 413 with MaxBytes set in
// the error payload, so a client can tell the size ceiling apart from a
// malformed document (400).
const MaxRequestBytes = 1 << 20

// ErrRequestTooLarge marks a request body over MaxRequestBytes. Handlers
// map it to 413 Payload Too Large with the documented max-size payload.
var ErrRequestTooLarge = errors.New("request body exceeds the size limit")

// SimulateRequest is the POST /v1/simulate body: one (Workload,
// MemoryConfig) point. Field names mirror the sweep CSV columns and the
// MemoryConfig knobs; zero values mean the paper defaults, exactly as
// they do in core.
type SimulateRequest struct {
	// Format names the frame format ("1080p30", "2160p60", ...).
	Format string `json:"format"`
	// Channels is the channel count M; FreqMHz the interface clock.
	Channels int `json:"channels"`
	FreqMHz  int `json:"freq_mhz"`
	// Fraction in (0,1] simulates that fraction of the frame and
	// extrapolates; 0 means the full frame.
	Fraction float64 `json:"fraction,omitempty"`
	// Fidelity selects the tier: "exact", "fast" or "auto". Empty uses
	// the server's -fidelity default. Estimated answers carry
	// "estimated":true, the same way saturation fallbacks carry
	// "degraded":true.
	Fidelity string `json:"fidelity,omitempty"`

	// Optional MemoryConfig extensions (zero = paper baseline).
	Mux                   string `json:"mux,omitempty"`    // "rbc" (default) or "brc"
	Policy                string `json:"policy,omitempty"` // controller.ParsePolicy spellings
	Device                string `json:"device,omitempty"` // dram.Device registry name
	DisablePowerDown      bool   `json:"disable_power_down,omitempty"`
	WriteBufferDepth      int    `json:"write_buffer_depth,omitempty"`
	QueueDepth            int    `json:"queue_depth,omitempty"`
	RefreshPostpone       int    `json:"refresh_postpone,omitempty"`
	PrechargeOnIdle       bool   `json:"precharge_on_idle,omitempty"`
	InterleaveGranularity int64  `json:"interleave_granularity,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: the cross product of formats,
// channel counts and frequencies, sharing the optional point knobs.
type SweepRequest struct {
	Formats  []string `json:"formats"`
	Channels []int    `json:"channels"`
	FreqsMHz []int    `json:"freqs_mhz"`
	Fraction float64  `json:"fraction,omitempty"`
	Fidelity string   `json:"fidelity,omitempty"`

	Mux                   string `json:"mux,omitempty"`
	Policy                string `json:"policy,omitempty"`
	Device                string `json:"device,omitempty"`
	DisablePowerDown      bool   `json:"disable_power_down,omitempty"`
	WriteBufferDepth      int    `json:"write_buffer_depth,omitempty"`
	QueueDepth            int    `json:"queue_depth,omitempty"`
	RefreshPostpone       int    `json:"refresh_postpone,omitempty"`
	PrechargeOnIdle       bool   `json:"precharge_on_idle,omitempty"`
	InterleaveGranularity int64  `json:"interleave_granularity,omitempty"`
}

// SimulateResponse is the JSON answer for one point. The numeric fields
// are the raw values behind the sweep CSV columns; a client printing
// them with the sweep's format verbs reproduces its rows byte for byte.
// Degraded marks an analytic estimate served under saturation instead of
// a simulator result. Cache state is reported in the X-Sim-Cache header,
// never in the body, so identical points always serialize identically.
type SimulateResponse struct {
	Format      string  `json:"format"`
	Channels    int     `json:"channels"`
	FreqMHz     int     `json:"freq_mhz"`
	FrameBytes  int64   `json:"frame_bytes"`
	RequiredGB  float64 `json:"required_gbps"`
	AccessMS    float64 `json:"access_ms"`
	BudgetMS    float64 `json:"budget_ms"`
	Verdict     string  `json:"verdict"`
	Efficiency  float64 `json:"efficiency"`
	PowerMW     float64 `json:"power_mw"`
	InterfaceMW float64 `json:"interface_mw"`
	Degraded    bool    `json:"degraded,omitempty"`
	// Estimated marks closed-form analytic answers (fast/auto fidelity
	// tiers and degraded-mode fallbacks), serialized the same omitempty
	// way Degraded is: absent means cycle-accurate.
	Estimated bool `json:"estimated,omitempty"`
}

// SweepResponse wraps the grid's points in request (row-major) order.
type SweepResponse struct {
	Points   []SimulateResponse `json:"points"`
	Degraded bool               `json:"degraded,omitempty"`
}

// BatchRequest is the POST /v1/batch body: an explicit slice of points
// answered under ONE admission-control and deadline envelope — the shard
// router's transport, costing one HTTP round trip per shard instead of
// one per point. Fidelity is the default tier for points that set none.
// With Warm, the shard computes (and disk-persists) every point but
// omits the result bodies from the response — the cache-priming mode,
// where the payload is the side effect, not the answer.
type BatchRequest struct {
	Points   []SimulateRequest `json:"points"`
	Fidelity string            `json:"fidelity,omitempty"`
	Warm     bool              `json:"warm,omitempty"`
}

// BatchResponse answers a batch in request order. Outcomes carries the
// per-point cache outcome (the X-Sim-Cache vocabulary: "hit", "joined",
// "simulated", "bypass") — per-point state the single-point endpoints
// report in a header, which a merged sweep body must not depend on, so
// it rides in the batch envelope instead. Shard echoes the serving
// shard's name when the daemon was started with one. Points is omitted
// for warm batches.
type BatchResponse struct {
	Points   []SimulateResponse `json:"points,omitempty"`
	Outcomes []string           `json:"outcomes"`
	Shard    string             `json:"shard,omitempty"`
	Degraded bool               `json:"degraded,omitempty"`
}

// WarmResponse summarizes a cache-warming fan-out: how many grid points
// were primed, how they spread across shards, and how each was answered
// ("simulated" on a cold store, "hit" when already warm). Both maps
// marshal with sorted keys, so the summary is deterministic.
type WarmResponse struct {
	Points   int            `json:"points"`
	Shards   map[string]int `json:"shards"`
	Outcomes map[string]int `json:"outcomes"`
}

// ErrorResponse is the body of every non-2xx answer. MaxBytes is set
// only on 413 (request body over the size limit) and carries the
// byte ceiling the client must stay under.
type ErrorResponse struct {
	Error    string `json:"error"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
}

// DecodeJSON strictly decodes one JSON document from r into v: unknown
// fields and trailing garbage are errors (a typo'd knob can never
// silently simulate the default), and a body over MaxRequestBytes fails
// with ErrRequestTooLarge — distinguishable with errors.Is, so callers
// (the service handlers and the shard router alike) answer 413 instead
// of a generic 400.
func DecodeJSON(r io.Reader, v any) error {
	lr := &io.LimitedReader{R: r, N: MaxRequestBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	consumed := func() int64 { return MaxRequestBytes + 1 - lr.N }
	if err := dec.Decode(v); err != nil {
		// A document truncated by the limit surfaces as a syntax error or
		// unexpected EOF; the consumed-byte count tells the cases apart.
		if consumed() > MaxRequestBytes {
			return fmt.Errorf("decoding request: %w", ErrRequestTooLarge)
		}
		return fmt.Errorf("decoding request: %w", err)
	}
	if consumed() > MaxRequestBytes {
		return fmt.Errorf("decoding request: %w", ErrRequestTooLarge)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON document")
	}
	return nil
}

// decodeJSON is the package-internal spelling the handlers use.
func decodeJSON(r io.Reader, v any) error { return DecodeJSON(r, v) }

// parseMux maps the wire spelling onto mapping.Multiplexing.
func parseMux(s string) (mapping.Multiplexing, error) {
	switch strings.ToLower(s) {
	case "", "rbc":
		return mapping.RBC, nil
	case "brc":
		return mapping.BRC, nil
	default:
		return 0, fmt.Errorf("unknown mux %q (want \"rbc\" or \"brc\")", s)
	}
}

// parsePolicy maps the wire spelling onto controller.PagePolicy — the
// registry's canonical parser, so the service accepts exactly the
// spellings the CLIs do and its error lists the valid names.
func parsePolicy(s string) (controller.PagePolicy, error) {
	return controller.ParsePolicy(s)
}

// Point lowers the request to the core types, reusing the same
// Workload/MemoryConfig validation every other entry point applies —
// the request decoder adds no second, weaker validation surface.
func (req *SimulateRequest) Point() (core.Workload, core.MemoryConfig, error) {
	w, err := core.WorkloadFor(req.Format)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	w.SampleFraction = req.Fraction
	mux, err := parseMux(req.Mux)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	mc := core.MemoryConfig{
		Channels:              req.Channels,
		Freq:                  units.Frequency(req.FreqMHz) * units.MHz,
		Mux:                   mux,
		Policy:                policy,
		Device:                req.Device,
		DisablePowerDown:      req.DisablePowerDown,
		WriteBufferDepth:      req.WriteBufferDepth,
		QueueDepth:            req.QueueDepth,
		RefreshPostpone:       req.RefreshPostpone,
		PrechargeOnIdle:       req.PrechargeOnIdle,
		InterleaveGranularity: req.InterleaveGranularity,
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	if err := mc.Validate(); err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	return w, mc, nil
}

// Grid expands the sweep request into its points in row-major
// (format, channel, frequency) order — the order cmd/sweep emits — after
// validating every coordinate. maxPoints bounds the expansion so one
// request cannot monopolize the service.
func (req *SweepRequest) Grid(maxPoints int) ([]SimulateRequest, error) {
	if len(req.Formats) == 0 || len(req.Channels) == 0 || len(req.FreqsMHz) == 0 {
		return nil, fmt.Errorf("sweep request needs formats, channels and freqs_mhz")
	}
	n := len(req.Formats) * len(req.Channels) * len(req.FreqsMHz)
	if n > maxPoints {
		return nil, fmt.Errorf("sweep grid has %d points, limit %d", n, maxPoints)
	}
	points := make([]SimulateRequest, 0, n)
	for _, f := range req.Formats {
		for _, ch := range req.Channels {
			for _, freq := range req.FreqsMHz {
				points = append(points, SimulateRequest{
					Format:                f,
					Channels:              ch,
					FreqMHz:               freq,
					Fraction:              req.Fraction,
					Mux:                   req.Mux,
					Policy:                req.Policy,
					Device:                req.Device,
					DisablePowerDown:      req.DisablePowerDown,
					WriteBufferDepth:      req.WriteBufferDepth,
					QueueDepth:            req.QueueDepth,
					RefreshPostpone:       req.RefreshPostpone,
					PrechargeOnIdle:       req.PrechargeOnIdle,
					InterleaveGranularity: req.InterleaveGranularity,
				})
			}
		}
	}
	return points, nil
}

// CSVHeader is the header line cmd/sweep prints; rendering every
// SimulateResponse with CSVRow under it reproduces a sweep byte for byte.
const CSVHeader = "format,channels,freq_mhz,frame_bytes,required_gbps,access_ms,budget_ms,verdict,efficiency,power_mw,interface_mw,estimated"

// CSVRow renders the response exactly as cmd/sweep renders the same
// point — same verbs, same order — which is what makes the service (and
// the shard router fronting it) drop-in substitutable for a local run.
func (p SimulateResponse) CSVRow() string {
	return fmt.Sprintf("%s,%d,%d,%d,%.3f,%.3f,%.3f,%s,%.3f,%.1f,%.2f,%t",
		p.Format, p.Channels, p.FreqMHz, p.FrameBytes,
		p.RequiredGB, p.AccessMS, p.BudgetMS, p.Verdict,
		p.Efficiency, p.PowerMW, p.InterfaceMW, p.Estimated)
}

// responseFor renders a Result as the wire response for the request that
// produced it.
func responseFor(req SimulateRequest, res core.Result, degraded bool) SimulateResponse {
	return SimulateResponse{
		Format:      res.Format.Name,
		Channels:    req.Channels,
		FreqMHz:     req.FreqMHz,
		FrameBytes:  res.FrameBytes,
		RequiredGB:  res.RequiredBandwidth.GBps(),
		AccessMS:    res.AccessTime.Milliseconds(),
		BudgetMS:    res.FramePeriod.Milliseconds(),
		Verdict:     res.Verdict.String(),
		Efficiency:  res.Efficiency,
		PowerMW:     res.TotalPower.Milliwatts(),
		InterfaceMW: res.InterfacePower.Milliwatts(),
		Degraded:    degraded,
		Estimated:   res.Estimated,
	}
}
