package server

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/units"
)

// maxRequestBytes bounds the decoded request body. The largest legitimate
// sweep request — every format crossed with every channel count and a
// long frequency list — is well under a kilobyte, so a megabyte keeps
// the decoder safe from memory-amplification without ever rejecting a
// real client.
const maxRequestBytes = 1 << 20

// SimulateRequest is the POST /v1/simulate body: one (Workload,
// MemoryConfig) point. Field names mirror the sweep CSV columns and the
// MemoryConfig knobs; zero values mean the paper defaults, exactly as
// they do in core.
type SimulateRequest struct {
	// Format names the frame format ("1080p30", "2160p60", ...).
	Format string `json:"format"`
	// Channels is the channel count M; FreqMHz the interface clock.
	Channels int `json:"channels"`
	FreqMHz  int `json:"freq_mhz"`
	// Fraction in (0,1] simulates that fraction of the frame and
	// extrapolates; 0 means the full frame.
	Fraction float64 `json:"fraction,omitempty"`
	// Fidelity selects the tier: "exact", "fast" or "auto". Empty uses
	// the server's -fidelity default. Estimated answers carry
	// "estimated":true, the same way saturation fallbacks carry
	// "degraded":true.
	Fidelity string `json:"fidelity,omitempty"`

	// Optional MemoryConfig extensions (zero = paper baseline).
	Mux                   string `json:"mux,omitempty"`    // "rbc" (default) or "brc"
	Policy                string `json:"policy,omitempty"` // controller.ParsePolicy spellings
	Device                string `json:"device,omitempty"` // dram.Device registry name
	DisablePowerDown      bool   `json:"disable_power_down,omitempty"`
	WriteBufferDepth      int    `json:"write_buffer_depth,omitempty"`
	QueueDepth            int    `json:"queue_depth,omitempty"`
	RefreshPostpone       int    `json:"refresh_postpone,omitempty"`
	PrechargeOnIdle       bool   `json:"precharge_on_idle,omitempty"`
	InterleaveGranularity int64  `json:"interleave_granularity,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: the cross product of formats,
// channel counts and frequencies, sharing the optional point knobs.
type SweepRequest struct {
	Formats  []string `json:"formats"`
	Channels []int    `json:"channels"`
	FreqsMHz []int    `json:"freqs_mhz"`
	Fraction float64  `json:"fraction,omitempty"`
	Fidelity string   `json:"fidelity,omitempty"`

	Mux                   string `json:"mux,omitempty"`
	Policy                string `json:"policy,omitempty"`
	Device                string `json:"device,omitempty"`
	DisablePowerDown      bool   `json:"disable_power_down,omitempty"`
	WriteBufferDepth      int    `json:"write_buffer_depth,omitempty"`
	QueueDepth            int    `json:"queue_depth,omitempty"`
	RefreshPostpone       int    `json:"refresh_postpone,omitempty"`
	PrechargeOnIdle       bool   `json:"precharge_on_idle,omitempty"`
	InterleaveGranularity int64  `json:"interleave_granularity,omitempty"`
}

// SimulateResponse is the JSON answer for one point. The numeric fields
// are the raw values behind the sweep CSV columns; a client printing
// them with the sweep's format verbs reproduces its rows byte for byte.
// Degraded marks an analytic estimate served under saturation instead of
// a simulator result. Cache state is reported in the X-Sim-Cache header,
// never in the body, so identical points always serialize identically.
type SimulateResponse struct {
	Format      string  `json:"format"`
	Channels    int     `json:"channels"`
	FreqMHz     int     `json:"freq_mhz"`
	FrameBytes  int64   `json:"frame_bytes"`
	RequiredGB  float64 `json:"required_gbps"`
	AccessMS    float64 `json:"access_ms"`
	BudgetMS    float64 `json:"budget_ms"`
	Verdict     string  `json:"verdict"`
	Efficiency  float64 `json:"efficiency"`
	PowerMW     float64 `json:"power_mw"`
	InterfaceMW float64 `json:"interface_mw"`
	Degraded    bool    `json:"degraded,omitempty"`
	// Estimated marks closed-form analytic answers (fast/auto fidelity
	// tiers and degraded-mode fallbacks), serialized the same omitempty
	// way Degraded is: absent means cycle-accurate.
	Estimated bool `json:"estimated,omitempty"`
}

// SweepResponse wraps the grid's points in request (row-major) order.
type SweepResponse struct {
	Points   []SimulateResponse `json:"points"`
	Degraded bool               `json:"degraded,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decodeJSON strictly decodes one JSON document from r into v: unknown
// fields, trailing garbage and bodies over maxRequestBytes are errors,
// so a typo'd knob can never silently simulate the default.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON document")
	}
	if dec.InputOffset() > maxRequestBytes {
		return fmt.Errorf("decoding request: body exceeds %d bytes", maxRequestBytes)
	}
	return nil
}

// parseMux maps the wire spelling onto mapping.Multiplexing.
func parseMux(s string) (mapping.Multiplexing, error) {
	switch strings.ToLower(s) {
	case "", "rbc":
		return mapping.RBC, nil
	case "brc":
		return mapping.BRC, nil
	default:
		return 0, fmt.Errorf("unknown mux %q (want \"rbc\" or \"brc\")", s)
	}
}

// parsePolicy maps the wire spelling onto controller.PagePolicy — the
// registry's canonical parser, so the service accepts exactly the
// spellings the CLIs do and its error lists the valid names.
func parsePolicy(s string) (controller.PagePolicy, error) {
	return controller.ParsePolicy(s)
}

// Point lowers the request to the core types, reusing the same
// Workload/MemoryConfig validation every other entry point applies —
// the request decoder adds no second, weaker validation surface.
func (req *SimulateRequest) Point() (core.Workload, core.MemoryConfig, error) {
	w, err := core.WorkloadFor(req.Format)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	w.SampleFraction = req.Fraction
	mux, err := parseMux(req.Mux)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	mc := core.MemoryConfig{
		Channels:              req.Channels,
		Freq:                  units.Frequency(req.FreqMHz) * units.MHz,
		Mux:                   mux,
		Policy:                policy,
		Device:                req.Device,
		DisablePowerDown:      req.DisablePowerDown,
		WriteBufferDepth:      req.WriteBufferDepth,
		QueueDepth:            req.QueueDepth,
		RefreshPostpone:       req.RefreshPostpone,
		PrechargeOnIdle:       req.PrechargeOnIdle,
		InterleaveGranularity: req.InterleaveGranularity,
	}
	if err := w.Validate(); err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	if err := mc.Validate(); err != nil {
		return core.Workload{}, core.MemoryConfig{}, err
	}
	return w, mc, nil
}

// Grid expands the sweep request into its points in row-major
// (format, channel, frequency) order — the order cmd/sweep emits — after
// validating every coordinate. maxPoints bounds the expansion so one
// request cannot monopolize the service.
func (req *SweepRequest) Grid(maxPoints int) ([]SimulateRequest, error) {
	if len(req.Formats) == 0 || len(req.Channels) == 0 || len(req.FreqsMHz) == 0 {
		return nil, fmt.Errorf("sweep request needs formats, channels and freqs_mhz")
	}
	n := len(req.Formats) * len(req.Channels) * len(req.FreqsMHz)
	if n > maxPoints {
		return nil, fmt.Errorf("sweep grid has %d points, limit %d", n, maxPoints)
	}
	points := make([]SimulateRequest, 0, n)
	for _, f := range req.Formats {
		for _, ch := range req.Channels {
			for _, freq := range req.FreqsMHz {
				points = append(points, SimulateRequest{
					Format:                f,
					Channels:              ch,
					FreqMHz:               freq,
					Fraction:              req.Fraction,
					Mux:                   req.Mux,
					Policy:                req.Policy,
					Device:                req.Device,
					DisablePowerDown:      req.DisablePowerDown,
					WriteBufferDepth:      req.WriteBufferDepth,
					QueueDepth:            req.QueueDepth,
					RefreshPostpone:       req.RefreshPostpone,
					PrechargeOnIdle:       req.PrechargeOnIdle,
					InterleaveGranularity: req.InterleaveGranularity,
				})
			}
		}
	}
	return points, nil
}

// responseFor renders a Result as the wire response for the request that
// produced it.
func responseFor(req SimulateRequest, res core.Result, degraded bool) SimulateResponse {
	return SimulateResponse{
		Format:      res.Format.Name,
		Channels:    req.Channels,
		FreqMHz:     req.FreqMHz,
		FrameBytes:  res.FrameBytes,
		RequiredGB:  res.RequiredBandwidth.GBps(),
		AccessMS:    res.AccessTime.Milliseconds(),
		BudgetMS:    res.FramePeriod.Milliseconds(),
		Verdict:     res.Verdict.String(),
		Efficiency:  res.Efficiency,
		PowerMW:     res.TotalPower.Milliwatts(),
		InterfaceMW: res.InterfacePower.Milliwatts(),
		Degraded:    degraded,
		Estimated:   res.Estimated,
	}
}
