package server

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzDecodeSimulateRequest hardens the /v1/simulate request decoder:
// arbitrary bytes must never panic, anything the strict decoder accepts
// must lower to core types without panicking, and a point that survives
// validation must round-trip through responseFor. The decoder is the
// daemon's untrusted-input surface, so this is where native fuzzing
// earns its keep.
func FuzzDecodeSimulateRequest(f *testing.F) {
	for _, seed := range []string{
		`{"format":"720p30","channels":1,"freq_mhz":200}`,
		`{"format":"1080p60","channels":8,"freq_mhz":400,"fraction":0.05}`,
		`{"format":"2160p60","channels":4,"freq_mhz":333,"mux":"brc","policy":"closed"}`,
		`{"format":"720p30","channels":1,"freq_mhz":200,"disable_power_down":true,"write_buffer_depth":4,"queue_depth":8,"refresh_postpone":8,"precharge_on_idle":true,"interleave_granularity":4096}`,
		`{"format":"720p30","channels":-1,"freq_mhz":-200,"fraction":2}`,
		`{"format":"","channels":0,"freq_mhz":0}`,
		`{"format":"720p30","chanels":1}`,
		`{"format":"720p30","channels":1,"freq_mhz":200}{"trailing":true}`,
		`{"format":"720p30","channels":1e9,"freq_mhz":1e9}`,
		`null`,
		`[]`,
		`"720p30"`,
		``,
		`{`,
		strings.Repeat(`{"format":`, 100),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SimulateRequest
		if err := decodeJSON(bytes.NewReader(data), &req); err != nil {
			return // rejected inputs just need to not panic
		}
		w, mc, err := req.Point()
		if err != nil {
			return // decoded but invalid: also fine, also must not panic
		}
		if err := w.Validate(); err != nil {
			t.Errorf("Point returned workload failing its own validation: %v", err)
		}
		if err := mc.Validate(); err != nil {
			t.Errorf("Point returned config failing its own validation: %v", err)
		}
		resp := responseFor(req, core.Result{}, false)
		if resp.Channels != req.Channels || resp.FreqMHz != req.FreqMHz {
			t.Errorf("responseFor dropped request coordinates: %+v vs %+v", resp, req)
		}
	})
}
