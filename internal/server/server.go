// Package server is the simulation service: a hardened HTTP/JSON daemon
// exposing the simulator over POST /v1/simulate (one point) and POST
// /v1/sweep (a grid), answering from the content-addressed SimCache with
// cross-request single-flight dedup and dispatching misses into a bounded
// worker pool.
//
// The robustness discipline mirrors the paper's QoS ladder at the service
// level, in order of preference: answer exactly (cache hit or simulation),
// answer approximately (the analytic estimate, flagged as degraded, when
// the queue is saturated), or refuse cheaply and honestly (429 with
// Retry-After) — never hang, never let one client starve the rest, and
// never let a disconnected client keep burning CPU. Every limit is a
// Config knob and every decision is counted in the metrics registry.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Config tunes the service. The zero value of every field means its
// stated default, so Config{} is a working configuration.
type Config struct {
	// Workers bounds the simulations in flight (0 = one per CPU).
	Workers int
	// QueueLimit bounds the requests admitted beyond the running ones;
	// an arrival that would exceed Workers+QueueLimit is shed with 429
	// (or served degraded, below). 0 = 4×Workers.
	QueueLimit int
	// MaxSweepPoints bounds one sweep request's grid (0 = 1024).
	MaxSweepPoints int
	// DefaultDeadline is the per-request deadline when the client sets
	// none (0 = 60s); MaxDeadline caps what a client may ask for via the
	// X-Sim-Deadline header or ?deadline= parameter (0 = 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RateLimit is the per-client token-bucket rate in requests/second
	// (0 = unlimited); RateBurst the bucket size (0 = max(1, 2×rate)).
	// Clients are keyed by the X-Client-ID header, else by remote host.
	RateLimit float64
	RateBurst int
	// Degrade serves saturated arrivals an analytic estimate (flagged
	// degraded in the response) instead of shedding them with 429 —
	// the service-level analogue of the paper's frame-dropping ladder.
	Degrade bool
	// Fidelity is the tier used for requests that do not set their own
	// "fidelity" field (the simd -fidelity flag). The zero value is
	// FidelityExact — the seed behavior.
	Fidelity core.Fidelity
	// Cache answers points content-addressed with single-flight dedup
	// (nil = a fresh in-process cache).
	Cache *core.SimCache
	// Metrics, when non-nil, registers the service instruments in it.
	Metrics *metrics.Registry
	// ShardName, when set, stamps every response with an X-Sim-Shard
	// header (and batch bodies with a shard field) so a router-fronted
	// fleet can attribute each answer to the daemon that served it.
	ShardName string
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = core.DefaultJobs()
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.Workers
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1024
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.RateBurst <= 0 {
		c.RateBurst = int(math.Max(1, 2*c.RateLimit))
	}
	if c.Cache == nil {
		c.Cache = core.NewSimCache()
	}
	return c
}

// serverMeter bundles the service's registered instruments; every field
// is nil (a no-op) when no registry was configured.
type serverMeter struct {
	requests         map[string]*metrics.Counter
	latency          map[string]*metrics.Histogram
	shed             *metrics.Counter
	rateLimited      *metrics.Counter
	deadlineExceeded *metrics.Counter
	panics           *metrics.Counter
	degraded         *metrics.Counter
	dedupJoined      *metrics.Counter
	queueWaiting     *metrics.Gauge
	running          *metrics.Gauge
}

func newServerMeter(r *metrics.Registry) serverMeter {
	endpoint := func(name string) metrics.Label {
		return metrics.Label{Key: "endpoint", Value: name}
	}
	m := serverMeter{
		requests: map[string]*metrics.Counter{},
		latency:  map[string]*metrics.Histogram{},
	}
	for _, ep := range []string{"simulate", "sweep", "batch"} {
		m.requests[ep] = r.Counter("server_requests_total", endpoint(ep))
		m.latency[ep] = r.Histogram("server_request_seconds", metrics.DurationBuckets, endpoint(ep))
	}
	m.shed = r.Counter("server_shed_total")
	m.rateLimited = r.Counter("server_ratelimited_total")
	m.deadlineExceeded = r.Counter("server_deadline_exceeded_total")
	m.panics = r.Counter("server_panics_total")
	m.degraded = r.Counter("server_degraded_total")
	m.dedupJoined = r.Counter("server_dedup_joined_total")
	m.queueWaiting = r.Gauge("server_queue_waiting")
	m.running = r.Gauge("server_running")
	return m
}

// Server is the simulation service. Construct with New, serve either by
// Start (own listener) or by mounting Handler on an external server.
type Server struct {
	cfg     Config
	limiter *rateLimiter
	meter   serverMeter

	// slots is the worker-pool semaphore: one token per concurrent
	// simulation, shared by both endpoints. pending counts admitted
	// requests (queued + running) against Workers+QueueLimit.
	slots   chan struct{}
	pending atomic.Int64

	// baseCtx parents every request context; cancelBase aborts all
	// in-flight work when the drain deadline passes.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	http *http.Server
	ln   net.Listener

	// simulate and estimate are the compute seams: production wires them
	// to the cache and the analytic model; tests substitute blocking or
	// panicking stand-ins to pin the failure-handling paths.
	simulate func(ctx context.Context, w core.Workload, mc core.MemoryConfig, tier core.Fidelity) (core.Result, core.CacheOutcome, error)
	estimate func(w core.Workload, mc core.MemoryConfig) (core.Result, error)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		limiter:    newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		meter:      newServerMeter(cfg.Metrics),
		slots:      make(chan struct{}, cfg.Workers),
		baseCtx:    baseCtx,
		cancelBase: cancel,
		simulate:   cfg.Cache.SimulateTier,
		estimate:   core.AnalyticResult,
	}
	s.http = &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	return s
}

// Handler returns the service mux (also mounted by Start).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/simulate", s.guard("simulate", s.handleSimulate))
	mux.HandleFunc("/v1/sweep", s.guard("sweep", s.handleSweep))
	mux.HandleFunc("/v1/batch", s.guard("batch", s.handleBatch))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "simulation service\n\nPOST /v1/simulate\nPOST /v1/sweep\nPOST /v1/batch\nGET  /healthz\n")
	})
	return mux
}

// Start binds addr and serves in the background. Like the debug server
// it binds eagerly so ":0" callers can learn the port.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	go s.http.Serve(ln)
	return nil
}

// Addr returns the bound address (resolved port for ":0" binds).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// drainGrace is how long Drain keeps waiting after it has canceled the
// in-flight requests' contexts: enough for handlers to observe the
// cancellation and unwind, short enough that a true hang is surfaced.
const drainGrace = 5 * time.Second

// Drain gracefully stops the service: the listener closes immediately
// (no new requests), in-flight requests get until ctx to finish, and
// past that their contexts are canceled so they abort at the next phase
// boundary and unwind within drainGrace. Only a request that ignores its
// cancellation hangs the drain — that returns an error after the
// listener is forcibly closed, and the daemon exits non-zero.
func (s *Server) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, s.cancelBase)
	defer stop()
	if err := s.http.Shutdown(ctx); err == nil {
		s.cancelBase()
		return nil
	}
	// The deadline passed and AfterFunc has canceled every request
	// context; give the handlers a grace period to unwind.
	g, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := s.http.Shutdown(g); err != nil {
		s.http.Close()
		return fmt.Errorf("server: drain: in-flight requests ignored cancellation: %w", err)
	}
	return nil
}

// Close stops the service immediately, cutting off in-flight requests.
func (s *Server) Close() error {
	s.cancelBase()
	return s.http.Close()
}

// guard wraps a handler with the shared request discipline: method
// check, per-client rate limit, panic isolation, and request accounting.
func (s *Server) guard(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.meter.panics.Inc()
				fmt.Fprintf(os.Stderr, "server: panic in %s: %v\n%s", endpoint, p, debug.Stack())
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error serving %s", endpoint))
			}
		}()
		if s.cfg.ShardName != "" {
			w.Header().Set("X-Sim-Shard", s.cfg.ShardName)
		}
		s.meter.requests[endpoint].Inc()
		start := time.Now()
		defer func() { s.meter.latency[endpoint].Observe(time.Since(start).Seconds()) }()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if ok, retry := s.limiter.Allow(clientKey(r), time.Now()); !ok {
			s.meter.rateLimited.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
			return
		}
		h(w, r)
	}
}

// clientKey identifies the client for rate limiting: an explicit
// X-Client-ID header wins, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a wait as the integral seconds the
// Retry-After header wants, rounding up so "retry after 0" never lies.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// requestDeadline resolves the effective deadline: the client's
// X-Sim-Deadline header or ?deadline= parameter (whichever is present,
// header winning), capped at MaxDeadline; absent both, DefaultDeadline.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	spec := r.Header.Get("X-Sim-Deadline")
	if spec == "" {
		spec = r.URL.Query().Get("deadline")
	}
	if spec == "" {
		return s.cfg.DefaultDeadline, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil {
		return 0, fmt.Errorf("bad deadline %q: %v", spec, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad deadline %q: must be positive", spec)
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// admit charges one request against the admission bound. ok=false means
// the queue is full and the caller must shed or degrade; otherwise the
// returned release must be called when the request retires.
func (s *Server) admit() (release func(), ok bool) {
	limit := int64(s.cfg.Workers + s.cfg.QueueLimit)
	if s.pending.Add(1) > limit {
		s.pending.Add(-1)
		return nil, false
	}
	return func() { s.pending.Add(-1) }, true
}

// acquireSlot blocks until a worker slot is free or ctx is done, keeping
// the queue-depth gauge honest while waiting.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	s.meter.queueWaiting.Add(1)
	defer s.meter.queueWaiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		s.meter.running.Add(1)
		return func() {
			<-s.slots
			s.meter.running.Add(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runPoint answers one point through the worker pool and cache,
// classifying the outcome for the response header.
func (s *Server) runPoint(ctx context.Context, w core.Workload, mc core.MemoryConfig, tier core.Fidelity) (core.Result, core.CacheOutcome, error) {
	release, err := s.acquireSlot(ctx)
	if err != nil {
		return core.Result{}, 0, err
	}
	defer release()
	res, outcome, err := s.simulate(ctx, w, mc, tier)
	if err == nil && outcome == core.OutcomeJoined {
		s.meter.dedupJoined.Inc()
	}
	return res, outcome, err
}

// tierFor resolves a request's fidelity field against the server default.
func (s *Server) tierFor(field string) (core.Fidelity, error) {
	if field == "" {
		return s.cfg.Fidelity, nil
	}
	return core.ParseFidelity(field)
}

// shedOrDegrade handles a saturated arrival: the analytic estimate when
// degradation is enabled (est != nil on success), else a 429 was written.
func (s *Server) shedOrDegrade(w http.ResponseWriter, req SimulateRequest) (est *SimulateResponse) {
	if s.cfg.Degrade {
		wl, mc, err := req.Point()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return nil
		}
		res, err := s.estimate(wl, mc)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return nil
		}
		s.meter.degraded.Inc()
		resp := responseFor(req, res, true)
		return &resp
	}
	s.meter.shed.Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
	writeError(w, http.StatusTooManyRequests, "admission queue full")
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	wl, mc, err := req.Point()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tier, err := s.tierFor(req.Fidelity)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	deadline, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admit()
	if !ok {
		if est := s.shedOrDegrade(w, req); est != nil {
			w.Header().Set("X-Sim-Degraded", "true")
			writeJSON(w, http.StatusOK, est)
		}
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	res, outcome, err := s.runPoint(ctx, wl, mc, tier)
	if err != nil {
		s.writeSimError(w, ctx, err)
		return
	}
	w.Header().Set("X-Sim-Cache", outcome.String())
	resp := responseFor(req, res, false)
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	points, err := req.Grid(s.cfg.MaxSweepPoints)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tier, err := s.tierFor(req.Fidelity)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Validate the whole grid up front: a bad coordinate must 400 before
	// any simulation runs, not fail the sweep halfway.
	type point struct {
		w  core.Workload
		mc core.MemoryConfig
	}
	grid := make([]point, len(points))
	for i, p := range points {
		wl, mc, err := p.Point()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		grid[i] = point{wl, mc}
	}
	deadline, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admit()
	if !ok {
		if !s.cfg.Degrade {
			s.meter.shed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
			writeError(w, http.StatusTooManyRequests, "admission queue full")
			return
		}
		// Degraded sweep: estimate every point analytically.
		resp := SweepResponse{Degraded: true, Points: make([]SimulateResponse, len(points))}
		for i, p := range grid {
			res, err := s.estimate(p.w, p.mc)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			resp.Points[i] = responseFor(points[i], res, true)
		}
		s.meter.degraded.Inc()
		w.Header().Set("X-Sim-Degraded", "true")
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	// One admitted sweep fans its points over the shared worker pool;
	// the per-point acquireSlot arbitrates fairly with single-point
	// requests, and RunIndexedContext keeps the output in grid order.
	results, err := core.RunIndexedContext(ctx, s.cfg.Workers, len(grid), func(i int) (SimulateResponse, error) {
		res, _, err := s.runPoint(ctx, grid[i].w, grid[i].mc, tier)
		if err != nil {
			return SimulateResponse{}, err
		}
		return responseFor(points[i], res, false), nil
	})
	if err != nil {
		s.writeSimError(w, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, &SweepResponse{Points: results})
}

// handleBatch answers an explicit slice of points under ONE admission
// and deadline envelope — the shard router's per-shard transport. The
// points fan over the shared worker pool exactly as a sweep's grid does;
// the difference is the envelope (a router charges each shard one
// admission slot per sub-batch, not one per point) and the response,
// which carries per-point cache outcomes so the router can surface
// fleet-wide cache attribution without the merged sweep body ever
// depending on cache state. A warm batch computes and persists every
// point but omits the bodies — priming is the payload.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "batch request needs at least one point")
		return
	}
	if len(req.Points) > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d points, limit %d", len(req.Points), s.cfg.MaxSweepPoints))
		return
	}
	// Validate every point and resolve its tier up front: a bad
	// coordinate must 400 before any simulation runs. A point's own
	// fidelity field wins over the batch default, which wins over the
	// server default.
	type point struct {
		w    core.Workload
		mc   core.MemoryConfig
		tier core.Fidelity
	}
	grid := make([]point, len(req.Points))
	for i := range req.Points {
		wl, mc, err := req.Points[i].Point()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		spec := req.Points[i].Fidelity
		if spec == "" {
			spec = req.Fidelity
		}
		tier, err := s.tierFor(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		grid[i] = point{wl, mc, tier}
	}
	deadline, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.admit()
	if !ok {
		if !s.cfg.Degrade {
			s.meter.shed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
			writeError(w, http.StatusTooManyRequests, "admission queue full")
			return
		}
		// Degraded batch: estimate every point analytically. Estimates
		// never reach the disk store, so a degraded warm batch primes
		// nothing — the outcomes say so honestly.
		resp := BatchResponse{
			Degraded: true,
			Shard:    s.cfg.ShardName,
			Outcomes: make([]string, len(grid)),
		}
		if !req.Warm {
			resp.Points = make([]SimulateResponse, len(grid))
		}
		for i, p := range grid {
			res, err := s.estimate(p.w, p.mc)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			resp.Outcomes[i] = "degraded"
			if !req.Warm {
				resp.Points[i] = responseFor(req.Points[i], res, true)
			}
		}
		s.meter.degraded.Inc()
		w.Header().Set("X-Sim-Degraded", "true")
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	type answer struct {
		resp    SimulateResponse
		outcome core.CacheOutcome
	}
	answers, err := core.RunIndexedContext(ctx, s.cfg.Workers, len(grid), func(i int) (answer, error) {
		res, outcome, err := s.runPoint(ctx, grid[i].w, grid[i].mc, grid[i].tier)
		if err != nil {
			return answer{}, err
		}
		return answer{responseFor(req.Points[i], res, false), outcome}, nil
	})
	if err != nil {
		s.writeSimError(w, ctx, err)
		return
	}
	resp := BatchResponse{
		Shard:    s.cfg.ShardName,
		Outcomes: make([]string, len(answers)),
	}
	if !req.Warm {
		resp.Points = make([]SimulateResponse, len(answers))
	}
	for i, a := range answers {
		resp.Outcomes[i] = a.outcome.String()
		if !req.Warm {
			resp.Points[i] = a.resp
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}

// writeSimError maps a simulation failure to its status: deadline and
// disconnect cancellations are the client's doing (504/499-as-503),
// anything else is a service-side 500.
func (s *Server) writeSimError(w http.ResponseWriter, ctx context.Context, err error) {
	switch ctx.Err() {
	case context.DeadlineExceeded:
		s.meter.deadlineExceeded.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case context.Canceled:
		// Client went away or the drain deadline cut the request off;
		// the status is best-effort (the peer is usually gone).
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeJSON writes v with status. Marshaling happens before the header
// goes out so an encoding failure can still 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeDecodeError maps a request-decoding failure to its status: a body
// over MaxRequestBytes answers 413 with the documented max-size payload
// (the max_bytes field tells the client the ceiling), anything else is a
// plain 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrRequestTooLarge) {
		writeErrorPayload(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error:    fmt.Sprintf("request body exceeds %d bytes", int64(MaxRequestBytes)),
			MaxBytes: MaxRequestBytes,
		})
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeErrorPayload(w, status, ErrorResponse{Error: msg})
}

func writeErrorPayload(w http.ResponseWriter, status int, e ErrorResponse) {
	data, _ := json.Marshal(e)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
