package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestBatchEndpoint: a batch answers in request order, each point equal
// to a direct simulation, with a cache outcome per point and the shard
// name echoed in the body.
func TestBatchEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, ShardName: "s1", Metrics: metrics.NewRegistry()})
	h := s.Handler()

	body := `{"points":[
		{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05},
		{"format":"720p30","channels":2,"freq_mhz":200,"fraction":0.05},
		{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05}]}`
	rec := postJSON(h, "/v1/batch", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Sim-Shard"); got != "s1" {
		t.Errorf("X-Sim-Shard = %q, want s1", got)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if resp.Shard != "s1" {
		t.Errorf("body shard = %q, want s1", resp.Shard)
	}
	if len(resp.Points) != 3 || len(resp.Outcomes) != 3 {
		t.Fatalf("batch returned %d points / %d outcomes, want 3 / 3", len(resp.Points), len(resp.Outcomes))
	}
	for i, channels := range []int{1, 2, 1} {
		req := sampleRequest()
		req.Channels = channels
		w, mc, err := req.Point()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.Simulate(w, mc)
		if err != nil {
			t.Fatal(err)
		}
		if want := responseFor(req, direct, false); resp.Points[i] != want {
			t.Errorf("point %d = %+v, want %+v", i, resp.Points[i], want)
		}
	}
	// Point 2 repeats point 0 inside one batch, so it is answered by the
	// memo (a hit or a single-flight join), never simulated twice.
	if resp.Outcomes[2] == "simulated" {
		t.Errorf("duplicate point outcome = %q, want hit or joined", resp.Outcomes[2])
	}
	for i, o := range resp.Outcomes[:2] {
		if o != "simulated" && o != "joined" && o != "hit" {
			t.Errorf("outcome %d = %q, not in the X-Sim-Cache vocabulary", i, o)
		}
	}
}

// TestBatchWarm: a warm batch computes the points (their outcomes are
// reported) but omits the result bodies, and a second warm batch of the
// same points answers entirely from cache.
func TestBatchWarm(t *testing.T) {
	s := New(Config{Workers: 2, Metrics: metrics.NewRegistry()})
	h := s.Handler()

	body := `{"warm":true,"points":[
		{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05},
		{"format":"720p30","channels":2,"freq_mhz":200,"fraction":0.05}]}`
	var first BatchResponse
	rec := postJSON(h, "/v1/batch", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm batch: status %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Points != nil {
		t.Errorf("warm batch returned %d point bodies, want none", len(first.Points))
	}
	if len(first.Outcomes) != 2 {
		t.Fatalf("warm outcomes = %v, want 2 entries", first.Outcomes)
	}
	for i, o := range first.Outcomes {
		if o != "simulated" {
			t.Errorf("cold warm-batch outcome %d = %q, want simulated", i, o)
		}
	}
	var second BatchResponse
	rec = postJSON(h, "/v1/batch", body, nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	for i, o := range second.Outcomes {
		if o != "hit" {
			t.Errorf("re-warm outcome %d = %q, want hit", i, o)
		}
	}
}

// TestBatchValidation: empty batches, oversized batches and bad points
// 400 before any simulation runs.
func TestBatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, MaxSweepPoints: 2})
	h := s.Handler()
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"points":[]}`},
		{"missing", `{}`},
		{"over limit", `{"points":[{"format":"720p30","channels":1,"freq_mhz":200},{"format":"720p30","channels":2,"freq_mhz":200},{"format":"720p30","channels":4,"freq_mhz":200}]}`},
		{"bad point", `{"points":[{"format":"nope","channels":1,"freq_mhz":200}]}`},
		{"bad fidelity", `{"fidelity":"psychic","points":[{"format":"720p30","channels":1,"freq_mhz":200}]}`},
	} {
		if rec := postJSON(h, "/v1/batch", tc.body, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, rec.Code, rec.Body)
		}
	}
}

// TestRequestTooLarge is the satellite's contract: a body over
// MaxRequestBytes answers 413 — not a generic 400 — with the documented
// payload carrying the byte ceiling, on every decoding endpoint.
func TestRequestTooLarge(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()
	// A syntactically valid document that is simply enormous: the filler
	// lives in a giant formats list, so only the size can be the reason
	// for rejection.
	huge := `{"formats":["720p30","` + strings.Repeat("x", MaxRequestBytes) + `"],"channels":[1],"freqs_mhz":[200]}`
	for _, path := range []string{"/v1/simulate", "/v1/sweep", "/v1/batch"} {
		rec := postJSON(h, path, huge, nil)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, rec.Code)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: undecodable 413 body: %v", path, err)
			continue
		}
		if e.MaxBytes != MaxRequestBytes {
			t.Errorf("%s: max_bytes = %d, want %d", path, e.MaxBytes, MaxRequestBytes)
		}
		if !strings.Contains(e.Error, "exceeds") {
			t.Errorf("%s: 413 error %q does not explain the limit", path, e.Error)
		}
	}
	// Just under the limit is a plain 400 (unknown field), never a 413.
	small := `{"formats":["720p30"],"chanels":[1]}`
	if rec := postJSON(h, "/v1/sweep", small, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("small bad request: status %d, want 400", rec.Code)
	}
}
