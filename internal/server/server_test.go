package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simcache"
)

// sampleBody is the canonical test point: small enough (5% of a 720p30
// frame) that the real simulator answers it in milliseconds.
const sampleBody = `{"format":"720p30","channels":1,"freq_mhz":200,"fraction":0.05}`

func sampleRequest() SimulateRequest {
	return SimulateRequest{Format: "720p30", Channels: 1, FreqMHz: 200, Fraction: 0.05}
}

var (
	sampleOnce sync.Once
	sampleRes  core.Result
	sampleErr  error
)

// sampleResult simulates the canonical point once, directly through
// core.Simulate, and shares it across tests — both as a stub return
// value and as the independent expectation the service must reproduce.
func sampleResult(t *testing.T) core.Result {
	t.Helper()
	sampleOnce.Do(func() {
		req := sampleRequest()
		w, mc, err := req.Point()
		if err != nil {
			sampleErr = err
			return
		}
		sampleRes, sampleErr = core.Simulate(w, mc)
	})
	if sampleErr != nil {
		t.Fatalf("simulating sample point: %v", sampleErr)
	}
	return sampleRes
}

func postJSON(h http.Handler, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.RemoteAddr = "10.0.0.1:12345"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestSimulateEndpoint: the real path end to end — a miss simulates, a
// repeat hits the cache, and the two bodies are byte-identical (cache
// state lives in the header, never the body).
func TestSimulateEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, Metrics: metrics.NewRegistry()})
	h := s.Handler()

	first := postJSON(h, "/v1/simulate", sampleBody, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Sim-Cache"); got != "simulated" {
		t.Errorf("first request X-Sim-Cache = %q, want simulated", got)
	}
	second := postJSON(h, "/v1/simulate", sampleBody, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status %d, body %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Sim-Cache"); got != "hit" {
		t.Errorf("second request X-Sim-Cache = %q, want hit", got)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("hit body differs from miss body:\n  miss: %s\n  hit:  %s", first.Body, second.Body)
	}

	want := responseFor(sampleRequest(), sampleResult(t), false)
	var got SimulateResponse
	if err := json.Unmarshal(first.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if got != want {
		t.Errorf("response = %+v, want %+v", got, want)
	}
}

// TestSimulateRejectsBadRequests: the strict decoder and validators turn
// every malformed input into a 400 (or 405) before any simulation runs.
func TestSimulateRejectsBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()
	for _, tc := range []struct {
		name string
		body string
		hdr  map[string]string
		want int
	}{
		{"unknown field", `{"format":"720p30","channels":1,"freq_mhz":200,"chanels":4}`, nil, 400},
		{"trailing data", sampleBody + `{"x":1}`, nil, 400},
		{"bad format", `{"format":"9999p99","channels":1,"freq_mhz":200}`, nil, 400},
		{"zero channels", `{"format":"720p30","channels":0,"freq_mhz":200}`, nil, 400},
		{"bad mux", `{"format":"720p30","channels":1,"freq_mhz":200,"mux":"cbr"}`, nil, 400},
		{"bad policy", `{"format":"720p30","channels":1,"freq_mhz":200,"policy":"ajar"}`, nil, 400},
		{"bad deadline", sampleBody, map[string]string{"X-Sim-Deadline": "soon"}, 400},
		{"negative deadline", sampleBody, map[string]string{"X-Sim-Deadline": "-1s"}, 400},
		{"empty body", ``, nil, 400},
	} {
		if rec := postJSON(h, "/v1/simulate", tc.body, tc.hdr); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
}

// TestSingleFlightDedup is the satellite's contract: N concurrent
// identical requests execute ONE simulation; the other N-1 join it, the
// dedup-join counter reads N-1, and all N bodies are byte-identical.
// The stub routes through a real simcache.Memo whose computation is held
// open until every request has parked in the memo, so the join is
// deterministic rather than a race the fast simulator usually wins.
func TestSingleFlightDedup(t *testing.T) {
	const n = 8
	reg := metrics.NewRegistry()
	s := New(Config{Workers: n, QueueLimit: n, Metrics: reg})
	res := sampleResult(t)

	memo := simcache.NewMemo[core.Result]()
	key := simcache.Key{0x5f}
	gate := make(chan struct{})
	var computed atomic.Int64
	s.simulate = func(ctx context.Context, w core.Workload, mc core.MemoryConfig, tier core.Fidelity) (core.Result, core.CacheOutcome, error) {
		val, err, hit, joined := memo.DoContext(ctx, key, func(context.Context) (core.Result, error) {
			computed.Add(1)
			<-gate
			return res, nil
		})
		outcome := core.OutcomeSimulated
		switch {
		case joined:
			outcome = core.OutcomeJoined
		case hit:
			outcome = core.OutcomeHit
		}
		return val, outcome, err
	}

	h := s.Handler()
	type answer struct {
		code  int
		body  string
		cache string
	}
	answers := make(chan answer, n)
	for i := 0; i < n; i++ {
		go func() {
			rec := postJSON(h, "/v1/simulate", sampleBody, nil)
			answers <- answer{rec.Code, rec.Body.String(), rec.Header().Get("X-Sim-Cache")}
		}()
	}

	// One initiator plus n-1 joiners all hold a ref on the entry.
	deadline := time.Now().Add(10 * time.Second)
	for memo.Inflight(key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("inflight %d, want %d", memo.Inflight(key), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	var bodies []string
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		a := <-answers
		if a.code != http.StatusOK {
			t.Fatalf("request failed: status %d, body %s", a.code, a.body)
		}
		bodies = append(bodies, a.body)
		counts[a.cache]++
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("bodies not byte-identical:\n  %s\n  %s", bodies[0], b)
		}
	}
	if computed.Load() != 1 {
		t.Errorf("computed %d simulations, want 1", computed.Load())
	}
	if counts["simulated"] != 1 || counts["joined"] != n-1 {
		t.Errorf("outcomes = %v, want 1 simulated + %d joined", counts, n-1)
	}
	if v := s.meter.dedupJoined.Value(); v != n-1 {
		t.Errorf("server_dedup_joined_total = %d, want %d", v, n-1)
	}
}

// blockingStub parks every simulate call until gate closes (or the
// request context is canceled), reporting each arrival on started.
func blockingStub(res core.Result, gate <-chan struct{}, started chan<- struct{}) func(context.Context, core.Workload, core.MemoryConfig, core.Fidelity) (core.Result, core.CacheOutcome, error) {
	return func(ctx context.Context, w core.Workload, mc core.MemoryConfig, tier core.Fidelity) (core.Result, core.CacheOutcome, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-gate:
			return res, core.OutcomeSimulated, nil
		case <-ctx.Done():
			return core.Result{}, 0, ctx.Err()
		}
	}
}

// TestAdmissionShed: with Workers=1 and QueueLimit=1, the third
// concurrent request must shed with 429 + Retry-After while the two
// admitted ones complete once the pool frees up.
func TestAdmissionShed(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, QueueLimit: 1, Metrics: reg})
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	s.simulate = blockingStub(sampleResult(t), gate, started)
	h := s.Handler()

	admitted := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { admitted <- postJSON(h, "/v1/simulate", sampleBody, nil) }()
	}
	<-started // first holds the worker slot
	deadline := time.Now().Add(10 * time.Second)
	for s.pending.Load() < 2 { // second admitted, queued for a slot
		if time.Now().After(deadline) {
			t.Fatalf("pending %d, want 2", s.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	rec := postJSON(h, "/v1/simulate", sampleBody, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if v := s.meter.shed.Value(); v != 1 {
		t.Errorf("server_shed_total = %d, want 1", v)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if a := <-admitted; a.Code != http.StatusOK {
			t.Errorf("admitted request: status %d, body %s", a.Code, a.Body)
		}
	}
}

// TestDegradedFallback: with Degrade on, saturation serves the analytic
// estimate — flagged in both header and body — instead of a 429.
func TestDegradedFallback(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, QueueLimit: 1, Degrade: true, Metrics: reg})
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	s.simulate = blockingStub(sampleResult(t), gate, started)
	h := s.Handler()

	admitted := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { admitted <- postJSON(h, "/v1/simulate", sampleBody, nil) }()
	}
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.pending.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("pending %d, want 2", s.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	rec := postJSON(h, "/v1/simulate", sampleBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Sim-Degraded"); got != "true" {
		t.Errorf("X-Sim-Degraded = %q, want true", got)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding degraded response: %v", err)
	}
	if !resp.Degraded {
		t.Error("degraded response body not flagged degraded")
	}
	if resp.AccessMS <= 0 || resp.PowerMW <= 0 {
		t.Errorf("degraded estimate implausible: access %.3fms power %.1fmW", resp.AccessMS, resp.PowerMW)
	}
	if v := s.meter.degraded.Value(); v != 1 {
		t.Errorf("server_degraded_total = %d, want 1", v)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		<-admitted
	}
}

// TestDeadlineExceeded: a request whose deadline fires mid-simulation
// gets 504 and the deadline counter, not a hang.
func TestDeadlineExceeded(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, Metrics: reg})
	s.simulate = blockingStub(core.Result{}, nil, nil) // nil gate: only ctx can release it
	h := s.Handler()

	rec := postJSON(h, "/v1/simulate", sampleBody, map[string]string{"X-Sim-Deadline": "30ms"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if v := s.meter.deadlineExceeded.Value(); v != 1 {
		t.Errorf("server_deadline_exceeded_total = %d, want 1", v)
	}
}

// TestPanicIsolation: a panicking request answers 500 and the service
// keeps serving — one poisoned input cannot take the daemon down.
func TestPanicIsolation(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, Metrics: reg})
	s.simulate = func(context.Context, core.Workload, core.MemoryConfig, core.Fidelity) (core.Result, core.CacheOutcome, error) {
		panic("poisoned point")
	}
	h := s.Handler()

	if rec := postJSON(h, "/v1/simulate", sampleBody, nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500", rec.Code)
	}
	if v := s.meter.panics.Value(); v != 1 {
		t.Errorf("server_panics_total = %d, want 1", v)
	}
	res := sampleResult(t)
	s.simulate = func(context.Context, core.Workload, core.MemoryConfig, core.Fidelity) (core.Result, core.CacheOutcome, error) {
		return res, core.OutcomeSimulated, nil
	}
	if rec := postJSON(h, "/v1/simulate", sampleBody, nil); rec.Code != http.StatusOK {
		t.Errorf("request after panic: status %d, want 200", rec.Code)
	}
	if running := s.meter.running.Value(); running != 0 {
		t.Errorf("running gauge leaked: %d, want 0", running)
	}
}

// TestRateLimit: a client over its token bucket gets 429 + Retry-After;
// other clients are unaffected.
func TestRateLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, RateLimit: 0.001, RateBurst: 1, Metrics: reg})
	res := sampleResult(t)
	s.simulate = func(context.Context, core.Workload, core.MemoryConfig, core.Fidelity) (core.Result, core.CacheOutcome, error) {
		return res, core.OutcomeSimulated, nil
	}
	h := s.Handler()

	a := map[string]string{"X-Client-ID": "alice"}
	if rec := postJSON(h, "/v1/simulate", sampleBody, a); rec.Code != http.StatusOK {
		t.Fatalf("first alice request: status %d", rec.Code)
	}
	rec := postJSON(h, "/v1/simulate", sampleBody, a)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second alice request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("rate-limited 429 without Retry-After")
	}
	if rec := postJSON(h, "/v1/simulate", sampleBody, map[string]string{"X-Client-ID": "bob"}); rec.Code != http.StatusOK {
		t.Errorf("bob request: status %d, want 200 (limits are per-client)", rec.Code)
	}
	if v := s.meter.rateLimited.Value(); v != 1 {
		t.Errorf("server_ratelimited_total = %d, want 1", v)
	}
}

// TestSweepEndpoint: a grid answers in row-major order with each point
// equal to an independent direct simulation.
func TestSweepEndpoint(t *testing.T) {
	s := New(Config{Workers: 4, Metrics: metrics.NewRegistry()})
	h := s.Handler()

	body := `{"formats":["720p30"],"channels":[1,2],"freqs_mhz":[200],"fraction":0.05}`
	rec := postJSON(h, "/v1/sweep", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: status %d, body %s", rec.Code, rec.Body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding sweep response: %v", err)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("sweep returned %d points, want 2", len(resp.Points))
	}
	for i, channels := range []int{1, 2} {
		req := sampleRequest()
		req.Channels = channels
		w, mc, err := req.Point()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.Simulate(w, mc)
		if err != nil {
			t.Fatal(err)
		}
		if want := responseFor(req, direct, false); resp.Points[i] != want {
			t.Errorf("point %d = %+v, want %+v", i, resp.Points[i], want)
		}
	}
}

// TestSweepGridLimit: a grid over MaxSweepPoints is refused up front.
func TestSweepGridLimit(t *testing.T) {
	s := New(Config{Workers: 1, MaxSweepPoints: 1})
	body := `{"formats":["720p30"],"channels":[1,2],"freqs_mhz":[200]}`
	if rec := postJSON(s.Handler(), "/v1/sweep", body, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized grid: status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestDrainCancelsInflight: a drain whose deadline passes cancels the
// in-flight request contexts and still comes back clean — the handler
// unwinds on cancellation instead of hanging the shutdown.
func TestDrainCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	started := make(chan struct{}, 1)
	s.simulate = blockingStub(core.Result{}, nil, started) // releases only on ctx cancel
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr() + "/v1/simulate"

	type reply struct {
		code int
		err  error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(sampleBody))
		if err != nil {
			replies <- reply{0, err}
			return
		}
		defer resp.Body.Close()
		replies <- reply{resp.StatusCode, nil}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request errored instead of answering: %v", r.err)
	}
	if r.code != http.StatusServiceUnavailable {
		t.Errorf("canceled in-flight request: status %d, want 503", r.code)
	}
	if _, err := http.Post(url, "application/json", strings.NewReader(sampleBody)); err == nil {
		t.Error("post-drain request succeeded, want connection refused")
	}
}

// TestDrainClean: an in-flight request that finishes inside the drain
// deadline completes normally with a 200.
func TestDrainClean(t *testing.T) {
	s := New(Config{Workers: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.simulate = blockingStub(sampleResult(t), gate, started)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr() + "/v1/simulate"

	codes := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(sampleBody))
		if err != nil {
			codes <- 0
			return
		}
		defer resp.Body.Close()
		codes <- resp.StatusCode
	}()
	<-started
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-codes; code != http.StatusOK {
		t.Errorf("in-flight request during clean drain: status %d, want 200", code)
	}
}

// TestRequestDeadlineResolution: header beats query, both are capped at
// MaxDeadline, and absence means the default.
func TestRequestDeadlineResolution(t *testing.T) {
	s := New(Config{DefaultDeadline: 7 * time.Second, MaxDeadline: 30 * time.Second})
	for _, tc := range []struct {
		name   string
		header string
		query  string
		want   time.Duration
	}{
		{"default", "", "", 7 * time.Second},
		{"header", "2s", "", 2 * time.Second},
		{"query", "", "3s", 3 * time.Second},
		{"header wins", "2s", "3s", 2 * time.Second},
		{"capped", "10m", "", 30 * time.Second},
	} {
		target := "/v1/simulate"
		if tc.query != "" {
			target += "?deadline=" + tc.query
		}
		req := httptest.NewRequest(http.MethodPost, target, nil)
		if tc.header != "" {
			req.Header.Set("X-Sim-Deadline", tc.header)
		}
		got, err := s.requestDeadline(req)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: deadline %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHealthz: liveness answers without touching the simulation path.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 1})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: status %d body %q", rec.Code, rec.Body)
	}
}

// TestRetryAfterSeconds: the header never advertises a zero wait.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %s, want %s", tc.d, got, tc.want)
		}
	}
}
