package server

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key earns rate
// tokens per second up to burst, and one request spends one token. A
// request arriving with an empty bucket is refused with the wait until
// the next token — the Retry-After the handler returns.
//
// The map is bounded by eviction: buckets idle long enough to have
// refilled completely hold no state worth keeping (a fresh bucket starts
// full), so a periodic sweep during Allow drops them. That keeps one
// scan-happy load balancer from growing the map without bound.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter, or nil (meaning "unlimited") when
// rate is zero or negative. All callers treat a nil limiter as allow-all.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from key's bucket. When the bucket is empty it
// reports ok=false and the wait until one token will be available.
// Nil-safe: a nil limiter always allows.
func (l *rateLimiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweep(now)
	b, found := l.buckets[key]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// sweep drops buckets that have been idle long enough to be full again.
// Runs at most once per refill interval, so its cost amortizes to O(1).
func (l *rateLimiter) sweep(now time.Time) {
	refill := time.Duration(l.burst / l.rate * float64(time.Second))
	if now.Sub(l.lastSweep) < refill {
		return
	}
	l.lastSweep = now
	for k, b := range l.buckets {
		if now.Sub(b.last) >= refill {
			delete(l.buckets, k)
		}
	}
}
