// Package simcache provides the building blocks of the content-addressed
// simulation cache: a deterministic canonical encoder that folds a
// configuration into a 256-bit key, an in-process concurrent memo with
// single-flight semantics (concurrent requests for one key run the
// computation exactly once), and a versioned on-disk store that persists
// computed payloads across process invocations.
//
// The package is payload-agnostic: core encodes (Workload, MemoryConfig)
// pairs into keys and stores serialized Results, but nothing here knows
// about simulation. Determinism is the load-bearing property — the same
// logical configuration must always produce the same key, on any host, in
// any process, so canonical encoding never includes pointers, map
// iteration order or other process-dependent state.
package simcache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
)

// Key is a content-addressed cache key: the SHA-256 of the canonical
// encoding of a configuration.
type Key [sha256.Size]byte

// String returns the key in hex, as used for on-disk file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// RingPoint projects the key onto the 64-bit keyspace a consistent-hash
// ring partitions. The leading 8 bytes of a SHA-256 are uniformly
// distributed, so the projection preserves the property sharding needs:
// the same logical configuration lands on the same ring position on any
// host, in any process, and distinct configurations spread evenly.
func (k Key) RingPoint() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Kind tags prefix every encoded value so that adjacent fields of
// different types can never alias (e.g. the bool pair (true, false) and
// the int 1 encode differently).
const (
	tagBool byte = iota + 1
	tagInt
	tagUint
	tagFloat
	tagString
	tagStruct
	tagSlice
	tagArray
	tagPtrNil
	tagPtr
)

// Encoder accumulates a canonical byte encoding and hashes it into a Key.
// The zero value is ready to use; Reset recycles the buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Reset clears the encoder for reuse without releasing the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the number of encoded bytes (diagnostics and tests).
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) tag(t byte) { e.buf = append(e.buf, t) }

func (e *Encoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Bool encodes a boolean.
func (e *Encoder) Bool(b bool) {
	e.tag(tagBool)
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Int encodes a signed integer.
func (e *Encoder) Int(v int64) {
	e.tag(tagInt)
	e.u64(uint64(v))
}

// Uint encodes an unsigned integer.
func (e *Encoder) Uint(v uint64) {
	e.tag(tagUint)
	e.u64(v)
}

// Float encodes a float by its IEEE-754 bit pattern, so every distinct
// value (including -0 vs +0) gets a distinct encoding.
func (e *Encoder) Float(v float64) {
	e.tag(tagFloat)
	e.u64(math.Float64bits(v))
}

// String encodes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.tag(tagString)
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Value canonically encodes an arbitrary configuration value by
// reflection: bools, integers, floats, strings, and any nesting of
// structs, slices, arrays and pointers over them. Struct fields are
// folded in declaration order with their names, so renaming or retyping
// a field changes every key that includes it (a deliberate schema
// invalidation). Funcs, maps, channels and interfaces are not canonical
// and return an error — callers must handle such fields explicitly
// (typically by declaring the configuration uncacheable).
func (e *Encoder) Value(v any) error { return e.value(reflect.ValueOf(v)) }

func (e *Encoder) value(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Bool:
		e.Bool(rv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.Int(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.Uint(rv.Uint())
	case reflect.Float32, reflect.Float64:
		e.Float(rv.Float())
	case reflect.String:
		e.String(rv.String())
	case reflect.Struct:
		t := rv.Type()
		e.tag(tagStruct)
		e.u64(uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			e.String(t.Field(i).Name)
			if err := e.value(rv.Field(i)); err != nil {
				return fmt.Errorf("%s.%s: %w", t.Name(), t.Field(i).Name, err)
			}
		}
	case reflect.Slice:
		e.tag(tagSlice)
		e.u64(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.value(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		e.tag(tagArray)
		e.u64(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.value(rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Pointer:
		if rv.IsNil() {
			e.tag(tagPtrNil)
			return nil
		}
		e.tag(tagPtr)
		return e.value(rv.Elem())
	default:
		return fmt.Errorf("simcache: cannot canonically encode kind %v", rv.Kind())
	}
	return nil
}

// Sum hashes the accumulated encoding into a Key.
func (e *Encoder) Sum() Key { return sha256.Sum256(e.buf) }

// Memo is a concurrent in-process cache with single-flight semantics:
// the first Do for a key runs the computation, concurrent Dos for the
// same key block until it finishes and share the value, and later Dos
// return the cached value immediately. Failed computations are not
// cached — the entry is removed so a later Do retries.
type Memo[V any] struct {
	mu sync.Mutex
	m  map[Key]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error

	// refs counts the callers still interested in the in-flight
	// computation (guarded by Memo.mu); cancel aborts the computation's
	// context when the last one abandons it. Both are meaningless once
	// done is closed.
	refs   int
	cancel context.CancelFunc
}

// NewMemo returns an empty memo.
func NewMemo[V any]() *Memo[V] { return &Memo[V]{m: make(map[Key]*memoEntry[V])} }

// Do returns the cached value for key, computing it with fn on the first
// call. hit reports whether this call avoided running fn (either the
// value was already cached or another goroutine's in-flight computation
// was joined); joined distinguishes the second case — this call blocked
// on a computation that was still in flight (single-flight dedup), rather
// than finding a finished entry.
func (c *Memo[V]) Do(key Key, fn func() (V, error)) (val V, err error, hit, joined bool) {
	return c.DoContext(context.Background(), key, func(context.Context) (V, error) { return fn() })
}

// DoContext is Do with cancellation. The computation runs on a context
// that outlives any single caller: it is canceled only when every caller
// interested in the key — the one that started it and every joiner — has
// had its own ctx canceled, so one impatient client can never abort a
// result other clients are still waiting for. A caller whose ctx fires
// while the computation is in flight detaches and returns ctx.Err() with
// hit=false (its interest is withdrawn; joined still reports whether it
// had been waiting on an in-flight computation).
func (c *Memo[V]) DoContext(ctx context.Context, key Key, fn func(context.Context) (V, error)) (val V, err error, hit, joined bool) {
	if err := ctx.Err(); err != nil {
		var zero V
		return zero, err, false, false
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		select {
		case <-e.done:
			// Finished entry: a plain memory hit.
			c.mu.Unlock()
			return e.val, e.err, true, false
		default:
		}
		e.refs++
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.val, e.err, true, true
		case <-ctx.Done():
			c.release(e)
			var zero V
			return zero, ctx.Err(), false, true
		}
	}
	// Computation context: detached from the initiating caller's
	// cancellation (joiners may outlive it) but carrying its values;
	// canceled when the interested-caller count drops to zero.
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	e := &memoEntry[V]{done: make(chan struct{}), refs: 1, cancel: cancel}
	c.m[key] = e
	c.mu.Unlock()
	// The initiating caller runs fn inline, so its own ctx is watched on
	// the side: if it fires mid-computation its interest is withdrawn
	// like a joiner's (fn sees cctx canceled once everyone is gone).
	stop := context.AfterFunc(ctx, func() { c.release(e) })

	e.val, e.err = fn(cctx)
	if !stop() {
		// ctx already fired and release ran; re-take the reference so the
		// bookkeeping below is uniform. The computation still completed,
		// so its result is published either way.
		c.mu.Lock()
		e.refs++
		c.mu.Unlock()
	}
	if e.err != nil {
		// Don't cache failures: remove the entry (waiters already joined
		// on e see the error; later callers retry).
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.done)
	cancel()
	return e.val, e.err, false, false
}

// release withdraws one caller's interest in an in-flight entry,
// canceling the computation when nobody is left.
func (c *Memo[V]) release(e *memoEntry[V]) {
	c.mu.Lock()
	e.refs--
	last := e.refs == 0
	c.mu.Unlock()
	if last {
		e.cancel()
	}
}

// Inflight returns the number of callers currently interested in an
// in-flight computation of key: 0 when the key is absent or already
// finished. Diagnostics and tests (it pins the single-flight property:
// N concurrent callers ⇒ Inflight reaches N while exactly one computes).
func (c *Memo[V]) Inflight(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return 0
	}
	select {
	case <-e.done:
		return 0
	default:
		return e.refs
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *Memo[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Disk is a versioned on-disk payload store: one file per key under
// <root>/<version>/, written atomically (temp file + rename) so a
// crashed writer never leaves a truncated entry behind. Bumping the
// version string points the store at a fresh directory, invalidating
// every entry written under the old schema without touching it.
type Disk struct {
	dir string
}

// NewDisk opens (creating if needed) the store rooted at root for the
// given schema version.
func NewDisk(root, version string) (*Disk, error) {
	if root == "" {
		return nil, fmt.Errorf("simcache: empty cache directory")
	}
	if version == "" {
		return nil, fmt.Errorf("simcache: empty schema version")
	}
	dir := filepath.Join(root, version)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the versioned directory entries live in.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(key Key) string {
	return filepath.Join(d.dir, key.String()+".json")
}

// Get returns the payload stored for key, or ok=false when absent (or
// unreadable — a corrupt entry reads as a miss and is overwritten by the
// next Put).
func (d *Disk) Get(key Key) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores the payload for key atomically.
func (d *Disk) Put(key Key, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: %w", err)
	}
	return nil
}

// Len counts the stored entries (diagnostics and tests).
func (d *Disk) Len() (int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
