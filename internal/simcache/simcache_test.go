package simcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEncoderDeterminism(t *testing.T) {
	type inner struct {
		A int
		B string
	}
	type cfg struct {
		N     int
		F     float64
		S     string
		On    bool
		Sub   inner
		List  []int64
		Arr   [2]float64
		Inner *inner
	}
	v := cfg{N: 4, F: 0.2, S: "1080p30", On: true, Sub: inner{A: 1, B: "x"},
		List: []int64{16, 32}, Arr: [2]float64{1.5, -0}, Inner: &inner{A: 7}}

	key := func(v cfg) Key {
		e := NewEncoder()
		if err := e.Value(v); err != nil {
			t.Fatal(err)
		}
		return e.Sum()
	}
	if key(v) != key(v) {
		t.Fatal("same value produced different keys")
	}

	// Every field perturbation must change the key.
	perturbed := []cfg{}
	for i := 0; i < 9; i++ {
		p := v
		switch i {
		case 0:
			p.N = 5
		case 1:
			p.F = 0.25
		case 2:
			p.S = "1080p60"
		case 3:
			p.On = false
		case 4:
			p.Sub.A = 2
		case 5:
			p.List = []int64{16, 48}
		case 6:
			p.Arr[1] = 3
		case 7:
			p.Inner = nil
		case 8:
			p.Inner = &inner{A: 8}
		}
		perturbed = append(perturbed, p)
	}
	seen := map[Key]int{key(v): -1}
	for i, p := range perturbed {
		k := key(p)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %d collides with %d", i, prev)
		}
		seen[k] = i
	}
}

func TestEncoderTypeTagsPreventAliasing(t *testing.T) {
	a, b := NewEncoder(), NewEncoder()
	a.Bool(true)
	a.Bool(false)
	b.Int(1)
	if a.Sum() == b.Sum() {
		t.Error("(true,false) aliases int 1")
	}
	a.Reset()
	b.Reset()
	a.String("ab")
	a.String("")
	b.String("a")
	b.String("b")
	if a.Sum() == b.Sum() {
		t.Error(`("ab","") aliases ("a","b")`)
	}
	a.Reset()
	b.Reset()
	a.Int(1)
	b.Uint(1)
	if a.Sum() == b.Sum() {
		t.Error("int 1 aliases uint 1")
	}
}

func TestEncoderRejectsNonCanonicalKinds(t *testing.T) {
	e := NewEncoder()
	if err := e.Value(func() {}); err == nil {
		t.Error("func encoded without error")
	}
	if err := e.Value(map[string]int{"a": 1}); err == nil {
		t.Error("map encoded without error")
	}
	type hasFunc struct{ F func() }
	if err := e.Value(hasFunc{}); err == nil {
		t.Error("struct with func field encoded without error")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int]()
	var computed atomic.Int64
	key := Key{1}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _, _ := m.Do(key, func() (int, error) {
				computed.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	_, _, hit, joined := m.Do(key, func() (int, error) { t.Error("recomputed"); return 0, nil })
	if !hit {
		t.Error("second Do was not a hit")
	}
	if joined {
		t.Error("finished entry reported as joined in-flight")
	}
}

// TestMemoJoinedReporting pins the joined flag: a Do that blocks on an
// in-flight computation reports joined=true, a Do against a finished
// entry reports joined=false.
func TestMemoJoinedReporting(t *testing.T) {
	m := NewMemo[int]()
	key := Key{9}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, _, _, joined := m.Do(key, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- joined
	}()
	<-started
	joinedCh := make(chan bool, 1)
	go func() {
		_, _, hit, joined := m.Do(key, func() (int, error) { return 0, nil })
		joinedCh <- hit && joined
	}()
	// The second Do is now parked on the in-flight entry (or about to be);
	// give it a moment, then release the computation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if computedJoined := <-done; computedJoined {
		t.Error("computing caller reported joined")
	}
	if !<-joinedCh {
		t.Error("waiting caller did not report hit+joined")
	}
}

func TestMemoDoesNotCacheErrors(t *testing.T) {
	m := NewMemo[int]()
	key := Key{2}
	boom := errors.New("boom")
	if _, err, _, _ := m.Do(key, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed computation left %d entries", m.Len())
	}
	v, err, hit, _ := m.Do(key, func() (int, error) { return 7, nil })
	if err != nil || v != 7 || hit {
		t.Errorf("retry = %d, %v, hit=%v", v, err, hit)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := Key{3}
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"x": 1}`)
	if err := d.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if n, err := d.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestDiskVersionInvalidation(t *testing.T) {
	root := t.TempDir()
	v1, err := NewDisk(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := Key{4}
	if err := v1.Put(key, []byte("old-schema")); err != nil {
		t.Fatal(err)
	}
	v2, err := NewDisk(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(key); ok {
		t.Error("v2 store served a v1 entry")
	}
	// The old entries are left untouched for a rollback.
	if got, ok := v1.Get(key); !ok || string(got) != "old-schema" {
		t.Error("v1 entry disturbed by v2 store")
	}
}

func TestDiskPutLeavesNoTempFiles(t *testing.T) {
	d, err := NewDisk(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(Key{byte(i)}, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("stray file %s", e.Name())
		}
	}
}

// waitInflight polls until the in-flight interest count for key reaches
// want, failing the test after a generous deadline.
func waitInflight[V any](t *testing.T, m *Memo[V], key Key, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Inflight(key) != want {
		if time.Now().After(deadline) {
			t.Fatalf("Inflight(%v) = %d, want %d", key, m.Inflight(key), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemoDoContextExactDedup pins the single-flight contract precisely:
// N concurrent DoContext callers for one key reach Inflight == N with the
// computation still running, exactly one computes, and the N-1 others all
// report hit+joined with the identical value.
func TestMemoDoContextExactDedup(t *testing.T) {
	const n = 8
	m := NewMemo[int]()
	key := Key{3}
	release := make(chan struct{})
	var computed atomic.Int64
	type outcome struct {
		v           int
		err         error
		hit, joined bool
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			v, err, hit, joined := m.DoContext(context.Background(), key, func(context.Context) (int, error) {
				computed.Add(1)
				<-release
				return 99, nil
			})
			results <- outcome{v, err, hit, joined}
		}()
	}
	waitInflight(t, m, key, n)
	close(release)
	var joins int
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil || r.v != 99 {
			t.Errorf("DoContext = %d, %v", r.v, r.err)
		}
		if r.joined {
			if !r.hit {
				t.Error("joined caller did not report hit")
			}
			joins++
		}
	}
	if got := computed.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	if joins != n-1 {
		t.Errorf("%d joined callers, want %d", joins, n-1)
	}
	if m.Inflight(key) != 0 {
		t.Errorf("Inflight after completion = %d, want 0", m.Inflight(key))
	}
}

// TestMemoDoContextJoinerCancel: a joiner whose ctx fires detaches with
// ctx.Err() while the computation — still wanted by its initiator —
// completes unaborted and is cached.
func TestMemoDoContextJoinerCancel(t *testing.T) {
	m := NewMemo[int]()
	key := Key{4}
	release := make(chan struct{})
	var sawCancel atomic.Bool
	initiator := make(chan error, 1)
	go func() {
		_, err, _, _ := m.DoContext(context.Background(), key, func(cctx context.Context) (int, error) {
			<-release
			sawCancel.Store(cctx.Err() != nil)
			return 5, nil
		})
		initiator <- err
	}()
	waitInflight(t, m, key, 1)
	ctx, cancel := context.WithCancel(context.Background())
	joinErr := make(chan error, 1)
	go func() {
		_, err, _, joined := m.DoContext(ctx, key, func(context.Context) (int, error) { return 0, nil })
		if !joined {
			t.Error("canceled waiter did not report joined")
		}
		joinErr <- err
	}()
	waitInflight(t, m, key, 2)
	cancel()
	if err := <-joinErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled joiner err = %v, want context.Canceled", err)
	}
	waitInflight(t, m, key, 1)
	close(release)
	if err := <-initiator; err != nil {
		t.Fatalf("initiator err = %v", err)
	}
	if sawCancel.Load() {
		t.Error("computation context was canceled while the initiator still wanted it")
	}
	if v, err, hit, _ := m.Do(key, func() (int, error) { return 0, nil }); err != nil || v != 5 || !hit {
		t.Errorf("after join-cancel: Do = %d, %v, hit=%v", v, err, hit)
	}
}

// TestMemoDoContextAbandonedComputationIsCanceled: when every interested
// caller goes away, the computation's context fires so it can stop
// burning CPU.
func TestMemoDoContextAbandonedComputationIsCanceled(t *testing.T) {
	m := NewMemo[int]()
	key := Key{5}
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	aborted := make(chan error, 1)
	go func() {
		_, err, _, _ := m.DoContext(ctx, key, func(cctx context.Context) (int, error) {
			close(entered)
			<-cctx.Done()
			return 0, cctx.Err()
		})
		aborted <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-aborted:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned computation err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning the only caller did not cancel the computation")
	}
	// The failed computation must not be cached: a later caller retries.
	if v, err, hit, _ := m.Do(key, func() (int, error) { return 8, nil }); err != nil || v != 8 || hit {
		t.Errorf("retry after abandonment = %d, %v, hit=%v", v, err, hit)
	}
}

// TestMemoDoContextPreCanceled: a ctx that is already done never runs or
// joins anything.
func TestMemoDoContextPreCanceled(t *testing.T) {
	m := NewMemo[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, hit, joined := m.DoContext(ctx, Key{6}, func(context.Context) (int, error) {
		t.Error("computation ran under a pre-canceled ctx")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || hit || joined {
		t.Errorf("pre-canceled DoContext = err %v, hit=%v, joined=%v", err, hit, joined)
	}
	if m.Len() != 0 {
		t.Errorf("pre-canceled DoContext left %d entries", m.Len())
	}
}
