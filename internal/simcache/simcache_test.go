package simcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEncoderDeterminism(t *testing.T) {
	type inner struct {
		A int
		B string
	}
	type cfg struct {
		N     int
		F     float64
		S     string
		On    bool
		Sub   inner
		List  []int64
		Arr   [2]float64
		Inner *inner
	}
	v := cfg{N: 4, F: 0.2, S: "1080p30", On: true, Sub: inner{A: 1, B: "x"},
		List: []int64{16, 32}, Arr: [2]float64{1.5, -0}, Inner: &inner{A: 7}}

	key := func(v cfg) Key {
		e := NewEncoder()
		if err := e.Value(v); err != nil {
			t.Fatal(err)
		}
		return e.Sum()
	}
	if key(v) != key(v) {
		t.Fatal("same value produced different keys")
	}

	// Every field perturbation must change the key.
	perturbed := []cfg{}
	for i := 0; i < 9; i++ {
		p := v
		switch i {
		case 0:
			p.N = 5
		case 1:
			p.F = 0.25
		case 2:
			p.S = "1080p60"
		case 3:
			p.On = false
		case 4:
			p.Sub.A = 2
		case 5:
			p.List = []int64{16, 48}
		case 6:
			p.Arr[1] = 3
		case 7:
			p.Inner = nil
		case 8:
			p.Inner = &inner{A: 8}
		}
		perturbed = append(perturbed, p)
	}
	seen := map[Key]int{key(v): -1}
	for i, p := range perturbed {
		k := key(p)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %d collides with %d", i, prev)
		}
		seen[k] = i
	}
}

func TestEncoderTypeTagsPreventAliasing(t *testing.T) {
	a, b := NewEncoder(), NewEncoder()
	a.Bool(true)
	a.Bool(false)
	b.Int(1)
	if a.Sum() == b.Sum() {
		t.Error("(true,false) aliases int 1")
	}
	a.Reset()
	b.Reset()
	a.String("ab")
	a.String("")
	b.String("a")
	b.String("b")
	if a.Sum() == b.Sum() {
		t.Error(`("ab","") aliases ("a","b")`)
	}
	a.Reset()
	b.Reset()
	a.Int(1)
	b.Uint(1)
	if a.Sum() == b.Sum() {
		t.Error("int 1 aliases uint 1")
	}
}

func TestEncoderRejectsNonCanonicalKinds(t *testing.T) {
	e := NewEncoder()
	if err := e.Value(func() {}); err == nil {
		t.Error("func encoded without error")
	}
	if err := e.Value(map[string]int{"a": 1}); err == nil {
		t.Error("map encoded without error")
	}
	type hasFunc struct{ F func() }
	if err := e.Value(hasFunc{}); err == nil {
		t.Error("struct with func field encoded without error")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int]()
	var computed atomic.Int64
	key := Key{1}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, _, _ := m.Do(key, func() (int, error) {
				computed.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	_, _, hit, joined := m.Do(key, func() (int, error) { t.Error("recomputed"); return 0, nil })
	if !hit {
		t.Error("second Do was not a hit")
	}
	if joined {
		t.Error("finished entry reported as joined in-flight")
	}
}

// TestMemoJoinedReporting pins the joined flag: a Do that blocks on an
// in-flight computation reports joined=true, a Do against a finished
// entry reports joined=false.
func TestMemoJoinedReporting(t *testing.T) {
	m := NewMemo[int]()
	key := Key{9}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, _, _, joined := m.Do(key, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- joined
	}()
	<-started
	joinedCh := make(chan bool, 1)
	go func() {
		_, _, hit, joined := m.Do(key, func() (int, error) { return 0, nil })
		joinedCh <- hit && joined
	}()
	// The second Do is now parked on the in-flight entry (or about to be);
	// give it a moment, then release the computation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if computedJoined := <-done; computedJoined {
		t.Error("computing caller reported joined")
	}
	if !<-joinedCh {
		t.Error("waiting caller did not report hit+joined")
	}
}

func TestMemoDoesNotCacheErrors(t *testing.T) {
	m := NewMemo[int]()
	key := Key{2}
	boom := errors.New("boom")
	if _, err, _, _ := m.Do(key, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed computation left %d entries", m.Len())
	}
	v, err, hit, _ := m.Do(key, func() (int, error) { return 7, nil })
	if err != nil || v != 7 || hit {
		t.Errorf("retry = %d, %v, hit=%v", v, err, hit)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := Key{3}
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	payload := []byte(`{"x": 1}`)
	if err := d.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if n, err := d.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestDiskVersionInvalidation(t *testing.T) {
	root := t.TempDir()
	v1, err := NewDisk(root, "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := Key{4}
	if err := v1.Put(key, []byte("old-schema")); err != nil {
		t.Fatal(err)
	}
	v2, err := NewDisk(root, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(key); ok {
		t.Error("v2 store served a v1 entry")
	}
	// The old entries are left untouched for a rollback.
	if got, ok := v1.Get(key); !ok || string(got) != "old-schema" {
		t.Error("v1 entry disturbed by v2 store")
	}
}

func TestDiskPutLeavesNoTempFiles(t *testing.T) {
	d, err := NewDisk(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(Key{byte(i)}, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("stray file %s", e.Name())
		}
	}
}
