// Package interconnect models the two interconnects of the paper's
// architecture (Fig. 2): the on-chip interconnect between the memory masters
// and the memory controllers, and the per-channel DRAM interconnect between
// a controller and its bank cluster (the 3D die-stack connection).
//
// Both are full-bandwidth pipelines: they add latency, never throughput
// limits, matching the paper's transaction-level abstraction.
package interconnect

import "fmt"

// Link is a fixed-latency, full-width pipe measured in DRAM clock cycles.
type Link struct {
	// RequestCycles delays a request from master to memory.
	RequestCycles int64
	// ResponseCycles delays read data back to the master.
	ResponseCycles int64
}

// Validate rejects negative latencies.
func (l Link) Validate() error {
	if l.RequestCycles < 0 || l.ResponseCycles < 0 {
		return fmt.Errorf("interconnect: negative latency %+v", l)
	}
	return nil
}

// Deliver returns when a request issued at t reaches the far side.
func (l Link) Deliver(t int64) int64 { return t + l.RequestCycles }

// Complete returns when a response produced at t reaches the master.
func (l Link) Complete(t int64) int64 { return t + l.ResponseCycles }

// RoundTrip returns the total latency contribution of the link.
func (l Link) RoundTrip() int64 { return l.RequestCycles + l.ResponseCycles }

// DefaultDRAMLink returns the die-stacked DRAM interconnect: one cycle each
// way, reflecting the very short vertical 3D connection the paper assumes.
func DefaultDRAMLink() Link { return Link{RequestCycles: 1, ResponseCycles: 1} }

// DefaultOnChipLink returns the on-chip interconnect between the load model
// and the memory controllers.
func DefaultOnChipLink() Link { return Link{RequestCycles: 2, ResponseCycles: 2} }
