package interconnect

import "testing"

func TestLinkDelays(t *testing.T) {
	l := Link{RequestCycles: 3, ResponseCycles: 2}
	if got := l.Deliver(10); got != 13 {
		t.Errorf("Deliver(10) = %d, want 13", got)
	}
	if got := l.Complete(20); got != 22 {
		t.Errorf("Complete(20) = %d, want 22", got)
	}
	if got := l.RoundTrip(); got != 5 {
		t.Errorf("RoundTrip() = %d, want 5", got)
	}
}

func TestZeroLinkIsTransparent(t *testing.T) {
	var l Link
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Deliver(7) != 7 || l.Complete(7) != 7 || l.RoundTrip() != 0 {
		t.Error("zero link must add no latency")
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	if err := (Link{RequestCycles: -1}).Validate(); err == nil {
		t.Error("expected error for negative request latency")
	}
	if err := (Link{ResponseCycles: -1}).Validate(); err == nil {
		t.Error("expected error for negative response latency")
	}
}

func TestDefaults(t *testing.T) {
	if err := DefaultDRAMLink().Validate(); err != nil {
		t.Error(err)
	}
	if err := DefaultOnChipLink().Validate(); err != nil {
		t.Error(err)
	}
	// The 3D die-stack link is shorter than the on-chip interconnect.
	if DefaultDRAMLink().RoundTrip() >= DefaultOnChipLink().RoundTrip() {
		t.Error("DRAM link should be shorter than the on-chip link")
	}
}
