package fault

import (
	"strings"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name     string
		plan     Plan
		channels int
		wantErr  string
	}{
		{"zero plan", Plan{}, 4, ""},
		{"good dropout", Plan{DropChannel: 1, DropAtCycle: 100}, 4, ""},
		{"dropout channel out of range", Plan{DropChannel: 4, DropAtCycle: 100}, 4, "outside"},
		{"dropout negative channel", Plan{DropChannel: -1, DropAtCycle: 100}, 4, "outside"},
		{"dropout single channel", Plan{DropChannel: 0, DropAtCycle: 100}, 1, "only channel"},
		{"negative drop cycle", Plan{DropAtCycle: -1}, 4, "negative dropout cycle"},
		{"negative derate cycle", Plan{DerateAtCycle: -5}, 4, "negative derate cycle"},
		{"read error rate too high", Plan{ReadErrorRate: 1.5}, 4, "outside [0,1]"},
		{"negative stall rate", Plan{StallRate: -0.1}, 4, "outside [0,1]"},
		{"negative retry limit", Plan{RetryLimit: -1}, 4, "negative retry limit"},
		{"negative stall bound", Plan{StallMaxCycles: -1}, 4, "negative stall bound"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(tc.channels)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if (Plan{Seed: 7}).Enabled() {
		t.Error("seed-only plan reports enabled")
	}
	for _, p := range []Plan{
		{DropAtCycle: 1},
		{DerateAtCycle: 1},
		{ReadErrorRate: 0.01},
		{StallRate: 0.01},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

// Two injectors with the same plan must produce identical decision
// sequences; sibling channels must not mirror each other.
func TestStreamDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, ReadErrorRate: 0.3, StallRate: 0.2}
	a, err := NewInjector(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sameAsSibling int
	const draws = 1000
	for i := 0; i < draws; i++ {
		ra, _ := a.Channel(0).ReadOutcome()
		rb, _ := b.Channel(0).ReadOutcome()
		if ra != rb {
			t.Fatalf("draw %d: channel 0 diverged (%d vs %d)", i, ra, rb)
		}
		rs, _ := a.Channel(1).ReadOutcome()
		if rs == ra {
			sameAsSibling++
		}
		if sa, sb := a.Channel(0).Stall(), b.Channel(0).Stall(); sa != sb {
			t.Fatalf("draw %d: stalls diverged (%d vs %d)", i, sa, sb)
		}
	}
	if sameAsSibling == draws {
		t.Error("channel 1's stream mirrors channel 0's")
	}
	if a.Channel(0).Counters() != b.Channel(0).Counters() {
		t.Errorf("counters diverged: %+v vs %+v", a.Channel(0).Counters(), b.Channel(0).Counters())
	}
}

func TestResetReplaysStream(t *testing.T) {
	plan := Plan{Seed: 9, ReadErrorRate: 0.25, StallRate: 0.25}
	in, err := NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	ci := in.Channel(0)
	type draw struct {
		retries int
		stall   int64
	}
	var first []draw
	for i := 0; i < 200; i++ {
		r, _ := ci.ReadOutcome()
		first = append(first, draw{r, ci.Stall()})
	}
	cnt := in.Counters()
	in.Reset()
	if got := in.Counters(); got != (Counters{}) {
		t.Fatalf("counters after reset: %+v", got)
	}
	for i, want := range first {
		r, _ := ci.ReadOutcome()
		s := ci.Stall()
		if r != want.retries || s != want.stall {
			t.Fatalf("replay draw %d: (%d,%d), want (%d,%d)", i, r, s, want.retries, want.stall)
		}
	}
	if got := in.Counters(); got != cnt {
		t.Errorf("replayed counters %+v, want %+v", got, cnt)
	}
}

func TestReadOutcomeCounters(t *testing.T) {
	// Rate 1 forces an error on every draw, so every read exhausts its
	// retry budget.
	in, err := NewInjector(Plan{ReadErrorRate: 1, RetryLimit: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ci := in.Channel(0)
	retries, exhausted := ci.ReadOutcome()
	if retries != 2 || !exhausted {
		t.Errorf("ReadOutcome = (%d,%v), want (2,true)", retries, exhausted)
	}
	c := ci.Counters()
	if c.ReadErrors != 1 || c.Retries != 2 || c.RetriesExhausted != 1 {
		t.Errorf("counters %+v", c)
	}
	// Rate 0 must not advance the stream or count anything.
	in2, _ := NewInjector(Plan{StallRate: 1, StallMaxCycles: 4}, 1)
	ci2 := in2.Channel(0)
	if r, _ := ci2.ReadOutcome(); r != 0 {
		t.Errorf("clean plan produced %d retries", r)
	}
	s := ci2.Stall()
	if s < 1 || s > 4 {
		t.Errorf("stall %d outside [1,4]", s)
	}
	if c := ci2.Counters(); c.Stalls != 1 || c.StallCycles != s {
		t.Errorf("stall counters %+v", c)
	}
}

func TestRetryBackoffDoubles(t *testing.T) {
	in, _ := NewInjector(Plan{ReadErrorRate: 0.5, RetryBackoff: 8}, 1)
	ci := in.Channel(0)
	for i, want := range []int64{8, 16, 32, 64} {
		if got := ci.RetryBackoff(i); got != want {
			t.Errorf("backoff(%d) = %d, want %d", i, got, want)
		}
	}
	if got := ci.RetryBackoff(40); got > 1<<21 {
		t.Errorf("backoff(40) = %d, want capped", got)
	}
}

func TestQoSReport(t *testing.T) {
	q := NewQoS(8)
	if q.FailedChannel != -1 || q.FirstMissFrame != -1 || q.RecoveredFrame != -1 {
		t.Fatalf("sentinels not initialized: %+v", q)
	}
	if !q.Recovered() {
		t.Error("pristine run reports unrecovered")
	}
	if q.TimeToRecoverFrames() != -1 {
		t.Error("pristine run reports a recovery time")
	}
	q.FailedChannel = 2
	q.DropClock = 12345
	q.DeadlineMisses = 1
	q.FirstMissFrame = 3
	q.RecoveredFrame = 5
	q.Steps = []Step{{Frame: 3, Action: "half frame rate (drop alternate frames)"}}
	r := q.Report()
	for _, want := range []string{
		"channel 2 at dispatch cycle 12345",
		"1 deadline misses",
		"after frame 3: half frame rate",
		"frame 5 (2 frame(s) after first miss)",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	if q.TimeToRecoverFrames() != 2 {
		t.Errorf("TimeToRecoverFrames = %d, want 2", q.TimeToRecoverFrames())
	}
	// The report must be deterministic text.
	if q.Report() != r {
		t.Error("report not stable across calls")
	}
}
