package fault

import (
	"fmt"
	"strings"
)

// Step records one degradation action the engine applied after a deadline
// miss: the frame index it reacted to and the ladder action taken.
type Step struct {
	Frame  int
	Action string
}

// QoS is the quality-of-service report of a faulty (or fault-free) run:
// how the recording behaved frame by frame while the fault plan played out
// and the degradation engine reacted. Every field derives from the
// deterministic simulation, so two runs with the same seed — serial or
// parallel — render byte-identical reports.
type QoS struct {
	// Frames is the number of frame slots evaluated; DroppedFrames the
	// slots intentionally skipped by frame-rate degradation; LateFrames
	// the frames finishing inside their slot but deep into the processing
	// margin; DeadlineMisses the frames finishing after their slot.
	Frames         int
	DroppedFrames  int
	LateFrames     int
	DeadlineMisses int

	// FailedChannel is the dropped channel index (-1 = none) and
	// DropClock the dispatch-clock cycle the dropout fired at.
	FailedChannel int
	DropClock     int64

	// Fault activity accumulated over all channels.
	Counters Counters

	// Steps are the degradation-ladder actions, in application order.
	Steps []Step
	// FirstMissFrame is the first frame that missed its deadline and
	// RecoveredFrame the first later frame that met it again (-1 = n/a).
	FirstMissFrame int
	RecoveredFrame int
}

// NewQoS returns an empty report with the sentinel fields initialized.
func NewQoS(frames int) QoS {
	return QoS{Frames: frames, FailedChannel: -1, FirstMissFrame: -1, RecoveredFrame: -1}
}

// TimeToRecoverFrames is the frame distance from the first deadline miss to
// the first subsequent on-time frame; -1 when the run never missed, or
// missed and never recovered.
func (q QoS) TimeToRecoverFrames() int {
	if q.FirstMissFrame < 0 || q.RecoveredFrame < 0 {
		return -1
	}
	return q.RecoveredFrame - q.FirstMissFrame
}

// Recovered reports whether the run ended in a state meeting deadlines
// again (or never lost them).
func (q QoS) Recovered() bool {
	return q.FirstMissFrame < 0 || q.RecoveredFrame >= 0
}

// Report renders the deterministic multi-line QoS summary the CLIs print
// and the CI determinism gate diffs byte-for-byte.
func (q QoS) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QoS report\n")
	fmt.Fprintf(&b, "  frames:            %d (%d dropped, %d late, %d deadline misses)\n",
		q.Frames, q.DroppedFrames, q.LateFrames, q.DeadlineMisses)
	if q.FailedChannel >= 0 {
		fmt.Fprintf(&b, "  channel failure:   channel %d at dispatch cycle %d\n", q.FailedChannel, q.DropClock)
	} else {
		fmt.Fprintf(&b, "  channel failure:   none\n")
	}
	fmt.Fprintf(&b, "  thermal derates:   %d\n", q.Counters.Derates)
	fmt.Fprintf(&b, "  read errors:       %d (retries %d, exhausted %d)\n",
		q.Counters.ReadErrors, q.Counters.Retries, q.Counters.RetriesExhausted)
	fmt.Fprintf(&b, "  controller stalls: %d (+%d cycles)\n", q.Counters.Stalls, q.Counters.StallCycles)
	if len(q.Steps) == 0 {
		fmt.Fprintf(&b, "  degradation:       none\n")
	} else {
		for i, s := range q.Steps {
			label := "  degradation:      "
			if i > 0 {
				label = "                    "
			}
			fmt.Fprintf(&b, "%s after frame %d: %s\n", label, s.Frame, s.Action)
		}
	}
	switch {
	case q.FirstMissFrame < 0:
		fmt.Fprintf(&b, "  recovery:          never degraded\n")
	case q.RecoveredFrame >= 0:
		fmt.Fprintf(&b, "  recovery:          frame %d (%d frame(s) after first miss)\n",
			q.RecoveredFrame, q.TimeToRecoverFrames())
	default:
		fmt.Fprintf(&b, "  recovery:          not recovered within the run\n")
	}
	return b.String()
}
