// Package fault injects deterministic, seeded hardware faults into the
// multi-channel memory simulation: channel dropout at a planned cycle,
// thermal clock derating that multiplies the refresh rate, transient read
// errors that trigger ECC read-retry traffic, and controller stall jitter.
//
// The design mirrors the probe layer's cost model: every hook in the
// controller, channel and subsystem hot paths is guarded by a nil check,
// so a simulation without a fault plan pays only an untaken branch.
//
// Determinism contract: all pseudo-random decisions are drawn from
// per-channel splitmix64 streams derived from (Plan.Seed, channel index),
// and each channel's decisions depend only on that channel's request order.
// The parallel simulation preserves per-channel request order, so a seeded
// faulty run is bit-identical serial vs parallel — the same guarantee the
// fault-free simulator makes.
package fault

import "fmt"

// Default knob values (applied when the Plan leaves them zero).
const (
	// DefaultRefreshDivisor divides the refresh interval after a thermal
	// derate: the DDR "double refresh rate above 85 C" rule.
	DefaultRefreshDivisor = 2
	// DefaultRetryLimit bounds the ECC read-retries per failed burst.
	DefaultRetryLimit = 3
	// DefaultRetryBackoff is the backoff before the first retry, in DRAM
	// cycles; it doubles on every further attempt.
	DefaultRetryBackoff = 8
	// DefaultStallMaxCycles bounds one controller stall.
	DefaultStallMaxCycles = 32
)

// Plan is a deterministic, seeded fault plan for one run. The zero value
// injects nothing. All cycle values are DRAM clock cycles in the simulated
// clock domain (when a run samples a fraction of each frame, plan cycles
// are compared against the sampled timeline).
type Plan struct {
	// Seed selects the pseudo-random decision streams. Two runs with the
	// same plan produce bit-identical fault sequences and QoS reports.
	Seed uint64

	// DropChannel fails permanently once the subsystem's dispatch clock
	// reaches DropAtCycle (> 0 enables the dropout): the channel stops
	// accepting traffic and subsequent accesses are re-interleaved over
	// the M-1 surviving channels (Table II remap).
	DropChannel int
	DropAtCycle int64

	// DerateAtCycle > 0 models a thermal event at that cycle: every
	// channel's refresh interval is divided by RefreshDivisor (default 2,
	// the "hot device" refresh-rate doubling), stealing bandwidth.
	DerateAtCycle  int64
	RefreshDivisor int

	// ReadErrorRate is the per-read-burst probability of a transient bit
	// error the ECC detects; each error triggers read-retry traffic with
	// bounded exponential backoff (RetryLimit attempts starting at
	// RetryBackoff cycles).
	ReadErrorRate float64
	RetryLimit    int
	RetryBackoff  int64

	// StallRate is the per-request probability of a controller stall of
	// 1..StallMaxCycles extra cycles before the request is attended
	// (arbitration jitter, ZQ calibration, firmware hiccups).
	StallRate      float64
	StallMaxCycles int64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.DropAtCycle > 0 || p.DerateAtCycle > 0 || p.ReadErrorRate > 0 || p.StallRate > 0
}

// refreshDivisor returns the effective thermal refresh divisor.
func (p Plan) refreshDivisor() int64 {
	if p.RefreshDivisor <= 0 {
		return DefaultRefreshDivisor
	}
	return int64(p.RefreshDivisor)
}

// retryLimit returns the effective ECC retry bound.
func (p Plan) retryLimit() int {
	if p.RetryLimit <= 0 {
		return DefaultRetryLimit
	}
	return p.RetryLimit
}

// retryBackoff returns the effective base backoff in cycles.
func (p Plan) retryBackoff() int64 {
	if p.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return p.RetryBackoff
}

// stallMax returns the effective stall bound in cycles.
func (p Plan) stallMax() int64 {
	if p.StallMaxCycles <= 0 {
		return DefaultStallMaxCycles
	}
	return p.StallMaxCycles
}

// Validate checks the plan against the channel count it will run on.
func (p Plan) Validate(channels int) error {
	if p.DropAtCycle < 0 {
		return fmt.Errorf("fault: negative dropout cycle %d", p.DropAtCycle)
	}
	if p.DropAtCycle > 0 {
		if p.DropChannel < 0 || p.DropChannel >= channels {
			return fmt.Errorf("fault: dropout channel %d outside [0,%d)", p.DropChannel, channels)
		}
		if channels < 2 {
			return fmt.Errorf("fault: cannot drop the only channel (need >= 2 channels to degrade)")
		}
	}
	if p.DerateAtCycle < 0 {
		return fmt.Errorf("fault: negative derate cycle %d", p.DerateAtCycle)
	}
	if p.RefreshDivisor < 0 {
		return fmt.Errorf("fault: negative refresh divisor %d", p.RefreshDivisor)
	}
	if p.ReadErrorRate < 0 || p.ReadErrorRate > 1 {
		return fmt.Errorf("fault: read error rate %v outside [0,1]", p.ReadErrorRate)
	}
	if p.RetryLimit < 0 {
		return fmt.Errorf("fault: negative retry limit %d", p.RetryLimit)
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("fault: negative retry backoff %d", p.RetryBackoff)
	}
	if p.StallRate < 0 || p.StallRate > 1 {
		return fmt.Errorf("fault: stall rate %v outside [0,1]", p.StallRate)
	}
	if p.StallMaxCycles < 0 {
		return fmt.Errorf("fault: negative stall bound %d", p.StallMaxCycles)
	}
	return nil
}

// Counters accumulates the fault activity of one channel (or, summed, of a
// whole run). All counts are exact, not sampled.
type Counters struct {
	// ReadErrors counts transient read errors injected; Retries the ECC
	// re-reads they triggered; RetriesExhausted the bursts whose retry
	// budget ran out (recovered by stronger upstream correction, but
	// counted against QoS).
	ReadErrors       int64
	Retries          int64
	RetriesExhausted int64
	// Stalls counts controller stalls and StallCycles their total cost.
	Stalls      int64
	StallCycles int64
	// Derates counts thermal derate transitions (at most one per channel).
	Derates int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.ReadErrors += o.ReadErrors
	c.Retries += o.Retries
	c.RetriesExhausted += o.RetriesExhausted
	c.Stalls += o.Stalls
	c.StallCycles += o.StallCycles
	c.Derates += o.Derates
}

// Injector instantiates a plan over a channel count: one deterministic
// per-channel decision stream each, plus the shared dropout bookkeeping the
// subsystem consults.
type Injector struct {
	plan  Plan
	chans []*ChannelInjector
}

// NewInjector validates the plan and builds the per-channel injectors.
func NewInjector(plan Plan, channels int) (*Injector, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("fault: injector over %d channels", channels)
	}
	if err := plan.Validate(channels); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, chans: make([]*ChannelInjector, channels)}
	for i := range in.chans {
		in.chans[i] = newChannelInjector(&in.plan, i)
	}
	return in, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Channel returns channel ch's injector.
func (in *Injector) Channel(ch int) *ChannelInjector { return in.chans[ch] }

// Counters sums the per-channel fault counters in channel order.
func (in *Injector) Counters() Counters {
	var c Counters
	for _, ci := range in.chans {
		c.Add(ci.cnt)
	}
	return c
}

// Reset restores every channel's decision stream and counters to their
// initial state, so a reset subsystem replays the identical fault sequence.
func (in *Injector) Reset() {
	for _, ci := range in.chans {
		ci.Reset()
	}
}

// ChannelInjector is one channel's fault decision stream. It is driven only
// from that channel's simulation context (the dispatch loop serially, or
// the channel's own goroutine in parallel runs), so it needs no locking.
type ChannelInjector struct {
	plan  *Plan
	seed  uint64
	state uint64
	cnt   Counters
}

// newChannelInjector derives channel ch's stream from the plan seed.
func newChannelInjector(plan *Plan, ch int) *ChannelInjector {
	// Offset by a fixed odd constant per channel so sibling streams are
	// uncorrelated even for adjacent seeds.
	seed := plan.Seed ^ (uint64(ch+1) * 0x9e3779b97f4a7c15)
	return &ChannelInjector{plan: plan, seed: seed, state: seed}
}

// next advances the splitmix64 stream.
func (ci *ChannelInjector) next() uint64 {
	ci.state += 0x9e3779b97f4a7c15
	z := ci.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance draws one uniform [0,1) variate and compares it to rate. A zero
// rate draws nothing, keeping disabled faults free and the stream stable.
func (ci *ChannelInjector) chance(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(ci.next()>>11)*(1.0/(1<<53)) < rate
}

// ReadOutcome decides one read burst's fate: retries is the number of ECC
// re-reads the channel must issue (0 = clean read), exhausted whether the
// retry budget ran out. Counters are updated as a side effect.
func (ci *ChannelInjector) ReadOutcome() (retries int, exhausted bool) {
	if !ci.chance(ci.plan.ReadErrorRate) {
		return 0, false
	}
	ci.cnt.ReadErrors++
	limit := ci.plan.retryLimit()
	for retries < limit {
		retries++
		ci.cnt.Retries++
		if !ci.chance(ci.plan.ReadErrorRate) {
			return retries, false // retry read back clean
		}
	}
	ci.cnt.RetriesExhausted++
	return retries, true
}

// RetryBackoff returns the backoff before retry attempt (0-based), doubling
// per attempt from the plan's base.
func (ci *ChannelInjector) RetryBackoff(attempt int) int64 {
	b := ci.plan.retryBackoff()
	for i := 0; i < attempt && b < 1<<20; i++ {
		b <<= 1
	}
	return b
}

// Stall decides one request's controller stall, returning the extra cycles
// (0 = none).
func (ci *ChannelInjector) Stall() int64 {
	if !ci.chance(ci.plan.StallRate) {
		return 0
	}
	n := 1 + int64(ci.next()%uint64(ci.plan.stallMax()))
	ci.cnt.Stalls++
	ci.cnt.StallCycles += n
	return n
}

// DerateAtCycle returns the thermal derate trigger cycle (0 = disabled).
func (ci *ChannelInjector) DerateAtCycle() int64 { return ci.plan.DerateAtCycle }

// RefreshDivisor returns the post-derate refresh interval divisor.
func (ci *ChannelInjector) RefreshDivisor() int64 { return ci.plan.refreshDivisor() }

// CountDerate records that this channel's controller applied the derate.
func (ci *ChannelInjector) CountDerate() { ci.cnt.Derates++ }

// Counters returns this channel's accumulated fault activity.
func (ci *ChannelInjector) Counters() Counters { return ci.cnt }

// Reset restores the decision stream and counters to their initial state.
func (ci *ChannelInjector) Reset() {
	ci.state = ci.seed
	ci.cnt = Counters{}
}
