// Package debugserver is the shared -debug-addr HTTP surface of the CLI
// binaries: a small mux serving the run's metrics registry as Prometheus
// text (/metrics) and JSON (/metrics.json), the standard expvar dump
// (/debug/vars), and net/http/pprof (/debug/pprof/). The server binds
// eagerly — so ":0" callers can learn the chosen port and bad addresses
// fail at flag-validation time — and serves in the background until the
// process exits or Shutdown drains it (the long-running daemons shut it
// down gracefully on SIGINT/SIGTERM so in-flight scrapes finish).
package debugserver

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/metrics"
)

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ValidateAddr reports whether addr parses as a host:port bind address
// with a numeric port, without binding it. Used for exit-2 flag
// validation before any simulation work starts.
func ValidateAddr(addr string) error {
	if addr == "" {
		return fmt.Errorf("empty address")
	}
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(port)
	if err != nil {
		return fmt.Errorf("port %q is not numeric", port)
	}
	if n < 0 || n > 65535 {
		return fmt.Errorf("port %d out of range", n)
	}
	return nil
}

// Start binds addr and serves the debug mux in the background. The
// registry may be nil (the metrics endpoints then serve an empty set).
func Start(addr string, reg *metrics.Registry) (*Server, error) {
	if err := ValidateAddr(addr); err != nil {
		return nil, fmt.Errorf("debugserver: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof self-registers on http.DefaultServeMux; mount its
	// handlers explicitly so this private mux works no matter what the
	// default mux holds.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "debug server\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (resolved port for ":0" binds).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately, cutting off in-flight scrapes.
// Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes immediately
// (a mid-drain scrape attempt is refused rather than hung) while requests
// already in flight — including long pprof captures — get until ctx to
// finish. Returns ctx's error when they do not. Nil-safe.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
