package debugserver

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("simcache_hits_total", metrics.Label{Key: "tier", Value: "memory"}).Add(12)
	reg.Gauge("workers_busy").Set(3)

	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `simcache_hits_total{tier="memory"} 12`) ||
		!strings.Contains(body, "workers_busy 3") {
		t.Errorf("/metrics body missing series:\n%s", body)
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"simcache_hits_total"`) {
		t.Errorf("/metrics.json status %d body:\n%s", code, body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars status %d", code)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	code, _ = get(t, base+"/nonexistent")
	if code != http.StatusNotFound {
		t.Errorf("/nonexistent status %d, want 404", code)
	}
}

func TestNilRegistry(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("nil-registry /metrics: status %d body %q", code, body)
	}
}

func TestValidateAddr(t *testing.T) {
	for _, ok := range []string{":0", "127.0.0.1:8080", "localhost:9999", "[::1]:0"} {
		if err := ValidateAddr(ok); err != nil {
			t.Errorf("ValidateAddr(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "no-port", "127.0.0.1:http", ":70000", ":-1", "host:port:extra"} {
		if err := ValidateAddr(bad); err == nil {
			t.Errorf("ValidateAddr(%q) = nil, want error", bad)
		}
	}
}

// TestShutdownDrainsInflightScrape: Shutdown must close the listener to
// new scrapes while an in-flight request (a 1-second pprof CPU capture)
// runs to completion.
func TestShutdownDrainsInflightScrape(t *testing.T) {
	s, err := Start("127.0.0.1:0", metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	type scrape struct {
		code int
		n    int
		err  error
	}
	inflight := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/debug/pprof/profile?seconds=1")
		if err != nil {
			inflight <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		inflight <- scrape{code: resp.StatusCode, n: len(body), err: err}
	}()
	// Wait until the capture is actually in flight, then shut down.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := <-inflight
	if got.err != nil || got.code != http.StatusOK || got.n == 0 {
		t.Errorf("in-flight scrape during Shutdown: code=%d bytes=%d err=%v; want a complete 200", got.code, got.n, got.err)
	}
	// The listener is gone: a fresh scrape is refused, not served or hung.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Error("listener still accepting connections after Shutdown")
	}
}

// TestShutdownNil: like every other accessor, Shutdown is nil-safe.
func TestShutdownNil(t *testing.T) {
	var s *Server
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("nil Shutdown = %v", err)
	}
}
