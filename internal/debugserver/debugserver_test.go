package debugserver

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("simcache_hits_total", metrics.Label{Key: "tier", Value: "memory"}).Add(12)
	reg.Gauge("workers_busy").Set(3)

	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `simcache_hits_total{tier="memory"} 12`) ||
		!strings.Contains(body, "workers_busy 3") {
		t.Errorf("/metrics body missing series:\n%s", body)
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"simcache_hits_total"`) {
		t.Errorf("/metrics.json status %d body:\n%s", code, body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars status %d", code)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	code, _ = get(t, base+"/nonexistent")
	if code != http.StatusNotFound {
		t.Errorf("/nonexistent status %d, want 404", code)
	}
}

func TestNilRegistry(t *testing.T) {
	s, err := Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("nil-registry /metrics: status %d body %q", code, body)
	}
}

func TestValidateAddr(t *testing.T) {
	for _, ok := range []string{":0", "127.0.0.1:8080", "localhost:9999", "[::1]:0"} {
		if err := ValidateAddr(ok); err != nil {
			t.Errorf("ValidateAddr(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "no-port", "127.0.0.1:http", ":70000", ":-1", "host:port:extra"} {
		if err := ValidateAddr(bad); err == nil {
			t.Errorf("ValidateAddr(%q) = nil, want error", bad)
		}
	}
}
