package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	return mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 60, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 64, LineBytes: 64, Ways: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	// Non-power-of-two set count.
	if _, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 3}); err == nil {
		t.Error("expected sets error for 3-way 4KB cache")
	}
}

func TestHitAfterFill(t *testing.T) {
	c := small(t)
	if r := c.Access(0, false); r.Hit || !r.MissFill {
		t.Errorf("cold access = %+v, want miss", r)
	}
	if r := c.Access(32, false); !r.Hit {
		t.Errorf("same-line access = %+v, want hit", r)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 8 sets x 2 ways, 64B lines
	// Three lines mapping to set 0: line addresses 0, 8, 16 (x64 bytes).
	c.Access(0, false)
	c.Access(8*64, false)
	c.Access(0, false)     // touch line 0: line 8*64 becomes LRU
	c.Access(16*64, false) // evicts 8*64
	if r := c.Access(0, false); !r.Hit {
		t.Error("recently used line was evicted")
	}
	if r := c.Access(8*64, false); r.Hit {
		t.Error("LRU line survived eviction")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty line 0 in set 0
	c.Access(8*64, false)
	r := c.Access(16*64, false) // evicts dirty line 0
	if !r.Writeback {
		t.Fatalf("expected writeback, got %+v", r)
	}
	if r.VictimAddr != 0 {
		t.Errorf("victim address = %d, want 0", r.VictimAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Clean eviction does not write back.
	c.Reset()
	c.Access(0, false)
	c.Access(8*64, false)
	if r := c.Access(16*64, false); r.Writeback {
		t.Error("clean eviction wrote back")
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	if n := c.Flush(); n != 2 {
		t.Errorf("flushed %d lines, want 2", n)
	}
	// Second flush is a no-op.
	if n := c.Flush(); n != 0 {
		t.Errorf("second flush wrote %d lines", n)
	}
}

func TestMissBytes(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(8*64, false)
	c.Access(16*64, false) // dirty eviction
	// 3 fills + 1 writeback = 4 x 64 bytes.
	if got := c.MissBytes(); got != 256 {
		t.Errorf("miss bytes = %d, want 256", got)
	}
	if got := c.AccessedBytes(4); got != 12 {
		t.Errorf("accessed bytes = %d, want 12", got)
	}
}

func TestHitRate(t *testing.T) {
	c := small(t)
	if c.Stats().HitRate() != 0 {
		t.Error("empty cache hit rate should be 0")
	}
	c.Access(0, false)
	for i := 0; i < 9; i++ {
		c.Access(0, false)
	}
	if got := c.Stats().HitRate(); got != 0.9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
}

// A working set smaller than the cache hits ~100 % after warmup — the
// paper's "cache is large enough" assumption.
func TestResidentWorkingSetHits(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 4})
	// 32 KB working set, two passes.
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < 32*1024; a += 4 {
			c.Access(a, pass == 1)
		}
	}
	st := c.Stats()
	// Second pass must be all hits: miss count equals one pass of lines.
	if st.Misses != 32*1024/64 {
		t.Errorf("misses = %d, want %d", st.Misses, 32*1024/64)
	}
}

// A streaming working set much larger than the cache misses once per line:
// miss traffic approaches the streamed volume, not the access volume.
func TestStreamingMissesOncePerLine(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 4 * 1024, LineBytes: 64, Ways: 2})
	span := int64(1 << 20)
	for a := int64(0); a < span; a += 4 {
		c.Access(a, false)
	}
	if got, want := c.MissBytes(), span; got != want {
		t.Errorf("streaming miss bytes = %d, want %d", got, want)
	}
	// The masters requested the same bytes through 4-byte accesses.
	if got := c.AccessedBytes(4); got != span {
		t.Errorf("accessed bytes = %d, want %d", got, span)
	}
}

// Properties: hits+misses = accesses; miss bytes are non-negative and
// bounded by (accesses + writebacks) * line.
func TestCacheInvariants(t *testing.T) {
	f := func(addrs []uint16, writes uint8) bool {
		c, err := New(Config{SizeBytes: 2048, LineBytes: 32, Ways: 2})
		if err != nil {
			return false
		}
		for i, a := range addrs {
			c.Access(int64(a), i%int(writes%7+2) == 0)
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		if st.Writebacks > st.Misses {
			return false
		}
		return c.MissBytes() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeAddressClamps(t *testing.T) {
	c := small(t)
	r := c.Access(-64, false)
	if r.Hit {
		t.Error("cold negative access should miss")
	}
	if r2 := c.Access(64, false); !r2.Hit {
		t.Error("negative address should map to its absolute line")
	}
}
