// Package cache implements the set-associative write-back cache the paper's
// analysis assumes sits between the SMP and the execution memory: "the cache
// is large enough to provide hits for any other memory access than the ones
// depicted in Fig. 1".
//
// The package exists to demonstrate the introduction's bandwidth-reduction
// claim — a software H.264 encoder's raw access stream (thousands of GB/s at
// HDTV rates, reference [2]) collapses to the ~GB/s execution-memory loads
// of Table I once working sets hit in cache — and to let examples and tests
// derive miss traffic for arbitrary access patterns.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache.
type Config struct {
	// SizeBytes is the total capacity (power of two).
	SizeBytes int64
	// LineBytes is the cache-line size (power of two).
	LineBytes int64
	// Ways is the set associativity.
	Ways int
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line %d not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: %d ways", c.Ways)
	}
	if c.SizeBytes < c.LineBytes*int64(c.Ways) {
		return fmt.Errorf("cache: size %d too small for %d ways of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Writebacks int64
}

// HitRate returns hits over accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// line is one cache line's tag state.
type line struct {
	valid bool
	dirty bool
	tag   int64
	used  int64 // LRU stamp
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg      Config
	sets     int64
	lineBits uint
	setMask  int64
	lines    []line // sets x ways
	clock    int64
	st       Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineBytes / int64(cfg.Ways)
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets (size/line/ways must give a power of two)", sets)
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		setMask:  sets - 1,
		lines:    make([]line, sets*int64(cfg.Ways)),
	}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Result describes one access's outcome.
type Result struct {
	Hit bool
	// MissFill is set on a miss: LineBytes are read from memory.
	MissFill bool
	// Writeback is set when a dirty victim was evicted: LineBytes are
	// written to memory.
	Writeback bool
	// VictimAddr is the byte address of the written-back line.
	VictimAddr int64
}

// Access performs one byte-granular access (the line containing addr).
func (c *Cache) Access(addr int64, write bool) Result {
	c.clock++
	c.st.Accesses++
	if addr < 0 {
		addr = -addr
	}
	lineAddr := addr >> c.lineBits
	set := lineAddr & c.setMask
	tag := lineAddr >> uint(bits.TrailingZeros64(uint64(c.sets)))

	ways := c.lines[set*int64(c.cfg.Ways) : (set+1)*int64(c.cfg.Ways)]
	// Hit?
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.clock
			if write {
				ways[i].dirty = true
			}
			c.st.Hits++
			return Result{Hit: true}
		}
	}
	// Miss: pick LRU victim.
	c.st.Misses++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if victim < 0 || ways[i].used < ways[victim].used {
			victim = i
		}
	}
	res := Result{MissFill: true}
	if ways[victim].valid && ways[victim].dirty {
		c.st.Writebacks++
		res.Writeback = true
		victimLine := (ways[victim].tag*c.sets + set) << c.lineBits
		res.VictimAddr = victimLine
	}
	ways[victim] = line{valid: true, dirty: write, tag: tag, used: c.clock}
	return res
}

// Flush writes back all dirty lines, returning how many were written.
func (c *Cache) Flush() int64 {
	var n int64
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
			c.lines[i].dirty = false
		}
	}
	c.st.Writebacks += n
	return n
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.st }

// MissBytes returns the memory traffic the cache generated: line fills plus
// writebacks.
func (c *Cache) MissBytes() int64 {
	return (c.st.Misses + c.st.Writebacks) * c.cfg.LineBytes
}

// AccessedBytes returns the traffic the masters requested, assuming each
// access touches accessBytes (e.g. a 4-byte word or a 64-byte DMA beat).
func (c *Cache) AccessedBytes(accessBytes int64) int64 {
	return c.st.Accesses * accessBytes
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.st = Stats{}
}
