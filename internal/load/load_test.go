package load

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/usecase"
	"repro/internal/video"
)

func gen(t *testing.T, format string, channels int) *Generator {
	t.Helper()
	prof, err := video.ProfileFor(format)
	if err != nil {
		t.Fatal(err)
	}
	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(l, channels, dram.DefaultGeometry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func drain(t *testing.T, src memsys.Source) []memsys.Request {
	t.Helper()
	var reqs []memsys.Request
	for {
		r, ok := src.Next()
		if !ok {
			return reqs
		}
		if r.Bytes <= 0 {
			t.Fatalf("empty request %+v", r)
		}
		reqs = append(reqs, r)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ImageRun: 8, RefRun: 64, CodingRun: 192, BitstreamRun: 64},
		{ImageRun: 100, RefRun: 64, CodingRun: 192, BitstreamRun: 64},
		{ImageRun: 192, RefRun: -16, CodingRun: 192, BitstreamRun: 64},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewValidates(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(l, 0, dram.DefaultGeometry(), Config{}); err == nil {
		t.Error("expected channels error")
	}
	g := dram.DefaultGeometry()
	g.Banks = 3
	if _, err := New(l, 2, g, Config{}); err == nil {
		t.Error("expected geometry error")
	}
	if _, err := New(l, 2, dram.DefaultGeometry(), Config{ImageRun: 24}); err == nil {
		t.Error("expected config error")
	}
}

// The generated frame traffic reproduces the use-case volume exactly.
func TestFrameTrafficMatchesUseCase(t *testing.T) {
	for _, format := range []string{"720p30", "1080p30"} {
		prof, _ := video.ProfileFor(format)
		l, err := usecase.New(prof, usecase.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(l, 4, dram.DefaultGeometry(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		want := l.FrameBytes()
		got := g.FrameBytes()
		// Per-stream byte rounding may drift a few bytes either way.
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		if diff > 64 {
			t.Errorf("%s: generator frame bytes = %d, use case = %d", format, got, want)
		}

		src, err := g.Frame(1.0)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		var reads, writes int64
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			sum += r.Bytes
			if r.Write {
				writes += r.Bytes
			} else {
				reads += r.Bytes
			}
		}
		if sum != got {
			t.Errorf("%s: emitted %d bytes, want %d", format, sum, got)
		}
		if reads == 0 || writes == 0 {
			t.Errorf("%s: reads=%d writes=%d", format, reads, writes)
		}
	}
}

func TestFractionTruncates(t *testing.T) {
	g := gen(t, "720p30", 2)
	full, err := g.Frame(1.0)
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := g.Frame(0.1)
	if err != nil {
		t.Fatal(err)
	}
	sumOf := func(src memsys.Source) int64 {
		var s int64
		for {
			r, ok := src.Next()
			if !ok {
				return s
			}
			s += r.Bytes
		}
	}
	f, p := sumOf(full), sumOf(tenth)
	ratio := float64(p) / float64(f)
	if ratio < 0.095 || ratio > 0.105 {
		t.Errorf("sampled fraction = %.4f, want ~0.1", ratio)
	}
	if _, err := g.Frame(0); err == nil {
		t.Error("expected error for fraction 0")
	}
	if _, err := g.Frame(1.5); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

// Master transactions span all channels: their size scales with M so the
// per-channel run is constant (see package comment).
func TestTransactionSizeScalesWithChannels(t *testing.T) {
	max := func(ch int) int64 {
		g := gen(t, "720p30", ch)
		src, err := g.Frame(0.05)
		if err != nil {
			t.Fatal(err)
		}
		var m int64
		for _, r := range drain(t, src) {
			if r.Bytes > m {
				m = r.Bytes
			}
		}
		return m
	}
	if m1, m8 := max(1), max(8); m8 != 8*m1 {
		t.Errorf("max transaction: 1ch=%d, 8ch=%d, want 8x scaling", m1, m8)
	}
}

func TestBuffersDoNotOverlapWithinCapacity(t *testing.T) {
	g := gen(t, "720p30", 4) // 256 MB capacity comfortably fits 720p
	bufs := g.Buffers()
	if len(bufs) < 10 {
		t.Fatalf("only %d buffers placed", len(bufs))
	}
	for i, a := range bufs {
		if a.Base < 0 || a.Size <= 0 {
			t.Errorf("buffer %s: base=%d size=%d", a.Name, a.Base, a.Size)
		}
		for _, b := range bufs[i+1:] {
			if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
				t.Errorf("buffers %s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

func TestBufferBankPhasesRotate(t *testing.T) {
	g := gen(t, "720p30", 2)
	geom := dram.DefaultGeometry()
	rowSpan := geom.RowBytes() * 2
	bufs := g.Buffers()
	// Consecutive buffers start in different banks.
	for i := 1; i < len(bufs); i++ {
		prev := (bufs[i-1].Base / rowSpan) % int64(geom.Banks)
		cur := (bufs[i].Base / rowSpan) % int64(geom.Banks)
		if prev == cur {
			t.Errorf("buffers %s and %s share bank phase %d",
				bufs[i-1].Name, bufs[i].Name, cur)
		}
	}
}

// Streams of one stage interleave rather than run back to back.
func TestStageStreamsInterleave(t *testing.T) {
	g := gen(t, "720p30", 1)
	src, err := g.Frame(0.02)
	if err != nil {
		t.Fatal(err)
	}
	reqs := drain(t, src)
	// Find a window with both reads and writes in close succession
	// (the preprocess stage alternates).
	switches := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Write != reqs[i-1].Write {
			switches++
		}
	}
	if switches < 10 {
		t.Errorf("only %d read/write switches; streams are not interleaved", switches)
	}
}

// The generated traffic runs on the memory subsystem end to end.
func TestFrameRunsOnMemSys(t *testing.T) {
	g := gen(t, "720p30", 2)
	src, err := g.Frame(0.02)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(2, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Bursts <= 0 {
		t.Fatalf("empty result %+v", res)
	}
	// Sustained efficiency lands in the calibrated band.
	if u := res.BusUtilization(); u < 0.60 || u > 0.90 {
		t.Errorf("bus utilization = %.3f, want calibrated 0.60..0.90", u)
	}
}

// 2160p buffers exceed a single channel's capacity; addresses wrap rather
// than fail (the paper still evaluates those configurations).
func TestLargeFormatWrapsAddresses(t *testing.T) {
	g := gen(t, "2160p30", 1)
	src, err := g.Frame(0.002)
	if err != nil {
		t.Fatal(err)
	}
	capacity := dram.DefaultGeometry().Bytes()
	for _, r := range drain(t, src) {
		if r.Addr < 0 || r.Addr >= capacity {
			t.Errorf("address %d outside wrapped capacity %d", r.Addr, capacity)
		}
	}
}

// The generator is deterministic: two instances emit identical streams.
func TestGeneratorDeterministic(t *testing.T) {
	a := gen(t, "720p30", 2)
	b := gen(t, "720p30", 2)
	srcA, err := a.Frame(0.01)
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := b.Frame(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		ra, okA := srcA.Next()
		rb, okB := srcB.Next()
		if okA != okB {
			t.Fatalf("streams end at different points (%d)", i)
		}
		if !okA {
			break
		}
		if ra != rb {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

// Per-stage sources cover exactly the whole frame.
func TestStageFrameCoversFrame(t *testing.T) {
	g := gen(t, "720p30", 2)
	if g.StageCount() < 8 {
		t.Fatalf("stage count = %d", g.StageCount())
	}
	var sum int64
	for i := 0; i < g.StageCount(); i++ {
		src, err := g.StageFrame(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			sum += r.Bytes
		}
		if g.StageName(i) == "" {
			t.Errorf("stage %d has no name", i)
		}
	}
	if sum != g.FrameBytes() {
		t.Errorf("stage sum %d != frame %d", sum, g.FrameBytes())
	}
	if _, err := g.StageFrame(-1, 1); err == nil {
		t.Error("expected stage range error")
	}
	if _, err := g.StageFrame(g.StageCount(), 1); err == nil {
		t.Error("expected stage range error")
	}
	if _, err := g.StageFrame(0, 0); err == nil {
		t.Error("expected fraction error")
	}
	if got := g.StageName(99); got != "stage(99)" {
		t.Errorf("StageName(99) = %q", got)
	}
}

// Stream pacing within a stage is proportional: at any point of the
// emission, each stream's progress tracks its share of the stage.
func TestStreamPacingProportional(t *testing.T) {
	g := gen(t, "720p30", 1)
	// Stage for the encoder: multiple streams with very different sizes.
	var encStage int
	for i := 0; i < g.StageCount(); i++ {
		if g.StageName(i) == "Video encoder" {
			encStage = i
		}
	}
	src, err := g.StageFrame(encStage, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[bool]int64{}
	emitted := map[bool]int64{}
	var reqs []struct {
		write bool
		bytes int64
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		totals[r.Write] += r.Bytes
		reqs = append(reqs, struct {
			write bool
			bytes int64
		}{r.Write, r.Bytes})
	}
	// Walk the stream; at the halfway point both directions should be
	// roughly half done.
	var seen int64
	grand := totals[true] + totals[false]
	for _, r := range reqs {
		emitted[r.write] += r.bytes
		seen += r.bytes
		if seen >= grand/2 {
			break
		}
	}
	for _, dir := range []bool{true, false} {
		frac := float64(emitted[dir]) / float64(totals[dir])
		if frac < 0.40 || frac > 0.60 {
			t.Errorf("direction write=%v at %.2f done at stream midpoint, want ~0.5", dir, frac)
		}
	}
}
