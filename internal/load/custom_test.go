package load

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/usecase"
	"repro/internal/video"
)

func customSpec() ([]BufferSpec, []StageSpec) {
	buffers := []BufferSpec{
		{Name: "in", Size: 1 << 20},
		{Name: "out", Size: 1 << 20},
	}
	stages := []StageSpec{
		{Name: "copy", Streams: []StreamSpec{
			{Name: "rd", Buffer: 0, Bytes: 1 << 18, Run: 128},
			{Name: "wr", Write: true, Buffer: 1, Bytes: 1 << 18, Run: 128},
		}},
	}
	return buffers, stages
}

func TestNewCustomValidates(t *testing.T) {
	buffers, stages := customSpec()
	g := dram.DefaultGeometry()
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero channels", func() error {
			_, err := NewCustom(buffers, stages, 0, g, Config{})
			return err
		}},
		{"no buffers", func() error {
			_, err := NewCustom(nil, stages, 2, g, Config{})
			return err
		}},
		{"no stages", func() error {
			_, err := NewCustom(buffers, nil, 2, g, Config{})
			return err
		}},
		{"bad buffer size", func() error {
			_, err := NewCustom([]BufferSpec{{Name: "x", Size: 0}}, stages, 2, g, Config{})
			return err
		}},
		{"bad buffer ref", func() error {
			bad := []StageSpec{{Name: "s", Streams: []StreamSpec{{Buffer: 9, Bytes: 64, Run: 64}}}}
			_, err := NewCustom(buffers, bad, 2, g, Config{})
			return err
		}},
		{"bad run", func() error {
			bad := []StageSpec{{Name: "s", Streams: []StreamSpec{{Buffer: 0, Bytes: 64, Run: 60}}}}
			_, err := NewCustom(buffers, bad, 2, g, Config{})
			return err
		}},
		{"negative bytes", func() error {
			bad := []StageSpec{{Name: "s", Streams: []StreamSpec{{Buffer: 0, Bytes: -1, Run: 64}}}}
			_, err := NewCustom(buffers, bad, 2, g, Config{})
			return err
		}},
		{"empty traffic", func() error {
			empty := []StageSpec{{Name: "s", Streams: []StreamSpec{{Buffer: 0, Bytes: 0, Run: 64}}}}
			_, err := NewCustom(buffers, empty, 2, g, Config{})
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewCustomEmitsDeclaredTraffic(t *testing.T) {
	buffers, stages := customSpec()
	gen, err := NewCustom(buffers, stages, 2, dram.DefaultGeometry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := gen.FrameBytes(); got != 2<<18 {
		t.Errorf("frame bytes = %d, want %d", got, 2<<18)
	}
	src, err := gen.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	var rd, wr int64
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Write {
			wr += r.Bytes
		} else {
			rd += r.Bytes
		}
	}
	if rd != 1<<18 || wr != 1<<18 {
		t.Errorf("emitted %d/%d, want %d each", rd, wr, 1<<18)
	}
}

func TestBaseAddressSeparatesWorkloads(t *testing.T) {
	buffers, stages := customSpec()
	g := dram.DefaultGeometry()
	a, err := NewCustom(buffers, stages, 2, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	offset := int64(16 << 20)
	b, err := NewCustom(buffers, stages, 2, g, Config{BaseAddress: offset})
	if err != nil {
		t.Fatal(err)
	}
	for i, ba := range a.Buffers() {
		bb := b.Buffers()[i]
		if bb.Base < offset {
			t.Errorf("offset buffer %q at %d, want >= %d", bb.Name, bb.Base, offset)
		}
		if bb.Base-ba.Base < offset {
			t.Errorf("buffer %q offset %d, want >= %d", bb.Name, bb.Base-ba.Base, offset)
		}
	}
	if _, err := NewCustom(buffers, stages, 2, g, Config{BaseAddress: -1}); err == nil {
		t.Error("expected negative base address error")
	}
}

func TestNewPlaybackGenerator(t *testing.T) {
	prof, err := video.ProfileFor("720p30")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := usecase.NewPlayback(prof, usecase.DefaultPlaybackParams())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewPlayback(pb, 2, dram.DefaultGeometry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The generator carries (within rounding) the playback load.
	want := pb.FrameBits().Bytes()
	got := gen.FrameBytes()
	diff := want - got
	if diff < 0 {
		diff = -diff
	}
	if diff > 64 {
		t.Errorf("playback generator frame bytes = %d, want ~%d", got, want)
	}
	// And it runs on the memory subsystem.
	src, err := gen.Frame(0.2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(2, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts == 0 || res.BytesRead == 0 || res.BytesWritten == 0 {
		t.Errorf("playback run empty: %+v", res)
	}
}

// Recording and playback merged onto one memory move the sum of their
// traffic and do not overlap buffers.
func TestMergedRecordPlayback(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	rec, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	recGen, err := New(rec, 2, dram.DefaultGeometry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := usecase.NewPlayback(prof, usecase.DefaultPlaybackParams())
	if err != nil {
		t.Fatal(err)
	}
	// Place playback above the recording buffers.
	var recTop int64
	for _, b := range recGen.Buffers() {
		if end := b.Base + b.Size; end > recTop {
			recTop = end
		}
	}
	pbGen, err := NewPlayback(pb, 2, dram.DefaultGeometry(), Config{BaseAddress: recTop})
	if err != nil {
		t.Fatal(err)
	}
	for _, pbuf := range pbGen.Buffers() {
		for _, rbuf := range recGen.Buffers() {
			if pbuf.Base < rbuf.Base+rbuf.Size && rbuf.Base < pbuf.Base+pbuf.Size {
				t.Errorf("buffers %q and %q overlap", pbuf.Name, rbuf.Name)
			}
		}
	}

	recSrc, err := recGen.Frame(0.05)
	if err != nil {
		t.Fatal(err)
	}
	pbSrc, err := pbGen.Frame(0.05)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(4, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(memsys.Merge(recSrc, pbSrc))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(float64(recGen.FrameBytes()+pbGen.FrameBytes()) * 0.05)
	got := res.BytesRead + res.BytesWritten
	if diff := got - want; diff < -2048 || diff > 2048 {
		t.Errorf("merged traffic = %d bytes, want ~%d", got, want)
	}
}

func TestNewViewfinderGenerator(t *testing.T) {
	prof, _ := video.ProfileFor("720p30")
	vf, err := usecase.NewViewfinder(prof.Format, usecase.DefaultViewfinderParams())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewViewfinder(vf, 2, dram.DefaultGeometry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := vf.FrameBits().Bytes()
	got := gen.FrameBytes()
	diff := want - got
	if diff < 0 {
		diff = -diff
	}
	if diff > 64 {
		t.Errorf("viewfinder generator frame bytes = %d, want ~%d", got, want)
	}
	src, err := gen.Frame(0.2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(2, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts == 0 {
		t.Error("viewfinder run empty")
	}
}
