package load

import (
	"testing"

	"repro/internal/memsys"
)

func TestPacedValidates(t *testing.T) {
	g := gen(t, "720p30", 2)
	cases := []struct {
		fraction     float64
		period, pace int64
		frames       int
	}{
		{0.1, 1000, 900, 0},  // frames
		{0.1, 0, 900, 1},     // period
		{0.1, 1000, 0, 1},    // pace
		{0.1, 1000, 2000, 1}, // pace > period
		{0, 1000, 900, 1},    // fraction
		{1e-9, 1000, 900, 1}, // fraction collapses the slot
	}
	for i, c := range cases {
		if _, err := g.Paced(c.fraction, c.period, c.pace, c.frames); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPacedArrivalsMonotoneWithinSlots(t *testing.T) {
	g := gen(t, "720p30", 2)
	const period, pace = 1_000_000, 850_000
	src, err := g.Paced(0.05, period, pace, 3)
	if err != nil {
		t.Fatal(err)
	}
	effPeriod := int64(float64(period) * 0.05)
	effPace := int64(float64(pace) * 0.05)
	var prev int64 = -1
	var frames int
	var lastFrame int64 = -1
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Arrival < prev {
			t.Fatalf("arrival went backwards: %d after %d", r.Arrival, prev)
		}
		prev = r.Arrival
		frame := r.Arrival / effPeriod
		if frame != lastFrame {
			frames++
			lastFrame = frame
		}
		// Every arrival stays inside its slot's pace window.
		if off := r.Arrival % effPeriod; off > effPace {
			t.Fatalf("arrival offset %d beyond pace window %d", off, effPace)
		}
	}
	if frames != 3 {
		t.Errorf("traffic spanned %d slots, want 3", frames)
	}
}

func TestPacedEmitsSameTrafficAsFrames(t *testing.T) {
	g := gen(t, "720p30", 2)
	paced, err := g.Paced(0.05, 1_000_000, 900_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pacedBytes int64
	for {
		r, ok := paced.Next()
		if !ok {
			break
		}
		pacedBytes += r.Bytes
	}
	single, err := g.Frame(0.05)
	if err != nil {
		t.Fatal(err)
	}
	var frameBytes int64
	for {
		r, ok := single.Next()
		if !ok {
			break
		}
		frameBytes += r.Bytes
	}
	if pacedBytes != 2*frameBytes {
		t.Errorf("paced traffic = %d bytes, want 2 frames = %d", pacedBytes, 2*frameBytes)
	}
}

func TestPacedRunsOnMemSys(t *testing.T) {
	g := gen(t, "720p30", 2)
	// One 30 fps frame at 400 MHz is ~13.3M cycles; pace over 85 %.
	src, err := g.Paced(0.02, 13_333_333, 11_333_333, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(2, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.PowerDownExits == 0 || tot.PowerDownCycles == 0 {
		t.Errorf("paced run should power down between transactions: %+v", tot)
	}
	// The makespan tracks the pacing, not the saturated service time.
	if res.Cycles < 266_666 {
		t.Errorf("makespan %d shorter than one scaled slot", res.Cycles)
	}
}
