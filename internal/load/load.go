// Package load implements the paper's load model: the video-recording use
// case (Fig. 1) described as a state machine whose states issue read and
// write requests to the memory subsystem. Everything above the memory
// controllers — SMP cores, hardware accelerators, caches — is abstracted
// into this model; only the cache-miss traffic of the recording chain
// reaches memory.
//
// Each pipeline stage becomes a set of concurrent sequential streams over
// placed frame buffers (a noise filter reads the sensor frame while writing
// the filtered frame; the encoder reads the current frame and several
// reference windows while writing the reconstructed frame). Streams are
// interleaved proportionally at stream-specific granularities: whole-frame
// image streams move in DMA-sized runs, encoder reference fetches in short
// search-window rows. Master transactions span all channels ("all the
// channels can be used in a single master transaction", section III), so
// the per-channel run length — and therefore channel efficiency — is
// independent of the channel count.
package load

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/usecase"
)

// Config tunes the load model's access granularities. All sizes are
// per-channel bytes per stream visit; the generator multiplies by the
// channel count to size master transactions. Zero values take defaults.
type Config struct {
	// ImageRun is the per-channel run of whole-frame image streams
	// (camera, filters, scaler, display refresh).
	ImageRun int64
	// RefRun is the per-channel run of encoder reference-frame fetches:
	// one search-window row, much shorter than an image DMA run.
	RefRun int64
	// CodingRun is the per-channel run of the encoder's current-frame
	// reads and reconstructed-frame writes.
	CodingRun int64
	// BitstreamRun is the per-channel run of bitstream, audio and
	// multiplex traffic.
	BitstreamRun int64
	// BaseAddress offsets every placed buffer, letting several workloads
	// share one memory without overlapping (used with memsys.Merge).
	BaseAddress int64
}

// DefaultConfig returns the calibrated granularities (see DESIGN.md
// section 5: these, with the paper's device timing, put sustained channel
// efficiency at the ~0.74 the paper's feasibility classifications imply).
func DefaultConfig() Config {
	return Config{ImageRun: 96, RefRun: 48, CodingRun: 96, BitstreamRun: 64}
}

// WithDefaults returns the config with zero granularities replaced by the
// calibrated defaults — the spelling New actually simulates. Callers that
// key on a Config (the simulation cache) normalize through this so the zero
// value and the explicit defaults share a key.
func (c Config) WithDefaults() Config {
	c.fillDefaults()
	return c
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.ImageRun == 0 {
		c.ImageRun = d.ImageRun
	}
	if c.RefRun == 0 {
		c.RefRun = d.RefRun
	}
	if c.CodingRun == 0 {
		c.CodingRun = d.CodingRun
	}
	if c.BitstreamRun == 0 {
		c.BitstreamRun = d.BitstreamRun
	}
}

// Validate checks granularities for sanity.
func (c Config) Validate() error {
	for _, v := range []int64{c.ImageRun, c.RefRun, c.CodingRun, c.BitstreamRun} {
		if v < 16 {
			return fmt.Errorf("load: run %d below the 16-byte burst", v)
		}
		if v%16 != 0 {
			return fmt.Errorf("load: run %d not a multiple of the 16-byte burst", v)
		}
	}
	if c.BaseAddress < 0 {
		return fmt.Errorf("load: negative base address %d", c.BaseAddress)
	}
	return nil
}

// Buffer is a placed frame buffer in the global address space.
type Buffer struct {
	Name string
	Base int64
	Size int64
}

// allocator places buffers bank-group aligned with rotating bank phases, the
// layout a bandwidth-tuned system uses so concurrently walked buffers start
// in different banks.
type allocator struct {
	next     int64
	rowSpan  int64 // bytes of global address space per local DRAM row
	banks    int64
	phase    int64
	capacity int64
}

func newAllocator(channels int, g dram.Geometry) *allocator {
	return &allocator{
		rowSpan:  g.RowBytes() * int64(channels),
		banks:    int64(g.Banks),
		capacity: g.Bytes() * int64(channels),
	}
}

func (a *allocator) alloc(name string, size int64) Buffer {
	group := a.rowSpan * a.banks
	base := ((a.next + group - 1) / group) * group
	base += (a.phase % a.banks) * a.rowSpan
	a.phase++
	a.next = base + size
	return Buffer{Name: name, Base: base, Size: size}
}

// stream is one sequential access pattern of a stage.
type stream struct {
	name  string
	write bool
	base  int64
	bytes int64 // payload this frame
	run   int64 // master transaction size (per-channel run x channels)
}

// stage is one state of the load state machine.
type stage struct {
	id      usecase.StageID
	streams []stream
}

// Generator produces the memory transactions of recording frames.
type Generator struct {
	load     usecase.Load
	cfg      Config
	channels int
	stages   []stage
	buffers  []Buffer
	capacity int64
}

// New builds a generator for the use-case load on an M-channel memory with
// the given bank-cluster geometry.
func New(l usecase.Load, channels int, g dram.Geometry, cfg Config) (*Generator, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("load: %d channels", channels)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	gen := &Generator{load: l, cfg: cfg, channels: channels, capacity: g.Bytes() * int64(channels)}

	// Place the frame buffers of Fig. 1.
	f := l.Profile.Format
	border := l.Params.StabilizationBorder * l.Params.StabilizationBorder
	borderedBytes := int64(border * float64(f.Pixels()) * 2) // 16 bpp
	yuvBytes := f.Pixels() * 2                               // 16 bpp
	refBytes := f.Pixels() * 3 / 2                           // 12 bpp
	dispYUVBytes := l.Params.Display.Pixels() * 2
	dispRGBBytes := l.Params.Display.Pixels() * 3
	refs := l.ReferenceFrames()

	al := newAllocator(channels, g)
	al.next = cfg.BaseAddress
	alloc := func(name string, size int64) Buffer {
		b := al.alloc(name, size)
		gen.buffers = append(gen.buffers, b)
		return b
	}
	sensorA := alloc("sensor", borderedBytes)
	sensorB := alloc("preprocessed", borderedBytes)
	yuvA := alloc("yuv-bordered", borderedBytes)
	yuvStab := alloc("yuv-stabilized", yuvBytes)
	yuvZoom := alloc("yuv-zoomed", yuvBytes)
	dispYUV := alloc("display-yuv", dispYUVBytes)
	dispRGB := alloc("display-rgb", dispRGBBytes)
	refBufs := make([]Buffer, refs)
	for i := range refBufs {
		refBufs[i] = alloc(fmt.Sprintf("reference-%d", i), refBytes)
	}
	recon := alloc("reconstructed", refBytes)
	bitstream := alloc("bitstream", 1<<20)
	mux := alloc("mux", 1<<20)
	audio := alloc("audio", 1<<16)

	imgRun := cfg.ImageRun * int64(channels)
	refRun := cfg.RefRun * int64(channels)
	codRun := cfg.CodingRun * int64(channels)
	bsRun := cfg.BitstreamRun * int64(channels)

	// Translate each Fig. 1 stage's traffic volumes into streams. The
	// per-stage read/write volumes come from the use-case model, so the
	// generated traffic reproduces Table I exactly.
	st := l.Stages
	rd := func(id usecase.StageID) int64 { return st[id].ReadBits.Bytes() }
	wr := func(id usecase.StageID) int64 { return st[id].WriteBits.Bytes() }

	addStage := func(id usecase.StageID, streams ...stream) {
		var kept []stream
		for _, s := range streams {
			if s.bytes > 0 {
				kept = append(kept, s)
			}
		}
		if len(kept) > 0 {
			gen.stages = append(gen.stages, stage{id: id, streams: kept})
		}
	}

	addStage(usecase.StageCameraIF,
		stream{"camera-wr", true, sensorA.Base, wr(usecase.StageCameraIF), imgRun})
	addStage(usecase.StagePreprocess,
		stream{"pre-rd", false, sensorA.Base, rd(usecase.StagePreprocess), imgRun},
		stream{"pre-wr", true, sensorB.Base, wr(usecase.StagePreprocess), imgRun})
	addStage(usecase.StageBayerToYUV,
		stream{"b2y-rd", false, sensorB.Base, rd(usecase.StageBayerToYUV), imgRun},
		stream{"b2y-wr", true, yuvA.Base, wr(usecase.StageBayerToYUV), imgRun})
	addStage(usecase.StageStabilization,
		stream{"stab-rd", false, yuvA.Base, rd(usecase.StageStabilization), imgRun},
		stream{"stab-wr", true, yuvStab.Base, wr(usecase.StageStabilization), imgRun})
	addStage(usecase.StagePostprocZoom,
		stream{"zoom-rd", false, yuvStab.Base, rd(usecase.StagePostprocZoom), imgRun},
		stream{"zoom-wr", true, yuvZoom.Base, wr(usecase.StagePostprocZoom), imgRun})
	addStage(usecase.StageScaleToDisplay,
		stream{"scale-rd", false, yuvZoom.Base, rd(usecase.StageScaleToDisplay), imgRun},
		stream{"scale-wr", true, dispYUV.Base, wr(usecase.StageScaleToDisplay), imgRun})
	addStage(usecase.StageDisplayCtrl,
		stream{"disp-rd", false, dispRGB.Base, rd(usecase.StageDisplayCtrl), imgRun})

	// Encoder: the reference traffic (implementation factor x 12 bpp x
	// refs) is spread evenly over the reference frames and fetched in
	// search-window rows; current-frame reads and reconstructed-frame
	// writes move in DMA runs; the output bitstream trickles out.
	encStreams := []stream{
		{"enc-cur", false, yuvZoom.Base, yuvBytes, codRun},
	}
	refTraffic := rd(usecase.StageVideoEncoder) - yuvBytes
	if refTraffic < 0 {
		refTraffic = 0
	}
	for i, rb := range refBufs {
		encStreams = append(encStreams, stream{
			fmt.Sprintf("enc-ref%d", i), false, rb.Base, refTraffic / int64(refs), refRun})
	}
	vBytes := wr(usecase.StageVideoEncoder) - refBytes
	if vBytes < 0 {
		vBytes = 0
	}
	encStreams = append(encStreams,
		stream{"enc-recon", true, recon.Base, refBytes, codRun},
		stream{"enc-bs", true, bitstream.Base, vBytes, bsRun})
	addStage(usecase.StageVideoEncoder, encStreams...)

	addStage(usecase.StageAudio,
		stream{"audio-wr", true, audio.Base, wr(usecase.StageAudio), bsRun})
	addStage(usecase.StageMultiplex,
		stream{"mux-rd", false, bitstream.Base, rd(usecase.StageMultiplex), bsRun},
		stream{"mux-wr", true, mux.Base, wr(usecase.StageMultiplex), bsRun})
	addStage(usecase.StageMemoryCard,
		stream{"card-rd", false, mux.Base, rd(usecase.StageMemoryCard), bsRun})

	return gen, nil
}

// Buffers returns the placed frame buffers.
func (g *Generator) Buffers() []Buffer { return g.buffers }

// FrameBytes returns the total payload of one frame's transactions.
func (g *Generator) FrameBytes() int64 {
	var sum int64
	for _, st := range g.stages {
		for _, s := range st.streams {
			sum += s.bytes
		}
	}
	return sum
}

// Frame returns a transaction source for one recorded frame. fraction in
// (0,1] truncates every stream proportionally — a sampled frame whose
// makespan extrapolates linearly, used to bound simulation cost.
func (g *Generator) Frame(fraction float64) (memsys.Source, error) {
	if !(fraction > 0) || fraction > 1 { // rejects NaN too
		return nil, fmt.Errorf("load: fraction %v outside (0,1]", fraction)
	}
	fs := &frameSource{capacity: g.capacity}
	// Stream ids number the generator's streams in construction order —
	// independent of the sampling fraction, so the same client keeps the
	// same identity (and the same partition, under a partitioning policy)
	// across sampled and full frames.
	id := 0
	for _, st := range g.stages {
		cs := cursorStage{}
		for _, s := range st.streams {
			sid := id
			id++
			bytes := int64(float64(s.bytes) * fraction)
			if bytes == 0 {
				continue
			}
			tiles := (bytes + s.run - 1) / s.run
			cs.streams = append(cs.streams, cursor{stream: s, id: sid, bytes: bytes, tiles: tiles})
			if tiles > cs.maxTiles {
				cs.maxTiles = tiles
			}
		}
		if len(cs.streams) > 0 {
			fs.stages = append(fs.stages, cs)
		}
	}
	if len(fs.stages) == 0 {
		// A fraction small enough to truncate every stream to zero bytes
		// would yield a zero-transaction, zero-duration run — downstream
		// ratios (bandwidth, power deltas) all divide by the makespan.
		return nil, fmt.Errorf("load: fraction %v truncates the whole frame to zero transactions", fraction)
	}
	return fs, nil
}

// cursor tracks one stream's emission progress.
type cursor struct {
	stream  stream
	id      int   // stable client identity (construction order)
	bytes   int64 // possibly truncated by sampling
	tiles   int64
	emitted int64 // tiles emitted
	pos     int64 // bytes emitted
}

type cursorStage struct {
	streams  []cursor
	maxTiles int64
	round    int64
	idx      int
}

// frameSource interleaves each stage's streams proportionally (Bresenham
// pacing): in every round, stream i emits when its cumulative share lags.
type frameSource struct {
	stages   []cursorStage
	si       int
	capacity int64
}

// Next implements memsys.Source.
func (f *frameSource) Next() (memsys.Request, bool) {
	for f.si < len(f.stages) {
		st := &f.stages[f.si]
		for st.round < st.maxTiles {
			for st.idx < len(st.streams) {
				c := &st.streams[st.idx]
				due := (st.round + 1) * c.tiles / st.maxTiles
				if c.emitted < due && c.pos < c.bytes {
					n := c.stream.run
					if rem := c.bytes - c.pos; rem < n {
						n = rem
					}
					addr := (c.stream.base + c.pos) % f.capacity
					c.emitted++
					c.pos += n
					st.idx++
					return memsys.Request{Write: c.stream.write, Addr: addr, Bytes: n, Stream: c.id}, true
				}
				st.idx++
			}
			st.idx = 0
			st.round++
		}
		f.si++
	}
	return memsys.Request{}, false
}

// StreamInfo describes one stream of a stage for analytic consumers.
type StreamInfo struct {
	Name  string
	Write bool
	Bytes int64 // payload this frame
	Run   int64 // master transaction size (spans all channels)
}

// StageInfo describes one state of the load state machine.
type StageInfo struct {
	Stage   usecase.StageID
	Streams []StreamInfo
}

// Stages returns the stage/stream decomposition the generator emits, for
// analytic models and reports.
func (g *Generator) Stages() []StageInfo {
	var out []StageInfo
	for _, st := range g.stages {
		info := StageInfo{Stage: st.id}
		for _, s := range st.streams {
			info.Streams = append(info.Streams, StreamInfo{
				Name: s.name, Write: s.write, Bytes: s.bytes, Run: s.run,
			})
		}
		out = append(out, info)
	}
	return out
}

// Channels returns the channel count the generator was built for.
func (g *Generator) Channels() int { return g.channels }

// StageFrame returns a transaction source for a single stage of one frame,
// sampled by fraction. Running the stages of StageCount() in order over one
// memory system reproduces Frame()'s traffic exactly, letting callers
// attribute time and energy per pipeline stage.
func (g *Generator) StageFrame(stage int, fraction float64) (memsys.Source, error) {
	if stage < 0 || stage >= len(g.stages) {
		return nil, fmt.Errorf("load: stage %d of %d", stage, len(g.stages))
	}
	if !(fraction > 0) || fraction > 1 { // rejects NaN too
		return nil, fmt.Errorf("load: fraction %v outside (0,1]", fraction)
	}
	fs := &frameSource{capacity: g.capacity}
	cs := cursorStage{}
	for _, s := range g.stages[stage].streams {
		bytes := int64(float64(s.bytes) * fraction)
		if bytes == 0 {
			continue
		}
		tiles := (bytes + s.run - 1) / s.run
		cs.streams = append(cs.streams, cursor{stream: s, bytes: bytes, tiles: tiles})
		if tiles > cs.maxTiles {
			cs.maxTiles = tiles
		}
	}
	if len(cs.streams) > 0 {
		fs.stages = append(fs.stages, cs)
	}
	return fs, nil
}

// StageCount returns the number of traffic-bearing stages.
func (g *Generator) StageCount() int { return len(g.stages) }

// StageName returns the use-case name of the traffic-bearing stage index.
func (g *Generator) StageName(stage int) string {
	if stage < 0 || stage >= len(g.stages) {
		return fmt.Sprintf("stage(%d)", stage)
	}
	return g.stages[stage].id.String()
}
