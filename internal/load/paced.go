package load

import (
	"fmt"

	"repro/internal/memsys"
)

// Paced returns a transaction source for a sustained recording: frames
// consecutive frame slots of periodCycles each, with every frame's traffic
// spread evenly across the first paceCycles of its slot (paceCycles <=
// periodCycles; the remainder models the processing margin). Unlike Frame,
// requests carry arrival times, so the memory idles — and powers down —
// between paced transactions whenever it is faster than the load.
//
// fraction in (0,1] samples the run self-similarly: each frame's traffic
// AND its slot are scaled by the fraction, so arrival intensity, idle-gap
// structure and therefore state residency are preserved, and a sampled
// run's statistics extrapolate to the full run by 1/fraction.
func (g *Generator) Paced(fraction float64, periodCycles, paceCycles int64, frames int) (memsys.Source, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("load: %d frames", frames)
	}
	if periodCycles <= 0 {
		return nil, fmt.Errorf("load: period %d cycles", periodCycles)
	}
	if paceCycles <= 0 || paceCycles > periodCycles {
		return nil, fmt.Errorf("load: pace window %d outside (0, period %d]", paceCycles, periodCycles)
	}
	first, err := g.Frame(fraction) // validates fraction
	if err != nil {
		return nil, err
	}
	var frameBytes int64
	for _, st := range g.stages {
		for _, s := range st.streams {
			frameBytes += int64(float64(s.bytes) * fraction)
		}
	}
	if frameBytes <= 0 {
		return nil, fmt.Errorf("load: empty frame at fraction %v", fraction)
	}
	period := int64(float64(periodCycles) * fraction)
	pace := int64(float64(paceCycles) * fraction)
	if period < 1 || pace < 1 {
		return nil, fmt.Errorf("load: fraction %v collapses the frame slot", fraction)
	}
	return &pacedSource{
		gen:        g,
		fraction:   fraction,
		src:        first,
		frames:     frames,
		period:     period,
		pace:       pace,
		frameBytes: frameBytes,
	}, nil
}

// PacedFrame returns a transaction source for a single frame whose arrivals
// are spread evenly across the paceCycles starting at startCycle. It is the
// one-slot building block the degradation engine uses to pace frames
// individually while it adapts the workload between slots (see
// core.SimulateDegraded); cycle values are in the caller's clock domain, so
// a sampling caller passes an already fraction-scaled slot.
func (g *Generator) PacedFrame(fraction float64, startCycle, paceCycles int64) (memsys.Source, error) {
	if startCycle < 0 {
		return nil, fmt.Errorf("load: negative slot start %d", startCycle)
	}
	if paceCycles <= 0 {
		return nil, fmt.Errorf("load: pace window %d cycles", paceCycles)
	}
	src, err := g.Frame(fraction) // validates fraction
	if err != nil {
		return nil, err
	}
	var frameBytes int64
	for _, st := range g.stages {
		for _, s := range st.streams {
			frameBytes += int64(float64(s.bytes) * fraction)
		}
	}
	if frameBytes <= 0 {
		return nil, fmt.Errorf("load: empty frame at fraction %v", fraction)
	}
	return &slotSource{src: src, start: startCycle, pace: paceCycles, frameBytes: frameBytes}, nil
}

// slotSource stamps paced arrivals for one frame slot.
type slotSource struct {
	src        memsys.Source
	start      int64
	pace       int64
	frameBytes int64
	sent       int64
}

// Next implements memsys.Source.
func (s *slotSource) Next() (memsys.Request, bool) {
	req, ok := s.src.Next()
	if !ok {
		return memsys.Request{}, false
	}
	req.Arrival = s.start + s.sent*s.pace/s.frameBytes
	s.sent += req.Bytes
	return req, true
}

// pacedSource stamps arrivals onto the frame source and re-arms it for each
// successive frame slot.
type pacedSource struct {
	gen        *Generator
	fraction   float64
	src        memsys.Source
	frames     int
	frame      int
	period     int64 // slot length, already fraction-scaled
	pace       int64 // pace window, already fraction-scaled
	frameBytes int64 // payload per (sampled) frame
	sent       int64 // bytes emitted within the current frame
}

// Next implements memsys.Source.
func (p *pacedSource) Next() (memsys.Request, bool) {
	for {
		req, ok := p.src.Next()
		if ok {
			req.Arrival = int64(p.frame)*p.period + p.sent*p.pace/p.frameBytes
			p.sent += req.Bytes
			return req, true
		}
		p.frame++
		if p.frame >= p.frames {
			return memsys.Request{}, false
		}
		src, err := p.gen.Frame(p.fraction)
		if err != nil {
			return memsys.Request{}, false
		}
		p.src = src
		p.sent = 0
	}
}
